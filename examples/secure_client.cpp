// End-to-end encrypted client session: attestation, sealed request submission, sealed
// response delivery (paper section 3.1). Also demonstrates swapping the subORAM
// backend (section 3.1 / Figure 10): run with "oblix" as argv[1] to serve the same
// workload from tree-ORAM shards instead of the linear-scan subORAM.
//
//   ./examples/secure_client [oblix]

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/baseline/oblix_backend.h"
#include "src/core/client.h"

int main(int argc, char** argv) {
  using namespace snoopy;

  const bool use_oblix = argc > 1 && std::string(argv[1]) == "oblix";
  SnoopyConfig config;
  config.num_load_balancers = 2;
  config.num_suborams = 2;
  config.value_size = 32;

  std::unique_ptr<Snoopy> store;
  if (use_oblix) {
    const OblixBackendFactory factory(/*capacity_per_shard=*/4096, config.value_size);
    store = std::make_unique<Snoopy>(config, /*seed=*/5, factory);
  } else {
    store = std::make_unique<Snoopy>(config, /*seed=*/5);
  }
  std::printf("deployment: 2 load balancers, 2 %s subORAMs\n",
              use_oblix ? "Oblix (tree-ORAM)" : "linear-scan");

  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 1000; ++k) {
    std::vector<uint8_t> v(config.value_size, 0);
    std::memcpy(v.data(), &k, 8);
    objects.emplace_back(k, v);
  }
  store->Initialize(objects);

  // Two clients attest the deployment and open encrypted channels.
  SnoopyClient alice(*store, /*client_id=*/1, /*seed=*/11);
  SnoopyClient bob(*store, /*client_id=*/2, /*seed=*/22);
  std::printf("alice and bob attested the load balancers and opened AEAD channels\n");

  alice.Read(42);
  std::vector<uint8_t> payload(config.value_size, 0);
  std::memcpy(payload.data(), "bob-was-here", 12);
  bob.Write(42, payload);
  bob.Read(7);

  const auto& stats_before = store->network().stats();
  std::printf("requests in flight: %llu sealed messages so far\n",
              static_cast<unsigned long long>(stats_before.messages));

  store->RunEpoch();

  for (const auto& resp : alice.FetchResponses()) {
    uint64_t k;
    std::memcpy(&k, resp.value.data(), 8);
    std::printf("alice <- key %llu: stored value tag %llu (pre-state; bob's write lands "
                "next epoch for her balancer or this one, per the epoch order)\n",
                static_cast<unsigned long long>(resp.key),
                static_cast<unsigned long long>(k));
  }
  for (const auto& resp : bob.FetchResponses()) {
    std::printf("bob   <- key %llu (seq %llu)\n",
                static_cast<unsigned long long>(resp.key),
                static_cast<unsigned long long>(resp.client_seq));
  }

  // Verify the write persisted.
  alice.Read(42);
  store->RunEpoch();
  const auto after = alice.FetchResponses();
  std::printf("next epoch, key 42 reads: \"%s\"\n",
              reinterpret_cast<const char*>(after[0].value.data()));
  return 0;
}
