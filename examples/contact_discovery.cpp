// Private contact discovery (paper sections 3.2 and 5): the Signal-style workload that
// inspired the subORAM's oblivious hash table. A client learns which of its contacts
// are registered users without the service learning the contact list.
//
// The registration database lives in Snoopy; a batch of contact lookups executes in
// one epoch, so the service sees only fixed-size encrypted batches.
//
//   ./examples/contact_discovery

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/snoopy.h"
#include "src/crypto/siphash.h"

int main() {
  using namespace snoopy;

  // Registered users: phone numbers hashed to 63-bit identifiers under a service key.
  const SipKey service_key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  auto phone_id = [&service_key](const std::string& phone) {
    return SipHash24(service_key, std::span<const uint8_t>(
                                      reinterpret_cast<const uint8_t*>(phone.data()),
                                      phone.size())) &
           ((uint64_t{1} << 63) - 1);
  };

  SnoopyConfig config;
  config.num_suborams = 2;
  config.value_size = 16;  // registration record: a flag + routing info
  Snoopy registry(config, /*seed=*/99);

  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> registered;
  std::vector<std::string> directory;
  for (int i = 0; i < 5000; ++i) {
    directory.push_back("+1-555-" + std::to_string(10000 + i));
  }
  for (size_t i = 0; i < directory.size(); i += 2) {  // every other number is a user
    std::vector<uint8_t> record(config.value_size, 0);
    record[0] = 1;  // registered flag
    std::memcpy(record.data() + 1, "signal-user", 11);
    registered.emplace_back(phone_id(directory[i]), record);
  }
  registry.Initialize(registered);
  std::printf("registration database: %zu users of %zu numbers\n", registered.size(),
              directory.size());

  // The client's address book: a mix of registered and unregistered numbers. All
  // lookups go out in one epoch; the service sees S equal-sized encrypted batches.
  const std::vector<std::string> contacts = {
      directory[0], directory[1], directory[2], directory[3],
      directory[42], "+1-555-99999" /* not even in the directory */};
  uint64_t seq = 0;
  for (const std::string& phone : contacts) {
    registry.SubmitRead(/*client_id=*/555, seq++, phone_id(phone));
  }

  std::vector<ClientResponse> responses = registry.RunEpoch();
  std::printf("discovery results (service learned only: 6 requests arrived):\n");
  for (const ClientResponse& resp : responses) {
    const bool is_user = !resp.value.empty() && resp.value[0] == 1;
    std::printf("  %-16s -> %s\n", contacts[resp.client_seq].c_str(),
                is_user ? "registered (can message via Signal)" : "not registered");
  }
  return 0;
}
