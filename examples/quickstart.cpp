// Quickstart: stand up a Snoopy deployment in-process, write and read objects, and
// peek at the oblivious machinery (batch sizes, epochs, encrypted traffic).
//
//   ./examples/quickstart

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/analysis/batch_bound.h"
#include "src/core/snoopy.h"

int main() {
  using namespace snoopy;

  // A deployment with 2 load balancers and 3 subORAMs storing 10,000 64-byte objects.
  SnoopyConfig config;
  config.num_load_balancers = 2;
  config.num_suborams = 3;
  config.value_size = 64;
  Snoopy store(config, /*seed=*/2021);

  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t key = 0; key < 10000; ++key) {
    std::vector<uint8_t> value(config.value_size, 0);
    const std::string text = "object #" + std::to_string(key);
    std::memcpy(value.data(), text.data(), text.size());
    objects.emplace_back(key, value);
  }
  store.Initialize(objects);
  std::printf("initialized %zu objects across %u subORAMs (partition key is secret)\n",
              objects.size(), config.num_suborams);

  // Epoch 1: a mix of reads and writes from two clients. Requests accumulate and are
  // executed together at the epoch boundary -- that is what hides the access pattern.
  store.SubmitRead(/*client_id=*/1, /*client_seq=*/1, /*key=*/42);
  store.SubmitRead(1, 2, 42);  // duplicate: deduplicated inside the load balancer
  std::vector<uint8_t> new_value(config.value_size, 0);
  std::memcpy(new_value.data(), "hello snoopy", 12);
  store.SubmitWrite(2, 3, 42, new_value);
  store.SubmitRead(2, 4, 7);

  std::printf("epoch batch size for 4 requests over 3 subORAMs: f(4,3) = %llu per subORAM\n",
              static_cast<unsigned long long>(BatchSize(4, 3, config.lambda)));

  for (const ClientResponse& resp : store.RunEpoch()) {
    std::printf("  client %llu seq %llu key %llu -> \"%s\"%s\n",
                static_cast<unsigned long long>(resp.client_id),
                static_cast<unsigned long long>(resp.client_seq),
                static_cast<unsigned long long>(resp.key),
                reinterpret_cast<const char*>(resp.value.data()),
                resp.op == kOpWrite ? "  (write; shows pre-state)" : "");
  }

  // Epoch 2: the write is now visible.
  store.SubmitRead(1, 5, 42);
  for (const ClientResponse& resp : store.RunEpoch()) {
    std::printf("next epoch: key %llu -> \"%s\"\n",
                static_cast<unsigned long long>(resp.key),
                reinterpret_cast<const char*>(resp.value.data()));
  }

  const auto& stats = store.network().stats();
  std::printf("network: %llu encrypted batch messages, %llu bytes sent\n",
              static_cast<unsigned long long>(stats.messages),
              static_cast<unsigned long long>(stats.bytes_sent));
  std::printf("done: %llu epochs executed\n", static_cast<unsigned long long>(store.epoch()));
  return 0;
}
