// Key-transparency example (paper sections 3.2 and 8.2): serve CONIKS-style key
// lookups with inclusion proofs out of Snoopy, so the log server never learns who is
// looking up whom.
//
//   ./examples/key_transparency

#include <cstdio>
#include <string>
#include <vector>

#include "src/kt/transparency_log.h"

int main() {
  using namespace snoopy;

  // A directory of 1,000 users; each user's "public key" is a placeholder string.
  std::vector<std::vector<uint8_t>> users;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "ed25519-public-key-of-user-" + std::to_string(i);
    users.emplace_back(key.begin(), key.end());
  }

  TransparencyLog log(users, /*load_balancers=*/1, /*suborams=*/2, /*seed=*/7);
  std::printf("transparency log: %llu users, %u oblivious accesses per lookup "
              "(log2(n) + 1, paper Fig. 9b)\n",
              static_cast<unsigned long long>(log.num_users()), log.accesses_per_lookup());

  // Alice looks up Bob (user 123), Carol looks up Dave (user 777) -- in one epoch, so
  // even the number of distinct targets is hidden.
  const auto results = log.LookupBatch({123, 777, 123});
  const char* who[] = {"Alice->Bob", "Carol->Dave", "Eve->Bob"};
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("  %-12s leaf=%llu accesses=%u proof %s\n", who[i],
                static_cast<unsigned long long>(results[i].leaf_index),
                results[i].oblivious_accesses,
                results[i].proof_valid ? "VERIFIED against signed root" : "INVALID");
  }

  // The signed root is public: clients compare it across epochs / gossip it to detect
  // equivocation. Print its first bytes.
  const auto& root = log.signed_root();
  std::printf("signed root: %02x%02x%02x%02x...\n", root[0], root[1], root[2], root[3]);
  return results[0].proof_valid && results[1].proof_valid && results[2].proof_valid ? 0 : 1;
}
