// Multi-tenant store with oblivious access control (paper Appendix D): per-user rules
// are themselves stored obliviously, so serving a request reveals neither the object
// nor whether the requester was authorized.
//
//   ./examples/access_control_demo

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/access_control.h"

int main() {
  using namespace snoopy;

  SnoopyConfig data_cfg;
  data_cfg.num_suborams = 2;
  data_cfg.value_size = 48;
  SnoopyConfig acl_cfg;
  acl_cfg.num_suborams = 2;
  AccessControlledSnoopy store(data_cfg, acl_cfg, /*seed=*/11);

  auto value_of = [&](const std::string& text) {
    std::vector<uint8_t> v(data_cfg.value_size, 0);
    std::memcpy(v.data(), text.data(), text.size());
    return v;
  };

  // Two tenants share the store. Alice (user 1) owns record 100; Bob (user 2) owns
  // record 200 and has read-only access to Alice's record.
  store.Initialize(
      {
          {100, value_of("alice: medical history")},
          {200, value_of("bob: tax documents")},
      },
      {
          {/*user=*/1, /*object=*/100, kOpRead, true},
          {1, 100, kOpWrite, true},
          {2, 200, kOpRead, true},
          {2, 200, kOpWrite, true},
          {2, 100, kOpRead, true},  // Bob may read, not write, Alice's record
      });

  // One mixed epoch: permitted and denied operations execute indistinguishably.
  store.SubmitRead(1, 1, 100);                               // Alice reads her record
  store.SubmitRead(2, 2, 100);                               // Bob reads Alice's (ok)
  store.SubmitWrite(2, 3, 100, value_of("bob was here"));    // Bob writes Alice's (denied)
  store.SubmitRead(1, 4, 200);                               // Alice reads Bob's (denied)

  for (const ClientResponse& resp : store.RunEpoch()) {
    const bool null_resp = resp.value[0] == 0;
    std::printf("  user %llu, key %llu: %s\n",
                static_cast<unsigned long long>(resp.client_id),
                static_cast<unsigned long long>(resp.key),
                null_resp ? "(denied -> null)"
                          : reinterpret_cast<const char*>(resp.value.data()));
  }

  // Bob's denied write left Alice's record intact.
  store.SubmitRead(1, 5, 100);
  for (const ClientResponse& resp : store.RunEpoch()) {
    std::printf("after the denied write, record 100 still reads: \"%s\"\n",
                reinterpret_cast<const char*>(resp.value.data()));
  }
  return 0;
}
