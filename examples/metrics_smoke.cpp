// Metrics smoke: run one Snoopy epoch with telemetry enabled and dump the registry.
//
//   ./examples/metrics_smoke          # JSON export on stdout
//   ./examples/metrics_smoke --prom   # Prometheus text exposition instead
//
// tools/ci.sh pipes the JSON through a validator that checks it parses and that the
// required series (epochs, requests, phase spans, batch sizes, network traffic) are
// present -- the telemetry contract the bench harnesses and dashboards rely on.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/snoopy.h"
#include "src/telemetry/metrics.h"

int main(int argc, char** argv) {
  using namespace snoopy;
  const bool prometheus = argc > 1 && std::string(argv[1]) == "--prom";

  SnoopyConfig config;
  config.num_load_balancers = 2;
  config.num_suborams = 2;
  config.value_size = 64;
  Snoopy store(config, /*seed=*/7);

  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t key = 0; key < 512; ++key) {
    objects.emplace_back(key, std::vector<uint8_t>(config.value_size, 0));
  }
  store.Initialize(objects);

  MetricsRegistry registry;  // private registry: the smoke output is deterministic
  store.set_metrics_registry(&registry);
  for (uint64_t i = 0; i < 32; ++i) {
    store.SubmitRead(/*client_id=*/i, /*client_seq=*/0, /*key=*/i % 512);
  }
  store.RunEpoch();

  std::fputs((prometheus ? registry.RenderPrometheus() : registry.RenderJson()).c_str(),
             stdout);
  return 0;
}
