// Fault tolerance demo: run a Snoopy deployment through an adversarial network --
// seeded drops, duplicates, bit flips, delays, and machine crashes -- and watch it
// recover (paper sections 4.3 and 9). Also demonstrates rollback protection: a host
// replaying a stale sealed snapshot is detected and refused.
//
//   ./examples/fault_tolerance [seed]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/core/snoopy.h"
#include "src/net/fault.h"

int main(int argc, char** argv) {
  using namespace snoopy;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  SnoopyConfig config;
  config.num_load_balancers = 2;
  config.num_suborams = 3;
  config.value_size = 32;
  Snoopy store(config, /*seed=*/2021);

  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t key = 0; key < 1000; ++key) {
    objects.emplace_back(key, std::vector<uint8_t>(config.value_size, 0));
  }
  store.Initialize(objects);

  // Chaos: roughly one in five messages suffers a fault, and machines occasionally
  // reboot between epochs. All decisions replay exactly for a given seed.
  FaultInjector injector(seed);
  FaultProfile chaos;
  chaos.drop = 0.08;
  chaos.duplicate = 0.05;
  chaos.corrupt = 0.05;
  chaos.crash_before_reply = 0.03;
  chaos.delay = 0.05;
  chaos.delay_s = 0.002;
  chaos.crash_at_epoch_start = 0.05;
  injector.set_default_profile(chaos);
  store.set_fault_injector(&injector);
  std::printf("chaos seed %llu: drops, duplicates, bit flips, delays, crashes\n",
              static_cast<unsigned long long>(seed));

  // Ten epochs of writes-then-reads; every response must still obey the Appendix C
  // linearization despite the mayhem.
  uint64_t checked = 0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (uint64_t i = 0; i < 8; ++i) {
      const uint64_t key = (epoch * 8 + i) % 1000;
      std::vector<uint8_t> value(config.value_size, 0);
      std::memcpy(value.data(), &key, 8);
      store.SubmitWrite(/*client_id=*/1, /*client_seq=*/epoch * 100 + i, key, value);
    }
    for (uint64_t i = 0; i < 8; ++i) {
      const uint64_t key = (epoch * 8 + i) % 1000;  // written last epoch or earlier
      store.SubmitRead(2, epoch * 100 + 50 + i, key);
    }
    for (const ClientResponse& resp : store.RunEpoch()) {
      if (resp.op != kOpRead || resp.client_id != 2) {
        continue;
      }
      uint64_t tag = 0;
      std::memcpy(&tag, resp.value.data(), 8);
      // Reads serialize before same-epoch writes at their load balancer, so a read
      // sees either 0 (never written before this epoch) or its own key.
      if (tag != 0 && tag != resp.key) {
        std::printf("LINEARIZABILITY VIOLATION: key %llu read %llu\n",
                    static_cast<unsigned long long>(resp.key),
                    static_cast<unsigned long long>(tag));
        return 1;
      }
      ++checked;
    }
  }

  const Network::Stats& stats = store.network().stats();
  std::printf("10 chaotic epochs, %llu read responses checked, all linearizable\n",
              static_cast<unsigned long long>(checked));
  std::printf("  faults injected: %llu   retries: %llu   timeouts: %llu\n",
              static_cast<unsigned long long>(stats.faults_injected),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.timeouts));
  std::printf("  component recoveries (sealed restore / stateless rebuild): %llu\n",
              static_cast<unsigned long long>(stats.recoveries));
  std::printf("  virtual time consumed by backoff and delays: %.3fs\n",
              store.clock().now_s());

  // Rollback protection: crash a subORAM and hand recovery a stale snapshot. The
  // enclave compares the snapshot's sealed counter against its trusted monotonic
  // counter and refuses to serve superseded state.
  const std::vector<uint8_t> stale = store.suboram_snapshot(0);
  store.SubmitWrite(1, 99990, 0, std::vector<uint8_t>(config.value_size, 9));
  store.RunEpoch();  // bumps suboram 0's counter past the saved snapshot
  store.host_replace_snapshot(0, stale);
  injector.MarkCrashed("suboram/0");
  store.SubmitRead(2, 99991, 0);
  try {
    store.RunEpoch();
    std::printf("ERROR: stale snapshot was accepted\n");
    return 1;
  } catch (const RollbackDetectedError& e) {
    std::printf("rollback replay refused as designed: %s\n", e.what());
  }
  return 0;
}
