// Planner CLI (paper section 6): given a data size, a throughput target, and a latency
// budget, print the cheapest (load balancers, subORAMs) configuration.
//
//   ./examples/planner_cli [num_objects] [reqs_per_sec] [max_latency_ms]
//   ./examples/planner_cli 2000000 92000 500

#include <cstdio>
#include <cstdlib>

#include "src/core/planner.h"
#include "src/sim/cost_model.h"

int main(int argc, char** argv) {
  using namespace snoopy;

  PlannerInput input;
  input.num_objects = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000000;
  input.min_throughput = argc > 2 ? std::strtod(argv[2], nullptr) : 50000;
  input.max_latency_s = (argc > 3 ? std::strtod(argv[3], nullptr) : 1000.0) / 1000.0;

  // Service times come from the calibrated cost model, exactly how the paper's planner
  // consumes microbenchmark results.
  const CostModel model;
  PlannerCostFns fns;
  fns.lb_seconds = [&model](uint64_t r, uint64_t s) { return model.LbEpochSeconds(r, s); };
  fns.suboram_seconds = [&model](uint64_t batch, uint64_t n) {
    return model.SubOramBatchSeconds(batch, n);
  };

  std::printf("planning: %llu objects, >= %.0f reqs/s, <= %.0f ms average latency\n",
              static_cast<unsigned long long>(input.num_objects), input.min_throughput,
              input.max_latency_s * 1000.0);

  const PlannerResult result = PlanConfiguration(input, fns);
  if (!result.feasible) {
    std::printf("no configuration up to %u load balancers x %u subORAMs meets the "
                "requirements; relax the latency bound or lower the load\n",
                input.max_load_balancers, input.max_suborams);
    return 1;
  }
  std::printf("cheapest configuration:\n");
  std::printf("  load balancers : %u\n", result.load_balancers);
  std::printf("  subORAMs       : %u\n", result.suborams);
  std::printf("  epoch length   : %.0f ms\n", result.epoch_seconds * 1000.0);
  std::printf("  avg latency    : %.0f ms (= 5T/2)\n", result.avg_latency_s * 1000.0);
  std::printf("  monthly cost   : $%.0f\n", result.cost_per_month);
  return 0;
}
