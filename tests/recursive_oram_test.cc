#include "src/oram/position_map.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "src/crypto/rng.h"

namespace snoopy {
namespace {

std::vector<uint8_t> Val(uint64_t tag, size_t size = 32) {
  std::vector<uint8_t> v(size, 0);
  std::memcpy(v.data(), &tag, 8);
  return v;
}

TEST(RecursivePathOram, DepthMatchesGeometry) {
  RecursivePathOramConfig cfg;
  cfg.block_size = 32;
  cfg.entries_per_block = 16;
  cfg.flat_threshold = 128;
  cfg.num_blocks = 100;  // fits in the flat map directly
  EXPECT_EQ(RecursivePathOram(cfg, 1).recursion_depth(), 1u);
  cfg.num_blocks = 2048;  // 2048 -> 128: one map level
  EXPECT_EQ(RecursivePathOram(cfg, 1).recursion_depth(), 2u);
  cfg.num_blocks = 40000;  // 40000 -> 2500 -> 157 -> 10: three map levels
  EXPECT_EQ(RecursivePathOram(cfg, 1).recursion_depth(), 4u);
}

class RecursiveOramSizes : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecursiveOramSizes, RandomWorkloadMatchesReferenceMap) {
  const uint64_t n = GetParam();
  RecursivePathOramConfig cfg;
  cfg.num_blocks = n;
  cfg.block_size = 32;
  cfg.flat_threshold = 16;  // force recursion even at small sizes
  cfg.entries_per_block = 4;
  RecursivePathOram oram(cfg, n + 31);
  Rng rng(n + 32);
  std::map<uint64_t, std::vector<uint8_t>> model;
  for (int i = 0; i < 1500; ++i) {
    const uint64_t addr = rng.Uniform(n);
    if (rng.Uniform(2) == 0) {
      const auto expected =
          model.count(addr) != 0 ? model[addr] : std::vector<uint8_t>(32, 0);
      ASSERT_EQ(oram.Read(addr), expected) << "n=" << n << " i=" << i;
    } else {
      auto v = Val(rng.Next64());
      oram.Write(addr, v);
      model[addr] = v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RecursiveOramSizes, ::testing::Values(20, 64, 257, 1000));

TEST(RecursivePathOram, ZeroStateIsConsistentBeforeAnyWrite) {
  RecursivePathOramConfig cfg;
  cfg.num_blocks = 500;
  cfg.block_size = 16;
  cfg.flat_threshold = 8;
  cfg.entries_per_block = 4;
  RecursivePathOram oram(cfg, 77);
  for (uint64_t a = 0; a < 500; a += 37) {
    EXPECT_EQ(oram.Read(a), std::vector<uint8_t>(16, 0));
  }
}

TEST(RecursivePathOram, BandwidthGrowsWithDepth) {
  RecursivePathOramConfig shallow;
  shallow.num_blocks = 64;
  shallow.block_size = 16;
  shallow.flat_threshold = 64;
  RecursivePathOram a(shallow, 1);

  RecursivePathOramConfig deep = shallow;
  deep.flat_threshold = 4;
  deep.entries_per_block = 4;
  RecursivePathOram b(deep, 1);
  ASSERT_GT(b.recursion_depth(), a.recursion_depth());

  a.Read(0);
  b.Read(0);
  EXPECT_GT(b.blocks_moved(), a.blocks_moved())
      << "each recursion level adds path accesses";
}

}  // namespace
}  // namespace snoopy
