// Permanent subORAM loss, redundant sealed-state striping, background repair, and
// epoch-boundary elastic resharding (DESIGN.md "Failure model and repair").
//
// The properties under test:
//   1. a permanently lost partition is reconstructed from the stripes its peers hold,
//      on a public epoch schedule, with zero lost or stale records -- every
//      acknowledged write before the loss is served after the repair,
//   2. requests addressed to the dead partition fail over to the epoch queue
//      (bounded retries, typed PartitionUnavailable) and complete when the repair
//      does; the other partitions keep serving throughout,
//   3. a malicious host serving stale stripes is refused (rollback protection
//      extends to the redundancy path),
//   4. resharding N -> N+1 -> N preserves every record and, against a twin
//      deployment that never resharded, yields byte-identical responses and enclave
//      memory traces for the steady-state epochs,
//   5. crashes during repair and during reshard either complete or roll back
//      cleanly, identically across epoch thread counts,
//   6. the cluster simulator distinguishes transient crashes from permanent losses
//      and the planner emits elastic schedules for diurnal forecasts.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/core/planner.h"
#include "src/core/snoopy.h"
#include "src/crypto/rng.h"
#include "src/enclave/trace.h"
#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/net/retry.h"
#include "src/sim/cluster.h"

namespace snoopy {
namespace {

constexpr size_t kValueSize = 16;

std::vector<uint8_t> Val(uint64_t tag) {
  std::vector<uint8_t> v(kValueSize, 0);
  std::memcpy(v.data(), &tag, 8);
  return v;
}

uint64_t TagOf(const std::vector<uint8_t>& v) {
  uint64_t tag = 0;
  std::memcpy(&tag, v.data(), 8);
  return tag;
}

SnoopyConfig StripedConfig(uint32_t lbs, uint32_t sos, uint32_t replicas,
                           bool xor_parity, uint32_t repair_epochs) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = lbs;
  cfg.num_suborams = sos;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  cfg.striping.replicas = replicas;
  cfg.striping.xor_parity = xor_parity;
  cfg.striping.repair_epochs = repair_epochs;
  return cfg;
}

// ---------------------------------------------------------------------------------
// RetryPolicy total-retry cap (dead partitions must not spin).
// ---------------------------------------------------------------------------------

TEST(RetryCap, TotalRetriesBoundAttemptsAcrossTheCall) {
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.max_total_retries = 2;
  VirtualClock clock;
  RetryExecutor executor(policy, /*jitter_seed=*/3, &clock);
  int calls = 0;
  EXPECT_THROW(executor.Execute(
                   [&]() -> std::vector<uint8_t> {
                     ++calls;
                     throw TimeoutError("suboram/0/from/0");
                   },
                   nullptr),
               DeadlineExceededError);
  EXPECT_EQ(calls, 3) << "initial attempt + max_total_retries retries";
}

TEST(RetryCap, ZeroMeansUncapped) {
  RetryPolicy policy;
  policy.max_attempts = 7;
  policy.max_total_retries = 0;
  VirtualClock clock;
  RetryExecutor executor(policy, 3, &clock);
  int calls = 0;
  EXPECT_THROW(executor.Execute(
                   [&]() -> std::vector<uint8_t> {
                     ++calls;
                     throw TimeoutError("suboram/0/from/0");
                   },
                   nullptr),
               DeadlineExceededError);
  EXPECT_EQ(calls, 7) << "attempts governed by max_attempts alone";
}

// ---------------------------------------------------------------------------------
// Striping at the epoch seal.
// ---------------------------------------------------------------------------------

TEST(Striping, SealDistributesStripesToSuccessorPeers) {
  auto store = std::make_unique<Snoopy>(StripedConfig(1, 3, 1, false, 2), 5);
  store->Initialize({{1, Val(0)}, {2, Val(0)}, {3, Val(0)}});
  // Initialize seals and stripes; every partition's single successor peer holds a
  // full counter-tagged copy.
  for (uint32_t so = 0; so < 3; ++so) {
    const uint32_t peer = (so + 1) % 3;
    const Snoopy::HostStripe* stripe = store->host_stripe(peer, so);
    ASSERT_NE(stripe, nullptr) << "owner " << so;
    EXPECT_GT(stripe->seal_counter, 0u);
    EXPECT_EQ(stripe->chunk_count, 1u) << "replication mode: one full chunk";
    EXPECT_EQ(stripe->blob_len, stripe->payload.size());
    EXPECT_EQ(store->host_stripe(so, so), nullptr) << "no self-stripe";
  }
  // A later seal replaces the stripe with a fresher generation.
  const uint64_t before = store->host_stripe(1, 0)->seal_counter;
  store->SubmitWrite(1, 1, 1, Val(9));
  store->RunEpoch();
  EXPECT_GT(store->host_stripe(1, 0)->seal_counter, before);
}

TEST(Striping, ConstructorRejectsTooFewPeers) {
  EXPECT_THROW(Snoopy(StripedConfig(1, 2, 2, false, 2), 5), std::invalid_argument);
  EXPECT_THROW(Snoopy(StripedConfig(1, 3, 2, true, 2), 5), std::invalid_argument);
  EXPECT_NO_THROW(Snoopy(StripedConfig(1, 4, 2, true, 2), 5));
}

TEST(Striping, LossWithStripingDisabledIsUnrecoverable) {
  auto store = std::make_unique<Snoopy>(StripedConfig(1, 2, 0, false, 2), 5);
  store->Initialize({{1, Val(0)}});
  EXPECT_THROW(store->LoseSubOram(0), std::runtime_error);
}

// ---------------------------------------------------------------------------------
// Permanent loss, degraded service, and repair on the public schedule.
// ---------------------------------------------------------------------------------

// Shared scenario: write a tag to every key, permanently lose one partition, keep
// submitting one read per key per epoch, and require that (a) reads for healthy
// partitions answer in their own epoch, (b) reads for the dead partition defer and
// answer exactly when the repair completes, and (c) no record is lost or stale.
void RunLossRepairScenario(uint32_t replicas, bool xor_parity, int epoch_threads) {
  const uint32_t kSos = 4;
  const uint32_t kRepairEpochs = 3;
  const uint64_t kKeys = 24;
  SnoopyConfig cfg = StripedConfig(2, kSos, replicas, xor_parity, kRepairEpochs);
  cfg.epoch_threads = epoch_threads;
  auto store = std::make_unique<Snoopy>(cfg, 17);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < kKeys; ++k) {
    objects.emplace_back(k, Val(0));
  }
  store->Initialize(objects);

  FaultInjector injector(17);
  store->set_fault_injector(&injector);

  // Epoch 1: acknowledge a distinct tag per key.
  uint64_t seq = 1;
  std::map<uint64_t, uint64_t> seq_to_key;
  for (uint64_t k = 0; k < kKeys; ++k) {
    store->SubmitWrite(1, seq, k, Val(100 + k));
    seq_to_key[seq] = k;
    ++seq;
  }
  ASSERT_EQ(store->RunEpoch().size(), kKeys);

  const uint32_t victim = 1;
  store->LoseSubOram(victim);
  ASSERT_EQ(store->partition_health(victim), Snoopy::PartitionHealth::kRepairing);
  ASSERT_EQ(store->repair_epochs_remaining(victim), kRepairEpochs);

  std::map<uint64_t, uint64_t> observed;  // seq -> tag
  std::map<uint64_t, uint64_t> answered_at_epoch;
  uint64_t submitted = 0;
  for (uint32_t e = 1; e <= kRepairEpochs; ++e) {
    for (uint64_t k = 0; k < kKeys; ++k) {
      store->SubmitRead(1, seq, k);
      seq_to_key[seq] = k;
      ++seq;
      ++submitted;
    }
    for (const ClientResponse& resp : store->RunEpoch()) {
      ASSERT_EQ(observed.count(resp.client_seq), 0u) << "duplicate response";
      observed[resp.client_seq] = TagOf(resp.value);
      answered_at_epoch[resp.client_seq] = e;
    }
    if (e < kRepairEpochs) {
      EXPECT_EQ(store->partition_health(victim), Snoopy::PartitionHealth::kRepairing);
      EXPECT_EQ(store->repair_epochs_remaining(victim), kRepairEpochs - e);
    }
  }
  // The repair completed on schedule and every submitted read has exactly one
  // response with the pre-loss tag: zero lost, zero stale records.
  EXPECT_EQ(store->partition_health(victim), Snoopy::PartitionHealth::kHealthy);
  ASSERT_EQ(observed.size(), submitted);
  for (const auto& [s, tag] : observed) {
    const uint64_t key = seq_to_key[s];
    EXPECT_EQ(tag, 100 + key) << "seq " << s << " key " << key;
    // Healthy-partition reads answer in their own epoch; dead-partition reads defer
    // to the completion epoch.
    if (store->SubOramOf(key) == victim) {
      EXPECT_EQ(answered_at_epoch[s], kRepairEpochs)
          << "dead-partition request must defer to the repair-completion epoch";
    }
  }
  // The scenario exercised both sides of the partition map.
  bool any_victim = false;
  for (uint64_t k = 0; k < kKeys; ++k) {
    any_victim = any_victim || store->SubOramOf(k) == victim;
  }
  ASSERT_TRUE(any_victim) << "test workload never touched the lost partition";
}

TEST(Repair, ReplicationModeRestoresEveryRecordOnSchedule) {
  RunLossRepairScenario(/*replicas=*/1, /*xor_parity=*/false, /*epoch_threads=*/1);
}

TEST(Repair, XorParityModeRestoresEveryRecordOnSchedule) {
  RunLossRepairScenario(/*replicas=*/2, /*xor_parity=*/true, /*epoch_threads=*/1);
}

TEST(Repair, ParallelEpochPipelineRepairsIdentically) {
  RunLossRepairScenario(/*replicas=*/1, /*xor_parity=*/false, /*epoch_threads=*/4);
}

TEST(Repair, ScheduleIsIndependentOfRequestPattern) {
  // The repair rate is public: a partition under repair takes exactly
  // striping.repair_epochs epochs whether the deployment is idle or hammered.
  // (The per-epoch slice size is a function of snapshot geometry alone.)
  for (const bool busy : {false, true}) {
    SnoopyConfig cfg = StripedConfig(2, 3, 1, false, 4);
    auto store = std::make_unique<Snoopy>(cfg, 23);
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
    for (uint64_t k = 0; k < 16; ++k) {
      objects.emplace_back(k, Val(k));
    }
    store->Initialize(objects);
    FaultInjector injector(23);
    store->set_fault_injector(&injector);
    store->LoseSubOram(0);
    uint64_t seq = 1;
    for (uint32_t e = 0; e < 4; ++e) {
      ASSERT_EQ(store->repair_epochs_remaining(0), 4 - e) << "busy=" << busy;
      if (busy) {
        for (uint64_t k = 0; k < 16; ++k) {
          store->SubmitRead(1, seq++, k);
        }
      }
      store->RunEpoch();
    }
    EXPECT_EQ(store->partition_health(0), Snoopy::PartitionHealth::kHealthy)
        << "busy=" << busy;
  }
}

TEST(Repair, HealthyPartitionsKeepServingWhileDegraded) {
  auto store = std::make_unique<Snoopy>(StripedConfig(1, 3, 1, false, 4), 29);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 12; ++k) {
    objects.emplace_back(k, Val(k + 1));
  }
  store->Initialize(objects);
  FaultInjector injector(29);
  store->set_fault_injector(&injector);
  store->LoseSubOram(2);
  uint64_t seq = 1;
  std::map<uint64_t, uint64_t> expected;  // seq -> tag, healthy partitions only
  for (uint64_t k = 0; k < 12; ++k) {
    if (store->SubOramOf(k) != 2) {
      expected[seq] = k + 1;
    }
    store->SubmitRead(1, seq, k);
    ++seq;
  }
  std::map<uint64_t, uint64_t> observed;
  for (const ClientResponse& resp : store->RunEpoch()) {
    observed[resp.client_seq] = TagOf(resp.value);
  }
  ASSERT_EQ(observed.size(), expected.size())
      << "exactly the healthy partitions' requests answer in a degraded epoch";
  for (const auto& [s, tag] : expected) {
    EXPECT_EQ(observed[s], tag);
  }
}

// ---------------------------------------------------------------------------------
// Rollback protection on the redundancy path.
// ---------------------------------------------------------------------------------

TEST(Repair, StaleStripeReplayIsRefusedAsRollback) {
  auto store = std::make_unique<Snoopy>(StripedConfig(1, 3, 1, false, 2), 31);
  store->Initialize({{1, Val(0)}, {2, Val(0)}, {3, Val(0)}});
  FaultInjector injector(31);
  store->set_fault_injector(&injector);

  const uint32_t victim = 0;
  const uint32_t peer = 1;  // victim's single stripe peer
  ASSERT_NE(store->host_stripe(peer, victim), nullptr);
  const Snoopy::HostStripe stale = *store->host_stripe(peer, victim);
  // Let a later seal supersede the captured stripe, then play the malicious host.
  store->SubmitWrite(1, 1, 1, Val(7));
  store->RunEpoch();
  ASSERT_GT(store->host_stripe(peer, victim)->seal_counter, stale.seal_counter);
  store->host_replace_stripe(peer, victim, stale);

  store->LoseSubOram(victim);
  try {
    for (int e = 0; e < 2; ++e) {
      store->RunEpoch();
    }
    FAIL() << "expected RollbackDetectedError from the stale-stripe restore";
  } catch (const RollbackDetectedError& e) {
    EXPECT_EQ(e.status(), UnsealStatus::kRollback);
  }
}

TEST(Repair, CrashedStripePeerIsRecoveredAndRepairCompletes) {
  // Chaos during repair: the peers sourcing the stripes crash mid-window. The
  // retried stripe fetch recovers them (sealed-snapshot restore) and the repair
  // still completes on schedule with every record intact.
  auto store = std::make_unique<Snoopy>(StripedConfig(1, 4, 2, false, 3), 37);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 16; ++k) {
    objects.emplace_back(k, Val(k + 50));
  }
  store->Initialize(objects);
  FaultInjector injector(37);
  store->set_fault_injector(&injector);

  const uint32_t victim = 2;
  store->LoseSubOram(victim);
  store->RunEpoch();  // first slice fetched
  injector.MarkCrashed("suboram/3");  // victim's stripe peers: 3 and 0
  injector.MarkCrashed("suboram/0");
  store->RunEpoch();
  store->RunEpoch();
  EXPECT_EQ(store->partition_health(victim), Snoopy::PartitionHealth::kHealthy);
  EXPECT_GE(store->network().stats().recoveries, 1u);
  uint64_t seq = 1;
  for (uint64_t k = 0; k < 16; ++k) {
    store->SubmitRead(1, seq++, k);
  }
  std::map<uint64_t, uint64_t> observed;
  for (const ClientResponse& resp : store->RunEpoch()) {
    observed[resp.client_seq] = TagOf(resp.value);
  }
  ASSERT_EQ(observed.size(), 16u);
  for (uint64_t k = 0; k < 16; ++k) {
    EXPECT_EQ(observed[k + 1], k + 50);
  }
}

// ---------------------------------------------------------------------------------
// Epoch-boundary elastic resharding.
// ---------------------------------------------------------------------------------

TEST(Reshard, RoundTripPreservesEveryRecord) {
  SnoopyConfig cfg = StripedConfig(2, 3, 1, false, 2);
  auto store = std::make_unique<Snoopy>(cfg, 41);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 32; ++k) {
    objects.emplace_back(k, Val(k + 1));
  }
  store->Initialize(objects);

  auto verify_all = [&](uint64_t base_seq, uint64_t add) {
    uint64_t seq = base_seq;
    for (uint64_t k = 0; k < 32; ++k) {
      store->SubmitRead(1, seq++, k);
    }
    std::map<uint64_t, uint64_t> observed;
    for (const ClientResponse& resp : store->RunEpoch()) {
      observed[resp.client_seq] = TagOf(resp.value);
    }
    ASSERT_EQ(observed.size(), 32u);
    for (uint64_t k = 0; k < 32; ++k) {
      ASSERT_EQ(observed[base_seq + k], k + 1 + add) << "key " << k;
    }
  };

  store->Reshard(4);
  EXPECT_EQ(store->config().num_suborams, 4u);
  verify_all(1000, 0);
  // Mutate under the wider configuration, then shrink back: writes survive both.
  uint64_t seq = 2000;
  for (uint64_t k = 0; k < 32; ++k) {
    store->SubmitWrite(1, seq++, k, Val(k + 1 + 500));
  }
  store->RunEpoch();
  store->Reshard(3);
  EXPECT_EQ(store->config().num_suborams, 3u);
  verify_all(3000, 500);
  // Striping re-established for the new width: every partition's peer holds a stripe.
  for (uint32_t so = 0; so < 3; ++so) {
    EXPECT_NE(store->host_stripe((so + 1) % 3, so), nullptr);
  }
}

TEST(Reshard, NoOpAndInvalidWidths) {
  auto store = std::make_unique<Snoopy>(StripedConfig(1, 3, 1, false, 2), 43);
  store->Initialize({{1, Val(1)}});
  store->Reshard(3);  // no-op
  EXPECT_EQ(store->config().num_suborams, 3u);
  EXPECT_THROW(store->Reshard(0), std::invalid_argument);
  // The striping floor applies to the new width too (1 replica needs 2+ partitions).
  EXPECT_THROW(store->Reshard(1), std::invalid_argument);
}

TEST(Reshard, RefusedWhileAPartitionRepairs) {
  auto store = std::make_unique<Snoopy>(StripedConfig(1, 3, 1, false, 4), 47);
  store->Initialize({{1, Val(1)}, {2, Val(2)}});
  FaultInjector injector(47);
  store->set_fault_injector(&injector);
  store->LoseSubOram(1);
  EXPECT_THROW(store->Reshard(4), PartitionUnavailableError);
  // After the repair window the reshard proceeds.
  for (int e = 0; e < 4; ++e) {
    store->RunEpoch();
  }
  store->Reshard(4);
  EXPECT_EQ(store->config().num_suborams, 4u);
}

TEST(Reshard, ParticipantCrashAbortsAndRollsBackCleanly) {
  auto store = std::make_unique<Snoopy>(StripedConfig(2, 3, 1, false, 2), 53);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 16; ++k) {
    objects.emplace_back(k, Val(k + 9));
  }
  store->Initialize(objects);
  FaultInjector injector(53);
  store->set_fault_injector(&injector);

  injector.MarkCrashed("suboram/1");
  EXPECT_THROW(store->Reshard(4), ReshardAbortedError);
  // Build-then-swap: the old configuration is fully intact; the crashed component
  // recovers through the ordinary path and every record is still served.
  EXPECT_EQ(store->config().num_suborams, 3u);
  uint64_t seq = 1;
  for (uint64_t k = 0; k < 16; ++k) {
    store->SubmitRead(1, seq++, k);
  }
  std::map<uint64_t, uint64_t> observed;
  for (const ClientResponse& resp : store->RunEpoch()) {
    observed[resp.client_seq] = TagOf(resp.value);
  }
  ASSERT_EQ(observed.size(), 16u);
  for (uint64_t k = 0; k < 16; ++k) {
    EXPECT_EQ(observed[k + 1], k + 9);
  }
  // And the retry succeeds once the component is back.
  store->Reshard(4);
  EXPECT_EQ(store->config().num_suborams, 4u);
}

TEST(Reshard, SteadyStateEpochsMatchTwinDeploymentByteForByte) {
  // Deployment B reshards 3 -> 4 -> 3 between workload phases; deployment A never
  // reshards. Both then run an identical steady-state workload at the same epoch
  // indices: responses and enclave *memory* traces must be byte-identical -- the
  // reshard left no observable residue (state, partition map, or trace shape).
  auto run = [](bool reshard) {
    SnoopyConfig cfg;
    cfg.num_load_balancers = 2;
    cfg.num_suborams = 3;
    cfg.value_size = kValueSize;
    cfg.lambda = 40;
    cfg.sort_threads = 1;
    auto store = std::make_unique<Snoopy>(cfg, 61);
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
    for (uint64_t k = 0; k < 20; ++k) {
      objects.emplace_back(k, Val(0));
    }
    store->Initialize(objects);

    Rng rng(71);
    uint64_t seq = 1;
    auto run_epoch = [&] {
      for (int i = 0; i < 10; ++i) {
        const auto lb = static_cast<uint32_t>(rng.Uniform(2));
        const uint64_t key = rng.Uniform(20);
        if (rng.Uniform(2) == 0) {
          store->SubmitWriteWithLb(lb, 1, seq, key, Val(seq));
        } else {
          store->SubmitReadWithLb(lb, 1, seq, key);
        }
        ++seq;
      }
      return store->RunEpoch();
    };
    for (int e = 0; e < 2; ++e) {
      run_epoch();
    }
    if (reshard) {
      store->Reshard(4);
    }
    for (int e = 0; e < 2; ++e) {
      run_epoch();
    }
    if (reshard) {
      store->Reshard(3);
    }
    // Steady state: same width, same epoch indices, same workload stream.
    TraceScope scope;
    std::vector<std::pair<uint64_t, uint64_t>> responses;
    for (int e = 0; e < 3; ++e) {
      for (const ClientResponse& resp : run_epoch()) {
        responses.emplace_back(resp.client_seq, TagOf(resp.value));
      }
    }
    return std::make_pair(responses, MemoryTraceDigest(scope.Events()));
  };
  const auto [plain_responses, plain_digest] = run(false);
  const auto [resharded_responses, resharded_digest] = run(true);
  EXPECT_EQ(resharded_responses, plain_responses);
  EXPECT_EQ(resharded_digest, plain_digest)
      << "a reshard round-trip changed the steady-state enclave memory trace";
}

TEST(Reshard, ResponsesIdenticalAcrossEpochThreadCounts) {
  // The reshard + degraded-mode machinery must be schedule-independent: the same
  // scripted run (lose a partition, repair, reshard) under a sequential and a
  // parallel epoch pipeline returns identical responses.
  auto run = [](int epoch_threads) {
    SnoopyConfig cfg = StripedConfig(2, 4, 1, false, 2);
    cfg.epoch_threads = epoch_threads;
    auto store = std::make_unique<Snoopy>(cfg, 67);
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
    for (uint64_t k = 0; k < 24; ++k) {
      objects.emplace_back(k, Val(k));
    }
    store->Initialize(objects);
    FaultInjector injector(67);
    store->set_fault_injector(&injector);

    std::vector<std::pair<uint64_t, uint64_t>> responses;
    uint64_t seq = 1;
    auto epoch = [&] {
      for (uint64_t k = 0; k < 24; ++k) {
        const uint64_t write_seq = seq++;
        store->SubmitWriteWithLb(static_cast<uint32_t>(k % 2), 1, write_seq, k,
                                 Val(1000 + write_seq));
        store->SubmitReadWithLb(static_cast<uint32_t>((k + 1) % 2), 1, seq++, k);
      }
      std::vector<ClientResponse> out = store->RunEpoch();
      for (const ClientResponse& resp : out) {
        responses.emplace_back(resp.client_seq, TagOf(resp.value));
      }
    };
    epoch();
    store->LoseSubOram(1);
    epoch();  // degraded + repair slice 1
    epoch();  // repair completes, deferred requests drain
    store->Reshard(3);
    epoch();
    std::sort(responses.begin(), responses.end());
    return responses;
  };
  EXPECT_EQ(run(1), run(4));
}

// ---------------------------------------------------------------------------------
// Cluster simulator: transient crash vs. permanent loss, resharding, diurnal load.
// ---------------------------------------------------------------------------------

ClusterConfig SimConfig() {
  ClusterConfig cfg;
  cfg.load_balancers = 1;
  cfg.suborams = 3;
  cfg.num_objects = 2000000;
  cfg.epoch_seconds = 0.2;
  return cfg;
}

TEST(ClusterRepairSim, PermanentLossesAreDistinguishedFromCrashes) {
  const CostModel model;
  ClusterConfig cfg = SimConfig();
  cfg.suboram_mttf_s = 3.0;
  cfg.suboram_mttr_s = 0.2;
  cfg.suboram_mtpl_s = 4.0;
  cfg.repair_epochs = 4;
  const ClusterSimulator sim(cfg, model);
  const ClusterMetrics m = sim.Run(2000, 12.0, /*seed=*/3);
  EXPECT_GT(m.permanent_losses, 0u);
  EXPECT_GT(m.transient_failures, 0u);
  EXPECT_EQ(m.failures, m.transient_failures + m.permanent_losses)
      << "`failures` stays the backward-compatible total";
  EXPECT_GT(m.repairs_completed, 0u);
  EXPECT_GE(m.degraded_epochs, static_cast<uint64_t>(cfg.repair_epochs))
      << "each loss degrades at least repair_epochs epochs";
  EXPECT_GT(m.deferred_ops, 0.0);
  EXPECT_GT(m.throughput, 0.0) << "the cluster keeps serving while degraded";
}

TEST(ClusterRepairSim, ZeroLossRateIsBitIdenticalToBaseline) {
  // Like the crash knobs, the loss/reshard/profile knobs must not perturb a seeded
  // run when disabled: the gating keeps the failure stream's draw sequence intact.
  const CostModel model;
  const ClusterSimulator baseline(SimConfig(), model);
  ClusterConfig with_knobs = SimConfig();
  with_knobs.suboram_mtpl_s = 0;
  with_knobs.repair_epochs = 9;  // irrelevant while the rate is zero
  const ClusterSimulator disabled(with_knobs, model);
  const ClusterMetrics a = baseline.Run(2000, 6.0, /*seed=*/1);
  const ClusterMetrics b = disabled.Run(2000, 6.0, /*seed=*/1);
  EXPECT_EQ(a.completed_ops, b.completed_ops);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.max_latency_s, b.max_latency_s);
  EXPECT_EQ(b.permanent_losses, 0u);
  EXPECT_EQ(b.deferred_ops, 0.0);
}

TEST(ClusterRepairSim, DeferredRequestsReturnAfterRepair) {
  // With losses but no transient crashes, everything offered is eventually served:
  // deferred mass drains at repair completion (losses near the window's end excepted).
  const CostModel model;
  ClusterConfig cfg = SimConfig();
  cfg.suboram_mtpl_s = 5.0;
  cfg.repair_epochs = 3;
  const ClusterSimulator sim(cfg, model);
  const ClusterMetrics m = sim.Run(2000, 12.0, /*seed=*/7);
  ASSERT_GT(m.permanent_losses, 0u);
  ASSERT_GT(m.repairs_completed, 0u);
  EXPECT_GT(m.deferred_ops, 0.0);
  // Deferred ops that drained count as completed; throughput stays near offered.
  EXPECT_GT(m.throughput, 0.85 * 2000);
  EXPECT_GT(m.max_latency_s, static_cast<double>(cfg.repair_epochs) * cfg.epoch_seconds)
      << "a deferred request waits at least the repair window";
}

TEST(ClusterRepairSim, ReshardScheduleChangesTheWidthMidRun) {
  const CostModel model;
  ClusterConfig cfg = SimConfig();
  cfg.reshard_schedule = {{/*at_s=*/3.0, /*suborams=*/6}};
  const ClusterSimulator sim(cfg, model);
  const ClusterMetrics m = sim.Run(2000, 10.0, /*seed=*/5);
  EXPECT_EQ(m.reshards, 1u);
  EXPECT_GT(m.throughput, 1500.0)
      << "every offered op is still served; the migration only delays";
  // The migration stall is real and shows up in the tail, not in lost work.
  const ClusterMetrics fixed = ClusterSimulator(SimConfig(), model).Run(2000, 10.0, 5);
  EXPECT_GT(m.max_latency_s, fixed.max_latency_s)
      << "the oblivious redistribution must cost visible wall-clock";
}

TEST(ClusterRepairSim, DiurnalProfileScalesOfferedLoad) {
  const CostModel model;
  ClusterConfig cfg = SimConfig();
  const ClusterSimulator constant(cfg, model);
  ClusterConfig diurnal_cfg = SimConfig();
  diurnal_cfg.load_profile = {{0.0, 1.0}, {5.0, 0.2}};
  const ClusterSimulator diurnal(diurnal_cfg, model);
  const ClusterMetrics full = constant.Run(2000, 10.0, /*seed=*/9);
  const ClusterMetrics shaped = diurnal.Run(2000, 10.0, /*seed=*/9);
  EXPECT_GT(shaped.completed_ops, 0.0);
  EXPECT_LT(shaped.completed_ops, 0.75 * full.completed_ops)
      << "the off-peak phase must visibly reduce served load";
}

// ---------------------------------------------------------------------------------
// Elastic capacity planning over a diurnal forecast.
// ---------------------------------------------------------------------------------

PlannerCostFns SyntheticFns() {
  PlannerCostFns fns;
  fns.lb_seconds = [](uint64_t r, uint64_t s) {
    if (r == 0) {
      return 0.0;
    }
    const double total = static_cast<double>(r + 50 * s);
    const double lg = std::log2(total + 2);
    return 40e-9 * total * lg * lg;
  };
  fns.suboram_seconds = [](uint64_t batch, uint64_t n) {
    return 150e-9 * static_cast<double>(n) + 2e-6 * static_cast<double>(batch) + 1e-3;
  };
  return fns;
}

TEST(ElasticPlanner, MergesEqualPhasesAndScalesForPeak) {
  PlannerInput input;
  input.num_objects = 1000000;
  input.max_latency_s = 1.0;
  const std::vector<LoadForecastPoint> forecast = {
      {0.0, 5000}, {3600.0, 5000}, {7200.0, 150000}, {10800.0, 5000}};
  const std::vector<ElasticPlanStep> steps =
      PlanElasticSchedule(input, SyntheticFns(), forecast);
  ASSERT_EQ(steps.size(), 3u) << "equal consecutive phases merge into one step";
  EXPECT_EQ(steps[0].start_s, 0.0);
  EXPECT_EQ(steps[1].start_s, 7200.0);
  EXPECT_EQ(steps[2].start_s, 10800.0);
  for (const ElasticPlanStep& step : steps) {
    ASSERT_TRUE(step.plan.feasible) << "phase at " << step.start_s;
  }
  const uint32_t off_peak = steps[0].plan.load_balancers + steps[0].plan.suborams;
  const uint32_t peak = steps[1].plan.load_balancers + steps[1].plan.suborams;
  EXPECT_GT(peak, off_peak) << "the peak phase must buy more machines";
  EXPECT_EQ(steps[2].plan.suborams, steps[0].plan.suborams)
      << "the post-peak phase scales back down";
}

TEST(ElasticPlanner, EmptyForecastYieldsNoSteps) {
  PlannerInput input;
  input.num_objects = 1000;
  EXPECT_TRUE(PlanElasticSchedule(input, SyntheticFns(), {}).empty());
}

}  // namespace
}  // namespace snoopy
