#include "src/analysis/batch_bound.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/crypto/rng.h"
#include "src/crypto/siphash.h"

namespace snoopy {
namespace {

TEST(BatchSize, EdgeCases) {
  EXPECT_EQ(BatchSize(0, 10, 128), 0u);
  EXPECT_EQ(BatchSize(100, 1, 128), 100u);     // one subORAM takes everything
  EXPECT_LE(BatchSize(100, 10, 128), 100u);    // never exceeds R
  EXPECT_EQ(BatchSize(5, 10, 128), 5u);        // tiny R: bound collapses to R
}

TEST(BatchSize, NoSecurityModeIsMeanLoad) {
  EXPECT_EQ(BatchSize(1000, 10, 0), 100u);
  EXPECT_EQ(BatchSize(1001, 10, 0), 101u);
}

TEST(BatchSize, AboveMeanAndBelowRInHighThroughputRegime) {
  const uint64_t b = BatchSize(100000, 10, 128);
  EXPECT_GT(b, 10000u);   // must exceed the mean R/S
  EXPECT_LT(b, 100000u);  // and be far below R (that is the whole point)
}

TEST(BatchSize, ChernoffBoundIsActuallyNegligible) {
  // Theorem 3's guarantee: the closed-form batch size drives the overflow probability
  // below 2^-lambda. Verified against the Chernoff expression it was inverted from.
  for (const uint32_t lambda : {80u, 128u}) {
    for (const uint64_t s : {2ull, 10ull, 20ull, 100ull}) {
      for (const uint64_t r : {1000ull, 10000ull, 100000ull, 1000000ull}) {
        const uint64_t b = BatchSize(r, s, lambda);
        if (b >= r) {
          continue;  // f = R: overflow impossible
        }
        EXPECT_LE(OverflowProbLog2(r, s, b), -static_cast<double>(lambda))
            << "R=" << r << " S=" << s << " lambda=" << lambda;
      }
    }
  }
}

TEST(BatchSize, MonotoneInRequests) {
  // CapacityForBatchLimit binary-searches on this property.
  for (const uint64_t s : {2ull, 10ull, 20ull}) {
    uint64_t prev = 0;
    for (uint64_t r = 100; r <= 200000; r = r * 3 / 2) {
      const uint64_t b = BatchSize(r, s, 128);
      EXPECT_GE(b, prev) << "R=" << r << " S=" << s;
      prev = b;
    }
  }
}

TEST(BatchSize, OverheadShrinksWithMoreRequests) {
  // Figure 3: dummy overhead decreases as R grows.
  const double at_1k = DummyOverheadPercent(1000, 10, 128);
  const double at_10k = DummyOverheadPercent(10000, 10, 128);
  const double at_100k = DummyOverheadPercent(100000, 10, 128);
  EXPECT_GT(at_1k, at_10k);
  EXPECT_GT(at_10k, at_100k);
}

TEST(BatchSize, OverheadGrowsWithMoreSubOrams) {
  // Figure 3: more subORAMs means proportionally more dummies.
  const double s2 = DummyOverheadPercent(10000, 2, 128);
  const double s10 = DummyOverheadPercent(10000, 10, 128);
  const double s20 = DummyOverheadPercent(10000, 20, 128);
  EXPECT_LT(s2, s10);
  EXPECT_LT(s10, s20);
}

TEST(CapacityForBatchLimit, MatchesDefinition) {
  for (const uint64_t s : {2ull, 5ull, 10ull, 20ull}) {
    const uint64_t cap = CapacityForBatchLimit(s, 1000, 128);
    EXPECT_LE(BatchSize(cap, s, 128), 1000u);
    EXPECT_GT(BatchSize(cap + 1, s, 128), 1000u);
  }
}

TEST(CapacityForBatchLimit, SublinearButGrowing) {
  // Figure 4: capacity grows with S but stays below the no-security line S * limit.
  uint64_t prev = 0;
  for (uint64_t s = 2; s <= 20; s += 2) {
    const uint64_t cap = CapacityForBatchLimit(s, 1000, 128);
    EXPECT_GT(cap, prev);
    EXPECT_LT(cap, s * 1000);
    EXPECT_EQ(CapacityForBatchLimit(s, 1000, 0), s * 1000);
    prev = cap;
  }
}

// Empirical validation: throw R keyed-hash-distributed distinct requests at S bins many
// times and confirm no bin ever exceeds f(R, S). With lambda = 128 a single failure in
// this test would be a once-per-2^128 event, i.e. a bug.
TEST(BatchSize, EmpiricalNoOverflow) {
  Rng rng(7);
  const std::vector<std::pair<uint64_t, uint64_t>> configs = {
      {1000, 2}, {1000, 10}, {5000, 10}, {5000, 20}, {20000, 20}};
  for (const auto& [r, s] : configs) {
    const uint64_t b = BatchSize(r, s, 128);
    for (int trial = 0; trial < 20; ++trial) {
      const SipKey key = rng.NextSipKey();
      std::vector<uint64_t> load(s, 0);
      for (uint64_t i = 0; i < r; ++i) {
        // Distinct keys 0..r-1 (dedup guarantees distinctness in the real system).
        ++load[SipHash24(key, i) % s];
      }
      for (uint64_t bin = 0; bin < s; ++bin) {
        ASSERT_LE(load[bin], b) << "R=" << r << " S=" << s << " trial=" << trial;
      }
    }
  }
}

}  // namespace
}  // namespace snoopy
