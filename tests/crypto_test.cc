#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/crypto/aead.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/hmac.h"
#include "src/crypto/poly1305.h"
#include "src/crypto/rng.h"
#include "src/crypto/sha256.h"
#include "src/crypto/siphash.h"

namespace snoopy {
namespace {

std::string HexOf(std::span<const uint8_t> bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

std::vector<uint8_t> FromHex(std::string_view hex) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    auto nib = [](char c) -> uint8_t {
      if (c >= '0' && c <= '9') {
        return static_cast<uint8_t>(c - '0');
      }
      return static_cast<uint8_t>(c - 'a' + 10);
    };
    out.push_back(static_cast<uint8_t>((nib(hex[i]) << 4) | nib(hex[i + 1])));
  }
  return out;
}

// ---------------------------------------------------------------- SHA-256 (FIPS 180-4)

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(HexOf(Sha256::Hash("abc", 3)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(HexOf(Sha256::Hash("", 0)),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  const std::string two_blocks = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(HexOf(Sha256::Hash(two_blocks.data(), two_blocks.size())),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk.data(), chunk.size());
  }
  EXPECT_EQ(HexOf(h.Finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::vector<uint8_t> msg(300);
  Rng rng(5);
  rng.Fill(msg.data(), msg.size());
  for (size_t split = 0; split <= msg.size(); split += 37) {
    Sha256 h;
    h.Update(msg.data(), split);
    h.Update(msg.data() + split, msg.size() - split);
    EXPECT_EQ(h.Finalize(), Sha256::Hash(msg.data(), msg.size()));
  }
}

// ------------------------------------------------------------- HMAC-SHA256 (RFC 4231)

TEST(Hmac, Rfc4231Case1) {
  const std::vector<uint8_t> key(20, 0x0b);
  const std::string data = "Hi There";
  const Mac256 mac = HmacSha256(key, std::span<const uint8_t>(
                                         reinterpret_cast<const uint8_t*>(data.data()),
                                         data.size()));
  EXPECT_EQ(HexOf(mac), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string data = "what do ya want for nothing?";
  const Mac256 mac = HmacSha256(
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(key.data()), key.size()),
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(data.data()), data.size()));
  EXPECT_EQ(HexOf(mac), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3LongKeyPath) {
  const std::vector<uint8_t> key(131, 0xaa);  // forces the key-hashing branch
  const std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Mac256 mac = HmacSha256(key, std::span<const uint8_t>(
                                         reinterpret_cast<const uint8_t*>(data.data()),
                                         data.size()));
  EXPECT_EQ(HexOf(mac), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(DeriveKey, DistinctLabelsAndCountersGiveDistinctKeys) {
  const std::vector<uint8_t> root(32, 0x42);
  const Mac256 a = DeriveKey(root, "epoch-key", 0);
  const Mac256 b = DeriveKey(root, "epoch-key", 1);
  const Mac256 c = DeriveKey(root, "channel-key", 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  EXPECT_EQ(a, DeriveKey(root, "epoch-key", 0));
}

// ------------------------------------------------------------- ChaCha20 (RFC 8439 2.4)

TEST(ChaCha20, Rfc8439Encryption) {
  std::vector<uint8_t> key(32);
  for (int i = 0; i < 32; ++i) {
    key[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
  }
  const std::vector<uint8_t> nonce = FromHex("000000000000004a00000000");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::vector<uint8_t> buf(plaintext.begin(), plaintext.end());
  ChaCha20 cipher(key, nonce, 1);
  cipher.Crypt(buf.data(), buf.size());
  EXPECT_EQ(HexOf(buf),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
  // Decryption is the same operation.
  ChaCha20 dec(key, nonce, 1);
  dec.Crypt(buf.data(), buf.size());
  EXPECT_EQ(std::string(buf.begin(), buf.end()), plaintext);
}

TEST(ChaCha20, Rfc8439KeystreamBlock) {
  std::vector<uint8_t> key(32);
  for (int i = 0; i < 32; ++i) {
    key[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
  }
  const std::vector<uint8_t> nonce = FromHex("000000090000004a00000000");
  ChaCha20 cipher(key, nonce, 1);
  std::array<uint8_t, 64> block;
  cipher.KeystreamBlock(1, block);
  EXPECT_EQ(HexOf(block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// ------------------------------------------------------------- Poly1305 (RFC 8439 2.5)

TEST(Poly1305, Rfc8439Vector) {
  const std::vector<uint8_t> key =
      FromHex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const std::string msg = "Cryptographic Forum Research Group";
  const Poly1305::Tag tag = Poly1305::Compute(
      key, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(HexOf(tag), "a8061dc1305136c6c22b8baf0c0127a9");
}

// -------------------------------------------------- ChaCha20-Poly1305 (RFC 8439 2.8.2)

TEST(Aead, Rfc8439SealVector) {
  Aead::Key key;
  for (int i = 0; i < 32; ++i) {
    key[static_cast<size_t>(i)] = static_cast<uint8_t>(0x80 + i);
  }
  Aead::Nonce nonce;
  const std::vector<uint8_t> nonce_bytes = FromHex("070000004041424344454647");
  std::memcpy(nonce.data(), nonce_bytes.data(), nonce.size());
  const std::vector<uint8_t> aad = FromHex("50515253c0c1c2c3c4c5c6c7");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";

  const Aead aead(key);
  const std::vector<uint8_t> sealed =
      aead.Seal(nonce, aad,
                std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(plaintext.data()),
                                         plaintext.size()));
  ASSERT_EQ(sealed.size(), plaintext.size() + Aead::kTagBytes);
  EXPECT_EQ(HexOf(std::span<const uint8_t>(sealed.data(), 16)),
            "d31a8d34648e60db7b86afbc53ef7ec2");
  EXPECT_EQ(HexOf(std::span<const uint8_t>(sealed.data() + plaintext.size(), 16)),
            "1ae10b594f09e26a7e902ecbd0600691");

  std::vector<uint8_t> opened;
  ASSERT_TRUE(aead.Open(nonce, aad, sealed, opened));
  EXPECT_EQ(std::string(opened.begin(), opened.end()), plaintext);
}

TEST(Aead, RejectsTamperingAndWrongNonce) {
  Rng rng(11);
  Aead::Key key;
  rng.Fill(key.data(), key.size());
  const Aead aead(key);
  const Aead::Nonce nonce = Aead::CounterNonce(7, 3);
  std::vector<uint8_t> msg(100);
  rng.Fill(msg.data(), msg.size());
  std::vector<uint8_t> aad = {1, 2, 3};

  std::vector<uint8_t> sealed = aead.Seal(nonce, aad, msg);
  std::vector<uint8_t> out;
  ASSERT_TRUE(aead.Open(nonce, aad, sealed, out));
  EXPECT_EQ(out, msg);

  // Flip one ciphertext bit.
  sealed[10] ^= 1;
  EXPECT_FALSE(aead.Open(nonce, aad, sealed, out));
  sealed[10] ^= 1;
  // Flip one tag bit.
  sealed[sealed.size() - 1] ^= 1;
  EXPECT_FALSE(aead.Open(nonce, aad, sealed, out));
  sealed[sealed.size() - 1] ^= 1;
  // Wrong nonce (replay under a different counter).
  EXPECT_FALSE(aead.Open(Aead::CounterNonce(8, 3), aad, sealed, out));
  // Wrong AAD.
  aad.push_back(4);
  EXPECT_FALSE(aead.Open(nonce, aad, sealed, out));
}

TEST(Aead, EmptyPlaintextAndAad) {
  Aead::Key key{};
  const Aead aead(key);
  const Aead::Nonce nonce{};
  const std::vector<uint8_t> sealed = aead.Seal(nonce, {}, {});
  EXPECT_EQ(sealed.size(), Aead::kTagBytes);
  std::vector<uint8_t> out{1, 2, 3};
  ASSERT_TRUE(aead.Open(nonce, {}, sealed, out));
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------- SipHash-2-4 vectors

TEST(SipHash, ReferenceVectors) {
  SipKey key;
  for (int i = 0; i < 16; ++i) {
    key[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
  }
  std::vector<uint8_t> msg;
  for (int i = 0; i < 16; ++i) {
    msg.push_back(static_cast<uint8_t>(i));
  }
  // Vectors from the SipHash reference implementation (Aumasson & Bernstein).
  EXPECT_EQ(SipHash24(key, std::span<const uint8_t>(msg.data(), 0)), 0x726fdb47dd0e0e31ULL);
  EXPECT_EQ(SipHash24(key, std::span<const uint8_t>(msg.data(), 1)), 0x74f839c593dc67fdULL);
  EXPECT_EQ(SipHash24(key, std::span<const uint8_t>(msg.data(), 2)), 0x0d6c8009d9a94f5aULL);
  EXPECT_EQ(SipHash24(key, std::span<const uint8_t>(msg.data(), 8)), 0x93f5f5799a932462ULL);
}

TEST(SipHash, UintHelperMatchesByteForm) {
  SipKey key{};
  key[0] = 9;
  const uint64_t v = 0x1122334455667788ULL;
  uint8_t bytes[8];
  std::memcpy(bytes, &v, 8);
  EXPECT_EQ(SipHash24(key, v), SipHash24(key, std::span<const uint8_t>(bytes, 8)));
}

// --------------------------------------------------------------------------------- RNG

TEST(Rng, DeterministicWithSeed) {
  Rng a(123);
  Rng b(123);
  Rng c(124);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next64();
    EXPECT_EQ(va, b.Next64());
    differs = differs || (va != c.Next64());
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(9);
  for (const uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    std::vector<uint64_t> hist(bound, 0);
    for (int i = 0; i < 2000; ++i) {
      const uint64_t v = rng.Uniform(bound);
      ASSERT_LT(v, bound);
      ++hist[v];
    }
    if (bound > 1 && bound <= 10) {
      for (uint64_t b = 0; b < bound; ++b) {
        EXPECT_GT(hist[b], 0u) << "bound=" << bound;
      }
    }
  }
}

TEST(Rng, FillCoversUnalignedLengths) {
  Rng rng(77);
  std::vector<uint8_t> buf(129, 0);
  rng.Fill(buf.data(), buf.size());
  int nonzero = 0;
  for (uint8_t b : buf) {
    nonzero += (b != 0);
  }
  EXPECT_GT(nonzero, 100);  // overwhelmingly likely for a working generator
}

}  // namespace
}  // namespace snoopy
