#include "src/core/planner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/batch_bound.h"

namespace snoopy {
namespace {

// A simple synthetic cost model with the right shape: load balancer time ~ R log^2 R,
// subORAM time ~ linear scan of n plus per-request work.
PlannerCostFns SyntheticFns() {
  PlannerCostFns fns;
  fns.lb_seconds = [](uint64_t r, uint64_t s) {
    if (r == 0) {
      return 0.0;
    }
    const double total = static_cast<double>(r + 50 * s);
    const double lg = std::log2(total + 2);
    return 40e-9 * total * lg * lg;
  };
  fns.suboram_seconds = [](uint64_t batch, uint64_t n) {
    return 150e-9 * static_cast<double>(n) + 2e-6 * static_cast<double>(batch) + 1e-3;
  };
  return fns;
}

TEST(Planner, FindsFeasibleConfigurationForModestLoad) {
  PlannerInput input;
  input.num_objects = 100000;
  input.min_throughput = 10000;
  input.max_latency_s = 1.0;
  const PlannerResult r = PlanConfiguration(input, SyntheticFns());
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.load_balancers, 1u);
  EXPECT_GE(r.suborams, 1u);
  EXPECT_LE(r.avg_latency_s, 1.0);
  EXPECT_NEAR(r.cost_per_month,
              294.0 * (r.load_balancers + r.suborams), 1e-9);
}

TEST(Planner, InfeasibleWhenLatencyTooTight) {
  PlannerInput input;
  input.num_objects = 50ull * 1000 * 1000;  // scan alone exceeds the epoch
  input.min_throughput = 1000;
  input.max_latency_s = 0.01;
  input.max_suborams = 4;
  const PlannerResult r = PlanConfiguration(input, SyntheticFns());
  EXPECT_FALSE(r.feasible);
}

TEST(Planner, CostGrowsWithThroughput) {
  PlannerInput input;
  input.num_objects = 1000000;
  input.max_latency_s = 1.0;
  double prev_cost = 0;
  for (const double x : {5000.0, 50000.0, 120000.0}) {
    input.min_throughput = x;
    const PlannerResult r = PlanConfiguration(input, SyntheticFns());
    ASSERT_TRUE(r.feasible) << "throughput " << x;
    EXPECT_GE(r.cost_per_month, prev_cost) << "throughput " << x;
    prev_cost = r.cost_per_month;
  }
}

TEST(Planner, LargerDataPrefersMoreSubOrams) {
  // Figure 14a's trend: deployments with larger data sizes need a higher ratio of
  // subORAMs to load balancers (the scan parallelizes across subORAMs).
  PlannerInput input;
  input.min_throughput = 40000;
  input.max_latency_s = 1.0;
  input.num_objects = 10000;
  const PlannerResult small = PlanConfiguration(input, SyntheticFns());
  input.num_objects = 4000000;
  const PlannerResult large = PlanConfiguration(input, SyntheticFns());
  ASSERT_TRUE(small.feasible);
  ASSERT_TRUE(large.feasible);
  EXPECT_GT(static_cast<double>(large.suborams) / large.load_balancers,
            static_cast<double>(small.suborams) / small.load_balancers);
}

TEST(MinFeasibleEpoch, MatchesPredicateBoundary) {
  PlannerInput input;
  input.num_objects = 100000;
  input.min_throughput = 20000;
  input.max_latency_s = 1.0;
  const PlannerCostFns fns = SyntheticFns();
  const double t = MinFeasibleEpoch(input, fns, 2, 4, 0.4);
  ASSERT_GT(t, 0.0);
  EXPECT_LE(t, 0.4);
  // Slightly smaller epochs must be infeasible (within search tolerance).
  const double t_small = t * 0.9;
  const uint64_t r = static_cast<uint64_t>(std::ceil(input.min_throughput * t_small / 2));
  const double lb = fns.lb_seconds(r, 4);
  const double so = 2 * fns.suboram_seconds(BatchSize(r, 4, input.lambda),
                                            input.num_objects / 4);
  EXPECT_TRUE(lb > t_small || so > t_small);
}

}  // namespace
}  // namespace snoopy
