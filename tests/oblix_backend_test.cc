#include "src/baseline/oblix_backend.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>

#include "src/core/snoopy.h"

namespace snoopy {
namespace {

constexpr size_t kValueSize = 32;

std::vector<uint8_t> ValueFor(uint64_t key, uint8_t version = 0) {
  std::vector<uint8_t> v(kValueSize, 0);
  std::memcpy(v.data(), &key, 8);
  v[8] = version;
  return v;
}

std::unique_ptr<Snoopy> MakeSnoopyOblix(uint32_t lbs, uint32_t sos, uint64_t n) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = lbs;
  cfg.num_suborams = sos;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  const OblixBackendFactory factory(/*capacity_per_shard=*/n + 16, kValueSize);
  auto store = std::make_unique<Snoopy>(cfg, /*seed=*/21, factory);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < n; ++k) {
    objects.emplace_back(k, ValueFor(k));
  }
  store->Initialize(objects);
  return store;
}

TEST(OblixBackend, SnoopyOblixReadsAndWrites) {
  // The Figure 10 configuration, functional: Snoopy's load balancer over Oblix shards.
  auto store = MakeSnoopyOblix(2, 3, 120);
  for (uint64_t i = 0; i < 15; ++i) {
    store->SubmitRead(1, i, i * 7 % 120);
  }
  std::map<uint64_t, std::vector<uint8_t>> by_seq;
  for (const ClientResponse& r : store->RunEpoch()) {
    by_seq[r.client_seq] = r.value;
  }
  ASSERT_EQ(by_seq.size(), 15u);
  for (uint64_t i = 0; i < 15; ++i) {
    EXPECT_EQ(by_seq[i], ValueFor(i * 7 % 120));
  }

  store->SubmitWrite(1, 100, 5, ValueFor(5, 9));
  store->RunEpoch();
  store->SubmitRead(1, 101, 5);
  const auto resp = store->RunEpoch();
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].value, ValueFor(5, 9));
}

TEST(OblixBackend, DuplicateAndSkewedRequests) {
  auto store = MakeSnoopyOblix(1, 2, 60);
  for (uint64_t i = 0; i < 30; ++i) {
    store->SubmitRead(1, i, 42);  // all for one object: dedup handles it
  }
  const auto resp = store->RunEpoch();
  ASSERT_EQ(resp.size(), 30u);
  for (const ClientResponse& r : resp) {
    EXPECT_EQ(r.value, ValueFor(42));
  }
}

TEST(OblixBackend, StandaloneBatchContract) {
  OblixSubOramBackend backend(64, kValueSize, 3);
  backend.Initialize({{1, ValueFor(1)}, {2, ValueFor(2)}});
  EXPECT_EQ(backend.num_objects(), 2u);
  RequestBatch batch(kValueSize);
  RequestHeader rd;
  rd.key = 1;
  batch.Append(rd, {});
  RequestHeader wr;
  wr.key = 2;
  wr.op = kOpWrite;
  wr.client_seq = 1;
  batch.Append(wr, ValueFor(2, 5));
  RequestHeader dummy;
  dummy.key = kDummyKeyBase | 7;
  dummy.client_seq = 2;
  batch.Append(dummy, {});
  RequestBatch out = backend.ProcessBatch(std::move(batch));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.Header(0).resp, 1);
  EXPECT_EQ(std::vector<uint8_t>(out.Value(0), out.Value(0) + kValueSize), ValueFor(1));
  // The write's response is the pre-state.
  EXPECT_EQ(std::vector<uint8_t>(out.Value(1), out.Value(1) + kValueSize), ValueFor(2));
  // The dummy's response is null.
  EXPECT_EQ(std::vector<uint8_t>(out.Value(2), out.Value(2) + kValueSize),
            std::vector<uint8_t>(kValueSize, 0));
}

}  // namespace
}  // namespace snoopy
