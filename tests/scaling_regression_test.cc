// Scaling-regression gates for the epoch pipeline (ISSUE 9 / ROADMAP open item 1).
//
// The 3.2x work-inflation bug class: parallel phases that spawn threads over each
// other (epoch workers x nested sort threads) run more *wall-busy* seconds at 4
// threads than at 1 for the same work, while busy/(busy+idle) efficiency happily
// reports ~1.0. These tests pin the two invariants that make that bug impossible
// to land silently again:
//
//   1. Obliviousness is schedule-free: the enclave trace and the client responses
//      are byte-identical at epoch_threads {1, 2, 4}.
//   2. Work is thread-count-free: the pool's *CPU* busy time (per-thread
//      CLOCK_THREAD_CPUTIME_ID, immune to timesharing) inflates by at most 1.5x
//      from 1 thread to 4 threads. Wall-busy time is deliberately not gated here:
//      on an oversubscribed CI host it measures the scheduler, not the work.
//
// Plus unit coverage for the shared WorkPool: flat runs, stealable fork-join,
// thread-budget scoping, and the AdaptiveSortThreads / PoolClampedThreads clamps
// that turned the nested-spawn path into a budget consultation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <vector>

#include "src/core/snoopy.h"
#include "src/enclave/trace.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/parallel.h"
#include "src/telemetry/metrics.h"

namespace snoopy {
namespace {

// ---------------------------------------------------------------------------------
// WorkPool unit coverage.
// ---------------------------------------------------------------------------------

TEST(WorkPool, RunExecutesEveryBodyExactlyOnce) {
  for (const size_t workers : {1u, 2u, 4u, 8u}) {
    std::vector<std::atomic<int>> hits(workers);
    for (auto& h : hits) {
      h.store(0);
    }
    WorkPool::Instance().Run(workers, [&](size_t w) {
      ASSERT_LT(w, workers);
      hits[w].fetch_add(1);
    });
    for (size_t w = 0; w < workers; ++w) {
      EXPECT_EQ(hits[w].load(), 1) << "worker " << w << " of " << workers;
    }
  }
}

TEST(WorkPool, RunBodiesSeeWorkerContextAndUnitBudget) {
  std::atomic<int> bad{0};
  WorkPool::Instance().Run(3, [&](size_t) {
    if (!WorkPool::OnWorkerThread() || CurrentThreadBudget() != 1) {
      bad.fetch_add(1);
    }
  });
  EXPECT_EQ(bad.load(), 0);
  // Outside any pool context: not a worker, no budget scope.
  EXPECT_FALSE(WorkPool::OnWorkerThread());
  EXPECT_EQ(CurrentThreadBudget(), 0);
}

TEST(WorkPool, ForkJoinRunsBothHalvesAtAnyDepth) {
  // Top-level recursion: 2^3 leaves, every leaf counted exactly once. ForkJoin
  // offers halves to the pool but reclaims them when nobody steals, so this is
  // deterministic regardless of how many workers exist or are busy.
  std::atomic<int> leaves{0};
  std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    WorkPool::Instance().ForkJoin([&] { recurse(depth - 1); },
                                  [&] { recurse(depth - 1); });
  };
  WorkPool::Instance().Reserve(2);
  recurse(3);
  EXPECT_EQ(leaves.load(), 8);
}

TEST(WorkPool, ThreadBudgetScopesNest) {
  EXPECT_EQ(CurrentThreadBudget(), 0);
  {
    ScopedThreadBudget outer(4);
    EXPECT_EQ(CurrentThreadBudget(), 4);
    {
      ScopedThreadBudget inner(1);
      EXPECT_EQ(CurrentThreadBudget(), 1);
    }
    EXPECT_EQ(CurrentThreadBudget(), 4);
  }
  EXPECT_EQ(CurrentThreadBudget(), 0);
}

TEST(WorkPool, PoolClampedThreadsIsPassThroughOutsideAndClampInside) {
  EXPECT_EQ(PoolClampedThreads(4), 4);  // standalone callers keep their config
  EXPECT_EQ(PoolClampedThreads(0), 1);
  std::atomic<int> inside{-1};
  std::atomic<int> widened{-1};
  WorkPool::Instance().Run(2, [&](size_t w) {
    if (w != 0) {
      return;
    }
    inside.store(PoolClampedThreads(4));  // budget 1 inside a pool body
    ScopedThreadBudget grant(3);
    widened.store(PoolClampedThreads(4));  // phase granted headroom: min(4, 3)
  });
  EXPECT_EQ(inside.load(), 1);
  EXPECT_EQ(widened.load(), 3);
}

TEST(AdaptiveSortThreads, ConsultsPoolBudgetInsteadOfAssumingOwnership) {
  // Large enough to clear the parallel threshold (128 L1 tiles of 208B records).
  const size_t n = 1 << 15;
  std::atomic<int> no_budget{-1};
  std::atomic<int> with_budget{-1};
  WorkPool::Instance().Run(2, [&](size_t w) {
    if (w != 0) {
      return;
    }
    no_budget.store(AdaptiveSortThreads(n, 8));  // unit budget -> sequential sort
    ScopedThreadBudget grant(4);
    with_budget.store(AdaptiveSortThreads(n, 8));  // granted width is the ceiling
  });
  EXPECT_EQ(no_budget.load(), 1);
  EXPECT_EQ(with_budget.load(), 4);
  // Below the threshold the answer is 1 regardless of context.
  EXPECT_EQ(AdaptiveSortThreads(64, 8), 1);
}

// ---------------------------------------------------------------------------------
// Epoch scaling regression: fixed workload at epoch_threads {1, 2, 4}.
// ---------------------------------------------------------------------------------

constexpr size_t kValueSize = 32;
constexpr uint64_t kObjects = 2048;
constexpr int kEpochs = 4;
constexpr int kRequestsPerEpoch = 96;

std::vector<uint8_t> Val(uint64_t key, uint8_t version = 0) {
  std::vector<uint8_t> v(kValueSize, 0);
  std::memcpy(v.data(), &key, 8);
  v[8] = version;
  return v;
}

struct ScalingRun {
  std::vector<TraceEvent> enclave_trace;
  std::map<uint64_t, std::vector<uint8_t>> responses;  // client_seq -> value
  double pool_cpu_busy_s = 0;                          // all phases, all epochs
};

ScalingRun RunScalingWorkload(int epoch_threads, uint64_t seed) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = 2;
  cfg.num_suborams = 4;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  cfg.epoch_threads = epoch_threads;
  Snoopy store(cfg, seed);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < kObjects; ++k) {
    objects.emplace_back(k, Val(k));
  }
  store.Initialize(objects);
  MetricsRegistry registry;
  store.set_metrics_registry(&registry);

  ScalingRun out;
  uint64_t seq = 1;
  {
    TraceScope scope;
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      for (int i = 0; i < kRequestsPerEpoch; ++i) {
        const auto lb = static_cast<uint32_t>(i % cfg.num_load_balancers);
        const uint64_t key = (seed + epoch * 131 + i * 7) % kObjects;
        if (i % 3 == 0) {
          store.SubmitWriteWithLb(lb, lb, seq, key,
                                  Val(key, static_cast<uint8_t>(epoch + 1)));
        } else {
          store.SubmitReadWithLb(lb, lb, seq, key);
        }
        ++seq;
      }
      for (ClientResponse& resp : store.RunEpoch()) {
        out.responses[resp.client_seq] = std::move(resp.value);
      }
    }
    out.enclave_trace = scope.Events();
  }
  for (const char* phase : {"lb_prepare", "suboram_execute", "response_match"}) {
    out.pool_cpu_busy_s +=
        registry.GetGauge("snoopy_pool_cpu_busy_seconds_total", {{"phase", phase}})
            .value();
  }
  return out;
}

TEST(ScalingRegression, TracesAndResponsesAreThreadCountInvariant) {
  const ScalingRun base = RunScalingWorkload(/*epoch_threads=*/1, /*seed=*/1234);
  ASSERT_FALSE(base.enclave_trace.empty());
  ASSERT_FALSE(base.responses.empty());
  for (const int threads : {2, 4}) {
    const ScalingRun run = RunScalingWorkload(threads, /*seed=*/1234);
    EXPECT_TRUE(NonVacuousTraceEq(run.enclave_trace, base.enclave_trace))
        << "enclave trace diverged at epoch_threads=" << threads;
    EXPECT_EQ(run.responses, base.responses) << "epoch_threads=" << threads;
  }
}

TEST(ScalingRegression, CpuWorkInflationStaysBounded) {
  // The 1.5x ceiling is deliberately above the 1.15x headline target: this is the
  // never-again gate for the 3.2x bug class, tolerant of CI noise on a small
  // workload, not the performance target itself (the bench gates track that).
  if (ThreadCpuNowSeconds() == 0.0) {
    GTEST_SKIP() << "no per-thread CPU clock on this platform";
  }
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "TSan instruments every synchronization op, so coordination "
                  "CPU scales with thread count under it; the gate only means "
                  "something on an uninstrumented build";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "TSan instruments every synchronization op, so coordination "
                  "CPU scales with thread count under it; the gate only means "
                  "something on an uninstrumented build";
#endif
#endif
  // Two measured runs; the first call in the process has warmed up pool threads.
  const ScalingRun base = RunScalingWorkload(/*epoch_threads=*/1, /*seed=*/99);
  const ScalingRun wide = RunScalingWorkload(/*epoch_threads=*/4, /*seed=*/99);
  ASSERT_GT(base.pool_cpu_busy_s, 0.0);
  ASSERT_GT(wide.pool_cpu_busy_s, 0.0);
  const double inflation = wide.pool_cpu_busy_s / base.pool_cpu_busy_s;
  EXPECT_LE(inflation, 1.5) << "4-thread epoch burns " << inflation
                            << "x the CPU of the 1-thread epoch for the same work";
}

}  // namespace
}  // namespace snoopy
