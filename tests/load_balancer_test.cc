#include "src/core/load_balancer.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "src/analysis/batch_bound.h"
#include "src/enclave/trace.h"

namespace snoopy {
namespace {

constexpr size_t kValueSize = 16;

LoadBalancer MakeLb(uint32_t num_suborams, uint32_t lambda = 40) {
  LoadBalancerConfig cfg;
  cfg.num_suborams = num_suborams;
  cfg.value_size = kValueSize;
  cfg.lambda = lambda;
  SipKey pk{};
  pk[0] = 1;
  return LoadBalancer(cfg, pk, /*rng_seed=*/7);
}

RequestBatch MakeRequests(const std::vector<std::tuple<uint64_t, uint8_t, uint64_t>>&
                              reqs /* key, op, client_seq */) {
  RequestBatch batch(kValueSize);
  for (const auto& [key, op, seq] : reqs) {
    RequestHeader h;
    h.key = key;
    h.op = op;
    h.client_id = 1;
    h.client_seq = seq;
    std::vector<uint8_t> value(kValueSize, static_cast<uint8_t>(seq & 0xff));
    batch.Append(h, value);
  }
  return batch;
}

TEST(LoadBalancer, BatchesHaveTheBoundSizeAndCorrectBins) {
  LoadBalancer lb = MakeLb(4);
  std::vector<std::tuple<uint64_t, uint8_t, uint64_t>> reqs;
  for (uint64_t i = 0; i < 100; ++i) {
    reqs.push_back({i, kOpRead, i});
  }
  auto epoch = lb.PrepareBatches(MakeRequests(reqs));
  const uint64_t b = BatchSize(100, 4, 40);
  EXPECT_EQ(epoch.batch_size, b);
  ASSERT_EQ(epoch.suboram_batches.size(), 4u);
  std::set<uint64_t> seen_real;
  for (uint32_t so = 0; so < 4; ++so) {
    RequestBatch& batch = epoch.suboram_batches[so];
    ASSERT_EQ(batch.size(), b) << "every batch must have exactly f(R,S) requests";
    std::set<uint64_t> keys_in_batch;
    for (size_t i = 0; i < batch.size(); ++i) {
      const RequestHeader& h = batch.Header(i);
      ASSERT_TRUE(keys_in_batch.insert(h.key).second) << "duplicate key in batch";
      if (h.key < kDummyKeyBase) {
        EXPECT_EQ(lb.SubOramOf(h.key), so) << "request routed to wrong subORAM";
        seen_real.insert(h.key);
      }
    }
  }
  EXPECT_EQ(seen_real.size(), 100u) << "every distinct request must be represented";
}

TEST(LoadBalancer, SkewedWorkloadDeduplicatesToOneRequest) {
  LoadBalancer lb = MakeLb(4);
  std::vector<std::tuple<uint64_t, uint8_t, uint64_t>> reqs(500, {77, kOpRead, 0});
  auto epoch = lb.PrepareBatches(MakeRequests(reqs));
  size_t real = 0;
  for (auto& batch : epoch.suboram_batches) {
    for (size_t i = 0; i < batch.size(); ++i) {
      real += batch.Header(i).key < kDummyKeyBase;
    }
  }
  EXPECT_EQ(real, 1u) << "500 requests for one object collapse to one";
}

TEST(LoadBalancer, LastWriteWinsSurvivorSelection) {
  LoadBalancer lb = MakeLb(2);
  // Same key: read(seq 1), write(seq 2), write(seq 5), read(seq 7). Survivor must be
  // the seq-5 write (its value byte is 5).
  auto epoch = lb.PrepareBatches(MakeRequests(
      {{9, kOpRead, 1}, {9, kOpWrite, 2}, {9, kOpWrite, 5}, {9, kOpRead, 7}}));
  const RequestHeader* survivor = nullptr;
  const uint8_t* value = nullptr;
  for (auto& batch : epoch.suboram_batches) {
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch.Header(i).key == 9) {
        ASSERT_EQ(survivor, nullptr) << "key must appear exactly once";
        survivor = &batch.Header(i);
        value = batch.Value(i);
      }
    }
  }
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->op, kOpWrite);
  EXPECT_EQ(value[0], 5) << "latest write's payload must survive";
}

TEST(LoadBalancer, MatchResponsesRoutesToAllDuplicates) {
  LoadBalancer lb = MakeLb(2);
  // Three readers of key 4 and one of key 11.
  auto epoch = lb.PrepareBatches(
      MakeRequests({{4, kOpRead, 0}, {4, kOpRead, 1}, {11, kOpRead, 2}, {4, kOpRead, 3}}));
  // Simulate subORAM responses: echo each batch, fill values with key-derived bytes.
  std::vector<RequestBatch> responses;
  for (auto& batch : epoch.suboram_batches) {
    RequestBatch resp(kValueSize);
    for (size_t i = 0; i < batch.size(); ++i) {
      RequestHeader h = batch.Header(i);
      h.resp = 1;
      std::vector<uint8_t> value(kValueSize, static_cast<uint8_t>(h.key * 3));
      resp.Append(h, value);
    }
    responses.push_back(std::move(resp));
  }
  RequestBatch out = lb.MatchResponses(std::move(epoch), std::move(responses));
  ASSERT_EQ(out.size(), 4u);
  std::map<uint64_t, std::vector<uint8_t>> by_seq;
  for (size_t i = 0; i < out.size(); ++i) {
    by_seq[out.Header(i).client_seq] =
        std::vector<uint8_t>(out.Value(i), out.Value(i) + kValueSize);
  }
  ASSERT_EQ(by_seq.size(), 4u);
  EXPECT_EQ(by_seq[0], std::vector<uint8_t>(kValueSize, 12));
  EXPECT_EQ(by_seq[1], std::vector<uint8_t>(kValueSize, 12));
  EXPECT_EQ(by_seq[3], std::vector<uint8_t>(kValueSize, 12));
  EXPECT_EQ(by_seq[2], std::vector<uint8_t>(kValueSize, 33));
}

TEST(LoadBalancer, EmptyEpoch) {
  LoadBalancer lb = MakeLb(3);
  auto epoch = lb.PrepareBatches(RequestBatch(kValueSize));
  EXPECT_EQ(epoch.batch_size, 0u);
  for (auto& batch : epoch.suboram_batches) {
    EXPECT_EQ(batch.size(), 0u);
  }
  RequestBatch out = lb.MatchResponses(
      std::move(epoch), std::vector<RequestBatch>(3, RequestBatch(kValueSize)));
  EXPECT_EQ(out.size(), 0u);
}

TEST(LoadBalancer, PrepareTraceIndependentOfRequestContents) {
  // Equal request counts, different keys/ops/distributions: identical traces.
  auto trace_for = [](std::vector<std::tuple<uint64_t, uint8_t, uint64_t>> reqs) {
    LoadBalancer lb = MakeLb(4);
    RequestBatch batch = MakeRequests(reqs);
    TraceScope scope;
    lb.PrepareBatches(std::move(batch));
    return scope.Digest();
  };
  const uint64_t uniform =
      trace_for({{1, kOpRead, 0}, {2, kOpRead, 1}, {3, kOpRead, 2}, {4, kOpRead, 3}});
  const uint64_t skewed =
      trace_for({{7, kOpWrite, 0}, {7, kOpWrite, 1}, {7, kOpRead, 2}, {7, kOpRead, 3}});
  EXPECT_EQ(uniform, skewed);
}

TEST(LoadBalancer, BatchSizeVariesAcrossEpochsWithLoad) {
  // R is public and bursty; B must track it epoch by epoch (section 4.1).
  LoadBalancer lb = MakeLb(4);
  std::vector<std::tuple<uint64_t, uint8_t, uint64_t>> small;
  std::vector<std::tuple<uint64_t, uint8_t, uint64_t>> large;
  for (uint64_t i = 0; i < 20; ++i) {
    small.push_back({i, kOpRead, i});
  }
  for (uint64_t i = 0; i < 2000; ++i) {
    large.push_back({i, kOpRead, i});
  }
  const auto e1 = lb.PrepareBatches(MakeRequests(small));
  const auto e2 = lb.PrepareBatches(MakeRequests(large));
  EXPECT_LT(e1.batch_size, e2.batch_size);
  EXPECT_EQ(e1.batch_size, BatchSize(20, 4, 40));
  EXPECT_EQ(e2.batch_size, BatchSize(2000, 4, 40));
}

}  // namespace
}  // namespace snoopy
