#include "src/oram/path_oram.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "src/crypto/rng.h"

namespace snoopy {
namespace {

std::vector<uint8_t> Val(uint64_t tag, size_t size = 32) {
  std::vector<uint8_t> v(size, 0);
  std::memcpy(v.data(), &tag, 8);
  return v;
}

class PathOramSizes : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PathOramSizes, RandomWorkloadMatchesReferenceMap) {
  const uint64_t n = GetParam();
  PathOramConfig cfg;
  cfg.num_blocks = n;
  cfg.block_size = 32;
  PathOram oram(cfg, n + 1);
  Rng rng(n + 2);
  std::map<uint64_t, std::vector<uint8_t>> model;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t addr = rng.Uniform(n);
    if (rng.Uniform(2) == 0) {
      const auto expected =
          model.count(addr) != 0 ? model[addr] : std::vector<uint8_t>(32, 0);
      ASSERT_EQ(oram.Read(addr), expected) << "n=" << n << " i=" << i;
    } else {
      auto v = Val(rng.Next64());
      oram.Write(addr, v);
      model[addr] = v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PathOramSizes, ::testing::Values(1, 2, 3, 17, 64, 100, 1000));

TEST(PathOram, StashStaysBounded) {
  PathOramConfig cfg;
  cfg.num_blocks = 1024;
  cfg.block_size = 16;
  PathOram oram(cfg, 3);
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    oram.Write(rng.Uniform(1024), Val(i, 16));
  }
  // The classic Path ORAM stash bound: O(log N) w.h.p.; 120 is a generous envelope
  // that a correct eviction policy never approaches at N=1024.
  EXPECT_LT(oram.max_stash_seen(), 120u);
}

TEST(PathOram, WriteReturnsPreviousValue) {
  PathOramConfig cfg;
  cfg.num_blocks = 8;
  cfg.block_size = 16;
  PathOram oram(cfg, 5);
  oram.Write(3, Val(1, 16));
  const std::vector<uint8_t> prev = oram.Access(3, nullptr);
  EXPECT_EQ(prev, Val(1, 16));
  const auto v2 = Val(2, 16);
  EXPECT_EQ(oram.Access(3, &v2), Val(1, 16));
  EXPECT_EQ(oram.Read(3), Val(2, 16));
}

TEST(PathOram, TreeGeometry) {
  PathOramConfig cfg;
  cfg.block_size = 16;
  cfg.num_blocks = 1;
  EXPECT_EQ(PathOram(cfg, 1).tree_levels(), 1u);
  cfg.num_blocks = 2;
  EXPECT_EQ(PathOram(cfg, 1).tree_levels(), 2u);
  cfg.num_blocks = 1024;
  EXPECT_EQ(PathOram(cfg, 1).tree_levels(), 11u);
  cfg.num_blocks = 1025;
  EXPECT_EQ(PathOram(cfg, 1).tree_levels(), 12u);
}

TEST(PathOram, RejectsOutOfRange) {
  PathOramConfig cfg;
  cfg.num_blocks = 4;
  PathOram oram(cfg, 1);
  EXPECT_THROW(oram.Read(4), std::out_of_range);
  PathOramConfig bad;
  bad.num_blocks = 0;
  EXPECT_THROW(PathOram(bad, 1), std::invalid_argument);
}

TEST(PathOram, BandwidthIsPathShaped) {
  PathOramConfig cfg;
  cfg.num_blocks = 1024;
  cfg.block_size = 16;
  PathOram oram(cfg, 9);
  oram.Read(0);
  // One access moves 2 * levels * Z block units (path read + write-back).
  EXPECT_EQ(oram.blocks_moved(), 2ull * oram.tree_levels() * 4);
}

}  // namespace
}  // namespace snoopy
