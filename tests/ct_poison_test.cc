// Dynamic constant-time checking via secret poisoning (src/obl/poison.h).
//
// PoisonFill fabricates secret bytes from a global seed and marks them poisoned (a
// real memory-error backend would flag any branch/index on them; the accounting
// fallback tracks the discipline). These tests run each oblivious kernel twice with
// *different fill seeds* -- i.e. different secrets, identical public parameters -- and
// assert byte-identical traces. Combined with the backend poisoning this is the
// ctgrind recipe: randomize the secret, watch the observable behavior not change.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/core/request.h"
#include "src/core/suboram.h"
#include "src/crypto/rng.h"
#include "src/enclave/trace.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/compaction.h"
#include "src/obl/hash_table.h"
#include "src/obl/poison.h"
#include "src/obl/secret.h"
#include "src/obl/slab.h"

namespace snoopy {
namespace {

constexpr size_t kStride = 24;

// A slab of n records whose payloads are poisoned secrets; keys (first 8 bytes) are
// drawn from the fill stream too, so sort order is secret-dependent.
ByteSlab PoisonedSlab(size_t n, uint64_t seed) {
  SetPoisonFillSeed(seed);
  ByteSlab slab(n, kStride);
  for (size_t i = 0; i < n; ++i) {
    PoisonFill(slab.Record(i), kStride, /*tag=*/i + 1);
  }
  return slab;
}

TEST(CtPoison, BitonicSortTraceIndependentOfSecrets) {
  auto run = [](uint64_t seed) {
    ByteSlab slab = PoisonedSlab(96, seed);
    TraceScope scope;
    BitonicSortSlab(slab, [](const uint8_t* a, const uint8_t* b) {
      return LoadSecretU64(a, 0) < LoadSecretU64(b, 0);
    });
    return scope.Digest();
  };
  EXPECT_EQ(run(101), run(202))
      << "sort network shape leaked information about the poisoned keys";
}

TEST(CtPoison, GoodrichCompactionTraceIndependentOfSecrets) {
  // Payloads differ per seed; the keep-bit pattern differs too but with an equal kept
  // count (the count is the one public output of compaction).
  auto run = [](uint64_t seed, bool front_half) {
    ByteSlab slab = PoisonedSlab(64, seed);
    std::vector<uint8_t> flags(64, 0);
    for (size_t i = 0; i < 32; ++i) {
      flags[front_half ? i : 63 - i] = 1;
    }
    TraceScope scope;
    const size_t kept = GoodrichCompact(slab, std::span<uint8_t>(flags));
    EXPECT_EQ(kept, 32u);
    return scope.Digest();
  };
  EXPECT_EQ(run(7, true), run(8, false))
      << "compaction routing leaked which records were kept";
}

TEST(CtPoison, HashTableBuildAndExtractTraceIndependentOfSecrets) {
  // Keys must be distinct, so fabricate them as a seed-dependent affine sequence and
  // poison the remaining payload bytes. The bucket-assignment PRF keys come from the
  // table's rng (same device seed both runs); the *batch contents* are what differ.
  auto run = [](uint64_t seed) {
    constexpr size_t kN = 128;
    SetPoisonFillSeed(seed);
    ByteSlab slab(kN, 48);
    for (size_t i = 0; i < kN; ++i) {
      uint8_t* rec = slab.Record(i);
      PoisonFill(rec, 48, /*tag=*/i + 1);
      const uint64_t key = seed * 1000003 + i * (2 * seed + 1);
      std::memcpy(rec, &key, 8);
      rec[12] = 0;  // dummy flag: all records are real
    }
    const OhtSchema schema{/*key_offset=*/0, /*bin_offset=*/8, /*dummy_offset=*/12,
                           /*order_offset=*/16, /*dedup_offset=*/24};
    TwoTierOht oht(schema, /*lambda=*/40);
    Rng rng(99);
    TraceScope scope;
    EXPECT_TRUE(oht.Build(std::move(slab), rng));
    const ByteSlab out = oht.ExtractAll();
    EXPECT_EQ(out.size(), kN);
    return scope.Digest();
  };
  EXPECT_EQ(run(11), run(12))
      << "hash table construction leaked information about the batch keys";
}

TEST(CtPoison, SubOramBatchTraceIndependentOfSecrets) {
  // End-to-end over a subORAM: request keys, ops, and write payloads are all secret
  // (fabricated from the fill seed); object count and batch size are public.
  auto run = [](uint64_t seed) {
    constexpr size_t kValueSize = 32;
    constexpr size_t kObjects = 64;
    constexpr size_t kBatch = 16;
    SubOramConfig cfg;
    cfg.value_size = kValueSize;
    cfg.lambda = 40;
    SubOram so(cfg, /*rng_seed=*/5);
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
    for (uint64_t k = 0; k < kObjects; ++k) {
      objects.emplace_back(k, std::vector<uint8_t>(kValueSize, 1));
    }
    so.Initialize(objects);

    SetPoisonFillSeed(seed);
    RequestBatch batch(kValueSize);
    for (size_t i = 0; i < kBatch; ++i) {
      uint8_t raw[16];
      PoisonFill(raw, sizeof(raw), /*tag=*/i + 1);
      RequestHeader h;
      h.key = i * 2 + (raw[0] & 1);  // distinct keys, secret-dependent choice
      h.op = (raw[1] & 1) ? kOpWrite : kOpRead;
      h.client_seq = i;
      std::vector<uint8_t> value(kValueSize);
      SetPoisonFillSeed(seed);
      PoisonFill(value.data(), value.size(), /*tag=*/1000 + i);
      batch.Append(h, value);
    }
    TraceScope scope;
    RequestBatch out = so.ProcessBatch(std::move(batch));
    EXPECT_EQ(out.size(), kBatch);
    return scope.Digest();
  };
  EXPECT_EQ(run(31), run(77))
      << "subORAM processing leaked request contents into the trace";
}

TEST(CtPoison, DeclassificationBalancesUnderAccountingBackend) {
  // Under the accounting backend every kernel run must route its secret exits through
  // Declassify/UnpoisonSecret; under msan/valgrind/off the counters stay zero and the
  // assertion is vacuous (the backend itself does the checking there).
  if (std::string_view(PoisonBackend()) != "accounting") {
    GTEST_SKIP() << "accounting backend inactive (backend: " << PoisonBackend() << ")";
  }
  ResetPoisonCounters();
  ByteSlab slab = PoisonedSlab(32, 3);
  std::vector<uint8_t> flags(32, 0);
  for (size_t i = 0; i < 32; i += 3) {
    flags[i] = 1;
  }
  const uint64_t poisons_before = PoisonCallCount();
  EXPECT_GT(poisons_before, 0u);
  GoodrichCompact(slab, std::span<uint8_t>(flags));
  EXPECT_GT(UnpoisonCallCount(), 0u)
      << "compaction declassified its kept-count without unpoisoning";
  ResetPoisonCounters();
}

}  // namespace
}  // namespace snoopy
