#include "src/obl/primitives.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "src/crypto/rng.h"

namespace snoopy {
namespace {

TEST(CtMask, Boundary) {
  EXPECT_EQ(CtMask64(true), ~uint64_t{0});
  EXPECT_EQ(CtMask64(false), uint64_t{0});
}

TEST(CtSelect, PicksCorrectArm) {
  EXPECT_EQ(CtSelect64(true, 7, 9), 7u);
  EXPECT_EQ(CtSelect64(false, 7, 9), 9u);
  EXPECT_EQ(CtSelect32(true, 0xdeadbeef, 1), 0xdeadbeefu);
  EXPECT_EQ(CtSelect32(false, 0xdeadbeef, 1), 1u);
}

TEST(CtCompare, MatchesBuiltinsExhaustivelyOnSmallValues) {
  for (uint64_t a = 0; a < 20; ++a) {
    for (uint64_t b = 0; b < 20; ++b) {
      EXPECT_EQ(CtEq64(a, b), a == b);
      EXPECT_EQ(CtLt64(a, b), a < b);
      EXPECT_EQ(CtLe64(a, b), a <= b);
      EXPECT_EQ(CtGt64(a, b), a > b);
      EXPECT_EQ(CtGe64(a, b), a >= b);
    }
  }
}

TEST(CtCompare, ExtremeValues) {
  const uint64_t kMax = ~uint64_t{0};
  EXPECT_TRUE(CtLt64(0, kMax));
  EXPECT_FALSE(CtLt64(kMax, 0));
  EXPECT_TRUE(CtLt64(kMax - 1, kMax));
  EXPECT_FALSE(CtLt64(kMax, kMax));
  EXPECT_TRUE(CtEq64(kMax, kMax));
  EXPECT_TRUE(CtIsZero64(0));
  EXPECT_FALSE(CtIsZero64(1));
  EXPECT_FALSE(CtIsZero64(kMax));
  EXPECT_FALSE(CtIsZero64(uint64_t{1} << 63));
}

TEST(CtCompare, RandomizedAgainstBuiltins) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t a = rng.Next64();
    const uint64_t b = rng.Next64();
    ASSERT_EQ(CtLt64(a, b), a < b) << a << " " << b;
    ASSERT_EQ(CtEq64(a, b), a == b);
  }
}

TEST(CtCondCopy, CopiesOnlyWhenConditionHolds) {
  for (size_t len : {0u, 1u, 3u, 7u, 8u, 9u, 16u, 31u, 160u}) {
    std::vector<uint8_t> dst(len), src(len), orig;
    Rng rng(len);
    rng.Fill(dst.data(), len);
    rng.Fill(src.data(), len);
    orig = dst;
    CtCondCopyBytes(false, dst.data(), src.data(), len);
    EXPECT_EQ(dst, orig);
    CtCondCopyBytes(true, dst.data(), src.data(), len);
    EXPECT_EQ(dst, src);
  }
}

TEST(CtCondSwap, SwapsOnlyWhenConditionHolds) {
  for (size_t len : {1u, 5u, 8u, 13u, 24u, 160u}) {
    std::vector<uint8_t> a(len), b(len);
    Rng rng(1000 + len);
    rng.Fill(a.data(), len);
    rng.Fill(b.data(), len);
    const auto a0 = a;
    const auto b0 = b;
    CtCondSwapBytes(false, a.data(), b.data(), len);
    EXPECT_EQ(a, a0);
    EXPECT_EQ(b, b0);
    CtCondSwapBytes(true, a.data(), b.data(), len);
    EXPECT_EQ(a, b0);
    EXPECT_EQ(b, a0);
    CtCondSwapBytes(true, a.data(), b.data(), len);
    EXPECT_EQ(a, a0);
    EXPECT_EQ(b, b0);
  }
}

TEST(CtEqualBytes, DetectsSingleBitDifferences) {
  std::array<uint8_t, 32> a{};
  std::array<uint8_t, 32> b{};
  EXPECT_TRUE(CtEqualBytes(a.data(), b.data(), a.size()));
  for (size_t byte = 0; byte < a.size(); byte += 5) {
    b = a;
    b[byte] ^= 0x10;
    EXPECT_FALSE(CtEqualBytes(a.data(), b.data(), a.size()));
  }
}

TEST(OCmpSetSwap, TypedWrappers) {
  struct Record {
    uint64_t key;
    uint32_t value;
    uint32_t pad;
  };
  Record a{1, 10, 0};
  Record b{2, 20, 0};
  OCmpSet(false, a, b);
  EXPECT_EQ(a.key, 1u);
  OCmpSet(true, a, b);
  EXPECT_EQ(a.key, 2u);
  EXPECT_EQ(a.value, 20u);
  a = {1, 10, 0};
  OCmpSwap(true, a, b);
  EXPECT_EQ(a.key, 2u);
  EXPECT_EQ(b.key, 1u);
}

}  // namespace
}  // namespace snoopy
