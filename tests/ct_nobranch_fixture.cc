// Fixture for the objdump-based no-branch smoke test (tools/check_nobranch.py).
//
// Each nb_* function wraps one oblivious primitive with a fixed, small size so the
// optimizer can fully unroll its loops. The checker compiles this file at -O2 and
// -O3, disassembles the object, and asserts that no conditional branch instruction
// appears inside any nb_* symbol: the machine code realizes the mask arithmetic the
// source promises. noipa keeps the compiler from specializing the functions on
// constant arguments or folding them into each other.
//
// The checker discovers which symbols to scan from the `nb-symbol:` markers below;
// `nb-symbol[x86]:` entries are expected only when the object is x86-64 (the SIMD
// kernel backends are compiled-in only there).

#include <cstdint>

#include "src/obl/kernels.h"
#include "src/obl/primitives.h"
#include "src/obl/secret.h"

extern "C" {

// nb-symbol: nb_ct_select64
__attribute__((noipa)) uint64_t nb_ct_select64(uint64_t c, uint64_t a, uint64_t b) {
  return snoopy::CtSelect64(c != 0, a, b);
}

// restrict matches the primitives' contract (callers never alias dst/src); without
// it the -O3 vectorizer guards the unrolled copy with a (public) overlap check that
// the disassembly scan cannot tell apart from a data-dependent branch.
// nb-symbol: nb_ct_cond_copy32
__attribute__((noipa)) void nb_ct_cond_copy32(uint64_t c, uint8_t* __restrict__ dst,
                                              const uint8_t* __restrict__ src) {
  snoopy::CtCondCopyBytes(c != 0, dst, src, 32);
}

// nb-symbol: nb_ct_cond_swap32
__attribute__((noipa)) void nb_ct_cond_swap32(uint64_t c, uint8_t* __restrict__ a,
                                              uint8_t* __restrict__ b) {
  snoopy::CtCondSwapBytes(c != 0, a, b, 32);
}

// nb-symbol: nb_ct_equal32
__attribute__((noipa)) uint64_t nb_ct_equal32(const uint8_t* a, const uint8_t* b) {
  return static_cast<uint64_t>(snoopy::CtEqualBytes(a, b, 32));
}

// nb-symbol: nb_secret_select
__attribute__((noipa)) uint64_t nb_secret_select(uint64_t c, uint64_t a, uint64_t b) {
  using namespace snoopy;
  const SecretU64 r = CtSelectU64(SecretBool::FromWord(c), SecretU64(a), SecretU64(b));
  return r.SecretValueForPrimitive();  // ct-ok: nobranch fixture reads the raw lane
}

// nb-symbol: nb_secret_compare_chain
__attribute__((noipa)) uint64_t nb_secret_compare_chain(uint64_t x, uint64_t y) {
  using namespace snoopy;
  const SecretU64 sx(x);
  const SecretU64 sy(y);
  const SecretBool lt = sx < sy;
  const SecretBool eq = sx == sy;
  return (lt | (eq & !lt)).mask();
}

#if SNOOPY_KERNELS_X86

// The SIMD kernel backends (src/obl/kernels.h) make the same promise per backend:
// barriered broadcast masks, full-width vector selects, no conditional branches.
// Sizes are chosen so each kernel runs its wide loop AND its vector tail step(s)
// with constant trip counts, so everything fully unrolls and any surviving jump is
// a real finding, not a loop back-edge.

// nb-symbol[x86]: nb_kernel_sse2_cond_copy48
__attribute__((noipa, target("sse2"))) void nb_kernel_sse2_cond_copy48(
    uint64_t m, uint8_t* __restrict__ d, const uint8_t* __restrict__ s) {
  snoopy::kernel_internal::KernelSse2CondCopy(m, d, s, 48);
}

// nb-symbol[x86]: nb_kernel_sse2_cond_swap48
__attribute__((noipa, target("sse2"))) void nb_kernel_sse2_cond_swap48(
    uint64_t m, uint8_t* __restrict__ a, uint8_t* __restrict__ b) {
  snoopy::kernel_internal::KernelSse2CondSwap(m, a, b, 48);
}

// nb-symbol[x86]: nb_kernel_sse2_equal48
__attribute__((noipa, target("sse2"))) uint64_t nb_kernel_sse2_equal48(const uint8_t* a,
                                                                       const uint8_t* b) {
  return snoopy::kernel_internal::KernelSse2DiffWord(a, b, 48);
}

// nb-symbol[x86]: nb_kernel_avx2_cond_copy80
__attribute__((noipa, target("avx2"))) void nb_kernel_avx2_cond_copy80(
    uint64_t m, uint8_t* __restrict__ d, const uint8_t* __restrict__ s) {
  snoopy::kernel_internal::KernelAvx2CondCopy(m, d, s, 80);
}

// nb-symbol[x86]: nb_kernel_avx2_cond_swap80
__attribute__((noipa, target("avx2"))) void nb_kernel_avx2_cond_swap80(
    uint64_t m, uint8_t* __restrict__ a, uint8_t* __restrict__ b) {
  snoopy::kernel_internal::KernelAvx2CondSwap(m, a, b, 80);
}

// nb-symbol[x86]: nb_kernel_avx2_equal80
__attribute__((noipa, target("avx2"))) uint64_t nb_kernel_avx2_equal80(const uint8_t* a,
                                                                       const uint8_t* b) {
  return snoopy::kernel_internal::KernelAvx2DiffWord(a, b, 80);
}

// nb-symbol[x86]: nb_kernel_avx512_cond_copy208
__attribute__((noipa, target("avx512f,avx512bw"))) void nb_kernel_avx512_cond_copy208(
    uint64_t m, uint8_t* __restrict__ d, const uint8_t* __restrict__ s) {
  snoopy::kernel_internal::KernelAvx512CondCopy(m, d, s, 208);
}

// nb-symbol[x86]: nb_kernel_avx512_cond_swap208
__attribute__((noipa, target("avx512f,avx512bw"))) void nb_kernel_avx512_cond_swap208(
    uint64_t m, uint8_t* __restrict__ a, uint8_t* __restrict__ b) {
  snoopy::kernel_internal::KernelAvx512CondSwap(m, a, b, 208);
}

// nb-symbol[x86]: nb_kernel_avx512_equal208
__attribute__((noipa, target("avx512f,avx512bw"))) uint64_t nb_kernel_avx512_equal208(
    const uint8_t* a, const uint8_t* b) {
  return snoopy::kernel_internal::KernelAvx512DiffWord(a, b, 208);
}

#endif  // SNOOPY_KERNELS_X86

}  // extern "C"
