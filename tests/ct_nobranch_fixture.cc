// Fixture for the objdump-based no-branch smoke test (tools/check_nobranch.py).
//
// Each nb_* function wraps one oblivious primitive with a fixed, small size so the
// optimizer can fully unroll its loops. The checker compiles this file at -O2 and
// -O3, disassembles the object, and asserts that no conditional branch instruction
// appears inside any nb_* symbol: the machine code realizes the mask arithmetic the
// source promises. noipa keeps the compiler from specializing the functions on
// constant arguments or folding them into each other.

#include <cstdint>

#include "src/obl/primitives.h"
#include "src/obl/secret.h"

extern "C" {

__attribute__((noipa)) uint64_t nb_ct_select64(uint64_t c, uint64_t a, uint64_t b) {
  return snoopy::CtSelect64(c != 0, a, b);
}

// restrict matches the primitives' contract (callers never alias dst/src); without
// it the -O3 vectorizer guards the unrolled copy with a (public) overlap check that
// the disassembly scan cannot tell apart from a data-dependent branch.
__attribute__((noipa)) void nb_ct_cond_copy32(uint64_t c, uint8_t* __restrict__ dst,
                                              const uint8_t* __restrict__ src) {
  snoopy::CtCondCopyBytes(c != 0, dst, src, 32);
}

__attribute__((noipa)) void nb_ct_cond_swap32(uint64_t c, uint8_t* __restrict__ a,
                                              uint8_t* __restrict__ b) {
  snoopy::CtCondSwapBytes(c != 0, a, b, 32);
}

__attribute__((noipa)) uint64_t nb_ct_equal32(const uint8_t* a, const uint8_t* b) {
  return static_cast<uint64_t>(snoopy::CtEqualBytes(a, b, 32));
}

__attribute__((noipa)) uint64_t nb_secret_select(uint64_t c, uint64_t a, uint64_t b) {
  using namespace snoopy;
  const SecretU64 r = CtSelectU64(SecretBool::FromWord(c), SecretU64(a), SecretU64(b));
  return r.SecretValueForPrimitive();  // ct-ok: nobranch fixture reads the raw lane
}

__attribute__((noipa)) uint64_t nb_secret_compare_chain(uint64_t x, uint64_t y) {
  using namespace snoopy;
  const SecretU64 sx(x);
  const SecretU64 sy(y);
  const SecretBool lt = sx < sy;
  const SecretBool eq = sx == sy;
  return (lt | (eq & !lt)).mask();
}

}  // extern "C"
