#include "src/kt/merkle_tree.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace snoopy {
namespace {

std::vector<MerkleTree::Hash> MakeLeaves(size_t n) {
  std::vector<MerkleTree::Hash> leaves;
  for (size_t i = 0; i < n; ++i) {
    const std::string data = "user-key-" + std::to_string(i);
    leaves.push_back(MerkleTree::HashLeaf(data.data(), data.size()));
  }
  return leaves;
}

class MerkleSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleSizes, AllProofsVerify) {
  const size_t n = GetParam();
  const auto leaves = MakeLeaves(n);
  const MerkleTree tree(leaves);
  for (size_t i = 0; i < n; ++i) {
    const auto proof = tree.InclusionProof(i);
    EXPECT_EQ(proof.size(), tree.depth());
    EXPECT_TRUE(MerkleTree::Verify(leaves[i], i, proof, tree.root())) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSizes, ::testing::Values(1, 2, 3, 4, 5, 8, 9, 31, 64, 100));

TEST(MerkleTree, WrongLeafOrIndexOrRootFails) {
  const auto leaves = MakeLeaves(16);
  const MerkleTree tree(leaves);
  const auto proof = tree.InclusionProof(5);
  EXPECT_TRUE(MerkleTree::Verify(leaves[5], 5, proof, tree.root()));
  EXPECT_FALSE(MerkleTree::Verify(leaves[6], 5, proof, tree.root()));
  EXPECT_FALSE(MerkleTree::Verify(leaves[5], 6, proof, tree.root()));
  MerkleTree::Hash bad_root = tree.root();
  bad_root[0] ^= 1;
  EXPECT_FALSE(MerkleTree::Verify(leaves[5], 5, proof, bad_root));
  auto bad_proof = proof;
  bad_proof[2][4] ^= 1;
  EXPECT_FALSE(MerkleTree::Verify(leaves[5], 5, bad_proof, tree.root()));
}

TEST(MerkleTree, LeafAndInnerDomainsAreSeparated) {
  // HashLeaf(x) != HashInner over the same bytes: second-preimage hardening.
  MerkleTree::Hash a{};
  MerkleTree::Hash b{};
  uint8_t concat[64] = {};
  EXPECT_NE(MerkleTree::HashLeaf(concat, 64), MerkleTree::HashInner(a, b));
}

TEST(MerkleTree, RootChangesWithAnyLeaf) {
  auto leaves = MakeLeaves(32);
  const MerkleTree t1(leaves);
  leaves[17][0] ^= 1;
  const MerkleTree t2(leaves);
  EXPECT_NE(t1.root(), t2.root());
}

TEST(MerkleTree, RejectsBadInputs) {
  EXPECT_THROW(MerkleTree(std::vector<MerkleTree::Hash>{}), std::invalid_argument);
  const MerkleTree tree(MakeLeaves(8));
  EXPECT_THROW(tree.InclusionProof(8), std::out_of_range);
}

TEST(MerkleTree, DepthMatchesGeometry) {
  EXPECT_EQ(MerkleTree(MakeLeaves(1)).depth(), 0u);
  EXPECT_EQ(MerkleTree(MakeLeaves(2)).depth(), 1u);
  EXPECT_EQ(MerkleTree(MakeLeaves(5)).depth(), 3u);
  EXPECT_EQ(MerkleTree(MakeLeaves(64)).depth(), 6u);
}

}  // namespace
}  // namespace snoopy
