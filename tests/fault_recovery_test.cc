// Fault injection and crash recovery (paper sections 4.3 and 9).
//
// These tests drive the full Snoopy pipeline through a seeded chaos source --
// message drops, duplicates, bit flips, crash-before-reply, epoch-boundary machine
// crashes -- and assert the three properties the design argues for:
//   1. linearizability of acknowledged operations is preserved under retransmission
//      and crash recovery (the Appendix C order still explains every response),
//   2. a host replaying a stale sealed snapshot is detected (UnsealStatus::kRollback)
//      and refused rather than served,
//   3. the enclaves' *memory* traces are byte-identical with and without message
//      faults: retries change only the communication pattern, which the adversary
//      itself caused and can trivially simulate.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "src/core/snoopy.h"
#include "src/crypto/rng.h"
#include "src/enclave/trace.h"
#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/net/retry.h"

namespace snoopy {
namespace {

constexpr size_t kValueSize = 16;

std::vector<uint8_t> Val(uint64_t tag) {
  std::vector<uint8_t> v(kValueSize, 0);
  std::memcpy(v.data(), &tag, 8);
  return v;
}

uint64_t TagOf(const std::vector<uint8_t>& v) {
  uint64_t tag = 0;
  std::memcpy(&tag, v.data(), 8);
  return tag;
}

// ---------------------------------------------------------------------------------
// FaultInjector unit behaviour.
// ---------------------------------------------------------------------------------

TEST(FaultInjector, ComponentOfTakesFirstTwoSegments) {
  EXPECT_EQ(FaultInjector::ComponentOf("suboram/2/from/0"), "suboram/2");
  EXPECT_EQ(FaultInjector::ComponentOf("lb/0/client/7"), "lb/0");
  EXPECT_EQ(FaultInjector::ComponentOf("lb/3"), "lb/3");
  EXPECT_EQ(FaultInjector::ComponentOf("echo"), "echo");
}

TEST(FaultInjector, DecisionsAreSeedDeterministic) {
  FaultProfile chaos;
  chaos.drop = 0.2;
  chaos.duplicate = 0.2;
  chaos.corrupt = 0.2;
  chaos.crash_before_reply = 0.1;
  std::vector<FaultAction> first;
  for (int run = 0; run < 2; ++run) {
    FaultInjector injector(1234);
    injector.set_default_profile(chaos);
    std::vector<FaultAction> actions;
    for (int i = 0; i < 200; ++i) {
      actions.push_back(injector.Decide("suboram/0/from/0"));
    }
    if (run == 0) {
      first = actions;
    } else {
      EXPECT_EQ(actions, first) << "same seed must replay the same fault sequence";
    }
  }
}

TEST(FaultInjector, CrashedComponentsStayDownUntilRestart) {
  FaultInjector injector(7);
  EXPECT_FALSE(injector.IsCrashed("suboram/1/from/0"));
  injector.MarkCrashed("suboram/1");
  EXPECT_TRUE(injector.IsCrashed("suboram/1/from/0"));
  EXPECT_TRUE(injector.IsCrashed("suboram/1/from/1"));
  EXPECT_FALSE(injector.IsCrashed("suboram/0/from/0"));
  injector.Restart("suboram/1");
  EXPECT_FALSE(injector.IsCrashed("suboram/1/from/0"));
}

TEST(FaultInjector, CorruptBitFlipsExactlyOneBit) {
  FaultInjector injector(9);
  std::vector<uint8_t> bytes(64, 0);
  injector.CorruptBit(bytes);
  int flipped = 0;
  for (const uint8_t b : bytes) {
    flipped += __builtin_popcount(b);
  }
  EXPECT_EQ(flipped, 1);
  std::vector<uint8_t> empty;
  injector.CorruptBit(empty);  // must not crash
}

// ---------------------------------------------------------------------------------
// RetryExecutor unit behaviour.
// ---------------------------------------------------------------------------------

TEST(RetryExecutor, BackoffGrowsAndIsCapped) {
  RetryPolicy policy;
  policy.base_delay_s = 1e-3;
  policy.multiplier = 2.0;
  policy.max_delay_s = 4e-3;
  policy.jitter = 0;  // deterministic for this assertion
  Rng rng(1);
  EXPECT_EQ(policy.BackoffSeconds(1, rng), 0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2, rng), 1e-3);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3, rng), 2e-3);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(4, rng), 4e-3);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(7, rng), 4e-3) << "capped at max_delay_s";
}

TEST(RetryExecutor, RetriesTransientFaultsUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  VirtualClock clock;
  RetryExecutor executor(policy, /*jitter_seed=*/3, &clock);
  int retries_observed = 0;
  executor.set_on_retry([&] { ++retries_observed; });
  int calls = 0;
  const std::vector<uint8_t> out = executor.Execute(
      [&]() -> std::vector<uint8_t> {
        if (++calls < 3) {
          throw TimeoutError("suboram/0/from/0");
        }
        return {42};
      },
      nullptr);
  EXPECT_EQ(out, std::vector<uint8_t>{42});
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries_observed, 2);
  EXPECT_EQ(executor.last_attempts(), 3);
  EXPECT_GT(clock.now_s(), 0) << "backoff must consume virtual time";
}

TEST(RetryExecutor, NonRetryableErrorsPropagateImmediately) {
  RetryPolicy policy;
  VirtualClock clock;
  RetryExecutor executor(policy, 3, &clock);
  int calls = 0;
  EXPECT_THROW(executor.Execute(
                   [&]() -> std::vector<uint8_t> {
                     ++calls;
                     throw EndpointNotFoundError("nope");
                   },
                   nullptr),
               EndpointNotFoundError);
  EXPECT_EQ(calls, 1);
}

TEST(RetryExecutor, ExhaustionThrowsDeadlineExceeded) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  VirtualClock clock;
  RetryExecutor executor(policy, 3, &clock);
  try {
    executor.Execute([&]() -> std::vector<uint8_t> { throw TimeoutError("suboram/1/from/0"); },
                     nullptr);
    FAIL() << "expected DeadlineExceededError";
  } catch (const DeadlineExceededError& e) {
    EXPECT_EQ(e.endpoint(), "suboram/1/from/0");
    EXPECT_FALSE(e.retryable());
  }
}

TEST(RetryExecutor, CrashRunsRecoveryBeforeRetrying) {
  RetryPolicy policy;
  VirtualClock clock;
  RetryExecutor executor(policy, 3, &clock);
  bool recovered = false;
  const std::vector<uint8_t> out = executor.Execute(
      [&]() -> std::vector<uint8_t> {
        if (!recovered) {
          throw EndpointCrashedError("suboram/0/from/0");
        }
        return {7};
      },
      [&](const EndpointCrashedError& e) {
        EXPECT_EQ(e.endpoint(), "suboram/0/from/0");
        recovered = true;
      });
  EXPECT_EQ(out, std::vector<uint8_t>{7});
  EXPECT_TRUE(recovered);
}

// ---------------------------------------------------------------------------------
// Network-level fault delivery.
// ---------------------------------------------------------------------------------

TEST(NetworkFaults, DropSurfacesAsTimeoutAndCounts) {
  Network net;
  FaultInjector injector(5);
  FaultProfile all_drop;
  all_drop.drop = 1.0;
  injector.set_default_profile(all_drop);
  net.set_fault_injector(&injector);
  int handled = 0;
  net.Register("echo", [&](std::span<const uint8_t> in) {
    ++handled;
    return std::vector<uint8_t>(in.begin(), in.end());
  });
  EXPECT_THROW(net.Call("client", "echo", std::vector<uint8_t>{1}), TimeoutError);
  EXPECT_EQ(handled, 0) << "a dropped request never reaches the handler";
  EXPECT_EQ(net.stats().timeouts, 1u);
  EXPECT_EQ(net.stats().faults_injected, 1u);
  EXPECT_EQ(net.stats().messages, 1u) << "the send itself is still adversary-visible";
}

TEST(NetworkFaults, CrashBeforeReplyExecutesThenGoesDark) {
  Network net;
  FaultInjector injector(5);
  FaultProfile crash;
  crash.crash_before_reply = 1.0;
  injector.SetProfile("suboram/0", crash);
  net.set_fault_injector(&injector);
  int handled = 0;
  net.Register("suboram/0/from/0", [&](std::span<const uint8_t> in) {
    ++handled;
    return std::vector<uint8_t>(in.begin(), in.end());
  });
  EXPECT_THROW(net.Call("lb/0", "suboram/0/from/0", std::vector<uint8_t>{1}), TimeoutError);
  EXPECT_EQ(handled, 1) << "the work happened; only the reply was lost";
  // The component is now down: every endpoint it owns answers EndpointCrashedError.
  EXPECT_THROW(net.Call("lb/0", "suboram/0/from/0", std::vector<uint8_t>{1}),
               EndpointCrashedError);
  EXPECT_EQ(handled, 1);
  injector.Restart("suboram/0");
  injector.SetProfile("suboram/0", FaultProfile{});  // stop crashing it on every call
  EXPECT_EQ(net.Call("lb/0", "suboram/0/from/0", std::vector<uint8_t>{1}),
            std::vector<uint8_t>{1});
}

TEST(NetworkFaults, DuplicateDeliversTwice) {
  Network net;
  FaultInjector injector(5);
  FaultProfile dup;
  dup.duplicate = 1.0;
  injector.set_default_profile(dup);
  net.set_fault_injector(&injector);
  int handled = 0;
  net.Register("echo", [&](std::span<const uint8_t> in) {
    ++handled;
    return std::vector<uint8_t>(in.begin(), in.end());
  });
  net.Call("client", "echo", std::vector<uint8_t>{1});
  EXPECT_EQ(handled, 2);
  EXPECT_EQ(net.stats().messages, 2u);
}

TEST(NetworkFaults, DelayAdvancesTheSharedClock) {
  Network net;
  FaultInjector injector(5);
  VirtualClock clock;
  FaultProfile slow;
  slow.delay = 1.0;
  slow.delay_s = 0.25;
  injector.set_default_profile(slow);
  net.set_fault_injector(&injector);
  net.set_clock(&clock);
  net.Register("echo", [](std::span<const uint8_t> in) {
    return std::vector<uint8_t>(in.begin(), in.end());
  });
  net.Call("client", "echo", std::vector<uint8_t>{1});
  EXPECT_DOUBLE_EQ(clock.now_s(), 0.25);
}

// ---------------------------------------------------------------------------------
// Full-pipeline chaos: linearizability of acknowledged operations under faults.
// ---------------------------------------------------------------------------------

struct Op {
  uint32_t lb;
  uint64_t seq;
  uint64_t key;
  bool is_write;
  uint64_t write_tag;
};

// Applies Appendix C's linearization (epoch, lb, reads-first, arrival) to a reference
// store and returns the predicted response tag per op seq.
std::map<uint64_t, uint64_t> PredictResponses(const std::vector<std::vector<Op>>& epochs,
                                              uint32_t num_lbs) {
  std::map<uint64_t, uint64_t> state;
  std::map<uint64_t, uint64_t> predicted;
  for (const std::vector<Op>& epoch_ops : epochs) {
    for (uint32_t lb = 0; lb < num_lbs; ++lb) {
      for (const Op& op : epoch_ops) {
        if (op.lb == lb) {
          predicted[op.seq] = state.count(op.key) != 0 ? state[op.key] : 0;
        }
      }
      std::map<uint64_t, uint64_t> last_write;
      for (const Op& op : epoch_ops) {
        if (op.lb == lb && op.is_write) {
          last_write[op.key] = op.write_tag;
        }
      }
      for (const auto& [key, tag] : last_write) {
        state[key] = tag;
      }
    }
  }
  return predicted;
}

TEST(FaultRecovery, ChaosRunPreservesLinearizability) {
  // The full gauntlet, repeated for several seeds: message drops, duplicates, bit
  // flips, crash-before-reply (mid-epoch subORAM crashes with sealed-snapshot
  // recovery and epoch replay), and epoch-boundary crashes of both machine kinds.
  for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
    SnoopyConfig cfg;
    cfg.num_load_balancers = 2;
    cfg.num_suborams = 3;
    cfg.value_size = kValueSize;
    cfg.lambda = 40;
    auto store = std::make_unique<Snoopy>(cfg, seed + 100);
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
    for (uint64_t k = 0; k < 20; ++k) {
      objects.emplace_back(k, Val(0));
    }
    store->Initialize(objects);

    FaultInjector injector(seed);
    FaultProfile chaos;
    chaos.drop = 0.08;
    chaos.duplicate = 0.08;
    chaos.corrupt = 0.05;
    chaos.crash_before_reply = 0.03;
    chaos.delay = 0.05;
    chaos.delay_s = 0.01;
    chaos.crash_at_epoch_start = 0.05;
    injector.set_default_profile(chaos);
    store->set_fault_injector(&injector);

    Rng rng(seed * 77 + 1);
    std::vector<std::vector<Op>> history;
    std::map<uint64_t, uint64_t> observed;
    uint64_t seq = 1;
    uint64_t next_tag = 1;
    for (int epoch = 0; epoch < 8; ++epoch) {
      std::vector<Op> ops;
      const size_t n = 1 + rng.Uniform(20);
      for (size_t i = 0; i < n; ++i) {
        Op op;
        op.lb = static_cast<uint32_t>(rng.Uniform(cfg.num_load_balancers));
        op.seq = seq++;
        op.key = rng.Uniform(20);
        op.is_write = rng.Uniform(2) == 0;
        op.write_tag = op.is_write ? next_tag++ : 0;
        ops.push_back(op);
        if (op.is_write) {
          store->SubmitWriteWithLb(op.lb, op.lb, op.seq, op.key, Val(op.write_tag));
        } else {
          store->SubmitReadWithLb(op.lb, op.lb, op.seq, op.key);
        }
      }
      for (const ClientResponse& resp : store->RunEpoch()) {
        observed[resp.client_seq] = TagOf(resp.value);
      }
      history.push_back(ops);
    }

    const std::map<uint64_t, uint64_t> predicted =
        PredictResponses(history, cfg.num_load_balancers);
    ASSERT_EQ(observed.size(), predicted.size()) << "seed=" << seed;
    for (const auto& [s, tag] : predicted) {
      ASSERT_EQ(observed[s], tag)
          << "seed=" << seed << " seq=" << s
          << ": acknowledged response violates the Appendix C linearization under faults";
    }
    const Network::Stats& stats = store->network().stats();
    EXPECT_GT(stats.faults_injected, 0u) << "seed=" << seed << ": chaos did not bite";
    EXPECT_GT(stats.retries, 0u) << "seed=" << seed;
    EXPECT_GT(store->clock().now_s(), 0) << "seed=" << seed
                                         << ": backoff/delays consume virtual time";
  }
}

TEST(FaultRecovery, SubOramCrashRecoversAcrossEpochState) {
  // Deterministic crash: the subORAM component is down when the epoch's first call
  // reaches it. Recovery restores the sealed pre-epoch snapshot and the epoch retries
  // cleanly; writes committed in earlier epochs survive the crash.
  SnoopyConfig cfg;
  cfg.num_load_balancers = 2;
  cfg.num_suborams = 2;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  auto store = std::make_unique<Snoopy>(cfg, 9);
  store->Initialize({{1, Val(0)}, {2, Val(0)}, {3, Val(0)}});

  FaultInjector injector(9);
  store->set_fault_injector(&injector);

  store->SubmitWriteWithLb(0, 1, 1, 1, Val(11));
  store->SubmitWriteWithLb(1, 1, 2, 2, Val(22));
  store->RunEpoch();

  injector.MarkCrashed("suboram/0");
  injector.MarkCrashed("suboram/1");
  store->SubmitReadWithLb(0, 1, 3, 1);
  store->SubmitReadWithLb(1, 1, 4, 2);
  std::map<uint64_t, uint64_t> observed;
  for (const ClientResponse& resp : store->RunEpoch()) {
    observed[resp.client_seq] = TagOf(resp.value);
  }
  EXPECT_EQ(observed[3], 11u) << "epoch-0 write must survive the crash";
  EXPECT_EQ(observed[4], 22u);
  EXPECT_GE(store->network().stats().recoveries, 2u);
}

TEST(FaultRecovery, LoadBalancerCrashIsRebuiltStatelessly) {
  // A load balancer found crashed at the epoch boundary is rebuilt from config alone
  // (section 4.3); the rebuilt instance re-prepares from the per-(lb, epoch) seed, so
  // the epoch proceeds and responses stay correct.
  SnoopyConfig cfg;
  cfg.num_load_balancers = 2;
  cfg.num_suborams = 2;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  auto store = std::make_unique<Snoopy>(cfg, 10);
  store->Initialize({{1, Val(0)}, {2, Val(0)}});

  FaultInjector injector(10);
  FaultProfile reboot;
  reboot.crash_at_epoch_start = 1.0;  // crash at every epoch boundary
  injector.SetProfile("lb/0", reboot);
  store->set_fault_injector(&injector);

  store->SubmitWriteWithLb(0, 1, 1, 1, Val(5));
  store->RunEpoch();
  store->SubmitReadWithLb(0, 1, 2, 1);
  const auto resp = store->RunEpoch();
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(TagOf(resp[0].value), 5u);
  EXPECT_GE(store->network().stats().recoveries, 2u);
}

// ---------------------------------------------------------------------------------
// Rollback protection during recovery.
// ---------------------------------------------------------------------------------

TEST(FaultRecovery, StaleSnapshotReplayIsRefusedAsRollback) {
  SnoopyConfig cfg;
  cfg.num_suborams = 1;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  auto store = std::make_unique<Snoopy>(cfg, 11);
  store->Initialize({{1, Val(0)}});

  FaultInjector injector(11);
  store->set_fault_injector(&injector);

  // Capture the snapshot sealed at this epoch boundary, then let later epochs bump
  // the trusted counter past it.
  store->SubmitWrite(1, 1, 1, Val(1));
  store->RunEpoch();
  const std::vector<uint8_t> stale = store->suboram_snapshot(0);
  store->SubmitWrite(1, 2, 1, Val(2));
  store->RunEpoch();

  // Malicious host: crash the subORAM and offer the superseded snapshot. Recovery
  // must refuse (kRollback) instead of silently reviving old state.
  store->host_replace_snapshot(0, stale);
  injector.MarkCrashed("suboram/0");
  store->SubmitRead(1, 3, 1);
  try {
    store->RunEpoch();
    FAIL() << "expected RollbackDetectedError";
  } catch (const RollbackDetectedError& e) {
    EXPECT_EQ(e.status(), UnsealStatus::kRollback);
  }
}

TEST(FaultRecovery, TamperedSnapshotIsRefusedAsCorrupt) {
  SnoopyConfig cfg;
  cfg.num_suborams = 1;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  auto store = std::make_unique<Snoopy>(cfg, 12);
  store->Initialize({{1, Val(0)}});

  FaultInjector injector(12);
  store->set_fault_injector(&injector);

  store->SubmitWrite(1, 1, 1, Val(1));
  store->RunEpoch();
  std::vector<uint8_t> tampered = store->suboram_snapshot(0);
  ASSERT_FALSE(tampered.empty());
  tampered[tampered.size() / 2] ^= 0x01;
  store->host_replace_snapshot(0, std::move(tampered));
  injector.MarkCrashed("suboram/0");
  store->SubmitRead(1, 2, 1);
  try {
    store->RunEpoch();
    FAIL() << "expected RollbackDetectedError";
  } catch (const RollbackDetectedError& e) {
    EXPECT_EQ(e.status(), UnsealStatus::kCorrupt);
  }
}

// ---------------------------------------------------------------------------------
// Obliviousness: message faults must not change any enclave's memory trace.
// ---------------------------------------------------------------------------------

TEST(FaultRecovery, MemoryTraceIdenticalWithAndWithoutMessageFaults) {
  // Same seed, same workload, single-threaded sorts; one run clean, one run under
  // drops/duplicates/corruption/delays (no crashes: recovery legitimately re-executes
  // batches, which the adversary sees anyway when it kills a machine). The *memory*
  // subsequence of the trace must be byte-identical; only the communication pattern
  // (extra sends the adversary itself caused) may differ.
  auto run = [](bool with_faults) -> std::pair<uint64_t, uint64_t> {
    SnoopyConfig cfg;
    cfg.num_load_balancers = 2;
    cfg.num_suborams = 2;
    cfg.value_size = kValueSize;
    cfg.lambda = 40;
    cfg.sort_threads = 1;
    auto store = std::make_unique<Snoopy>(cfg, 21);
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
    for (uint64_t k = 0; k < 16; ++k) {
      objects.emplace_back(k, Val(0));
    }
    store->Initialize(objects);

    FaultInjector injector(33);
    if (with_faults) {
      FaultProfile chaos;
      chaos.drop = 0.15;
      chaos.duplicate = 0.15;
      chaos.corrupt = 0.1;
      chaos.delay = 0.1;
      chaos.delay_s = 0.01;
      injector.set_default_profile(chaos);
      store->set_fault_injector(&injector);
    }

    Rng rng(55);
    TraceScope scope;
    for (int epoch = 0; epoch < 4; ++epoch) {
      for (int i = 0; i < 12; ++i) {
        const auto lb = static_cast<uint32_t>(rng.Uniform(2));
        const uint64_t key = rng.Uniform(16);
        if (rng.Uniform(2) == 0) {
          store->SubmitWriteWithLb(lb, 1, epoch * 100 + i, key, Val(key + 1));
        } else {
          store->SubmitReadWithLb(lb, 1, epoch * 100 + i, key);
        }
      }
      store->RunEpoch();
    }
    const uint64_t faults = store->network().stats().faults_injected;
    return {MemoryTraceDigest(scope.Events()), faults};
  };

  const auto [clean_digest, clean_faults] = run(false);
  const auto [chaos_digest, chaos_faults] = run(true);
  EXPECT_EQ(clean_faults, 0u);
  ASSERT_GT(chaos_faults, 0u) << "the chaos run must actually inject faults";
  EXPECT_EQ(chaos_digest, clean_digest)
      << "message faults changed an enclave memory trace: retransmission is leaking";
}

}  // namespace
}  // namespace snoopy
