#include "src/sim/cost_model.h"

#include <gtest/gtest.h>

namespace snoopy {
namespace {

TEST(CostModel, SubOramScanDominatedByDataSize) {
  const CostModel m;
  const double small = m.SubOramBatchSeconds(1024, 1u << 15, 3);
  const double large = m.SubOramBatchSeconds(1024, 1u << 20, 3);
  EXPECT_GT(large, 5 * small) << "Figure 12: the jump between 2^15 and 2^20 objects";
}

TEST(CostModel, EpcCliffVisible) {
  // The *marginal* per-object cost rises once the partition exceeds the EPC
  // (2M x 168B = 336MB > 188MB usable): each additional object is streamed through
  // the host loader rather than served from protected memory.
  const CostModel m;
  const double in_epc =
      (m.SubOramBatchSeconds(4096, 1000000, 3) - m.SubOramBatchSeconds(4096, 500000, 3)) /
      500000.0;
  const double over_epc =
      (m.SubOramBatchSeconds(4096, 4000000, 3) - m.SubOramBatchSeconds(4096, 3000000, 3)) /
      1000000.0;
  EXPECT_GT(over_epc, 1.2 * in_epc);
}

TEST(CostModel, CalibrationAnchorA1) {
  // One subORAM, 2M 160-byte objects: epoch service time in the vicinity of the
  // paper's ~339 ms (we accept a generous band; the *shape* claims matter).
  const CostModel m;
  const double t = m.SubOramBatchSeconds(4096, 2000000, 3);
  EXPECT_GT(t, 0.15);
  EXPECT_LT(t, 0.7);
}

TEST(CostModel, ThreadsReduceServiceTime) {
  const CostModel m;
  const double t1 = m.SubOramBatchSeconds(4096, 1u << 20, 1);
  const double t2 = m.SubOramBatchSeconds(4096, 1u << 20, 2);
  const double t3 = m.SubOramBatchSeconds(4096, 1u << 20, 3);
  EXPECT_GT(t1, t2);
  EXPECT_GT(t2, t3);
  EXPECT_LT(t1 / t3, 3.0) << "sub-linear scaling (Figure 13b)";
}

TEST(CostModel, LbCostGrowsWithRequestsAndSubOrams) {
  const CostModel m;
  EXPECT_LT(m.LbPrepareSeconds(1000, 2, 4), m.LbPrepareSeconds(10000, 2, 4));
  EXPECT_LT(m.LbPrepareSeconds(10000, 2, 4), m.LbPrepareSeconds(10000, 20, 4));
  EXPECT_EQ(m.LbPrepareSeconds(0, 4, 4), 0.0);
}

TEST(CostModel, SortAnchorA4) {
  const CostModel m;
  const double t = m.BitonicSortSeconds(1u << 16, 208, 1);
  EXPECT_GT(t, 0.3);
  EXPECT_LT(t, 3.0);
}

TEST(CostModel, BucketSortCrossesBelowBitonicAtScale) {
  const CostModel m;
  // Past the crossover (many simulatable bins, large n) the O(n log n) bucket sort
  // must price below the O(n log^2 n) bitonic network; where no routing geometry is
  // viable the model falls back to the bitonic price exactly.
  const uint64_t n = 1u << 20;
  EXPECT_LT(m.BucketSortSeconds(n, 208, 1u << 14, 1), m.BitonicSortSeconds(n, 208, 1));
  EXPECT_EQ(m.BucketSortSeconds(1u << 16, 208, 1, 1), m.BitonicSortSeconds(1u << 16, 208, 1));
  EXPECT_EQ(m.BucketSortSeconds(1, 208, 16, 1), 0.0);
}

TEST(CostModel, OblixRecursionStepMatchesFigure10) {
  // The Figure 10 throughput spike: 2M/8 partitions need one fewer recursion level
  // than 2M/7 partitions.
  const CostModel m;
  EXPECT_EQ(m.OblixRecursionLevels(2000000 / 7), 3u);
  EXPECT_EQ(m.OblixRecursionLevels(2000000 / 8), 2u);
  EXPECT_LT(m.OblixAccessSeconds(2000000 / 8), m.OblixAccessSeconds(2000000 / 7));
}

TEST(CostModel, OblixAnchorA5) {
  const CostModel m;
  const double t = m.OblixAccessSeconds(2000000);
  EXPECT_GT(t, 0.4e-3);
  EXPECT_LT(t, 1.6e-3);  // paper: ~0.87 ms/access (1,153 reqs/s)
}

TEST(CostModel, BaselineConstants) {
  const CostModel m;
  EXPECT_NEAR(m.ObladiThroughput(), 6716.0, 1.0);
  EXPECT_NEAR(m.RedisThroughput(15), 4.2e6, 0.3e6);
}

TEST(CostModel, OhtGeometryCacheIsConsistent) {
  const CostModel m;
  const uint64_t a = m.OhtLookupSlots(5000);
  const uint64_t b = m.OhtLookupSlots(5000);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
  // Quantization must be monotone-ish: a much larger batch never gets a radically
  // smaller table cost.
  EXPECT_LE(m.OhtBuildSeconds(1000, 3), m.OhtBuildSeconds(64000, 3));
}

TEST(CostModel, NetworkCostHasLatencyAndBandwidthTerms) {
  const CostModel m;
  const double small = m.NetworkBatchSeconds(1);
  const double large = m.NetworkBatchSeconds(100000);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, 10 * small);
}

}  // namespace
}  // namespace snoopy
