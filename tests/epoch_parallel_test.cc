// Determinism of the parallel epoch executor (SnoopyConfig::epoch_threads).
//
// The epoch pipeline may fan phase 1 (batch preparation) out per load balancer,
// phase 2 per subORAM (each applying its batches in load-balancer order, which
// preserves the Appendix C linearization), and phase 3 per load balancer. The
// contract, pinned here, is that the thread count is *invisible* in every output the
// adversary or a client can see: identical client responses, byte-identical merged
// enclave traces (per-thread buffers merged in public-id order), and -- under chaos
// -- exactly the same fault decisions, so the fired-decision reconciliation from the
// telemetry tests keeps holding at any epoch_threads setting.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/snoopy.h"
#include "src/crypto/rng.h"
#include "src/enclave/trace.h"
#include "src/net/fault.h"
#include "src/net/network.h"

namespace snoopy {
namespace {

constexpr size_t kValueSize = 32;
constexpr uint64_t kObjects = 96;

std::vector<uint8_t> Val(uint64_t key, uint8_t version = 0) {
  std::vector<uint8_t> v(kValueSize, 0);
  std::memcpy(v.data(), &key, 8);
  v[8] = version;
  return v;
}

FaultProfile ChaosProfile() {
  FaultProfile chaos;
  chaos.drop = 0.08;
  chaos.duplicate = 0.08;
  chaos.corrupt = 0.05;
  chaos.crash_before_reply = 0.03;
  chaos.delay = 0.05;
  chaos.delay_s = 0.01;
  chaos.crash_at_epoch_start = 0.05;
  return chaos;
}

struct RunResult {
  std::map<uint64_t, ClientResponse> responses;  // by client_seq, all epochs
  std::vector<TraceEvent> trace;                 // all epochs, concatenated
  Network::Stats stats;                          // aggregate counters (no per-pair)
  uint64_t dedup_hits = 0;
  std::vector<FaultInjector::FiredDecision> fired;
};

// Runs the same seeded multi-epoch read/write workload (several epochs, requests
// pinned round-robin to load balancers) at the given thread count and returns
// everything observable. The workload, topology, and chaos seed are fixed; only
// epoch_threads varies across calls.
RunResult RunWorkload(int epoch_threads, uint64_t seed, bool with_chaos,
                      int epochs = 5) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = 2;
  cfg.num_suborams = 4;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  cfg.epoch_threads = epoch_threads;

  FaultInjector injector(seed * 3 + 1);
  injector.set_default_profile(ChaosProfile());

  auto store = std::make_unique<Snoopy>(cfg, seed);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < kObjects; ++k) {
    objects.emplace_back(k, Val(k));
  }
  store->Initialize(objects);
  MetricsRegistry registry;
  store->set_metrics_registry(&registry);
  if (with_chaos) {
    store->set_fault_injector(&injector);
  }

  RunResult result;
  Rng rng(seed * 77 + 5);
  uint64_t seq = 1;
  {
    TraceScope scope;
    for (int epoch = 0; epoch < epochs; ++epoch) {
      const size_t n = 8 + rng.Uniform(16);
      for (size_t i = 0; i < n; ++i) {
        const auto lb = static_cast<uint32_t>(i % cfg.num_load_balancers);
        const uint64_t key = rng.Uniform(kObjects);
        if (rng.Uniform(2) == 0) {
          store->SubmitWriteWithLb(lb, lb, seq, key,
                                   Val(key, static_cast<uint8_t>(epoch + 1)));
        } else {
          store->SubmitReadWithLb(lb, lb, seq, key);
        }
        ++seq;
      }
      for (ClientResponse& resp : store->RunEpoch()) {
        result.responses[resp.client_seq] = std::move(resp);
      }
    }
    result.trace = scope.Events();
  }
  result.stats = store->network().stats();
  result.dedup_hits = registry.GetCounter("snoopy_dedup_hits_total").value();
  result.fired = injector.fired_log();
  return result;
}

void ExpectSameResponses(const RunResult& base, const RunResult& run, int threads) {
  ASSERT_EQ(base.responses.size(), run.responses.size()) << "threads=" << threads;
  for (const auto& [s, want] : base.responses) {
    ASSERT_EQ(run.responses.count(s), 1u) << "threads=" << threads << " seq=" << s;
    const ClientResponse& got = run.responses.at(s);
    EXPECT_EQ(got.client_id, want.client_id) << "threads=" << threads << " seq=" << s;
    EXPECT_EQ(got.key, want.key) << "threads=" << threads << " seq=" << s;
    EXPECT_EQ(got.op, want.op) << "threads=" << threads << " seq=" << s;
    ASSERT_EQ(got.value, want.value) << "threads=" << threads << " seq=" << s;
  }
}

TEST(EpochParallel, CleanRunsAreThreadCountInvariant) {
  const RunResult base = RunWorkload(/*epoch_threads=*/1, /*seed=*/21, false);
  ASSERT_FALSE(base.responses.empty());
  for (const int threads : {2, 4, 8}) {
    const RunResult run = RunWorkload(threads, /*seed=*/21, false);
    ExpectSameResponses(base, run, threads);
    // Byte-for-byte, and non-vacuously: two empty traces would prove nothing.
    EXPECT_TRUE(NonVacuousTraceEq(base.trace, run.trace))
        << "threads=" << threads << ": merged parallel trace diverged from the "
        << "sequential trace (" << base.trace.size() << " vs " << run.trace.size()
        << " events)";
  }
}

TEST(EpochParallel, ChaosRunsAreThreadCountInvariant) {
  // Fault decisions come from per-target streams, so which faults fire must not
  // depend on worker interleaving -- same responses, same merged trace (including the
  // retransmission message pattern), same aggregate accounting.
  const RunResult base = RunWorkload(/*epoch_threads=*/1, /*seed=*/31, true);
  ASSERT_GT(base.stats.faults_injected, 0u) << "chaos did not bite";
  ASSERT_GT(base.stats.retries, 0u);
  for (const int threads : {4}) {
    const RunResult run = RunWorkload(threads, /*seed=*/31, true);
    ExpectSameResponses(base, run, threads);
    EXPECT_TRUE(NonVacuousTraceEq(base.trace, run.trace)) << "threads=" << threads;
    EXPECT_EQ(run.stats.messages, base.stats.messages);
    EXPECT_EQ(run.stats.bytes_sent, base.stats.bytes_sent);
    EXPECT_EQ(run.stats.retries, base.stats.retries);
    EXPECT_EQ(run.stats.timeouts, base.stats.timeouts);
    EXPECT_EQ(run.stats.faults_injected, base.stats.faults_injected);
    EXPECT_EQ(run.stats.recoveries, base.stats.recoveries);
    EXPECT_EQ(run.dedup_hits, base.dedup_hits);
    // The *per-target* fired subsequences are deterministic (entries from different
    // targets may interleave differently under scheduling).
    std::map<std::string, std::vector<FaultAction>> by_target[2];
    for (const FaultInjector::FiredDecision& d : base.fired) {
      by_target[0][d.target].push_back(d.action);
    }
    for (const FaultInjector::FiredDecision& d : run.fired) {
      by_target[1][d.target].push_back(d.action);
    }
    EXPECT_EQ(by_target[0], by_target[1]) << "threads=" << threads;
  }
}

TEST(EpochParallel, ChaosReconciliationHoldsUnderParallelism) {
  // The exact counter reconciliation from the telemetry suite (each fired decision
  // accounts for a fixed number of retries/timeouts/recoveries/dedup hits), re-run
  // with the parallel executor. Any double counting or lost update under concurrency
  // breaks an equality.
  const RunResult run = RunWorkload(/*epoch_threads=*/4, /*seed=*/45, true, /*epochs=*/8);
  uint64_t drops = 0, dups = 0, corrupt_req = 0, corrupt_rep = 0, crashes = 0,
           delays = 0, epoch_crashes = 0;
  for (const FaultInjector::FiredDecision& d : run.fired) {
    if (d.epoch_crash) {
      ++epoch_crashes;
      continue;
    }
    switch (d.action) {
      case FaultAction::kDrop: ++drops; break;
      case FaultAction::kDuplicate: ++dups; break;
      case FaultAction::kCorruptRequest: ++corrupt_req; break;
      case FaultAction::kCorruptReply: ++corrupt_rep; break;
      case FaultAction::kCrashBeforeReply: ++crashes; break;
      case FaultAction::kDelay: ++delays; break;
      case FaultAction::kNodeLoss: break;  // this workload never enables permanent loss
      case FaultAction::kNone: break;
    }
  }
  ASSERT_GT(drops + dups + corrupt_req + corrupt_rep, 0u) << "chaos did not bite";
  EXPECT_EQ(run.stats.faults_injected,
            drops + dups + corrupt_req + corrupt_rep + crashes + delays);
  EXPECT_EQ(run.stats.retries, drops + corrupt_req + corrupt_rep + 2 * crashes);
  EXPECT_EQ(run.stats.timeouts, drops + 2 * crashes);
  EXPECT_EQ(run.stats.recoveries, crashes + epoch_crashes);
  EXPECT_EQ(run.dedup_hits, dups + corrupt_rep);
}

TEST(EpochParallel, MultiEpochChaosStressMatchesSequential) {
  // Longer stress: more epochs and seeds, epoch_threads well above the subORAM count.
  // Run alongside TSan (tools/ci.sh) this doubles as the race regression for the
  // whole pipeline.
  for (const uint64_t seed : {61u, 62u}) {
    const RunResult base = RunWorkload(/*epoch_threads=*/1, seed, true, /*epochs=*/8);
    const RunResult run = RunWorkload(/*epoch_threads=*/6, seed, true, /*epochs=*/8);
    ExpectSameResponses(base, run, 6);
    EXPECT_TRUE(NonVacuousTraceEq(base.trace, run.trace)) << "seed=" << seed;
  }
}

TEST(EpochParallel, ThreadCountBeyondWorkIsHarmless) {
  // More threads than subORAMs/load balancers: workers are clamped to the task count.
  SnoopyConfig cfg;
  cfg.num_load_balancers = 1;
  cfg.num_suborams = 2;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  cfg.epoch_threads = 16;
  Snoopy store(cfg, 7);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 32; ++k) {
    objects.emplace_back(k, Val(k));
  }
  store.Initialize(objects);
  for (uint64_t i = 0; i < 8; ++i) {
    store.SubmitRead(/*client_id=*/1, /*client_seq=*/i, /*key=*/i * 3 % 32);
  }
  std::map<uint64_t, std::vector<uint8_t>> got;
  for (const ClientResponse& resp : store.RunEpoch()) {
    got[resp.client_seq] = resp.value;
  }
  ASSERT_EQ(got.size(), 8u);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(got[i], Val(i * 3 % 32)) << "seq=" << i;
  }
}

}  // namespace
}  // namespace snoopy
