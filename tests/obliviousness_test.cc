// End-to-end obliviousness: the adversary's view of a whole Snoopy epoch -- every
// memory access inside the (simulated) enclaves plus the communication pattern -- must
// be a function of public information only (paper Definition 1 / Appendix B).
//
// These tests run complete epochs over *different secret workloads with identical
// public parameters* (request count per load balancer, data size, topology) and assert
// byte-identical traces. They then vary each public parameter and assert the trace
// *does* change, i.e. the checks are not vacuous.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/core/snoopy.h"
#include "src/crypto/rng.h"
#include "src/enclave/trace.h"
#include "src/obl/compaction.h"
#include "src/obl/hash_table.h"
#include "src/obl/slab.h"

namespace snoopy {
namespace {

constexpr size_t kValueSize = 32;

struct Workload {
  // One (key, is_write) pair per request; requests are pinned round-robin to load
  // balancers so the per-balancer request counts (public) are equal across workloads.
  std::vector<std::pair<uint64_t, bool>> requests;
};

uint64_t EpochTraceDigest(uint32_t lbs, uint32_t sos, uint64_t objects,
                          const Workload& workload, uint64_t seed) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = lbs;
  cfg.num_suborams = sos;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  auto store = std::make_unique<Snoopy>(cfg, seed);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objs;
  for (uint64_t k = 0; k < objects; ++k) {
    objs.emplace_back(k, std::vector<uint8_t>(kValueSize, 1));
  }
  store->Initialize(objs);

  for (size_t i = 0; i < workload.requests.size(); ++i) {
    const auto [key, is_write] = workload.requests[i];
    const auto lb = static_cast<uint32_t>(i % lbs);
    if (is_write) {
      const std::vector<uint8_t> v(kValueSize, static_cast<uint8_t>(i));
      store->SubmitWriteWithLb(lb, 1, i, key, v);
    } else {
      store->SubmitReadWithLb(lb, 1, i, key);
    }
  }
  TraceScope scope;
  store->RunEpoch();
  return scope.Digest();
}

Workload UniformReads(uint64_t n, uint64_t key_space, uint64_t seed) {
  Rng rng(seed);
  Workload w;
  for (uint64_t i = 0; i < n; ++i) {
    w.requests.push_back({rng.Uniform(key_space), false});
  }
  return w;
}

Workload SkewedMixed(uint64_t n, uint64_t hot_key) {
  Workload w;
  for (uint64_t i = 0; i < n; ++i) {
    w.requests.push_back({hot_key, i % 3 == 0});
  }
  return w;
}

TEST(Obliviousness, EpochTraceIndependentOfRequestContents) {
  // Same public parameters (24 requests over 2 LBs, 3 subORAMs, 100 objects); wildly
  // different secret workloads: uniform reads vs. fully skewed read/write mix.
  const uint64_t uniform = EpochTraceDigest(2, 3, 100, UniformReads(24, 100, 1), 7);
  const uint64_t skewed = EpochTraceDigest(2, 3, 100, SkewedMixed(24, 55), 7);
  const uint64_t uniform2 = EpochTraceDigest(2, 3, 100, UniformReads(24, 100, 999), 7);
  EXPECT_EQ(uniform, skewed)
      << "the adversary could distinguish a skewed workload from a uniform one";
  EXPECT_EQ(uniform, uniform2);
}

TEST(Obliviousness, ReadsAndWritesIndistinguishable) {
  Workload all_reads;
  Workload all_writes;
  for (uint64_t i = 0; i < 16; ++i) {
    all_reads.requests.push_back({i, false});
    all_writes.requests.push_back({i, true});
  }
  EXPECT_EQ(EpochTraceDigest(1, 2, 64, all_reads, 3),
            EpochTraceDigest(1, 2, 64, all_writes, 3))
      << "request type must not be visible in the trace";
}

TEST(Obliviousness, PublicParametersDoShapeTheTrace) {
  // Sanity: the check above is meaningful only if the trace actually responds to
  // public changes. Request count, topology, and data size are all public.
  const uint64_t base = EpochTraceDigest(2, 3, 100, UniformReads(24, 100, 1), 7);
  EXPECT_NE(base, EpochTraceDigest(2, 3, 100, UniformReads(25, 100, 1), 7))
      << "request count is public and should alter the trace";
  EXPECT_NE(base, EpochTraceDigest(2, 4, 100, UniformReads(24, 100, 1), 7))
      << "subORAM count is public and should alter the trace";
  EXPECT_NE(base, EpochTraceDigest(2, 3, 140, UniformReads(24, 100, 1), 7))
      << "data size is public and should alter the trace";
}

// ---- Kernel-level trace identity ----
//
// The epoch tests above exercise the whole pipeline; these isolate the two kernels
// with secret-dependent data movement (compaction routing, hash-table bucketing) and
// assert their traces depend only on public geometry, not on the secrets.

TEST(Obliviousness, CompactionTraceIndependentOfKeepPattern) {
  // Same n and kept count (public), different keep patterns and payloads (secret).
  auto run = [](size_t (*compact)(ByteSlab&, std::span<uint8_t>),
                const std::vector<size_t>& keep_positions, uint8_t fill) {
    constexpr size_t kN = 80;
    ByteSlab slab(kN, 24);
    for (size_t i = 0; i < kN; ++i) {
      std::memset(slab.Record(i), fill + static_cast<int>(i % 7), 24);
    }
    std::vector<uint8_t> flags(kN, 0);
    for (const size_t p : keep_positions) {
      flags[p] = 1;
    }
    TraceScope scope;
    const size_t kept = compact(slab, std::span<uint8_t>(flags));
    EXPECT_EQ(kept, keep_positions.size());
    return scope.Digest();
  };
  const std::vector<size_t> front = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::vector<size_t> spread = {3, 11, 19, 27, 35, 43, 51, 59, 67, 79};
  EXPECT_EQ(run(&GoodrichCompact, front, 10), run(&GoodrichCompact, spread, 200))
      << "Goodrich routing leaked the keep pattern";
  EXPECT_EQ(run(&SortCompact, front, 10), run(&SortCompact, spread, 200))
      << "sort-based compaction leaked the keep pattern";
}

TEST(Obliviousness, CompactionTraceRespondsToPublicGeometry) {
  auto run = [](size_t n, size_t kept) {
    ByteSlab slab(n, 24);
    std::vector<uint8_t> flags(n, 0);
    for (size_t i = 0; i < kept; ++i) {
      flags[i] = 1;
    }
    TraceScope scope;
    GoodrichCompact(slab, std::span<uint8_t>(flags));
    return scope.Digest();
  };
  // n is public and must shape the trace; the kept *count* is declassified output, but
  // the routing itself is fixed by n alone, so two counts give the same trace.
  EXPECT_NE(run(80, 10), run(96, 10));
  EXPECT_EQ(run(80, 10), run(80, 40));
}

TEST(Obliviousness, HashTableTraceIndependentOfBatchKeys) {
  // Two batches of equal size with disjoint key sets and different payloads; the
  // construction sorts, scans, and bucket layout are fixed by (n, lambda) alone.
  auto run = [](uint64_t key_base, uint64_t key_step, uint8_t fill) {
    constexpr size_t kN = 96;
    ByteSlab slab(kN, 48);
    for (size_t i = 0; i < kN; ++i) {
      uint8_t* rec = slab.Record(i);
      std::memset(rec, fill, 48);
      const uint64_t key = key_base + i * key_step;
      std::memcpy(rec, &key, 8);
      rec[12] = 0;  // real record
    }
    const OhtSchema schema{/*key_offset=*/0, /*bin_offset=*/8, /*dummy_offset=*/12,
                           /*order_offset=*/16, /*dedup_offset=*/24};
    TwoTierOht oht(schema, /*lambda=*/40);
    Rng rng(17);
    TraceScope scope;
    EXPECT_TRUE(oht.Build(std::move(slab), rng));
    ByteSlab out = oht.ExtractAll();
    EXPECT_EQ(out.size(), kN);
    return scope.Digest();
  };
  EXPECT_EQ(run(1000, 1, 3), run(900000, 7, 250))
      << "hash table construction leaked the batch's key distribution";
}

TEST(Obliviousness, HashTableLookupTraceDependsOnlyOnBucketIndices) {
  // A full-bucket scan's trace is (bucket index, tier) -- a PRF of the key, public
  // under the once-per-key usage discipline. Two different keys mapping to different
  // buckets give different traces; the same key twice gives the same trace.
  constexpr size_t kN = 64;
  ByteSlab slab(kN, 48);
  for (size_t i = 0; i < kN; ++i) {
    uint8_t* rec = slab.Record(i);
    std::memset(rec, 0, 48);
    const uint64_t key = 5000 + i;
    std::memcpy(rec, &key, 8);
  }
  const OhtSchema schema{/*key_offset=*/0, /*bin_offset=*/8, /*dummy_offset=*/12,
                         /*order_offset=*/16, /*dedup_offset=*/24};
  TwoTierOht oht(schema, /*lambda=*/40);
  Rng rng(23);
  ASSERT_TRUE(oht.Build(std::move(slab), rng));
  auto probe = [&](uint64_t key) {
    TraceScope scope;
    oht.Tier1Bucket(key);
    oht.Tier2Bucket(key);
    return scope.Events();
  };
  EXPECT_EQ(probe(5000), probe(5000));
  // Find a second key landing in a different tier-1 bucket (exists for any non-trivial
  // table; scan a few candidates to avoid assuming the PRF).
  const uint64_t b0 = oht.Tier1BucketIndex(5000);
  uint64_t other = 0;
  for (uint64_t k = 5001; k < 5064; ++k) {
    if (oht.Tier1BucketIndex(k) != b0) {
      other = k;
      break;
    }
  }
  ASSERT_NE(other, 0u);
  EXPECT_NE(probe(5000), probe(other));
}

TEST(Obliviousness, MultiEpochTraceStillIndependent) {
  // Two epochs back to back; the second epoch's trace must not depend on what the
  // first epoch did (fresh hash-table keys per batch, stateless load balancers).
  auto run_two = [](uint64_t hot) {
    SnoopyConfig cfg;
    cfg.num_suborams = 2;
    cfg.value_size = kValueSize;
    cfg.lambda = 40;
    auto store = std::make_unique<Snoopy>(cfg, 11);
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objs;
    for (uint64_t k = 0; k < 50; ++k) {
      objs.emplace_back(k, std::vector<uint8_t>(kValueSize, 1));
    }
    store->Initialize(objs);
    for (uint64_t i = 0; i < 10; ++i) {
      store->SubmitWriteWithLb(0, 1, i, (hot + i) % 50,
                               std::vector<uint8_t>(kValueSize, 2));
    }
    store->RunEpoch();
    for (uint64_t i = 0; i < 10; ++i) {
      store->SubmitReadWithLb(0, 1, 100 + i, hot);
    }
    TraceScope scope;
    store->RunEpoch();
    return scope.Digest();
  };
  EXPECT_EQ(run_two(3), run_two(41));
}

}  // namespace
}  // namespace snoopy
