// End-to-end obliviousness: the adversary's view of a whole Snoopy epoch -- every
// memory access inside the (simulated) enclaves plus the communication pattern -- must
// be a function of public information only (paper Definition 1 / Appendix B).
//
// These tests run complete epochs over *different secret workloads with identical
// public parameters* (request count per load balancer, data size, topology) and assert
// byte-identical traces. They then vary each public parameter and assert the trace
// *does* change, i.e. the checks are not vacuous.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/core/snoopy.h"
#include "src/crypto/rng.h"
#include "src/enclave/trace.h"

namespace snoopy {
namespace {

constexpr size_t kValueSize = 32;

struct Workload {
  // One (key, is_write) pair per request; requests are pinned round-robin to load
  // balancers so the per-balancer request counts (public) are equal across workloads.
  std::vector<std::pair<uint64_t, bool>> requests;
};

uint64_t EpochTraceDigest(uint32_t lbs, uint32_t sos, uint64_t objects,
                          const Workload& workload, uint64_t seed) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = lbs;
  cfg.num_suborams = sos;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  auto store = std::make_unique<Snoopy>(cfg, seed);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objs;
  for (uint64_t k = 0; k < objects; ++k) {
    objs.emplace_back(k, std::vector<uint8_t>(kValueSize, 1));
  }
  store->Initialize(objs);

  for (size_t i = 0; i < workload.requests.size(); ++i) {
    const auto [key, is_write] = workload.requests[i];
    const auto lb = static_cast<uint32_t>(i % lbs);
    if (is_write) {
      const std::vector<uint8_t> v(kValueSize, static_cast<uint8_t>(i));
      store->SubmitWriteWithLb(lb, 1, i, key, v);
    } else {
      store->SubmitReadWithLb(lb, 1, i, key);
    }
  }
  TraceScope scope;
  store->RunEpoch();
  return scope.Digest();
}

Workload UniformReads(uint64_t n, uint64_t key_space, uint64_t seed) {
  Rng rng(seed);
  Workload w;
  for (uint64_t i = 0; i < n; ++i) {
    w.requests.push_back({rng.Uniform(key_space), false});
  }
  return w;
}

Workload SkewedMixed(uint64_t n, uint64_t hot_key) {
  Workload w;
  for (uint64_t i = 0; i < n; ++i) {
    w.requests.push_back({hot_key, i % 3 == 0});
  }
  return w;
}

TEST(Obliviousness, EpochTraceIndependentOfRequestContents) {
  // Same public parameters (24 requests over 2 LBs, 3 subORAMs, 100 objects); wildly
  // different secret workloads: uniform reads vs. fully skewed read/write mix.
  const uint64_t uniform = EpochTraceDigest(2, 3, 100, UniformReads(24, 100, 1), 7);
  const uint64_t skewed = EpochTraceDigest(2, 3, 100, SkewedMixed(24, 55), 7);
  const uint64_t uniform2 = EpochTraceDigest(2, 3, 100, UniformReads(24, 100, 999), 7);
  EXPECT_EQ(uniform, skewed)
      << "the adversary could distinguish a skewed workload from a uniform one";
  EXPECT_EQ(uniform, uniform2);
}

TEST(Obliviousness, ReadsAndWritesIndistinguishable) {
  Workload all_reads;
  Workload all_writes;
  for (uint64_t i = 0; i < 16; ++i) {
    all_reads.requests.push_back({i, false});
    all_writes.requests.push_back({i, true});
  }
  EXPECT_EQ(EpochTraceDigest(1, 2, 64, all_reads, 3),
            EpochTraceDigest(1, 2, 64, all_writes, 3))
      << "request type must not be visible in the trace";
}

TEST(Obliviousness, PublicParametersDoShapeTheTrace) {
  // Sanity: the check above is meaningful only if the trace actually responds to
  // public changes. Request count, topology, and data size are all public.
  const uint64_t base = EpochTraceDigest(2, 3, 100, UniformReads(24, 100, 1), 7);
  EXPECT_NE(base, EpochTraceDigest(2, 3, 100, UniformReads(25, 100, 1), 7))
      << "request count is public and should alter the trace";
  EXPECT_NE(base, EpochTraceDigest(2, 4, 100, UniformReads(24, 100, 1), 7))
      << "subORAM count is public and should alter the trace";
  EXPECT_NE(base, EpochTraceDigest(2, 3, 140, UniformReads(24, 100, 1), 7))
      << "data size is public and should alter the trace";
}

TEST(Obliviousness, MultiEpochTraceStillIndependent) {
  // Two epochs back to back; the second epoch's trace must not depend on what the
  // first epoch did (fresh hash-table keys per batch, stateless load balancers).
  auto run_two = [](uint64_t hot) {
    SnoopyConfig cfg;
    cfg.num_suborams = 2;
    cfg.value_size = kValueSize;
    cfg.lambda = 40;
    auto store = std::make_unique<Snoopy>(cfg, 11);
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objs;
    for (uint64_t k = 0; k < 50; ++k) {
      objs.emplace_back(k, std::vector<uint8_t>(kValueSize, 1));
    }
    store->Initialize(objs);
    for (uint64_t i = 0; i < 10; ++i) {
      store->SubmitWriteWithLb(0, 1, i, (hot + i) % 50,
                               std::vector<uint8_t>(kValueSize, 2));
    }
    store->RunEpoch();
    for (uint64_t i = 0; i < 10; ++i) {
      store->SubmitReadWithLb(0, 1, 100 + i, hot);
    }
    TraceScope scope;
    store->RunEpoch();
    return scope.Digest();
  };
  EXPECT_EQ(run_two(3), run_two(41));
}

}  // namespace
}  // namespace snoopy
