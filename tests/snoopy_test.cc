#include "src/core/snoopy.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "src/crypto/rng.h"

namespace snoopy {
namespace {

constexpr size_t kValueSize = 64;

std::vector<uint8_t> ValueFor(uint64_t key, uint8_t version = 0) {
  std::vector<uint8_t> v(kValueSize, 0);
  std::memcpy(v.data(), &key, 8);
  v[8] = version;
  return v;
}

std::unique_ptr<Snoopy> MakeSnoopy(uint32_t lbs, uint32_t sos, size_t n_objects,
                                   uint64_t seed = 1) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = lbs;
  cfg.num_suborams = sos;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  auto snoopy = std::make_unique<Snoopy>(cfg, seed);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < n_objects; ++k) {
    objects.emplace_back(k, ValueFor(k));
  }
  snoopy->Initialize(objects);
  return snoopy;
}

std::map<uint64_t, ClientResponse> BySeq(const std::vector<ClientResponse>& resps) {
  std::map<uint64_t, ClientResponse> m;
  for (const ClientResponse& r : resps) {
    m[r.client_seq] = r;
  }
  return m;
}

class SnoopyTopology : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(SnoopyTopology, ReadsAndWritesAcrossEpochs) {
  const auto [lbs, sos] = GetParam();
  auto store_ptr = MakeSnoopy(lbs, sos, 200);
  Snoopy& store = *store_ptr;

  // Epoch 1: read some keys.
  for (uint64_t i = 0; i < 20; ++i) {
    store.SubmitRead(/*client=*/1, /*seq=*/i, /*key=*/i * 7 % 200);
  }
  auto resp1 = BySeq(store.RunEpoch());
  ASSERT_EQ(resp1.size(), 20u);
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(resp1[i].value, ValueFor(i * 7 % 200)) << "lbs=" << lbs << " sos=" << sos;
  }

  // Epoch 2: write new versions.
  for (uint64_t i = 0; i < 10; ++i) {
    store.SubmitWrite(1, 100 + i, i, ValueFor(i, 2));
  }
  store.RunEpoch();

  // Epoch 3: read them back.
  for (uint64_t i = 0; i < 10; ++i) {
    store.SubmitRead(1, 200 + i, i);
  }
  auto resp3 = BySeq(store.RunEpoch());
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(resp3[200 + i].value, ValueFor(i, 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, SnoopyTopology,
                         ::testing::Values(std::pair<uint32_t, uint32_t>{1, 1},
                                           std::pair<uint32_t, uint32_t>{1, 3},
                                           std::pair<uint32_t, uint32_t>{2, 1},
                                           std::pair<uint32_t, uint32_t>{3, 4}));

TEST(Snoopy, RandomizedAgainstReferenceMap) {
  Rng rng(123);
  auto store_ptr = MakeSnoopy(2, 3, 300, /*seed=*/5);
  Snoopy& store = *store_ptr;
  std::map<uint64_t, std::vector<uint8_t>> model;
  for (uint64_t k = 0; k < 300; ++k) {
    model[k] = ValueFor(k);
  }
  uint64_t seq = 0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    // Queue a random mix; track expectations. One request per key per epoch to keep
    // the reference model simple (duplicates are exercised elsewhere).
    std::map<uint64_t, std::pair<uint64_t, bool>> submitted;  // key -> (seq, is_write)
    std::map<uint64_t, std::vector<uint8_t>> writes;
    const size_t n = 1 + rng.Uniform(60);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t key = rng.Uniform(300);
      if (submitted.count(key) != 0) {
        continue;
      }
      const bool is_write = rng.Uniform(2) == 0;
      submitted[key] = {seq, is_write};
      if (is_write) {
        auto nv = ValueFor(key, static_cast<uint8_t>(epoch + 1));
        store.SubmitWrite(7, seq, key, nv);
        writes[key] = nv;
      } else {
        store.SubmitRead(7, seq, key);
      }
      ++seq;
    }
    auto resp = BySeq(store.RunEpoch());
    ASSERT_EQ(resp.size(), submitted.size());
    for (const auto& [key, info] : submitted) {
      // Responses carry the pre-epoch state (reads-before-writes linearization).
      // With multiple load balancers a read may also see a same-epoch write from a
      // lower-id balancer, so accept either pre-state or the epoch's written value.
      const auto& got = resp[info.first].value;
      const bool pre = got == model[key];
      const bool post = writes.count(key) != 0 && got == writes[key];
      ASSERT_TRUE(pre || post) << "epoch=" << epoch << " key=" << key;
    }
    for (const auto& [key, nv] : writes) {
      model[key] = nv;
    }
  }
}

TEST(Snoopy, DuplicateRequestsInOneEpochAllGetAnswers) {
  auto store_ptr = MakeSnoopy(1, 2, 50);
  Snoopy& store = *store_ptr;
  // Five readers of the same key plus a write with the highest sequence number.
  for (uint64_t i = 0; i < 5; ++i) {
    store.SubmitRead(i, i, 13);
  }
  store.SubmitWrite(9, 5, 13, ValueFor(13, 3));
  auto resp = BySeq(store.RunEpoch());
  ASSERT_EQ(resp.size(), 6u);
  for (uint64_t i = 0; i <= 5; ++i) {
    // Everyone sees the pre-state: reads serialize before the write; the write's
    // response is also the pre-state by the paper's OStoreBatchAccess contract.
    EXPECT_EQ(resp[i].value, ValueFor(13, 0)) << "seq=" << i;
  }
  // The write still took effect.
  store.SubmitRead(1, 100, 13);
  auto resp2 = BySeq(store.RunEpoch());
  EXPECT_EQ(resp2[100].value, ValueFor(13, 3));
}

TEST(Snoopy, CrossLoadBalancerWritesApplyInIdOrder) {
  auto store_ptr = MakeSnoopy(2, 1, 20);
  Snoopy& store = *store_ptr;
  // Both load balancers write the same key in the same epoch; LB 1's batch executes
  // after LB 0's, so LB 1's value is the final state (Appendix C ordering).
  store.SubmitWriteWithLb(0, 1, 0, 7, ValueFor(7, 10));
  store.SubmitWriteWithLb(1, 2, 1, 7, ValueFor(7, 20));
  store.RunEpoch();
  store.SubmitRead(1, 2, 7);
  auto resp = BySeq(store.RunEpoch());
  EXPECT_EQ(resp[2].value, ValueFor(7, 20));
}

TEST(Snoopy, EmptyEpochsAndIdleLoadBalancers) {
  auto store_ptr = MakeSnoopy(3, 2, 30);
  Snoopy& store = *store_ptr;
  EXPECT_TRUE(store.RunEpoch().empty());
  store.SubmitReadWithLb(2, 1, 0, 5);  // only one LB has traffic
  auto resp = BySeq(store.RunEpoch());
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].value, ValueFor(5));
  EXPECT_EQ(store.epoch(), 2u);
}

TEST(Snoopy, NetworkCarriesEncryptedBatches) {
  auto store_ptr = MakeSnoopy(1, 2, 50);
  Snoopy& store = *store_ptr;
  store.SubmitRead(1, 0, 3);
  store.RunEpoch();
  // 2 subORAMs x 1 LB = 2 request messages per epoch.
  EXPECT_EQ(store.network().stats().messages, 2u);
  EXPECT_GT(store.network().stats().bytes_sent, 0u);
}

TEST(Snoopy, RejectsOversizedKeysAtInit) {
  SnoopyConfig cfg;
  cfg.value_size = kValueSize;
  Snoopy store(cfg, 1);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects = {
      {kDummyKeyBase + 1, ValueFor(1)}};
  EXPECT_THROW(store.Initialize(objects), std::invalid_argument);
}

TEST(Snoopy, RejectsZeroTopology) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = 0;
  EXPECT_THROW(Snoopy(cfg, 1), std::invalid_argument);
}

}  // namespace
}  // namespace snoopy
