#include "src/net/channel.h"

#include <gtest/gtest.h>

#include "src/crypto/rng.h"
#include "src/net/network.h"

namespace snoopy {
namespace {

Aead::Key TestKey() {
  Aead::Key key{};
  Rng rng(55);
  rng.Fill(key.data(), key.size());
  return key;
}

TEST(SecureChannel, RoundTripsMessagesInOrder) {
  const Aead::Key key = TestKey();
  SecureChannel sender(key, 1);
  SecureChannel receiver(key, 1);
  for (int i = 0; i < 10; ++i) {
    std::vector<uint8_t> msg(100, static_cast<uint8_t>(i));
    const std::vector<uint8_t> sealed = sender.Seal(msg);
    std::vector<uint8_t> opened;
    ASSERT_TRUE(receiver.Open(sealed, opened));
    EXPECT_EQ(opened, msg);
  }
  EXPECT_EQ(sender.messages_sealed(), 10u);
  EXPECT_EQ(receiver.messages_opened(), 10u);
}

TEST(SecureChannel, RejectsReplay) {
  const Aead::Key key = TestKey();
  SecureChannel sender(key, 2);
  SecureChannel receiver(key, 2);
  const std::vector<uint8_t> msg = {1, 2, 3};
  const std::vector<uint8_t> sealed = sender.Seal(msg);
  std::vector<uint8_t> opened;
  ASSERT_TRUE(receiver.Open(sealed, opened));
  // Replaying the same ciphertext must fail: the receiver's counter moved on.
  EXPECT_FALSE(receiver.Open(sealed, opened));
}

TEST(SecureChannel, RejectsReorder) {
  const Aead::Key key = TestKey();
  SecureChannel sender(key, 3);
  SecureChannel receiver(key, 3);
  const std::vector<uint8_t> m1 = sender.Seal(std::vector<uint8_t>{1});
  const std::vector<uint8_t> m2 = sender.Seal(std::vector<uint8_t>{2});
  std::vector<uint8_t> opened;
  EXPECT_FALSE(receiver.Open(m2, opened));  // out of order
  EXPECT_TRUE(receiver.Open(m1, opened));
  EXPECT_TRUE(receiver.Open(m2, opened));  // now in order
}

TEST(SecureChannel, DirectionsAreDomainSeparated) {
  const Aead::Key key = TestKey();
  SecureLink link(key, 7);
  const std::vector<uint8_t> sealed = link.a_to_b().Seal(std::vector<uint8_t>{9});
  std::vector<uint8_t> opened;
  // A message sealed for the a->b direction must not open on b->a.
  SecureLink link2(key, 7);
  EXPECT_FALSE(link2.b_to_a().Open(sealed, opened));
  EXPECT_TRUE(link2.a_to_b().Open(sealed, opened));
}

TEST(Network, RoutesAndCounts) {
  Network net;
  net.Register("echo", [](std::span<const uint8_t> in) {
    return std::vector<uint8_t>(in.begin(), in.end());
  });
  EXPECT_TRUE(net.HasEndpoint("echo"));
  EXPECT_FALSE(net.HasEndpoint("nope"));
  const std::vector<uint8_t> payload(32, 7);
  const std::vector<uint8_t> reply = net.Call("client", "echo", payload);
  EXPECT_EQ(reply, payload);
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_EQ(net.stats().bytes_sent, 32u);
  EXPECT_EQ(net.stats().bytes_received, 32u);
  // Unknown endpoints surface as the typed, non-retryable wiring error.
  try {
    net.Call("client", "nope", payload);
    FAIL() << "expected EndpointNotFoundError";
  } catch (const EndpointNotFoundError& e) {
    EXPECT_EQ(e.endpoint(), "nope");
    EXPECT_FALSE(e.retryable());
  }
}

TEST(SecureChannelTest, RekeyResetsCountersAndSessions) {
  Rng rng(11);
  const Aead::Key key = rng.NextKey32();
  SecureLink lb_end(key, 3);
  SecureLink so_end(key, 3);
  // Advance both directions a few messages into the session.
  for (int i = 0; i < 3; ++i) {
    std::vector<uint8_t> opened;
    ASSERT_TRUE(so_end.a_to_b().Open(lb_end.a_to_b().Seal(std::vector<uint8_t>{1}), opened));
    ASSERT_TRUE(lb_end.b_to_a().Open(so_end.b_to_a().Seal(std::vector<uint8_t>{2}), opened));
  }
  // One end restarts: fresh key, both ends rekey, counters restart at zero and the
  // new session works; bytes sealed under the old session no longer authenticate.
  const std::vector<uint8_t> stale = lb_end.a_to_b().Seal(std::vector<uint8_t>{3});
  const Aead::Key key2 = rng.NextKey32();
  lb_end.Rekey(key2);
  so_end.Rekey(key2);
  std::vector<uint8_t> opened;
  EXPECT_FALSE(so_end.a_to_b().Open(stale, opened));
  EXPECT_TRUE(so_end.a_to_b().Open(lb_end.a_to_b().Seal(std::vector<uint8_t>{4}), opened));
  EXPECT_EQ(opened, std::vector<uint8_t>{4});
}

}  // namespace
}  // namespace snoopy
