#include "src/pir/snoopy_pir.h"
#include "src/pir/xor_pir.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

namespace snoopy {
namespace {

ByteSlab MakeDb(size_t n, size_t stride = 24) {
  ByteSlab db(n, stride);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key = i;
    std::memcpy(db.Record(i), &key, 8);
    std::memset(db.Record(i) + 8, static_cast<int>(i % 251), stride - 8);
  }
  return db;
}

TEST(BitVector, BasicOps) {
  BitVector v(130);
  EXPECT_FALSE(v.Get(0));
  v.Flip(0);
  v.Flip(129);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(129));
  EXPECT_FALSE(v.Get(64));
  v.Flip(129);
  EXPECT_FALSE(v.Get(129));
}

TEST(XorPir, RetrievesEveryRecord) {
  const size_t n = 100;
  XorPirServer a(MakeDb(n));
  XorPirServer b(MakeDb(n));
  Rng rng(1);
  for (size_t i = 0; i < n; i += 7) {
    const PirQueryPair q = MakePirQuery(n, i, rng);
    const auto ans_a = a.Answer({q.for_a});
    const auto ans_b = b.Answer({q.for_b});
    const std::vector<uint8_t> rec = CombinePirAnswers(ans_a[0], ans_b[0]);
    uint64_t key;
    std::memcpy(&key, rec.data(), 8);
    EXPECT_EQ(key, i);
    EXPECT_EQ(rec[9], static_cast<uint8_t>(i % 251));
  }
}

TEST(XorPir, QueryPairDiffersInExactlyTheTargetBit) {
  Rng rng(2);
  const PirQueryPair q = MakePirQuery(200, 57, rng);
  size_t diff_count = 0;
  size_t diff_pos = 0;
  for (size_t i = 0; i < 200; ++i) {
    if (q.for_a.Get(i) != q.for_b.Get(i)) {
      ++diff_count;
      diff_pos = i;
    }
  }
  EXPECT_EQ(diff_count, 1u);
  EXPECT_EQ(diff_pos, 57u);
}

TEST(XorPir, EachServersViewIsFreshRandomness) {
  // The same index queried twice yields different vectors at each server (necessary
  // for the information-theoretic privacy argument).
  Rng rng(3);
  const PirQueryPair q1 = MakePirQuery(128, 5, rng);
  const PirQueryPair q2 = MakePirQuery(128, 5, rng);
  EXPECT_NE(q1.for_a.words(), q2.for_a.words());
  EXPECT_NE(q1.for_b.words(), q2.for_b.words());
}

TEST(XorPir, BatchedAnsweringUsesOneScan) {
  XorPirServer server(MakeDb(64));
  Rng rng(4);
  std::vector<BitVector> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(MakePirQuery(64, static_cast<size_t>(i), rng).for_a);
  }
  ASSERT_EQ(server.Answer(queries).size(), 10u);
  EXPECT_EQ(server.scans_performed(), 1u) << "10 queries, one database scan";
}

TEST(XorPir, RejectsMismatchedSizes) {
  XorPirServer server(MakeDb(16));
  EXPECT_THROW(server.Answer({BitVector(8)}), std::invalid_argument);
  Rng rng(5);
  EXPECT_THROW(MakePirQuery(16, 16, rng), std::out_of_range);
  EXPECT_THROW(CombinePirAnswers({1, 2}, {1}), std::invalid_argument);
}

TEST(SnoopyPir, EndToEndBatchLookups) {
  SnoopyPirConfig cfg;
  cfg.num_shards = 3;
  cfg.value_size = 32;
  cfg.lambda = 40;
  SnoopyPir store(cfg, 9);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 150; ++k) {
    objects.emplace_back(k, std::vector<uint8_t>(32, static_cast<uint8_t>(k + 1)));
  }
  store.Initialize(objects);

  const std::vector<uint64_t> keys = {0, 17, 17, 99, 149, 5000 /* absent */};
  const auto results = store.LookupBatch(keys);
  ASSERT_EQ(results.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(results[i].key, keys[i]);
    if (keys[i] < 150) {
      EXPECT_TRUE(results[i].found) << "key " << keys[i];
      EXPECT_EQ(results[i].value,
                std::vector<uint8_t>(32, static_cast<uint8_t>(keys[i] + 1)));
    } else {
      EXPECT_FALSE(results[i].found);
    }
  }
}

TEST(SnoopyPir, OneScanPerServerPerEpoch) {
  SnoopyPirConfig cfg;
  cfg.num_shards = 4;
  cfg.value_size = 16;
  cfg.lambda = 40;
  SnoopyPir store(cfg, 10);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 200; ++k) {
    objects.emplace_back(k, std::vector<uint8_t>(16, 1));
  }
  store.Initialize(objects);
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 50; ++i) {
    keys.push_back(i * 3 % 200);
  }
  store.LookupBatch(keys);
  // 4 shards x 2 servers x 1 epoch: the whole 50-request batch cost 8 scans.
  EXPECT_EQ(store.total_server_scans(), 8u);
}

TEST(SnoopyPir, SkewedBatchStillWorksViaDedup) {
  SnoopyPirConfig cfg;
  cfg.num_shards = 2;
  cfg.value_size = 16;
  cfg.lambda = 40;
  SnoopyPir store(cfg, 11);
  store.Initialize({{7, std::vector<uint8_t>(16, 9)}});
  const std::vector<uint64_t> keys(40, 7);  // everyone wants the same object
  const auto results = store.LookupBatch(keys);
  ASSERT_EQ(results.size(), 40u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.value, std::vector<uint8_t>(16, 9));
  }
}

}  // namespace
}  // namespace snoopy
