#include "src/obl/bin_placement.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "src/crypto/rng.h"
#include "src/enclave/trace.h"

namespace snoopy {
namespace {

// Test record layout: key(8) | bin(4) | dummy(1) | pad(3) | order(8) | dedup(8)
constexpr size_t kStride = 32;
constexpr BinSchema kSchema{/*bin_offset=*/8, /*dummy_offset=*/12, /*order_offset=*/16,
                            /*dedup_offset=*/24};

void SetField64(uint8_t* rec, size_t off, uint64_t v) { std::memcpy(rec + off, &v, 8); }
uint64_t GetField64(const uint8_t* rec, size_t off) {
  uint64_t v;
  std::memcpy(&v, rec + off, 8);
  return v;
}
void SetBin(uint8_t* rec, uint32_t bin) { std::memcpy(rec + kSchema.bin_offset, &bin, 4); }
uint32_t GetBin(const uint8_t* rec) {
  uint32_t v;
  std::memcpy(&v, rec + kSchema.bin_offset, 4);
  return v;
}

ByteSlab MakeRequests(const std::vector<std::pair<uint64_t, uint32_t>>& key_bins) {
  ByteSlab slab(key_bins.size(), kStride);
  for (size_t i = 0; i < key_bins.size(); ++i) {
    uint8_t* rec = slab.Record(i);
    SetField64(rec, 0, key_bins[i].first);
    SetBin(rec, key_bins[i].second);
    rec[kSchema.dummy_offset] = 0;
    SetField64(rec, kSchema.order_offset, i);
    SetField64(rec, kSchema.dedup_offset, key_bins[i].first);
  }
  return slab;
}

void MakeDummy(uint8_t* rec) { SetField64(rec, 0, ~uint64_t{0}); }

TEST(BinPlacement, PlacesEachRecordInItsBin) {
  // 7 records over 3 bins, capacity 4.
  ByteSlab slab = MakeRequests({{10, 0}, {11, 1}, {12, 2}, {13, 0}, {14, 1}, {15, 0}, {16, 2}});
  BinPlacementOptions opts;
  opts.num_bins = 3;
  opts.bin_capacity = 4;
  const BinPlacementResult r = ObliviousBinPlacement(slab, kSchema, opts, MakeDummy);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.placed, 7u);
  ASSERT_EQ(slab.size(), 12u);

  std::map<uint32_t, std::vector<uint64_t>> bins;
  for (size_t i = 0; i < slab.size(); ++i) {
    const uint8_t* rec = slab.Record(i);
    const uint32_t expected_bin = static_cast<uint32_t>(i / 4);
    EXPECT_EQ(GetBin(rec), expected_bin) << "slot " << i;
    if (rec[kSchema.dummy_offset] == 0) {
      bins[expected_bin].push_back(GetField64(rec, 0));
    }
  }
  EXPECT_EQ(bins[0], (std::vector<uint64_t>{10, 13, 15}));
  EXPECT_EQ(bins[1], (std::vector<uint64_t>{11, 14}));
  EXPECT_EQ(bins[2], (std::vector<uint64_t>{12, 16}));
}

TEST(BinPlacement, RealsPrecedeDummiesWithinBin) {
  ByteSlab slab = MakeRequests({{5, 0}, {6, 0}});
  BinPlacementOptions opts;
  opts.num_bins = 1;
  opts.bin_capacity = 5;
  ASSERT_TRUE(ObliviousBinPlacement(slab, kSchema, opts, MakeDummy).ok);
  ASSERT_EQ(slab.size(), 5u);
  EXPECT_EQ(slab.Record(0)[kSchema.dummy_offset], 0);
  EXPECT_EQ(slab.Record(1)[kSchema.dummy_offset], 0);
  EXPECT_EQ(slab.Record(2)[kSchema.dummy_offset], 1);
  EXPECT_EQ(slab.Record(3)[kSchema.dummy_offset], 1);
  EXPECT_EQ(slab.Record(4)[kSchema.dummy_offset], 1);
}

TEST(BinPlacement, OverflowIsReported) {
  ByteSlab slab = MakeRequests({{1, 0}, {2, 0}, {3, 0}});
  BinPlacementOptions opts;
  opts.num_bins = 2;
  opts.bin_capacity = 2;  // bin 0 gets 3 records > 2
  const BinPlacementResult r = ObliviousBinPlacement(slab, kSchema, opts, MakeDummy);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(slab.size(), 4u);  // output shape is unchanged by the failure (public)
}

TEST(BinPlacement, DedupKeepsSurvivorOnly) {
  // Three requests for key 42 with orders 2,0,1; survivor must be order 0 (the caller
  // encodes "survivor-first" in the order field, e.g. latest write first).
  ByteSlab slab(0, kStride);
  const uint64_t orders[3] = {2, 0, 1};
  for (int i = 0; i < 3; ++i) {
    uint8_t* rec = slab.AppendZero();
    SetField64(rec, 0, 100 + orders[i]);  // distinct payload marker per duplicate
    SetBin(rec, 0);
    rec[kSchema.dummy_offset] = 0;
    SetField64(rec, kSchema.order_offset, orders[i]);
    SetField64(rec, kSchema.dedup_offset, 42);  // same dedup key: duplicates
  }
  // Plus one non-duplicate.
  {
    uint8_t* rec = slab.AppendZero();
    SetField64(rec, 0, 7);
    SetBin(rec, 0);
    rec[kSchema.dummy_offset] = 0;
    SetField64(rec, kSchema.order_offset, 9);
    SetField64(rec, kSchema.dedup_offset, 7);
  }
  BinPlacementOptions opts;
  opts.num_bins = 1;
  opts.bin_capacity = 3;
  opts.dedup = true;
  const BinPlacementResult r = ObliviousBinPlacement(slab, kSchema, opts, MakeDummy);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.placed, 2u);  // survivor of the dup group + the single request
  ASSERT_EQ(slab.size(), 3u);
  // Output is ordered by dedup key within the bin (7 < 42); the dup group's survivor
  // is the order-0 duplicate (payload marker 100).
  EXPECT_EQ(GetField64(slab.Record(0), 0), 7u);
  EXPECT_EQ(GetField64(slab.Record(1), 0), 100u);
  EXPECT_EQ(slab.Record(2)[kSchema.dummy_offset], 1);
}

TEST(BinPlacement, DedupPreventsOverflowFromSkew) {
  // 100 requests, all for the same key: after dedup one slot suffices (the paper's
  // skew argument in section 4.1).
  std::vector<std::pair<uint64_t, uint32_t>> reqs(100, {77, 1});
  ByteSlab slab = MakeRequests(reqs);
  // dedup keys must all match for dedup to fire (MakeRequests sets dedup = key).
  BinPlacementOptions opts;
  opts.num_bins = 4;
  opts.bin_capacity = 2;
  opts.dedup = true;
  const BinPlacementResult r = ObliviousBinPlacement(slab, kSchema, opts, MakeDummy);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.placed, 1u);
}

TEST(BinPlacement, RandomizedAgainstReferenceModel) {
  Rng rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    const uint32_t m = static_cast<uint32_t>(1 + rng.Uniform(8));
    const uint32_t z = static_cast<uint32_t>(1 + rng.Uniform(10));
    const size_t n = rng.Uniform(m * z + 5);
    std::vector<std::pair<uint64_t, uint32_t>> reqs;
    std::map<uint32_t, std::vector<uint64_t>> expected;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t key = 1000 + i;
      const auto bin = static_cast<uint32_t>(rng.Uniform(m));
      reqs.push_back({key, bin});
      expected[bin].push_back(key);
    }
    bool should_fail = false;
    for (auto& [bin, keys] : expected) {
      if (keys.size() > z) {
        should_fail = true;
      }
    }
    ByteSlab slab = MakeRequests(reqs);
    BinPlacementOptions opts;
    opts.num_bins = m;
    opts.bin_capacity = z;
    const BinPlacementResult r = ObliviousBinPlacement(slab, kSchema, opts, MakeDummy);
    ASSERT_EQ(r.ok, !should_fail) << "trial=" << trial;
    ASSERT_EQ(slab.size(), size_t{m} * z);
    if (should_fail) {
      continue;
    }
    for (uint32_t b = 0; b < m; ++b) {
      std::vector<uint64_t> got;
      for (uint32_t j = 0; j < z; ++j) {
        const uint8_t* rec = slab.Record(b * z + j);
        if (rec[kSchema.dummy_offset] == 0) {
          got.push_back(GetField64(rec, 0));
        }
      }
      ASSERT_EQ(got, expected[b]) << "trial=" << trial << " bin=" << b;
    }
  }
}

TEST(BinPlacement, TraceIndependentOfAssignment) {
  // Same n, m, z, different secret bin assignments: identical traces.
  auto trace_for = [](uint64_t seed) {
    Rng rng(seed);
    std::vector<std::pair<uint64_t, uint32_t>> reqs;
    for (size_t i = 0; i < 40; ++i) {
      reqs.push_back({i, static_cast<uint32_t>(rng.Uniform(4))});
    }
    ByteSlab slab = MakeRequests(reqs);
    BinPlacementOptions opts;
    opts.num_bins = 4;
    opts.bin_capacity = 40;  // capacity large enough that neither input overflows
    TraceScope scope;
    ObliviousBinPlacement(slab, kSchema, opts, MakeDummy);
    return scope.Digest();
  };
  EXPECT_EQ(trace_for(1), trace_for(2));
  EXPECT_EQ(trace_for(3), trace_for(17));
}

}  // namespace
}  // namespace snoopy
