// Tests for the dispatching SIMD kernel layer (src/obl/kernels.h): differential
// fuzzing of every supported backend against the scalar TCB primitives, dispatch
// override plumbing, trace identity of the blocked sort across backends and tile
// sizes, and the vectorized ChaCha20 keystream against the scalar block function.

#include "src/obl/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/crypto/chacha20.h"
#include "src/crypto/rng.h"
#include "src/enclave/trace.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/primitives.h"
#include "src/obl/secret.h"
#include "src/obl/slab.h"

namespace snoopy {
namespace {

// Restores the dispatch state a test mutated, even on assertion failure.
class BackendGuard {
 public:
  BackendGuard() : saved_(ActiveKernelBackend()) {}
  ~BackendGuard() { SetKernelBackend(saved_); }

 private:
  KernelBackend saved_;
};

TEST(KernelDispatch, SupportedBackendsStartWithGeneric) {
  const std::vector<KernelBackend> backends = SupportedKernelBackends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.front(), KernelBackend::kGeneric);
  for (const KernelBackend backend : backends) {
    EXPECT_TRUE(KernelBackendSupported(backend)) << KernelBackendName(backend);
    EXPECT_NE(std::string(KernelBackendName(backend)), "");
  }
}

TEST(KernelDispatch, SetAndResetControlActiveBackend) {
  BackendGuard guard;
  for (const KernelBackend backend : SupportedKernelBackends()) {
    SetKernelBackend(backend);
    EXPECT_EQ(ActiveKernelBackend(), backend);
  }
}

TEST(KernelDispatch, ForceGenericEnvOverride) {
  BackendGuard guard;
  ASSERT_EQ(setenv("SNOOPY_FORCE_GENERIC_KERNELS", "1", 1), 0);
  ResetKernelBackend();
  EXPECT_EQ(ActiveKernelBackend(), KernelBackend::kGeneric);
  ASSERT_EQ(unsetenv("SNOOPY_FORCE_GENERIC_KERNELS"), 0);
  ResetKernelBackend();
  // After clearing the override the resolver picks the widest supported backend.
  EXPECT_EQ(ActiveKernelBackend(), SupportedKernelBackends().back());
}

TEST(KernelDispatch, BackendEnvSelection) {
  BackendGuard guard;
  // The force flag wins over SNOOPY_KERNEL_BACKEND by design, and the ci.sh
  // forced-generic stage exports it for every test; drop it so this test exercises
  // the named-backend path it is about.
  ASSERT_EQ(unsetenv("SNOOPY_FORCE_GENERIC_KERNELS"), 0);
  for (const KernelBackend backend : SupportedKernelBackends()) {
    ASSERT_EQ(setenv("SNOOPY_KERNEL_BACKEND", KernelBackendName(backend), 1), 0);
    ResetKernelBackend();
    EXPECT_EQ(ActiveKernelBackend(), backend) << KernelBackendName(backend);
  }
  ASSERT_EQ(unsetenv("SNOOPY_KERNEL_BACKEND"), 0);
  ResetKernelBackend();
}

// Differential fuzz: every backend must produce byte-identical results to the scalar
// primitives for every length 0..1024 at a spread of misalignments (both pointers,
// independently) and for both mask values. Buffers carry guard bytes so out-of-bounds
// writes are caught too.
TEST(Kernels, CondCopyMatchesScalarEverywhere) {
  Rng rng(101);
  for (const KernelBackend backend : SupportedKernelBackends()) {
    BackendGuard guard;
    SetKernelBackend(backend);
    for (int iter = 0; iter < 400; ++iter) {
      const size_t n = static_cast<size_t>(rng.Uniform(1025));
      const size_t mis_d = static_cast<size_t>(rng.Uniform(32));
      const size_t mis_s = static_cast<size_t>(rng.Uniform(32));
      const uint64_t mask = (rng.Uniform(2) != 0) ? ~uint64_t{0} : 0;
      std::vector<uint8_t> dst(n + 64 + mis_d);
      std::vector<uint8_t> src(n + 64 + mis_s);
      for (auto& b : dst) b = static_cast<uint8_t>(rng.Next64());
      for (auto& b : src) b = static_cast<uint8_t>(rng.Next64());
      std::vector<uint8_t> want = dst;
      CtCondCopyBytesMask(mask, want.data() + mis_d, src.data() + mis_s, n);
      KernelCondCopyBytesMask(mask, dst.data() + mis_d, src.data() + mis_s, n);
      ASSERT_EQ(dst, want) << KernelBackendName(backend) << " n=" << n << " mis_d=" << mis_d
                           << " mis_s=" << mis_s << " mask=" << mask;
    }
  }
}

TEST(Kernels, CondSwapMatchesScalarEverywhere) {
  Rng rng(102);
  for (const KernelBackend backend : SupportedKernelBackends()) {
    BackendGuard guard;
    SetKernelBackend(backend);
    for (int iter = 0; iter < 400; ++iter) {
      const size_t n = static_cast<size_t>(rng.Uniform(1025));
      const size_t mis_a = static_cast<size_t>(rng.Uniform(32));
      const size_t mis_b = static_cast<size_t>(rng.Uniform(32));
      const uint64_t mask = (rng.Uniform(2) != 0) ? ~uint64_t{0} : 0;
      std::vector<uint8_t> a(n + 64 + mis_a);
      std::vector<uint8_t> b(n + 64 + mis_b);
      for (auto& x : a) x = static_cast<uint8_t>(rng.Next64());
      for (auto& x : b) x = static_cast<uint8_t>(rng.Next64());
      std::vector<uint8_t> want_a = a;
      std::vector<uint8_t> want_b = b;
      CtCondSwapBytesMask(mask, want_a.data() + mis_a, want_b.data() + mis_b, n);
      KernelCondSwapBytesMask(mask, a.data() + mis_a, b.data() + mis_b, n);
      ASSERT_EQ(a, want_a) << KernelBackendName(backend) << " n=" << n;
      ASSERT_EQ(b, want_b) << KernelBackendName(backend) << " n=" << n;
    }
  }
}

TEST(Kernels, TailSizesExercised) {
  // Deterministic sweep of the scalar-tail sizes 1..7 on top of every vector width
  // boundary, all misalignments 0..31.
  for (const KernelBackend backend : SupportedKernelBackends()) {
    BackendGuard guard;
    SetKernelBackend(backend);
    for (const size_t base : {size_t{0}, size_t{16}, size_t{32}, size_t{64}, size_t{128}}) {
      for (size_t tail = 1; tail <= 7; ++tail) {
        const size_t n = base + tail;
        for (size_t mis = 0; mis < 32; ++mis) {
          std::vector<uint8_t> a(n + 64 + mis);
          std::vector<uint8_t> b(n + 64 + mis);
          for (size_t i = 0; i < a.size(); ++i) {
            a[i] = static_cast<uint8_t>(i * 7 + 1);
            b[i] = static_cast<uint8_t>(i * 13 + 5);
          }
          std::vector<uint8_t> want_a = a;
          std::vector<uint8_t> want_b = b;
          CtCondSwapBytesMask(~uint64_t{0}, want_a.data() + mis, want_b.data() + mis, n);
          KernelCondSwapBytesMask(~uint64_t{0}, a.data() + mis, b.data() + mis, n);
          ASSERT_EQ(a, want_a) << KernelBackendName(backend) << " n=" << n << " mis=" << mis;
          ASSERT_EQ(b, want_b) << KernelBackendName(backend) << " n=" << n << " mis=" << mis;
        }
      }
    }
  }
}

TEST(Kernels, EqualMatchesScalarIncludingTailDiffs) {
  Rng rng(103);
  for (const KernelBackend backend : SupportedKernelBackends()) {
    BackendGuard guard;
    SetKernelBackend(backend);
    for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{16}, size_t{31}, size_t{63},
                           size_t{64}, size_t{160}, size_t{208}, size_t{1024}}) {
      for (size_t mis = 0; mis < 8; ++mis) {
        std::vector<uint8_t> a(n + 64 + mis);
        for (auto& x : a) x = static_cast<uint8_t>(rng.Next64());
        std::vector<uint8_t> b = a;
        EXPECT_TRUE(KernelEqualBytes(a.data() + mis, b.data() + mis, n))
            << KernelBackendName(backend) << " n=" << n;
        EXPECT_EQ(KernelSecretEqualBytes(a.data() + mis, b.data() + mis, n).mask(),
                  ~uint64_t{0});
        if (n == 0) {
          continue;
        }
        // Flip one byte at the front, the back (tail position), and somewhere middle.
        for (const size_t pos : {size_t{0}, n - 1, n / 2}) {
          b[mis + pos] ^= 0x40;
          EXPECT_FALSE(KernelEqualBytes(a.data() + mis, b.data() + mis, n))
              << KernelBackendName(backend) << " n=" << n << " pos=" << pos;
          EXPECT_EQ(KernelSecretEqualBytes(a.data() + mis, b.data() + mis, n).mask(),
                    uint64_t{0});
          b[mis + pos] ^= 0x40;
        }
      }
    }
  }
}

TEST(Kernels, SecretBoolFormsMatchMaskForms) {
  BackendGuard guard;
  for (const KernelBackend backend : SupportedKernelBackends()) {
    SetKernelBackend(backend);
    std::vector<uint8_t> a(208, 1);
    std::vector<uint8_t> b(208, 2);
    KernelCondSwapBytes(SecretBool::FromBool(true), a.data(), b.data(), a.size());
    EXPECT_EQ(a[0], 2);
    EXPECT_EQ(b[0], 1);
    KernelCondCopyBytes(SecretBool::FromBool(false), a.data(), b.data(), a.size());
    EXPECT_EQ(a[0], 2);
    KernelCondCopyBytes(SecretBool::FromBool(true), a.data(), b.data(), a.size());
    EXPECT_EQ(a[0], 1);
  }
}

TEST(Kernels, SortBlockRecordsDerivation) {
  // Tile = largest power of two with two operand records resident in the L1 budget.
  EXPECT_EQ(SortBlockRecords(208), 64u);
  EXPECT_EQ(SortBlockRecords(160), 64u);
  EXPECT_EQ(SortBlockRecords(1), 16384u);
  // Never below the minimum tile, even for absurd records.
  EXPECT_EQ(SortBlockRecords(1 << 20), 4u);
  for (const size_t rb : {size_t{8}, size_t{24}, size_t{208}, size_t{4096}}) {
    const size_t block = SortBlockRecords(rb);
    EXPECT_EQ(block & (block - 1), 0u) << rb;  // power of two
    if (block > 4) {
      EXPECT_LE(2 * block * rb, kL1TileBytes) << rb;
    }
  }
  // The adaptive-threads threshold is derived from the tile: below 128 tiles of
  // 208-byte records (8192 of them) a sort stays single-threaded.
  EXPECT_EQ(AdaptiveSortThreads(128 * SortBlockRecords(208) - 1, 4, 208), 1);
  EXPECT_GE(AdaptiveSortThreads(128 * SortBlockRecords(208), 4, 208), 1);
}

// --- Trace identity: generic vs SIMD vs blocked ----------------------------------

std::vector<TraceEvent> SlabSortTrace(KernelBackend backend, int threads,
                                      size_t block_records, bool blocked) {
  BackendGuard guard;
  SetKernelBackend(backend);
  ByteSlab slab(333, 24);  // non-power-of-two records, 24B stride
  Rng rng(7);
  for (size_t i = 0; i < slab.size(); ++i) {
    const uint64_t key = rng.Next64();
    std::memcpy(slab.Record(i), &key, 8);
  }
  const auto less = [](const uint8_t* a, const uint8_t* b) {
    return LoadSecretU64(a, 0) < LoadSecretU64(b, 0);
  };
  TraceScope scope;
  if (blocked) {
    BitonicSortSlabBlocked(slab, less, threads, block_records);
  } else {
    BitonicSortSlab(slab, less, threads);
  }
  return scope.Events();
}

TEST(KernelTrace, SlabSortTraceIdenticalAcrossBackends) {
  const std::vector<TraceEvent> reference =
      SlabSortTrace(KernelBackend::kGeneric, 1, 0, /*blocked=*/false);
  for (const KernelBackend backend : SupportedKernelBackends()) {
    EXPECT_TRUE(NonVacuousTraceEq(reference, SlabSortTrace(backend, 1, 0, false)))
        << KernelBackendName(backend);
  }
}

TEST(KernelTrace, BlockedSortTraceIdenticalAcrossBlockSizesAndBackends) {
  // The blocked executor replays the depth-first recursion order exactly, so the
  // trace must be byte-identical to the unblocked network for EVERY public tile size
  // and backend, single- and multi-threaded.
  const std::vector<TraceEvent> reference =
      SlabSortTrace(KernelBackend::kGeneric, 1, 0, /*blocked=*/false);
  for (const KernelBackend backend : SupportedKernelBackends()) {
    for (const size_t block : {size_t{2}, size_t{4}, size_t{16}, size_t{64}, size_t{1024}}) {
      EXPECT_TRUE(NonVacuousTraceEq(reference, SlabSortTrace(backend, 1, block, true)))
          << KernelBackendName(backend) << " block=" << block;
      EXPECT_TRUE(NonVacuousTraceEq(reference, SlabSortTrace(backend, 3, block, true)))
          << KernelBackendName(backend) << " block=" << block << " threads=3";
    }
  }
}

TEST(BlockedSort, SortsCorrectlyAtAwkwardSizes) {
  for (const size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{63}, size_t{200}, size_t{333},
                         size_t{1024}}) {
    for (const size_t block : {size_t{0}, size_t{4}, size_t{64}}) {
      ByteSlab slab(n, 24);
      Rng rng(n * 31 + block);
      std::vector<uint64_t> keys(n);
      for (size_t i = 0; i < n; ++i) {
        keys[i] = rng.Next64();
        std::memcpy(slab.Record(i), &keys[i], 8);
      }
      BitonicSortSlabBlocked(
          slab,
          [](const uint8_t* a, const uint8_t* b) {
            return LoadSecretU64(a, 0) < LoadSecretU64(b, 0);
          },
          /*threads=*/1, block);
      std::sort(keys.begin(), keys.end());
      for (size_t i = 0; i < n; ++i) {
        uint64_t k;
        std::memcpy(&k, slab.Record(i), 8);
        ASSERT_EQ(k, keys[i]) << "n=" << n << " block=" << block << " i=" << i;
      }
    }
  }
}

// --- ChaCha20: vector keystream vs scalar ----------------------------------------

std::vector<uint8_t> ChaChaCrypt(KernelBackend backend, size_t len, size_t chunk) {
  BackendGuard guard;
  SetKernelBackend(backend);
  std::vector<uint8_t> key(ChaCha20::kKeyBytes);
  std::vector<uint8_t> nonce(ChaCha20::kNonceBytes);
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(i * 11 + 1);
  for (size_t i = 0; i < nonce.size(); ++i) nonce[i] = static_cast<uint8_t>(i * 29 + 3);
  ChaCha20 cipher(key, nonce, /*counter=*/7);
  std::vector<uint8_t> data(len);
  for (size_t i = 0; i < len; ++i) data[i] = static_cast<uint8_t>(i);
  for (size_t off = 0; off < len;) {
    const size_t take = std::min(chunk, len - off);
    cipher.Crypt(data.data() + off, take);
    off += take;
  }
  return data;
}

TEST(ChaChaKernels, SimdKeystreamMatchesScalar) {
  for (const size_t len : {size_t{1}, size_t{63}, size_t{64}, size_t{65}, size_t{255},
                           size_t{256}, size_t{257}, size_t{511}, size_t{512}, size_t{513},
                           size_t{4096}, size_t{4109}}) {
    const std::vector<uint8_t> want = ChaChaCrypt(KernelBackend::kGeneric, len, len);
    for (const KernelBackend backend : SupportedKernelBackends()) {
      EXPECT_EQ(ChaChaCrypt(backend, len, len), want)
          << KernelBackendName(backend) << " len=" << len;
    }
  }
}

TEST(ChaChaKernels, ChunkedCryptMatchesOneShot) {
  // Chunk boundaries force partial-block buffering between calls; the SIMD fast path
  // must pick up cleanly after a drain, for every backend.
  const size_t len = 2048 + 21;
  const std::vector<uint8_t> want = ChaChaCrypt(KernelBackend::kGeneric, len, len);
  for (const KernelBackend backend : SupportedKernelBackends()) {
    for (const size_t chunk : {size_t{1}, size_t{37}, size_t{64}, size_t{100}, size_t{512}}) {
      EXPECT_EQ(ChaChaCrypt(backend, len, chunk), want)
          << KernelBackendName(backend) << " chunk=" << chunk;
    }
  }
}

}  // namespace
}  // namespace snoopy
