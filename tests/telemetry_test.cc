// Tests for the leakage-safe telemetry layer (src/telemetry/metrics.h) and its
// instrumentation of the Snoopy pipeline.
//
// Three properties carry the security argument and get the heaviest coverage here:
//   1. Secrets are unrecordable at compile time: the deleted Secret<T>/SecretBool
//      overloads are pinned with a detection idiom (static_asserts below).
//   2. Telemetry never touches the enclave trace: a metrics-on run and a metrics-off
//      run of the same seeded workload produce byte-identical traces.
//   3. Every robustness counter is *caused* by an adversary-visible event: the chaos
//      reconciliation test proves retries/recoveries/dedup-hits are an exact function
//      of the injector's fired-decision log -- nothing secret-dependent, and no double
//      counting when retransmit dedup and crash recovery interact.

#include "src/telemetry/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/core/snoopy.h"
#include "src/enclave/trace.h"
#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/obl/secret.h"

namespace snoopy {
namespace {

// ---------------------------------------------------------------------------------
// Compile-time leakage safety: the deleted overloads must make every secret-typed
// record expression ill-formed, while the plain-typed ones stay callable.
// ---------------------------------------------------------------------------------

template <typename M, typename V, typename = void>
struct CanIncrement : std::false_type {};
template <typename M, typename V>
struct CanIncrement<M, V,
                    std::void_t<decltype(std::declval<M&>().Increment(std::declval<V>()))>>
    : std::true_type {};

template <typename M, typename V, typename = void>
struct CanSetValue : std::false_type {};
template <typename M, typename V>
struct CanSetValue<M, V,
                   std::void_t<decltype(std::declval<M&>().SetValue(std::declval<V>()))>>
    : std::true_type {};

template <typename M, typename V, typename = void>
struct CanAdd : std::false_type {};
template <typename M, typename V>
struct CanAdd<M, V, std::void_t<decltype(std::declval<M&>().Add(std::declval<V>()))>>
    : std::true_type {};

template <typename M, typename V, typename = void>
struct CanObserve : std::false_type {};
template <typename M, typename V>
struct CanObserve<M, V, std::void_t<decltype(std::declval<M&>().Observe(std::declval<V>()))>>
    : std::true_type {};

static_assert(CanIncrement<Counter, uint64_t>::value);
static_assert(CanIncrement<Counter, int>::value);
static_assert(!CanIncrement<Counter, Secret<uint64_t>>::value,
              "Counter::Increment(Secret<T>) must be a compile error");
static_assert(!CanIncrement<Counter, SecretBool>::value);

static_assert(CanSetValue<Gauge, double>::value);
static_assert(!CanSetValue<Gauge, Secret<uint64_t>>::value,
              "Gauge::SetValue(Secret<T>) must be a compile error");
static_assert(!CanSetValue<Gauge, SecretBool>::value);
static_assert(CanAdd<Gauge, double>::value);
static_assert(!CanAdd<Gauge, Secret<uint32_t>>::value);
static_assert(!CanAdd<Gauge, SecretBool>::value);

static_assert(CanObserve<Histogram, double>::value);
static_assert(CanObserve<Histogram, uint64_t>::value);
static_assert(!CanObserve<Histogram, Secret<uint64_t>>::value,
              "Histogram::Observe(Secret<T>) must be a compile error");
static_assert(!CanObserve<Histogram, SecretBool>::value);

// ---------------------------------------------------------------------------------
// Histogram: bucket geometry, quantiles, uniform mass, merge.
// ---------------------------------------------------------------------------------

TEST(Histogram, BucketGeometryBracketsEveryValue) {
  for (const double v : {1e-12, 3.7e-9, 0.001, 0.5, 1.0, 1.0625, 2.0, 3.14159, 1000.0,
                         7.5e8, 9.9e11}) {
    const int i = Histogram::BucketIndex(v);
    ASSERT_GT(i, 0) << v;
    ASSERT_LT(i, Histogram::kNumBuckets) << v;
    EXPECT_LE(Histogram::BucketLowerEdge(i), v) << v;
    EXPECT_GT(Histogram::BucketUpperEdge(i), v) << v;
    // Log-linear promise: each bucket is narrow relative to its position.
    EXPECT_LT(Histogram::BucketUpperEdge(i) / Histogram::BucketLowerEdge(i),
              1.0 + 2.0 / Histogram::kSubBuckets)
        << v;
  }
  // Edges tile the positive axis without gaps or overlaps.
  for (int i = 1; i + 1 < Histogram::kNumBuckets; ++i) {
    ASSERT_DOUBLE_EQ(Histogram::BucketUpperEdge(i), Histogram::BucketLowerEdge(i + 1)) << i;
  }
  // Zero, negatives, and underflow land in the catch-all bucket; overflow clamps.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1e-300), 0);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
}

TEST(Histogram, QuantilesTrackKnownDistribution) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Observe(static_cast<double>(i));
  }
  EXPECT_EQ(h.count(), 1000);
  EXPECT_DOUBLE_EQ(h.sum(), 500500.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  // ~6% relative quantile error from the bucket width; allow 8% headroom.
  EXPECT_NEAR(h.Quantile(0.50), 500.0, 40.0);
  EXPECT_NEAR(h.Quantile(0.90), 900.0, 72.0);
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 80.0);
  // Quantiles are monotone and clamped to the observed range.
  EXPECT_LE(h.Quantile(0.50), h.Quantile(0.90));
  EXPECT_LE(h.Quantile(0.90), h.Quantile(0.99));
  EXPECT_LE(h.Quantile(0.99), h.Quantile(0.999));
  EXPECT_GE(h.Quantile(0.0), h.min());
  EXPECT_LE(h.Quantile(1.0), h.max());
}

TEST(Histogram, EmptyHistogramIsAllZeros) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0);
  EXPECT_EQ(h.Quantile(0.5), 0);
}

TEST(Histogram, ObserveUniformMatchesDiscreteSampling) {
  // The simulator's O(buckets) uniform spread must agree with O(n) discrete
  // observation of the same distribution -- same mass, same moments, same quantiles
  // up to bucket resolution.
  Histogram spread;
  spread.ObserveUniform(1.0, 3.0, 4000);

  Histogram sampled;
  for (int i = 0; i < 4000; ++i) {
    sampled.Observe(1.0 + 2.0 * (i + 0.5) / 4000.0);
  }

  EXPECT_DOUBLE_EQ(spread.count(), 4000);
  EXPECT_NEAR(spread.sum(), sampled.sum(), 1e-6);
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const double expected = 1.0 + 2.0 * q;
    EXPECT_NEAR(spread.Quantile(q), expected, 0.08 * expected) << "q=" << q;
    EXPECT_NEAR(spread.Quantile(q), sampled.Quantile(q), 0.16) << "q=" << q;
  }
  // Degenerate interval: all mass in one bucket.
  Histogram point;
  point.ObserveUniform(2.0, 2.0, 10);
  EXPECT_DOUBLE_EQ(point.count(), 10);
  EXPECT_NEAR(point.Quantile(0.5), 2.0, 2.0 / Histogram::kSubBuckets);
  // Non-positive count is a no-op.
  Histogram empty;
  empty.ObserveUniform(1.0, 2.0, 0);
  EXPECT_EQ(empty.count(), 0);
}

TEST(Histogram, MergeIsBucketwiseAndPreservesMoments) {
  Histogram a;
  Histogram b;
  for (int i = 1; i <= 100; ++i) {
    a.Observe(static_cast<double>(i));
    b.Observe(static_cast<double>(100 + i));
  }
  Histogram merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_DOUBLE_EQ(merged.count(), 200);
  EXPECT_DOUBLE_EQ(merged.sum(), a.sum() + b.sum());
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), 200.0);
  EXPECT_NEAR(merged.Quantile(0.5), 100.0, 8.0);
  // Merging an empty histogram changes nothing.
  const double before = merged.Quantile(0.9);
  merged.Merge(Histogram{});
  EXPECT_DOUBLE_EQ(merged.count(), 200);
  EXPECT_DOUBLE_EQ(merged.Quantile(0.9), before);
}

// ---------------------------------------------------------------------------------
// Registry: creation, labels, reset-in-place, rendering.
// ---------------------------------------------------------------------------------

TEST(MetricsRegistry, LabelsDistinguishSeries) {
  MetricsRegistry registry;
  registry.GetCounter("requests", {{"lb", "0"}}).Increment(3);
  registry.GetCounter("requests", {{"lb", "1"}}).Increment(5);
  EXPECT_EQ(registry.GetCounter("requests", {{"lb", "0"}}).value(), 3u);
  EXPECT_EQ(registry.GetCounter("requests", {{"lb", "1"}}).value(), 5u);
  EXPECT_TRUE(registry.Has("requests", {{"lb", "0"}}));
  EXPECT_FALSE(registry.Has("requests"));
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistry, ResetZeroesInPlaceAndKeepsReferences) {
  // The registry's contract with instrumentation: Get* references stay valid across
  // Reset(), so hot paths may cache them.
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("events");
  Gauge& g = registry.GetGauge("level");
  Histogram& h = registry.GetHistogram("latency");
  c.Increment(7);
  g.SetValue(2.5);
  h.Observe(1.0);
  registry.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0);
  // Same objects, still wired into the registry.
  EXPECT_EQ(&c, &registry.GetCounter("events"));
  EXPECT_EQ(&g, &registry.GetGauge("level"));
  EXPECT_EQ(&h, &registry.GetHistogram("latency"));
  c.Increment();
  EXPECT_EQ(registry.GetCounter("events").value(), 1u);
}

TEST(MetricsRegistry, TypeConfusionThrows) {
  MetricsRegistry registry;
  registry.GetCounter("x");
  EXPECT_THROW(registry.GetGauge("x"), std::logic_error);
  EXPECT_THROW(registry.GetHistogram("x"), std::logic_error);
}

TEST(MetricsRegistry, RendersPrometheusAndJson) {
  MetricsRegistry registry;
  registry.GetCounter("snoopy_epochs_total").Increment(2);
  registry.GetGauge("snoopy_net_messages", {{"pair", "lb/0->suboram/1/from/0"}}).SetValue(9);
  Histogram& h = registry.GetHistogram("snoopy_epoch_seconds");
  h.Observe(0.25);
  h.Observe(0.75);

  const std::string prom = registry.RenderPrometheus();
  EXPECT_NE(prom.find("# TYPE snoopy_epochs_total counter"), std::string::npos);
  EXPECT_NE(prom.find("snoopy_epochs_total 2"), std::string::npos);
  EXPECT_NE(prom.find("pair=\"lb/0->suboram/1/from/0\""), std::string::npos);
  EXPECT_NE(prom.find("snoopy_epoch_seconds{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(prom.find("snoopy_epoch_seconds_sum 1"), std::string::npos);
  EXPECT_NE(prom.find("snoopy_epoch_seconds_count 2"), std::string::npos);

  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"name\":\"snoopy_epochs_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\",\"value\":2"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\",\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

// ---------------------------------------------------------------------------------
// SpanTimer: virtual time source, record-once, disabled path.
// ---------------------------------------------------------------------------------

TEST(SpanTimer, RecordsElapsedVirtualTimeOnce) {
  Histogram h;
  double now = 10.0;
  int clock_reads = 0;
  const auto now_fn = [&] {
    ++clock_reads;
    return now;
  };
  {
    SpanTimer span(&h, now_fn);
    now = 10.5;
    EXPECT_DOUBLE_EQ(span.Stop(), 0.5);
    now = 99.0;
    EXPECT_DOUBLE_EQ(span.Stop(), 0.0);  // second Stop is a no-op
  }                                      // destructor must not record again
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5);
  EXPECT_EQ(clock_reads, 2);  // construction + first Stop only
}

TEST(SpanTimer, NullHistogramIsANoOpAndNeverReadsTheClock) {
  int clock_reads = 0;
  {
    SpanTimer span(nullptr, [&] {
      ++clock_reads;
      return 1.0;
    });
    EXPECT_DOUBLE_EQ(span.Stop(), 0.0);
  }
  EXPECT_EQ(clock_reads, 0);
}

TEST(SpanTimer, NestedSpansComposeViaLabels) {
  // The epoch/phase convention: a root span plus child spans sharing its lifetime.
  MetricsRegistry registry;
  double now = 0.0;
  const auto now_fn = [&] { return now; };
  {
    SpanTimer epoch(&registry.GetHistogram("epoch_seconds"), now_fn);
    {
      SpanTimer prepare(&registry.GetHistogram("phase_seconds", {{"phase", "prepare"}}),
                        now_fn);
      now += 1.0;
    }
    {
      SpanTimer execute(&registry.GetHistogram("phase_seconds", {{"phase", "execute"}}),
                        now_fn);
      now += 2.0;
    }
  }
  EXPECT_DOUBLE_EQ(registry.GetHistogram("epoch_seconds").sum(), 3.0);
  EXPECT_DOUBLE_EQ(registry.GetHistogram("phase_seconds", {{"phase", "prepare"}}).sum(), 1.0);
  EXPECT_DOUBLE_EQ(registry.GetHistogram("phase_seconds", {{"phase", "execute"}}).sum(), 2.0);
}

// ---------------------------------------------------------------------------------
// Network: per-endpoint-pair breakdown and stats reset.
// ---------------------------------------------------------------------------------

TEST(NetworkStats, PerPairBreakdownSumsToAggregate) {
  Network net;
  net.Register("server", [](std::span<const uint8_t>) {
    return std::vector<uint8_t>(5, 0xab);
  });
  const std::vector<uint8_t> req(16, 1);
  net.Call("alice", "server", req);
  net.Call("alice", "server", req);
  net.Call("bob", "server", req);
  net.RecordRetry("alice", "server");

  const Network::Stats& s = net.stats();
  EXPECT_EQ(s.messages, 3u);
  EXPECT_EQ(s.bytes_sent, 48u);
  EXPECT_EQ(s.bytes_received, 15u);
  EXPECT_EQ(s.retries, 1u);
  ASSERT_EQ(s.per_pair.size(), 2u);
  const Network::PairStats& alice = s.per_pair.at("alice->server");
  const Network::PairStats& bob = s.per_pair.at("bob->server");
  EXPECT_EQ(alice.messages, 2u);
  EXPECT_EQ(alice.bytes_sent, 32u);
  EXPECT_EQ(alice.bytes_received, 10u);
  EXPECT_EQ(alice.retries, 1u);
  EXPECT_EQ(bob.messages, 1u);
  EXPECT_EQ(bob.retries, 0u);
  EXPECT_EQ(alice.messages + bob.messages, s.messages);
  EXPECT_EQ(alice.bytes_sent + bob.bytes_sent, s.bytes_sent);

  // Export publishes both the aggregate and the labeled per-pair series.
  MetricsRegistry registry;
  net.ExportTo(registry);
  EXPECT_DOUBLE_EQ(registry.GetGauge("snoopy_net_messages").value(), 3.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("snoopy_net_pair_messages", {{"pair", "alice->server"}}).value(),
      2.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("snoopy_net_pair_retries", {{"pair", "alice->server"}}).value(), 1.0);
}

TEST(NetworkStats, ResetStatsClearsAggregateAndPerPair) {
  // Regression: ResetStats must wipe the per-pair map, not just the aggregate fields
  // -- stale pairs would otherwise leak into the next measurement window's export.
  Network net;
  net.Register("server", [](std::span<const uint8_t>) { return std::vector<uint8_t>(1, 0); });
  net.Call("alice", "server", std::vector<uint8_t>(8, 1));
  net.RecordRetry("alice", "server");
  net.RecordRecovery();
  ASSERT_FALSE(net.stats().per_pair.empty());

  net.ResetStats();
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_EQ(net.stats().bytes_sent, 0u);
  EXPECT_EQ(net.stats().retries, 0u);
  EXPECT_EQ(net.stats().recoveries, 0u);
  EXPECT_TRUE(net.stats().per_pair.empty());
}

// ---------------------------------------------------------------------------------
// Pipeline instrumentation: clean epochs.
// ---------------------------------------------------------------------------------

std::vector<uint8_t> Val(uint64_t tag) {
  std::vector<uint8_t> v(16, 0);
  std::memcpy(v.data(), &tag, 8);
  return v;
}

TEST(SnoopyTelemetry, CleanEpochRecordsAllSeries) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = 2;
  cfg.num_suborams = 2;
  cfg.value_size = 16;
  cfg.lambda = 40;
  Snoopy store(cfg, 17);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 32; ++k) {
    objects.emplace_back(k, Val(0));
  }
  store.Initialize(objects);

  MetricsRegistry registry;
  store.set_metrics_registry(&registry);
  for (uint64_t i = 0; i < 10; ++i) {
    store.SubmitRead(/*client_id=*/1, /*client_seq=*/i, /*key=*/i % 32);
  }
  store.RunEpoch();
  for (uint64_t i = 0; i < 6; ++i) {
    store.SubmitRead(/*client_id=*/1, /*client_seq=*/100 + i, /*key=*/i);
  }
  store.RunEpoch();

  EXPECT_EQ(registry.GetCounter("snoopy_epochs_total").value(), 2u);
  EXPECT_EQ(registry.GetCounter("snoopy_requests_total").value(), 16u);
  EXPECT_EQ(registry.GetHistogram("snoopy_epoch_seconds").count(), 2);
  for (const char* phase : {"lb_prepare", "suboram_execute", "response_match"}) {
    EXPECT_EQ(
        registry.GetHistogram("snoopy_epoch_phase_seconds", {{"phase", phase}}).count(), 2)
        << phase;
  }
  for (const char* lb : {"0", "1"}) {
    const Histogram& batch = registry.GetHistogram("snoopy_batch_size", {{"lb", lb}});
    EXPECT_EQ(batch.count(), 2) << lb;
    EXPECT_GT(batch.min(), 0.0) << "padded batches are never empty";
  }
  // Clean run: robustness counters stay untouched, network gauges match the stats.
  EXPECT_EQ(registry.GetCounter("snoopy_dedup_hits_total").value(), 0u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("snoopy_net_retries").value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("snoopy_net_messages").value(),
                   static_cast<double>(store.network().stats().messages));
  EXPECT_TRUE(registry.Has("snoopy_net_pair_messages",
                           {{"pair", "lb/0->suboram/1/from/0"}}));
}

TEST(SnoopyTelemetry, NullRegistryDisablesRecordingButNotTheStore) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = 1;
  cfg.num_suborams = 1;
  cfg.value_size = 16;
  cfg.lambda = 40;
  Snoopy store(cfg, 3);
  store.Initialize({{1, Val(5)}, {2, Val(6)}});
  store.set_metrics_registry(nullptr);
  store.SubmitRead(1, 1, 1);
  const std::vector<ClientResponse> responses = store.RunEpoch();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].value, Val(5));
  EXPECT_EQ(store.metrics_registry(), nullptr);
}

// ---------------------------------------------------------------------------------
// Trace identity: telemetry must not move a single enclave trace event.
// ---------------------------------------------------------------------------------

TEST(SnoopyTelemetry, MetricsDoNotPerturbTheEnclaveTrace) {
  // Same seed, same workload; one run records into a registry, the other records
  // nothing. The FULL trace (memory + communication) must be byte-identical: the
  // telemetry layer neither emits trace events nor changes any code path that does.
  auto run = [](bool with_metrics) -> uint64_t {
    SnoopyConfig cfg;
    cfg.num_load_balancers = 2;
    cfg.num_suborams = 2;
    cfg.value_size = 16;
    cfg.lambda = 40;
    cfg.sort_threads = 1;
    Snoopy store(cfg, 29);
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
    for (uint64_t k = 0; k < 16; ++k) {
      objects.emplace_back(k, Val(0));
    }
    store.Initialize(objects);

    MetricsRegistry registry;
    store.set_metrics_registry(with_metrics ? &registry : nullptr);

    Rng rng(71);
    TraceScope scope;
    for (int epoch = 0; epoch < 3; ++epoch) {
      for (int i = 0; i < 8; ++i) {
        const auto lb = static_cast<uint32_t>(rng.Uniform(2));
        const uint64_t key = rng.Uniform(16);
        if (rng.Uniform(2) == 0) {
          store.SubmitWriteWithLb(lb, 1, epoch * 100 + i, key, Val(key + 1));
        } else {
          store.SubmitReadWithLb(lb, 1, epoch * 100 + i, key);
        }
      }
      store.RunEpoch();
    }
    return scope.Digest();
  };

  EXPECT_EQ(run(true), run(false))
      << "recording metrics changed the enclave trace: telemetry is leaking";
}

// ---------------------------------------------------------------------------------
// Chaos reconciliation: counters are an exact function of the fired-decision log.
// ---------------------------------------------------------------------------------

TEST(SnoopyTelemetry, ChaosCountersReconcileWithFiredDecisionLog) {
  // Every robustness metric must be attributable to a specific adversary-caused
  // event. Per fired per-call decision:
  //   kDrop              -> 1 retry, 1 timeout
  //   kCorruptRequest    -> 1 retry                (AEAD open fails at the subORAM)
  //   kCorruptReply      -> 1 retry, 1 dedup hit   (retransmit serves the cached reply)
  //   kDuplicate         -> 1 dedup hit            (second delivery hits the cache)
  //   kCrashBeforeReply  -> 2 retries, 2 timeouts, 1 recovery, 0 dedup hits
  //                         (recovery clears the response cache, so the retried batch
  //                          re-executes instead of double-counting a dedup)
  //   kDelay             -> nothing but virtual time
  // and each epoch-boundary crash poll that hits -> 1 recovery.
  // The equalities below are exact -- any double counting (e.g. a dedup hit surviving
  // a crash recovery, or a retry counted at two layers) breaks them.
  for (const uint64_t seed : {11u, 12u, 13u}) {
    SnoopyConfig cfg;
    cfg.num_load_balancers = 2;
    cfg.num_suborams = 3;
    cfg.value_size = 16;
    cfg.lambda = 40;
    Snoopy store(cfg, seed + 500);
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
    for (uint64_t k = 0; k < 24; ++k) {
      objects.emplace_back(k, Val(0));
    }
    store.Initialize(objects);

    FaultInjector injector(seed);
    FaultProfile chaos;
    chaos.drop = 0.08;
    chaos.duplicate = 0.08;
    chaos.corrupt = 0.06;
    chaos.crash_before_reply = 0.04;
    chaos.delay = 0.05;
    chaos.delay_s = 0.01;
    chaos.crash_at_epoch_start = 0.05;
    injector.set_default_profile(chaos);
    store.set_fault_injector(&injector);

    MetricsRegistry registry;
    store.set_metrics_registry(&registry);

    Rng rng(seed * 13 + 7);
    uint64_t seq = 1;
    for (int epoch = 0; epoch < 10; ++epoch) {
      const size_t n = 1 + rng.Uniform(16);
      for (size_t i = 0; i < n; ++i) {
        const auto lb = static_cast<uint32_t>(rng.Uniform(cfg.num_load_balancers));
        const uint64_t key = rng.Uniform(24);
        if (rng.Uniform(2) == 0) {
          store.SubmitWriteWithLb(lb, lb, seq++, key, Val(key + 1));
        } else {
          store.SubmitReadWithLb(lb, lb, seq++, key);
        }
      }
      store.RunEpoch();
    }

    const uint64_t drops = injector.fired_count(FaultAction::kDrop);
    const uint64_t dups = injector.fired_count(FaultAction::kDuplicate);
    const uint64_t corrupt_req = injector.fired_count(FaultAction::kCorruptRequest);
    const uint64_t corrupt_rep = injector.fired_count(FaultAction::kCorruptReply);
    const uint64_t crashes = injector.fired_count(FaultAction::kCrashBeforeReply);
    const uint64_t delays = injector.fired_count(FaultAction::kDelay);
    const uint64_t epoch_crashes = injector.fired_epoch_crashes();

    // The run must actually have exercised the interesting interactions.
    ASSERT_GT(drops + dups + corrupt_req + corrupt_rep, 0u) << "seed=" << seed;
    ASSERT_GT(crashes + epoch_crashes, 0u) << "seed=" << seed;

    const Network::Stats& stats = store.network().stats();
    EXPECT_EQ(stats.faults_injected, drops + dups + corrupt_req + corrupt_rep + crashes + delays)
        << "seed=" << seed;
    EXPECT_EQ(stats.retries, drops + corrupt_req + corrupt_rep + 2 * crashes)
        << "seed=" << seed;
    EXPECT_EQ(stats.timeouts, drops + 2 * crashes) << "seed=" << seed;
    EXPECT_EQ(stats.recoveries, crashes + epoch_crashes) << "seed=" << seed;
    EXPECT_EQ(registry.GetCounter("snoopy_dedup_hits_total").value(), dups + corrupt_rep)
        << "seed=" << seed;

    // The labeled counters decompose the same totals: summing over endpoints
    // (components) reproduces the aggregates exactly.
    uint64_t retries_by_endpoint = 0;
    uint64_t pair_retries = 0;
    for (uint32_t so = 0; so < cfg.num_suborams; ++so) {
      for (uint32_t lb = 0; lb < cfg.num_load_balancers; ++lb) {
        const std::string endpoint =
            "suboram/" + std::to_string(so) + "/from/" + std::to_string(lb);
        retries_by_endpoint +=
            registry.GetCounter("snoopy_retries_total", {{"endpoint", endpoint}}).value();
        const std::string pair = "lb/" + std::to_string(lb) + "->" + endpoint;
        if (stats.per_pair.count(pair) != 0) {
          pair_retries += stats.per_pair.at(pair).retries;
        }
      }
    }
    EXPECT_EQ(retries_by_endpoint, stats.retries) << "seed=" << seed;
    EXPECT_EQ(pair_retries, stats.retries) << "seed=" << seed;

    uint64_t recoveries_by_component = 0;
    for (uint32_t so = 0; so < cfg.num_suborams; ++so) {
      recoveries_by_component +=
          registry
              .GetCounter("snoopy_recoveries_total",
                          {{"component", "suboram/" + std::to_string(so)}})
              .value();
    }
    for (uint32_t lb = 0; lb < cfg.num_load_balancers; ++lb) {
      recoveries_by_component +=
          registry
              .GetCounter("snoopy_recoveries_total", {{"component", "lb/" + std::to_string(lb)}})
              .value();
    }
    EXPECT_EQ(recoveries_by_component, stats.recoveries) << "seed=" << seed;

    // The fired log itself is consistent: per-call entries name endpoints, epoch-crash
    // entries name components.
    for (const FaultInjector::FiredDecision& d : injector.fired_log()) {
      if (d.epoch_crash) {
        EXPECT_EQ(d.action, FaultAction::kCrashBeforeReply);
        EXPECT_EQ(d.target.find("/from/"), std::string::npos) << d.target;
      } else {
        EXPECT_NE(d.action, FaultAction::kNone);
      }
    }
    EXPECT_EQ(registry.GetCounter("snoopy_epochs_total").value(), 10u) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace snoopy
