#include "src/core/access_control.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>

namespace snoopy {
namespace {

constexpr size_t kValueSize = 32;

std::vector<uint8_t> Val(uint64_t tag) {
  std::vector<uint8_t> v(kValueSize, 0);
  std::memcpy(v.data(), &tag, 8);
  return v;
}

std::unique_ptr<AccessControlledSnoopy> MakeStore() {
  SnoopyConfig data_cfg;
  data_cfg.value_size = kValueSize;
  data_cfg.num_suborams = 2;
  data_cfg.lambda = 40;
  SnoopyConfig acl_cfg;
  acl_cfg.num_suborams = 2;
  acl_cfg.lambda = 40;
  auto store = std::make_unique<AccessControlledSnoopy>(data_cfg, acl_cfg, /*seed=*/77);
  store->Initialize(
      {{1, Val(101)}, {2, Val(102)}, {3, Val(103)}},
      {
          {/*user=*/10, /*object=*/1, kOpRead, true},
          {10, 1, kOpWrite, true},
          {10, 2, kOpRead, true},   // read-only on object 2
          {20, 3, kOpRead, true},   // user 20 can only read object 3
      });
  return store;
}

std::map<uint64_t, std::vector<uint8_t>> BySeq(const std::vector<ClientResponse>& resps) {
  std::map<uint64_t, std::vector<uint8_t>> m;
  for (const ClientResponse& r : resps) {
    m[r.client_seq] = r.value;
  }
  return m;
}

TEST(AccessControl, GrantedReadsSucceed) {
  auto store = MakeStore();
  store->SubmitRead(10, 1, 1);
  store->SubmitRead(10, 2, 2);
  store->SubmitRead(20, 3, 3);
  auto resp = BySeq(store->RunEpoch());
  EXPECT_EQ(resp[1], Val(101));
  EXPECT_EQ(resp[2], Val(102));
  EXPECT_EQ(resp[3], Val(103));
}

TEST(AccessControl, DeniedReadReturnsNull) {
  auto store = MakeStore();
  store->SubmitRead(20, 1, 1);  // user 20 has no rule for object 1
  store->SubmitRead(99, 2, 2);  // unknown user: deny by default
  auto resp = BySeq(store->RunEpoch());
  EXPECT_EQ(resp[1], std::vector<uint8_t>(kValueSize, 0));
  EXPECT_EQ(resp[2], std::vector<uint8_t>(kValueSize, 0));
}

TEST(AccessControl, DeniedWriteDoesNotChangeState) {
  auto store = MakeStore();
  store->SubmitWrite(10, 1, 2, Val(999));  // user 10 is read-only on object 2
  store->RunEpoch();
  store->SubmitRead(10, 2, 2);
  auto resp = BySeq(store->RunEpoch());
  EXPECT_EQ(resp[2], Val(102)) << "denied write must leave the object untouched";
}

TEST(AccessControl, GrantedWritePersists) {
  auto store = MakeStore();
  store->SubmitWrite(10, 1, 1, Val(555));
  store->RunEpoch();
  store->SubmitRead(10, 2, 1);
  auto resp = BySeq(store->RunEpoch());
  EXPECT_EQ(resp[2], Val(555));
}

TEST(AccessControl, MixedEpochIsolatesVerdicts) {
  auto store = MakeStore();
  store->SubmitWrite(10, 1, 1, Val(700));   // allowed
  store->SubmitWrite(10, 2, 2, Val(701));   // denied (read-only)
  store->SubmitRead(20, 3, 3);              // allowed
  store->SubmitRead(20, 4, 1);              // denied
  auto resp = BySeq(store->RunEpoch());
  EXPECT_EQ(resp[3], Val(103));
  EXPECT_EQ(resp[4], std::vector<uint8_t>(kValueSize, 0));
  store->SubmitRead(10, 5, 1);
  store->SubmitRead(10, 6, 2);
  auto resp2 = BySeq(store->RunEpoch());
  EXPECT_EQ(resp2[5], Val(700));
  EXPECT_EQ(resp2[6], Val(102));
}

TEST(AccessControl, DeniedWriteDoesNotShadowGrantedWriteOnSameKey) {
  auto store = MakeStore();
  // User 10 (granted) writes object 1 with seq 1; user 20 (denied) "writes" the same
  // object with a higher seq in the same epoch. The denied write is a no-op and must
  // not suppress the granted one during last-write-wins aggregation.
  store->SubmitWrite(10, 1, 1, Val(800));
  store->SubmitWrite(20, 2, 1, Val(666));
  store->RunEpoch();
  store->SubmitRead(10, 3, 1);
  auto resp = BySeq(store->RunEpoch());
  EXPECT_EQ(resp[3], Val(800));
}

}  // namespace
}  // namespace snoopy
