#include "src/obl/bitonic_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/crypto/rng.h"
#include "src/enclave/trace.h"
#include "src/obl/primitives.h"

namespace snoopy {
namespace {

struct Rec {
  uint64_t key;
  uint64_t payload;
};

SecretBool RecLess(const Rec& a, const Rec& b) { return SecretU64(a.key) < SecretU64(b.key); }

class BitonicSortSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(BitonicSortSizes, SortsRandomInput) {
  const size_t n = GetParam();
  Rng rng(n * 31 + 1);
  std::vector<Rec> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = Rec{rng.Uniform(1 + n / 2), i};  // duplicates likely
  }
  std::vector<uint64_t> expected;
  for (const Rec& r : data) {
    expected.push_back(r.key);
  }
  std::sort(expected.begin(), expected.end());

  BitonicSort(std::span<Rec>(data), RecLess);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(data[i].key, expected[i]) << "n=" << n << " i=" << i;
  }
  // Payloads must still be a permutation of 0..n-1 (records move as units).
  std::vector<uint64_t> payloads;
  for (const Rec& r : data) {
    payloads.push_back(r.payload);
  }
  std::sort(payloads.begin(), payloads.end());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(payloads[i], i);
  }
}

INSTANTIATE_TEST_SUITE_P(ArbitrarySizes, BitonicSortSizes,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64,
                                           100, 127, 128, 129, 255, 500, 1000, 1024, 1025));

TEST(BitonicSort, AlreadySortedAndReversed) {
  for (const bool reversed : {false, true}) {
    std::vector<Rec> data(200);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i].key = reversed ? data.size() - i : i;
    }
    BitonicSort(std::span<Rec>(data), RecLess);
    for (size_t i = 1; i < data.size(); ++i) {
      ASSERT_LE(data[i - 1].key, data[i].key);
    }
  }
}

TEST(BitonicSort, MultithreadedMatchesSequential) {
  Rng rng(99);
  std::vector<Rec> a(777);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = Rec{rng.Next64(), i};
  }
  std::vector<Rec> b = a;
  BitonicSort(std::span<Rec>(a), RecLess, 1);
  BitonicSort(std::span<Rec>(b), RecLess, 3);
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].key, b[i].key);
  }
}

TEST(BitonicSort, SlabVariantSortsRuntimeSizedRecords) {
  const size_t n = 300;
  const size_t stride = 48;
  ByteSlab slab(n, stride);
  Rng rng(4);
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = rng.Uniform(1000);
    std::memcpy(slab.Record(i), &keys[i], 8);
    std::memset(slab.Record(i) + 8, static_cast<int>(i & 0xff), stride - 8);
  }
  BitonicSortSlab(slab, [](const uint8_t* a, const uint8_t* b) {
    return LoadSecretU64(a, 0) < LoadSecretU64(b, 0);
  });
  std::sort(keys.begin(), keys.end());
  for (size_t i = 0; i < n; ++i) {
    uint64_t k;
    std::memcpy(&k, slab.Record(i), 8);
    ASSERT_EQ(k, keys[i]);
  }
}

TEST(BitonicSort, NetworkShapeIsDataIndependent) {
  // Core obliviousness property: the compare-swap sequence depends only on n.
  auto trace_for = [](uint64_t seed) {
    Rng rng(seed);
    std::vector<Rec> data(173);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = Rec{rng.Next64(), i};
    }
    TraceScope scope;
    BitonicSort(std::span<Rec>(data), RecLess);
    return scope.Digest();
  };
  EXPECT_EQ(trace_for(1), trace_for(2));
  EXPECT_EQ(trace_for(2), trace_for(999));
}

TEST(BitonicSort, ParallelTraceIsByteIdenticalToSequential) {
  // Regression for the parallel-sort trace race: recursion halves used to push their
  // cswap events into the shared recorder concurrently (a data race, and a scrambled
  // event order). Each half now buffers thread-locally and the parent appends the
  // buffers in recursion order, so the merged trace must be byte-for-byte the
  // sequential one -- not a permutation of it, and not empty. Under TSan (tools/ci.sh)
  // this test also pins the absence of the concurrent push_back.
  auto trace_for = [](int threads) {
    Rng rng(41);
    std::vector<Rec> data(333);  // non-power-of-two: exercises the uneven split
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = Rec{rng.Next64(), i};
    }
    TraceScope scope;
    BitonicSort(std::span<Rec>(data), RecLess, threads);
    return scope.Events();
  };
  const std::vector<TraceEvent> sequential = trace_for(1);
  for (const int threads : {2, 3, 8}) {
    EXPECT_TRUE(NonVacuousTraceEq(sequential, trace_for(threads)))
        << "threads=" << threads;
  }
}

TEST(BitonicSort, SlabParallelTraceIsByteIdenticalToSequential) {
  // Same property through BitonicSortSlab, the fig13a path that exposed the race.
  auto trace_for = [](int threads) {
    const size_t stride = 24;
    ByteSlab slab(200, stride);
    Rng rng(6);
    for (size_t i = 0; i < slab.size(); ++i) {
      const uint64_t key = rng.Next64();
      std::memcpy(slab.Record(i), &key, 8);
    }
    TraceScope scope;
    BitonicSortSlab(
        slab,
        [](const uint8_t* a, const uint8_t* b) {
          return LoadSecretU64(a, 0) < LoadSecretU64(b, 0);
        },
        threads);
    return scope.Events();
  };
  EXPECT_TRUE(NonVacuousTraceEq(trace_for(1), trace_for(3)));
}

TEST(AdaptiveSortThreads, SmallInputsStaySequential) {
  EXPECT_EQ(AdaptiveSortThreads(100, 4), 1);
  EXPECT_EQ(AdaptiveSortThreads(1u << 20, 1), 1);
  EXPECT_GE(AdaptiveSortThreads(1u << 20, 4), 1);
}

}  // namespace
}  // namespace snoopy
