#include "src/enclave/rollback.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/core/suboram.h"
#include "src/crypto/rng.h"

namespace snoopy {
namespace {

Aead::Key TestKey() {
  Aead::Key key{};
  Rng rng(1);
  rng.Fill(key.data(), key.size());
  return key;
}

TEST(MonotonicCounterService, StrictlyIncreases) {
  MonotonicCounterService svc;
  const uint64_t a = svc.Create();
  const uint64_t b = svc.Create();
  EXPECT_EQ(svc.Read(a), 0u);
  EXPECT_EQ(svc.Increment(a), 1u);
  EXPECT_EQ(svc.Increment(a), 2u);
  EXPECT_EQ(svc.Read(b), 0u) << "counters are independent";
  EXPECT_THROW(svc.Read(99), std::out_of_range);
}

TEST(SealedStore, FreshSnapshotRoundTrips) {
  MonotonicCounterService svc;
  SealedStore store(TestKey(), &svc);
  const uint64_t ctr = svc.Create();
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> blob = store.Seal(ctr, payload);
  std::vector<uint8_t> out;
  EXPECT_EQ(store.Unseal(ctr, blob, &out), UnsealStatus::kOk);
  EXPECT_EQ(out, payload);
}

TEST(SealedStore, DetectsRollback) {
  MonotonicCounterService svc;
  SealedStore store(TestKey(), &svc);
  const uint64_t ctr = svc.Create();
  const std::vector<uint8_t> v1 = {1};
  const std::vector<uint8_t> v2 = {2};
  const std::vector<uint8_t> blob_v1 = store.Seal(ctr, v1);
  const std::vector<uint8_t> blob_v2 = store.Seal(ctr, v2);
  std::vector<uint8_t> out;
  // The host replays the older snapshot: authentic, but superseded.
  EXPECT_EQ(store.Unseal(ctr, blob_v1, &out), UnsealStatus::kRollback);
  EXPECT_EQ(store.Unseal(ctr, blob_v2, &out), UnsealStatus::kOk);
  EXPECT_EQ(out, v2);
}

TEST(SealedStore, DetectsTampering) {
  MonotonicCounterService svc;
  SealedStore store(TestKey(), &svc);
  const uint64_t ctr = svc.Create();
  std::vector<uint8_t> blob = store.Seal(ctr, std::vector<uint8_t>{9, 9});
  blob[blob.size() - 1] ^= 1;
  EXPECT_EQ(store.Unseal(ctr, blob, nullptr), UnsealStatus::kCorrupt);
  // Re-labelling the version field also fails authentication (version is AAD).
  std::vector<uint8_t> blob2 = store.Seal(ctr, std::vector<uint8_t>{9, 9});
  blob2[0] ^= 1;
  EXPECT_EQ(store.Unseal(ctr, blob2, nullptr), UnsealStatus::kCorrupt);
  EXPECT_EQ(store.Unseal(ctr, std::vector<uint8_t>{1, 2}, nullptr), UnsealStatus::kCorrupt);
}

TEST(SubOramRollback, SealRestoreRoundTripAndReplayDetection) {
  SubOramConfig cfg;
  cfg.value_size = 16;
  cfg.lambda = 40;
  SubOram suboram(cfg, 5);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 20; ++k) {
    objects.emplace_back(k, std::vector<uint8_t>(16, static_cast<uint8_t>(k)));
  }
  suboram.Initialize(objects);

  MonotonicCounterService svc;
  SealedStore sealed(TestKey(), &svc);
  const uint64_t ctr = svc.Create();

  // Epoch 1 snapshot.
  const std::vector<uint8_t> snap1 = suboram.SealState(sealed, ctr);

  // Mutate state (a write batch) and snapshot again.
  RequestBatch batch(16);
  RequestHeader h;
  h.key = 3;
  h.op = kOpWrite;
  batch.Append(h, std::vector<uint8_t>(16, 0xEE));
  suboram.ProcessBatch(std::move(batch));
  const std::vector<uint8_t> snap2 = suboram.SealState(sealed, ctr);

  // Restart: restoring the stale snapshot must be refused...
  SubOram recovered(cfg, 6);
  EXPECT_EQ(recovered.RestoreState(sealed, ctr, snap1), UnsealStatus::kRollback);
  // ...and the fresh one accepted, with the write intact.
  ASSERT_EQ(recovered.RestoreState(sealed, ctr, snap2), UnsealStatus::kOk);
  std::vector<uint8_t> v;
  ASSERT_TRUE(recovered.DebugRead(3, &v));
  EXPECT_EQ(v, std::vector<uint8_t>(16, 0xEE));
}

}  // namespace
}  // namespace snoopy
