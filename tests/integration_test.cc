// Cross-module integration sweeps: full Snoopy deployments across a grid of value
// sizes, security parameters, and topologies, driven by the workload generators, and
// checked against a reference map. These are the "does the whole pipeline hold
// together" tests; component behaviour is covered by the per-module suites.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "src/core/snoopy.h"
#include "src/sim/workload.h"

namespace snoopy {
namespace {

struct GridParam {
  size_t value_size;
  uint32_t lambda;
  uint32_t lbs;
  uint32_t sos;
  bool oblivious_init;
};

class SnoopyGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(SnoopyGrid, MultiEpochWorkloadMatchesReference) {
  const GridParam p = GetParam();
  SnoopyConfig cfg;
  cfg.num_load_balancers = p.lbs;
  cfg.num_suborams = p.sos;
  cfg.value_size = p.value_size;
  cfg.lambda = p.lambda;
  cfg.oblivious_init = p.oblivious_init;
  auto store = std::make_unique<Snoopy>(cfg, 99);

  constexpr uint64_t kKeys = 120;
  auto value_of = [&](uint64_t key, uint8_t version) {
    std::vector<uint8_t> v(p.value_size, 0);
    std::memcpy(v.data(), &key, 8);
    v[p.value_size - 1] = version;
    return v;
  };
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  std::map<uint64_t, std::vector<uint8_t>> model;
  for (uint64_t k = 0; k < kKeys; ++k) {
    objects.emplace_back(k, value_of(k, 0));
    model[k] = value_of(k, 0);
  }
  store->Initialize(objects);

  WorkloadGenerator gen(kKeys, /*write_fraction=*/0.3, /*seed=*/p.lambda + p.sos);
  uint64_t seq = 0;
  for (int epoch = 1; epoch <= 4; ++epoch) {
    // One request per distinct key per epoch keeps the reference model exact even
    // with multiple load balancers.
    std::map<uint64_t, uint64_t> submitted;  // key -> seq
    std::map<uint64_t, std::vector<uint8_t>> writes;
    for (const WorkloadRequest& req : gen.Zipfian(40, 0.9)) {
      if (submitted.count(req.key) != 0) {
        continue;
      }
      submitted[req.key] = seq;
      if (req.is_write) {
        auto nv = value_of(req.key, static_cast<uint8_t>(epoch));
        store->SubmitWrite(1, seq, req.key, nv);
        writes[req.key] = nv;
      } else {
        store->SubmitRead(1, seq, req.key);
      }
      ++seq;
    }
    std::map<uint64_t, std::vector<uint8_t>> responses;
    for (const ClientResponse& resp : store->RunEpoch()) {
      responses[resp.client_seq] = resp.value;
    }
    ASSERT_EQ(responses.size(), submitted.size());
    for (const auto& [key, s] : submitted) {
      const bool pre = responses[s] == model[key];
      const bool post = writes.count(key) != 0 && responses[s] == writes[key];
      ASSERT_TRUE(pre || post) << "epoch " << epoch << " key " << key;
    }
    for (auto& [key, nv] : writes) {
      model[key] = nv;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, SnoopyGrid,
    ::testing::Values(GridParam{16, 40, 1, 1, false}, GridParam{16, 40, 2, 3, false},
                      GridParam{160, 40, 1, 2, false}, GridParam{16, 128, 1, 2, false},
                      GridParam{16, 40, 2, 2, true}, GridParam{64, 80, 3, 3, false}));

}  // namespace
}  // namespace snoopy
