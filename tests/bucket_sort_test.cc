// Differential and obliviousness tests for the bucket oblivious sort strategy
// (src/obl/bucket_sort.{h,cc}) and the common ObliviousSortSlab entry point:
//
//   1. Differential fuzz: bucket vs bitonic vs a plain reference sort over random,
//      adversarial (pre-sorted / reversed / single-bin), and duplicate-heavy keys,
//      at sizes straddling the kMinBucketRecords knee and misaligned slab strides.
//      With distinct (bin, key) pairs the two strategies must be BYTE-identical;
//      with duplicates they must both be correct (sorted + same record multiset).
//   2. Geometry/crossover unit checks for ChooseBucketParams / ResolveSortStrategy.
//   3. Trace identity: for each strategy, the enclave memory trace is byte-identical
//      at sort threads {1, 2, 4}; and a full deployment's epoch trace is identical
//      at epoch_threads {1, 2, 4} for a fixed strategy.
//   4. Twin deployments running the same request stream under kBitonic and kBucket
//      return identical response streams (strategy independence, ISSUE acceptance).
//   5. Overflow fallback: labels that violate the simulatable-bins attestation make
//      the routing overflow; release builds fall back to the bitonic network on the
//      untouched slab and still return fully sorted output.

#include "src/obl/bucket_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/reshard.h"
#include "src/core/snoopy.h"
#include "src/crypto/rng.h"
#include "src/enclave/trace.h"
#include "src/obl/slab.h"

namespace snoopy {
namespace {

// Record layout used throughout: bin u32 at 0, key u64 at 4 (misaligned on
// purpose), payload filler to the stride.
constexpr size_t kBinOff = 0;
constexpr size_t kKeyOff = 4;

struct RefRec {
  uint32_t bin;
  uint64_t key;
  std::vector<uint8_t> bytes;
};

uint32_t BinOf(const uint8_t* rec) {
  uint32_t b;
  std::memcpy(&b, rec + kBinOff, 4);
  return b;
}

uint64_t KeyOf(const uint8_t* rec) {
  uint64_t k;
  std::memcpy(&k, rec + kKeyOff, 8);
  return k;
}

SecretBool KeyLess(const uint8_t* a, const uint8_t* b) {
  return LoadSecretU64(a, kKeyOff) < LoadSecretU64(b, kKeyOff);
}

enum class KeyShape { kRandom, kPresorted, kReversed, kDuplicateHeavy, kSingleBin };

ByteSlab MakeSlab(size_t n, size_t stride, uint64_t num_bins, KeyShape shape,
                  uint64_t seed) {
  ByteSlab slab(n, stride);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    uint8_t* rec = slab.Record(i);
    for (size_t off = 0; off < stride; ++off) {
      rec[off] = static_cast<uint8_t>(rng.Next64());
    }
    uint64_t key;
    uint32_t bin;
    switch (shape) {
      case KeyShape::kPresorted:
        key = i;
        bin = static_cast<uint32_t>((i * num_bins) / (n == 0 ? 1 : n));
        break;
      case KeyShape::kReversed:
        key = n - i;
        bin = static_cast<uint32_t>(((n - 1 - i) * num_bins) / (n == 0 ? 1 : n));
        break;
      case KeyShape::kDuplicateHeavy:
        key = rng.Uniform(1 + n / 8);
        bin = static_cast<uint32_t>(rng.Uniform(num_bins));
        break;
      case KeyShape::kSingleBin:
        key = rng.Next64();
        bin = 0;
        break;
      case KeyShape::kRandom:
      default:
        // Distinct keys with overwhelming probability; bins iid uniform -- the
        // simulatable-bins shape every eligible call site has.
        key = rng.Next64();
        bin = static_cast<uint32_t>(rng.Uniform(num_bins));
        break;
    }
    std::memcpy(rec + kBinOff, &bin, 4);
    std::memcpy(rec + kKeyOff, &key, 8);
  }
  return slab;
}

SortBinSpec SpecFor(uint64_t num_bins) {
  SortBinSpec spec;
  spec.bin_offset = kBinOff;
  spec.num_bins = num_bins;
  spec.bins_simulatable = true;
  spec.lambda = 40;
  return spec;
}

void SortWith(ByteSlab& slab, uint64_t num_bins, SortStrategy strategy, int threads) {
  ObliviousSortSlab(slab, SpecFor(num_bins), KeyLess, strategy, threads);
}

// Reference: stable sort of full-record byte strings under (bin, key). Stable so
// equal (bin, key) duplicates keep a canonical order for multiset comparison.
std::vector<RefRec> ReferenceSort(const ByteSlab& slab) {
  std::vector<RefRec> ref;
  ref.reserve(slab.size());
  for (size_t i = 0; i < slab.size(); ++i) {
    const uint8_t* rec = slab.Record(i);
    ref.push_back(RefRec{BinOf(rec), KeyOf(rec),
                         std::vector<uint8_t>(rec, rec + slab.record_bytes())});
  }
  std::stable_sort(ref.begin(), ref.end(), [](const RefRec& a, const RefRec& b) {
    if (a.bin != b.bin) return a.bin < b.bin;
    if (a.key != b.key) return a.key < b.key;
    return a.bytes < b.bytes;  // totalize for multiset comparison only
  });
  return ref;
}

void ExpectSortedAndSamePopulation(const ByteSlab& input, const ByteSlab& sorted) {
  ASSERT_EQ(input.size(), sorted.size());
  for (size_t i = 1; i < sorted.size(); ++i) {
    const uint8_t* prev = sorted.Record(i - 1);
    const uint8_t* cur = sorted.Record(i);
    ASSERT_TRUE(BinOf(prev) < BinOf(cur) ||
                (BinOf(prev) == BinOf(cur) && KeyOf(prev) <= KeyOf(cur)))
        << "order violated at i=" << i;
  }
  // Same record multiset, byte-for-byte.
  const std::vector<RefRec> want = ReferenceSort(input);
  const std::vector<RefRec> got = ReferenceSort(sorted);
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i].bytes, got[i].bytes) << "record multiset differs at i=" << i;
  }
}

TEST(BucketSortGeometry, ChoosesViableParamsAboveTheKnee) {
  const BucketSortParams p = ChooseBucketParams(1u << 16, 256, 40);
  ASSERT_TRUE(p.ok);
  EXPECT_GE(p.buckets, 2u);
  EXPECT_EQ(p.buckets, uint64_t{1} << p.levels);
  EXPECT_GE(p.capacity, 2 * ((uint64_t{1} << 16) / p.buckets));
  // Below the knee: never viable (arena setup dominates).
  EXPECT_FALSE(ChooseBucketParams(1024, 64, 40).ok);
  EXPECT_FALSE(ChooseBucketParams(1u << 16, 1, 40).ok);
}

TEST(BucketSortGeometry, ResolveHonorsEligibilityGates) {
  const SortBinSpec spec = SpecFor(64);
  BucketSortParams params;
  // Forced bucket with viable geometry resolves to bucket.
  EXPECT_EQ(ResolveSortStrategy(SortStrategy::kBucket, 1u << 14, 24, &spec, &params),
            SortStrategy::kBucket);
  EXPECT_TRUE(params.ok);
  // No spec, non-simulatable bins, or tiny n always resolve to bitonic.
  EXPECT_EQ(ResolveSortStrategy(SortStrategy::kBucket, 1u << 14, 24, nullptr, nullptr),
            SortStrategy::kBitonic);
  SortBinSpec leaky = spec;
  leaky.bins_simulatable = false;
  EXPECT_EQ(ResolveSortStrategy(SortStrategy::kBucket, 1u << 14, 24, &leaky, nullptr),
            SortStrategy::kBitonic);
  EXPECT_EQ(ResolveSortStrategy(SortStrategy::kBucket, 100, 24, &spec, nullptr),
            SortStrategy::kBitonic);
  // The packed scalar ABI agrees with the struct ABI.
  const uint64_t packed = ResolveSortStrategyPacked(
      static_cast<uint8_t>(SortStrategy::kBucket), 1u << 14, 24, 64, 1, 40);
  ASSERT_EQ(packed & 1u, 1u);
  EXPECT_EQ(uint64_t{1} << ((packed >> 1) & 0x3f), params.buckets);
  EXPECT_EQ(packed >> 8, params.capacity);
}

TEST(BucketSortGeometry, AutoPicksBucketAtLargeNAndBitonicWhenRoutingCannotPay) {
  // This test pins the *pure* kAuto crossover; neutralize the process-wide
  // SNOOPY_SORT_STRATEGY override (CI reruns the whole suite with it set to
  // bucket, which legitimately flips the few-bins case below).
  const char* forced = getenv("SNOOPY_SORT_STRATEGY");
  const std::string saved = forced ? forced : "";
  ASSERT_EQ(unsetenv("SNOOPY_SORT_STRATEGY"), 0);
  const SortBinSpec spec = SpecFor(1u << 10);
  // At 2^20 the pass model puts bucket far ahead of even the blocked bitonic.
  EXPECT_EQ(ResolveSortStrategy(SortStrategy::kAuto, 1u << 20, 24, &spec, nullptr),
            SortStrategy::kBucket);
  // Below the knee the eligibility gate alone keeps bitonic.
  EXPECT_EQ(ResolveSortStrategy(SortStrategy::kAuto, 2048, 24, &spec, nullptr),
            SortStrategy::kBitonic);
  // Few bins => at most a couple of butterfly levels and huge per-bucket cleanup
  // sorts: the crossover model (with its safety margin) keeps bitonic even though
  // the geometry is viable.
  const SortBinSpec few_bins = SpecFor(4);
  EXPECT_EQ(ResolveSortStrategy(SortStrategy::kAuto, 4096, 24, &few_bins, nullptr),
            SortStrategy::kBitonic);
  if (forced != nullptr) {
    ASSERT_EQ(setenv("SNOOPY_SORT_STRATEGY", saved.c_str(), 1), 0);
  }
}

class BucketSortDifferential
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(BucketSortDifferential, MatchesBitonicAndReference) {
  const size_t n = std::get<0>(GetParam());
  const size_t stride = std::get<1>(GetParam());
  const uint64_t num_bins = 64;
  for (const KeyShape shape :
       {KeyShape::kRandom, KeyShape::kPresorted, KeyShape::kReversed,
        KeyShape::kDuplicateHeavy, KeyShape::kSingleBin}) {
    const uint64_t seed = n * 131 + stride * 7 + static_cast<uint64_t>(shape);
    const ByteSlab input = MakeSlab(n, stride, num_bins, shape, seed);

    ByteSlab bitonic = input;
    SortWith(bitonic, num_bins, SortStrategy::kBitonic, 1);
    ByteSlab bucket = input;
    SortWith(bucket, num_bins, SortStrategy::kBucket, 1);

    ExpectSortedAndSamePopulation(input, bitonic);
    ExpectSortedAndSamePopulation(input, bucket);

    // Distinct (bin, key) pairs make the order total: both strategies must emit
    // identical bytes (the strategy-independence acceptance criterion). Duplicate
    // shapes only promise equal multisets, checked above.
    if (shape != KeyShape::kDuplicateHeavy) {
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(std::memcmp(bitonic.Record(i), bucket.Record(i), stride), 0)
            << "strategy outputs diverge: shape=" << static_cast<int>(shape)
            << " n=" << n << " stride=" << stride << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndStrides, BucketSortDifferential,
    ::testing::Combine(
        // Straddles the kMinBucketRecords = 4096 knee: below it the bucket request
        // silently falls back to bitonic (still must be correct); at and above it
        // the butterfly actually routes.
        ::testing::Values(0, 1, 2, 17, 1023, 4095, 4096, 5000, 8192),
        // Misaligned strides: the key at offset 4 is never 8-aligned, and 17/49
        // make every record boundary odd.
        ::testing::Values(17, 24, 49, 208)));

TEST(BucketSort, MultithreadedMatchesSequentialOutput) {
  const uint64_t num_bins = 128;
  const ByteSlab input = MakeSlab(8192, 24, num_bins, KeyShape::kRandom, 5);
  ByteSlab seq = input;
  SortWith(seq, num_bins, SortStrategy::kBucket, 1);
  for (const int threads : {2, 4}) {
    ByteSlab par = input;
    SortWith(par, num_bins, SortStrategy::kBucket, threads);
    for (size_t i = 0; i < par.size(); ++i) {
      ASSERT_EQ(std::memcmp(seq.Record(i), par.Record(i), par.record_bytes()), 0)
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(BucketSort, TraceIsByteIdenticalAcrossThreadCountsPerStrategy) {
  // ISSUE acceptance: for a fixed strategy the enclave trace must be byte-identical
  // at any thread count. The bucket trace includes the per-record kDeclassify
  // stream, per-pair kBucketScan events (ascending pair order via the fork-join
  // buffer merge), the cleanup kCondSwap stream, and the emission kAppends.
  for (const SortStrategy strategy : {SortStrategy::kBitonic, SortStrategy::kBucket}) {
    auto trace_for = [&](int threads) {
      ByteSlab slab = MakeSlab(8192, 24, 64, KeyShape::kRandom, 17);
      TraceScope scope;
      SortWith(slab, 64, strategy, threads);
      return scope.Events();
    };
    const std::vector<TraceEvent> sequential = trace_for(1);
    for (const int threads : {2, 4}) {
      EXPECT_TRUE(NonVacuousTraceEq(sequential, trace_for(threads)))
          << "strategy=" << SortStrategyName(strategy) << " threads=" << threads;
    }
  }
}

TEST(BucketSort, TraceShapeIsDataIndependentGivenLabels) {
  // With the same (public) label multiset but different record contents and
  // orders, the full memory trace digest must not change: nothing but the
  // declassified labels steers the access pattern.
  auto digest_for = [](uint64_t seed) {
    // Same per-bin histogram regardless of seed: bin = i % 64 before shuffling
    // record order with the seeded rng.
    const size_t n = 8192;
    ByteSlab slab = MakeSlab(n, 24, 64, KeyShape::kRandom, seed);
    std::vector<uint32_t> bins(n);
    for (size_t i = 0; i < n; ++i) {
      bins[i] = static_cast<uint32_t>(i % 64);
    }
    Rng rng(seed * 3 + 1);
    for (size_t i = n - 1; i > 0; --i) {
      std::swap(bins[i], bins[rng.Uniform(i + 1)]);
    }
    for (size_t i = 0; i < n; ++i) {
      std::memcpy(slab.Record(i) + kBinOff, &bins[i], 4);
    }
    TraceScope scope;
    SortWith(slab, 64, SortStrategy::kBucket, 1);
    return MemoryTraceDigest(scope.Events());
  };
  EXPECT_EQ(digest_for(1), digest_for(2));
  EXPECT_EQ(digest_for(2), digest_for(99));
}

#ifdef NDEBUG
TEST(BucketSort, RouteOverflowFallsBackToBitonic) {
  // Every record in bin 0 violates the simulatable-bins attestation: the butterfly
  // cannot spread the load and a bucket overflows during routing (debug builds
  // treat this as fatal; release builds surface the public fallback). The entry
  // point must still return fully sorted output via the bitonic network.
  const uint64_t num_bins = 64;
  const ByteSlab input = MakeSlab(8192, 24, num_bins, KeyShape::kSingleBin, 23);
  ByteSlab sorted = input;
  SortWith(sorted, num_bins, SortStrategy::kBucket, 1);
  ExpectSortedAndSamePopulation(input, sorted);
  ByteSlab bitonic = input;
  SortWith(bitonic, num_bins, SortStrategy::kBitonic, 1);
  for (size_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(std::memcmp(sorted.Record(i), bitonic.Record(i), sorted.record_bytes()), 0)
        << i;
  }
}
#endif  // NDEBUG

TEST(BucketSort, ReshardPartitionsAreStrategyIndependent) {
  // PartitionSlabByBin routed through the bucket strategy must produce exactly the
  // partitions the bitonic path produces: same sizes, same bytes.
  ByteSlab records(6000, 8 + 16);
  Rng rng(29);
  for (size_t i = 0; i < records.size(); ++i) {
    uint8_t* rec = records.Record(i);
    const uint64_t key = i * 0x9e3779b97f4a7c15ull + 1;  // distinct keys
    std::memcpy(rec, &key, 8);
    for (size_t off = 8; off < records.record_bytes(); ++off) {
      rec[off] = static_cast<uint8_t>(rng.Next64());
    }
  }
  SipKey pkey{};
  for (size_t i = 0; i < pkey.size(); ++i) {
    pkey[i] = static_cast<uint8_t>(i * 11 + 3);
  }
  const std::vector<ByteSlab> bitonic = PartitionSlabByBin(
      records, pkey, 16, 16, 1, SortStrategy::kBitonic, 40);
  const std::vector<ByteSlab> bucket = PartitionSlabByBin(
      records, pkey, 16, 16, 1, SortStrategy::kBucket, 40);
  ASSERT_EQ(bitonic.size(), bucket.size());
  for (size_t p = 0; p < bitonic.size(); ++p) {
    ASSERT_EQ(bitonic[p].size(), bucket[p].size()) << "partition " << p;
    for (size_t i = 0; i < bitonic[p].size(); ++i) {
      ASSERT_EQ(std::memcmp(bitonic[p].Record(i), bucket[p].Record(i),
                            bitonic[p].record_bytes()),
                0)
          << "partition " << p << " record " << i;
    }
  }
}

// ---- Twin deployments: full stores under each strategy ----

std::vector<uint8_t> Val(uint64_t tag, size_t value_size) {
  std::vector<uint8_t> v(value_size, 0);
  std::memcpy(v.data(), &tag, 8);
  return v;
}

uint64_t TagOf(const std::vector<uint8_t>& v) {
  uint64_t t = 0;
  std::memcpy(&t, v.data(), 8);
  return t;
}

// Enough objects that the subORAM build sorts cross the kMinBucketRecords knee and
// the bucket butterfly genuinely runs inside the deployment.
constexpr uint64_t kTwinObjects = 6000;
constexpr size_t kTwinValueSize = 16;

std::vector<std::pair<uint64_t, uint64_t>> RunTwin(SortStrategy strategy,
                                                   int epoch_threads,
                                                   uint64_t* trace_digest) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = 1;
  cfg.num_suborams = 1;
  cfg.value_size = kTwinValueSize;
  cfg.lambda = 40;
  cfg.sort_threads = 1;
  cfg.sort_strategy = strategy;
  cfg.epoch_threads = epoch_threads;
  Snoopy store(cfg, 83);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  objects.reserve(kTwinObjects);
  for (uint64_t k = 0; k < kTwinObjects; ++k) {
    objects.emplace_back(k, Val(k + 1, kTwinValueSize));
  }
  store.Initialize(objects);

  Rng rng(59);
  uint64_t seq = 1;
  std::vector<std::pair<uint64_t, uint64_t>> responses;
  TraceScope scope;
  for (int e = 0; e < 2; ++e) {
    for (int i = 0; i < 12; ++i) {
      const uint64_t key = rng.Uniform(kTwinObjects);
      if (rng.Uniform(2) == 0) {
        store.SubmitWrite(1, seq, key, Val(seq ^ 0xabcd, kTwinValueSize));
      } else {
        store.SubmitRead(1, seq, key);
      }
      ++seq;
    }
    for (const ClientResponse& resp : store.RunEpoch()) {
      responses.emplace_back(resp.client_seq, TagOf(resp.value));
    }
  }
  if (trace_digest != nullptr) {
    *trace_digest = MemoryTraceDigest(scope.Events());
  }
  return responses;
}

TEST(BucketSortTwin, ResponsesAreStrategyIndependent) {
  const auto bitonic = RunTwin(SortStrategy::kBitonic, 1, nullptr);
  const auto bucket = RunTwin(SortStrategy::kBucket, 1, nullptr);
  ASSERT_FALSE(bitonic.empty());
  EXPECT_EQ(bitonic, bucket)
      << "twin deployments diverged: response streams must not depend on the sort "
         "strategy";
}

TEST(BucketSortTwin, EpochTraceIsThreadCountInvariantPerStrategy) {
  for (const SortStrategy strategy : {SortStrategy::kBitonic, SortStrategy::kBucket}) {
    uint64_t d1 = 0;
    const auto r1 = RunTwin(strategy, 1, &d1);
    for (const int epoch_threads : {2, 4}) {
      uint64_t dn = 0;
      const auto rn = RunTwin(strategy, epoch_threads, &dn);
      EXPECT_EQ(r1, rn) << "strategy=" << SortStrategyName(strategy)
                        << " epoch_threads=" << epoch_threads;
      EXPECT_EQ(d1, dn) << "trace changed with thread count: strategy="
                        << SortStrategyName(strategy)
                        << " epoch_threads=" << epoch_threads;
    }
  }
}

TEST(BucketSort, EnvOverrideSelectsStrategy) {
  // SNOOPY_SORT_STRATEGY overrides the configured strategy at resolve time.
  const SortBinSpec spec = SpecFor(64);
  ASSERT_EQ(setenv("SNOOPY_SORT_STRATEGY", "bucket", 1), 0);
  EXPECT_EQ(ResolveSortStrategy(SortStrategy::kBitonic, 1u << 14, 24, &spec, nullptr),
            SortStrategy::kBucket);
  ASSERT_EQ(setenv("SNOOPY_SORT_STRATEGY", "bitonic", 1), 0);
  EXPECT_EQ(ResolveSortStrategy(SortStrategy::kBucket, 1u << 14, 24, &spec, nullptr),
            SortStrategy::kBitonic);
  ASSERT_EQ(unsetenv("SNOOPY_SORT_STRATEGY"), 0);
}

}  // namespace
}  // namespace snoopy
