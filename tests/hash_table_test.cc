#include "src/obl/hash_table.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <tuple>
#include <vector>

#include "src/crypto/rng.h"
#include "src/enclave/trace.h"
#include "src/obl/primitives.h"

namespace snoopy {
namespace {

// Record layout: key(8) | bin(4) | dummy(1) | pad(3) | order(8) | dedup(8) | value(8)
constexpr size_t kStride = 40;
constexpr size_t kValueOffset = 32;
constexpr OhtSchema kSchema{/*key_offset=*/0, /*bin_offset=*/8, /*dummy_offset=*/12,
                            /*order_offset=*/16, /*dedup_offset=*/24};

ByteSlab MakeBatch(const std::vector<uint64_t>& keys) {
  ByteSlab slab(keys.size(), kStride);
  for (size_t i = 0; i < keys.size(); ++i) {
    uint8_t* rec = slab.Record(i);
    std::memcpy(rec, &keys[i], 8);
    const uint64_t value = keys[i] * 1000 + 7;
    std::memcpy(rec + kValueOffset, &value, 8);
  }
  return slab;
}

// Oblivious-style lookup: scan both buckets fully, remember a matching record's value.
bool Lookup(TwoTierOht& oht, uint64_t key, uint64_t* value_out) {
  bool found = false;
  uint64_t value = 0;
  auto scan = [&](std::span<uint8_t> bucket) {
    const size_t stride = oht.record_bytes();
    for (size_t off = 0; off + stride <= bucket.size(); off += stride) {
      const uint8_t* rec = bucket.data() + off;
      uint64_t k;
      std::memcpy(&k, rec + kSchema.key_offset, 8);
      const bool is_dummy = rec[kSchema.dummy_offset] != 0;
      const bool match = static_cast<bool>(static_cast<unsigned>(CtEq64(k, key)) &
                                           static_cast<unsigned>(!is_dummy));
      uint64_t v;
      std::memcpy(&v, rec + kValueOffset, 8);
      value = CtSelect64(match, v, value);
      found = static_cast<bool>(static_cast<unsigned>(found) | static_cast<unsigned>(match));
    }
  };
  scan(oht.Tier1Bucket(key));
  scan(oht.Tier2Bucket(key));
  *value_out = value;
  return found;
}

class OhtBatchSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(OhtBatchSizes, EveryKeyIsFindable) {
  const size_t n = GetParam();
  Rng rng(n + 5);
  std::set<uint64_t> key_set;
  while (key_set.size() < n) {
    key_set.insert(rng.Uniform(1u << 30));
  }
  std::vector<uint64_t> keys(key_set.begin(), key_set.end());

  TwoTierOht oht(kSchema, /*lambda=*/40);
  ASSERT_TRUE(oht.Build(MakeBatch(keys), rng));
  for (const uint64_t k : keys) {
    uint64_t v = 0;
    ASSERT_TRUE(Lookup(oht, k, &v)) << "n=" << n << " key=" << k;
    ASSERT_EQ(v, k * 1000 + 7);
  }
  // Absent keys are not found.
  for (int i = 0; i < 50; ++i) {
    uint64_t absent = (1u << 30) + rng.Uniform(1000);
    uint64_t v = 0;
    ASSERT_FALSE(Lookup(oht, absent, &v));
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, OhtBatchSizes,
                         ::testing::Values(0, 1, 2, 5, 16, 17, 50, 128, 300, 1024, 4096));

TEST(TwoTierOht, RepeatedBuildsAlwaysSucceed) {
  // Construction aborts only with negligible probability; 100 random builds must pass.
  Rng rng(321);
  for (int trial = 0; trial < 100; ++trial) {
    std::set<uint64_t> key_set;
    while (key_set.size() < 256) {
      key_set.insert(rng.Next64());
    }
    TwoTierOht oht(kSchema, /*lambda=*/40);
    ASSERT_TRUE(
        oht.Build(MakeBatch(std::vector<uint64_t>(key_set.begin(), key_set.end())), rng))
        << "trial " << trial;
  }
}

TEST(TwoTierOht, ExtractAllReturnsExactlyTheBatch) {
  Rng rng(8);
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 200; ++i) {
    keys.push_back(i * 3 + 1);
  }
  TwoTierOht oht(kSchema, 40);
  ASSERT_TRUE(oht.Build(MakeBatch(keys), rng));
  ByteSlab all = oht.ExtractAll();
  ASSERT_EQ(all.size(), keys.size());
  std::set<uint64_t> got;
  for (size_t i = 0; i < all.size(); ++i) {
    uint64_t k;
    std::memcpy(&k, all.Record(i), 8);
    EXPECT_EQ(all.Record(i)[kSchema.dummy_offset], 0);
    got.insert(k);
  }
  EXPECT_EQ(got, std::set<uint64_t>(keys.begin(), keys.end()));
}

TEST(TwoTierOht, ValuesSurviveInPlaceUpdatesThroughBuckets) {
  // The subORAM mutates bucket records through the returned spans; make sure updates
  // land in the extracted output.
  Rng rng(99);
  std::vector<uint64_t> keys = {10, 20, 30, 40, 50};
  TwoTierOht oht(kSchema, 40);
  ASSERT_TRUE(oht.Build(MakeBatch(keys), rng));
  // Overwrite the value for key 30 via its bucket.
  bool wrote = false;
  auto write_in = [&](std::span<uint8_t> bucket) {
    for (size_t off = 0; off + kStride <= bucket.size(); off += kStride) {
      uint8_t* rec = bucket.data() + off;
      uint64_t k;
      std::memcpy(&k, rec, 8);
      if (k == 30 && rec[kSchema.dummy_offset] == 0) {
        const uint64_t nv = 999;
        std::memcpy(rec + kValueOffset, &nv, 8);
        wrote = true;
      }
    }
  };
  write_in(oht.Tier1Bucket(30));
  write_in(oht.Tier2Bucket(30));
  ASSERT_TRUE(wrote);
  ByteSlab all = oht.ExtractAll();
  bool checked = false;
  for (size_t i = 0; i < all.size(); ++i) {
    uint64_t k;
    uint64_t v;
    std::memcpy(&k, all.Record(i), 8);
    std::memcpy(&v, all.Record(i) + kValueOffset, 8);
    if (k == 30) {
      EXPECT_EQ(v, 999u);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(ChooseOhtParams, SoundAndNoWorseThanSingleTier) {
  for (const uint64_t n : {32ull, 256ull, 1024ull, 4096ull, 16384ull}) {
    const OhtParams two = ChooseOhtParams(n, 128);
    const OhtParams one = ChooseSingleTierParams(n, 128);
    EXPECT_LE(two.LookupCost(), one.z1) << "n=" << n;
    EXPECT_GE(two.bins1 * two.z1 + two.overflow_cap, n) << "capacity must cover the batch";
    EXPECT_LE(two.TotalSlots(), 8 * n) << "memory blowup bound";
  }
}

TEST(ChooseOhtParams, TinyBatchesUseOneBucket) {
  const OhtParams p = ChooseOhtParams(8, 128);
  EXPECT_EQ(p.bins1, 1u);
  EXPECT_EQ(p.z1, 8u);
  EXPECT_EQ(p.bins2, 0u);
}

class OhtSoundnessSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(OhtSoundnessSweep, BuildsNeverOverflowAndLookupsAlwaysHit) {
  const auto [n, lambda] = GetParam();
  Rng rng(n * 7 + lambda);
  for (int trial = 0; trial < 10; ++trial) {
    std::set<uint64_t> key_set;
    while (key_set.size() < n) {
      key_set.insert(rng.Next64() >> 1);
    }
    const std::vector<uint64_t> keys(key_set.begin(), key_set.end());
    TwoTierOht oht(kSchema, lambda);
    ASSERT_TRUE(oht.Build(MakeBatch(keys), rng)) << "n=" << n << " lambda=" << lambda;
    for (size_t i = 0; i < keys.size(); i += 1 + keys.size() / 16) {
      uint64_t v = 0;
      ASSERT_TRUE(Lookup(oht, keys[i], &v));
      ASSERT_EQ(v, keys[i] * 1000 + 7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OhtSoundnessSweep,
    ::testing::Combine(::testing::Values(64ull, 512ull, 2048ull),
                       ::testing::Values(40u, 80u, 128u)));

TEST(TwoTierOht, ConstructionTraceIndependentOfKeys) {
  // Same batch size, different key sets: construction must touch memory identically.
  auto trace_for = [](uint64_t seed) {
    Rng data_rng(seed);
    std::set<uint64_t> key_set;
    while (key_set.size() < 64) {
      key_set.insert(data_rng.Next64());
    }
    TwoTierOht oht(kSchema, 40);
    Rng build_rng(42);  // fixed build randomness isolates data-dependence
    TraceScope scope;
    EXPECT_TRUE(oht.Build(MakeBatch(std::vector<uint64_t>(key_set.begin(), key_set.end())),
                          build_rng));
    return scope.Digest();
  };
  EXPECT_EQ(trace_for(1), trace_for(2));
  EXPECT_EQ(trace_for(3), trace_for(4));
}

}  // namespace
}  // namespace snoopy
