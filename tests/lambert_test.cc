#include "src/analysis/lambert.h"

#include <gtest/gtest.h>

#include <cmath>

namespace snoopy {
namespace {

TEST(LambertW0, KnownValues) {
  EXPECT_NEAR(LambertW0(0.0), 0.0, 1e-12);
  EXPECT_NEAR(LambertW0(std::exp(1.0)), 1.0, 1e-10);          // W(e) = 1
  EXPECT_NEAR(LambertW0(2.0 * std::exp(2.0)), 2.0, 1e-10);    // W(2e^2) = 2
  EXPECT_NEAR(LambertW0(-1.0 / std::exp(1.0)), -1.0, 1e-5);   // branch point
  EXPECT_NEAR(LambertW0(1.0), 0.5671432904097838, 1e-10);     // Omega constant
}

TEST(LambertW0, InverseProperty) {
  // W0(x) e^{W0(x)} == x across many magnitudes.
  for (double x : {-0.36, -0.2, -0.05, 0.01, 0.5, 1.0, 3.0, 10.0, 1e3, 1e6, 1e12}) {
    const double w = LambertW0(x);
    EXPECT_NEAR(w * std::exp(w), x, 1e-8 * std::max(1.0, std::fabs(x))) << "x=" << x;
  }
}

TEST(LambertW0, MonotonicOnPositiveAxis) {
  double prev = LambertW0(0.001);
  for (double x = 0.01; x < 1e6; x *= 3.0) {
    const double w = LambertW0(x);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(LambertW0, BelowBranchPointIsNan) {
  EXPECT_TRUE(std::isnan(LambertW0(-0.5)));
}

}  // namespace
}  // namespace snoopy
