#include "src/crypto/lamport.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace snoopy {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

TEST(LamportKey, SignVerifyRoundTrip) {
  Rng rng(1);
  LamportKey key(rng);
  const std::string msg = "merkle root v1";
  const auto sig = key.Sign(Bytes(msg));
  EXPECT_TRUE(LamportKey::Verify(key.public_key(), Bytes(msg), sig));
}

TEST(LamportKey, RejectsWrongMessageAndTamperedSignature) {
  Rng rng(2);
  LamportKey key(rng);
  const std::string msg = "merkle root v1";
  auto sig = key.Sign(Bytes(msg));
  EXPECT_FALSE(LamportKey::Verify(key.public_key(), Bytes("merkle root v2"), sig));
  sig[17][3] ^= 1;
  EXPECT_FALSE(LamportKey::Verify(key.public_key(), Bytes(msg), sig));
}

TEST(LamportKey, RefusesKeyReuse) {
  Rng rng(3);
  LamportKey key(rng);
  key.Sign(Bytes("first"));
  EXPECT_THROW(key.Sign(Bytes("second")), std::logic_error);
}

TEST(LamportKey, WrongPublicKeyFails) {
  Rng rng(4);
  LamportKey a(rng);
  LamportKey b(rng);
  const auto sig = a.Sign(Bytes("hello"));
  EXPECT_FALSE(LamportKey::Verify(b.public_key(), Bytes("hello"), sig));
}

TEST(LamportChain, MultiEpochChainVerifies) {
  LamportChain chain(5);
  std::vector<LamportChain::SignedStatement> statements;
  for (int epoch = 0; epoch < 5; ++epoch) {
    const std::string root = "root-epoch-" + std::to_string(epoch);
    statements.push_back(chain.Sign(Bytes(root)));
  }
  EXPECT_TRUE(LamportChain::VerifyChain(chain.genesis_public(), statements));
}

TEST(LamportChain, DetectsTamperingAnywhereInTheChain) {
  LamportChain chain(6);
  std::vector<LamportChain::SignedStatement> statements;
  for (int epoch = 0; epoch < 4; ++epoch) {
    statements.push_back(chain.Sign(Bytes("root-" + std::to_string(epoch))));
  }
  // Tamper with a middle statement's message.
  auto bad = statements;
  bad[2].message[0] ^= 1;
  EXPECT_FALSE(LamportChain::VerifyChain(chain.genesis_public(), bad));
  // Splice: replace a middle next-key (equivocation attempt).
  bad = statements;
  bad[1].next_public[0][0] ^= 1;
  EXPECT_FALSE(LamportChain::VerifyChain(chain.genesis_public(), bad));
  // Drop the genesis trust anchor.
  auto genesis = chain.genesis_public();
  genesis[0][0] ^= 1;
  EXPECT_FALSE(LamportChain::VerifyChain(genesis, statements));
}

}  // namespace
}  // namespace snoopy
