// Linearizability checking (paper section 2 and Appendix C).
//
// Snoopy's linearization order is (epoch, load-balancer id, reads-before-writes,
// arrival index). These tests run randomized histories against the real system and
// verify that the observed responses are explained by exactly that order -- a direct
// executable check of the Appendix C ordering rather than a generic search.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "src/core/snoopy.h"
#include "src/crypto/rng.h"

namespace snoopy {
namespace {

constexpr size_t kValueSize = 16;

std::vector<uint8_t> Val(uint64_t tag) {
  std::vector<uint8_t> v(kValueSize, 0);
  std::memcpy(v.data(), &tag, 8);
  return v;
}

uint64_t TagOf(const std::vector<uint8_t>& v) {
  uint64_t tag = 0;
  std::memcpy(&tag, v.data(), 8);
  return tag;
}

struct Op {
  uint32_t lb;
  uint64_t seq;
  uint64_t key;
  bool is_write;
  uint64_t write_tag;  // value written (writes only)
};

// Applies Appendix C's linearization to a reference store and returns, per op seq,
// the value that order predicts.
std::map<uint64_t, uint64_t> PredictResponses(const std::vector<std::vector<Op>>& epochs,
                                              uint32_t num_lbs) {
  std::map<uint64_t, uint64_t> state;     // key -> tag (0 = initial)
  std::map<uint64_t, uint64_t> predicted;  // seq -> response tag
  for (const std::vector<Op>& epoch_ops : epochs) {
    for (uint32_t lb = 0; lb < num_lbs; ++lb) {
      // Within one (epoch, lb) batch: all reads first (see pre-batch state)...
      for (const Op& op : epoch_ops) {
        if (op.lb == lb) {
          predicted[op.seq] = state.count(op.key) != 0 ? state[op.key] : 0;
        }
      }
      // ...then the last write (by arrival) per key applies.
      std::map<uint64_t, uint64_t> last_write;
      for (const Op& op : epoch_ops) {
        if (op.lb == lb && op.is_write) {
          last_write[op.key] = op.write_tag;  // arrival order: later overwrites
        }
      }
      for (const auto& [key, tag] : last_write) {
        state[key] = tag;
      }
    }
  }
  return predicted;
}

TEST(Linearizability, RandomHistoriesMatchTheAppendixCOrder) {
  Rng rng(2021);
  for (int trial = 0; trial < 5; ++trial) {
    const uint32_t num_lbs = 1 + static_cast<uint32_t>(rng.Uniform(3));
    const uint32_t num_sos = 1 + static_cast<uint32_t>(rng.Uniform(3));
    SnoopyConfig cfg;
    cfg.num_load_balancers = num_lbs;
    cfg.num_suborams = num_sos;
    cfg.value_size = kValueSize;
    cfg.lambda = 40;
    auto store = std::make_unique<Snoopy>(cfg, trial + 10);
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
    for (uint64_t k = 0; k < 20; ++k) {
      objects.emplace_back(k, Val(0));
    }
    store->Initialize(objects);

    std::vector<std::vector<Op>> history;
    uint64_t seq = 1;
    uint64_t next_tag = 1;
    std::map<uint64_t, uint64_t> observed;  // seq -> tag
    for (int epoch = 0; epoch < 6; ++epoch) {
      std::vector<Op> ops;
      const size_t n = 1 + rng.Uniform(25);
      for (size_t i = 0; i < n; ++i) {
        Op op;
        op.lb = static_cast<uint32_t>(rng.Uniform(num_lbs));
        op.seq = seq++;
        op.key = rng.Uniform(20);
        op.is_write = rng.Uniform(2) == 0;
        op.write_tag = op.is_write ? next_tag++ : 0;
        ops.push_back(op);
        if (op.is_write) {
          store->SubmitWriteWithLb(op.lb, /*client=*/op.lb, op.seq, op.key, Val(op.write_tag));
        } else {
          store->SubmitReadWithLb(op.lb, /*client=*/op.lb, op.seq, op.key);
        }
      }
      for (const ClientResponse& resp : store->RunEpoch()) {
        observed[resp.client_seq] = TagOf(resp.value);
      }
      history.push_back(ops);
    }

    const std::map<uint64_t, uint64_t> predicted = PredictResponses(history, num_lbs);
    ASSERT_EQ(observed.size(), predicted.size()) << "trial=" << trial;
    for (const auto& [s, tag] : predicted) {
      ASSERT_EQ(observed[s], tag)
          << "trial=" << trial << " seq=" << s << ": response violates the "
          << "(epoch, lb, reads-first, arrival) linearization";
    }
  }
}

TEST(Linearizability, ReadYourOwnWriteAcrossEpochs) {
  SnoopyConfig cfg;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  auto store = std::make_unique<Snoopy>(cfg, 3);
  store->Initialize({{1, Val(0)}});
  // Real-time ordered: write commits in epoch 0, read starts in epoch 1 -> must see it.
  store->SubmitWrite(1, 1, 1, Val(42));
  store->RunEpoch();
  store->SubmitRead(1, 2, 1);
  const auto resp = store->RunEpoch();
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(TagOf(resp[0].value), 42u);
}

TEST(Linearizability, LastWriteWinsWithinOneBalancerEpoch) {
  SnoopyConfig cfg;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  auto store = std::make_unique<Snoopy>(cfg, 4);
  store->Initialize({{5, Val(0)}});
  store->SubmitWriteWithLb(0, 1, 1, 5, Val(10));
  store->SubmitWriteWithLb(0, 1, 2, 5, Val(20));
  store->SubmitWriteWithLb(0, 1, 3, 5, Val(30));
  store->RunEpoch();
  store->SubmitRead(1, 9, 5);
  const auto resp = store->RunEpoch();
  EXPECT_EQ(TagOf(resp[0].value), 30u);
}

}  // namespace
}  // namespace snoopy
