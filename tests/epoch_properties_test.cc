// Epoch-level public-view properties: beyond memory traces (obliviousness_test), the
// *communication pattern* -- message counts and byte counts on the wire -- must be a
// function of public parameters only (paper Appendix B includes network communication
// in the adversary's trace).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "src/analysis/batch_bound.h"
#include "src/core/snoopy.h"
#include "src/sim/workload.h"

namespace snoopy {
namespace {

constexpr size_t kValueSize = 32;

struct WireView {
  uint64_t messages;
  uint64_t bytes_sent;
  uint64_t bytes_received;
};

WireView EpochWireView(const std::vector<WorkloadRequest>& reqs, uint32_t lbs, uint32_t sos,
                       uint64_t seed) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = lbs;
  cfg.num_suborams = sos;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  auto store = std::make_unique<Snoopy>(cfg, seed);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 100; ++k) {
    objects.emplace_back(k, std::vector<uint8_t>(kValueSize, 1));
  }
  store->Initialize(objects);
  for (size_t i = 0; i < reqs.size(); ++i) {
    const auto lb = static_cast<uint32_t>(i % lbs);  // public: equal counts per LB
    if (reqs[i].is_write) {
      store->SubmitWriteWithLb(lb, 1, i, reqs[i].key,
                               std::vector<uint8_t>(kValueSize, 2));
    } else {
      store->SubmitReadWithLb(lb, 1, i, reqs[i].key);
    }
  }
  store->RunEpoch();
  const auto& s = store->network().stats();
  return WireView{s.messages, s.bytes_sent, s.bytes_received};
}

TEST(EpochProperties, WirePatternIndependentOfWorkload) {
  WorkloadGenerator gen(100, 0.3, 1);
  const auto uniform = gen.Uniform(36);
  const auto zipf = gen.Zipfian(36, 0.99);
  const auto hotspot = gen.Hotspot(36, 0.95);
  const WireView a = EpochWireView(uniform, 2, 3, 7);
  const WireView b = EpochWireView(zipf, 2, 3, 7);
  const WireView c = EpochWireView(hotspot, 2, 3, 7);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.bytes_received, b.bytes_received);
  EXPECT_EQ(a.messages, c.messages);
  EXPECT_EQ(a.bytes_sent, c.bytes_sent);
  EXPECT_EQ(a.bytes_received, c.bytes_received);
}

TEST(EpochProperties, WireBytesMatchTheBatchBound) {
  // The total request bytes on the wire are exactly S batches of f(R,S) records per
  // load balancer (plus AEAD tags): the padding really is on the wire.
  WorkloadGenerator gen(100, 0.0, 2);
  const auto reqs = gen.Uniform(24);
  const WireView v = EpochWireView(reqs, 1, 4, 9);
  const uint64_t batch = BatchSize(24, 4, 40);
  const uint64_t record_bytes = 48 + kValueSize;
  // Serialized batch: 16-byte header + records; sealed adds a 16-byte tag; the
  // envelope adds the 8-byte epoch id (public retransmission-dedup metadata).
  const uint64_t per_message = 8 + 16 + batch * record_bytes + 16;
  EXPECT_EQ(v.messages, 4u);
  EXPECT_EQ(v.bytes_sent, 4 * per_message);
  EXPECT_EQ(v.bytes_received, 4 * (per_message - 8))
      << "responses mirror request batches (no envelope on the return path)";
}

TEST(EpochProperties, WirePatternScalesWithPublicParameters) {
  WorkloadGenerator gen(100, 0.0, 3);
  const auto reqs = gen.Uniform(30);
  const WireView base = EpochWireView(reqs, 2, 3, 7);
  const WireView more_sos = EpochWireView(reqs, 2, 4, 7);
  const WireView more_reqs = EpochWireView(gen.Uniform(60), 2, 3, 7);
  EXPECT_GT(more_sos.messages, base.messages);
  EXPECT_GT(more_reqs.bytes_sent, base.bytes_sent);
}

}  // namespace
}  // namespace snoopy
