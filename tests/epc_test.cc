#include "src/enclave/epc.h"

#include <gtest/gtest.h>

namespace snoopy {
namespace {

TEST(EpcModel, ResidentScansAreLinearInBytes) {
  const EpcModel model;
  const uint64_t mb = 1024 * 1024;
  const double t1 = model.ScanSeconds(10 * mb, 10 * mb);
  const double t2 = model.ScanSeconds(20 * mb, 20 * mb);
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(EpcModel, PagingCliffBeyondEpc) {
  // The jump in Figure 12 between 2^15 and 2^20 objects: per-byte cost rises sharply
  // once the working set exceeds the usable EPC.
  const EpcModel model;
  const uint64_t epc = model.config().usable_epc_bytes;
  const double in_epc_per_byte = model.ScanSeconds(epc / 2, epc / 2) / (epc / 2.0);
  const double over_epc_per_byte = model.ScanSeconds(4 * epc, 4 * epc) / (4.0 * epc);
  EXPECT_GT(over_epc_per_byte, 1.5 * in_epc_per_byte);
}

TEST(EpcModel, HostLoaderBeatsPageFaults) {
  // The paper's section 7 optimization: streaming through a shared buffer must
  // dramatically beat demand paging for scans over large working sets.
  const EpcModel model;
  const uint64_t ws = 4ull * 1024 * 1024 * 1024;  // 4 GB working set
  const double with_loader = model.ScanSeconds(ws, ws, /*use_host_loader=*/true);
  const double with_faults = model.ScanSeconds(ws, ws, /*use_host_loader=*/false);
  EXPECT_LT(with_loader, with_faults / 2.0);
}

TEST(EpcModel, Fig12CrossoverAtDefaultRecordSize) {
  // Pins the Figure 12 cliff to concrete deployment numbers: at the paper's ~336-byte
  // sealed record, 2^19 objects still fit the 188 MB usable EPC while 2^20 do not, and
  // crossing the boundary raises the per-byte scan cost even with the host loader.
  const EpcModel model;
  const uint64_t record_bytes = 336;
  const uint64_t below = (1ull << 19) * record_bytes;  // ~168 MB
  const uint64_t above = (1ull << 20) * record_bytes;  // ~336 MB
  EXPECT_TRUE(model.Fits(below));
  EXPECT_FALSE(model.Fits(above));
  const double below_per_byte = model.ScanSeconds(below, below) / static_cast<double>(below);
  const double above_per_byte = model.ScanSeconds(above, above) / static_cast<double>(above);
  EXPECT_GT(above_per_byte, 1.3 * below_per_byte)
      << "crossing the EPC boundary must show up as a per-byte cost jump (Figure 12)";
}

TEST(EpcModel, ScanStatsAccountForEveryByte) {
  const EpcModel model;
  const uint64_t epc = model.config().usable_epc_bytes;

  // Resident scan: everything served from EPC, nothing streamed or faulted.
  EpcScanStats fits{};
  model.ScanSeconds(epc / 2, epc / 2, /*use_host_loader=*/true, &fits);
  EXPECT_EQ(fits.bytes_resident, epc / 2);
  EXPECT_EQ(fits.bytes_streamed, 0u);
  EXPECT_EQ(fits.pages_faulted, 0u);

  // Host-loader miss: the out-of-EPC fraction streams, the rest stays resident, and
  // no page faults occur. resident + streamed must cover the scan exactly.
  const uint64_t ws = 4 * epc;
  EpcScanStats streamed{};
  model.ScanSeconds(ws, ws, /*use_host_loader=*/true, &streamed);
  EXPECT_EQ(streamed.pages_faulted, 0u);
  EXPECT_EQ(streamed.bytes_resident + streamed.bytes_streamed, ws);
  // Three quarters of a 4x-EPC working set miss.
  EXPECT_NEAR(static_cast<double>(streamed.bytes_streamed), 0.75 * static_cast<double>(ws),
              1.0);

  // Demand paging: same byte split, but the misses arrive as page faults.
  EpcScanStats faulted{};
  model.ScanSeconds(ws, ws, /*use_host_loader=*/false, &faulted);
  EXPECT_EQ(faulted.bytes_streamed, streamed.bytes_streamed);
  EXPECT_NEAR(static_cast<double>(faulted.pages_faulted),
              static_cast<double>(faulted.bytes_streamed) /
                  static_cast<double>(model.config().page_bytes),
              1.0);

  // The out-param is optional and its absence changes nothing.
  EXPECT_EQ(model.ScanSeconds(ws, ws, true, nullptr), model.ScanSeconds(ws, ws, true));
}

TEST(EpcModel, FitsMatchesConfig) {
  EpcConfig cfg;
  cfg.usable_epc_bytes = 1000;
  const EpcModel model(cfg);
  EXPECT_TRUE(model.Fits(1000));
  EXPECT_FALSE(model.Fits(1001));
}

}  // namespace
}  // namespace snoopy
