#include "src/enclave/epc.h"

#include <gtest/gtest.h>

namespace snoopy {
namespace {

TEST(EpcModel, ResidentScansAreLinearInBytes) {
  const EpcModel model;
  const uint64_t mb = 1024 * 1024;
  const double t1 = model.ScanSeconds(10 * mb, 10 * mb);
  const double t2 = model.ScanSeconds(20 * mb, 20 * mb);
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(EpcModel, PagingCliffBeyondEpc) {
  // The jump in Figure 12 between 2^15 and 2^20 objects: per-byte cost rises sharply
  // once the working set exceeds the usable EPC.
  const EpcModel model;
  const uint64_t epc = model.config().usable_epc_bytes;
  const double in_epc_per_byte = model.ScanSeconds(epc / 2, epc / 2) / (epc / 2.0);
  const double over_epc_per_byte = model.ScanSeconds(4 * epc, 4 * epc) / (4.0 * epc);
  EXPECT_GT(over_epc_per_byte, 1.5 * in_epc_per_byte);
}

TEST(EpcModel, HostLoaderBeatsPageFaults) {
  // The paper's section 7 optimization: streaming through a shared buffer must
  // dramatically beat demand paging for scans over large working sets.
  const EpcModel model;
  const uint64_t ws = 4ull * 1024 * 1024 * 1024;  // 4 GB working set
  const double with_loader = model.ScanSeconds(ws, ws, /*use_host_loader=*/true);
  const double with_faults = model.ScanSeconds(ws, ws, /*use_host_loader=*/false);
  EXPECT_LT(with_loader, with_faults / 2.0);
}

TEST(EpcModel, FitsMatchesConfig) {
  EpcConfig cfg;
  cfg.usable_epc_bytes = 1000;
  const EpcModel model(cfg);
  EXPECT_TRUE(model.Fits(1000));
  EXPECT_FALSE(model.Fits(1001));
}

}  // namespace
}  // namespace snoopy
