#include "src/enclave/trace.h"

#include <gtest/gtest.h>

namespace snoopy {
namespace {

TEST(TraceRecorder, DisabledByDefaultAndRecordsNothing) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.Disable();
  TraceRecord(TraceOp::kRead, 1, 2);
  EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorder, CapturesEventsInOrder) {
  TraceScope scope;
  TraceRecord(TraceOp::kCondSwap, 3, 4);
  TraceRecord(TraceOp::kRead, 9);
  const auto events = scope.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (TraceEvent{TraceOp::kCondSwap, 3, 4}));
  EXPECT_EQ(events[1], (TraceEvent{TraceOp::kRead, 9, 0}));
}

TEST(TraceRecorder, DigestDistinguishesTraces) {
  uint64_t d1;
  uint64_t d2;
  uint64_t d3;
  {
    TraceScope scope;
    TraceRecord(TraceOp::kRead, 1);
    TraceRecord(TraceOp::kRead, 2);
    d1 = scope.Digest();
  }
  {
    TraceScope scope;
    TraceRecord(TraceOp::kRead, 1);
    TraceRecord(TraceOp::kRead, 2);
    d2 = scope.Digest();
  }
  {
    TraceScope scope;
    TraceRecord(TraceOp::kRead, 2);
    TraceRecord(TraceOp::kRead, 1);
    d3 = scope.Digest();
  }
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1, d3);
}

TEST(TraceRecorder, ScopeDisablesOnExit) {
  {
    TraceScope scope;
    TraceRecord(TraceOp::kWrite, 5);
  }
  EXPECT_FALSE(TraceRecorder::Global().enabled());
  const size_t before = TraceRecorder::Global().events().size();
  TraceRecord(TraceOp::kWrite, 6);
  EXPECT_EQ(TraceRecorder::Global().events().size(), before);
}

TEST(TraceRecorder, ToStringIsBounded) {
  TraceScope scope;
  for (int i = 0; i < 100; ++i) {
    TraceRecord(TraceOp::kRead, static_cast<uint64_t>(i));
  }
  const std::string s = TraceRecorder::Global().ToString(8);
  EXPECT_NE(s.find("100 events"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace snoopy
