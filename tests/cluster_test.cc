#include "src/sim/cluster.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace snoopy {
namespace {

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.load_balancers = 1;
  cfg.suborams = 3;
  cfg.num_objects = 2000000;
  cfg.epoch_seconds = 0.2;
  return cfg;
}

TEST(ClusterSimulator, LightLoadMeetsLatency) {
  const CostModel model;
  const ClusterSimulator sim(SmallConfig(), model);
  const ClusterMetrics m = sim.Run(/*ops_per_second=*/2000, /*duration=*/6.0, /*seed=*/1);
  EXPECT_FALSE(m.saturated);
  EXPECT_GT(m.throughput, 1500.0);
  // Latency at least half an epoch (the average wait) and bounded by a few epochs.
  EXPECT_GT(m.mean_latency_s, 0.1);
  EXPECT_LT(m.mean_latency_s, 1.5);
}

TEST(ClusterSimulator, OverloadSaturates) {
  const CostModel model;
  const ClusterSimulator sim(SmallConfig(), model);
  const ClusterMetrics m = sim.Run(/*ops_per_second=*/400000, /*duration=*/6.0, /*seed=*/2);
  EXPECT_TRUE(m.saturated || m.mean_latency_s > 2.0)
      << "an unsustainable load must be visible in the metrics";
}

TEST(ClusterSimulator, MoreSubOramsRaiseSustainableLoad) {
  const CostModel model;
  const ClusterMetrics small =
      ClusterSimulator::MaxThroughput(1, 3, 2000000, /*latency=*/1.0, model);
  const ClusterMetrics large =
      ClusterSimulator::MaxThroughput(2, 8, 2000000, /*latency=*/1.0, model);
  EXPECT_GT(small.throughput, 0.0);
  EXPECT_GT(large.throughput, 1.3 * small.throughput)
      << "adding machines must raise throughput (Figure 9a)";
}

TEST(ClusterSimulator, LatencyBoundTradesOffThroughput) {
  const CostModel model;
  const ClusterMetrics tight = ClusterSimulator::MaxThroughput(2, 8, 2000000, 0.3, model);
  const ClusterMetrics loose = ClusterSimulator::MaxThroughput(2, 8, 2000000, 1.0, model);
  EXPECT_GE(loose.throughput, tight.throughput)
      << "relaxing the latency requirement improves throughput (section 8.2)";
}

TEST(ClusterSimulator, AccessAmplificationDividesThroughput) {
  const CostModel model;
  const ClusterMetrics plain = ClusterSimulator::MaxThroughput(2, 6, 1000000, 1.0, model, 1.0);
  const ClusterMetrics kt = ClusterSimulator::MaxThroughput(2, 6, 1000000, 1.0, model, 24.0);
  EXPECT_GT(plain.throughput, 5 * kt.throughput)
      << "24 accesses per op must cost roughly 24x throughput (Figure 9b)";
}

TEST(ClusterSimulator, ZeroFailureRateIsBitIdenticalToBaseline) {
  // The failure process draws from its own random stream, so leaving it disabled
  // (the default) must not perturb a single metric of an existing seeded run.
  const CostModel model;
  const ClusterSimulator baseline(SmallConfig(), model);
  ClusterConfig with_knobs = SmallConfig();
  with_knobs.lb_mttf_s = 0;  // explicit zeros, same as default
  with_knobs.suboram_mttf_s = 0;
  const ClusterSimulator disabled(with_knobs, model);
  const ClusterMetrics a = baseline.Run(2000, 6.0, /*seed=*/1);
  const ClusterMetrics b = disabled.Run(2000, 6.0, /*seed=*/1);
  EXPECT_EQ(a.completed_ops, b.completed_ops);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.max_latency_s, b.max_latency_s);
  EXPECT_EQ(b.failures, 0u);
  EXPECT_EQ(b.downtime_s, 0.0);
}

TEST(ClusterSimulator, FailuresDegradeButDoNotZeroThroughput) {
  // MTTF of a few seconds over a 6-second window guarantees crashes; MTTR of one
  // epoch each. The cluster must keep serving (recovery works) at reduced speed.
  const CostModel model;
  const ClusterSimulator healthy(SmallConfig(), model);
  ClusterConfig failing_cfg = SmallConfig();
  failing_cfg.suboram_mttf_s = 2.0;
  failing_cfg.suboram_mttr_s = 0.4;
  failing_cfg.lb_mttf_s = 3.0;
  failing_cfg.lb_mttr_s = 0.4;
  const ClusterSimulator failing(failing_cfg, model);
  const ClusterMetrics h = healthy.Run(2000, 6.0, /*seed=*/3);
  const ClusterMetrics f = failing.Run(2000, 6.0, /*seed=*/3);
  EXPECT_GT(f.failures, 0u);
  EXPECT_GT(f.downtime_s, 0.0);
  EXPECT_GT(f.throughput, 0.0) << "recovery must keep the cluster serving";
  EXPECT_GE(f.mean_latency_s, h.mean_latency_s)
      << "repair stalls must show up as added latency";
}

TEST(ClusterSimulator, FailureProcessIsSeedDeterministic) {
  const CostModel model;
  ClusterConfig cfg = SmallConfig();
  cfg.suboram_mttf_s = 2.0;
  cfg.suboram_mttr_s = 0.4;
  const ClusterSimulator sim(cfg, model);
  const ClusterMetrics a = sim.Run(2000, 6.0, /*seed=*/7);
  const ClusterMetrics b = sim.Run(2000, 6.0, /*seed=*/7);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.downtime_s, b.downtime_s);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
}

TEST(ClusterSimulator, LatencyPercentilesAreOrderedAndBracketed) {
  const CostModel model;
  const ClusterSimulator sim(SmallConfig(), model);
  const ClusterMetrics m = sim.Run(/*ops_per_second=*/2000, /*duration=*/6.0, /*seed=*/1);
  ASSERT_GT(m.latency_histogram.count(), 0.0);
  EXPECT_GT(m.latency_p50_s, 0.0);
  EXPECT_LE(m.latency_p50_s, m.latency_p90_s);
  EXPECT_LE(m.latency_p90_s, m.latency_p99_s);
  EXPECT_LE(m.latency_p99_s, m.max_latency_s * 1.0001);
  // The histogram's mean must agree with the exact mean (its mass is exact per
  // cohort, not sampled), and the tail cannot dip below the mean's cohort floor.
  EXPECT_NEAR(m.latency_histogram.mean(), m.mean_latency_s,
              0.05 * m.mean_latency_s + 1e-9);
  EXPECT_GE(m.latency_p99_s, m.mean_latency_s);
}

TEST(ClusterSimulator, DisablingLatencyHistogramOnlyDropsPercentiles) {
  // The overhead-study switch: turning the histogram off must zero the percentile
  // fields without perturbing any other metric of the same seeded run.
  const CostModel model;
  ClusterConfig off_cfg = SmallConfig();
  off_cfg.latency_histogram = false;
  const ClusterMetrics on = ClusterSimulator(SmallConfig(), model).Run(2000, 6.0, /*seed=*/1);
  const ClusterMetrics off = ClusterSimulator(off_cfg, model).Run(2000, 6.0, /*seed=*/1);
  EXPECT_EQ(off.latency_histogram.count(), 0.0);
  EXPECT_EQ(off.latency_p50_s, 0.0);
  EXPECT_EQ(off.latency_p99_s, 0.0);
  EXPECT_EQ(on.completed_ops, off.completed_ops);
  EXPECT_EQ(on.throughput, off.throughput);
  EXPECT_EQ(on.mean_latency_s, off.mean_latency_s);
  EXPECT_EQ(on.max_latency_s, off.max_latency_s);
}

TEST(ClusterSimulator, LatencyHistogramsMergeAcrossRuns) {
  // Mergeability is the point of histogram-backed percentiles: shard the runs, merge
  // the distributions, and the combined count is the sum of the parts.
  const CostModel model;
  const ClusterSimulator sim(SmallConfig(), model);
  const ClusterMetrics a = sim.Run(2000, 6.0, /*seed=*/1);
  const ClusterMetrics b = sim.Run(2000, 6.0, /*seed=*/2);
  Histogram merged;
  merged.Merge(a.latency_histogram);
  merged.Merge(b.latency_histogram);
  EXPECT_DOUBLE_EQ(merged.count(),
                   a.latency_histogram.count() + b.latency_histogram.count());
  EXPECT_GE(merged.Quantile(0.99), std::min(a.latency_p99_s, b.latency_p99_s) * 0.9);
}

TEST(ClusterSimulator, BestSplitUsesAllMachines) {
  const CostModel model;
  const auto split = ClusterSimulator::BestSplit(6, 2000000, 1.0, model);
  EXPECT_EQ(split.load_balancers + split.suborams, 6u);
  EXPECT_GE(split.load_balancers, 1u);
  EXPECT_GE(split.suborams, 1u);
  EXPECT_GT(split.metrics.throughput, 0.0);
}

}  // namespace
}  // namespace snoopy
