#include "src/sim/cluster.h"

#include <gtest/gtest.h>

namespace snoopy {
namespace {

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.load_balancers = 1;
  cfg.suborams = 3;
  cfg.num_objects = 2000000;
  cfg.epoch_seconds = 0.2;
  return cfg;
}

TEST(ClusterSimulator, LightLoadMeetsLatency) {
  const CostModel model;
  const ClusterSimulator sim(SmallConfig(), model);
  const ClusterMetrics m = sim.Run(/*ops_per_second=*/2000, /*duration=*/6.0, /*seed=*/1);
  EXPECT_FALSE(m.saturated);
  EXPECT_GT(m.throughput, 1500.0);
  // Latency at least half an epoch (the average wait) and bounded by a few epochs.
  EXPECT_GT(m.mean_latency_s, 0.1);
  EXPECT_LT(m.mean_latency_s, 1.5);
}

TEST(ClusterSimulator, OverloadSaturates) {
  const CostModel model;
  const ClusterSimulator sim(SmallConfig(), model);
  const ClusterMetrics m = sim.Run(/*ops_per_second=*/400000, /*duration=*/6.0, /*seed=*/2);
  EXPECT_TRUE(m.saturated || m.mean_latency_s > 2.0)
      << "an unsustainable load must be visible in the metrics";
}

TEST(ClusterSimulator, MoreSubOramsRaiseSustainableLoad) {
  const CostModel model;
  const ClusterMetrics small =
      ClusterSimulator::MaxThroughput(1, 3, 2000000, /*latency=*/1.0, model);
  const ClusterMetrics large =
      ClusterSimulator::MaxThroughput(2, 8, 2000000, /*latency=*/1.0, model);
  EXPECT_GT(small.throughput, 0.0);
  EXPECT_GT(large.throughput, 1.3 * small.throughput)
      << "adding machines must raise throughput (Figure 9a)";
}

TEST(ClusterSimulator, LatencyBoundTradesOffThroughput) {
  const CostModel model;
  const ClusterMetrics tight = ClusterSimulator::MaxThroughput(2, 8, 2000000, 0.3, model);
  const ClusterMetrics loose = ClusterSimulator::MaxThroughput(2, 8, 2000000, 1.0, model);
  EXPECT_GE(loose.throughput, tight.throughput)
      << "relaxing the latency requirement improves throughput (section 8.2)";
}

TEST(ClusterSimulator, AccessAmplificationDividesThroughput) {
  const CostModel model;
  const ClusterMetrics plain = ClusterSimulator::MaxThroughput(2, 6, 1000000, 1.0, model, 1.0);
  const ClusterMetrics kt = ClusterSimulator::MaxThroughput(2, 6, 1000000, 1.0, model, 24.0);
  EXPECT_GT(plain.throughput, 5 * kt.throughput)
      << "24 accesses per op must cost roughly 24x throughput (Figure 9b)";
}

TEST(ClusterSimulator, BestSplitUsesAllMachines) {
  const CostModel model;
  const auto split = ClusterSimulator::BestSplit(6, 2000000, 1.0, model);
  EXPECT_EQ(split.load_balancers + split.suborams, 6u);
  EXPECT_GE(split.load_balancers, 1u);
  EXPECT_GE(split.suborams, 1u);
  EXPECT_GT(split.metrics.throughput, 0.0);
}

}  // namespace
}  // namespace snoopy
