// Unit tests for the Secret<T>/SecretBool taint types (src/obl/secret.h) and the
// poisoning harness (src/obl/poison.h): mask semantics, interop with the oblivious
// primitives, the Declassify audit trail, and the compile-time guarantees (no bool
// conversion, no indexing) checked via type traits.

#include "src/obl/secret.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "src/enclave/trace.h"
#include "src/obl/poison.h"

namespace snoopy {
namespace {

// The core compile-time claims: a Secret is not a bool, not an integer, and therefore
// never a branch condition or an array index.
static_assert(!std::is_constructible_v<bool, SecretBool>,
              "SecretBool must not convert to bool");
static_assert(!std::is_constructible_v<bool, SecretU64>,
              "Secret<T> must not convert to bool");
static_assert(!std::is_convertible_v<SecretU64, uint64_t>,
              "Secret<T> must not convert to an integer");
static_assert(std::is_convertible_v<uint64_t, SecretU64>,
              "public values must enter the taint domain implicitly");
static_assert(std::is_same_v<decltype(SecretU64(1) < SecretU64(2)), SecretBool>,
              "comparisons must stay in the taint domain");
static_assert(std::is_same_v<decltype(SecretU64(1) == SecretU64(2)), SecretBool>,
              "equality must stay in the taint domain");

TEST(SecretBool, MaskSemantics) {
  EXPECT_EQ(SecretBool::True().mask(), ~uint64_t{0});
  EXPECT_EQ(SecretBool::False().mask(), uint64_t{0});
  EXPECT_EQ(SecretBool::FromBool(true).mask(), ~uint64_t{0});
  EXPECT_EQ(SecretBool::FromBool(false).mask(), uint64_t{0});
  // FromWord taints any zero/nonzero flag, not just 0/1.
  EXPECT_EQ(SecretBool::FromWord(0).mask(), uint64_t{0});
  EXPECT_EQ(SecretBool::FromWord(1).mask(), ~uint64_t{0});
  EXPECT_EQ(SecretBool::FromWord(0xf0).mask(), ~uint64_t{0});
}

TEST(SecretBool, BranchlessLogic) {
  const SecretBool t = SecretBool::True();
  const SecretBool f = SecretBool::False();
  EXPECT_EQ((t & f).mask(), uint64_t{0});
  EXPECT_EQ((t | f).mask(), ~uint64_t{0});
  EXPECT_EQ((t ^ t).mask(), uint64_t{0});
  EXPECT_EQ((!f).mask(), ~uint64_t{0});
  SecretBool acc = t;
  acc &= f;
  EXPECT_EQ(acc.mask(), uint64_t{0});
  acc |= t;
  EXPECT_EQ(acc.mask(), ~uint64_t{0});
  EXPECT_EQ(t.ToFlagByte(), 1);
  EXPECT_EQ(f.ToFlagByte(), 0);
}

TEST(Secret, ComparisonsMatchPlainIntegers) {
  const std::vector<uint64_t> samples = {0, 1, 2, 41, 42, 43, ~uint64_t{0} - 1,
                                         ~uint64_t{0}};
  for (const uint64_t a : samples) {
    for (const uint64_t b : samples) {
      const SecretU64 sa(a);
      const SecretU64 sb(b);
      EXPECT_EQ((sa == sb).Declassify("test.eq"), a == b) << a << " " << b;
      EXPECT_EQ((sa != sb).Declassify("test.ne"), a != b) << a << " " << b;
      EXPECT_EQ((sa < sb).Declassify("test.lt"), a < b) << a << " " << b;
      EXPECT_EQ((sa <= sb).Declassify("test.le"), a <= b) << a << " " << b;
      EXPECT_EQ((sa > sb).Declassify("test.gt"), a > b) << a << " " << b;
      EXPECT_EQ((sa >= sb).Declassify("test.ge"), a >= b) << a << " " << b;
    }
  }
}

TEST(Secret, ArithmeticStaysInTaintDomain) {
  SecretU64 acc = 0;
  acc += SecretU64(40);
  acc += 2;  // public constants convert implicitly
  EXPECT_EQ(acc.Declassify("test.acc"), 42u);
  EXPECT_EQ((SecretU64(7) - SecretU64(3)).Declassify("test.sub"), 4u);
  EXPECT_EQ((SecretU64(0b1100) & SecretU64(0b1010)).Declassify("test.and"), 0b1000u);
  EXPECT_EQ((SecretU64(0b1100) | SecretU64(0b1010)).Declassify("test.or"), 0b1110u);
  EXPECT_EQ((SecretU64(0b1100) ^ SecretU64(0b1010)).Declassify("test.xor"), 0b0110u);
  EXPECT_EQ((SecretU64(1) << 4).Declassify("test.shl"), 16u);
  EXPECT_EQ((SecretU64(16) >> 4).Declassify("test.shr"), 1u);
  EXPECT_TRUE(SecretU64(3).LowBit().Declassify("test.lowbit"));
  EXPECT_FALSE(SecretU64(2).LowBit().Declassify("test.lowbit"));
  EXPECT_TRUE(SecretU64(8).NonZero().Declassify("test.nonzero"));
  EXPECT_FALSE(SecretU64(0).NonZero().Declassify("test.nonzero"));
}

TEST(Secret, SelectAndConditionalOps) {
  EXPECT_EQ(CtSelectU64(SecretBool::True(), 7, 9).Declassify("test.sel"), 7u);
  EXPECT_EQ(CtSelectU64(SecretBool::False(), 7, 9).Declassify("test.sel"), 9u);
  const SecretBool picked =
      CtSelect(SecretBool::True(), SecretBool::False(), SecretBool::True());
  EXPECT_EQ(picked.mask(), uint64_t{0});

  uint64_t a = 1;
  uint64_t b = 2;
  OCmpSwap(SecretBool::False(), a, b);
  EXPECT_EQ(a, 1u);
  OCmpSwap(SecretBool::True(), a, b);
  EXPECT_EQ(a, 2u);
  EXPECT_EQ(b, 1u);
  OCmpSet(SecretBool::True(), a, b);
  EXPECT_EQ(a, 1u);

  std::array<uint8_t, 13> dst{};
  std::array<uint8_t, 13> src;
  src.fill(0xab);
  CtCondCopyBytes(SecretBool::False(), dst.data(), src.data(), dst.size());
  EXPECT_EQ(dst[0], 0);
  CtCondCopyBytes(SecretBool::True(), dst.data(), src.data(), dst.size());
  EXPECT_EQ(dst, src);
  CtCondSwapBytes(SecretBool::True(), dst.data(), src.data(), dst.size());
  EXPECT_EQ(src[12], 0xab);
}

TEST(Secret, SecretEqualBytesAllLengths) {
  // Cover the word loop, the byte tail, and single-byte differences at every position.
  for (size_t n = 0; n <= 24; ++n) {
    std::vector<uint8_t> a(n, 0x5c);
    std::vector<uint8_t> b = a;
    EXPECT_TRUE(SecretEqualBytes(a.data(), b.data(), n).Declassify("test.eqbytes"))
        << "n=" << n;
    for (size_t flip = 0; flip < n; ++flip) {
      b = a;
      b[flip] ^= 0x01;
      EXPECT_FALSE(SecretEqualBytes(a.data(), b.data(), n).Declassify("test.eqbytes"))
          << "n=" << n << " flip=" << flip;
    }
  }
}

TEST(Secret, RecordLoadsAndStores) {
  std::array<uint8_t, 16> rec{};
  StoreSecretU64(rec.data(), 0, SecretU64(0x1122334455667788ULL));
  StoreSecretU32(rec.data(), 8, SecretU32(0xdeadbeef));
  EXPECT_EQ(LoadSecretU64(rec.data(), 0).Declassify("test.load"), 0x1122334455667788ULL);
  EXPECT_EQ(Widen(LoadSecretU32(rec.data(), 8)).Declassify("test.load"), 0xdeadbeefULL);
  rec[12] = 3;
  EXPECT_EQ(Widen(LoadSecretU8(rec.data(), 12)).Declassify("test.load"), 3u);

  uint64_t field64 = 0;
  uint32_t field32 = 0;
  uint8_t field8 = 0;
  StoreSecret(field64, SecretU64(99));
  StoreSecret(field32, NarrowToU32(SecretU64(0x100000007ULL)));
  StoreSecret(field8, SecretU8(5));
  EXPECT_EQ(field64, 99u);
  EXPECT_EQ(field32, 7u);  // NarrowToU32 keeps the low word
  EXPECT_EQ(field8, 5u);
  EXPECT_EQ(ModPublic(SecretU64(17), 5).Declassify("test.mod"), 2u);
}

TEST(Declassify, EmitsSiteHashedTraceEvents) {
  TraceScope scope;
  SecretBool::True().Declassify("site.alpha");
  SecretU64(12345).Declassify("site.beta");
  SecretBool::False().Declassify("site.alpha");
  const auto events = scope.Events();
  ASSERT_EQ(events.size(), 3u);
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.op, TraceOp::kDeclassify);
  }
  EXPECT_EQ(events[0].a, DeclassifySiteHash("site.alpha"));
  EXPECT_EQ(events[1].a, DeclassifySiteHash("site.beta"));
  EXPECT_EQ(events[0].a, events[2].a) << "same site, same trace event";
  EXPECT_NE(events[0].a, events[1].a) << "distinct sites must be attributable";
}

TEST(Declassify, TraceIsValueIndependent) {
  // The audit event reveals the *site*, never the value: declassifying true and false
  // (or different integers) at the same site yields byte-identical traces, which is
  // what lets obliviousness_test compare whole-epoch digests across secret workloads.
  auto run = [](uint64_t secret) {
    TraceScope scope;
    (SecretU64(secret) < SecretU64(100)).Declassify("site.gamma");
    SecretU64(secret).Declassify("site.delta");
    return scope.Digest();
  };
  EXPECT_EQ(run(7), run(99999));
}

TEST(Poison, BackendIsReportedAndCountersAccount) {
  const std::string backend = PoisonBackend();
#if defined(SNOOPY_CT_CHECK)
  EXPECT_NE(backend, "off");
#else
  EXPECT_EQ(backend, "off");
#endif
  ResetPoisonCounters();
  std::array<uint8_t, 32> buf{};
  PoisonSecret(buf.data(), buf.size());
  UnpoisonSecret(buf.data(), buf.size());
  if (backend == "accounting") {
    EXPECT_EQ(PoisonCallCount(), 1u);
    EXPECT_EQ(UnpoisonCallCount(), 1u);
    // Every Declassify un-poisons: the audit trail and the dynamic harness agree on
    // where taint leaves the system.
    SecretU64(5).Declassify("test.poison");
    EXPECT_EQ(UnpoisonCallCount(), 2u);
  } else {
    // MSan/Valgrind backends (or off): the accounting counters stay untouched.
    EXPECT_EQ(PoisonCallCount(), backend == "accounting" ? 1u : 0u);
  }
  ResetPoisonCounters();
}

TEST(Poison, FillIsDeterministicPerSeedAndTag) {
  std::array<uint8_t, 29> a{};
  std::array<uint8_t, 29> b{};
  SetPoisonFillSeed(42);
  PoisonFill(a.data(), a.size(), /*tag=*/1);
  SetPoisonFillSeed(42);
  PoisonFill(b.data(), b.size(), /*tag=*/1);
  EXPECT_EQ(a, b) << "same seed and tag must reproduce the same secret";

  SetPoisonFillSeed(42);
  PoisonFill(b.data(), b.size(), /*tag=*/2);
  EXPECT_NE(a, b) << "different tags must yield different secrets";

  SetPoisonFillSeed(43);
  PoisonFill(b.data(), b.size(), /*tag=*/1);
  EXPECT_NE(a, b) << "different seeds must yield different secrets";
  ResetPoisonCounters();
}

}  // namespace
}  // namespace snoopy
