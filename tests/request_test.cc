#include "src/core/request.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "src/core/snoopy.h"
#include "src/crypto/rng.h"

namespace snoopy {
namespace {

TEST(RequestBatch, SerializeDeserializeRoundTrip) {
  RequestBatch batch(24);
  Rng rng(1);
  for (int i = 0; i < 17; ++i) {
    RequestHeader h;
    h.key = rng.Next64() >> 1;
    h.op = static_cast<uint8_t>(i % 2);
    h.client_id = static_cast<uint64_t>(i);
    h.client_seq = static_cast<uint64_t>(i * 10);
    std::vector<uint8_t> value(24);
    rng.Fill(value.data(), value.size());
    batch.Append(h, value);
  }
  const std::vector<uint8_t> wire = batch.Serialize();
  RequestBatch copy = RequestBatch::Deserialize(wire);
  ASSERT_EQ(copy.size(), batch.size());
  ASSERT_EQ(copy.value_size(), batch.value_size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(copy.Header(i).key, batch.Header(i).key);
    EXPECT_EQ(copy.Header(i).client_seq, batch.Header(i).client_seq);
    EXPECT_EQ(0, std::memcmp(copy.Value(i), batch.Value(i), 24));
  }
}

TEST(RequestBatch, EmptySerializeRoundTrip) {
  RequestBatch batch(160);
  RequestBatch copy = RequestBatch::Deserialize(batch.Serialize());
  EXPECT_EQ(copy.size(), 0u);
  EXPECT_EQ(copy.value_size(), 160u);
}

TEST(RequestBatch, ValueTruncationOnAppend) {
  RequestBatch batch(8);
  RequestHeader h;
  std::vector<uint8_t> big(20, 0xAA);
  batch.Append(h, big);  // larger than value_size: truncated, no overflow
  EXPECT_EQ(batch.Value(0)[7], 0xAA);
}

TEST(RequestHeader, FieldOffsetsMatchSchemas) {
  // The oblivious routines address fields by byte offset; a layout change must break
  // loudly here rather than silently corrupt batches.
  EXPECT_EQ(offsetof(RequestHeader, key), kRequestOhtSchema.key_offset);
  EXPECT_EQ(offsetof(RequestHeader, bin), kRequestBinSchema.bin_offset);
  EXPECT_EQ(offsetof(RequestHeader, dummy), kRequestBinSchema.dummy_offset);
  EXPECT_EQ(offsetof(RequestHeader, order), kRequestBinSchema.order_offset);
  EXPECT_EQ(offsetof(RequestHeader, dedup), kRequestBinSchema.dedup_offset);
  EXPECT_EQ(sizeof(RequestHeader), RequestBatch::kHeaderBytes);
}

TEST(ObliviousInit, MatchesPlainInitBehaviour) {
  // Both initialization paths must produce identical stores: every key readable with
  // its value, partitioned to the same subORAMs.
  for (const bool oblivious : {false, true}) {
    SnoopyConfig cfg;
    cfg.num_suborams = 3;
    cfg.value_size = 16;
    cfg.lambda = 40;
    cfg.oblivious_init = oblivious;
    auto store = std::make_unique<Snoopy>(cfg, /*seed=*/42);  // same seed: same hash key
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
    for (uint64_t k = 0; k < 200; ++k) {
      objects.emplace_back(k, std::vector<uint8_t>(16, static_cast<uint8_t>(k)));
    }
    store->Initialize(objects);
    for (uint64_t k = 0; k < 200; k += 17) {
      store->SubmitRead(1, k, k);
    }
    for (const ClientResponse& resp : store->RunEpoch()) {
      EXPECT_EQ(resp.value, std::vector<uint8_t>(16, static_cast<uint8_t>(resp.key)))
          << "oblivious=" << oblivious << " key=" << resp.key;
    }
  }
}

}  // namespace
}  // namespace snoopy
