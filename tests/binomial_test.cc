#include "src/analysis/binomial.h"

#include <gtest/gtest.h>

#include <cmath>

namespace snoopy {
namespace {

TEST(LogBinomialPmf, SumsToOne) {
  for (const auto& [n, p] : std::vector<std::pair<uint64_t, double>>{
           {10, 0.5}, {100, 0.1}, {1000, 0.01}, {4096, 1.0 / 256}}) {
    double sum = 0.0;
    for (uint64_t k = 0; k <= n; ++k) {
      const double lp = LogBinomialPmf(n, p, k);
      if (lp > -700) {
        sum += std::exp(lp);
      }
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "n=" << n << " p=" << p;
  }
}

TEST(LogBinomialPmf, DegenerateProbabilities) {
  EXPECT_NEAR(LogBinomialPmf(10, 0.0, 0), 0.0, 1e-12);
  EXPECT_LT(LogBinomialPmf(10, 0.0, 1), -1e100);
  EXPECT_NEAR(LogBinomialPmf(10, 1.0, 10), 0.0, 1e-12);
  EXPECT_LT(LogBinomialPmf(10, 1.0, 3), -1e100);
  EXPECT_LT(LogBinomialPmf(10, 0.5, 11), -1e100);  // k > n
}

TEST(BinomialTailAbove, MatchesDirectSummation) {
  const uint64_t n = 100;
  const double p = 0.3;
  for (uint64_t k : {0ull, 10ull, 30ull, 50ull, 99ull, 100ull}) {
    double direct = 0.0;
    for (uint64_t j = k + 1; j <= n; ++j) {
      direct += std::exp(LogBinomialPmf(n, p, j));
    }
    EXPECT_NEAR(BinomialTailAbove(n, p, k), direct, 1e-9);
  }
}

TEST(BinomialTailAbove, MonotoneDecreasingInThreshold) {
  double prev = 1.1;
  for (uint64_t k = 0; k <= 64; k += 4) {
    const double t = BinomialTailAbove(4096, 1.0 / 256, k);
    EXPECT_LE(t, prev);
    prev = t;
  }
}

TEST(ExpectedExcess, ZeroCapacityIsMean) {
  // E[(X - 0)^+] = E[X] = n p.
  EXPECT_NEAR(ExpectedExcess(1000, 0.01, 0), 10.0, 1e-6);
}

TEST(ExpectedExcess, DecreasesWithCapacity) {
  double prev = 1e18;
  for (uint64_t z = 0; z < 40; z += 4) {
    const double e = ExpectedExcess(4096, 1.0 / 256, z);
    EXPECT_LT(e, prev);
    prev = e;
  }
  EXPECT_LT(ExpectedExcess(4096, 1.0 / 256, 64), 1e-6);
}

TEST(OverflowBound, BasicShape) {
  EXPECT_EQ(OverflowBound(0, 16, 4, 128), 0u);
  // Bound never exceeds n.
  EXPECT_LE(OverflowBound(4096, 1024, 4, 128), 4096u);
  // Larger capacity -> smaller bound.
  const uint64_t loose = OverflowBound(4096, 1024, 2, 128);
  const uint64_t tight = OverflowBound(4096, 1024, 16, 128);
  EXPECT_LE(tight, loose);
  // The McDiarmid slack term alone: sqrt(n * lambda * ln2 / 2).
  const double slack = std::sqrt(4096.0 * 128.0 * M_LN2 / 2.0);
  EXPECT_GE(OverflowBound(4096, 1024, 64, 128), static_cast<uint64_t>(slack));
}

}  // namespace
}  // namespace snoopy
