#include "src/obl/compaction.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/crypto/rng.h"
#include "src/enclave/trace.h"

namespace snoopy {
namespace {

// Builds a slab of n records: first 8 bytes hold the record id, rest is id-derived.
ByteSlab MakeSlab(size_t n, size_t stride = 24) {
  ByteSlab slab(n, stride);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t id = i;
    std::memcpy(slab.Record(i), &id, 8);
    std::memset(slab.Record(i) + 8, static_cast<int>(i % 251), stride - 8);
  }
  return slab;
}

uint64_t IdOf(const ByteSlab& slab, size_t i) {
  uint64_t id;
  std::memcpy(&id, slab.Record(i), 8);
  return id;
}

void CheckCompaction(size_t (*compact)(ByteSlab&, std::span<uint8_t>), size_t n,
                     uint64_t seed, double keep_prob) {
  Rng rng(seed);
  ByteSlab slab = MakeSlab(n);
  std::vector<uint8_t> flags(n);
  std::vector<uint64_t> expected;
  for (size_t i = 0; i < n; ++i) {
    flags[i] = static_cast<uint8_t>(rng.Uniform(1000) < keep_prob * 1000);
    if (flags[i]) {
      expected.push_back(i);
    }
  }
  const size_t kept = compact(slab, std::span<uint8_t>(flags.data(), flags.size()));
  ASSERT_EQ(kept, expected.size()) << "n=" << n << " seed=" << seed;
  for (size_t i = 0; i < kept; ++i) {
    ASSERT_EQ(IdOf(slab, i), expected[i]) << "n=" << n << " i=" << i << " (order violated)";
    ASSERT_EQ(flags[i], 1) << "flags must travel with records";
    // Payload must have moved with the record.
    ASSERT_EQ(slab.Record(i)[9], static_cast<uint8_t>(expected[i] % 251));
  }
}

class CompactionSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(CompactionSizes, GoodrichMatchesStablePartition) {
  const size_t n = GetParam();
  for (const double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    CheckCompaction(&GoodrichCompact, n, n * 13 + static_cast<uint64_t>(p * 100), p);
  }
}

TEST_P(CompactionSizes, SortCompactMatchesStablePartition) {
  const size_t n = GetParam();
  for (const double p : {0.0, 0.3, 0.7, 1.0}) {
    CheckCompaction(&SortCompact, n, n * 17 + static_cast<uint64_t>(p * 100), p);
  }
}

INSTANTIATE_TEST_SUITE_P(ArbitrarySizes, CompactionSizes,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33,
                                           63, 64, 65, 100, 127, 128, 129, 255, 256, 500,
                                           1000, 1023, 1024, 1025));

TEST(GoodrichCompact, ExhaustiveSmallCases) {
  // Every flag pattern up to n = 10: 2^10 cases per size.
  for (size_t n = 1; n <= 10; ++n) {
    for (uint32_t pattern = 0; pattern < (1u << n); ++pattern) {
      ByteSlab slab = MakeSlab(n);
      std::vector<uint8_t> flags(n);
      std::vector<uint64_t> expected;
      for (size_t i = 0; i < n; ++i) {
        flags[i] = (pattern >> i) & 1;
        if (flags[i]) {
          expected.push_back(i);
        }
      }
      const size_t kept = GoodrichCompact(slab, std::span<uint8_t>(flags.data(), flags.size()));
      ASSERT_EQ(kept, expected.size());
      for (size_t i = 0; i < kept; ++i) {
        ASSERT_EQ(IdOf(slab, i), expected[i])
            << "n=" << n << " pattern=" << pattern << " i=" << i;
      }
    }
  }
}

TEST(Compaction, AccessPatternIndependentOfFlags) {
  // Two different secret flag vectors of the same length must produce identical traces.
  auto trace_for = [](uint32_t pattern) {
    ByteSlab slab = MakeSlab(64);
    std::vector<uint8_t> flags(64);
    for (size_t i = 0; i < 64; ++i) {
      flags[i] = static_cast<uint8_t>((pattern >> (i % 32)) & 1);
    }
    TraceScope scope;
    GoodrichCompact(slab, std::span<uint8_t>(flags.data(), flags.size()));
    return scope.Digest();
  };
  EXPECT_EQ(trace_for(0x0), trace_for(0xffffffff));
  EXPECT_EQ(trace_for(0x12345678), trace_for(0xdeadbeef));
}

TEST(Compaction, GoodrichAndSortAgreeOnRandomInputs) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.Uniform(400);
    ByteSlab a = MakeSlab(n);
    ByteSlab b = MakeSlab(n);
    std::vector<uint8_t> fa(n);
    std::vector<uint8_t> fb(n);
    for (size_t i = 0; i < n; ++i) {
      fa[i] = fb[i] = static_cast<uint8_t>(rng.Uniform(2));
    }
    const size_t ka = GoodrichCompact(a, std::span<uint8_t>(fa.data(), n));
    const size_t kb = SortCompact(b, std::span<uint8_t>(fb.data(), n));
    ASSERT_EQ(ka, kb);
    for (size_t i = 0; i < ka; ++i) {
      ASSERT_EQ(IdOf(a, i), IdOf(b, i)) << "trial=" << trial << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace snoopy
