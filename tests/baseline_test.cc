#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "src/baseline/obladi.h"
#include "src/baseline/oblix.h"
#include "src/baseline/plaintext_store.h"
#include "src/crypto/rng.h"

namespace snoopy {
namespace {

std::vector<uint8_t> Val(uint64_t tag, size_t size = 32) {
  std::vector<uint8_t> v(size, 0);
  std::memcpy(v.data(), &tag, 8);
  return v;
}

std::vector<std::pair<uint64_t, std::vector<uint8_t>>> Objects(uint64_t n) {
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < n; ++k) {
    objects.emplace_back(k * 3, Val(k * 3));  // sparse keys
  }
  return objects;
}

// ------------------------------------------------------------------------------ Oblix

TEST(Oblix, ReadsAndWrites) {
  OblixStore store(256, 32, 1);
  store.Initialize(Objects(100));
  EXPECT_EQ(store.Read(9), Val(9));
  store.Write(9, Val(999));
  EXPECT_EQ(store.Read(9), Val(999));
  EXPECT_EQ(store.Read(5000), std::vector<uint8_t>(32, 0)) << "absent key reads null";
  EXPECT_GT(store.recursion_depth(), 1u);
}

TEST(Oblix, RandomizedAgainstReferenceMap) {
  OblixStore store(512, 32, 2);
  store.Initialize(Objects(200));
  Rng rng(3);
  std::map<uint64_t, std::vector<uint8_t>> model;
  for (uint64_t k = 0; k < 200; ++k) {
    model[k * 3] = Val(k * 3);
  }
  for (int i = 0; i < 500; ++i) {
    const uint64_t key = rng.Uniform(200) * 3;
    if (rng.Uniform(2) == 0) {
      ASSERT_EQ(store.Read(key), model[key]) << "i=" << i;
    } else {
      auto v = Val(rng.Next64());
      store.Write(key, v);
      model[key] = v;
    }
  }
}

TEST(Oblix, RejectsDuplicateInit) {
  OblixStore store(16, 32, 4);
  EXPECT_THROW(store.Initialize({{1, Val(1)}, {1, Val(2)}}), std::invalid_argument);
}

// ----------------------------------------------------------------------------- Obladi

TEST(Obladi, BatchedExecutionMatchesSemantics) {
  ObladiConfig cfg;
  cfg.capacity = 256;
  cfg.value_size = 32;
  cfg.batch_size = 4;
  ObladiProxy proxy(cfg, 5);
  proxy.Initialize(Objects(50));

  proxy.Submit({/*seq=*/1, /*key=*/3, /*write=*/false, {}});
  proxy.Submit({2, 3, true, Val(1000)});
  proxy.Submit({3, 3, false, {}});
  proxy.Submit({4, 6, false, {}});
  auto responses = proxy.ExecuteBatches();
  ASSERT_EQ(responses.size(), 4u);
  std::map<uint64_t, std::vector<uint8_t>> by_seq;
  for (const auto& r : responses) {
    by_seq[r.client_seq] = r.value;
  }
  // Delayed visibility: all reads in the batch see the pre-batch state.
  EXPECT_EQ(by_seq[1], Val(3));
  EXPECT_EQ(by_seq[3], Val(3));
  EXPECT_EQ(by_seq[4], Val(6));

  // The write applied at batch end.
  proxy.Submit({5, 3, false, {}});
  auto r2 = proxy.ExecuteBatches();
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2[0].value, Val(1000));
}

TEST(Obladi, DeduplicationSavesOramAccesses) {
  ObladiConfig cfg;
  cfg.capacity = 128;
  cfg.value_size = 32;
  cfg.batch_size = 100;
  ObladiProxy proxy(cfg, 6);
  proxy.Initialize(Objects(10));
  const uint64_t before = proxy.oram_accesses();
  for (uint64_t i = 0; i < 100; ++i) {
    proxy.Submit({i, /*key=*/3, false, {}});  // 100 requests, one object
  }
  auto responses = proxy.ExecuteBatches();
  EXPECT_EQ(responses.size(), 100u);
  EXPECT_EQ(proxy.oram_accesses() - before, 1u) << "one ORAM read serves all duplicates";
}

TEST(Obladi, LastWriteWinsWithinBatch) {
  ObladiConfig cfg;
  cfg.capacity = 64;
  cfg.value_size = 32;
  cfg.batch_size = 3;
  ObladiProxy proxy(cfg, 7);
  proxy.Initialize(Objects(5));
  proxy.Submit({1, 3, true, Val(10)});
  proxy.Submit({2, 3, true, Val(20)});
  proxy.Submit({3, 3, true, Val(30)});
  proxy.ExecuteBatches();
  proxy.Submit({4, 3, false, {}});
  auto r = proxy.ExecuteBatches();
  EXPECT_EQ(r[0].value, Val(30));
}

TEST(Obladi, PartialBatchesOnlyOnFlush) {
  ObladiConfig cfg;
  cfg.capacity = 64;
  cfg.value_size = 32;
  cfg.batch_size = 10;
  ObladiProxy proxy(cfg, 8);
  proxy.Initialize(Objects(5));
  proxy.Submit({1, 3, false, {}});
  EXPECT_TRUE(proxy.ExecuteBatches(/*flush=*/false).empty());
  EXPECT_EQ(proxy.ExecuteBatches(/*flush=*/true).size(), 1u);
}

// -------------------------------------------------------------------------- Plaintext

TEST(PlaintextStore, BasicOperationsAndLeakage) {
  PlaintextStore store(4, 32);
  store.Initialize(Objects(100));
  EXPECT_EQ(store.Read(30), Val(30));
  store.Write(30, Val(7));
  EXPECT_EQ(store.Read(30), Val(7));
  EXPECT_EQ(store.Read(99999), std::vector<uint8_t>(32, 0));

  // The leakage that motivates Snoopy: shard access counts reveal the workload.
  PlaintextStore skewed(4, 32);
  skewed.Initialize(Objects(100));
  for (int i = 0; i < 50; ++i) {
    skewed.Read(30);
  }
  uint64_t hot = 0;
  for (const uint64_t c : skewed.shard_accesses()) {
    hot = c > hot ? c : hot;
  }
  EXPECT_EQ(hot, 50u) << "a skewed plaintext workload is fully visible per shard";
}

}  // namespace
}  // namespace snoopy
