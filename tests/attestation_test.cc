#include "src/enclave/attestation.h"

#include <gtest/gtest.h>

#include "src/enclave/enclave.h"

namespace snoopy {
namespace {

TEST(Attestation, QuoteVerifies) {
  const Measurement m = AttestationService::Measure("snoopy-suboram-v1");
  Mac256 report{};
  report[0] = 42;
  const AttestationQuote quote = AttestationService::Quote(m, report);
  EXPECT_TRUE(AttestationService::Verify(quote));
}

TEST(Attestation, TamperedQuoteFails) {
  const Measurement m = AttestationService::Measure("snoopy-suboram-v1");
  AttestationQuote quote = AttestationService::Quote(m, Mac256{});
  quote.measurement[0] ^= 1;
  EXPECT_FALSE(AttestationService::Verify(quote));
  quote.measurement[0] ^= 1;
  quote.signature[5] ^= 1;
  EXPECT_FALSE(AttestationService::Verify(quote));
  quote.signature[5] ^= 1;
  quote.report_data[0] ^= 1;
  EXPECT_FALSE(AttestationService::Verify(quote));
}

TEST(Attestation, ChannelKeyIsSymmetric) {
  const Measurement a = AttestationService::Measure("snoopy-lb");
  const Measurement b = AttestationService::Measure("snoopy-suboram");
  EXPECT_EQ(AttestationService::ChannelKey(a, b), AttestationService::ChannelKey(b, a));
  const Measurement c = AttestationService::Measure("snoopy-client");
  EXPECT_NE(AttestationService::ChannelKey(a, b), AttestationService::ChannelKey(a, c));
}

TEST(Enclave, EstablishChannelAgreesAcrossPeers) {
  const Enclave lb("snoopy-lb-v1", 0);
  const Enclave so("snoopy-suboram-v1", 1);
  const Aead::Key k1 = lb.EstablishChannel(so.quote());
  const Aead::Key k2 = so.EstablishChannel(lb.quote());
  EXPECT_EQ(k1, k2);
}

TEST(Enclave, RejectsForgedPeer) {
  const Enclave lb("snoopy-lb-v1", 0);
  AttestationQuote forged = Enclave("snoopy-suboram-v1", 1).quote();
  forged.measurement[3] ^= 0xff;  // forged program hash, stale signature
  EXPECT_THROW(lb.EstablishChannel(forged), std::runtime_error);
}

}  // namespace
}  // namespace snoopy
