#include "src/oram/ring_oram.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "src/crypto/rng.h"

namespace snoopy {
namespace {

std::vector<uint8_t> Val(uint64_t tag, size_t size = 32) {
  std::vector<uint8_t> v(size, 0);
  std::memcpy(v.data(), &tag, 8);
  return v;
}

class RingOramSizes : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RingOramSizes, RandomWorkloadMatchesReferenceMap) {
  const uint64_t n = GetParam();
  RingOramConfig cfg;
  cfg.num_blocks = n;
  cfg.block_size = 32;
  RingOram oram(cfg, n + 11);
  Rng rng(n + 12);
  std::map<uint64_t, std::vector<uint8_t>> model;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t addr = rng.Uniform(n);
    if (rng.Uniform(2) == 0) {
      const auto expected =
          model.count(addr) != 0 ? model[addr] : std::vector<uint8_t>(32, 0);
      ASSERT_EQ(oram.Read(addr), expected) << "n=" << n << " i=" << i;
    } else {
      auto v = Val(rng.Next64());
      oram.Write(addr, v);
      model[addr] = v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingOramSizes, ::testing::Values(1, 2, 5, 16, 100, 1024));

TEST(RingOram, StashStaysBounded) {
  RingOramConfig cfg;
  cfg.num_blocks = 1024;
  cfg.block_size = 16;
  RingOram oram(cfg, 21);
  Rng rng(22);
  for (int i = 0; i < 30000; ++i) {
    oram.Write(rng.Uniform(1024), Val(i, 16));
  }
  EXPECT_LT(oram.max_stash_seen(), 200u);
}

TEST(RingOram, OnlineBandwidthIsOneSlotPerLevel) {
  RingOramConfig cfg;
  cfg.num_blocks = 1024;
  cfg.block_size = 16;
  cfg.evict_rate = 1u << 30;  // suppress evictions to isolate read cost
  RingOram oram(cfg, 5);
  const uint64_t before = oram.slots_read();
  oram.Read(7);
  EXPECT_EQ(oram.slots_read() - before, oram.tree_levels())
      << "Ring ORAM reads exactly one slot per bucket on the path";
}

TEST(RingOram, EvictionsHappenEveryARounds) {
  RingOramConfig cfg;
  cfg.num_blocks = 256;
  cfg.block_size = 16;
  cfg.evict_rate = 3;
  RingOram oram(cfg, 6);
  for (int i = 0; i < 30; ++i) {
    oram.Read(static_cast<uint64_t>(i % 256));
  }
  EXPECT_EQ(oram.evictions(), 10u);
}

TEST(RingOram, SurvivesDummyExhaustionViaReshuffle) {
  // Hammer one block so its path's buckets run out of dummies; early reshuffles must
  // keep the structure serviceable and correct.
  RingOramConfig cfg;
  cfg.num_blocks = 64;
  cfg.block_size = 16;
  cfg.s = 2;  // tiny dummy budget to force reshuffles
  RingOram oram(cfg, 7);
  oram.Write(5, Val(99, 16));
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(oram.Read(5), Val(99, 16)) << "i=" << i;
  }
  EXPECT_GT(oram.early_reshuffles(), 0u);
}

TEST(RingOram, RejectsBadConfigs) {
  RingOramConfig cfg;
  cfg.num_blocks = 0;
  EXPECT_THROW(RingOram(cfg, 1), std::invalid_argument);
  cfg.num_blocks = 4;
  RingOram ok(cfg, 1);
  EXPECT_THROW(ok.Read(4), std::out_of_range);
}

}  // namespace
}  // namespace snoopy
