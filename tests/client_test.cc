#include "src/core/client.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>

namespace snoopy {
namespace {

constexpr size_t kValueSize = 32;

std::vector<uint8_t> ValueFor(uint64_t key, uint8_t version = 0) {
  std::vector<uint8_t> v(kValueSize, 0);
  std::memcpy(v.data(), &key, 8);
  v[8] = version;
  return v;
}

std::unique_ptr<Snoopy> MakeDeployment(uint32_t lbs, uint32_t sos) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = lbs;
  cfg.num_suborams = sos;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  auto store = std::make_unique<Snoopy>(cfg, 8);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 80; ++k) {
    objects.emplace_back(k, ValueFor(k));
  }
  store->Initialize(objects);
  return store;
}

TEST(SnoopyClient, EncryptedRoundTrip) {
  auto store = MakeDeployment(2, 2);
  SnoopyClient alice(*store, /*client_id=*/100, /*seed=*/1);
  const uint64_t s1 = alice.Read(7);
  const uint64_t s2 = alice.Write(9, ValueFor(9, 3));
  EXPECT_TRUE(alice.FetchResponses().empty()) << "nothing before the epoch executes";

  EXPECT_TRUE(store->RunEpoch().empty()) << "registered clients' responses go sealed";
  std::map<uint64_t, std::vector<uint8_t>> by_seq;
  for (const auto& resp : alice.FetchResponses()) {
    by_seq[resp.client_seq] = resp.value;
  }
  ASSERT_EQ(by_seq.size(), 2u);
  EXPECT_EQ(by_seq[s1], ValueFor(7));
  EXPECT_EQ(by_seq[s2], ValueFor(9)) << "write returns pre-state";

  // Next epoch sees the write.
  const uint64_t s3 = alice.Read(9);
  store->RunEpoch();
  const auto resp = alice.FetchResponses();
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].client_seq, s3);
  EXPECT_EQ(resp[0].value, ValueFor(9, 3));
}

TEST(SnoopyClient, MultipleClientsGetTheirOwnMail) {
  auto store = MakeDeployment(2, 3);
  SnoopyClient alice(*store, 1, 1);
  SnoopyClient bob(*store, 2, 2);
  alice.Read(10);
  bob.Read(20);
  bob.Read(10);  // same object as Alice: dedup inside the balancer if co-located
  store->RunEpoch();
  const auto a = alice.FetchResponses();
  const auto b = bob.FetchResponses();
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(a[0].value, ValueFor(10));
  for (const auto& resp : b) {
    EXPECT_EQ(resp.value, ValueFor(resp.key));
  }
  EXPECT_TRUE(alice.FetchResponses().empty()) << "mailbox drains on fetch";
}

TEST(SnoopyClient, DuplicateRegistrationRejected) {
  auto store = MakeDeployment(1, 1);
  SnoopyClient alice(*store, 5, 1);
  EXPECT_THROW(SnoopyClient(*store, 5, 2), std::invalid_argument);
}

TEST(SnoopyClient, UnregisteredSubmissionsStillReturnPlainly) {
  // Mixing the low-level Submit* API (tests, embedding) with registered clients.
  auto store = MakeDeployment(1, 2);
  SnoopyClient alice(*store, 100, 1);
  alice.Read(3);
  store->SubmitRead(/*client_id=*/999, /*client_seq=*/0, /*key=*/4);  // unregistered
  const auto plain = store->RunEpoch();
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_EQ(plain[0].client_id, 999u);
  EXPECT_EQ(plain[0].value, ValueFor(4));
  ASSERT_EQ(alice.FetchResponses().size(), 1u);
}

}  // namespace
}  // namespace snoopy
