// Leakage-safe epoch-pipeline tracing (src/telemetry/tracing.h).
//
// The properties that carry the observability design are pinned here:
//   1. Secrets are unrecordable at compile time: the deleted Secret<T>/SecretBool
//      span and argument overloads are pinned with a detection idiom.
//   2. Tracing changes nothing the adversary sees: a tracing-on and a tracing-off
//      run of the same seeded workload produce byte-identical enclave traces and
//      identical client responses.
//   3. Span sequences are deterministic: per-task ring buffers merged in public
//      task-id order make the (cat, name, task_id) sequence invariant under
//      epoch_threads, even though wall-clock durations vary.
//   4. The pool profile and background sampler are safe to run concurrently with
//      span-recording workers (exercised under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/core/snoopy.h"
#include "src/enclave/trace.h"
#include "src/net/retry.h"
#include "src/obl/secret.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/tracing.h"

namespace snoopy {
namespace {

// ---------------------------------------------------------------------------------
// 1. Compile-time unrecordability: the deleted overloads must stay deleted. The
// detection idiom (not a plain static_assert on is_constructible alone) pins the
// plain-typed calls as well, so the guard cannot rot into "nothing compiles".
// ---------------------------------------------------------------------------------

template <typename Id, typename = void>
struct CanOpenSpanWith : std::false_type {};
template <typename Id>
struct CanOpenSpanWith<Id, std::void_t<decltype(TraceSpan(
                               std::declval<Tracer*>(), "cat", "name", std::declval<Id>()))>>
    : std::true_type {};

template <typename V, typename = void>
struct CanSetArgWith : std::false_type {};
template <typename V>
struct CanSetArgWith<V, std::void_t<decltype(std::declval<TraceSpan&>().SetArg(
                            "arg", std::declval<V>()))>> : std::true_type {};

static_assert(CanOpenSpanWith<uint64_t>::value);
static_assert(CanOpenSpanWith<int>::value);
static_assert(!CanOpenSpanWith<Secret<uint64_t>>::value,
              "TraceSpan with a Secret task id must be a compile error");
static_assert(!CanOpenSpanWith<SecretBool>::value);

static_assert(CanSetArgWith<uint64_t>::value);
static_assert(CanSetArgWith<uint32_t>::value);
static_assert(!CanSetArgWith<Secret<uint64_t>>::value,
              "TraceSpan::SetArg(Secret<T>) must be a compile error");
static_assert(!CanSetArgWith<Secret<uint32_t>>::value);
static_assert(!CanSetArgWith<SecretBool>::value);

// ---------------------------------------------------------------------------------
// Ring buffer mechanics.
// ---------------------------------------------------------------------------------

SpanEvent MakeSpan(const char* name, uint64_t task_id, double start_s, double end_s) {
  SpanEvent e;
  e.cat = "test";
  e.name = name;
  e.task_id = task_id;
  e.start_s = start_s;
  e.end_s = end_s;
  return e;
}

TEST(SpanRingBuffer, PushOverflowAndClear) {
  SpanRingBuffer ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.Push(MakeSpan("a", i, i, i + 0.5)));
  }
  EXPECT_EQ(ring.size(), 4u);
  // Full: further pushes drop (never overwrite) and count.
  EXPECT_FALSE(ring.Push(MakeSpan("b", 9, 9, 9.5)));
  EXPECT_FALSE(ring.Push(MakeSpan("b", 10, 10, 10.5)));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 2u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.at(i).task_id, i);
    EXPECT_STREQ(ring.at(i).name, "a");
  }
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.Push(MakeSpan("c", 1, 1, 2)));
  EXPECT_EQ(ring.size(), 1u);
}

// ---------------------------------------------------------------------------------
// Span recording against a deterministic clock.
// ---------------------------------------------------------------------------------

TEST(TraceSpan, RecordsVirtualClockDrivenSpans) {
  VirtualClock clock;
  Tracer tracer;
  tracer.set_clock([&clock] { return clock.now_s(); });
  tracer.Enable(1);

  {
    TraceSpan outer(&tracer, "phase", "lb_prepare", 7);
    outer.SetArg("requests", 30);
    clock.Advance(1.5);
    {
      TraceSpan inner(&tracer, "task", "lb_prepare", 0, /*track=*/1);
      clock.Advance(0.25);
    }  // inner records first (RAII close order)
    clock.Advance(0.25);
  }
  const std::vector<SpanEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "lb_prepare");
  EXPECT_STREQ(events[0].cat, "task");
  EXPECT_EQ(events[0].start_s, 1.5);
  EXPECT_EQ(events[0].end_s, 1.75);
  EXPECT_EQ(events[0].track, 1u);
  EXPECT_STREQ(events[1].cat, "phase");
  EXPECT_EQ(events[1].task_id, 7u);
  EXPECT_EQ(events[1].start_s, 0.0);
  EXPECT_EQ(events[1].end_s, 2.0);
  ASSERT_STREQ(events[1].arg_names[0], "requests");
  EXPECT_EQ(events[1].arg_values[0], 30u);
  EXPECT_EQ(tracer.spans_recorded(), 2u);
  EXPECT_EQ(tracer.spans_dropped(), 0u);
}

TEST(TraceSpan, NullOrDisabledTracerIsInert) {
  Tracer disabled;  // never Enable()d
  {
    TraceSpan a(nullptr, "cat", "x");
    TraceSpan b(&disabled, "cat", "y", 3);
    b.SetArg("k", 1);
    EXPECT_FALSE(a.active());
    EXPECT_FALSE(b.active());
    b.End();  // explicit End on an inert span is fine
  }
  EXPECT_EQ(disabled.size(), 0u);
  EXPECT_EQ(disabled.spans_recorded(), 0u);
}

TEST(TraceSpan, EndIsIdempotent) {
  Tracer tracer;
  tracer.Enable(1);
  TraceSpan s(&tracer, "step", "once");
  s.End();
  s.End();
  s.End();
  EXPECT_EQ(tracer.size(), 1u);
}

// ---------------------------------------------------------------------------------
// TLS ring routing: per-task buffering and ordered merges.
// ---------------------------------------------------------------------------------

TEST(TracerThreadBuffer, RoutesSpansToRingAndRestores) {
  Tracer tracer;
  tracer.Enable(1);
  SpanRingBuffer ring(8);
  {
    TracerThreadBuffer install(&ring);
    TraceSpan s(&tracer, "task", "buffered", 1);
    s.End();
    {
      // Null ring keeps the current sink (the conditional-buffering idiom).
      TracerThreadBuffer keep(nullptr);
      TraceSpan t(&tracer, "task", "still_buffered", 2);
      t.End();
    }
    EXPECT_EQ(tracer.size(), 0u);  // nothing hit the shared stream yet
    EXPECT_EQ(ring.size(), 2u);
  }
  // Sink restored: new spans go to the shared stream.
  TraceSpan direct(&tracer, "task", "direct", 3);
  direct.End();
  EXPECT_EQ(tracer.size(), 1u);
  tracer.Append(ring);
  const std::vector<SpanEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "direct");
  EXPECT_STREQ(events[1].name, "buffered");
  EXPECT_STREQ(events[2].name, "still_buffered");
  EXPECT_EQ(tracer.spans_recorded(), 3u);
}

TEST(Tracer, AppendCurrentRespectsEnclosingRing) {
  Tracer tracer;
  tracer.Enable(1);
  SpanRingBuffer child(8);
  child.Push(MakeSpan("child_a", 0, 1, 2));
  child.Push(MakeSpan("child_b", 1, 2, 3));
  SpanRingBuffer parent(8);
  {
    TracerThreadBuffer install(&parent);
    TraceSpan own(&tracer, "task", "parent_own", 5);
    own.End();
    tracer.AppendCurrent(child);  // must land in `parent`, not the shared stream
  }
  EXPECT_EQ(tracer.size(), 0u);
  ASSERT_EQ(parent.size(), 3u);
  EXPECT_STREQ(parent.at(0).name, "parent_own");
  EXPECT_STREQ(parent.at(1).name, "child_a");
  EXPECT_STREQ(parent.at(2).name, "child_b");
  // Without an installed ring the same call appends to the shared stream.
  tracer.AppendCurrent(parent);
  EXPECT_EQ(tracer.size(), 3u);
}

// ---------------------------------------------------------------------------------
// Pool profile export: RecordWorkerPhase metrics and spans.
// ---------------------------------------------------------------------------------

TEST(RecordWorkerPhase, ExportsCountersGaugesAndOrderedSpans) {
  Tracer tracer;
  tracer.Enable(1);
  MetricsRegistry registry;
  std::vector<WorkerPhaseStats> stats(2);
  stats[0].tasks = 3;
  stats[0].steals = 1;
  stats[0].busy_ns = 200'000'000;  // 0.2 s
  stats[0].idle_ns = 100'000'000;  // 0.1 s
  stats[0].max_queue_depth = 4;
  stats[0].start_s = 10.0;
  stats[0].finish_s = 10.4;
  stats[1].tasks = 2;
  stats[1].steals = 0;
  stats[1].busy_ns = 300'000'000;
  stats[1].idle_ns = 0;
  stats[1].max_queue_depth = 3;
  stats[1].start_s = 10.0;
  stats[1].finish_s = 10.5;
  RecordWorkerPhase(&tracer, &registry, "suboram_execute", 2, 10.0, 10.5, stats);

  const MetricLabels labels = {{"phase", "suboram_execute"}};
  EXPECT_EQ(registry.GetCounter("snoopy_pool_phases_total", labels).value(), 1u);
  EXPECT_EQ(registry.GetCounter("snoopy_pool_tasks_total", labels).value(), 5u);
  EXPECT_EQ(registry.GetCounter("snoopy_pool_steals_total", labels).value(), 1u);
  EXPECT_NEAR(registry.GetGauge("snoopy_pool_busy_seconds_total", labels).value(), 0.5,
              1e-9);
  EXPECT_NEAR(registry.GetGauge("snoopy_pool_idle_seconds_total", labels).value(), 0.1,
              1e-9);
  EXPECT_EQ(registry.GetGauge("snoopy_pool_workers", labels).value(), 2.0);
  EXPECT_EQ(registry.GetHistogram("snoopy_pool_worker_busy_seconds", labels).count(), 2.0);
  EXPECT_EQ(registry.GetHistogram("snoopy_pool_queue_depth", labels).count(), 2.0);

  // Spans: worker summaries in worker-id order plus one barrier span covering the
  // whole phase. Sequence (not timing) is the deterministic part.
  const std::vector<SpanEvent> events = tracer.snapshot();
  std::vector<const SpanEvent*> workers;
  const SpanEvent* barrier = nullptr;
  for (const SpanEvent& e : events) {
    ASSERT_STREQ(e.cat, "pool");
    if (std::strcmp(e.name, "barrier") == 0) {
      barrier = &e;
    } else {
      workers.push_back(&e);
    }
  }
  ASSERT_EQ(workers.size(), 2u);
  EXPECT_EQ(workers[0]->task_id, 0u);
  EXPECT_EQ(workers[0]->track, 1u);
  EXPECT_EQ(workers[1]->task_id, 1u);
  EXPECT_EQ(workers[1]->track, 2u);
  ASSERT_NE(barrier, nullptr);
  EXPECT_EQ(barrier->start_s, 10.0);
  EXPECT_EQ(barrier->end_s, 10.5);

  // Null tracer / null registry must be accepted (always-on counters are optional
  // per deployment), on both the name-keyed and the pre-resolved overload.
  RecordWorkerPhase(nullptr, static_cast<MetricsRegistry*>(nullptr),
                    "suboram_execute", 2, 10.0, 10.5, stats);
  RecordWorkerPhase(nullptr, static_cast<const PoolPhaseMetrics*>(nullptr),
                    "suboram_execute", 2, 10.0, 10.5, stats);
}

// ---------------------------------------------------------------------------------
// Whole-pipeline properties: determinism across epoch_threads and trace identity
// with tracing on/off.
// ---------------------------------------------------------------------------------

constexpr size_t kValueSize = 32;
constexpr uint64_t kObjects = 64;

std::vector<uint8_t> Val(uint64_t key, uint8_t version = 0) {
  std::vector<uint8_t> v(kValueSize, 0);
  std::memcpy(v.data(), &key, 8);
  v[8] = version;
  return v;
}

struct TracedRun {
  std::vector<SpanEvent> spans;
  std::vector<TraceEvent> enclave_trace;
  std::map<uint64_t, std::vector<uint8_t>> responses;  // client_seq -> value
};

TracedRun RunTracedWorkload(int epoch_threads, bool tracing_on, uint64_t seed) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = 2;
  cfg.num_suborams = 4;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  cfg.epoch_threads = epoch_threads;
  Snoopy store(cfg, seed);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < kObjects; ++k) {
    objects.emplace_back(k, Val(k));
  }
  store.Initialize(objects);
  Tracer tracer;
  if (tracing_on) {
    tracer.Enable(1);
  }
  store.set_tracer(tracing_on ? &tracer : nullptr);

  TracedRun out;
  uint64_t seq = 1;
  {
    TraceScope scope;
    for (int epoch = 0; epoch < 3; ++epoch) {
      for (uint64_t i = 0; i < 12; ++i) {
        const auto lb = static_cast<uint32_t>(i % cfg.num_load_balancers);
        const uint64_t key = (seed + epoch * 12 + i * 5) % kObjects;
        if (i % 3 == 0) {
          store.SubmitWriteWithLb(lb, lb, seq, key,
                                  Val(key, static_cast<uint8_t>(epoch + 1)));
        } else {
          store.SubmitReadWithLb(lb, lb, seq, key);
        }
        ++seq;
      }
      for (ClientResponse& resp : store.RunEpoch()) {
        out.responses[resp.client_seq] = std::move(resp.value);
      }
    }
    out.enclave_trace = scope.Events();
  }
  out.spans = tracer.snapshot();
  return out;
}

// The schedule-independent skeleton of a span stream: (cat, name, task_id) in
// order, with the per-worker pool summaries dropped (their count is a function of
// the worker count, which is exactly the knob the test varies).
std::vector<std::tuple<std::string, std::string, uint64_t>> SpanSkeleton(
    const std::vector<SpanEvent>& spans) {
  std::vector<std::tuple<std::string, std::string, uint64_t>> out;
  for (const SpanEvent& e : spans) {
    if (std::strcmp(e.cat, "pool") == 0) {
      continue;
    }
    out.emplace_back(e.cat, e.name, e.task_id);
  }
  return out;
}

TEST(TracingDeterminism, SpanSequenceIsThreadCountInvariant) {
  const TracedRun base = RunTracedWorkload(/*epoch_threads=*/1, true, /*seed=*/77);
  const auto base_skeleton = SpanSkeleton(base.spans);
  ASSERT_FALSE(base_skeleton.empty());
  // The stream must hold the full hierarchy: epochs, phases, and per-LB/subORAM
  // tasks (pool summaries checked separately above).
  bool saw_epoch = false, saw_phase = false, saw_task = false;
  for (const auto& [cat, name, id] : base_skeleton) {
    saw_epoch |= cat == "epoch";
    saw_phase |= cat == "phase";
    saw_task |= cat == "task";
  }
  EXPECT_TRUE(saw_epoch);
  EXPECT_TRUE(saw_phase);
  EXPECT_TRUE(saw_task);
  for (const int threads : {2, 4}) {
    const TracedRun run = RunTracedWorkload(threads, true, /*seed=*/77);
    EXPECT_EQ(SpanSkeleton(run.spans), base_skeleton) << "epoch_threads=" << threads;
    EXPECT_EQ(run.responses, base.responses) << "epoch_threads=" << threads;
  }
}

TEST(TracingLeakage, ObliviousTraceIdenticalTracingOnAndOff) {
  for (const int threads : {1, 4}) {
    const TracedRun on = RunTracedWorkload(threads, /*tracing_on=*/true, /*seed=*/91);
    const TracedRun off = RunTracedWorkload(threads, /*tracing_on=*/false, /*seed=*/91);
    EXPECT_TRUE(NonVacuousTraceEq(on.enclave_trace, off.enclave_trace))
        << "epoch_threads=" << threads
        << ": tracing must not perturb the oblivious access trace";
    EXPECT_EQ(on.responses, off.responses) << "epoch_threads=" << threads;
    EXPECT_FALSE(on.spans.empty());
    EXPECT_TRUE(off.spans.empty());
  }
}

// ---------------------------------------------------------------------------------
// Background sampler: concurrent with span recording (TSan coverage in CI).
// ---------------------------------------------------------------------------------

TEST(ProfilingSampler, SamplesConcurrentlyWithSpanRecording) {
  Tracer tracer;
  tracer.Enable(1);
  MetricsRegistry registry;
  ProfilingSampler sampler(&registry, &tracer, /*interval_s=*/0.001);
  sampler.Start();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&tracer, &stop, w] {
      SpanRingBuffer ring(256);
      TracerThreadBuffer install(&ring);
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        TraceSpan s(&tracer, "task", "sampled", i++, 1 + w);
        s.SetArg("worker", static_cast<uint64_t>(w));
        std::this_thread::yield();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) {
    t.join();
  }
  sampler.Stop();
  sampler.Stop();  // idempotent
  EXPECT_GE(sampler.samples(), 1u);
  EXPECT_EQ(registry.GetCounter("snoopy_sampler_samples_total").value(),
            sampler.samples());
  EXPECT_GE(registry.GetGauge("snoopy_sampler_tracer_spans").value(), 0.0);
  EXPECT_GT(tracer.spans_recorded(), 0u);
}

// ---------------------------------------------------------------------------------
// Exporter sanity: the Chrome trace JSON is structurally sound.
// ---------------------------------------------------------------------------------

TEST(ChromeTrace, RenderHoldsEveryRecordedSpan) {
  VirtualClock clock;
  Tracer tracer;
  tracer.set_clock([&clock] { return clock.now_s(); });
  tracer.Enable(1);
  {
    TraceSpan a(&tracer, "phase", "lb_prepare", 0);
    clock.Advance(0.001);
    a.SetArg("requests", 12);
  }
  {
    TraceSpan b(&tracer, "task", "suboram_execute", 3, 2);
    clock.Advance(0.002);
  }
  const std::string json = tracer.RenderChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"lb_prepare\""), std::string::npos);
  EXPECT_NE(json.find("\"suboram_execute\""), std::string::npos);
  EXPECT_NE(json.find("\"requests\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

}  // namespace
}  // namespace snoopy
