#include "src/core/suboram.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <map>
#include <vector>

#include "src/crypto/rng.h"
#include "src/enclave/trace.h"

namespace snoopy {
namespace {

constexpr size_t kValueSize = 32;

std::vector<uint8_t> ValueFor(uint64_t key, uint8_t version = 0) {
  std::vector<uint8_t> v(kValueSize, 0);
  std::memcpy(v.data(), &key, 8);
  v[8] = version;
  return v;
}

SubOram MakeStore(size_t n_objects, uint64_t seed = 1) {
  SubOramConfig cfg;
  cfg.value_size = kValueSize;
  cfg.lambda = 40;
  SubOram so(cfg, seed);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < n_objects; ++k) {
    objects.emplace_back(k, ValueFor(k));
  }
  so.Initialize(objects);
  return so;
}

RequestBatch MakeBatch(const std::vector<std::tuple<uint64_t, uint8_t, std::vector<uint8_t>>>&
                           reqs /* key, op, value */) {
  RequestBatch batch(kValueSize);
  uint64_t seq = 0;
  for (const auto& [key, op, value] : reqs) {
    RequestHeader h;
    h.key = key;
    h.op = op;
    h.client_seq = seq++;
    batch.Append(h, value);
  }
  return batch;
}

std::map<uint64_t, std::vector<uint8_t>> ResponsesByKey(RequestBatch& out) {
  std::map<uint64_t, std::vector<uint8_t>> m;
  for (size_t i = 0; i < out.size(); ++i) {
    m[out.Header(i).key] =
        std::vector<uint8_t>(out.Value(i), out.Value(i) + kValueSize);
  }
  return m;
}

TEST(SubOram, ReadsReturnStoredValues) {
  SubOram so = MakeStore(100);
  RequestBatch batch = MakeBatch({{5, kOpRead, {}}, {42, kOpRead, {}}, {99, kOpRead, {}}});
  RequestBatch out = so.ProcessBatch(std::move(batch));
  ASSERT_EQ(out.size(), 3u);
  auto by_key = ResponsesByKey(out);
  EXPECT_EQ(by_key[5], ValueFor(5));
  EXPECT_EQ(by_key[42], ValueFor(42));
  EXPECT_EQ(by_key[99], ValueFor(99));
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.Header(i).resp, 1);
  }
}

TEST(SubOram, WriteUpdatesStoreAndReturnsPreState) {
  SubOram so = MakeStore(50);
  RequestBatch w = MakeBatch({{7, kOpWrite, ValueFor(7, 9)}});
  RequestBatch out = so.ProcessBatch(std::move(w));
  ASSERT_EQ(out.size(), 1u);
  // The write's response carries the value *before* the write (Appendix C: reads
  // serialize before writes within a batch).
  EXPECT_EQ(ResponsesByKey(out)[7], ValueFor(7, 0));
  // The store itself was updated.
  std::vector<uint8_t> now;
  ASSERT_TRUE(so.DebugRead(7, &now));
  EXPECT_EQ(now, ValueFor(7, 9));
  // A later batch reads the new value.
  RequestBatch r = MakeBatch({{7, kOpRead, {}}});
  RequestBatch out2 = so.ProcessBatch(std::move(r));
  EXPECT_EQ(ResponsesByKey(out2)[7], ValueFor(7, 9));
}

TEST(SubOram, ReadAndWriteInSameBatchReadGetsPreState) {
  SubOram so = MakeStore(50);
  RequestBatch batch = MakeBatch({{3, kOpRead, {}}, {4, kOpWrite, ValueFor(4, 1)}});
  RequestBatch out = so.ProcessBatch(std::move(batch));
  auto by_key = ResponsesByKey(out);
  EXPECT_EQ(by_key[3], ValueFor(3));
  EXPECT_EQ(by_key[4], ValueFor(4, 0));
}

TEST(SubOram, DummyRequestsMatchNothingAndComeBack) {
  SubOram so = MakeStore(20);
  const uint64_t dummy_key = kDummyKeyBase | 12345;
  RequestBatch batch = MakeBatch({{2, kOpRead, {}}, {dummy_key, kOpRead, {}}});
  RequestBatch out = so.ProcessBatch(std::move(batch));
  ASSERT_EQ(out.size(), 2u);
  auto by_key = ResponsesByKey(out);
  EXPECT_EQ(by_key[2], ValueFor(2));
  EXPECT_EQ(by_key[dummy_key], std::vector<uint8_t>(kValueSize, 0));
}

TEST(SubOram, RejectsDuplicateKeys) {
  SubOram so = MakeStore(20);
  RequestBatch batch = MakeBatch({{2, kOpRead, {}}, {2, kOpRead, {}}});
  EXPECT_THROW(so.ProcessBatch(std::move(batch)), std::invalid_argument);
}

TEST(SubOram, DeniedWriteIsDroppedAndDeniedReadReturnsNull) {
  SubOram so = MakeStore(20);
  RequestBatch batch(kValueSize);
  RequestHeader wr;
  wr.key = 5;
  wr.op = kOpWrite;
  wr.granted = 0;
  batch.Append(wr, ValueFor(5, 7));
  RequestHeader rd;
  rd.key = 6;
  rd.op = kOpRead;
  rd.granted = 0;
  rd.client_seq = 1;
  batch.Append(rd, {});
  RequestBatch out = so.ProcessBatch(std::move(batch));
  auto by_key = ResponsesByKey(out);
  EXPECT_EQ(by_key[6], std::vector<uint8_t>(kValueSize, 0));  // denied read: null
  std::vector<uint8_t> v;
  ASSERT_TRUE(so.DebugRead(5, &v));
  EXPECT_EQ(v, ValueFor(5, 0));  // denied write: unchanged
}

TEST(SubOram, RandomizedAgainstReferenceMap) {
  Rng rng(77);
  SubOram so = MakeStore(128, 3);
  std::map<uint64_t, std::vector<uint8_t>> model;
  for (uint64_t k = 0; k < 128; ++k) {
    model[k] = ValueFor(k);
  }
  for (int round = 0; round < 20; ++round) {
    std::vector<std::tuple<uint64_t, uint8_t, std::vector<uint8_t>>> reqs;
    std::map<uint64_t, std::vector<uint8_t>> expected;
    std::map<uint64_t, std::vector<uint8_t>> writes;
    std::vector<uint64_t> used;
    const size_t n = 1 + rng.Uniform(40);
    for (size_t i = 0; i < n; ++i) {
      uint64_t key = rng.Uniform(128);
      bool dup = false;
      for (uint64_t u : used) {
        dup = dup || (u == key);
      }
      if (dup) {
        continue;
      }
      used.push_back(key);
      if (rng.Uniform(2) == 0) {
        reqs.push_back({key, kOpRead, {}});
        expected[key] = model[key];
      } else {
        auto nv = ValueFor(key, static_cast<uint8_t>(round + 1));
        reqs.push_back({key, kOpWrite, nv});
        expected[key] = model[key];  // pre-state comes back
        writes[key] = nv;
      }
    }
    RequestBatch out = so.ProcessBatch(MakeBatch(reqs));
    auto by_key = ResponsesByKey(out);
    for (const auto& [key, want] : expected) {
      ASSERT_EQ(by_key[key], want) << "round=" << round << " key=" << key;
    }
    for (const auto& [key, nv] : writes) {
      model[key] = nv;
    }
  }
}

TEST(SubOram, TraceIndependentOfRequestContents) {
  // Two batches of the same size against the same store, different keys/ops: the
  // memory access trace must be identical (the paper's Definition 2 simulator).
  auto trace_for = [](std::vector<std::tuple<uint64_t, uint8_t, std::vector<uint8_t>>> reqs) {
    SubOram so = MakeStore(64, /*seed=*/9);  // same seed: same table randomness
    RequestBatch batch = MakeBatch(reqs);
    TraceScope scope;
    so.ProcessBatch(std::move(batch));
    return scope.Digest();
  };
  const uint64_t d1 = trace_for({{1, kOpRead, {}}, {2, kOpRead, {}}, {3, kOpRead, {}}});
  const uint64_t d2 = trace_for({{60, kOpWrite, ValueFor(60, 1)},
                                 {5, kOpRead, {}},
                                 {33, kOpWrite, ValueFor(33, 2)}});
  EXPECT_EQ(d1, d2);
}

TEST(SubOram, ParallelScanMatchesSequential) {
  // scan_threads > 1 splits the object range across threads with per-bucket locking
  // (Figure 13b); results must be bit-identical to the sequential scan.
  for (const int threads : {1, 2, 3}) {
    SubOramConfig cfg;
    cfg.value_size = kValueSize;
    cfg.lambda = 40;
    cfg.scan_threads = threads;
    SubOram so(cfg, /*seed=*/7);  // same seed: same per-batch hash keys
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
    for (uint64_t k = 0; k < 2048; ++k) {
      objects.emplace_back(k, ValueFor(k));
    }
    so.Initialize(objects);
    std::vector<std::tuple<uint64_t, uint8_t, std::vector<uint8_t>>> reqs;
    for (uint64_t i = 0; i < 64; ++i) {
      if (i % 3 == 0) {
        reqs.push_back({i * 31 % 2048, kOpWrite, ValueFor(i, 5)});
      } else {
        reqs.push_back({(i * 31 + 1) % 2048, kOpRead, {}});
      }
    }
    RequestBatch out = so.ProcessBatch(MakeBatch(reqs));
    auto by_key = ResponsesByKey(out);
    for (const auto& [key, op, value] : reqs) {
      ASSERT_EQ(by_key[key], ValueFor(key)) << "threads=" << threads << " key=" << key;
    }
    // Writes landed.
    std::vector<uint8_t> v;
    ASSERT_TRUE(so.DebugRead(0, &v));
    EXPECT_EQ(v, ValueFor(0, 5)) << "threads=" << threads;
  }
}

TEST(SubOram, ParallelScanTraceMatchesSequentialPlusMarker) {
  // Regression: the parallel scan used to drop its trace events entirely (workers
  // wrote to nothing), and the old equality checks passed on empty-vs-empty. The
  // parallel trace must now be the sequential trace plus exactly one kParallelScan
  // marker (thread count and object count -- both public) at the scan's start.
  auto trace_for = [](int threads) {
    SubOramConfig cfg;
    cfg.value_size = kValueSize;
    cfg.lambda = 40;
    cfg.scan_threads = threads;
    SubOram so(cfg, /*seed=*/7);  // same seed: same per-batch hash keys
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
    for (uint64_t k = 0; k < 2048; ++k) {
      objects.emplace_back(k, ValueFor(k));
    }
    so.Initialize(objects);
    RequestBatch batch = MakeBatch({{5, kOpRead, {}}, {42, kOpWrite, ValueFor(42, 1)}});
    TraceScope scope;
    so.ProcessBatch(std::move(batch));
    return scope.Events();
  };
  const std::vector<TraceEvent> sequential = trace_for(1);
  std::vector<TraceEvent> parallel = trace_for(3);
  ASSERT_FALSE(sequential.empty());
  size_t markers = 0;
  size_t marker_at = 0;
  for (size_t i = 0; i < parallel.size(); ++i) {
    if (parallel[i].op == TraceOp::kParallelScan) {
      ++markers;
      marker_at = i;
    }
  }
  ASSERT_EQ(markers, 1u) << "expected exactly one parallel-scan marker";
  EXPECT_EQ(parallel[marker_at].a, 3u);     // worker count
  EXPECT_EQ(parallel[marker_at].b, 2048u);  // objects scanned
  parallel.erase(parallel.begin() + static_cast<ptrdiff_t>(marker_at));
  EXPECT_TRUE(NonVacuousTraceEq(sequential, parallel))
      << "parallel scan events diverged from (or dropped relative to) the sequential "
      << "scan";
  // The sequential trace carries no marker.
  for (const TraceEvent& e : sequential) {
    ASSERT_NE(e.op, TraceOp::kParallelScan);
  }
}

TEST(SubOram, EmptyBatchIsFine) {
  SubOram so = MakeStore(10);
  RequestBatch out = so.ProcessBatch(RequestBatch(kValueSize));
  EXPECT_EQ(out.size(), 0u);
}

}  // namespace
}  // namespace snoopy
