#include "src/sim/workload.h"

#include <gtest/gtest.h>

#include <map>

namespace snoopy {
namespace {

TEST(WorkloadGenerator, UniformCoversKeySpace) {
  WorkloadGenerator gen(50, 0.5, 1);
  const auto reqs = gen.Uniform(5000);
  ASSERT_EQ(reqs.size(), 5000u);
  std::map<uint64_t, int> hist;
  int writes = 0;
  for (const auto& r : reqs) {
    ASSERT_LT(r.key, 50u);
    ++hist[r.key];
    writes += r.is_write;
  }
  EXPECT_EQ(hist.size(), 50u) << "every key should appear in 5000 uniform draws";
  EXPECT_GT(writes, 2000);
  EXPECT_LT(writes, 3000);
}

TEST(WorkloadGenerator, ZipfianIsSkewed) {
  WorkloadGenerator gen(1000, 0.0, 2);
  const auto reqs = gen.Zipfian(10000, 0.99);
  std::map<uint64_t, int> hist;
  for (const auto& r : reqs) {
    ASSERT_LT(r.key, 1000u);
    ++hist[r.key];
  }
  int hottest = 0;
  for (const auto& [k, c] : hist) {
    hottest = c > hottest ? c : hottest;
  }
  // Under zipf(0.99) over 1000 keys, the hottest key draws ~13% of traffic; uniform
  // would give 0.1%. Anything over 2% demonstrates skew robustly.
  EXPECT_GT(hottest, 200);
}

TEST(WorkloadGenerator, HotspotConcentratesOnOneKey) {
  WorkloadGenerator gen(1000, 0.0, 3);
  const auto reqs = gen.Hotspot(2000, 0.9);
  std::map<uint64_t, int> hist;
  for (const auto& r : reqs) {
    ++hist[r.key];
  }
  int hottest = 0;
  for (const auto& [k, c] : hist) {
    hottest = c > hottest ? c : hottest;
  }
  EXPECT_GT(hottest, 1600);
  EXPECT_LT(hottest, 2000);
}

TEST(WorkloadGenerator, WriteFractionZeroAndOne) {
  WorkloadGenerator ro(10, 0.0, 4);
  for (const auto& r : ro.Uniform(200)) {
    EXPECT_FALSE(r.is_write);
  }
  WorkloadGenerator wo(10, 1.0, 5);
  for (const auto& r : wo.Uniform(200)) {
    EXPECT_TRUE(r.is_write);
  }
}

TEST(WorkloadGenerator, DeterministicPerSeed) {
  WorkloadGenerator a(100, 0.5, 42);
  WorkloadGenerator b(100, 0.5, 42);
  const auto ra = a.Zipfian(100, 0.9);
  const auto rb = b.Zipfian(100, 0.9);
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].key, rb[i].key);
    EXPECT_EQ(ra[i].is_write, rb[i].is_write);
  }
}

}  // namespace
}  // namespace snoopy
