// Audit translation unit for the binary secret-taint dataflow verifier
// (tools/ct_dataflow.py).
//
// check_nobranch.py audits tiny hand-unrolled wrappers; this TU is the opposite: each
// ctdf_* symbol calls the REAL hot-path code -- the dispatching SIMD kernels, the
// per-backend kernel internals, the blocked bitonic sort tile step, both compaction
// algorithms, and the reshard bin-partition kernel -- with runtime sizes, so loops,
// spills, and the optimizer's full register allocation survive into the object the
// analyzer disassembles. The real implementation TUs are #included so their
// post-optimizer code is what gets audited (and so same-object calls resolve without
// linking); `flatten` asks GCC to inline the real bodies into the audit roots, and
// what cannot inline (recursion, libc/libstdc++) is followed or allowlisted by the
// analyzer per tools/ct_binary_manifest.json.
//
// Marker scheme (consumed by ct_dataflow.py, like check_nobranch.py's nb-symbol):
//
//   // ctdf-symbol: <name> secret=<kind>:<reg>[,<kind>:<reg>...] [backend=<b>]
//
// `kind` is `val` (the register holds a secret value) or `ptr` (the register holds a
// public pointer to secret bytes); `reg` is the SysV argument register. `backend`
// tags symbols whose body is a specific kernel backend: with
// SNOOPY_FORCE_GENERIC_KERNELS=1 the analyzer audits only backend=generic symbols,
// mirroring what the runtime dispatch would execute. Unlisted registers are public
// (sizes, strides, bin counts -- exactly the ct-public identifiers of the source
// regions).

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "src/obl/bitonic_sort.h"
#include "src/obl/kernels.h"
#include "src/obl/primitives.h"
#include "src/obl/secret.h"
#include "src/obl/slab.h"

// Real implementation TUs: compiled into this object so the audited symbols are the
// optimizer's output for the actual tree, not a re-implementation.
#include "src/core/reshard.cc"     // NOLINT(bugprone-suspicious-include)
#include "src/crypto/siphash.cc"   // NOLINT(bugprone-suspicious-include)
#include "src/obl/compaction.cc"   // NOLINT(bugprone-suspicious-include)

// src/obl/bucket_sort.cc is deliberately NOT included: TryBucketSortSlab's label
// declassification is public by the simulatable-bins contract, which the taint
// analyzer cannot model, and same-object symbols are always followed. Keeping the
// TU out leaves TryBucketSortSlab / ResolveSortStrategy as unresolved externals
// covered by the call_allow_public_patterns entries in tools/ct_binary_manifest.json;
// the secret-handling bucket kernels (header-inline by design) are audited below via
// ctdf_bucket_route / ctdf_bucket_cleanup.

#define CTDF_ROOT __attribute__((noipa, flatten))

namespace {

// The exact compare-swap the slab sorts run (BitonicSortSlab's lambda): trace event,
// Secret-typed comparator on the record key, dispatch-kernel swap.
struct SlabCSwap {
  uint8_t* base;
  size_t stride;
  void operator()(size_t i, size_t j, bool asc) const {
    snoopy::TraceRecord(snoopy::TraceOp::kCondSwap, i, j);
    uint8_t* a = base + i * stride;
    uint8_t* b = base + j * stride;
    const snoopy::SecretBool out_of_order =
        asc ? (snoopy::LoadSecretU64(b, 0) < snoopy::LoadSecretU64(a, 0))
            : (snoopy::LoadSecretU64(a, 0) < snoopy::LoadSecretU64(b, 0));
    snoopy::KernelCondSwapBytes(out_of_order, a, b, stride);
  }
};

// A concrete branchless within-bin comparator for the bucket cleanup audit: the
// production sort passes a type-erased wrapper over Secret-typed loads exactly like
// this one, so the composed compare + swap machinery audited is what actually runs.
struct CleanupWithin {
  snoopy::SecretBool operator()(const uint8_t* a, const uint8_t* b) const {
    return snoopy::LoadSecretU64(a, 8) < snoopy::LoadSecretU64(b, 8);
  }
};

}  // namespace

extern "C" {

// ---- Dispatching kernel entry points (runtime CPUID dispatch + every backend) ----

// ctdf-symbol: ctdf_kernel_cond_copy secret=val:rdi,ptr:rsi,ptr:rdx
CTDF_ROOT void ctdf_kernel_cond_copy(uint64_t mask, uint8_t* d, const uint8_t* s,
                                     size_t n) {
  snoopy::KernelCondCopyBytesMask(mask, d, s, n);
}

// ctdf-symbol: ctdf_kernel_cond_swap secret=val:rdi,ptr:rsi,ptr:rdx
CTDF_ROOT void ctdf_kernel_cond_swap(uint64_t mask, uint8_t* a, uint8_t* b, size_t n) {
  snoopy::KernelCondSwapBytesMask(mask, a, b, n);
}

// ctdf-symbol: ctdf_kernel_equal secret=ptr:rdi,ptr:rsi
CTDF_ROOT uint64_t ctdf_kernel_equal(const uint8_t* a, const uint8_t* b, size_t n) {
  return snoopy::KernelDiffBytesWord(a, b, n);
}

// ---- Per-backend kernel internals (audited even when CPUID dispatch would not
//      select them on this machine; the analysis is static) ----

// ctdf-symbol: ctdf_generic_cond_copy secret=val:rdi,ptr:rsi,ptr:rdx backend=generic
CTDF_ROOT void ctdf_generic_cond_copy(uint64_t mask, uint8_t* d, const uint8_t* s,
                                      size_t n) {
  snoopy::CtCondCopyBytesMask(mask, d, s, n);
}

// ctdf-symbol: ctdf_generic_cond_swap secret=val:rdi,ptr:rsi,ptr:rdx backend=generic
CTDF_ROOT void ctdf_generic_cond_swap(uint64_t mask, uint8_t* a, uint8_t* b, size_t n) {
  snoopy::CtCondSwapBytesMask(mask, a, b, n);
}

// ctdf-symbol: ctdf_generic_equal secret=ptr:rdi,ptr:rsi backend=generic
CTDF_ROOT uint64_t ctdf_generic_equal(const uint8_t* a, const uint8_t* b, size_t n) {
  return snoopy::kernel_internal::GenericDiffWord(a, b, n);
}

#if SNOOPY_KERNELS_X86

// ctdf-symbol: ctdf_sse2_cond_copy secret=val:rdi,ptr:rsi,ptr:rdx backend=sse2
CTDF_ROOT void ctdf_sse2_cond_copy(uint64_t mask, uint8_t* d, const uint8_t* s,
                                   size_t n) {
  snoopy::kernel_internal::KernelSse2CondCopy(mask, d, s, n);
}

// ctdf-symbol: ctdf_sse2_cond_swap secret=val:rdi,ptr:rsi,ptr:rdx backend=sse2
CTDF_ROOT void ctdf_sse2_cond_swap(uint64_t mask, uint8_t* a, uint8_t* b, size_t n) {
  snoopy::kernel_internal::KernelSse2CondSwap(mask, a, b, n);
}

// ctdf-symbol: ctdf_sse2_equal secret=ptr:rdi,ptr:rsi backend=sse2
CTDF_ROOT uint64_t ctdf_sse2_equal(const uint8_t* a, const uint8_t* b, size_t n) {
  return snoopy::kernel_internal::KernelSse2DiffWord(a, b, n);
}

// ctdf-symbol: ctdf_avx2_cond_copy secret=val:rdi,ptr:rsi,ptr:rdx backend=avx2
CTDF_ROOT void ctdf_avx2_cond_copy(uint64_t mask, uint8_t* d, const uint8_t* s,
                                   size_t n) {
  snoopy::kernel_internal::KernelAvx2CondCopy(mask, d, s, n);
}

// ctdf-symbol: ctdf_avx2_cond_swap secret=val:rdi,ptr:rsi,ptr:rdx backend=avx2
CTDF_ROOT void ctdf_avx2_cond_swap(uint64_t mask, uint8_t* a, uint8_t* b, size_t n) {
  snoopy::kernel_internal::KernelAvx2CondSwap(mask, a, b, n);
}

// ctdf-symbol: ctdf_avx2_equal secret=ptr:rdi,ptr:rsi backend=avx2
CTDF_ROOT uint64_t ctdf_avx2_equal(const uint8_t* a, const uint8_t* b, size_t n) {
  return snoopy::kernel_internal::KernelAvx2DiffWord(a, b, n);
}

// ctdf-symbol: ctdf_avx512_cond_copy secret=val:rdi,ptr:rsi,ptr:rdx backend=avx512
CTDF_ROOT void ctdf_avx512_cond_copy(uint64_t mask, uint8_t* d, const uint8_t* s,
                                     size_t n) {
  snoopy::kernel_internal::KernelAvx512CondCopy(mask, d, s, n);
}

// ctdf-symbol: ctdf_avx512_cond_swap secret=val:rdi,ptr:rsi,ptr:rdx backend=avx512
CTDF_ROOT void ctdf_avx512_cond_swap(uint64_t mask, uint8_t* a, uint8_t* b, size_t n) {
  snoopy::kernel_internal::KernelAvx512CondSwap(mask, a, b, n);
}

// ctdf-symbol: ctdf_avx512_equal secret=ptr:rdi,ptr:rsi backend=avx512
CTDF_ROOT uint64_t ctdf_avx512_equal(const uint8_t* a, const uint8_t* b, size_t n) {
  return snoopy::kernel_internal::KernelAvx512DiffWord(a, b, n);
}

#endif  // SNOOPY_KERNELS_X86

// ---- Blocked bitonic sort tile step ----
//
// The L1-resident tile executor (BitonicTileSort / BitonicTileMerge) is the inner
// loop of every blocked slab sort (PR 5); audited over the real slab compare-swap
// with runtime n and stride, so nothing unrolls away.

// ctdf-symbol: ctdf_bitonic_tile_sort secret=ptr:rdi
CTDF_ROOT void ctdf_bitonic_tile_sort(uint8_t* base, size_t n, size_t stride) {
  snoopy::internal::BitonicTileSort(0, n, /*asc=*/true, SlabCSwap{base, stride});
}

// ---- Compaction (both algorithms, real entry points from src/obl/compaction.cc) ----

// ctdf-symbol: ctdf_goodrich_compact secret=ptr:rsi,ptr:rdx
CTDF_ROOT size_t ctdf_goodrich_compact(size_t n, uint8_t* data, uint8_t* flags,
                                       size_t stride) {
  snoopy::ByteSlab slab(n, stride);
  std::memcpy(slab.data(), data, n * stride);
  const size_t kept = snoopy::GoodrichCompact(slab, std::span<uint8_t>(flags, n));
  std::memcpy(data, slab.data(), n * stride);
  return kept;
}

// ctdf-symbol: ctdf_sort_compact secret=ptr:rsi,ptr:rdx
CTDF_ROOT size_t ctdf_sort_compact(size_t n, uint8_t* data, uint8_t* flags,
                                   size_t stride) {
  snoopy::ByteSlab slab(n, stride);
  std::memcpy(slab.data(), data, n * stride);
  const size_t kept = snoopy::SortCompact(slab, std::span<uint8_t>(flags, n));
  std::memcpy(data, slab.data(), n * stride);
  return kept;
}

// ---- Reshard bin-partition kernel (PR 6, src/core/reshard.cc) ----
//
// The secret-handling half of PartitionSlabByBin: keyed tag assignment (SipHash +
// constant-time bin reduction) and the oblivious sort by tag. The partition key and
// the record bytes (which embed the object keys) are the secrets.

// ctdf-symbol: ctdf_reshard_tag_sort secret=ptr:rdi,ptr:rcx
CTDF_ROOT void ctdf_reshard_tag_sort(const uint8_t* records, uint8_t* out, size_t n,
                                     const uint8_t* key16, uint32_t num_bins,
                                     size_t value_size) {
  snoopy::ByteSlab slab(n, 8 + value_size);
  std::memcpy(slab.data(), records, n * (8 + value_size));
  snoopy::SipKey key;
  std::memcpy(key.data(), key16, key.size());
  const snoopy::ByteSlab tagged =
      snoopy::TagAndSortByBin(slab, key, num_bins, value_size, /*sort_threads=*/1);
  std::memcpy(out, tagged.Record(0), n * (snoopy::kReshardHeaderBytes + value_size));
}

// ---- Bucket oblivious sort kernels (PR 10, src/obl/bucket_sort.cc) ----
//
// TryBucketSortSlab itself is the noinline + allowlisted strategy boundary (its
// label declassification is public by the simulatable-bins contract, which a taint
// analyzer cannot model). The two secret-handling kernels inside it are audited
// here decomposed, with only the record regions tainted — exactly the split the
// BucketArena layout exists for: the butterfly routes (label, index) tags and its
// branches touch the public tag/count arrays only; record bytes move exclusively
// through (allowlisted) memcpy in the post-routing materialization gather, audited
// here fused with one routing level exactly as TryBucketSortSlab runs them.

// ctdf-symbol: ctdf_bucket_route secret=ptr:rdi,ptr:rsi
CTDF_ROOT int ctdf_bucket_route(uint8_t* records, const uint8_t* data, uint32_t* labels,
                                uint32_t* indices, uint32_t* counts, uint64_t buckets,
                                uint64_t capacity, size_t stride, uint32_t m,
                                uint32_t level) {
  snoopy::bucket_internal::BucketArena arena;
  arena.records = records;
  arena.labels = labels;
  arena.indices = indices;
  arena.counts = counts;
  arena.buckets = buckets;
  arena.capacity = capacity;
  arena.stride = stride;
  const bool routed = snoopy::bucket_internal::RouteLevelRange(arena, m, level, 0,
                                                               buckets / 2);
  snoopy::bucket_internal::MaterializeBucketRange(arena, data, 0, buckets);
  return routed ? 1 : 0;
}

// ctdf-symbol: ctdf_bucket_cleanup secret=ptr:rdi
CTDF_ROOT void ctdf_bucket_cleanup(uint8_t* base, size_t n, size_t stride) {
  snoopy::internal::BitonicTileSort(
      0, n, /*asc=*/true,
      snoopy::BucketCleanupCSwap<CleanupWithin>{base, stride, /*bin_offset=*/0,
                                                /*trace_base=*/0, CleanupWithin{}});
}

}  // extern "C"
