#include "src/kt/transparency_log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace snoopy {
namespace {

std::vector<std::vector<uint8_t>> MakeUsers(size_t n) {
  std::vector<std::vector<uint8_t>> users;
  for (size_t i = 0; i < n; ++i) {
    const std::string key = "pubkey-of-user-" + std::to_string(i);
    users.emplace_back(key.begin(), key.end());
  }
  return users;
}

TEST(TransparencyLog, LookupsVerifyAgainstSignedRoot) {
  const auto users = MakeUsers(50);
  TransparencyLog log(users, /*load_balancers=*/1, /*suborams=*/2, /*seed=*/3);
  for (uint64_t u : {uint64_t{0}, uint64_t{7}, uint64_t{49}}) {
    const KtLookupResult r = log.Lookup(u);
    EXPECT_TRUE(r.found);
    EXPECT_TRUE(r.proof_valid) << "user " << u;
    const std::string key = "pubkey-of-user-" + std::to_string(u);
    EXPECT_EQ(r.key_hash, MerkleTree::HashLeaf(key.data(), key.size()));
  }
}

TEST(TransparencyLog, AccessAmplificationIsLogNPlusOne) {
  const auto users = MakeUsers(50);  // padded to 64 leaves -> depth 6
  TransparencyLog log(users, 1, 1, 4);
  EXPECT_EQ(log.accesses_per_lookup(), 7u);
  const KtLookupResult r = log.Lookup(3);
  EXPECT_EQ(r.oblivious_accesses, 7u);
}

TEST(TransparencyLog, BatchedLookupsShareOneEpoch) {
  const auto users = MakeUsers(30);
  TransparencyLog log(users, 2, 2, 5);
  const uint64_t epoch_before = log.store().epoch();
  const auto results = log.LookupBatch({1, 5, 9, 20, 29});
  EXPECT_EQ(log.store().epoch(), epoch_before + 1);
  ASSERT_EQ(results.size(), 5u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.proof_valid);
  }
}

TEST(TransparencyLog, DuplicateLookupsInOneBatchWork) {
  // Two clients looking up the same user in one epoch: the deduplicated requests must
  // still produce two valid proofs.
  const auto users = MakeUsers(20);
  TransparencyLog log(users, 1, 2, 6);
  const auto results = log.LookupBatch({4, 4});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].proof_valid);
  EXPECT_TRUE(results[1].proof_valid);
  EXPECT_EQ(results[0].key_hash, results[1].key_hash);
}

TEST(TransparencyLog, RootStatementIsSignedAndVerifiable) {
  const auto users = MakeUsers(20);
  TransparencyLog log(users, 1, 1, 7);
  EXPECT_TRUE(TransparencyLog::VerifyRootStatement(log.genesis_public(),
                                                   log.root_statement(), log.signed_root()));
  // A different root must not verify under the same statement.
  MerkleTree::Hash other = log.signed_root();
  other[5] ^= 1;
  EXPECT_FALSE(
      TransparencyLog::VerifyRootStatement(log.genesis_public(), log.root_statement(), other));
  // A forged statement (equivocation) fails against the genesis key.
  auto forged = log.root_statement();
  forged.message[0] ^= 1;
  EXPECT_FALSE(TransparencyLog::VerifyRootStatement(log.genesis_public(), forged,
                                                    log.signed_root()));
}

}  // namespace
}  // namespace snoopy
