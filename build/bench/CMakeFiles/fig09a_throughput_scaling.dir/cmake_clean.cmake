file(REMOVE_RECURSE
  "CMakeFiles/fig09a_throughput_scaling.dir/fig09a_throughput_scaling.cc.o"
  "CMakeFiles/fig09a_throughput_scaling.dir/fig09a_throughput_scaling.cc.o.d"
  "fig09a_throughput_scaling"
  "fig09a_throughput_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09a_throughput_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
