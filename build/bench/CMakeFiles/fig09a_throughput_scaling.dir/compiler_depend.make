# Empty compiler generated dependencies file for fig09a_throughput_scaling.
# This may be replaced when dependencies are built.
