# Empty compiler generated dependencies file for headline_comparison.
# This may be replaced when dependencies are built.
