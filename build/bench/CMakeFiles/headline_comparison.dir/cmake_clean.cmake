file(REMOVE_RECURSE
  "CMakeFiles/headline_comparison.dir/headline_comparison.cc.o"
  "CMakeFiles/headline_comparison.dir/headline_comparison.cc.o.d"
  "headline_comparison"
  "headline_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
