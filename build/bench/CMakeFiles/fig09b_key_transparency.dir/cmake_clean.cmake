file(REMOVE_RECURSE
  "CMakeFiles/fig09b_key_transparency.dir/fig09b_key_transparency.cc.o"
  "CMakeFiles/fig09b_key_transparency.dir/fig09b_key_transparency.cc.o.d"
  "fig09b_key_transparency"
  "fig09b_key_transparency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09b_key_transparency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
