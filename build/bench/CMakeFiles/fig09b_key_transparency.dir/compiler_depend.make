# Empty compiler generated dependencies file for fig09b_key_transparency.
# This may be replaced when dependencies are built.
