file(REMOVE_RECURSE
  "CMakeFiles/ablation_dedup.dir/ablation_dedup.cc.o"
  "CMakeFiles/ablation_dedup.dir/ablation_dedup.cc.o.d"
  "ablation_dedup"
  "ablation_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
