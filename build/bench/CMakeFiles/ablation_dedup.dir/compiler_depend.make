# Empty compiler generated dependencies file for ablation_dedup.
# This may be replaced when dependencies are built.
