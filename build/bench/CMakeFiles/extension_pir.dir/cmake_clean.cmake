file(REMOVE_RECURSE
  "CMakeFiles/extension_pir.dir/extension_pir.cc.o"
  "CMakeFiles/extension_pir.dir/extension_pir.cc.o.d"
  "extension_pir"
  "extension_pir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_pir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
