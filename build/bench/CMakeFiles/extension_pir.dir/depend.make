# Empty dependencies file for extension_pir.
# This may be replaced when dependencies are built.
