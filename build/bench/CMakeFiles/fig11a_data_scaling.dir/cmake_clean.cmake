file(REMOVE_RECURSE
  "CMakeFiles/fig11a_data_scaling.dir/fig11a_data_scaling.cc.o"
  "CMakeFiles/fig11a_data_scaling.dir/fig11a_data_scaling.cc.o.d"
  "fig11a_data_scaling"
  "fig11a_data_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_data_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
