# Empty dependencies file for fig11a_data_scaling.
# This may be replaced when dependencies are built.
