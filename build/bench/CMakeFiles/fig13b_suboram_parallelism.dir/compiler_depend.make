# Empty compiler generated dependencies file for fig13b_suboram_parallelism.
# This may be replaced when dependencies are built.
