file(REMOVE_RECURSE
  "CMakeFiles/fig13b_suboram_parallelism.dir/fig13b_suboram_parallelism.cc.o"
  "CMakeFiles/fig13b_suboram_parallelism.dir/fig13b_suboram_parallelism.cc.o.d"
  "fig13b_suboram_parallelism"
  "fig13b_suboram_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13b_suboram_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
