# Empty compiler generated dependencies file for fig04_capacity.
# This may be replaced when dependencies are built.
