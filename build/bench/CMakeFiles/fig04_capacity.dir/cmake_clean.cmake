file(REMOVE_RECURSE
  "CMakeFiles/fig04_capacity.dir/fig04_capacity.cc.o"
  "CMakeFiles/fig04_capacity.dir/fig04_capacity.cc.o.d"
  "fig04_capacity"
  "fig04_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
