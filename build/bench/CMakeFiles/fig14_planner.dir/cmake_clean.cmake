file(REMOVE_RECURSE
  "CMakeFiles/fig14_planner.dir/fig14_planner.cc.o"
  "CMakeFiles/fig14_planner.dir/fig14_planner.cc.o.d"
  "fig14_planner"
  "fig14_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
