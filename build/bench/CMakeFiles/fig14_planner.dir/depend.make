# Empty dependencies file for fig14_planner.
# This may be replaced when dependencies are built.
