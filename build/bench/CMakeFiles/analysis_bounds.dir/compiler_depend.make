# Empty compiler generated dependencies file for analysis_bounds.
# This may be replaced when dependencies are built.
