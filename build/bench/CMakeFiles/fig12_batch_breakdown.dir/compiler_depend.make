# Empty compiler generated dependencies file for fig12_batch_breakdown.
# This may be replaced when dependencies are built.
