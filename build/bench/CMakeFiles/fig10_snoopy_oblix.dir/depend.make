# Empty dependencies file for fig10_snoopy_oblix.
# This may be replaced when dependencies are built.
