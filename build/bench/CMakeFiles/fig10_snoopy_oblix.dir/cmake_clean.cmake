file(REMOVE_RECURSE
  "CMakeFiles/fig10_snoopy_oblix.dir/fig10_snoopy_oblix.cc.o"
  "CMakeFiles/fig10_snoopy_oblix.dir/fig10_snoopy_oblix.cc.o.d"
  "fig10_snoopy_oblix"
  "fig10_snoopy_oblix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_snoopy_oblix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
