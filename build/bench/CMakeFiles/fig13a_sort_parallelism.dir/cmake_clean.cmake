file(REMOVE_RECURSE
  "CMakeFiles/fig13a_sort_parallelism.dir/fig13a_sort_parallelism.cc.o"
  "CMakeFiles/fig13a_sort_parallelism.dir/fig13a_sort_parallelism.cc.o.d"
  "fig13a_sort_parallelism"
  "fig13a_sort_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13a_sort_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
