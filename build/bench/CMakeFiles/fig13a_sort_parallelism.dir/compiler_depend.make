# Empty compiler generated dependencies file for fig13a_sort_parallelism.
# This may be replaced when dependencies are built.
