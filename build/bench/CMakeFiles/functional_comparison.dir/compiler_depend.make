# Empty compiler generated dependencies file for functional_comparison.
# This may be replaced when dependencies are built.
