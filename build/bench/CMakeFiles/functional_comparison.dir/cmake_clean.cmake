file(REMOVE_RECURSE
  "CMakeFiles/functional_comparison.dir/functional_comparison.cc.o"
  "CMakeFiles/functional_comparison.dir/functional_comparison.cc.o.d"
  "functional_comparison"
  "functional_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
