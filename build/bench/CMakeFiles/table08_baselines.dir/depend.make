# Empty dependencies file for table08_baselines.
# This may be replaced when dependencies are built.
