file(REMOVE_RECURSE
  "CMakeFiles/table08_baselines.dir/table08_baselines.cc.o"
  "CMakeFiles/table08_baselines.dir/table08_baselines.cc.o.d"
  "table08_baselines"
  "table08_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
