file(REMOVE_RECURSE
  "CMakeFiles/fig11b_latency.dir/fig11b_latency.cc.o"
  "CMakeFiles/fig11b_latency.dir/fig11b_latency.cc.o.d"
  "fig11b_latency"
  "fig11b_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
