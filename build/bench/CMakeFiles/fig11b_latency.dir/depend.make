# Empty dependencies file for fig11b_latency.
# This may be replaced when dependencies are built.
