file(REMOVE_RECURSE
  "CMakeFiles/fig03_dummy_overhead.dir/fig03_dummy_overhead.cc.o"
  "CMakeFiles/fig03_dummy_overhead.dir/fig03_dummy_overhead.cc.o.d"
  "fig03_dummy_overhead"
  "fig03_dummy_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_dummy_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
