# Empty compiler generated dependencies file for fig03_dummy_overhead.
# This may be replaced when dependencies are built.
