# CMake generated Testfile for 
# Source directory: /root/repo/src/kt
# Build directory: /root/repo/build/src/kt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
