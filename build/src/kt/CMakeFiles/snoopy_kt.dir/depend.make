# Empty dependencies file for snoopy_kt.
# This may be replaced when dependencies are built.
