file(REMOVE_RECURSE
  "CMakeFiles/snoopy_kt.dir/merkle_tree.cc.o"
  "CMakeFiles/snoopy_kt.dir/merkle_tree.cc.o.d"
  "CMakeFiles/snoopy_kt.dir/transparency_log.cc.o"
  "CMakeFiles/snoopy_kt.dir/transparency_log.cc.o.d"
  "libsnoopy_kt.a"
  "libsnoopy_kt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoopy_kt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
