file(REMOVE_RECURSE
  "libsnoopy_kt.a"
)
