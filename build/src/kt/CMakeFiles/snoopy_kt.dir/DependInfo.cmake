
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kt/merkle_tree.cc" "src/kt/CMakeFiles/snoopy_kt.dir/merkle_tree.cc.o" "gcc" "src/kt/CMakeFiles/snoopy_kt.dir/merkle_tree.cc.o.d"
  "/root/repo/src/kt/transparency_log.cc" "src/kt/CMakeFiles/snoopy_kt.dir/transparency_log.cc.o" "gcc" "src/kt/CMakeFiles/snoopy_kt.dir/transparency_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/snoopy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/obl/CMakeFiles/snoopy_obl.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/snoopy_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/snoopy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/enclave/CMakeFiles/snoopy_enclave.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/snoopy_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
