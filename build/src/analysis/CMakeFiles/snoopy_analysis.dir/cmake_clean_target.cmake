file(REMOVE_RECURSE
  "libsnoopy_analysis.a"
)
