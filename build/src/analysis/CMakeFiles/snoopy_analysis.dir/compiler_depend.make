# Empty compiler generated dependencies file for snoopy_analysis.
# This may be replaced when dependencies are built.
