file(REMOVE_RECURSE
  "CMakeFiles/snoopy_analysis.dir/batch_bound.cc.o"
  "CMakeFiles/snoopy_analysis.dir/batch_bound.cc.o.d"
  "CMakeFiles/snoopy_analysis.dir/binomial.cc.o"
  "CMakeFiles/snoopy_analysis.dir/binomial.cc.o.d"
  "CMakeFiles/snoopy_analysis.dir/lambert.cc.o"
  "CMakeFiles/snoopy_analysis.dir/lambert.cc.o.d"
  "libsnoopy_analysis.a"
  "libsnoopy_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoopy_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
