file(REMOVE_RECURSE
  "CMakeFiles/snoopy_net.dir/channel.cc.o"
  "CMakeFiles/snoopy_net.dir/channel.cc.o.d"
  "CMakeFiles/snoopy_net.dir/network.cc.o"
  "CMakeFiles/snoopy_net.dir/network.cc.o.d"
  "libsnoopy_net.a"
  "libsnoopy_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoopy_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
