file(REMOVE_RECURSE
  "libsnoopy_net.a"
)
