# Empty compiler generated dependencies file for snoopy_net.
# This may be replaced when dependencies are built.
