# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("analysis")
subdirs("crypto")
subdirs("enclave")
subdirs("obl")
subdirs("net")
subdirs("core")
subdirs("oram")
subdirs("baseline")
subdirs("sim")
subdirs("kt")
subdirs("pir")
