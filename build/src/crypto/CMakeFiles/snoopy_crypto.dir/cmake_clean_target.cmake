file(REMOVE_RECURSE
  "libsnoopy_crypto.a"
)
