file(REMOVE_RECURSE
  "CMakeFiles/snoopy_crypto.dir/aead.cc.o"
  "CMakeFiles/snoopy_crypto.dir/aead.cc.o.d"
  "CMakeFiles/snoopy_crypto.dir/chacha20.cc.o"
  "CMakeFiles/snoopy_crypto.dir/chacha20.cc.o.d"
  "CMakeFiles/snoopy_crypto.dir/hmac.cc.o"
  "CMakeFiles/snoopy_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/snoopy_crypto.dir/lamport.cc.o"
  "CMakeFiles/snoopy_crypto.dir/lamport.cc.o.d"
  "CMakeFiles/snoopy_crypto.dir/poly1305.cc.o"
  "CMakeFiles/snoopy_crypto.dir/poly1305.cc.o.d"
  "CMakeFiles/snoopy_crypto.dir/rng.cc.o"
  "CMakeFiles/snoopy_crypto.dir/rng.cc.o.d"
  "CMakeFiles/snoopy_crypto.dir/sha256.cc.o"
  "CMakeFiles/snoopy_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/snoopy_crypto.dir/siphash.cc.o"
  "CMakeFiles/snoopy_crypto.dir/siphash.cc.o.d"
  "libsnoopy_crypto.a"
  "libsnoopy_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoopy_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
