# Empty compiler generated dependencies file for snoopy_crypto.
# This may be replaced when dependencies are built.
