file(REMOVE_RECURSE
  "libsnoopy_pir.a"
)
