# Empty compiler generated dependencies file for snoopy_pir.
# This may be replaced when dependencies are built.
