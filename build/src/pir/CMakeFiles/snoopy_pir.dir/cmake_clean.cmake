file(REMOVE_RECURSE
  "CMakeFiles/snoopy_pir.dir/snoopy_pir.cc.o"
  "CMakeFiles/snoopy_pir.dir/snoopy_pir.cc.o.d"
  "CMakeFiles/snoopy_pir.dir/xor_pir.cc.o"
  "CMakeFiles/snoopy_pir.dir/xor_pir.cc.o.d"
  "libsnoopy_pir.a"
  "libsnoopy_pir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoopy_pir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
