file(REMOVE_RECURSE
  "CMakeFiles/snoopy_enclave.dir/attestation.cc.o"
  "CMakeFiles/snoopy_enclave.dir/attestation.cc.o.d"
  "CMakeFiles/snoopy_enclave.dir/enclave.cc.o"
  "CMakeFiles/snoopy_enclave.dir/enclave.cc.o.d"
  "CMakeFiles/snoopy_enclave.dir/epc.cc.o"
  "CMakeFiles/snoopy_enclave.dir/epc.cc.o.d"
  "CMakeFiles/snoopy_enclave.dir/rollback.cc.o"
  "CMakeFiles/snoopy_enclave.dir/rollback.cc.o.d"
  "CMakeFiles/snoopy_enclave.dir/trace.cc.o"
  "CMakeFiles/snoopy_enclave.dir/trace.cc.o.d"
  "libsnoopy_enclave.a"
  "libsnoopy_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoopy_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
