# Empty dependencies file for snoopy_enclave.
# This may be replaced when dependencies are built.
