
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/enclave/attestation.cc" "src/enclave/CMakeFiles/snoopy_enclave.dir/attestation.cc.o" "gcc" "src/enclave/CMakeFiles/snoopy_enclave.dir/attestation.cc.o.d"
  "/root/repo/src/enclave/enclave.cc" "src/enclave/CMakeFiles/snoopy_enclave.dir/enclave.cc.o" "gcc" "src/enclave/CMakeFiles/snoopy_enclave.dir/enclave.cc.o.d"
  "/root/repo/src/enclave/epc.cc" "src/enclave/CMakeFiles/snoopy_enclave.dir/epc.cc.o" "gcc" "src/enclave/CMakeFiles/snoopy_enclave.dir/epc.cc.o.d"
  "/root/repo/src/enclave/rollback.cc" "src/enclave/CMakeFiles/snoopy_enclave.dir/rollback.cc.o" "gcc" "src/enclave/CMakeFiles/snoopy_enclave.dir/rollback.cc.o.d"
  "/root/repo/src/enclave/trace.cc" "src/enclave/CMakeFiles/snoopy_enclave.dir/trace.cc.o" "gcc" "src/enclave/CMakeFiles/snoopy_enclave.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/snoopy_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
