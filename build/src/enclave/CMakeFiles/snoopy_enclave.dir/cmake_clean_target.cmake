file(REMOVE_RECURSE
  "libsnoopy_enclave.a"
)
