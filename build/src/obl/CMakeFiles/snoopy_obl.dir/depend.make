# Empty dependencies file for snoopy_obl.
# This may be replaced when dependencies are built.
