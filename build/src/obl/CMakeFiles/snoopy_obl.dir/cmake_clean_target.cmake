file(REMOVE_RECURSE
  "libsnoopy_obl.a"
)
