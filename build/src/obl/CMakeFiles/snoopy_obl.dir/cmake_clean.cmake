file(REMOVE_RECURSE
  "CMakeFiles/snoopy_obl.dir/bin_placement.cc.o"
  "CMakeFiles/snoopy_obl.dir/bin_placement.cc.o.d"
  "CMakeFiles/snoopy_obl.dir/compaction.cc.o"
  "CMakeFiles/snoopy_obl.dir/compaction.cc.o.d"
  "CMakeFiles/snoopy_obl.dir/hash_table.cc.o"
  "CMakeFiles/snoopy_obl.dir/hash_table.cc.o.d"
  "libsnoopy_obl.a"
  "libsnoopy_obl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoopy_obl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
