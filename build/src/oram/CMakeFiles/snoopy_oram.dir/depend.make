# Empty dependencies file for snoopy_oram.
# This may be replaced when dependencies are built.
