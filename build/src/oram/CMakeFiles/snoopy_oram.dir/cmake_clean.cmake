file(REMOVE_RECURSE
  "CMakeFiles/snoopy_oram.dir/path_oram.cc.o"
  "CMakeFiles/snoopy_oram.dir/path_oram.cc.o.d"
  "CMakeFiles/snoopy_oram.dir/position_map.cc.o"
  "CMakeFiles/snoopy_oram.dir/position_map.cc.o.d"
  "CMakeFiles/snoopy_oram.dir/ring_oram.cc.o"
  "CMakeFiles/snoopy_oram.dir/ring_oram.cc.o.d"
  "libsnoopy_oram.a"
  "libsnoopy_oram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoopy_oram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
