
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oram/path_oram.cc" "src/oram/CMakeFiles/snoopy_oram.dir/path_oram.cc.o" "gcc" "src/oram/CMakeFiles/snoopy_oram.dir/path_oram.cc.o.d"
  "/root/repo/src/oram/position_map.cc" "src/oram/CMakeFiles/snoopy_oram.dir/position_map.cc.o" "gcc" "src/oram/CMakeFiles/snoopy_oram.dir/position_map.cc.o.d"
  "/root/repo/src/oram/ring_oram.cc" "src/oram/CMakeFiles/snoopy_oram.dir/ring_oram.cc.o" "gcc" "src/oram/CMakeFiles/snoopy_oram.dir/ring_oram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/snoopy_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
