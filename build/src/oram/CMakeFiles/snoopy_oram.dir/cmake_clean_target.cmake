file(REMOVE_RECURSE
  "libsnoopy_oram.a"
)
