file(REMOVE_RECURSE
  "libsnoopy_baseline.a"
)
