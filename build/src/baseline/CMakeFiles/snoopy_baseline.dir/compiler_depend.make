# Empty compiler generated dependencies file for snoopy_baseline.
# This may be replaced when dependencies are built.
