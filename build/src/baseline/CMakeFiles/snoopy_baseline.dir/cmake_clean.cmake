file(REMOVE_RECURSE
  "CMakeFiles/snoopy_baseline.dir/obladi.cc.o"
  "CMakeFiles/snoopy_baseline.dir/obladi.cc.o.d"
  "CMakeFiles/snoopy_baseline.dir/oblix.cc.o"
  "CMakeFiles/snoopy_baseline.dir/oblix.cc.o.d"
  "CMakeFiles/snoopy_baseline.dir/oblix_backend.cc.o"
  "CMakeFiles/snoopy_baseline.dir/oblix_backend.cc.o.d"
  "CMakeFiles/snoopy_baseline.dir/plaintext_store.cc.o"
  "CMakeFiles/snoopy_baseline.dir/plaintext_store.cc.o.d"
  "libsnoopy_baseline.a"
  "libsnoopy_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoopy_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
