file(REMOVE_RECURSE
  "CMakeFiles/snoopy_core.dir/access_control.cc.o"
  "CMakeFiles/snoopy_core.dir/access_control.cc.o.d"
  "CMakeFiles/snoopy_core.dir/client.cc.o"
  "CMakeFiles/snoopy_core.dir/client.cc.o.d"
  "CMakeFiles/snoopy_core.dir/load_balancer.cc.o"
  "CMakeFiles/snoopy_core.dir/load_balancer.cc.o.d"
  "CMakeFiles/snoopy_core.dir/planner.cc.o"
  "CMakeFiles/snoopy_core.dir/planner.cc.o.d"
  "CMakeFiles/snoopy_core.dir/snoopy.cc.o"
  "CMakeFiles/snoopy_core.dir/snoopy.cc.o.d"
  "CMakeFiles/snoopy_core.dir/suboram.cc.o"
  "CMakeFiles/snoopy_core.dir/suboram.cc.o.d"
  "libsnoopy_core.a"
  "libsnoopy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoopy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
