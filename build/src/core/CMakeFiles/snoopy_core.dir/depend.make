# Empty dependencies file for snoopy_core.
# This may be replaced when dependencies are built.
