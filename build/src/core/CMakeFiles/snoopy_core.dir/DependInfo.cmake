
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_control.cc" "src/core/CMakeFiles/snoopy_core.dir/access_control.cc.o" "gcc" "src/core/CMakeFiles/snoopy_core.dir/access_control.cc.o.d"
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/snoopy_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/snoopy_core.dir/client.cc.o.d"
  "/root/repo/src/core/load_balancer.cc" "src/core/CMakeFiles/snoopy_core.dir/load_balancer.cc.o" "gcc" "src/core/CMakeFiles/snoopy_core.dir/load_balancer.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/core/CMakeFiles/snoopy_core.dir/planner.cc.o" "gcc" "src/core/CMakeFiles/snoopy_core.dir/planner.cc.o.d"
  "/root/repo/src/core/snoopy.cc" "src/core/CMakeFiles/snoopy_core.dir/snoopy.cc.o" "gcc" "src/core/CMakeFiles/snoopy_core.dir/snoopy.cc.o.d"
  "/root/repo/src/core/suboram.cc" "src/core/CMakeFiles/snoopy_core.dir/suboram.cc.o" "gcc" "src/core/CMakeFiles/snoopy_core.dir/suboram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/obl/CMakeFiles/snoopy_obl.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/snoopy_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/snoopy_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/enclave/CMakeFiles/snoopy_enclave.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/snoopy_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
