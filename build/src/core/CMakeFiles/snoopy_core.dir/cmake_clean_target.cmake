file(REMOVE_RECURSE
  "libsnoopy_core.a"
)
