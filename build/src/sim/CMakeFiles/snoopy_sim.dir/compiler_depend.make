# Empty compiler generated dependencies file for snoopy_sim.
# This may be replaced when dependencies are built.
