file(REMOVE_RECURSE
  "libsnoopy_sim.a"
)
