file(REMOVE_RECURSE
  "CMakeFiles/snoopy_sim.dir/cluster.cc.o"
  "CMakeFiles/snoopy_sim.dir/cluster.cc.o.d"
  "CMakeFiles/snoopy_sim.dir/cost_model.cc.o"
  "CMakeFiles/snoopy_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/snoopy_sim.dir/workload.cc.o"
  "CMakeFiles/snoopy_sim.dir/workload.cc.o.d"
  "libsnoopy_sim.a"
  "libsnoopy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoopy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
