# Empty dependencies file for recursive_oram_test.
# This may be replaced when dependencies are built.
