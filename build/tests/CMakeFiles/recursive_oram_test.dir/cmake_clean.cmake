file(REMOVE_RECURSE
  "CMakeFiles/recursive_oram_test.dir/recursive_oram_test.cc.o"
  "CMakeFiles/recursive_oram_test.dir/recursive_oram_test.cc.o.d"
  "recursive_oram_test"
  "recursive_oram_test.pdb"
  "recursive_oram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_oram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
