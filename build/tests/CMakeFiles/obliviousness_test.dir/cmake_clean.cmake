file(REMOVE_RECURSE
  "CMakeFiles/obliviousness_test.dir/obliviousness_test.cc.o"
  "CMakeFiles/obliviousness_test.dir/obliviousness_test.cc.o.d"
  "obliviousness_test"
  "obliviousness_test.pdb"
  "obliviousness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obliviousness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
