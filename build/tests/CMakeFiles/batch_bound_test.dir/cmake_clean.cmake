file(REMOVE_RECURSE
  "CMakeFiles/batch_bound_test.dir/batch_bound_test.cc.o"
  "CMakeFiles/batch_bound_test.dir/batch_bound_test.cc.o.d"
  "batch_bound_test"
  "batch_bound_test.pdb"
  "batch_bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
