file(REMOVE_RECURSE
  "CMakeFiles/snoopy_test.dir/snoopy_test.cc.o"
  "CMakeFiles/snoopy_test.dir/snoopy_test.cc.o.d"
  "snoopy_test"
  "snoopy_test.pdb"
  "snoopy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoopy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
