# Empty compiler generated dependencies file for snoopy_test.
# This may be replaced when dependencies are built.
