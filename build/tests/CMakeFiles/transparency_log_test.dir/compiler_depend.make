# Empty compiler generated dependencies file for transparency_log_test.
# This may be replaced when dependencies are built.
