file(REMOVE_RECURSE
  "CMakeFiles/transparency_log_test.dir/transparency_log_test.cc.o"
  "CMakeFiles/transparency_log_test.dir/transparency_log_test.cc.o.d"
  "transparency_log_test"
  "transparency_log_test.pdb"
  "transparency_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transparency_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
