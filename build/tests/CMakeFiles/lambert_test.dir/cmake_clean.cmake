file(REMOVE_RECURSE
  "CMakeFiles/lambert_test.dir/lambert_test.cc.o"
  "CMakeFiles/lambert_test.dir/lambert_test.cc.o.d"
  "lambert_test"
  "lambert_test.pdb"
  "lambert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lambert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
