# Empty dependencies file for path_oram_test.
# This may be replaced when dependencies are built.
