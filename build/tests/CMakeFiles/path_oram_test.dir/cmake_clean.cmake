file(REMOVE_RECURSE
  "CMakeFiles/path_oram_test.dir/path_oram_test.cc.o"
  "CMakeFiles/path_oram_test.dir/path_oram_test.cc.o.d"
  "path_oram_test"
  "path_oram_test.pdb"
  "path_oram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_oram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
