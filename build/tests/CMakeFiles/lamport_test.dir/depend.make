# Empty dependencies file for lamport_test.
# This may be replaced when dependencies are built.
