file(REMOVE_RECURSE
  "CMakeFiles/lamport_test.dir/lamport_test.cc.o"
  "CMakeFiles/lamport_test.dir/lamport_test.cc.o.d"
  "lamport_test"
  "lamport_test.pdb"
  "lamport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
