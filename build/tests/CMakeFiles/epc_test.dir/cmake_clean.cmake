file(REMOVE_RECURSE
  "CMakeFiles/epc_test.dir/epc_test.cc.o"
  "CMakeFiles/epc_test.dir/epc_test.cc.o.d"
  "epc_test"
  "epc_test.pdb"
  "epc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
