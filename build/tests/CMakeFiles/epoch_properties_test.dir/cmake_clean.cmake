file(REMOVE_RECURSE
  "CMakeFiles/epoch_properties_test.dir/epoch_properties_test.cc.o"
  "CMakeFiles/epoch_properties_test.dir/epoch_properties_test.cc.o.d"
  "epoch_properties_test"
  "epoch_properties_test.pdb"
  "epoch_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoch_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
