# Empty dependencies file for epoch_properties_test.
# This may be replaced when dependencies are built.
