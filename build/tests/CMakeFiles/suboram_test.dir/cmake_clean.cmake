file(REMOVE_RECURSE
  "CMakeFiles/suboram_test.dir/suboram_test.cc.o"
  "CMakeFiles/suboram_test.dir/suboram_test.cc.o.d"
  "suboram_test"
  "suboram_test.pdb"
  "suboram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suboram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
