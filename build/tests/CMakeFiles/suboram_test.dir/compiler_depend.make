# Empty compiler generated dependencies file for suboram_test.
# This may be replaced when dependencies are built.
