file(REMOVE_RECURSE
  "CMakeFiles/oblix_backend_test.dir/oblix_backend_test.cc.o"
  "CMakeFiles/oblix_backend_test.dir/oblix_backend_test.cc.o.d"
  "oblix_backend_test"
  "oblix_backend_test.pdb"
  "oblix_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oblix_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
