# Empty compiler generated dependencies file for oblix_backend_test.
# This may be replaced when dependencies are built.
