file(REMOVE_RECURSE
  "CMakeFiles/bin_placement_test.dir/bin_placement_test.cc.o"
  "CMakeFiles/bin_placement_test.dir/bin_placement_test.cc.o.d"
  "bin_placement_test"
  "bin_placement_test.pdb"
  "bin_placement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bin_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
