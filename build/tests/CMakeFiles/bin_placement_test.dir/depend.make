# Empty dependencies file for bin_placement_test.
# This may be replaced when dependencies are built.
