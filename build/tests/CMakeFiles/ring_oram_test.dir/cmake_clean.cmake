file(REMOVE_RECURSE
  "CMakeFiles/ring_oram_test.dir/ring_oram_test.cc.o"
  "CMakeFiles/ring_oram_test.dir/ring_oram_test.cc.o.d"
  "ring_oram_test"
  "ring_oram_test.pdb"
  "ring_oram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_oram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
