# Empty dependencies file for ring_oram_test.
# This may be replaced when dependencies are built.
