# Empty dependencies file for secure_client.
# This may be replaced when dependencies are built.
