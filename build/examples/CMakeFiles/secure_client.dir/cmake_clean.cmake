file(REMOVE_RECURSE
  "CMakeFiles/secure_client.dir/secure_client.cpp.o"
  "CMakeFiles/secure_client.dir/secure_client.cpp.o.d"
  "secure_client"
  "secure_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
