file(REMOVE_RECURSE
  "CMakeFiles/key_transparency.dir/key_transparency.cpp.o"
  "CMakeFiles/key_transparency.dir/key_transparency.cpp.o.d"
  "key_transparency"
  "key_transparency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_transparency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
