# Empty dependencies file for key_transparency.
# This may be replaced when dependencies are built.
