file(REMOVE_RECURSE
  "CMakeFiles/contact_discovery.dir/contact_discovery.cpp.o"
  "CMakeFiles/contact_discovery.dir/contact_discovery.cpp.o.d"
  "contact_discovery"
  "contact_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contact_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
