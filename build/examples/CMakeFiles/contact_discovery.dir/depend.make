# Empty dependencies file for contact_discovery.
# This may be replaced when dependencies are built.
