# Empty compiler generated dependencies file for planner_cli.
# This may be replaced when dependencies are built.
