# Empty compiler generated dependencies file for access_control_demo.
# This may be replaced when dependencies are built.
