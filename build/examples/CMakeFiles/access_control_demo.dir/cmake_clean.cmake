file(REMOVE_RECURSE
  "CMakeFiles/access_control_demo.dir/access_control_demo.cpp.o"
  "CMakeFiles/access_control_demo.dir/access_control_demo.cpp.o.d"
  "access_control_demo"
  "access_control_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_control_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
