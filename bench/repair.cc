// Repair bench: redundancy cost and degraded-mode service under permanent subORAM
// loss (DESIGN.md "Failure model and repair").
//
// Two views, one per series in BENCH_repair.json:
//   * redundancy -- the functional deployment: for each striping mode (k-way
//     replication, XOR parity), the storage overhead the stripes cost, the epochs a
//     permanent loss takes to return to full health (the public repair schedule),
//     and the fraction of requests each degraded epoch still serves.
//   * degraded_throughput -- the cluster simulator: throughput, latency and deferred
//     request mass under a stochastic permanent-loss process as the repair schedule
//     stretches (slower repair = less repair traffic per epoch but a longer
//     degraded window).

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/snoopy.h"
#include "src/sim/cluster.h"
#include "src/telemetry/bench_json.h"

namespace {

constexpr size_t kValueSize = 64;
constexpr uint64_t kKeys = 96;

std::vector<uint8_t> Val(uint64_t tag) {
  std::vector<uint8_t> v(kValueSize, 0);
  std::memcpy(v.data(), &tag, 8);
  return v;
}

}  // namespace

int main() {
  using namespace snoopy;
  PrintHeader("Repair", "striped redundancy + background repair after permanent loss");
  BenchJsonEmitter json("repair");

  // -------------------------------------------------------------------------------
  // Functional deployment: storage overhead and the public repair schedule.
  // -------------------------------------------------------------------------------
  struct Mode {
    const char* name;
    uint32_t replicas;
    bool xor_parity;
  };
  const Mode modes[] = {
      {"replicate-1", 1, false},
      {"replicate-2", 2, false},
      {"parity-2+1", 2, true},
      {"parity-3+1", 3, true},
  };
  std::printf("%12s | %9s | %14s | %13s | %13s\n", "mode", "suborams",
              "stripe bytes", "repair epochs", "degraded serve");
  for (const Mode& mode : modes) {
    SnoopyConfig cfg;
    cfg.num_load_balancers = 2;
    cfg.num_suborams = 5;
    cfg.value_size = kValueSize;
    cfg.lambda = 40;
    cfg.striping.replicas = mode.replicas;
    cfg.striping.xor_parity = mode.xor_parity;
    cfg.striping.repair_epochs = 4;
    auto store = std::make_unique<Snoopy>(cfg, 7);
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
    for (uint64_t k = 0; k < kKeys; ++k) {
      objects.emplace_back(k, Val(k));
    }
    store->Initialize(objects);

    // Stripe bytes held for one partition across all of its peers (overhead =
    // stripe bytes / snapshot bytes: ~replicas for replication, ~(k+1)/k for parity).
    uint64_t stripe_bytes = 0;
    const uint64_t snapshot_bytes = store->suboram_snapshot(0).size();
    for (uint32_t peer = 0; peer < cfg.num_suborams; ++peer) {
      const Snoopy::HostStripe* stripe = store->host_stripe(peer, 0);
      if (stripe != nullptr) {
        stripe_bytes += stripe->payload.size();
      }
    }

    FaultInjector injector(7);
    store->set_fault_injector(&injector);
    const uint32_t victim = 1;
    store->LoseSubOram(victim);
    uint32_t repair_epochs_taken = 0;
    uint64_t submitted = 0;
    uint64_t served_degraded = 0;
    uint64_t seq = 1;
    while (store->partition_health(victim) != Snoopy::PartitionHealth::kHealthy) {
      for (uint64_t k = 0; k < kKeys; ++k) {
        store->SubmitRead(1, seq++, k);
        ++submitted;
      }
      const bool last =
          store->repair_epochs_remaining(victim) == 1;  // completes this epoch
      const size_t answered = store->RunEpoch().size();
      if (!last) {
        served_degraded += answered;
      }
      ++repair_epochs_taken;
    }
    const double degraded_serve_frac =
        repair_epochs_taken <= 1
            ? 1.0
            : static_cast<double>(served_degraded) /
                  (static_cast<double>(submitted) *
                   (repair_epochs_taken - 1) / repair_epochs_taken);
    std::printf("%12s | %9u | %8llu (%3.2fx) | %13u | %12.0f%%\n", mode.name,
                cfg.num_suborams, static_cast<unsigned long long>(stripe_bytes),
                snapshot_bytes == 0
                    ? 0.0
                    : static_cast<double>(stripe_bytes) / snapshot_bytes,
                repair_epochs_taken, 100.0 * degraded_serve_frac);
    json.AddPoint("redundancy")
        .Set("mode", mode.name)
        .Set("replicas", static_cast<double>(mode.replicas))
        .Set("xor_parity", mode.xor_parity ? 1.0 : 0.0)
        .Set("snapshot_bytes", static_cast<double>(snapshot_bytes))
        .Set("stripe_bytes", static_cast<double>(stripe_bytes))
        .Set("epochs_to_full_redundancy", static_cast<double>(repair_epochs_taken))
        .Set("degraded_serve_fraction", degraded_serve_frac);
  }

  // -------------------------------------------------------------------------------
  // Cluster simulator: degraded throughput vs. the repair schedule.
  // -------------------------------------------------------------------------------
  std::printf("\n%13s | %11s | %11s | %10s | %9s\n", "repair epochs", "throughput",
              "mean lat", "deferred", "degraded");
  const CostModel model;
  for (const uint32_t repair_epochs : {2u, 4u, 8u, 16u}) {
    ClusterConfig cfg;
    cfg.load_balancers = 1;
    cfg.suborams = 3;
    cfg.num_objects = 2000000;
    cfg.epoch_seconds = 0.2;
    cfg.suboram_mtpl_s = 6.0;
    cfg.repair_epochs = repair_epochs;
    const ClusterSimulator sim(cfg, model);
    const ClusterMetrics m = sim.Run(/*ops_per_second=*/2000, /*duration=*/20.0,
                                     /*seed=*/11);
    std::printf("%13u | %9.0f/s | %9.0fms | %10.0f | %9llu\n", repair_epochs,
                m.throughput, m.mean_latency_s * 1e3, m.deferred_ops,
                static_cast<unsigned long long>(m.degraded_epochs));
    json.AddPoint("degraded_throughput")
        .Set("repair_epochs", static_cast<double>(repair_epochs))
        .Set("throughput_rps", m.throughput)
        .Set("mean_latency_s", m.mean_latency_s)
        .Set("max_latency_s", m.max_latency_s)
        .Set("deferred_ops", m.deferred_ops)
        .Set("degraded_epochs", static_cast<double>(m.degraded_epochs))
        .Set("permanent_losses", static_cast<double>(m.permanent_losses))
        .Set("repairs_completed", static_cast<double>(m.repairs_completed));
  }
  std::printf("\nshape check: storage overhead ~replicas x for replication and\n"
              "~(k+1)/k x for parity; repair always finishes in exactly the configured\n"
              "epochs; longer schedules defer more request mass per loss.\n");
  const std::string path = json.WriteFile();
  if (!path.empty()) {
    std::printf("machine-readable output: %s\n", path.c_str());
  }
  return 0;
}
