// Ablation: deduplication vs. no deduplication under skew (paper section 4.1).
//
// Without dedup, security forces f(R,S) = R -- every subORAM must be able to absorb
// every request, because all R requests might target one object. With dedup the batch
// carries at most one request per distinct object, so the balls-into-bins bound
// applies and each subORAM receives f(R,S) << R. This harness quantifies the total
// work (requests processed across all subORAMs) both ways, on the real load balancer
// under a fully skewed workload.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/batch_bound.h"
#include "src/core/load_balancer.h"

namespace snoopy {
namespace {

uint64_t RealRequestsSentUnderSkew(uint64_t r, uint32_t s) {
  LoadBalancerConfig cfg;
  cfg.num_suborams = s;
  cfg.value_size = 32;
  cfg.lambda = 128;
  LoadBalancer lb(cfg, SipKey{9}, 1);
  RequestBatch batch(32);
  for (uint64_t i = 0; i < r; ++i) {
    RequestHeader h;
    h.key = 42;  // total skew: one hot object
    h.client_seq = i;
    batch.Append(h, {});
  }
  auto epoch = lb.PrepareBatches(std::move(batch));
  uint64_t real = 0;
  for (auto& b : epoch.suboram_batches) {
    for (size_t i = 0; i < b.size(); ++i) {
      real += b.Header(i).key < kDummyKeyBase;
    }
  }
  return real;
}

}  // namespace
}  // namespace snoopy

int main() {
  using namespace snoopy;
  PrintHeader("Ablation", "deduplication under a fully skewed workload (S = 10)");
  std::printf("%10s | %22s | %22s | %14s\n", "requests", "no dedup: total sent",
              "with dedup: total sent", "real survivors");
  for (const uint64_t r : {100ull, 1000ull, 10000ull, 100000ull}) {
    // Without dedup the only safe batch size is R per subORAM (f = R).
    const uint64_t without = r * 10;
    // With dedup: one distinct request -> f(1, 10) dummies per subORAM.
    const uint64_t with_dedup = BatchSize(1, 10, 128) * 10;
    const uint64_t survivors = RealRequestsSentUnderSkew(r, 10);
    std::printf("%10llu | %20llu | %20llu | %14llu\n",
                static_cast<unsigned long long>(r),
                static_cast<unsigned long long>(without),
                static_cast<unsigned long long>(with_dedup),
                static_cast<unsigned long long>(survivors));
  }
  std::printf("\nshape: without dedup the subORAM work grows linearly with the attack\n"
              "volume; with dedup it is constant (one real survivor plus fixed padding) --\n"
              "that is why skewed workloads cannot overflow a batch (Theorem 3 needs\n"
              "distinct requests, and dedup supplies distinctness).\n");
  return 0;
}
