// Figure 14: the planner's optimal machine allocation (a) and monthly cost (b) as the
// required throughput grows, for 10K-object and 1M-object deployments at <= 1 s
// average latency. Larger data sizes favour a higher ratio of subORAMs to load
// balancers (the scan parallelizes across subORAMs); cost grows with both data size
// and throughput.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/planner.h"
#include "src/sim/cost_model.h"

int main() {
  using namespace snoopy;
  PrintHeader("Figure 14", "planner allocation and cost vs. throughput (latency <= 1s)");
  const CostModel model;
  PlannerCostFns fns;
  fns.lb_seconds = [&model](uint64_t r, uint64_t s) { return model.LbEpochSeconds(r, s); };
  fns.suboram_seconds = [&model](uint64_t batch, uint64_t n) {
    return model.SubOramBatchSeconds(batch, n);
  };

  for (const uint64_t objects : {uint64_t{10000}, uint64_t{1000000}}) {
    std::printf("\n-- %llu objects --\n", static_cast<unsigned long long>(objects));
    std::printf("%16s %6s %10s %12s %12s\n", "throughput", "LBs", "subORAMs", "epoch(ms)",
                "cost $/mo");
    for (const double x : {10000.0, 30000.0, 60000.0, 90000.0, 120000.0}) {
      PlannerInput input;
      input.num_objects = objects;
      input.min_throughput = x;
      input.max_latency_s = 1.0;
      const PlannerResult r = PlanConfiguration(input, fns);
      if (!r.feasible) {
        std::printf("%14.0f/s %6s %10s %12s %12s\n", x, "-", "-", "-", "infeasible");
        continue;
      }
      std::printf("%14.0f/s %6u %10u %12.0f %12.0f\n", x, r.load_balancers, r.suborams,
                  r.epoch_seconds * 1e3, r.cost_per_month);
    }
  }
  std::printf("\npaper shape check: the 1M-object deployment needs a higher subORAM:LB\n"
              "ratio than the 10K one; cost rises with throughput; ~$4K/month buys\n"
              "~50K reqs/s at 1M objects and ~120K reqs/s at 10K objects.\n");
  return 0;
}
