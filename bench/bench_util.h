// Shared helpers for the figure/table harnesses: wall-clock timing and aligned
// row printing so each binary reproduces its paper figure as a text table.

#ifndef SNOOPY_BENCH_BENCH_UTIL_H_
#define SNOOPY_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>

namespace snoopy {

inline double TimeSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

inline void PrintHeader(const char* figure, const char* caption) {
  std::printf("==============================================================================\n");
  std::printf("%s -- %s\n", figure, caption);
  std::printf("==============================================================================\n");
}

}  // namespace snoopy

#endif  // SNOOPY_BENCH_BENCH_UTIL_H_
