// Shared helpers for the figure/table harnesses: wall-clock timing, aligned
// row printing so each binary reproduces its paper figure as a text table, and
// the optional --metrics-out=<path> flag that dumps the harness's full
// MetricsRegistry snapshot (RenderJson) at exit for offline analysis.

#ifndef SNOOPY_BENCH_BENCH_UTIL_H_
#define SNOOPY_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <string>

#include "src/telemetry/metrics.h"

namespace snoopy {

inline double TimeSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// Times `fn` in process-CPU seconds (all threads, CLOCK_PROCESS_CPUTIME_ID).
// Unlike wall clock this is immune to the process being descheduled, so it is
// the right ruler for small relative comparisons (e.g. the <1% telemetry
// overhead gates) on shared or single-core CI hosts, where scheduler drift
// between two wall-timed arms easily exceeds the effect being measured. Falls
// back to wall clock where the POSIX clock is unavailable.
inline double CpuTimeSeconds(const std::function<void()>& fn) {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec start{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &start) == 0) {
    fn();
    timespec end{};
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &end) == 0) {
      return static_cast<double>(end.tv_sec - start.tv_sec) +
             static_cast<double>(end.tv_nsec - start.tv_nsec) * 1e-9;
    }
    return 0.0;
  }
#endif
  return TimeSeconds(fn);
}

inline void PrintHeader(const char* figure, const char* caption) {
  std::printf("==============================================================================\n");
  std::printf("%s -- %s\n", figure, caption);
  std::printf("==============================================================================\n");
}

// Scans argv for --metrics-out=<path>. Returns the path, or "" when absent. The
// flag is shared by every harness that keeps a MetricsRegistry; unknown flags are
// left alone so harness-specific options keep working.
inline std::string MetricsOutPath(int argc, char** argv) {
  constexpr const char kPrefix[] = "--metrics-out=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kPrefix, sizeof(kPrefix) - 1) == 0) {
      return std::string(argv[i] + sizeof(kPrefix) - 1);
    }
  }
  return std::string();
}

// Writes the registry's full JSON snapshot to `path` (no-op on empty path).
// Returns true when the file was written.
inline bool WriteMetricsSnapshot(const MetricsRegistry& registry, const std::string& path) {
  if (path.empty()) {
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for metrics snapshot\n", path.c_str());
    return false;
  }
  const std::string body = registry.RenderJson();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (ok) {
    std::printf("metrics snapshot: %s\n", path.c_str());
  }
  return ok;
}

}  // namespace snoopy

#endif  // SNOOPY_BENCH_BENCH_UTIL_H_
