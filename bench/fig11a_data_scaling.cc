// Figure 11a: the number of objects Snoopy can store while keeping mean response time
// under 160 ms (the US->Europe RTT), as subORAMs are added (one load balancer, fixed
// light load). The relationship is linear in S because every epoch scans each
// partition once.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/cluster.h"
#include "src/telemetry/bench_json.h"

namespace snoopy {
namespace {

ClusterMetrics RunAt(uint32_t s, uint64_t objects, double latency_bound,
                     const CostModel& model) {
  ClusterConfig cfg;
  cfg.load_balancers = 1;
  cfg.suborams = s;
  cfg.num_objects = objects;
  cfg.epoch_seconds = 2.0 * latency_bound / 5.0;
  const ClusterSimulator sim(cfg, model);
  return sim.Run(/*ops_per_second=*/2000, /*duration=*/4.0, /*seed=*/7);
}

// Largest object count a (1 LB, s subORAM) deployment can hold with mean latency
// under the bound at a light constant load.
uint64_t MaxObjects(uint32_t s, double latency_bound, const CostModel& model) {
  uint64_t lo = 0;
  uint64_t hi = 8000000;
  while (lo + 10000 < hi) {
    const uint64_t mid = (lo + hi) / 2;
    const ClusterMetrics m = RunAt(s, mid, latency_bound, model);
    if (!m.saturated && m.mean_latency_s <= latency_bound) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace
}  // namespace snoopy

int main() {
  using namespace snoopy;
  PrintHeader("Figure 11a", "data size vs. subORAMs at <= 160 ms mean latency");
  const CostModel model;
  BenchJsonEmitter json("fig11a_data_scaling");
  std::printf("%10s %16s %18s %9s %9s\n", "subORAMs", "max objects", "objects/subORAM",
              "p50(ms)", "p99(ms)");
  uint64_t first = 0;
  uint64_t last = 0;
  for (uint32_t s = 1; s <= 15; s += 1) {
    const uint64_t n = MaxObjects(s, 0.160, model);
    if (s == 1) {
      first = n;
    }
    last = n;
    // Re-run once at the capacity point to report its latency distribution.
    const ClusterMetrics m = RunAt(s, n, 0.160, model);
    std::printf("%10u %16llu %18llu %9.0f %9.0f\n", s, static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(n / s), m.latency_p50_s * 1e3,
                m.latency_p99_s * 1e3);
    json.AddPoint("capacity")
        .Set("suborams", static_cast<double>(s))
        .Set("max_objects", static_cast<double>(n))
        .Set("latency_p50_s", m.latency_p50_s)
        .Set("latency_p99_s", m.latency_p99_s)
        .Set("mean_latency_s", m.mean_latency_s)
        .Set("mean_batch_size", m.mean_batch_size);
    if (s >= 5) {
      s += 1;  // coarser grid at the tail to keep runtime low
    }
  }
  std::printf("\nper-added-subORAM capacity: ~%llu objects (paper: ~191K); at 15 subORAMs\n"
              "the paper stores 2.8M. Shape check: linear growth, near-constant\n"
              "objects-per-subORAM.\n",
              static_cast<unsigned long long>((last - first) / 14));
  const std::string path = json.WriteFile();
  if (!path.empty()) {
    std::printf("machine-readable output: %s\n", path.c_str());
  }
  return 0;
}
