// Figure 10: Snoopy's load balancer scaling *Oblix* as the subORAM (2M 160-byte
// objects). The load balancer design is what makes Oblix shardable at all; the
// signature feature is the throughput spike between 8 and 9 machines, where the
// per-shard data size drops below a position-map recursion threshold and every access
// loses one recursive lookup.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/batch_bound.h"
#include "src/sim/cluster.h"

namespace snoopy {
namespace {

// Snoopy-Oblix: subORAM service time = sequential Oblix accesses over the batch.
double SnoopyOblixThroughput(uint32_t machines, uint64_t objects, double latency_bound,
                             const CostModel& model) {
  double best = 0;
  for (uint32_t lbs = 1; lbs < machines; ++lbs) {
    const uint32_t s = machines - lbs;
    const uint64_t per_shard = objects / s + (objects % s != 0);
    const double per_access = model.OblixAccessSeconds(per_shard);
    const double t_epoch = 2.0 * latency_bound / 5.0;
    // Find the largest load X with a feasible pipeline: LB stage and the subORAM's
    // lbs sequential batches must both fit in the epoch.
    double lo = 0;
    double hi = 2e6;
    for (int iter = 0; iter < 40; ++iter) {
      const double x = 0.5 * (lo + hi);
      const auto r = static_cast<uint64_t>(x * t_epoch / lbs);
      const uint64_t batch = BatchSize(r, s, model.config().lambda);
      const double lb_stage = model.LbEpochSeconds(r, s);
      const double so_stage = static_cast<double>(lbs) *
                              (static_cast<double>(batch) * per_access);
      if (lb_stage <= t_epoch && so_stage <= t_epoch) {
        lo = x;
      } else {
        hi = x;
      }
    }
    best = std::max(best, lo);
  }
  return best;
}

}  // namespace
}  // namespace snoopy

int main() {
  using namespace snoopy;
  PrintHeader("Figure 10", "Oblix as Snoopy's subORAM, 2M x 160B objects");
  const CostModel model;
  constexpr uint64_t kObjects = 2000000;

  const double vanilla = 1.0 / model.OblixAccessSeconds(kObjects);
  std::printf("%9s | %12s %12s %12s | %14s\n", "machines", "1000ms", "500ms", "300ms",
              "recursion");
  for (uint32_t machines = 2; machines <= 17; ++machines) {
    const uint64_t per_shard = kObjects / (machines - 1);
    std::printf("%9u | %10.0f/s %10.0f/s %10.0f/s | %u levels/shard\n", machines,
                SnoopyOblixThroughput(machines, kObjects, 1.0, model),
                SnoopyOblixThroughput(machines, kObjects, 0.5, model),
                SnoopyOblixThroughput(machines, kObjects, 0.3, model),
                model.OblixRecursionLevels(per_shard));
  }
  std::printf("\nvanilla single-machine Oblix: %.0f reqs/s\n", vanilla);
  std::printf("paper reference: 18K reqs/s at 17 machines / 500ms (15.6x vanilla), with a\n"
              "jump between 8 and 9 machines when shards drop a recursion level. Compare\n"
              "with fig09a: the purpose-built subORAM is ~4.85x faster at 17 machines.\n");
  return 0;
}
