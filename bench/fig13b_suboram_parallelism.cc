// Figure 13b: parallelizing subORAM batch processing across enclave threads (batch of
// 4K requests, growing data sizes). One core stays reserved for the host loader thread
// that streams encrypted objects into the enclave (paper section 7).
//
// Runs the real subORAM. As with fig13a, this container has one hardware core, so the
// model columns carry the 4-core shape; measured numbers validate the single-thread
// trend in the data-size dimension.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/suboram.h"
#include "src/sim/cost_model.h"

namespace snoopy {
namespace {

constexpr size_t kValueSize = 160;
constexpr uint64_t kBatch = 4096;

double ProcessTime(uint64_t objects, int threads) {
  SubOramConfig cfg;
  cfg.value_size = kValueSize;
  cfg.lambda = 128;
  cfg.sort_threads = threads;
  cfg.check_distinct = false;  // isolate the Figure 7 pipeline
  SubOram suboram(cfg, objects + threads);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objs;
  objs.reserve(objects);
  for (uint64_t k = 0; k < objects; ++k) {
    objs.emplace_back(k, std::vector<uint8_t>());
  }
  suboram.Initialize(objs);

  RequestBatch batch(kValueSize);
  for (uint64_t i = 0; i < kBatch; ++i) {
    RequestHeader h;
    h.key = i;  // distinct keys
    h.op = kOpRead;
    h.client_seq = i;
    batch.Append(h, {});
  }
  return TimeSeconds([&] { suboram.ProcessBatch(std::move(batch)); });
}

}  // namespace
}  // namespace snoopy

int main() {
  using namespace snoopy;
  PrintHeader("Figure 13b", "subORAM batch processing thread scaling (batch = 4K)");
  const CostModel model;
  // Units live in the header so every row cell matches its header width exactly.
  std::printf("%10s | %16s | %14s %14s %14s\n", "objects", "measured 1thr ms",
              "model 1thr ms", "model 2thr ms", "model 3thr ms");
  for (const uint64_t n : {uint64_t{1} << 12, uint64_t{1} << 14, uint64_t{1} << 16,
                           uint64_t{1} << 18}) {
    const double measured = ProcessTime(n, 1);
    std::printf("%10llu | %16.0f | %14.0f %14.0f %14.0f\n",
                static_cast<unsigned long long>(n), measured * 1e3,
                model.SubOramBatchSeconds(kBatch, n, 1) * 1e3,
                model.SubOramBatchSeconds(kBatch, n, 2) * 1e3,
                model.SubOramBatchSeconds(kBatch, n, 3) * 1e3);
  }
  std::printf("\npaper shape check: processing time scales with data size; extra enclave\n"
              "threads cut it substantially (model columns), with diminishing returns\n"
              "from 2 to 3 threads.\n");
  return 0;
}
