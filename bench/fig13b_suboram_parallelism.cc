// Figure 13b: parallelizing subORAM batch processing across enclave threads (batch of
// 4K requests, growing data sizes). One core stays reserved for the host loader thread
// that streams encrypted objects into the enclave (paper section 7).
//
// Runs the real subORAM. As with fig13a, this container has one hardware core, so the
// model columns carry the 4-core shape; measured numbers validate the single-thread
// trend in the data-size dimension.
//
// A second section sweeps the epoch executor's work-stealing pool
// (SnoopyConfig::epoch_threads) over a multi-subORAM deployment and reads back the
// always-on per-worker profile (tasks, steals, busy/idle seconds) that
// RecordWorkerPhase exports, turning it into a measured parallel-efficiency figure
// for the suboram_execute phase.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/snoopy.h"
#include "src/core/suboram.h"
#include "src/sim/cost_model.h"
#include "src/telemetry/bench_json.h"

namespace snoopy {
namespace {

constexpr size_t kValueSize = 160;
constexpr uint64_t kBatch = 4096;

double ProcessTime(uint64_t objects, int threads) {
  SubOramConfig cfg;
  cfg.value_size = kValueSize;
  cfg.lambda = 128;
  cfg.sort_threads = threads;
  cfg.check_distinct = false;  // isolate the Figure 7 pipeline
  SubOram suboram(cfg, objects + threads);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objs;
  objs.reserve(objects);
  for (uint64_t k = 0; k < objects; ++k) {
    objs.emplace_back(k, std::vector<uint8_t>());
  }
  suboram.Initialize(objs);

  RequestBatch batch(kValueSize);
  for (uint64_t i = 0; i < kBatch; ++i) {
    RequestHeader h;
    h.key = i;  // distinct keys
    h.op = kOpRead;
    h.client_seq = i;
    batch.Append(h, {});
  }
  return TimeSeconds([&] { suboram.ProcessBatch(std::move(batch)); });
}

// Epoch-pool profile for the suboram_execute phase at a given epoch_threads: runs a
// fixed 2-LB / 4-subORAM workload and reads the pool counters from a private
// registry. Efficiency is busy / (busy + idle) across the pool's workers.
struct PoolProfile {
  double wall_s = 0;
  double busy_s = 0;
  double idle_s = 0;
  uint64_t tasks = 0;
  uint64_t steals = 0;
  double efficiency = 0;
};

PoolProfile EpochPoolProfile(MetricsRegistry& registry, int epoch_threads) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = 2;
  cfg.num_suborams = 4;
  cfg.value_size = 32;
  cfg.epoch_threads = epoch_threads;
  Snoopy snoopy(cfg, /*seed=*/97);
  snoopy.set_metrics_registry(&registry);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 4096; ++k) {
    objects.emplace_back(k, std::vector<uint8_t>(32, static_cast<uint8_t>(k)));
  }
  snoopy.Initialize(objects);
  for (uint64_t e = 0; e < 2; ++e) {
    for (uint64_t i = 0; i < 128; ++i) {
      snoopy.SubmitRead(/*client_id=*/i, /*client_seq=*/e, /*key=*/(e * 128 + i) % 4096);
    }
    snoopy.RunEpoch();
  }
  PoolProfile p;
  const MetricLabels labels = {{"phase", "suboram_execute"}};
  p.wall_s = registry.GetHistogram("snoopy_epoch_phase_seconds", labels).sum();
  p.busy_s = registry.GetGauge("snoopy_pool_busy_seconds_total", labels).value();
  p.idle_s = registry.GetGauge("snoopy_pool_idle_seconds_total", labels).value();
  p.tasks = registry.GetCounter("snoopy_pool_tasks_total", labels).value();
  p.steals = registry.GetCounter("snoopy_pool_steals_total", labels).value();
  const double denom = p.busy_s + p.idle_s;
  p.efficiency = denom > 0 ? p.busy_s / denom : 0.0;
  return p;
}

}  // namespace
}  // namespace snoopy

int main(int argc, char** argv) {
  using namespace snoopy;
  const std::string metrics_out = MetricsOutPath(argc, argv);
  PrintHeader("Figure 13b", "subORAM batch processing thread scaling (batch = 4K)");
  const CostModel model;
  BenchJsonEmitter emitter("fig13b_suboram_parallelism");
  // Units live in the header so every row cell matches its header width exactly.
  std::printf("%10s | %16s | %14s %14s %14s\n", "objects", "measured 1thr ms",
              "model 1thr ms", "model 2thr ms", "model 3thr ms");
  for (const uint64_t n : {uint64_t{1} << 12, uint64_t{1} << 14, uint64_t{1} << 16,
                           uint64_t{1} << 18}) {
    const double measured = ProcessTime(n, 1);
    std::printf("%10llu | %16.0f | %14.0f %14.0f %14.0f\n",
                static_cast<unsigned long long>(n), measured * 1e3,
                model.SubOramBatchSeconds(kBatch, n, 1) * 1e3,
                model.SubOramBatchSeconds(kBatch, n, 2) * 1e3,
                model.SubOramBatchSeconds(kBatch, n, 3) * 1e3);
    emitter.AddPoint("suboram_threads")
        .Set("objects", static_cast<double>(n))
        .Set("threads", 1.0)
        .Set("seconds", measured)
        .Set("model_seconds_1thr", model.SubOramBatchSeconds(kBatch, n, 1))
        .Set("model_seconds_2thr", model.SubOramBatchSeconds(kBatch, n, 2))
        .Set("model_seconds_3thr", model.SubOramBatchSeconds(kBatch, n, 3));
  }

  // Epoch executor pool: the always-on per-worker profile for suboram_execute at
  // 1/2/4 epoch threads (2 LB + 4 SO, 2 epochs x 128 reqs).
  std::printf("\nepoch pool (suboram_execute, 2 LB + 4 SO):\n");
  std::printf("%8s %10s %10s %10s %7s %7s %6s\n", "threads", "wall ms", "busy ms",
              "idle ms", "tasks", "steals", "eff");
  std::unique_ptr<MetricsRegistry> last_registry;
  for (const int threads : {1, 2, 4}) {
    auto registry = std::make_unique<MetricsRegistry>();
    const PoolProfile p = EpochPoolProfile(*registry, threads);
    std::printf("%8d %10.1f %10.1f %10.1f %7llu %7llu %6.2f\n", threads, p.wall_s * 1e3,
                p.busy_s * 1e3, p.idle_s * 1e3, static_cast<unsigned long long>(p.tasks),
                static_cast<unsigned long long>(p.steals), p.efficiency);
    emitter.AddPoint("epoch_pool")
        .Set("epoch_threads", static_cast<double>(threads))
        .Set("wall_s", p.wall_s)
        .Set("busy_s", p.busy_s)
        .Set("idle_s", p.idle_s)
        .Set("tasks", static_cast<double>(p.tasks))
        .Set("steals", static_cast<double>(p.steals))
        .Set("parallel_efficiency", p.efficiency);
    if (threads == 4) {
      last_registry = std::move(registry);
    }
  }


  const std::string path = emitter.WriteFile(".");
  if (!path.empty()) {
    std::printf("\nwrote %s\n", path.c_str());
  }
  if (last_registry != nullptr) {
    WriteMetricsSnapshot(*last_registry, metrics_out);
  }

  std::printf("\npaper shape check: processing time scales with data size; extra enclave\n"
              "threads cut it substantially (model columns), with diminishing returns\n"
              "from 2 to 3 threads. The epoch-pool rows profile the work-stealing\n"
              "executor on this host (1 core: multi-thread efficiency is coordination\n"
              "overhead; multi-core hosts approach 1.0).\n");
  return 0;
}
