// Table 8: qualitative comparison of the baselines. Unlike the paper's static table,
// this harness *demonstrates* each property by running the actual implementations:
//   - oblivious: per-shard access counts leak (plaintext) vs. stay flat (Snoopy);
//   - no trusted proxy: which components sit outside the enclave trust boundary;
//   - high throughput & scaling: from the calibrated model at 2M 160-byte objects.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/plaintext_store.h"
#include "src/core/snoopy.h"
#include "src/sim/cluster.h"

int main() {
  using namespace snoopy;
  PrintHeader("Table 8", "baseline properties, demonstrated");

  // Obliviousness demo: a fully skewed workload (every request for one key).
  PlaintextStore redis(4, 32);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 400; ++k) {
    objects.emplace_back(k, std::vector<uint8_t>(32, 1));
  }
  redis.Initialize(objects);
  for (int i = 0; i < 100; ++i) {
    redis.Read(123);
  }
  uint64_t max_shard = 0;
  for (const uint64_t c : redis.shard_accesses()) {
    max_shard = c > max_shard ? c : max_shard;
  }

  SnoopyConfig cfg;
  cfg.num_suborams = 4;
  cfg.value_size = 32;
  cfg.lambda = 40;
  Snoopy snoopy_store(cfg, 1);
  snoopy_store.Initialize(objects);
  for (uint64_t i = 0; i < 100; ++i) {
    snoopy_store.SubmitRead(1, i, 123);
  }
  snoopy_store.RunEpoch();
  // Every subORAM received exactly the same batch size: nothing to read off.
  std::printf("skewed workload (100 reads of one key):\n");
  std::printf("  Redis     : hottest shard saw %llu of 100 accesses -> pattern leaked\n",
              static_cast<unsigned long long>(max_shard));
  std::printf("  Snoopy    : every subORAM received one equal-size encrypted batch\n\n");

  const CostModel model;
  const double snoopy18 =
      ClusterSimulator::BestSplit(18, 2000000, 1.0, model).metrics.throughput;

  std::printf("%-10s %-10s %-16s %-18s %-22s\n", "system", "oblivious", "trusted proxy",
              "throughput (2M)", "scales with machines");
  std::printf("%-10s %-10s %-16s %-18s %-22s\n", "Redis", "no", "none",
              "4.2M/s (15 mach)", "yes (plaintext shard)");
  std::printf("%-10s %-10s %-16s %-18.0f %-22s\n", "Obladi", "yes", "REQUIRED",
              model.ObladiThroughput(), "no (proxy ceiling)");
  std::printf("%-10s %-10s %-16s %-18s %-22s\n", "Oblix", "yes", "none (enclave)",
              "1.2K/s (1 mach)", "no (sequential)");
  std::printf("%-10s %-10s %-16s %-18.0f %-22s\n", "Snoopy", "yes", "none (enclave)",
              snoopy18, "yes (this table's point)");
  return 0;
}
