// Figure 12: breakdown of the time to process one batch -- load balancer batch
// construction, subORAM batch processing, response matching -- as batch size grows,
// for three data sizes (2^10 / 2^15 / 2^20 objects; one load balancer, one subORAM).
//
// This harness runs the REAL implementation (oblivious sorts, compaction, two-tier
// hash table, linear scan) and measures wall-clock time on this machine. Absolute
// numbers differ from the paper's SGX hardware; the shapes to check are (1) load
// balancer time grows with batch size, (2) subORAM time is dominated by data size,
// and (3) the per-object cost jumps for the largest data size (the EPC cliff on SGX;
// cache/TLB pressure here). The projected 4-core SGX times from the calibrated model
// are printed alongside for comparison with the paper's axes.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/load_balancer.h"
#include "src/core/suboram.h"
#include "src/enclave/epc.h"
#include "src/sim/cost_model.h"

namespace snoopy {
namespace {

constexpr size_t kValueSize = 160;
constexpr uint32_t kLambda = 128;

RequestBatch MakeRequests(uint64_t count, uint64_t key_space) {
  RequestBatch batch(kValueSize);
  for (uint64_t i = 0; i < count; ++i) {
    RequestHeader h;
    h.key = (i * 2654435761u) % key_space;  // some duplicates, like real traffic
    h.op = (i % 4 == 0) ? kOpWrite : kOpRead;
    h.client_seq = i;
    batch.Append(h, {});
  }
  return batch;
}

}  // namespace
}  // namespace snoopy

int main() {
  using namespace snoopy;
  PrintHeader("Figure 12", "batch processing breakdown (measured, 1 LB + 1 subORAM)");
  const CostModel model;

  for (const uint64_t objects : {uint64_t{1} << 10, uint64_t{1} << 15, uint64_t{1} << 20}) {
    std::printf("\n-- data size: 2^%d objects --\n",
                objects == (1u << 10) ? 10 : (objects == (1u << 15) ? 15 : 20));
    std::printf("%9s %15s %15s %15s | %21s\n", "requests", "make batch(ms)",
                "suboram(ms)", "match(ms)", "model 4-core SGX (ms)");

    SubOramConfig so_cfg;
    so_cfg.value_size = kValueSize;
    so_cfg.lambda = kLambda;
    SubOram suboram(so_cfg, /*seed=*/1);
    {
      std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objs;
      objs.reserve(objects);
      for (uint64_t k = 0; k < objects; ++k) {
        objs.emplace_back(k, std::vector<uint8_t>());
      }
      suboram.Initialize(objs);
    }

    LoadBalancerConfig lb_cfg;
    lb_cfg.num_suborams = 1;
    lb_cfg.value_size = kValueSize;
    lb_cfg.lambda = kLambda;
    LoadBalancer lb(lb_cfg, SipKey{1}, /*rng_seed=*/2);

    const uint64_t max_batch = objects <= (1u << 10) ? 512 : 1024;
    for (uint64_t r = 64; r <= max_batch; r *= 4) {
      LoadBalancer::PreparedEpoch epoch;
      const double make_s =
          TimeSeconds([&] { epoch = lb.PrepareBatches(MakeRequests(r, objects)); });

      RequestBatch response(kValueSize);
      const double so_s = TimeSeconds(
          [&] { response = suboram.ProcessBatch(std::move(epoch.suboram_batches[0])); });

      std::vector<RequestBatch> responses;
      responses.push_back(std::move(response));
      epoch.suboram_batches.clear();
      const double match_s =
          TimeSeconds([&] { lb.MatchResponses(std::move(epoch), std::move(responses)); });

      std::printf("%9llu %15.1f %15.1f %15.1f | %6.1f %6.1f %6.1f\n",
                  static_cast<unsigned long long>(r), make_s * 1e3, so_s * 1e3,
                  match_s * 1e3, model.LbPrepareSeconds(r, 1, 4) * 1e3,
                  model.SubOramBatchSeconds(BatchSize(r, 1, kLambda), objects) * 1e3,
                  model.LbMatchSeconds(r, 1, 4) * 1e3);
    }
  }
  // The EPC cliff behind the 2^20 jump, from the paging model: per-epoch scan paging
  // breakdown at each data size (~336 B/record working set: 160 B value + table slot
  // and metadata overhead).
  std::printf("\nEPC paging model (host loader, ~336 B/record working set):\n");
  std::printf("%9s %14s %16s %16s %16s\n", "objects", "fits EPC", "resident (MB)",
              "streamed (MB)", "scan (ms)");
  const EpcModel epc;
  for (const uint64_t objects : {uint64_t{1} << 10, uint64_t{1} << 15, uint64_t{1} << 20}) {
    const uint64_t bytes = objects * 336;
    EpcScanStats stats;
    const double scan_s = epc.ScanSeconds(bytes, bytes, /*use_host_loader=*/true, &stats);
    std::printf("%9llu %14s %16.1f %16.1f %16.2f\n",
                static_cast<unsigned long long>(objects), epc.Fits(bytes) ? "yes" : "no",
                static_cast<double>(stats.bytes_resident) / (1024.0 * 1024.0),
                static_cast<double>(stats.bytes_streamed) / (1024.0 * 1024.0), scan_s * 1e3);
  }

  std::printf("\npaper shape check: subORAM time tracks data size (big jump at 2^20 from\n"
              "enclave paging); load balancer time tracks batch size.\n");
  return 0;
}
