// The paper's headline result (sections 1 and 8.2): for 2M 160-byte objects,
//   - Obladi peaks at 6,716 reqs/s (proxy + server; cannot scale further),
//   - Oblix serves ~1,153 reqs/s on its single machine,
//   - Snoopy reaches 92K reqs/s on 18 machines with mean latency under 500 ms
//     (13.7x Obladi), and 130K under 1 s,
//   - Redis (insecure) does ~4.2M reqs/s on 15 machines (~39x Snoopy at 1 s).
// This harness regenerates the comparison from the calibrated model + pipeline
// simulator and prints the achieved ratios.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/cluster.h"

int main() {
  using namespace snoopy;
  PrintHeader("Headline", "Snoopy vs. Obladi vs. Oblix vs. Redis, 2M x 160B objects");
  const CostModel model;
  constexpr uint64_t kObjects = 2000000;

  const auto s500 = ClusterSimulator::BestSplit(18, kObjects, 0.5, model);
  const auto s1000 = ClusterSimulator::BestSplit(18, kObjects, 1.0, model);
  const double obladi = model.ObladiThroughput();
  const double oblix = 1.0 / model.OblixAccessSeconds(kObjects);
  const double redis = model.RedisThroughput(15);

  std::printf("%-22s %14s %12s %10s\n", "system", "machines", "reqs/s", "latency");
  std::printf("%-22s %14s %12.0f %10s\n", "Oblix", "1", oblix, "~1 ms");
  std::printf("%-22s %14s %12.0f %10s\n", "Obladi", "2 (max)", obladi, "<80 ms");
  std::printf("%-22s %8u LB+%u SO %12.0f %10s\n", "Snoopy (500ms)", s500.load_balancers,
              s500.suborams, s500.metrics.throughput, "<500 ms");
  std::printf("%-22s %8u LB+%u SO %12.0f %10s\n", "Snoopy (1s)", s1000.load_balancers,
              s1000.suborams, s1000.metrics.throughput, "<1 s");
  std::printf("%-22s %14s %12.0f %10s\n", "Redis (insecure)", "15", redis, "<800 ms");

  std::printf("\nratios: Snoopy(500ms)/Obladi = %.1fx   (paper: 13.7x)\n",
              s500.metrics.throughput / obladi);
  std::printf("        Snoopy(500ms)/Oblix  = %.1fx   (paper: ~80x)\n",
              s500.metrics.throughput / oblix);
  std::printf("        Redis/Snoopy(1s)     = %.1fx   (paper: 39.1x)\n",
              redis / s1000.metrics.throughput);
  return 0;
}
