// The paper's headline result (sections 1 and 8.2): for 2M 160-byte objects,
//   - Obladi peaks at 6,716 reqs/s (proxy + server; cannot scale further),
//   - Oblix serves ~1,153 reqs/s on its single machine,
//   - Snoopy reaches 92K reqs/s on 18 machines with mean latency under 500 ms
//     (13.7x Obladi), and 130K under 1 s,
//   - Redis (insecure) does ~4.2M reqs/s on 15 machines (~39x Snoopy at 1 s).
// This harness regenerates the comparison from the calibrated model + pipeline
// simulator and prints the achieved ratios.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/snoopy.h"
#include "src/obl/bucket_sort.h"
#include "src/obl/kernels.h"
#include "src/sim/cluster.h"
#include "src/telemetry/bench_json.h"
#include "src/telemetry/tracing.h"

namespace snoopy {
namespace {

// Telemetry overhead check on the functional deployment: the same epoch workload with
// metrics recording disabled (registry = nullptr) and enabled (private registry), and
// independently with span tracing disabled (tracer = nullptr) and enabled (private
// enabled tracer). Telemetry is a handful of counter bumps and clock reads per epoch
// against oblivious sorts over thousands of records, so the delta must sit below
// run-to-run noise; the tracing delta is gated at <1% in CI.
//
// Resolving a <1% effect on a shared single-core host takes a deliberate protocol;
// two naive ones demonstrably fail here: wall-clock best-of-N minima drift several
// percent between arms (the container gets descheduled), and even whole-run CPU
// time swings a few percent with CPU frequency over the bench's multi-second life.
// So the two arms are interleaved at *epoch* granularity: two identical
// deployments, one with telemetry and one without, alternate single epochs
// (~3-4 ms each, order swapping every epoch), each epoch timed in process-CPU
// seconds and summed per arm. Both sums then sample the same frequency/cache/
// scheduler conditions to well under the gate, and a final median over reps
// discards a rep that caught an interrupt storm.
constexpr uint64_t kOverheadEpochs = 192;
constexpr int kOverheadReps = 5;

struct OverheadArms {
  double off_s = 0;  // summed process-CPU seconds, telemetry disabled
  double on_s = 0;   // summed process-CPU seconds, telemetry enabled
};

OverheadArms EpochPairSeconds(MetricsRegistry* registry, Tracer* tracer, uint64_t seed) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = 2;
  cfg.num_suborams = 2;
  cfg.value_size = 32;
  Snoopy off(cfg, seed);
  Snoopy on(cfg, seed);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 2048; ++k) {
    objects.emplace_back(k, std::vector<uint8_t>(32, static_cast<uint8_t>(k)));
  }
  off.Initialize(objects);
  on.Initialize(objects);
  // Explicit null on the baseline, not the process-global default: the comparison
  // must not pick up an environment-enabled global tracer in its off arm.
  off.set_metrics_registry(nullptr);
  off.set_tracer(nullptr);
  on.set_metrics_registry(registry);
  on.set_tracer(tracer);
  OverheadArms arms;
  const auto one_epoch = [](Snoopy& s, uint64_t e) {
    for (uint64_t i = 0; i < 64; ++i) {
      s.SubmitRead(/*client_id=*/i, /*client_seq=*/e, /*key=*/(e * 64 + i) % 2048);
    }
    s.RunEpoch();
  };
  for (uint64_t e = 0; e < kOverheadEpochs; ++e) {
    if (e % 2 == 0) {
      arms.off_s += CpuTimeSeconds([&] { one_epoch(off, e); });
      arms.on_s += CpuTimeSeconds([&] { one_epoch(on, e); });
    } else {
      arms.on_s += CpuTimeSeconds([&] { one_epoch(on, e); });
      arms.off_s += CpuTimeSeconds([&] { one_epoch(off, e); });
    }
  }
  return arms;
}

// One phase of the epoch pipeline as seen by the always-on pool profile: wall time
// from the phase histogram, worker busy/idle seconds and task/steal counts from the
// pool gauges RecordWorkerPhase maintains. Efficiency is busy / (busy + idle): the
// fraction of worker-seconds inside the phase spent running tasks rather than parked
// at the join barrier. cpu_busy_s is the per-thread CLOCK_THREAD_CPUTIME_ID sum for
// the same spans: unlike wall-busy it is immune to timesharing, so the 4t/1t ratio
// of cpu_busy_s is the honest work-inflation figure (the old wall-busy ratio read
// 3.2x on a one-core host purely from scheduler interleaving).
struct PhaseProfile {
  const char* phase;
  double wall_s = 0;
  double busy_s = 0;
  double idle_s = 0;
  double cpu_busy_s = 0;
  uint64_t tasks = 0;
  uint64_t steals = 0;
  double efficiency = 0;
};

constexpr const char* kPipelinePhases[] = {"lb_prepare", "suboram_execute",
                                           "response_match"};

std::vector<PhaseProfile> PhaseBreakdown(MetricsRegistry& registry, int epoch_threads,
                                         uint64_t seed) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = 2;
  cfg.num_suborams = 4;
  cfg.value_size = 160;
  cfg.epoch_threads = epoch_threads;
  Snoopy snoopy(cfg, seed);
  snoopy.set_metrics_registry(&registry);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 8192; ++k) {
    objects.emplace_back(k, std::vector<uint8_t>(160, static_cast<uint8_t>(k)));
  }
  snoopy.Initialize(objects);
  // 8 epochs so pool-thread spin-up and first-touch page faults in epoch 0 are
  // amortized out of the per-phase CPU totals (they are one-time costs, not work
  // inflation).
  for (uint64_t e = 0; e < 8; ++e) {
    for (uint64_t i = 0; i < 256; ++i) {
      snoopy.SubmitRead(/*client_id=*/i, /*client_seq=*/e, /*key=*/(e * 256 + i) % 8192);
    }
    snoopy.RunEpoch();
  }
  std::vector<PhaseProfile> out;
  for (const char* phase : kPipelinePhases) {
    PhaseProfile p;
    p.phase = phase;
    const MetricLabels labels = {{"phase", phase}};
    p.wall_s = registry.GetHistogram("snoopy_epoch_phase_seconds", labels).sum();
    p.busy_s = registry.GetGauge("snoopy_pool_busy_seconds_total", labels).value();
    p.idle_s = registry.GetGauge("snoopy_pool_idle_seconds_total", labels).value();
    p.cpu_busy_s = registry.GetGauge("snoopy_pool_cpu_busy_seconds_total", labels).value();
    p.tasks = registry.GetCounter("snoopy_pool_tasks_total", labels).value();
    p.steals = registry.GetCounter("snoopy_pool_steals_total", labels).value();
    const double denom = p.busy_s + p.idle_s;
    p.efficiency = denom > 0 ? p.busy_s / denom : 0.0;
    out.push_back(p);
  }
  return out;
}

// Parallel epoch executor scaling (SnoopyConfig::epoch_threads): total
// suboram_execute phase wall time over a fixed multi-subORAM workload, read back from
// a private registry. On a multi-core host the 4-thread run overlaps the four
// subORAMs and the phase time drops; on a single-core container the two settings tie
// (the knob adds only thread coordination, and responses/traces are identical by
// construction either way).
double SubOramExecuteSeconds(int epoch_threads, uint64_t seed) {
  SnoopyConfig cfg;
  cfg.num_load_balancers = 2;
  cfg.num_suborams = 4;
  cfg.value_size = 160;  // the headline object size; record moves dominate the scan
  cfg.epoch_threads = epoch_threads;
  MetricsRegistry registry;
  Snoopy snoopy(cfg, seed);
  snoopy.set_metrics_registry(&registry);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < 8192; ++k) {
    objects.emplace_back(k, std::vector<uint8_t>(160, static_cast<uint8_t>(k)));
  }
  snoopy.Initialize(objects);
  for (uint64_t e = 0; e < 4; ++e) {
    for (uint64_t i = 0; i < 256; ++i) {
      snoopy.SubmitRead(/*client_id=*/i, /*client_seq=*/e, /*key=*/(e * 256 + i) % 8192);
    }
    snoopy.RunEpoch();
  }
  return registry.GetHistogram("snoopy_epoch_phase_seconds", {{"phase", "suboram_execute"}})
      .sum();
}

}  // namespace
}  // namespace snoopy

int main(int argc, char** argv) {
  using namespace snoopy;
  const std::string metrics_out = MetricsOutPath(argc, argv);
  PrintHeader("Headline", "Snoopy vs. Obladi vs. Oblix vs. Redis, 2M x 160B objects");
  const CostModel model;
  constexpr uint64_t kObjects = 2000000;

  const auto s500 = ClusterSimulator::BestSplit(18, kObjects, 0.5, model);
  const auto s1000 = ClusterSimulator::BestSplit(18, kObjects, 1.0, model);
  const double obladi = model.ObladiThroughput();
  const double oblix = 1.0 / model.OblixAccessSeconds(kObjects);
  const double redis = model.RedisThroughput(15);

  std::printf("%-22s %14s %12s %10s\n", "system", "machines", "reqs/s", "latency");
  std::printf("%-22s %14s %12.0f %10s\n", "Oblix", "1", oblix, "~1 ms");
  std::printf("%-22s %14s %12.0f %10s\n", "Obladi", "2 (max)", obladi, "<80 ms");
  std::printf("%-22s %8u LB+%u SO %12.0f %10s\n", "Snoopy (500ms)", s500.load_balancers,
              s500.suborams, s500.metrics.throughput, "<500 ms");
  std::printf("%-22s %8u LB+%u SO %12.0f %10s\n", "Snoopy (1s)", s1000.load_balancers,
              s1000.suborams, s1000.metrics.throughput, "<1 s");
  std::printf("%-22s %14s %12.0f %10s\n", "Redis (insecure)", "15", redis, "<800 ms");

  std::printf("\nratios: Snoopy(500ms)/Obladi = %.1fx   (paper: 13.7x)\n",
              s500.metrics.throughput / obladi);
  std::printf("        Snoopy(500ms)/Oblix  = %.1fx   (paper: ~80x)\n",
              s500.metrics.throughput / oblix);
  std::printf("        Redis/Snoopy(1s)     = %.1fx   (paper: 39.1x)\n",
              redis / s1000.metrics.throughput);

  // Telemetry overhead: epoch-interleaved off/on arms (see EpochPairSeconds),
  // median fraction over the reps.
  MetricsRegistry registry;
  double off_s = 1e9;
  double on_s = 1e9;
  std::vector<double> telemetry_fracs;
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    const OverheadArms arms = EpochPairSeconds(&registry, nullptr, /*seed=*/11 + rep);
    off_s = std::min(off_s, arms.off_s);
    on_s = std::min(on_s, arms.on_s);
    telemetry_fracs.push_back(arms.on_s / arms.off_s - 1.0);
  }
  std::sort(telemetry_fracs.begin(), telemetry_fracs.end());
  const double telemetry_frac = telemetry_fracs[telemetry_fracs.size() / 2];
  std::printf("\ntelemetry overhead (%llu epochs x 64 reqs, epoch-interleaved cpu time, "
              "median of %d): off %.1f ms, on %.1f ms (%+.1f%%)\n",
              static_cast<unsigned long long>(kOverheadEpochs), kOverheadReps,
              off_s * 1e3, on_s * 1e3, 100.0 * telemetry_frac);

  // Span-tracing overhead: same epoch-interleaved protocol, tracing fully off vs. a
  // private enabled tracer at detail 1 (the always-on production setting).
  Tracer trace_tracer;
  trace_tracer.Enable(/*detail=*/1);
  double trace_off_s = 1e9;
  double trace_on_s = 1e9;
  std::vector<double> trace_fracs;
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    const OverheadArms arms = EpochPairSeconds(nullptr, &trace_tracer, /*seed=*/41 + rep);
    trace_off_s = std::min(trace_off_s, arms.off_s);
    trace_on_s = std::min(trace_on_s, arms.on_s);
    trace_fracs.push_back(arms.on_s / arms.off_s - 1.0);
  }
  std::sort(trace_fracs.begin(), trace_fracs.end());
  const double trace_frac = trace_fracs[trace_fracs.size() / 2];
  std::printf("tracing overhead (%llu epochs x 64 reqs, epoch-interleaved cpu time, "
              "median of %d): off %.1f ms, on %.1f ms (%+.1f%%, %llu spans)\n",
              static_cast<unsigned long long>(kOverheadEpochs), kOverheadReps,
              trace_off_s * 1e3, trace_on_s * 1e3, 100.0 * trace_frac,
              static_cast<unsigned long long>(trace_tracer.spans_recorded()));

  // Epoch-parallelism scaling: suboram_execute phase time at 4 subORAMs with the
  // parallel epoch executor off (1 thread) and on (4 threads). Best of 3 per setting.
  double seq_s = 1e9;
  double par_s = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    seq_s = std::min(seq_s, SubOramExecuteSeconds(/*epoch_threads=*/1, /*seed=*/23 + rep));
    par_s = std::min(par_s, SubOramExecuteSeconds(/*epoch_threads=*/4, /*seed=*/23 + rep));
  }
  std::printf("epoch parallelism (4 subORAMs, suboram_execute phase, best of 3): "
              "1 thread %.1f ms, 4 threads %.1f ms (speedup %.2fx)\n",
              seq_s * 1e3, par_s * 1e3, seq_s / par_s);

  // Phase breakdown from the always-on pool profile: per-phase wall time, worker
  // busy/idle split, task/steal counts, and parallel efficiency at 1 and 4 epoch
  // threads. These are the same counters RecordWorkerPhase exports in production.
  MetricsRegistry breakdown_1t;
  MetricsRegistry breakdown_4t;
  const auto phases_1t = PhaseBreakdown(breakdown_1t, /*epoch_threads=*/1, /*seed=*/53);
  const auto phases_4t = PhaseBreakdown(breakdown_4t, /*epoch_threads=*/4, /*seed=*/53);
  // speedup_vs_1_thread compares phase wall time across the two runs; work_inflation
  // compares per-thread CPU time (the timesharing-proof measure of work actually
  // done). A healthy parallel phase keeps inflation near 1.0 at any thread count;
  // wall speedup additionally needs real cores under it.
  std::printf("\nphase breakdown (8 epochs x 256 reqs, 2 LB + 4 SO):\n");
  std::printf("%8s %-16s %10s %10s %10s %10s %7s %7s %6s %8s %9s\n", "threads", "phase",
              "wall ms", "busy ms", "cpu ms", "idle ms", "tasks", "steals", "eff",
              "speedup", "inflation");
  for (const auto* phases : {&phases_1t, &phases_4t}) {
    const int threads = phases == &phases_1t ? 1 : 4;
    for (size_t i = 0; i < phases->size(); ++i) {
      const PhaseProfile& p = (*phases)[i];
      const PhaseProfile& base = phases_1t[i];
      const double speedup = p.wall_s > 0 ? base.wall_s / p.wall_s : 0.0;
      const double inflation = base.cpu_busy_s > 0 ? p.cpu_busy_s / base.cpu_busy_s : 0.0;
      std::printf("%8d %-16s %10.1f %10.1f %10.1f %10.1f %7llu %7llu %6.2f %7.2fx %8.2fx\n",
                  threads, p.phase, p.wall_s * 1e3, p.busy_s * 1e3, p.cpu_busy_s * 1e3,
                  p.idle_s * 1e3, static_cast<unsigned long long>(p.tasks),
                  static_cast<unsigned long long>(p.steals), p.efficiency, speedup,
                  inflation);
    }
  }

  // Kernel-backend end-to-end effect: the identical suboram_execute workload with the
  // oblivious kernel layer pinned to the portable scalar backend versus the widest
  // one this CPU supports. Responses and traces are byte-identical either way; only
  // the wall time moves.
  const KernelBackend native_backend = ActiveKernelBackend();
  double generic_s = 1e9;
  double native_s = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    SetKernelBackend(KernelBackend::kGeneric);
    generic_s = std::min(generic_s, SubOramExecuteSeconds(/*epoch_threads=*/1, /*seed=*/31 + rep));
    SetKernelBackend(native_backend);
    native_s = std::min(native_s, SubOramExecuteSeconds(/*epoch_threads=*/1, /*seed=*/31 + rep));
  }
  SetKernelBackend(native_backend);
  std::printf("kernel backend (4 subORAMs, suboram_execute phase, best of 3): "
              "generic %.1f ms, %s %.1f ms (speedup %.2fx)\n",
              generic_s * 1e3, KernelBackendName(native_backend), native_s * 1e3,
              generic_s / native_s);
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf("note: this host exposes a single hardware core, so the 4-thread run can\n"
                "only show coordination overhead; the speedup materializes on multi-core\n"
                "hosts (responses and traces are identical either way).\n");
  }

  BenchJsonEmitter json("headline_comparison");
  json.AddPoint("throughput")
      .Set("system", "snoopy")
      .Set("latency_bound_s", 0.5)
      .Set("throughput_rps", s500.metrics.throughput)
      .Set("latency_p50_s", s500.metrics.latency_p50_s)
      .Set("latency_p99_s", s500.metrics.latency_p99_s);
  json.AddPoint("throughput")
      .Set("system", "snoopy")
      .Set("latency_bound_s", 1.0)
      .Set("throughput_rps", s1000.metrics.throughput)
      .Set("latency_p50_s", s1000.metrics.latency_p50_s)
      .Set("latency_p99_s", s1000.metrics.latency_p99_s);
  json.AddPoint("throughput").Set("system", "obladi").Set("throughput_rps", obladi);
  json.AddPoint("throughput").Set("system", "oblix").Set("throughput_rps", oblix);
  json.AddPoint("throughput").Set("system", "redis").Set("throughput_rps", redis);
  json.AddPoint("telemetry_overhead")
      .Set("metrics_off_s", off_s)
      .Set("metrics_on_s", on_s)
      .Set("overhead_fraction", telemetry_frac);
  json.AddPoint("tracing_overhead")
      .Set("tracing_off_s", trace_off_s)
      .Set("tracing_on_s", trace_on_s)
      .Set("overhead_fraction", trace_frac)
      .Set("spans_recorded", static_cast<double>(trace_tracer.spans_recorded()));
  const double hardware_threads =
      static_cast<double>(std::max(1u, std::thread::hardware_concurrency()));
  for (const auto* phases : {&phases_1t, &phases_4t}) {
    const int threads = phases == &phases_1t ? 1 : 4;
    for (size_t i = 0; i < phases->size(); ++i) {
      const PhaseProfile& p = (*phases)[i];
      const PhaseProfile& base = phases_1t[i];
      json.AddPoint("phase_breakdown")
          .Set("epoch_threads", static_cast<double>(threads))
          .Set("hardware_threads", hardware_threads)
          .Set("phase", std::string(p.phase))
          .Set("wall_s", p.wall_s)
          .Set("busy_s", p.busy_s)
          .Set("cpu_busy_s", p.cpu_busy_s)
          .Set("idle_s", p.idle_s)
          .Set("tasks", static_cast<double>(p.tasks))
          .Set("steals", static_cast<double>(p.steals))
          .Set("parallel_efficiency", p.efficiency)
          .Set("speedup_vs_1_thread", p.wall_s > 0 ? base.wall_s / p.wall_s : 0.0)
          .Set("work_inflation",
               base.cpu_busy_s > 0 ? p.cpu_busy_s / base.cpu_busy_s : 0.0);
    }
  }
  // The sort-strategy column: the configured oblivious-sort strategy these epochs
  // ran under (SNOOPY_SORT_STRATEGY override applied, mirroring ResolveSortStrategy),
  // so a JSON regenerated under CI's bucket-strategy stage is distinguishable from
  // the default run when comparing committed numbers.
  SortStrategy configured_sort = SnoopyConfig{}.sort_strategy;
  if (const char* env = std::getenv("SNOOPY_SORT_STRATEGY")) {
    if (std::strcmp(env, "bitonic") == 0) {
      configured_sort = SortStrategy::kBitonic;
    } else if (std::strcmp(env, "bucket") == 0) {
      configured_sort = SortStrategy::kBucket;
    } else if (std::strcmp(env, "auto") == 0) {
      configured_sort = SortStrategy::kAuto;
    }
  }
  const char* sort_strategy_name = SortStrategyName(configured_sort);
  json.AddPoint("epoch_parallelism")
      .Set("num_suborams", 4)
      .Set("epoch_threads", 1)
      .Set("hardware_threads", hardware_threads)
      .Set("sort_strategy", sort_strategy_name)
      .Set("suboram_execute_s", seq_s);
  json.AddPoint("epoch_parallelism")
      .Set("num_suborams", 4)
      .Set("epoch_threads", 4)
      .Set("hardware_threads", hardware_threads)
      .Set("sort_strategy", sort_strategy_name)
      .Set("suboram_execute_s", par_s)
      .Set("speedup_vs_1_thread", seq_s / par_s);
  json.AddPoint("kernel_backend")
      .Set("backend", "generic")
      .Set("num_suborams", 4)
      .Set("suboram_execute_s", generic_s);
  json.AddPoint("kernel_backend")
      .Set("backend", KernelBackendName(native_backend))
      .Set("num_suborams", 4)
      .Set("suboram_execute_s", native_s)
      .Set("speedup_vs_generic", generic_s / native_s);
  const std::string path = json.WriteFile();
  if (!path.empty()) {
    std::printf("machine-readable output: %s\n", path.c_str());
  }
  // --metrics-out: the 4-thread breakdown registry carries the full pipeline
  // profile (phase histograms plus the pool's busy/idle/steal series).
  WriteMetricsSnapshot(breakdown_4t, metrics_out);
  return 0;
}
