// Ablation: performance independence from the request distribution (paper section 8:
// oblivious guarantees mean the workload cannot affect performance -- only parameters
// can). Runs the REAL system over uniform, Zipfian(0.99), and 90%-hotspot workloads of
// identical size and measures epoch wall time. The three times must agree to within
// noise; a plaintext sharded store is shown for contrast (its hottest shard absorbs
// the skew).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/plaintext_store.h"
#include "src/core/snoopy.h"
#include "src/sim/workload.h"

namespace snoopy {
namespace {

constexpr uint64_t kObjects = 20000;
constexpr size_t kRequests = 2000;
constexpr size_t kValueSize = 64;

double EpochTime(const std::vector<WorkloadRequest>& reqs) {
  SnoopyConfig cfg;
  cfg.num_suborams = 4;
  cfg.value_size = kValueSize;
  cfg.lambda = 128;
  auto store = std::make_unique<Snoopy>(cfg, 77);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < kObjects; ++k) {
    objects.emplace_back(k, std::vector<uint8_t>());
  }
  store->Initialize(objects);
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (reqs[i].is_write) {
      store->SubmitWrite(1, i, reqs[i].key, std::vector<uint8_t>(kValueSize, 1));
    } else {
      store->SubmitRead(1, i, reqs[i].key);
    }
  }
  return TimeSeconds([&] { store->RunEpoch(); });
}

uint64_t HottestShardLoad(const std::vector<WorkloadRequest>& reqs) {
  PlaintextStore store(4, kValueSize);
  for (const WorkloadRequest& r : reqs) {
    store.Read(r.key);
  }
  uint64_t hot = 0;
  for (const uint64_t c : store.shard_accesses()) {
    hot = c > hot ? c : hot;
  }
  return hot;
}

}  // namespace
}  // namespace snoopy

int main() {
  using namespace snoopy;
  PrintHeader("Ablation", "workload-skew independence (real system, 2K requests/epoch)");
  WorkloadGenerator gen(kObjects, /*write_fraction=*/0.2, /*seed=*/5);
  const auto uniform = gen.Uniform(kRequests);
  const auto zipf = gen.Zipfian(kRequests, 0.99);
  const auto hotspot = gen.Hotspot(kRequests, 0.9);

  std::printf("%12s %18s %26s\n", "workload", "Snoopy epoch (ms)",
              "plaintext hottest shard");
  std::printf("%12s %18.1f %21llu/%zu\n", "uniform", EpochTime(uniform) * 1e3,
              static_cast<unsigned long long>(HottestShardLoad(uniform)), kRequests);
  std::printf("%12s %18.1f %21llu/%zu\n", "zipf(0.99)", EpochTime(zipf) * 1e3,
              static_cast<unsigned long long>(HottestShardLoad(zipf)), kRequests);
  std::printf("%12s %18.1f %21llu/%zu\n", "hotspot 90%", EpochTime(hotspot) * 1e3,
              static_cast<unsigned long long>(HottestShardLoad(hotspot)), kRequests);
  std::printf("\nexpected shape: Snoopy's epoch time is flat across distributions (the\n"
              "batch structure depends only on R and S); the plaintext store's hottest\n"
              "shard mirrors the skew, which is exactly the leakage.\n");
  return 0;
}
