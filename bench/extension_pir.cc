// Extension (paper section 9): Snoopy's techniques applied to PIR. Two effects are
// quantified on the real implementation:
//   1. batch answering -- one database scan serves a whole batch instead of one scan
//      per request ("batch PIR schemes ... are well-suited to our setting");
//   2. the load balancer's sharding -- each scan covers only 1/S of the data, which
//      plain PIR cannot do privately on its own ("our load balancer design makes it
//      possible to obliviously route requests to the PIR server holding the correct
//      shard").

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/pir/snoopy_pir.h"

namespace snoopy {
namespace {

constexpr size_t kValueSize = 64;
constexpr uint64_t kObjects = 8192;
constexpr size_t kBatch = 128;

double EpochTime(uint32_t shards, uint64_t* scans_out) {
  SnoopyPirConfig cfg;
  cfg.num_shards = shards;
  cfg.value_size = kValueSize;
  cfg.lambda = 128;
  SnoopyPir store(cfg, shards);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < kObjects; ++k) {
    objects.emplace_back(k, std::vector<uint8_t>(kValueSize, 1));
  }
  store.Initialize(objects);
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < kBatch; ++i) {
    keys.push_back((i * 131) % kObjects);
  }
  const double t = TimeSeconds([&] { store.LookupBatch(keys); });
  *scans_out = store.total_server_scans();
  return t;
}

}  // namespace
}  // namespace snoopy

int main() {
  using namespace snoopy;
  PrintHeader("Extension (section 9)", "Snoopy-PIR: batched, sharded XOR PIR");
  std::printf("database: %llu x %zuB objects, batch of %zu lookups per epoch\n\n",
              static_cast<unsigned long long>(kObjects), kValueSize, kBatch);
  std::printf("%8s %14s %14s %22s\n", "shards", "epoch (ms)", "server scans",
              "records scanned/server");
  for (const uint32_t shards : {1u, 2u, 4u, 8u}) {
    uint64_t scans = 0;
    const double t = EpochTime(shards, &scans);
    std::printf("%8u %14.1f %14llu %22llu\n", shards, t * 1e3,
                static_cast<unsigned long long>(scans),
                static_cast<unsigned long long>(kObjects / shards));
  }
  std::printf("\nnaive PIR would need %zu full-database scans per server for this batch;\n"
              "batching turns that into 1 per shard-server, and sharding shrinks each\n"
              "scan by S -- the same structure as the enclave subORAM.\n",
              kBatch);
  return 0;
}
