// Figure 9b: key-transparency throughput vs. machines for a 5M-user log (10M 32-byte
// objects). Each KT lookup costs log2(n) + 1 = 24 oblivious accesses, so operation
// throughput is roughly the Figure 9a curve divided by 24.
//
// The access amplification (24) comes from the real TransparencyLog; the cluster
// numbers come from the epoch-pipeline simulator with 32-byte objects.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/kt/transparency_log.h"
#include "src/sim/cluster.h"

int main() {
  using namespace snoopy;
  PrintHeader("Figure 9b", "key transparency, 5M users (10M x 32B objects)");

  // Demonstrate the amplification factor on a real (small) log: depth(2^k users) + 1.
  std::vector<std::vector<uint8_t>> users;
  for (int i = 0; i < 512; ++i) {
    const std::string key = "user-" + std::to_string(i);
    users.emplace_back(key.begin(), key.end());
  }
  TransparencyLog demo(users, 1, 1, /*seed=*/1);
  std::printf("real log with 2^9 users: %u accesses/lookup (log2(n)+1 = 10)\n",
              demo.accesses_per_lookup());
  const KtLookupResult check = demo.Lookup(77);
  std::printf("proof verification against signed root: %s\n\n",
              check.proof_valid ? "ok" : "FAILED");

  // 5M users: depth 23 (padded to 2^23) + 1 = 24 accesses per lookup.
  constexpr double kAccessesPerOp = 24.0;
  constexpr uint64_t kObjects = 10000000;

  CostModelConfig cm_cfg;
  cm_cfg.value_size = 32;
  const CostModel model(cm_cfg);

  std::printf("%9s | %11s %11s %11s\n", "machines", "1000ms", "500ms", "300ms");
  for (uint32_t machines = 4; machines <= 18; machines += 2) {
    double tput[3];
    const double bounds[3] = {1.0, 0.5, 0.3};
    for (int i = 0; i < 3; ++i) {
      tput[i] = ClusterSimulator::BestSplit(machines, kObjects, bounds[i], model,
                                            kAccessesPerOp)
                    .metrics.throughput;
    }
    std::printf("%9u | %9.0f/s %9.0f/s %9.0f/s\n", machines, tput[0], tput[1], tput[2]);
  }
  std::printf("\npaper reference points at 18 machines: 6.1K (1s), 3.2K (500ms), 1.1K (300ms)\n"
              "ops/s; shape check: ~24x below the Figure 9a curves, still scaling.\n");
  return 0;
}
