// Bound-tightness analysis (paper Appendix A and the balls-into-bins discussion in
// section 10): how close is the Theorem 3 batch bound to the empirical maximum load?
//
// The paper argues prior bounds are either inefficient to evaluate or not
// cryptographically negligible under realistic parameters; the Lambert-W inversion
// gives a closed form with Pr[overflow] <= 2^-lambda. Monte Carlo cannot certify
// 2^-128, but it shows where the observed max load sits relative to the bound and to
// the mean -- the slack is the price of the negligible guarantee.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/batch_bound.h"
#include "src/crypto/rng.h"
#include "src/crypto/siphash.h"

namespace snoopy {
namespace {

uint64_t EmpiricalMaxLoad(uint64_t r, uint64_t s, int trials, Rng& rng) {
  uint64_t worst = 0;
  for (int t = 0; t < trials; ++t) {
    const SipKey key = rng.NextSipKey();
    std::vector<uint64_t> load(s, 0);
    for (uint64_t i = 0; i < r; ++i) {
      ++load[SipHash24(key, i) % s];
    }
    for (const uint64_t l : load) {
      worst = l > worst ? l : worst;
    }
  }
  return worst;
}

}  // namespace
}  // namespace snoopy

int main() {
  using namespace snoopy;
  PrintHeader("Analysis", "Theorem 3 bound vs. empirical max load (200 trials each)");
  Rng rng(7);
  std::printf("%9s %5s | %8s %12s | %11s %11s | %9s\n", "R", "S", "mean", "max(empir.)",
              "f lam=80", "f lam=128", "slack128");
  for (const auto& [r, s] : std::vector<std::pair<uint64_t, uint64_t>>{
           {1000, 10}, {10000, 10}, {10000, 20}, {100000, 20}, {1000000, 20}}) {
    const uint64_t empirical = EmpiricalMaxLoad(r, s, 200, rng);
    const uint64_t f80 = BatchSize(r, s, 80);
    const uint64_t f128 = BatchSize(r, s, 128);
    std::printf("%9llu %5llu | %8llu %12llu | %11llu %11llu | %8.2fx\n",
                static_cast<unsigned long long>(r), static_cast<unsigned long long>(s),
                static_cast<unsigned long long>(r / s),
                static_cast<unsigned long long>(empirical),
                static_cast<unsigned long long>(f80),
                static_cast<unsigned long long>(f128),
                static_cast<double>(f128) / static_cast<double>(empirical));
  }
  std::printf("\nreading: the bound must cover 2^-128 tail events that 200 trials cannot\n"
              "witness; the observed slack (bound / empirical max) shrinks as R grows --\n"
              "the paper's \"high-throughput regime\" is exactly where padding is cheap.\n");
  return 0;
}
