// Functional comparison at laptop scale -- no simulation, no cost model: the real
// Snoopy pipeline vs. the real Obladi-style proxy (Ring ORAM), the real Oblix-style
// sequential tree ORAM, and the real plaintext store, all serving the same batch of
// requests over the same data.
//
// This is the amortization story of paper section 5 in miniature: Snoopy pays one
// oblivious linear scan per batch, the tree ORAMs pay a polylog path per *request*.
// At small data sizes the tree ORAMs win per request; as the batch grows, the scan
// amortizes. (Absolute numbers are this machine's; the shape is the claim.)

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/obladi.h"
#include "src/baseline/oblix.h"
#include "src/baseline/plaintext_store.h"
#include "src/core/snoopy.h"

namespace snoopy {
namespace {

constexpr uint64_t kObjects = 4096;
constexpr size_t kValueSize = 64;

std::vector<std::pair<uint64_t, std::vector<uint8_t>>> Objects() {
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> objects;
  for (uint64_t k = 0; k < kObjects; ++k) {
    objects.emplace_back(k, std::vector<uint8_t>(kValueSize, 1));
  }
  return objects;
}

std::vector<uint64_t> Keys(size_t batch) {
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < batch; ++i) {
    keys.push_back((i * 2654435761u) % kObjects);
  }
  return keys;
}

double SnoopyBatch(size_t batch) {
  SnoopyConfig cfg;
  cfg.num_suborams = 2;
  cfg.value_size = kValueSize;
  cfg.lambda = 128;
  auto store = std::make_unique<Snoopy>(cfg, 1);
  store->Initialize(Objects());
  size_t seq = 0;
  for (const uint64_t k : Keys(batch)) {
    store->SubmitRead(1, seq++, k);
  }
  return TimeSeconds([&] { store->RunEpoch(); });
}

double ObladiBatch(size_t batch) {
  ObladiConfig cfg;
  cfg.capacity = kObjects;
  cfg.value_size = kValueSize;
  cfg.batch_size = static_cast<uint32_t>(batch);
  ObladiProxy proxy(cfg, 2);
  proxy.Initialize(Objects());
  size_t seq = 0;
  for (const uint64_t k : Keys(batch)) {
    proxy.Submit({seq++, k, false, {}});
  }
  return TimeSeconds([&] { proxy.ExecuteBatches(); });
}

double OblixBatch(size_t batch) {
  OblixStore store(kObjects, kValueSize, 3);
  store.Initialize(Objects());
  const auto keys = Keys(batch);
  return TimeSeconds([&] {
    for (const uint64_t k : keys) {
      store.Read(k);
    }
  });
}

double PlaintextBatch(size_t batch) {
  PlaintextStore store(2, kValueSize);
  store.Initialize(Objects());
  const auto keys = Keys(batch);
  return TimeSeconds([&] {
    for (const uint64_t k : keys) {
      store.Read(k);
    }
  });
}

}  // namespace
}  // namespace snoopy

int main() {
  using namespace snoopy;
  PrintHeader("Functional comparison",
              "real implementations, 4096 x 64B objects, read batches");
  std::printf("%8s | %12s %12s %12s %12s | %16s\n", "batch", "Snoopy(ms)", "Obladi(ms)",
              "Oblix(ms)", "plain(ms)", "Snoopy us/req");
  for (const size_t batch : {64u, 256u, 1024u, 4096u}) {
    const double snoopy_s = SnoopyBatch(batch);
    const double obladi_s = ObladiBatch(batch);
    const double oblix_s = OblixBatch(batch);
    const double plain_s = PlaintextBatch(batch);
    std::printf("%8zu | %12.1f %12.1f %12.1f %12.3f | %16.1f\n", batch, snoopy_s * 1e3,
                obladi_s * 1e3, oblix_s * 1e3, plain_s * 1e3,
                snoopy_s * 1e6 / static_cast<double>(batch));
  }
  std::printf("\nshape check: Snoopy's per-request cost falls as the batch grows (the\n"
              "linear scan amortizes); the tree ORAMs' per-request cost is flat, so\n"
              "they win tiny batches and lose large ones -- the paper's core trade.\n");
  return 0;
}
