// Figure 3: dummy request overhead (%) as a function of the number of real requests,
// for 2 / 10 / 20 subORAMs at lambda = 128. A 50% overhead means one dummy for every
// two real requests. The paper's takeaway: overhead falls as batches grow, so larger
// epochs amortize better.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/batch_bound.h"

int main() {
  using namespace snoopy;
  PrintHeader("Figure 3", "dummy request overhead vs. real requests (lambda = 128)");
  std::printf("%10s %14s %14s %14s\n", "requests", "S=2 (%)", "S=10 (%)", "S=20 (%)");
  for (uint64_t r = 500; r <= 10000; r += 500) {
    std::printf("%10llu %14.1f %14.1f %14.1f\n", static_cast<unsigned long long>(r),
                DummyOverheadPercent(r, 2, 128), DummyOverheadPercent(r, 10, 128),
                DummyOverheadPercent(r, 20, 128));
  }
  std::printf("\npaper shape check: overhead decreases in R, increases in S.\n");
  return 0;
}
