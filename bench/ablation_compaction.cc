// Ablation: Goodrich O(n log n) routing-network compaction vs. the O(n log^2 n)
// bitonic-sort-based fallback. Snoopy compacts after every oblivious sort (batch
// construction, response matching, hash-table construction), so the asymptotic gap
// shows up directly in load-balancer throughput.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/crypto/rng.h"
#include "src/obl/compaction.h"

namespace snoopy {
namespace {

constexpr size_t kRecordBytes = 208;

double CompactTime(size_t n, bool use_goodrich, uint64_t seed) {
  ByteSlab slab(n, kRecordBytes);
  std::vector<uint8_t> flags(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    flags[i] = static_cast<uint8_t>(rng.Uniform(2));
  }
  return TimeSeconds([&] {
    if (use_goodrich) {
      GoodrichCompact(slab, std::span<uint8_t>(flags.data(), n));
    } else {
      SortCompact(slab, std::span<uint8_t>(flags.data(), n));
    }
  });
}

}  // namespace
}  // namespace snoopy

int main() {
  using namespace snoopy;
  PrintHeader("Ablation", "Goodrich compaction vs. sort-based compaction");
  std::printf("%9s %16s %16s %9s\n", "records", "Goodrich (ms)", "sort-based (ms)", "speedup");
  for (const size_t n : {size_t{1} << 10, size_t{1} << 12, size_t{1} << 14, size_t{1} << 16}) {
    const double g = CompactTime(n, true, n);
    const double s = CompactTime(n, false, n);
    std::printf("%9zu %16.2f %16.2f %8.1fx\n", n, g * 1e3, s * 1e3, s / g);
  }
  std::printf("\nexpected shape: the speedup grows ~log n (O(n log n) vs O(n log^2 n)),\n"
              "which is why section 7 uses Goodrich's algorithm.\n");
  return 0;
}
