// Figure 9a: throughput vs. machines, 2M 160-byte objects, for maximum average
// latencies of 300 ms / 500 ms / 1 s, against Obladi (2 machines, fixed) and Oblix
// (1 machine, fixed). Machine counts follow the paper: 4..18, each split into load
// balancers + subORAMs by whichever division sustains the most load.
//
// Numbers come from the epoch-pipeline simulator over the calibrated cost model (see
// sim/cost_model.h for the calibration anchors); shapes -- who wins, when Snoopy
// crosses each baseline, roughly linear scaling -- are the reproduction targets.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/cluster.h"

int main() {
  using namespace snoopy;
  PrintHeader("Figure 9a", "throughput scaling, 2M x 160B objects");
  const CostModel model;
  constexpr uint64_t kObjects = 2000000;

  std::printf("%9s | %11s %11s %11s | %9s %9s\n", "machines", "1000ms", "500ms", "300ms",
              "Obladi", "Oblix");
  const double obladi = model.ObladiThroughput();
  const double oblix = 1.0 / model.OblixAccessSeconds(kObjects);
  for (uint32_t machines = 4; machines <= 18; machines += 2) {
    double tput[3];
    uint32_t lbs[3];
    const double bounds[3] = {1.0, 0.5, 0.3};
    for (int i = 0; i < 3; ++i) {
      const auto split = ClusterSimulator::BestSplit(machines, kObjects, bounds[i], model);
      tput[i] = split.metrics.throughput;
      lbs[i] = split.load_balancers;
    }
    std::printf("%9u | %9.0f/s %9.0f/s %9.0f/s | %7.0f/s %7.0f/s   (LBs: %u/%u/%u)\n",
                machines, tput[0], tput[1], tput[2], obladi, oblix, lbs[0], lbs[1], lbs[2]);
  }
  std::printf("\npaper reference points: 18 machines -> 130K (1s), 92K (500ms), 68K (300ms);\n"
              "Obladi 6.7K (flat), Oblix 1.2K (flat). Shape check: Snoopy passes Obladi\n"
              "within the first few machines and scales roughly linearly afterwards.\n");
  return 0;
}
