// Figure 9a: throughput vs. machines, 2M 160-byte objects, for maximum average
// latencies of 300 ms / 500 ms / 1 s, against Obladi (2 machines, fixed) and Oblix
// (1 machine, fixed). Machine counts follow the paper: 4..18, each split into load
// balancers + subORAMs by whichever division sustains the most load.
//
// Numbers come from the epoch-pipeline simulator over the calibrated cost model (see
// sim/cost_model.h for the calibration anchors); shapes -- who wins, when Snoopy
// crosses each baseline, roughly linear scaling -- are the reproduction targets.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/cluster.h"
#include "src/telemetry/bench_json.h"

int main() {
  using namespace snoopy;
  PrintHeader("Figure 9a", "throughput scaling, 2M x 160B objects");
  const CostModel model;
  constexpr uint64_t kObjects = 2000000;
  BenchJsonEmitter json("fig09a_throughput_scaling");

  std::printf("%9s | %11s %11s %11s | %9s %9s | %8s %8s\n", "machines", "1000ms", "500ms",
              "300ms", "Obladi", "Oblix", "p50@500", "p99@500");
  const double obladi = model.ObladiThroughput();
  const double oblix = 1.0 / model.OblixAccessSeconds(kObjects);
  for (uint32_t machines = 4; machines <= 18; machines += 2) {
    double tput[3];
    uint32_t lbs[3];
    ClusterMetrics at_bound[3];
    const double bounds[3] = {1.0, 0.5, 0.3};
    for (int i = 0; i < 3; ++i) {
      auto split = ClusterSimulator::BestSplit(machines, kObjects, bounds[i], model);
      tput[i] = split.metrics.throughput;
      lbs[i] = split.load_balancers;
      at_bound[i] = split.metrics;
      json.AddPoint("throughput")
          .Set("machines", static_cast<double>(machines))
          .Set("latency_bound_s", bounds[i])
          .Set("throughput_rps", tput[i])
          .Set("load_balancers", static_cast<double>(lbs[i]))
          .Set("latency_p50_s", split.metrics.latency_p50_s)
          .Set("latency_p99_s", split.metrics.latency_p99_s);
    }
    std::printf(
        "%9u | %9.0f/s %9.0f/s %9.0f/s | %7.0f/s %7.0f/s | %6.0fms %6.0fms  (LBs: %u/%u/%u)\n",
        machines, tput[0], tput[1], tput[2], obladi, oblix, at_bound[1].latency_p50_s * 1e3,
        at_bound[1].latency_p99_s * 1e3, lbs[0], lbs[1], lbs[2]);
  }
  std::printf("\npaper reference points: 18 machines -> 130K (1s), 92K (500ms), 68K (300ms);\n"
              "Obladi 6.7K (flat), Oblix 1.2K (flat). Shape check: Snoopy passes Obladi\n"
              "within the first few machines and scales roughly linearly afterwards.\n");
  const std::string path = json.WriteFile();
  if (!path.empty()) {
    std::printf("machine-readable output: %s\n", path.c_str());
  }
  return 0;
}
