// Figure 11b: mean response latency vs. number of subORAMs for a fixed 2M-object store
// under constant load (one load balancer). Adding subORAMs parallelizes the per-epoch
// linear scan, with diminishing returns as the dummy overhead grows. Obladi (79 ms)
// and Oblix (1.1 ms) are flat reference lines.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/cluster.h"
#include "src/telemetry/bench_json.h"

namespace snoopy {
namespace {

// Smallest sustainable mean latency at this configuration: scan epoch lengths and keep
// the best steady-state result (full metrics, so percentiles ride along).
ClusterMetrics BestLatency(uint32_t s, uint64_t objects, const CostModel& model) {
  ClusterMetrics best;
  best.mean_latency_s = 1e9;
  for (double t_epoch = 0.03; t_epoch <= 0.45; t_epoch *= 1.3) {
    ClusterConfig cfg;
    cfg.load_balancers = 1;
    cfg.suborams = s;
    cfg.num_objects = objects;
    cfg.epoch_seconds = t_epoch;
    const ClusterSimulator sim(cfg, model);
    const ClusterMetrics m = sim.Run(/*ops_per_second=*/2000, /*duration=*/6.0, /*seed=*/3);
    if (!m.saturated && m.mean_latency_s < best.mean_latency_s && m.throughput > 1500) {
      best = m;
    }
  }
  return best;
}

}  // namespace
}  // namespace snoopy

int main() {
  using namespace snoopy;
  PrintHeader("Figure 11b", "latency vs. subORAMs, 2M x 160B objects, constant load");
  const CostModel model;
  BenchJsonEmitter json("fig11b_latency");
  std::printf("%10s %16s %9s %9s %12s %12s\n", "subORAMs", "Snoopy (ms)", "p50(ms)",
              "p99(ms)", "Obladi (ms)", "Oblix (ms)");
  double at1 = 0;
  double at15 = 0;
  for (uint32_t s = 1; s <= 15; s += 2) {
    const ClusterMetrics m = BestLatency(s, 2000000, model);
    if (s == 1) {
      at1 = m.mean_latency_s;
    }
    at15 = m.mean_latency_s;
    std::printf("%10u %16.0f %9.0f %9.0f %12.0f %12.1f\n", s, m.mean_latency_s * 1e3,
                m.latency_p50_s * 1e3, m.latency_p99_s * 1e3, model.ObladiLatency() * 1e3,
                model.OblixAccessSeconds(2000000) * 1e3);
    json.AddPoint("latency")
        .Set("suborams", static_cast<double>(s))
        .Set("mean_latency_s", m.mean_latency_s)
        .Set("latency_p50_s", m.latency_p50_s)
        .Set("latency_p99_s", m.latency_p99_s)
        .Set("throughput_rps", m.throughput);
  }
  std::printf("\npaper reference: 847 ms at 1 subORAM -> 112 ms at 15 (ours: %.0f -> %.0f);\n"
              "Oblix stays ~1 ms (sequential tree ORAM), Obladi ~79 ms. Shape check:\n"
              "monotone decrease with diminishing returns.\n",
              at1 * 1e3, at15 * 1e3);
  const std::string path = json.WriteFile();
  if (!path.empty()) {
    std::printf("machine-readable output: %s\n", path.c_str());
  }
  return 0;
}
