// Microbenchmarks (google-benchmark) for the oblivious and cryptographic building
// blocks: the constants that feed the cost model's calibration on this machine.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/batch_bound.h"
#include "src/crypto/aead.h"
#include "src/crypto/rng.h"
#include "src/crypto/sha256.h"
#include "src/crypto/siphash.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/compaction.h"
#include "src/obl/hash_table.h"
#include "src/obl/kernels.h"
#include "src/obl/primitives.h"
#include "src/obl/secret.h"
#include "src/obl/slab.h"
#include "src/telemetry/bench_json.h"

namespace snoopy {
namespace {

void BM_CtCondCopy160(benchmark::State& state) {
  std::vector<uint8_t> dst(160);
  std::vector<uint8_t> src(160, 7);
  bool c = false;
  for (auto _ : state) {
    CtCondCopyBytes(c, dst.data(), src.data(), 160);
    c = !c;
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 160);
}
BENCHMARK(BM_CtCondCopy160);

void BM_CtCondSwap208(benchmark::State& state) {
  std::vector<uint8_t> a(208, 1);
  std::vector<uint8_t> b(208, 2);
  bool c = false;
  for (auto _ : state) {
    CtCondSwapBytes(c, a.data(), b.data(), 208);
    c = !c;
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 208);
}
BENCHMARK(BM_CtCondSwap208);

// A byte-at-a-time constant-time comparison, as the seed shipped it: the reference
// point for the word-at-a-time CtEqualBytes below. noinline so the comparison stays a
// call in both benchmarks.
__attribute__((noinline)) bool CtEqualBytesBytewise(const uint8_t* a, const uint8_t* b,
                                                   size_t n) {
  uint8_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc = static_cast<uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

void BM_CtEqualBytewise(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> a(n, 0x5c);
  std::vector<uint8_t> b(n, 0x5c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CtEqualBytesBytewise(a.data(), b.data(), n));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CtEqualBytewise)->Arg(32)->Arg(208)->Arg(4096);

void BM_CtEqualWordwise(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> a(n, 0x5c);
  std::vector<uint8_t> b(n, 0x5c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CtEqualBytes(a.data(), b.data(), n));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CtEqualWordwise)->Arg(32)->Arg(208)->Arg(4096);

// Secret<T> must be zero-cost: the wrapped select lowers to exactly the mask
// arithmetic of the raw primitive. Compare these two entries to verify.
void BM_SelectRaw(benchmark::State& state) {
  uint64_t a = 1;
  uint64_t b = 2;
  bool c = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CtSelect64(c, a, b));
    c = !c;
    ++a;
  }
}
BENCHMARK(BM_SelectRaw);

void BM_SelectSecret(benchmark::State& state) {
  uint64_t a = 1;
  uint64_t b = 2;
  bool c = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CtSelectU64(SecretBool::FromBool(c), SecretU64(a), SecretU64(b)));
    c = !c;
    ++a;
  }
}
BENCHMARK(BM_SelectSecret);

void BM_BitonicSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    ByteSlab slab(n, 208);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t k = rng.Next64();
      std::memcpy(slab.Record(i), &k, 8);
    }
    state.ResumeTiming();
    BitonicSortSlab(slab, [](const uint8_t* x, const uint8_t* y) {
      return LoadSecretU64(x, 0) < LoadSecretU64(y, 0);
    });
    benchmark::DoNotOptimize(slab.data());
  }
}
BENCHMARK(BM_BitonicSort)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14);

void BM_GoodrichCompact(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    ByteSlab slab(n, 208);
    std::vector<uint8_t> flags(n);
    for (size_t i = 0; i < n; ++i) {
      flags[i] = static_cast<uint8_t>(rng.Uniform(2));
    }
    state.ResumeTiming();
    GoodrichCompact(slab, std::span<uint8_t>(flags.data(), n));
    benchmark::DoNotOptimize(slab.data());
  }
}
BENCHMARK(BM_GoodrichCompact)->Arg(1 << 10)->Arg(1 << 14);

void BM_OhtBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  constexpr OhtSchema kSchema{0, 8, 12, 16, 24};
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    ByteSlab batch(n, 208);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t k = i * 1000003;
      std::memcpy(batch.Record(i), &k, 8);
    }
    state.ResumeTiming();
    TwoTierOht oht(kSchema, 128);
    benchmark::DoNotOptimize(oht.Build(std::move(batch), rng));
  }
}
BENCHMARK(BM_OhtBuild)->Arg(1 << 10)->Arg(1 << 12);

void BM_Sha256(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

void BM_AeadSeal(benchmark::State& state) {
  Aead::Key key{};
  const Aead aead(key);
  std::vector<uint8_t> msg(static_cast<size_t>(state.range(0)), 1);
  uint64_t ctr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead.Seal(Aead::CounterNonce(ctr++), {}, msg));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(208)->Arg(65536);

void BM_SipHash(benchmark::State& state) {
  const SipKey key{};
  uint64_t v = 1;
  for (auto _ : state) {
    v = SipHash24(key, v);
  }
  benchmark::DoNotOptimize(v);
}
BENCHMARK(BM_SipHash);

void BM_BatchBound(benchmark::State& state) {
  uint64_t r = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchSize(r, 16, 128));
    r = r % 1000000 + 1000;
  }
}
BENCHMARK(BM_BatchBound);

// --- Dispatching SIMD kernel layer (src/obl/kernels.h) ---------------------------
//
// One benchmark per (backend, record size, alignment) so the per-backend kernels
// can be compared directly; the same grid is re-measured with manual timing below
// and emitted as the `primitive_kernels` series in BENCH_micro_primitives.json.

void BM_KernelCondSwap(benchmark::State& state, KernelBackend backend, size_t nbytes,
                       size_t misalign) {
  const KernelBackend prev = ActiveKernelBackend();
  SetKernelBackend(backend);
  std::vector<uint8_t> abuf(nbytes + 64, 1);
  std::vector<uint8_t> bbuf(nbytes + 64, 2);
  uint8_t* a = abuf.data() + misalign;
  uint8_t* b = bbuf.data() + misalign;
  uint64_t mask = ~uint64_t{0};
  for (auto _ : state) {
    KernelCondSwapBytesMask(mask, a, b, nbytes);
    mask = ~mask;
    benchmark::DoNotOptimize(a);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(nbytes));
  SetKernelBackend(prev);
}

void BM_KernelCondCopy(benchmark::State& state, KernelBackend backend, size_t nbytes,
                       size_t misalign) {
  const KernelBackend prev = ActiveKernelBackend();
  SetKernelBackend(backend);
  std::vector<uint8_t> dbuf(nbytes + 64, 1);
  std::vector<uint8_t> sbuf(nbytes + 64, 2);
  uint8_t* d = dbuf.data() + misalign;
  uint8_t* s = sbuf.data() + misalign;
  uint64_t mask = ~uint64_t{0};
  for (auto _ : state) {
    KernelCondCopyBytesMask(mask, d, s, nbytes);
    mask = ~mask;
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(nbytes));
  SetKernelBackend(prev);
}

void BM_KernelEqual(benchmark::State& state, KernelBackend backend, size_t nbytes,
                    size_t misalign) {
  const KernelBackend prev = ActiveKernelBackend();
  SetKernelBackend(backend);
  std::vector<uint8_t> abuf(nbytes + 64, 0x5c);
  std::vector<uint8_t> bbuf(nbytes + 64, 0x5c);
  const uint8_t* a = abuf.data() + misalign;
  const uint8_t* b = bbuf.data() + misalign;
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelEqualBytes(a, b, nbytes));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(nbytes));
  SetKernelBackend(prev);
}

void RegisterKernelBenchmarks() {
  for (const KernelBackend backend : SupportedKernelBackends()) {
    for (const size_t nbytes : {size_t{160}, size_t{208}}) {
      for (const size_t misalign : {size_t{0}, size_t{3}}) {
        const std::string suffix = std::string("/") + KernelBackendName(backend) + "/" +
                                   std::to_string(nbytes) +
                                   (misalign == 0 ? "/aligned" : "/misaligned");
        benchmark::RegisterBenchmark(
            ("BM_KernelCondSwap" + suffix).c_str(),
            [backend, nbytes, misalign](benchmark::State& st) {
              BM_KernelCondSwap(st, backend, nbytes, misalign);
            });
        benchmark::RegisterBenchmark(
            ("BM_KernelCondCopy" + suffix).c_str(),
            [backend, nbytes, misalign](benchmark::State& st) {
              BM_KernelCondCopy(st, backend, nbytes, misalign);
            });
        benchmark::RegisterBenchmark(
            ("BM_KernelEqual" + suffix).c_str(),
            [backend, nbytes, misalign](benchmark::State& st) {
              BM_KernelEqual(st, backend, nbytes, misalign);
            });
      }
    }
  }
}

// Manual-timing pass over the same grid, written as machine-readable JSON. Kept
// separate from google-benchmark so the emitted file exists on every run
// regardless of --benchmark_filter.
template <typename Fn>
double MeasureNsPerOp(Fn&& fn) {
  for (int i = 0; i < 2000; ++i) {
    fn();
  }
  constexpr int kIters = 300000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    fn();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / kIters;
}

void EmitKernelSeries() {
  BenchJsonEmitter emitter("micro_primitives");
  const KernelBackend prev = ActiveKernelBackend();
  std::map<std::string, double> generic_ns;
  for (const KernelBackend backend : SupportedKernelBackends()) {
    SetKernelBackend(backend);
    for (const size_t nbytes : {size_t{160}, size_t{208}}) {
      for (const size_t misalign : {size_t{0}, size_t{3}}) {
        std::vector<uint8_t> abuf(nbytes + 64, 1);
        std::vector<uint8_t> bbuf(nbytes + 64, 2);
        uint8_t* a = abuf.data() + misalign;
        uint8_t* b = bbuf.data() + misalign;
        struct OpPoint {
          const char* op;
          double ns;
        };
        uint64_t mask = ~uint64_t{0};
        const OpPoint ops[3] = {
            {"cond_swap", MeasureNsPerOp([&] {
               KernelCondSwapBytesMask(mask, a, b, nbytes);
               mask = ~mask;
               benchmark::DoNotOptimize(a);
             })},
            {"cond_copy", MeasureNsPerOp([&] {
               KernelCondCopyBytesMask(mask, a, b, nbytes);
               mask = ~mask;
               benchmark::DoNotOptimize(a);
             })},
            {"equal", MeasureNsPerOp([&] {
               benchmark::DoNotOptimize(KernelEqualBytes(a, b, nbytes));
             })},
        };
        for (const OpPoint& op : ops) {
          const std::string key = std::string(op.op) + "/" + std::to_string(nbytes) + "/" +
                                  std::to_string(misalign);
          auto& point = emitter.AddPoint("primitive_kernels");
          point.Set("backend", KernelBackendName(backend))
              .Set("op", op.op)
              .Set("record_bytes", static_cast<double>(nbytes))
              .Set("misalign", static_cast<double>(misalign))
              .Set("ns_per_op", op.ns)
              .Set("gib_per_s", static_cast<double>(nbytes) / op.ns * 1e9 /
                                    (1024.0 * 1024.0 * 1024.0));
          if (backend == KernelBackend::kGeneric) {
            generic_ns[key] = op.ns;
          } else if (generic_ns.count(key) != 0 && op.ns > 0.0) {
            point.Set("speedup_vs_generic", generic_ns[key] / op.ns);
          }
        }
      }
    }
  }
  SetKernelBackend(prev);
  const std::string path = emitter.WriteFile(".");
  if (!path.empty()) {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace snoopy

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  snoopy::RegisterKernelBenchmarks();
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  snoopy::EmitKernelSeries();
  return 0;
}
