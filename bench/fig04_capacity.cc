// Figure 4: total real-request capacity per epoch as subORAMs are added, assuming each
// subORAM can absorb at most 1,000 requests per epoch, for lambda in {0, 80, 128}.
// lambda = 0 is the no-security (plaintext) line: capacity = 1000 * S. Security costs
// the gap between the lines, and the gap grows with S (each subORAM's batch must be
// padded to the balls-into-bins bound).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/batch_bound.h"

int main() {
  using namespace snoopy;
  PrintHeader("Figure 4", "real request capacity vs. subORAMs (<= 1K reqs/subORAM/epoch)");
  std::printf("%10s %16s %16s %16s\n", "subORAMs", "lambda=0", "lambda=80", "lambda=128");
  for (uint64_t s = 1; s <= 20; ++s) {
    std::printf("%10llu %16llu %16llu %16llu\n", static_cast<unsigned long long>(s),
                static_cast<unsigned long long>(CapacityForBatchLimit(s, 1000, 0)),
                static_cast<unsigned long long>(CapacityForBatchLimit(s, 1000, 80)),
                static_cast<unsigned long long>(CapacityForBatchLimit(s, 1000, 128)));
  }
  std::printf("\npaper shape check: secure capacity grows with S but sublinearly;\n"
              "at S=20 the lambda=128 line sits well below the 20K plaintext line.\n");
  return 0;
}
