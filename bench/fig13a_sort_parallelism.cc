// Figure 13a: parallelizing bitonic sort across enclave threads. For small inputs the
// coordination overhead makes one thread fastest; for large inputs more threads win,
// and the adaptive policy switches between them.
//
// Runs the real sorting network. NOTE: this container exposes a single hardware core,
// so measured multi-thread times show the coordination overhead without the speedup;
// the model column projects the 4-core DC4s_v2 behaviour the paper plots (crossover
// and all). Both are printed.
//
// This harness also sweeps the cache-blocked variant (RunBitonicNetworkBlocked)
// against the unblocked network across tile sizes, on both the plain and the
// adaptive-thread configuration, and emits the whole grid as machine-readable JSON.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/crypto/rng.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/bucket_sort.h"
#include "src/obl/kernels.h"
#include "src/obl/slab.h"
#include "src/sim/cost_model.h"
#include "src/telemetry/bench_json.h"

namespace snoopy {
namespace {

constexpr size_t kRecordBytes = 208;  // header + 160B value, as in the system

void FillSlab(ByteSlab& slab, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < slab.size(); ++i) {
    uint64_t key = rng.Next64();
    std::memcpy(slab.Record(i), &key, 8);
  }
}

double SortTime(size_t n, int threads, uint64_t seed) {
  ByteSlab slab(n, kRecordBytes);
  FillSlab(slab, seed);
  return TimeSeconds([&] {
    BitonicSortSlab(
        slab,
        [](const uint8_t* a, const uint8_t* b) {
          return LoadSecretU64(a, 0) < LoadSecretU64(b, 0);
        },
        threads);
  });
}

// block_records == 0 means the implementation default (SortBlockRecords).
double SortTimeBlocked(size_t n, int threads, size_t block_records, uint64_t seed) {
  ByteSlab slab(n, kRecordBytes);
  FillSlab(slab, seed);
  return TimeSeconds([&] {
    BitonicSortSlabBlocked(
        slab,
        [](const uint8_t* a, const uint8_t* b) {
          return LoadSecretU64(a, 0) < LoadSecretU64(b, 0);
        },
        threads, block_records);
  });
}

// Strategy-crossover slab: a keyed-hash bin tag (u32 at offset 0) plus a distinct
// sort key (u64 at offset 4) so the (bin, key) order is total and both strategies
// produce byte-identical output. kStrategyBins is sized so the routing geometry is
// viable from ~2^12 records up; lambda matches the deployment default.
constexpr uint64_t kStrategyBins = uint64_t{1} << 16;
constexpr uint32_t kStrategyLambda = 40;

double SortTimeStrategy(size_t n, int threads, SortStrategy strategy, uint64_t seed) {
  ByteSlab slab(n, kRecordBytes);
  Rng rng(seed);
  for (size_t i = 0; i < slab.size(); ++i) {
    const uint32_t bin = static_cast<uint32_t>(rng.Next64() % kStrategyBins);
    const uint64_t key = rng.Next64();
    std::memcpy(slab.Record(i), &bin, 4);
    std::memcpy(slab.Record(i) + 4, &key, 8);
  }
  SortBinSpec spec;
  spec.bin_offset = 0;
  spec.num_bins = kStrategyBins;
  spec.bins_simulatable = true;
  spec.lambda = kStrategyLambda;
  return TimeSeconds([&] {
    ObliviousSortSlab(
        slab, spec,
        [](const uint8_t* a, const uint8_t* b) {
          return LoadSecretU64(a, 4) < LoadSecretU64(b, 4);
        },
        strategy, threads);
  });
}

}  // namespace
}  // namespace snoopy

int main(int argc, char** argv) {
  using namespace snoopy;
  const std::string metrics_out = MetricsOutPath(argc, argv);
  MetricsRegistry registry;
  PrintHeader("Figure 13a", "bitonic sort thread scaling (measured + 4-core model)");
  const CostModel model;
  BenchJsonEmitter emitter("fig13a_sort_parallelism");
  // eff(W) = t1 / (W * tW): the classic parallel-efficiency of the W-thread run
  // against the single-thread baseline. On this 1-core container multi-thread
  // efficiencies sit near 1/W (pure coordination overhead); on a real 4-core host
  // they approach the model's crossover behaviour.
  std::printf("%9s | %11s %11s %11s %11s | %7s %7s | %13s %13s\n", "items", "1 thr(s)",
              "2 thr(s)", "3 thr(s)", "adaptive(s)", "eff2", "eff3", "model 1thr(s)",
              "model 3thr(s)");
  for (const size_t n : {size_t{1} << 10, size_t{1} << 12, size_t{1} << 14, size_t{1} << 16}) {
    const double t1 = SortTime(n, 1, n);
    const double t2 = SortTime(n, 2, n);
    const double t3 = SortTime(n, 3, n);
    const int adaptive = AdaptiveSortThreads(n, 3, kRecordBytes);
    const double ta = SortTime(n, adaptive, n);
    std::printf("%9zu | %11.3f %11.3f %11.3f %11.3f | %7.2f %7.2f | %13.3f %13.3f\n", n,
                t1, t2, t3, ta, t2 > 0 ? t1 / (2 * t2) : 0.0, t3 > 0 ? t1 / (3 * t3) : 0.0,
                model.BitonicSortSeconds(n, kRecordBytes, 1),
                model.BitonicSortSeconds(n, kRecordBytes, 3));
    for (const auto& [threads, seconds] :
         {std::pair<int, double>{1, t1}, {2, t2}, {3, t3}, {adaptive, ta}}) {
      registry
          .GetHistogram("bench_sort_seconds",
                        {{"threads", std::to_string(threads)}, {"items", std::to_string(n)}})
          .Observe(seconds);
      emitter.AddPoint("sort_threads")
          .Set("items", static_cast<double>(n))
          .Set("threads", static_cast<double>(threads))
          .Set("seconds", seconds)
          .Set("parallel_efficiency",
               threads > 0 && seconds > 0 ? t1 / (threads * seconds) : 0.0)
          .Set("model_seconds", model.BitonicSortSeconds(n, kRecordBytes, threads));
    }
  }

  // Blocked-network sweep: unblocked vs tile sizes around the L1-derived default,
  // on one thread and on the adaptive thread count.
  const size_t default_block = SortBlockRecords(kRecordBytes);
  std::printf("\nblocked sweep (record=%zuB, default tile=%zu records):\n", kRecordBytes,
              default_block);
  std::printf("%9s %8s | %12s %12s\n", "items", "tile", "1 thr(s)", "adaptive(s)");
  for (const size_t n : {size_t{1} << 14, size_t{1} << 16}) {
    const int adaptive = AdaptiveSortThreads(n, 3, kRecordBytes);
    const double unblocked1 = SortTime(n, 1, n);
    const double unblockeda = SortTime(n, adaptive, n);
    std::printf("%9zu %8s | %12.3f %12.3f\n", n, "none", unblocked1, unblockeda);
    // The unblocked row is its own baseline, so its speedup is 1.0 by definition;
    // emitting it keeps the field present on every blocked_sort point (the schema
    // checker requires it uniformly, so a consumer can plot the column unguarded).
    emitter.AddPoint("blocked_sort")
        .Set("items", static_cast<double>(n))
        .Set("block_records", 0.0)
        .Set("seconds_1thr", unblocked1)
        .Set("seconds_adaptive", unblockeda)
        .Set("speedup_vs_unblocked_1thr", 1.0);
    for (const size_t block : {default_block / 4, default_block, default_block * 4}) {
      const double b1 = SortTimeBlocked(n, 1, block, n);
      const double ba = SortTimeBlocked(n, adaptive, block, n);
      std::printf("%9zu %8zu | %12.3f %12.3f\n", n, block, b1, ba);
      emitter.AddPoint("blocked_sort")
          .Set("items", static_cast<double>(n))
          .Set("block_records", static_cast<double>(block))
          .Set("seconds_1thr", b1)
          .Set("seconds_adaptive", ba)
          .Set("speedup_vs_unblocked_1thr", b1 > 0.0 ? unblocked1 / b1 : 0.0);
    }
  }
  // Strategy crossover: blocked bitonic (the tuned O(n log^2 n) baseline) versus
  // the O(n log n) bucket sort on the same bin-tagged slabs. Below the eligibility
  // knee (n < 4096) the bucket request resolves to bitonic, so those rows document
  // the fallback; past the knee the routing's pass advantage compounds with n. The
  // committed JSON is gated in tools/check_bench_schema.py: bucket must beat
  // bitonic by >= 1.5x at the largest n on one thread.
  std::printf("\nstrategy crossover (record=%zuB, %llu bins, lambda=%u):\n", kRecordBytes,
              static_cast<unsigned long long>(kStrategyBins), kStrategyLambda);
  std::printf("%9s %8s | %12s %12s %9s | %13s %13s\n", "items", "threads", "bitonic(s)",
              "bucket(s)", "speedup", "model bit(s)", "model buck(s)");
  for (const size_t n : {size_t{1} << 10, size_t{1} << 12, size_t{1} << 14,
                         size_t{1} << 16, size_t{1} << 18, size_t{1} << 20}) {
    BucketSortParams params;
    SortBinSpec spec;
    spec.num_bins = kStrategyBins;
    spec.bins_simulatable = true;
    spec.lambda = kStrategyLambda;
    const SortStrategy resolved = ResolveSortStrategy(SortStrategy::kBucket, n,
                                                      kRecordBytes, &spec, &params);
    for (const int threads : {1, 2, 4}) {
      const double bitonic_s = SortTimeStrategy(n, threads, SortStrategy::kBitonic, n);
      const double bucket_s = SortTimeStrategy(n, threads, SortStrategy::kBucket, n);
      std::printf("%9zu %8d | %12.3f %12.3f %8.2fx | %13.3f %13.3f\n", n, threads,
                  bitonic_s, bucket_s, bucket_s > 0 ? bitonic_s / bucket_s : 0.0,
                  model.BitonicSortSeconds(n, kRecordBytes, threads),
                  model.BucketSortSeconds(n, kRecordBytes, kStrategyBins, threads));
      for (const auto& [strategy, seconds] :
           {std::pair<const char*, double>{"bitonic", bitonic_s}, {"bucket", bucket_s}}) {
        emitter.AddPoint("sort_strategy")
            .Set("items", static_cast<double>(n))
            .Set("threads", static_cast<double>(threads))
            .Set("strategy", strategy)
            .Set("resolved_strategy",
                 std::strcmp(strategy, "bucket") == 0 ? SortStrategyName(resolved)
                                                      : "bitonic")
            .Set("seconds", seconds)
            .Set("speedup_vs_bitonic", seconds > 0 ? bitonic_s / seconds : 0.0);
      }
    }
  }

  const std::string path = emitter.WriteFile(".");
  if (!path.empty()) {
    std::printf("\nwrote %s\n", path.c_str());
  }
  WriteMetricsSnapshot(registry, metrics_out);

  std::printf("\npaper shape check (4-core SGX): one thread wins below ~2^13 items, three\n"
              "threads win above; the adaptive policy tracks the winner. The model columns\n"
              "show the projected crossover; measured multi-thread numbers on this 1-core\n"
              "container only show coordination overhead.\n");
  return 0;
}
