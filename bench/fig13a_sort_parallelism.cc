// Figure 13a: parallelizing bitonic sort across enclave threads. For small inputs the
// coordination overhead makes one thread fastest; for large inputs more threads win,
// and the adaptive policy switches between them.
//
// Runs the real sorting network. NOTE: this container exposes a single hardware core,
// so measured multi-thread times show the coordination overhead without the speedup;
// the model column projects the 4-core DC4s_v2 behaviour the paper plots (crossover
// and all). Both are printed.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/crypto/rng.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/slab.h"
#include "src/sim/cost_model.h"

namespace snoopy {
namespace {

constexpr size_t kRecordBytes = 208;  // header + 160B value, as in the system

double SortTime(size_t n, int threads, uint64_t seed) {
  ByteSlab slab(n, kRecordBytes);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    uint64_t key = rng.Next64();
    std::memcpy(slab.Record(i), &key, 8);
  }
  return TimeSeconds([&] {
    BitonicSortSlab(
        slab,
        [](const uint8_t* a, const uint8_t* b) {
          return LoadSecretU64(a, 0) < LoadSecretU64(b, 0);
        },
        threads);
  });
}

}  // namespace
}  // namespace snoopy

int main() {
  using namespace snoopy;
  PrintHeader("Figure 13a", "bitonic sort thread scaling (measured + 4-core model)");
  const CostModel model;
  std::printf("%9s | %11s %11s %11s %11s | %13s %13s\n", "items", "1 thr(s)", "2 thr(s)",
              "3 thr(s)", "adaptive(s)", "model 1thr(s)", "model 3thr(s)");
  for (const size_t n : {size_t{1} << 10, size_t{1} << 12, size_t{1} << 14, size_t{1} << 16}) {
    const double t1 = SortTime(n, 1, n);
    const double t2 = SortTime(n, 2, n);
    const double t3 = SortTime(n, 3, n);
    const double ta = SortTime(n, AdaptiveSortThreads(n, 3), n);
    std::printf("%9zu | %11.3f %11.3f %11.3f %11.3f | %13.3f %13.3f\n", n, t1, t2, t3, ta,
                model.BitonicSortSeconds(n, kRecordBytes, 1),
                model.BitonicSortSeconds(n, kRecordBytes, 3));
  }
  std::printf("\npaper shape check (4-core SGX): one thread wins below ~2^13 items, three\n"
              "threads win above; the adaptive policy tracks the winner. The model columns\n"
              "show the projected crossover; measured multi-thread numbers on this 1-core\n"
              "container only show coordination overhead.\n");
  return 0;
}
