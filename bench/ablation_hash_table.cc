// Ablation: two-tier vs. single-tier oblivious hash table (paper section 5).
//
// The subORAM scans one bucket per tier for every stored object, so lookup cost is the
// summed bucket size. The paper's claim: two-tier buckets are ~10x smaller than a
// single-tier table sized for the same negligible overflow probability (batch 4096).
// This harness prints the real geometry chosen by ChooseOhtParams and measures real
// construction time for both configurations.

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/crypto/rng.h"
#include "src/obl/hash_table.h"

namespace snoopy {
namespace {

constexpr OhtSchema kSchema{0, 8, 12, 16, 24};
constexpr size_t kRecordBytes = 208;

double BuildTime(uint64_t n, uint64_t seed) {
  ByteSlab batch(n, kRecordBytes);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t key = i * 2654435761u + seed;
    std::memcpy(batch.Record(i), &key, 8);
  }
  Rng rng(seed);
  TwoTierOht oht(kSchema, 128);
  double t = TimeSeconds([&] {
    if (!oht.Build(std::move(batch), rng)) {
      std::printf("  (construction abort -- negligible-probability event)\n");
    }
  });
  return t;
}

}  // namespace
}  // namespace snoopy

int main() {
  using namespace snoopy;
  PrintHeader("Ablation", "two-tier vs. single-tier oblivious hash table (lambda = 128)");
  std::printf("%9s | %21s | %21s | %7s | %12s\n", "batch", "single-tier (scan/slots)",
              "two-tier (scan/slots)", "ratio", "build (ms)");
  for (const uint64_t n : {256ull, 1024ull, 4096ull, 16384ull}) {
    const OhtParams one = ChooseSingleTierParams(n, 128);
    const OhtParams two = ChooseOhtParams(n, 128);
    const double build_ms = BuildTime(n, n) * 1e3;
    std::printf("%9llu | %10llu / %8llu | %10llu / %8llu | %6.1fx | %12.1f\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(one.LookupCost()),
                static_cast<unsigned long long>(one.TotalSlots()),
                static_cast<unsigned long long>(two.LookupCost()),
                static_cast<unsigned long long>(two.TotalSlots()),
                static_cast<double>(one.LookupCost()) /
                    static_cast<double>(two.LookupCost()),
                build_ms);
  }
  std::printf("\npaper claim: at batch 4096 the scanned bucket bytes shrink by roughly an\n"
              "order of magnitude with the second tier (exact factor depends on the\n"
              "concentration bound; ours is the exact-binomial + McDiarmid bound of\n"
              "src/analysis/binomial.h).\n");
  return 0;
}
