"""ct_disasm: shared objdump disassembly parsing for the constant-time binary checks.

Both binary-level verifiers -- the no-branch smoke test (check_nobranch.py) and the
secret-taint dataflow analyzer (ct_dataflow.py) -- consume `objdump -d` output. This
module owns the parsing so the two tools agree on what an instruction is:

  * symbol headers (`0000000000000010 <name>:`), tracked per section so object files
    whose sections all start at address 0 do not alias;
  * instruction lines in both objdump layouts: with the raw-byte column
    (`  10:\t48 89 e5 \tmov %rsp,%rbp`) and without (`--no-show-raw-insn`);
  * multi-line encodings, where a long instruction wraps and the continuation line
    carries only hex bytes and no mnemonic;
  * legacy prefixes (`lock`, `rep`/`repz`/`repnz`, `data16`, `bnd`, `notrack`,
    segment overrides) split off the mnemonic so `data16 ...` is not mistaken for a
    mnemonic called `data16`;
  * relocation lines (`objdump -dr`): in an unlinked object the displacement of a
    `call` to an external symbol is a placeholder, and only the relocation names the
    real target -- the reloc is attached to the instruction it patches.

The conditional-branch classifiers live here too, so adding a mnemonic (say, a new
`loop` spelling) fixes every tool at once.
"""

from __future__ import annotations

import re
import subprocess
from dataclasses import dataclass, field

# x86-64 conditional control transfer: all j* except jmp, plus the loop family and
# the rcx-zero jumps.
X86_COND_RE = re.compile(r"^(j(?!mp)[a-z]+|loopn?e?|jr?cxz)$")
# aarch64: conditional branches and compare/test-and-branch.
A64_COND_RE = re.compile(r"^(b\.[a-z]+|cbn?z|tbn?z)$")

# Legacy/ignorable prefixes objdump prints as leading tokens of the mnemonic column.
PREFIX_TOKENS = {
    "lock", "rep", "repz", "repe", "repnz", "repne", "data16", "data32",
    "addr32", "bnd", "notrack", "cs", "ds", "es", "fs", "gs", "ss", "rex.w",
}

SECTION_RE = re.compile(r"^Disassembly of section (\S+):")
SYMBOL_RE = re.compile(r"^([0-9a-f]+) <(.+)>:\s*$")
# Address prefix of an instruction (or relocation) line.
ADDR_RE = re.compile(r"^\s+([0-9a-f]+):\s*(.*)$")
RELOC_RE = re.compile(r"^\s*(R_\S+)\s+(\S+)")
HEX_BYTES_RE = re.compile(r"^(?:[0-9a-f]{2}\s+)*[0-9a-f]{2}\s*$")
FILE_FORMAT_RE = re.compile(r"file format\s+(\S+)")
# Branch/call target operand: `401020 <sym+0x20>` or `1f <f>`.
TARGET_RE = re.compile(r"^([0-9a-f]+)\s+<([^>]+)>")


@dataclass
class Insn:
    address: int
    mnemonic: str  # prefix-stripped ("data16 cs nopw ..." -> "nopw")
    operands: list  # operand strings, split on top-level commas
    prefixes: list  # stripped prefix tokens, in order
    raw: str  # the original mnemonic column, for reporting
    reloc: str | None = None  # relocation symbol patching this insn, if any
    reloc_type: str | None = None  # e.g. R_X86_64_PLT32, R_X86_64_REX_GOTPCRELX
    line: str = ""  # full original line

    def target(self) -> tuple[int, str] | None:
        """(address, symbol-expression) of a direct branch/call target operand."""
        for op in self.operands:
            m = TARGET_RE.match(op)
            if m:
                return int(m.group(1), 16), m.group(2)
        return None


@dataclass
class SymbolDisasm:
    name: str
    section: str
    address: int
    insns: list = field(default_factory=list)


@dataclass
class Disassembly:
    file_format: str = ""
    symbols: dict = field(default_factory=dict)  # name -> SymbolDisasm
    _by_section: dict = field(default_factory=dict)  # section -> [(addr, name)]

    @property
    def is_x86(self) -> bool:
        return "x86-64" in self.file_format

    @property
    def is_aarch64(self) -> bool:
        return "aarch64" in self.file_format

    def symbol_at(self, section: str, address: int) -> str | None:
        """Name of the symbol containing `address` in `section`."""
        best = None
        for addr, name in self._by_section.get(section, ()):
            if addr <= address:
                best = name
            else:
                break
        return best


def split_operands(text: str) -> list:
    """Splits an operand string on top-level commas ((),<> nesting respected)."""
    ops = []
    depth = 0
    cur = []
    for ch in text:
        if ch in "(<":
            depth += 1
        elif ch in ")>":
            depth -= 1
        if ch == "," and depth == 0:
            ops.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        ops.append(tail)
    return ops


def _parse_mnemonic_column(text: str) -> tuple[str, list, list] | None:
    """(mnemonic, operands, prefixes) from the post-bytes column; None if empty."""
    text = text.strip()
    if not text or text.startswith("(bad)") or text == "...":
        return None
    # Comments ("# 0x40 <x>") follow the operands; strip unless inside a target.
    parts = text.split("\t")
    text = parts[-1].strip() if len(parts) > 1 else text
    prefixes = []
    rest = text
    while True:
        bits = rest.split(None, 1)
        if bits and bits[0] in PREFIX_TOKENS:
            prefixes.append(bits[0])
            rest = bits[1] if len(bits) > 1 else ""
        else:
            break
    if not rest:
        # A bare prefix line (e.g. a lone `data16`): treat the prefix as mnemonic so
        # it is still visible to scanners rather than silently dropped.
        return (prefixes[-1] if prefixes else "", [], prefixes[:-1])
    bits = rest.split(None, 1)
    mnemonic = bits[0]
    operand_text = bits[1] if len(bits) > 1 else ""
    # Drop trailing objdump comments: "lea 0x0(%rip),%rax        # 40 <f+0x40>".
    cut = operand_text.find("#")
    if cut >= 0 and "<" not in operand_text[:cut]:
        operand_text = operand_text[:cut]
    return mnemonic, split_operands(operand_text), prefixes


def parse_objdump(text: str) -> Disassembly:
    dis = Disassembly()
    m = FILE_FORMAT_RE.search(text)
    if m:
        dis.file_format = m.group(1)
    section = ""
    current: SymbolDisasm | None = None
    for line in text.splitlines():
        sm = SECTION_RE.match(line)
        if sm:
            section = sm.group(1)
            current = None
            continue
        ym = SYMBOL_RE.match(line)
        if ym:
            name = ym.group(2)
            current = SymbolDisasm(name, section, int(ym.group(1), 16))
            dis.symbols[name] = current
            dis._by_section.setdefault(section, []).append((current.address, name))
            continue
        am = ADDR_RE.match(line)
        if am is None or current is None:
            continue
        addr = int(am.group(1), 16)
        rest = am.group(2)
        rm = RELOC_RE.match(rest)
        if rm:
            # Relocation line: names the real target of the instruction it patches.
            if current.insns and current.insns[-1].reloc is None:
                sym = rm.group(2)
                # Strip addend ("memcpy-0x4" -> "memcpy").
                sym = re.split(r"[+-]0x[0-9a-f]+$", sym)[0]
                current.insns[-1].reloc = sym
                current.insns[-1].reloc_type = rm.group(1)
            continue
        # Byte column (if present) is tab-separated from the mnemonic column.
        fields = rest.split("\t")
        if HEX_BYTES_RE.match(fields[0].strip() + " ") or HEX_BYTES_RE.match(fields[0].strip()):
            mcol = "\t".join(fields[1:])
        else:
            mcol = rest
        parsed = _parse_mnemonic_column(mcol)
        if parsed is None:
            continue  # continuation line of a multi-byte encoding, or padding
        mnemonic, operands, prefixes = parsed
        current.insns.append(Insn(addr, mnemonic, operands, prefixes, mcol.strip(), line=line))
    for entries in dis._by_section.values():
        entries.sort()
    return dis


def run_objdump(objdump: str, obj_path: str, *, relocs: bool = True,
                show_raw: bool = True) -> Disassembly:
    cmd = [objdump, "-dr" if relocs else "-d"]
    if not show_raw:
        cmd.append("--no-show-raw-insn")
    cmd.append(obj_path)
    r = subprocess.run(cmd, capture_output=True, text=True)
    if r.returncode != 0:
        raise RuntimeError(f"objdump failed: {' '.join(cmd)}\n{r.stderr}")
    return parse_objdump(r.stdout)


def is_conditional_branch(insn: Insn, *, x86: bool = True) -> bool:
    if x86:
        return X86_COND_RE.match(insn.mnemonic) is not None
    return A64_COND_RE.match(insn.mnemonic) is not None
