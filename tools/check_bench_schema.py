#!/usr/bin/env python3
"""Validate the machine-readable bench output (BENCH_*.json) against the shared
emitter contract (src/telemetry/bench_json.h) plus per-bench series requirements.

Structural contract for every file:
  * top level is an object with "bench" (non-empty string), "schema" (int == 1),
    and "points" (list);
  * every point is an object with a non-empty "series" string and at least one
    measurement field; field values are numbers or strings only (the emitter can
    produce nothing else -- anything different means hand-edited output).

Known benches additionally must contain specific series (and, where noted,
fields inside them) so downstream tooling -- trace_report comparisons, the CI
tracing-overhead gate, the perf trajectory -- can rely on them:

  headline_comparison        throughput, telemetry_overhead, tracing_overhead
                             (overhead_fraction), epoch_parallelism
                             (hardware_threads, sort_strategy), phase_breakdown
                             (parallel_efficiency, cpu_busy_s,
                             speedup_vs_1_thread, work_inflation), kernel_backend
  fig13a_sort_parallelism    sort_threads (parallel_efficiency), blocked_sort
                             (speedup_vs_unblocked_1thr on EVERY point -- the
                             unblocked baseline rows carry 1.0), sort_strategy
                             (strategy, seconds)
  fig13b_suboram_parallelism suboram_threads, epoch_pool (parallel_efficiency)

Beyond shape, a few committed values are load-bearing claims and are gated here
so a regression cannot land silently by committing the regenerated numbers:

  * telemetry/tracing overhead_fraction <= 0.01 -- DESIGN.md claims the always-on
    telemetry stays under 1%; a committed point above that means either the claim
    broke or the measurement run was too short to resolve it (both are bugs);
  * phase_breakdown work_inflation <= 1.25 -- CPU time (not wall-busy) per phase
    must not grow materially with epoch_threads; the 3.2x regression this gate
    postdates showed up here first;
  * fig13a sort_strategy crossover -- at the largest measured n on one thread the
    bucket sort must beat the blocked bitonic by >= 1.5x (the headline claim of
    the O(n log n) strategy; see DESIGN.md "Oblivious sorting"). Committing a
    regenerated JSON where the advantage evaporated fails the check.

Usage: tools/check_bench_schema.py [dir ...]   (default: current directory)
Exit status: 0 when every file validates, 1 otherwise.
"""

from __future__ import annotations

import json
import pathlib
import sys

# bench name -> {series: [required fields]}
REQUIRED_SERIES = {
    "headline_comparison": {
        "throughput": [],
        "telemetry_overhead": ["overhead_fraction"],
        "tracing_overhead": ["overhead_fraction", "spans_recorded"],
        "epoch_parallelism": ["hardware_threads", "sort_strategy"],
        "phase_breakdown": [
            "parallel_efficiency",
            "phase",
            "epoch_threads",
            "hardware_threads",
            "cpu_busy_s",
            "speedup_vs_1_thread",
            "work_inflation",
        ],
        "kernel_backend": [],
    },
    "fig13a_sort_parallelism": {
        "sort_threads": ["parallel_efficiency", "threads", "seconds"],
        "blocked_sort": [],
        "sort_strategy": ["items", "threads", "strategy", "seconds"],
    },
    "fig13b_suboram_parallelism": {
        "suboram_threads": ["objects", "seconds"],
        "epoch_pool": ["parallel_efficiency", "epoch_threads"],
    },
}

# bench name -> {series: [fields required on EVERY point of the series]}. Stricter
# than REQUIRED_SERIES (any-point): these columns must be plottable unguarded, so a
# single row missing the field (the bug this postdates: unblocked blocked_sort rows
# silently lacked their 1.0 baseline speedup) fails the check.
REQUIRED_UNIFORM_FIELDS = {
    "fig13a_sort_parallelism": {
        "blocked_sort": ["speedup_vs_unblocked_1thr"],
        "sort_strategy": ["items", "threads", "strategy", "seconds"],
    },
}

# bench name -> {series: {field: max allowed value}}. Applied to every point in
# the series that carries the field; a committed point above the ceiling fails
# the check (see the module docstring for why these specific values).
MAX_FIELD_VALUES = {
    "headline_comparison": {
        "telemetry_overhead": {"overhead_fraction": 0.01},
        "tracing_overhead": {"overhead_fraction": 0.01},
        "phase_breakdown": {"work_inflation": 1.25},
    },
}


# The bucket sort's reason to exist is the committed crossover: at the largest
# measured n on a single thread it must beat the blocked bitonic baseline by at
# least this factor (ISSUE: "bucket >= 1.5x faster at n = 2^20, 1 thread").
SORT_STRATEGY_MIN_SPEEDUP = 1.5


def check_sort_strategy_crossover(path: pathlib.Path, points: list) -> list:
    errors = []
    by_items = {}
    for pt in points:
        items = pt.get("items")
        threads = pt.get("threads")
        strategy = pt.get("strategy")
        seconds = pt.get("seconds")
        if not all(isinstance(v, (int, float)) and not isinstance(v, bool)
                   for v in (items, threads, seconds)):
            continue  # shape errors are reported by the structural checks
        if threads == 1 and strategy in ("bitonic", "bucket"):
            by_items.setdefault(items, {})[strategy] = seconds
    if not by_items:
        return errors  # missing-series error already reported
    largest = max(by_items)
    pair = by_items[largest]
    if "bitonic" not in pair or "bucket" not in pair:
        errors.append(
            f"{path}: sort_strategy series lacks a 1-thread bitonic/bucket pair "
            f"at its largest n ({largest})"
        )
        return errors
    if pair["bucket"] <= 0 or pair["bitonic"] / pair["bucket"] < SORT_STRATEGY_MIN_SPEEDUP:
        speedup = pair["bitonic"] / pair["bucket"] if pair["bucket"] > 0 else 0.0
        errors.append(
            f"{path}: bucket sort speedup {speedup:.2f}x over blocked bitonic at "
            f"n={largest:.0f}, 1 thread is below the committed "
            f"{SORT_STRATEGY_MIN_SPEEDUP}x floor"
        )
    return errors


def check_file(path: pathlib.Path) -> list:
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        err(f"unreadable or invalid JSON: {e}")
        return errors

    if not isinstance(doc, dict):
        err("top level is not an object")
        return errors
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        err("missing/empty 'bench' string")
    if doc.get("schema") != 1:
        err(f"'schema' must be 1, got {doc.get('schema')!r}")
    points = doc.get("points")
    if not isinstance(points, list):
        err("'points' must be a list")
        return errors
    if not points:
        err("'points' is empty")

    seen_series = {}
    for i, pt in enumerate(points):
        if not isinstance(pt, dict):
            err(f"points[{i}] is not an object")
            continue
        series = pt.get("series")
        if not isinstance(series, str) or not series:
            err(f"points[{i}] missing/empty 'series'")
            continue
        fields = {k: v for k, v in pt.items() if k != "series"}
        if not fields:
            err(f"points[{i}] (series {series!r}) has no measurement fields")
        for k, v in fields.items():
            if isinstance(v, bool) or not isinstance(v, (int, float, str)):
                err(f"points[{i}].{k}: value {v!r} is not a number or string")
            if isinstance(v, float) and (v != v or v in (float("inf"), float("-inf"))):
                err(f"points[{i}].{k}: non-finite number")
        seen_series.setdefault(series, []).append(pt)

    for series, required_fields in REQUIRED_SERIES.get(bench, {}).items():
        pts = seen_series.get(series)
        if not pts:
            err(f"bench {bench!r} is missing required series {series!r}")
            continue
        for field in required_fields:
            if not any(field in pt for pt in pts):
                err(f"series {series!r} lacks required field {field!r}")

    for series, uniform_fields in REQUIRED_UNIFORM_FIELDS.get(bench, {}).items():
        for i, pt in enumerate(seen_series.get(series, [])):
            for field in uniform_fields:
                if field not in pt:
                    err(
                        f"series {series!r} point {i} lacks field {field!r} "
                        f"(required on every point of this series)"
                    )

    if bench == "fig13a_sort_parallelism":
        errors.extend(check_sort_strategy_crossover(path, seen_series.get("sort_strategy", [])))

    for series, gates in MAX_FIELD_VALUES.get(bench, {}).items():
        for pt in seen_series.get(series, []):
            for field, ceiling in gates.items():
                value = pt.get(field)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    if value > ceiling:
                        err(
                            f"series {series!r} field {field!r} = {value} exceeds "
                            f"committed ceiling {ceiling} (phase "
                            f"{pt.get('phase', '?')!r}, epoch_threads "
                            f"{pt.get('epoch_threads', '?')})"
                        )
    return errors


def main() -> int:
    dirs = [pathlib.Path(d) for d in (sys.argv[1:] or ["."])]
    files = sorted({p for d in dirs for p in d.glob("BENCH_*.json")})
    if not files:
        print(f"check_bench_schema: no BENCH_*.json under {', '.join(map(str, dirs))}")
        return 1
    errors = []
    for f in files:
        errors.extend(check_file(f))
    for e in errors:
        print(e)
    checked = ", ".join(p.name for p in files)
    if errors:
        print(f"check_bench_schema: {len(errors)} error(s) in {len(files)} file(s)")
        return 1
    print(f"check_bench_schema: {len(files)} file(s) ok ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
