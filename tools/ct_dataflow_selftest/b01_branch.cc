// Planted B01: a conditional branch whose flags derive from a secret value.
// The guarded store keeps GCC from if-converting the branch into a cmov
// (speculative stores are never emitted), so a real jcc survives -O2.

#include <cstdint>

// ctdf-symbol: tc_branch_on_secret secret=val:rdi expect=B01
extern "C" __attribute__((noipa)) void tc_branch_on_secret(uint64_t s,
                                                           uint64_t* out) {
  if (s & 1) {
    out[0] = 0x1234;
  }
}
