// Planted B04: secret data escaping to a non-allowlisted external callee --
// once by value in an argument register, once as a pointer to secret bytes.

#include <cstdint>

extern "C" void tc_sink_value(uint64_t);
extern "C" void tc_sink_buffer(const uint8_t*);

// ctdf-symbol: tc_secret_escape_val secret=val:rdi expect=B04
extern "C" __attribute__((noipa)) void tc_secret_escape_val(uint64_t s) {
  tc_sink_value(s ^ 0x5a5a5a5a);
}

// ctdf-symbol: tc_secret_escape_ptr secret=ptr:rdi expect=B04
extern "C" __attribute__((noipa)) void tc_secret_escape_ptr(const uint8_t* p) {
  tc_sink_buffer(p);
}
