// Planted M01: the manifest/marker names a symbol the object does not define
// (e.g. a kernel entry point renamed without updating the audit unit). The
// verifier must fail loudly instead of silently auditing nothing.

#include <cstdint>

// ctdf-symbol: tc_symbol_that_does_not_exist secret=val:rdi expect=M01

extern "C" __attribute__((noipa)) uint64_t tc_present(uint64_t x) {
  return x + 1;
}
