// Planted B03: an integer divide whose operand derives from a secret value.
// DIV latency is operand-dependent on every x86-64 this project targets.

#include <cstdint>

// ctdf-symbol: tc_secret_divide secret=val:rdi expect=B03
extern "C" __attribute__((noipa)) uint64_t tc_secret_divide(uint64_t s,
                                                            uint64_t n) {
  return n / (s | 1);  // | 1 avoids UB while keeping the divisor tainted
}
