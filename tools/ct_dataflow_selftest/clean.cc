// Negative control: constant-time mask algebra over secrets must NOT be
// flagged. Taint flows through the arithmetic (masks are taint algebra, not
// taint kills), but no branch, address, latency, or call ever consumes it.

#include <cstddef>
#include <cstdint>

// ctdf-symbol: tc_clean_select secret=val:rdi expect=clean
extern "C" __attribute__((noipa)) uint64_t tc_clean_select(uint64_t bit,
                                                           uint64_t a,
                                                           uint64_t b) {
  const uint64_t mask = uint64_t{0} - (bit & 1);
  return (a & mask) | (b & ~mask);
}

// ctdf-symbol: tc_clean_copy secret=val:rdi,ptr:rsi,ptr:rdx expect=clean
extern "C" __attribute__((noipa)) void tc_clean_copy(uint64_t mask, uint8_t* d,
                                                     const uint8_t* s,
                                                     size_t n) {
  const uint8_t m = static_cast<uint8_t>(mask);
  for (size_t i = 0; i < n; ++i) {
    d[i] = static_cast<uint8_t>((s[i] & m) | (d[i] & static_cast<uint8_t>(~m)));
  }
}
