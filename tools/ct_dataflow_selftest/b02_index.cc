// Planted B02: a table lookup whose index derives from a secret value -- the
// classic S-box/cache-line leak the kernels exist to avoid.

#include <cstdint>

// ctdf-symbol: tc_secret_index secret=val:rdi expect=B02
extern "C" __attribute__((noipa)) uint8_t tc_secret_index(uint64_t s,
                                                          const uint8_t* table) {
  return table[s & 255];
}
