#!/usr/bin/env python3
"""ct_lint: constant-time discipline linter for Snoopy's oblivious regions.

Snoopy's security argument (paper Appendix B) requires that code handling secret
request/object data is *oblivious*: no branch, memory index, or early-exit may depend
on a secret. The Secret<T>/SecretBool wrappers (src/obl/secret.h) push most of that
discipline into the type system; this linter closes the gaps the C++ type system
cannot see:

  * raw (untyped) locals inside an oblivious region flowing into a branch or index,
  * short-circuit operators (&&/||) that would reintroduce a hidden branch,
  * variable-time library calls (memcmp & friends) on secret buffers,
  * use of the Secret<T> TCB escape hatch outside the trusted files,
  * telemetry record calls (src/telemetry) inside an oblivious region -- a metric
    bumped on a secret-dependent path is an access-pattern side channel.

The unit of enforcement is a *region*:

    // SNOOPY_OBLIVIOUS_BEGIN(name)
    // ct-public: i n stride ...     <- identifiers that are public inside the region
    ...code...
    // SNOOPY_OBLIVIOUS_END(name)

Inside a region every identifier is secret unless it is (a) declared on a ct-public
line, (b) a builtin/allowlisted accessor, or (c) the expression routes through an
audited `.Declassify("site")` call. Findings can be suppressed with a trailing
`// ct-ok: reason` on the offending line (or the line above).

Files are classified by tools/ct_manifest.json:
  tcb      - the taint boundary itself (secret.h, primitives.h, ...); not linted.
  enforced - must contain at least one region; regions are linted.
  public   - no secret handling expected; only the TCB-escape rule applies.
  exempt   - intentionally non-oblivious (baselines); must carry an in-file
             `// SNOOPY_LINT_EXEMPT: reason` marker.

Rules:
  CT001 secret-branch       if/while/for condition mentions a non-public identifier
  CT002 secret-ternary      ?: condition mentions a non-public identifier
  CT003 short-circuit       &&/|| operand mentions a non-public identifier
  CT004 secret-index        subscript expression mentions a non-public identifier
  CT005 banned-call         memcmp/strcmp/... anywhere in a region
  CT006 unvetted-call       call to a function outside the oblivious allowlist
  CT007 tcb-escape          SecretValueForPrimitive() outside a tcb file
  CT008 manifest            region/manifest structural problems
  CT009 metric-in-region    telemetry record call inside an oblivious region without
                            a `ct-public: <name>` annotation vouching that every
                            recorded value is public
  CT010 trace-in-region     span-tracing API (src/telemetry/tracing.h) used inside an
                            oblivious region without a `ct-public: <name>` annotation
                            vouching that the span's label, id, and arguments derive
                            only from public schedule state

Exit status: 0 if no findings, 1 otherwise. `--self-test` runs the planted-violation
corpus (tools/ct_lint_selftest/), an injection demo against bitonic_sort.h, and then
the real tree.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------- lexing

RE_BEGIN = re.compile(r"//\s*SNOOPY_OBLIVIOUS_BEGIN\((\w+)\)")
RE_END = re.compile(r"//\s*SNOOPY_OBLIVIOUS_END\((\w+)\)")
RE_PUBLIC = re.compile(r"//\s*ct-public:\s*(.*)")
RE_CALLS = re.compile(r"//\s*ct-calls:\s*(.*)")
RE_OK = re.compile(r"//\s*ct-ok\b")
RE_EXEMPT = re.compile(r"//\s*SNOOPY_LINT_EXEMPT:\s*\S")
RE_EXPECT = re.compile(r"//\s*EXPECT:\s*([A-Z0-9 ]+)")
RE_EXPECT_FILE = re.compile(r"//\s*EXPECT-FILE:\s*([A-Z0-9 ]+)")

TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"  # identifier / keyword
    r"|\d[\w.]*"  # number
    r"|&&|\|\||::|->|<<=?|>>=?|<=|>=|==|!=|\+=|-=|\*=|/=|\|=|&=|\^=|\+\+|--"
    r"|[^\sA-Za-z_0-9]"  # single punctuation
)

KEYWORDS = {
    "if", "else", "while", "for", "do", "switch", "case", "default", "return",
    "break", "continue", "goto", "throw", "try", "catch", "new", "delete",
    "const", "constexpr", "static", "inline", "extern", "mutable", "volatile",
    "auto", "void", "bool", "char", "int", "unsigned", "signed", "long", "short",
    "float", "double", "struct", "class", "enum", "union", "namespace", "using",
    "typename", "template", "typedef", "public", "private", "protected", "friend",
    "operator", "sizeof", "alignof", "static_cast", "reinterpret_cast",
    "const_cast", "dynamic_cast", "noexcept", "explicit", "virtual", "override",
    "final", "this", "true", "false", "nullptr", "co_await", "co_return",
}

# Identifiers that are always considered public: fixed-width types, common
# size/capacity accessors (container identity and geometry are public), and the
# declassify escape itself.
BUILTIN_PUBLIC = {
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t", "int16_t",
    "int32_t", "int64_t", "size_t", "ptrdiff_t", "uintptr_t", "std",
    "size", "empty", "length", "record_bytes", "value_size", "capacity",
    "Declassify", "first", "second", "value", "data", "begin", "end",
}

# Calls that may appear inside an oblivious region. Prefixes cover the oblivious
# primitive families; exact names cover vetted helpers and public-geometry accessors.
# Both sets can be extended with the manifest's top-level "call_allow" /
# "call_allow_prefixes" keys (e.g. the _mm* intrinsic family for src/obl/kernels.h).
CALL_ALLOW_PREFIXES = (
    "Ct", "Secret", "Load", "Store", "Oblivious", "Bitonic", "Goodrich",
    "Trace", "OCmp", "Poison", "Unpoison", "Sip", "Choose", "Run", "Kernel",
)
CALL_ALLOW = {
    # libc / language
    "memcpy", "memset", "assert", "move", "swap", "get",
    # secret.h vocabulary
    "Widen", "NarrowToU32", "ModPublic", "Declassify", "ToFlagByte", "NonZero",
    "LowBit", "FromWord", "FromBool", "FromMask", "False", "True", "mask",
    # public container/geometry accessors
    "size", "empty", "data", "record_bytes", "Record", "Append", "AppendZero",
    "Truncate", "clear", "reserve", "resize", "push_back", "emplace_back",
    "assign", "begin", "end", "join", "hardware_concurrency", "value_size",
    "slab", "Header", "Value", "params",
    # vetted project helpers reachable from regions
    "Uniform", "Next64", "NextSipKey", "Tier1Bucket", "Tier2Bucket",
    "Tier1BucketIndex", "Tier2BucketIndex", "SubOramOf", "HmacSha256",
    "ComputeTag", "Crypt", "KeystreamBlock", "Finalize", "Update",
    "make_dummy", "key_of", "apply", "cswap", "less",
    # record/aggregate constructors (value moves, no control flow)
    "ByteSlab", "RequestBatch", "OhtParams", "BinSchema", "BinPlacementOptions",
    # abort paths (reached only on declassified/public conditions)
    "invalid_argument", "runtime_error", "out_of_range", "logic_error",
}

BANNED_CALLS = {
    "memcmp", "strcmp", "strncmp", "strcasecmp", "bcmp", "equal",
    "lexicographical_compare", "find", "count", "binary_search", "sort",
    "stable_sort", "qsort", "bsearch",
}

# Telemetry record/lookup entry points (src/telemetry/metrics.h). Inside an oblivious
# region these are flagged as CT009 unless the region's `ct-public:` line names the
# call, asserting that every value it records is public. The set can be extended with
# the manifest's top-level "metric_calls" key.
METRIC_CALLS = {
    "Increment", "SetValue", "Observe", "ObserveUniform",
    "GetCounter", "GetGauge", "GetHistogram",
}

# Span-tracing record APIs (src/telemetry/tracing.h). Unlike METRIC_CALLS these are
# matched on *any* appearance inside a region, not just call syntax, because the
# primary form is a RAII declaration (`TraceSpan s(...)`) that call detection would
# classify as a declaration and skip. A region opts in with `ct-public: <name>`,
# asserting the span's category/name/id/arguments are functions of public state
# only. Extensible via the manifest's top-level "trace_calls" key.
TRACE_CALLS = {
    "TraceSpan", "SetArg",
}


@dataclass
class Tok:
    text: str
    line: int


@dataclass
class Region:
    name: str
    begin: int  # line numbers, inclusive
    end: int
    publics: set = field(default_factory=set)
    extra_calls: set = field(default_factory=set)  # region-local vetted helpers


@dataclass
class Finding:
    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code}: {self.message}"


def lex(text: str):
    """Strips comments/strings (capturing lint directives) and tokenizes.

    Returns (tokens, directives) where directives is a list of (line, kind, payload)
    with kind in {begin, end, public, ok, exempt, expect, expect_file}.
    """
    directives = []
    out = []
    i = 0
    line = 1
    n = len(text)
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            comment = text[i:j]
            for regex, kind in (
                (RE_BEGIN, "begin"), (RE_END, "end"), (RE_PUBLIC, "public"),
                (RE_CALLS, "calls"),
                (RE_EXPECT_FILE, "expect_file"), (RE_EXPECT, "expect"),
            ):
                m = regex.search(comment)
                if m:
                    directives.append((line, kind, m.group(1).strip()))
                    break
            else:
                if RE_OK.search(comment):
                    directives.append((line, "ok", ""))
                elif RE_EXEMPT.search(comment):
                    directives.append((line, "exempt", ""))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            line += text.count("\n", i, j + 2)
            i = j + 2
        elif c in "\"'":
            # String/char literal: skip with escape handling, emit placeholder.
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(Tok('""' if quote == '"' else "'0'", line))
            i = j + 1
        else:
            m = TOKEN_RE.match(text, i)
            if m and not m.group().isspace():
                out.append(Tok(m.group(), line))
                i = m.end()
            else:
                i += 1
    return out, directives


# ------------------------------------------------------------------- region parsing

def parse_regions(path: str, directives, findings) -> list[Region]:
    regions = []
    open_region = None
    for line, kind, payload in directives:
        if kind == "begin":
            if open_region is not None:
                findings.append(Finding(path, line, "CT008",
                                        f"region '{payload}' opened inside region "
                                        f"'{open_region.name}'"))
            open_region = Region(payload, line, -1)
        elif kind == "end":
            if open_region is None or open_region.name != payload:
                findings.append(Finding(path, line, "CT008",
                                        f"unmatched SNOOPY_OBLIVIOUS_END({payload})"))
                open_region = None
                continue
            open_region.end = line
            regions.append(open_region)
            open_region = None
        elif kind == "public" and open_region is not None:
            open_region.publics.update(payload.split())
        elif kind == "calls" and open_region is not None:
            open_region.extra_calls.update(payload.split())
    if open_region is not None:
        findings.append(Finding(path, open_region.begin, "CT008",
                                f"region '{open_region.name}' never closed"))
    return regions


# ------------------------------------------------------------------- token helpers

def match_forward(tokens, i, open_t, close_t):
    """Index just past the token matching tokens[i] == open_t."""
    depth = 0
    while i < len(tokens):
        if tokens[i].text == open_t:
            depth += 1
        elif tokens[i].text == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(tokens)


BOUNDARY_BACK = {"=", "(", ",", ";", "{", "}", "return", "[", "?", ":"}
BOUNDARY_FWD = {")", ";", ",", "}", "]", "?", ":"}


def operand_back(tokens, i):
    """Tokens of the expression ending just before index i (exclusive)."""
    depth = 0
    j = i - 1
    while j >= 0:
        t = tokens[j].text
        if t in ")]":
            depth += 1
        elif t in "([":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0 and t in BOUNDARY_BACK:
            break
        j -= 1
    return tokens[j + 1:i]


def operand_fwd(tokens, i):
    """Tokens of the expression starting just after index i (exclusive)."""
    depth = 0
    j = i + 1
    while j < len(tokens):
        t = tokens[j].text
        if t in "([":
            depth += 1
        elif t in ")]":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0 and t in BOUNDARY_FWD:
            break
        j += 1
    return tokens[i + 1:j]


def non_public_idents(tokens, publics):
    """Identifiers in `tokens` that are neither public nor builtin; None means the
    expression routes through Declassify and is exempt wholesale."""
    bad = []
    for t in tokens:
        if t.text == "Declassify":
            return None
        if not re.match(r"[A-Za-z_]", t.text):
            continue
        if t.text in KEYWORDS or t.text in BUILTIN_PUBLIC or t.text in CALL_ALLOW:
            continue
        if t.text in publics:
            continue
        bad.append(t.text)
    return bad


def call_allowed(name: str) -> bool:
    return name in CALL_ALLOW or name.startswith(CALL_ALLOW_PREFIXES)


# ------------------------------------------------------------------------ the linter

def lint_region_tokens(path, tokens, region, findings):
    pub = region.publics

    def check_expr(expr, code, what, line):
        bad = non_public_idents(expr, pub)
        if bad:
            findings.append(Finding(path, line, code,
                                    f"{what} depends on non-public identifier(s): "
                                    f"{', '.join(sorted(set(bad)))}"))

    i = 0
    while i < len(tokens):
        t = tokens[i]
        # --- branches -------------------------------------------------------
        if t.text in ("if", "while") and i + 1 < len(tokens) and tokens[i + 1].text == "(":
            end = match_forward(tokens, i + 1, "(", ")")
            check_expr(tokens[i + 2:end - 1], "CT001", f"`{t.text}` condition", t.line)
        elif t.text == "for" and i + 1 < len(tokens) and tokens[i + 1].text == "(":
            end = match_forward(tokens, i + 1, "(", ")")
            clauses = tokens[i + 2:end - 1]
            # Split on top-level ';'. A range-for has none and carries no condition.
            depth = 0
            semis = []
            for k, tok in enumerate(clauses):
                if tok.text in "([":
                    depth += 1
                elif tok.text in ")]":
                    depth -= 1
                elif tok.text == ";" and depth == 0:
                    semis.append(k)
            if len(semis) >= 2:
                check_expr(clauses[semis[0] + 1:semis[1]], "CT001",
                           "`for` condition", t.line)
        # --- ternaries ------------------------------------------------------
        elif t.text == "?":
            check_expr(operand_back(tokens, i), "CT002", "`?:` condition", t.line)
        # --- short-circuit --------------------------------------------------
        elif t.text in ("&&", "||"):
            # Not a branch when `&&` is an rvalue-reference declarator:
            # `Type&& name,` / `Type&& name)`.
            prev = tokens[i - 1].text if i > 0 else ""
            nxt = tokens[i + 1].text if i + 1 < len(tokens) else ""
            nxt2 = tokens[i + 2].text if i + 2 < len(tokens) else ""
            is_rvalue_ref = (t.text == "&&"
                             and bool(re.match(r"[A-Za-z_>]", prev))
                             and bool(re.match(r"[A-Za-z_]", nxt))
                             and nxt2 in (",", ")"))
            if not is_rvalue_ref:
                expr = operand_back(tokens, i) + operand_fwd(tokens, i)
                check_expr(expr, "CT003", f"`{t.text}` operand", t.line)
        # --- subscripts -----------------------------------------------------
        elif t.text == "[":
            prev = tokens[i - 1].text if i > 0 else ""
            is_subscript = bool(re.match(r"[A-Za-z_0-9]", prev)) or prev in (")", "]")
            if is_subscript and prev not in KEYWORDS:
                end = match_forward(tokens, i, "[", "]")
                check_expr(tokens[i + 1:end - 1], "CT004", "subscript index", t.line)
        # --- tracing (CT010) ------------------------------------------------
        # Presence-based, not call-syntax-based: `TraceSpan s(tracer, ...)` is a
        # declaration, which the call walker below deliberately skips, yet it is
        # exactly the recording act the rule must audit.
        if t.text in TRACE_CALLS and t.text not in region.publics:
            findings.append(Finding(path, t.line, "CT010",
                                    f"tracing API `{t.text}` inside oblivious "
                                    f"region; annotate `ct-public: {t.text}` only "
                                    f"if the span's label and arguments derive from "
                                    f"public state"))
        # --- calls ----------------------------------------------------------
        if (re.match(r"[A-Za-z_]", t.text) and t.text not in KEYWORDS
                and i + 1 < len(tokens) and tokens[i + 1].text == "("):
            # Walk back over a qualified chain (a::b::f, x.f, p->f) to find what
            # precedes it; an identifier or template-closer there means this is a
            # declaration/definition, not a call.
            j = i
            while j >= 2 and tokens[j - 1].text in ("::", ".", "->"):
                j -= 2
            before = tokens[j - 1].text if j > 0 else ""
            is_decl = bool(re.match(r"[A-Za-z_]", before)) and before not in (
                "return", "throw", "else", "do", "in")
            is_decl = is_decl or before in (">", "*", "&")
            if not is_decl:
                if t.text in TRACE_CALLS:
                    pass  # audited by the CT010 presence check above
                elif t.text in METRIC_CALLS:
                    # A ct-public annotation for the call name is the audited opt-in:
                    # the author asserts every value this call records is public.
                    if t.text not in region.publics:
                        findings.append(Finding(path, t.line, "CT009",
                                                f"telemetry call `{t.text}` inside "
                                                f"oblivious region; annotate "
                                                f"`ct-public: {t.text}` only if every "
                                                f"recorded value is public"))
                elif t.text in BANNED_CALLS:
                    findings.append(Finding(path, t.line, "CT005",
                                            f"variable-time call `{t.text}` in "
                                            f"oblivious region"))
                elif not call_allowed(t.text) and t.text not in region.extra_calls:
                    findings.append(Finding(path, t.line, "CT006",
                                            f"call to `{t.text}` is not on the "
                                            f"oblivious allowlist"))
        i += 1


def lint_file(path: pathlib.Path, cls: str, rel: str, findings: list):
    text = path.read_text()
    tokens, directives = lex(text)
    ok_lines = {line for line, kind, _ in directives if kind == "ok"}
    has_exempt_marker = any(kind == "exempt" for _, kind, _ in directives)

    raw = []
    if cls == "exempt":
        if not has_exempt_marker:
            raw.append(Finding(rel, 1, "CT008",
                               "manifest class 'exempt' requires an in-file "
                               "`// SNOOPY_LINT_EXEMPT: reason` marker"))
        _trim_suppressed(raw, ok_lines, findings)
        return

    regions = parse_regions(rel, directives, raw)
    if cls == "enforced" and not regions:
        raw.append(Finding(rel, 1, "CT008",
                           "manifest class 'enforced' but no SNOOPY_OBLIVIOUS regions"))
    if cls in ("public",) and regions:
        raw.append(Finding(rel, regions[0].begin, "CT008",
                           "file has oblivious regions but manifest class is "
                           f"'{cls}' (expected 'enforced')"))

    if cls != "tcb":
        for t in tokens:
            if t.text == "SecretValueForPrimitive":
                raw.append(Finding(rel, t.line, "CT007",
                                   "TCB escape SecretValueForPrimitive() outside a "
                                   "tcb-classified file"))

    if cls == "enforced":
        for region in regions:
            rtokens = [t for t in tokens if region.begin <= t.line <= region.end]
            lint_region_tokens(rel, rtokens, region, raw)

    _trim_suppressed(raw, ok_lines, findings)


def _trim_suppressed(raw, ok_lines, findings):
    for f in raw:
        if f.line in ok_lines or (f.line - 1) in ok_lines:
            continue
        findings.append(f)


# ---------------------------------------------------------------------- tree driver

def load_manifest(root: pathlib.Path, manifest_path: pathlib.Path):
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    classes = {}
    for entry in manifest["files"]:
        classes[entry["path"]] = entry["class"]
    return manifest, classes


def lint_tree(root: pathlib.Path, manifest_path: pathlib.Path) -> list:
    global CALL_ALLOW_PREFIXES
    findings = []
    manifest, classes = load_manifest(root, manifest_path)
    METRIC_CALLS.update(manifest.get("metric_calls", []))
    TRACE_CALLS.update(manifest.get("trace_calls", []))
    CALL_ALLOW.update(manifest.get("call_allow", []))
    CALL_ALLOW_PREFIXES = tuple(dict.fromkeys(
        CALL_ALLOW_PREFIXES + tuple(manifest.get("call_allow_prefixes", []))))

    for rel, cls in sorted(classes.items()):
        p = root / rel
        if not p.exists():
            findings.append(Finding(rel, 1, "CT008", "manifest lists missing file"))
            continue
        lint_file(p, cls, rel, findings)

    # Coverage: every source file under the coverage roots must be classified.
    for cov in manifest.get("coverage_roots", []):
        for p in sorted((root / cov).rglob("*")):
            if p.suffix not in (".cc", ".h"):
                continue
            rel = str(p.relative_to(root))
            if rel not in classes:
                findings.append(Finding(rel, 1, "CT008",
                                        f"file under coverage root '{cov}' is not "
                                        f"classified in the manifest"))

    # Files outside the manifest must not open regions or use the TCB escape.
    for sub in ("src", "tests", "bench", "examples"):
        base = root / sub
        if not base.exists():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix not in (".cc", ".h"):
                continue
            rel = str(p.relative_to(root))
            if rel in classes:
                continue
            text = p.read_text()
            if "SNOOPY_OBLIVIOUS_BEGIN" in text:
                findings.append(Finding(rel, 1, "CT008",
                                        "file opens oblivious regions but is not in "
                                        "the manifest"))
            for m in re.finditer(r"SecretValueForPrimitive", text):
                line = text.count("\n", 0, m.start()) + 1
                ctx = text.splitlines()[line - 1]
                if "ct-ok" not in ctx:
                    findings.append(Finding(rel, line, "CT007",
                                            "TCB escape SecretValueForPrimitive() in "
                                            "unclassified file"))
    return findings


# ------------------------------------------------------------------------ self-test

def self_test(root: pathlib.Path, manifest_path: pathlib.Path) -> int:
    failures = 0
    corpus = root / "tools" / "ct_lint_selftest"

    # 1. Planted violations: every EXPECT marker must be found, nothing extra.
    for p in sorted(corpus.glob("*.cc")):
        rel = str(p.relative_to(root))
        text = p.read_text()
        _, directives = lex(text)
        expected = set()
        for line, kind, payload in directives:
            if kind == "expect":
                for code in payload.split():
                    expected.add((line, code))
            elif kind == "expect_file":
                for code in payload.split():
                    expected.add((0, code))
        findings = []
        lint_file(p, "enforced", rel, findings)
        got = {(f.line, f.code) for f in findings}
        exp_lines = {e for e in expected if e[0] != 0}
        exp_codes = {c for (l, c) in expected if l == 0}  # EXPECT-FILE: any line
        missed = (exp_lines - got) | {
            (0, c) for c in exp_codes if all(fc != c for (_, fc) in got)}
        extra = {(l, c) for (l, c) in got
                 if (l, c) not in exp_lines and c not in exp_codes}
        if missed:
            failures += 1
            print(f"SELF-TEST FAIL {rel}: planted violations not caught: "
                  f"{sorted(missed)}")
        if extra:
            failures += 1
            print(f"SELF-TEST FAIL {rel}: unexpected findings: {sorted(extra)}")
            for f in findings:
                if (f.line, f.code) in extra:
                    print(f"    {f}")
        if not missed and not extra:
            print(f"self-test ok: {rel} ({len(expected)} planted, all caught)")

    # 2. Injection demo: adding `if (secret)` to a real kernel must fail the lint.
    target = root / "src" / "obl" / "bitonic_sort.h"
    text = target.read_text()
    needle = "const SecretBool out_of_order = asc ? less(data[j], data[i]) : less(data[i], data[j]);"
    if needle not in text:
        print("SELF-TEST FAIL: injection anchor not found in bitonic_sort.h")
        failures += 1
    else:
        mutated = text.replace(
            needle, needle + "\n        if (out_of_order_raw) { return; }", 1)
        demo = root / "build" / "ct_lint_demo.h"
        demo.parent.mkdir(exist_ok=True)
        demo.write_text(mutated)
        findings = []
        lint_file(demo, "enforced", "ct_lint_demo.h", findings)
        hits = [f for f in findings if f.code == "CT001"]
        demo.unlink()
        if hits:
            print(f"self-test ok: injected secret branch caught ({hits[0].code})")
        else:
            print("SELF-TEST FAIL: injected `if (secret)` was not flagged")
            failures += 1

    # 3. The real tree must be clean.
    findings = lint_tree(root, manifest_path)
    if findings:
        failures += 1
        print(f"SELF-TEST FAIL: real tree has {len(findings)} finding(s):")
        for f in findings:
            print(f"  {f}")
    else:
        print("self-test ok: real tree clean")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo-root", default=".", type=pathlib.Path)
    ap.add_argument("--manifest", default=None, type=pathlib.Path)
    ap.add_argument("--format", choices=("text", "json"), default="text",
                    help="finding output format (json: one machine-readable "
                         "object, mirrors ct_dataflow --format=json)")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    root = args.repo_root.resolve()
    manifest = args.manifest or root / "tools" / "ct_manifest.json"

    if args.self_test:
        failures = self_test(root, manifest)
        if failures:
            print(f"ct_lint self-test: {failures} failure(s)")
            return 1
        print("ct_lint self-test: all checks passed")
        return 0

    findings = lint_tree(root, manifest)
    if args.format == "json":
        print(json.dumps({
            "tool": "ct_lint",
            "findings": [{"path": f.path, "line": f.line, "rule": f.code,
                          "detail": f.message} for f in findings],
        }, indent=2))
        return 1 if findings else 0
    for f in findings:
        print(f)
    if findings:
        print(f"ct_lint: {len(findings)} finding(s)")
        return 1
    print("ct_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
