#!/usr/bin/env python3
"""check_nobranch: assert that compiled oblivious primitives contain no conditional
branches.

Source-level constant-time discipline (masks instead of branches) survives the
compiler only if nothing in the toolchain re-introduces a jump. This check compiles
tests/ct_nobranch_fixture.cc at a requested optimization level, disassembles the
object with objdump, and scans every nb_* symbol for conditional-branch mnemonics.
Loop back-edges count too -- the fixture uses small fixed sizes precisely so that
every loop fully unrolls; a surviving loop means the "fully unrolled, branch-free"
claim no longer holds and the fixture (or primitive) needs attention.

Instruction parsing (prefix bytes, multi-line encodings, missing raw-byte columns)
is shared with the taint dataflow analyzer via tools/ct_disasm.py; this tool remains
the fast hand-unrolled smoke test, while ct_dataflow.py audits the full-size symbols
whose loops cannot unroll.

Usage:
  check_nobranch.py --compiler g++ --repo-root . --opt -O2 [--objdump objdump]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys
import tempfile

import ct_disasm

# Expected symbols are declared in the fixture itself via `// nb-symbol: <name>`
# markers (`nb-symbol[x86]: <name>` for symbols only compiled on x86-64), so adding
# a wrapper and registering it for scanning is one edit in one file.
MARKER_RE = re.compile(r"//\s*nb-symbol(\[x86\])?:\s*(\w+)")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--compiler", required=True)
    ap.add_argument("--repo-root", required=True, type=pathlib.Path)
    ap.add_argument("--opt", default="-O2")
    ap.add_argument("--objdump", default="objdump")
    args = ap.parse_args()
    root = args.repo_root.resolve()
    fixture = root / "tests" / "ct_nobranch_fixture.cc"

    expected: list[tuple[str, bool]] = []  # (symbol, x86_only)
    for m in MARKER_RE.finditer(fixture.read_text()):
        expected.append((m.group(2), m.group(1) is not None))
    if not expected:
        print(f"no nb-symbol markers found in {fixture}")
        return 1

    with tempfile.TemporaryDirectory() as tmp:
        obj = pathlib.Path(tmp) / "fixture.o"
        compile_cmd = [
            args.compiler, "-std=c++20", *args.opt.split(), "-c", str(fixture),
            "-I", str(root), "-o", str(obj),
        ]
        r = subprocess.run(compile_cmd, capture_output=True, text=True)
        if r.returncode != 0:
            print(f"compile failed: {' '.join(compile_cmd)}\n{r.stderr}")
            return 1
        try:
            dis = ct_disasm.run_objdump(args.objdump, str(obj))
        except RuntimeError as e:
            print(e)
            return 1

    failures = 0
    scanned = 0
    for sym, x86_only in expected:
        if x86_only and not dis.is_x86:
            print(f"skip {sym}: x86-only symbol, object is not x86-64")
            continue
        scanned += 1
        if sym not in dis.symbols:
            print(f"FAIL {sym}: symbol not found in disassembly")
            failures += 1
            continue
        insns = dis.symbols[sym].insns
        hits = [i for i in insns
                if ct_disasm.is_conditional_branch(i, x86=not dis.is_aarch64)]
        if hits:
            print(f"FAIL {sym} ({args.opt}): conditional branch(es) in compiled code:")
            for h in hits:
                print(f"    {h.address:x}: {h.raw}")
            failures += 1
        else:
            print(f"ok {sym} ({args.opt}): {len(insns)} insns, no conditional branches")

    if failures:
        print(f"check_nobranch: {failures} failure(s) at {args.opt}")
        return 1
    print(f"check_nobranch: all {scanned} symbols branch-free at {args.opt}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
