#!/usr/bin/env python3
"""check_nobranch: assert that compiled oblivious primitives contain no conditional
branches.

Source-level constant-time discipline (masks instead of branches) survives the
compiler only if nothing in the toolchain re-introduces a jump. This check compiles
tests/ct_nobranch_fixture.cc at a requested optimization level, disassembles the
object with objdump, and scans every nb_* symbol for conditional-branch mnemonics.
Loop back-edges count too -- the fixture uses small fixed sizes precisely so that
every loop fully unrolls; a surviving loop means the "fully unrolled, branch-free"
claim no longer holds and the fixture (or primitive) needs attention.

Usage:
  check_nobranch.py --compiler g++ --repo-root . --opt -O2 [--objdump objdump]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys
import tempfile

# Expected symbols are declared in the fixture itself via `// nb-symbol: <name>`
# markers (`nb-symbol[x86]: <name>` for symbols only compiled on x86-64), so adding
# a wrapper and registering it for scanning is one edit in one file.
MARKER_RE = re.compile(r"//\s*nb-symbol(\[x86\])?:\s*(\w+)")

# x86-64 conditional control transfer: all j* except jmp, plus the loop family.
X86_COND = re.compile(r"^\s*(j(?!mp)[a-z]+|loopn?e?|jr?cxz)\b")
# aarch64: conditional branches and compare/test-and-branch.
A64_COND = re.compile(r"^\s*(b\.[a-z]+|cbn?z|tbn?z)\b")

SYMBOL_RE = re.compile(r"^[0-9a-f]+\s+<(\w+)>:")
# objdump -d instruction line: address, raw bytes, then the mnemonic column.
INSN_RE = re.compile(r"^\s*[0-9a-f]+:\s*(?:[0-9a-f]{2}\s)+\s*(.*)$")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--compiler", required=True)
    ap.add_argument("--repo-root", required=True, type=pathlib.Path)
    ap.add_argument("--opt", default="-O2")
    ap.add_argument("--objdump", default="objdump")
    args = ap.parse_args()
    root = args.repo_root.resolve()
    fixture = root / "tests" / "ct_nobranch_fixture.cc"

    expected: list[tuple[str, bool]] = []  # (symbol, x86_only)
    for m in MARKER_RE.finditer(fixture.read_text()):
        expected.append((m.group(2), m.group(1) is not None))
    if not expected:
        print(f"no nb-symbol markers found in {fixture}")
        return 1

    with tempfile.TemporaryDirectory() as tmp:
        obj = pathlib.Path(tmp) / "fixture.o"
        compile_cmd = [
            args.compiler, "-std=c++20", *args.opt.split(), "-c", str(fixture),
            "-I", str(root), "-o", str(obj),
        ]
        r = subprocess.run(compile_cmd, capture_output=True, text=True)
        if r.returncode != 0:
            print(f"compile failed: {' '.join(compile_cmd)}\n{r.stderr}")
            return 1
        r = subprocess.run([args.objdump, "-d", "--no-show-raw-insn", str(obj)],
                           capture_output=True, text=True)
        if r.returncode != 0:
            print(f"objdump failed:\n{r.stderr}")
            return 1
        disasm = r.stdout

    # Partition the disassembly by symbol.
    per_symbol: dict[str, list[str]] = {}
    current = None
    for line in disasm.splitlines():
        m = SYMBOL_RE.match(line)
        if m:
            current = m.group(1)
            per_symbol[current] = []
        elif current is not None and line.strip():
            per_symbol[current].append(line)

    is_x86 = re.search(r"file format\s+\S*x86-64", disasm) is not None

    failures = 0
    scanned = 0
    for sym, x86_only in expected:
        if x86_only and not is_x86:
            print(f"skip {sym}: x86-only symbol, object is not x86-64")
            continue
        scanned += 1
        if sym not in per_symbol:
            print(f"FAIL {sym}: symbol not found in disassembly")
            failures += 1
            continue
        hits = []
        for line in per_symbol[sym]:
            # With --no-show-raw-insn the mnemonic follows "addr:\t".
            text = line.split(":", 1)[1] if ":" in line else line
            if X86_COND.match(text.strip()) or A64_COND.match(text.strip()):
                hits.append(line.strip())
        if hits:
            print(f"FAIL {sym} ({args.opt}): conditional branch(es) in compiled code:")
            for h in hits:
                print(f"    {h}")
            failures += 1
        else:
            print(f"ok {sym} ({args.opt}): {len(per_symbol[sym])} insns, no conditional branches")

    if failures:
        print(f"check_nobranch: {failures} failure(s) at {args.opt}")
        return 1
    print(f"check_nobranch: all {scanned} symbols branch-free at {args.opt}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
