#!/usr/bin/env bash
# One-command local CI: tier-1 tests + constant-time lint + sanitizer pass.
#
#   tools/ci.sh            # everything
#   tools/ci.sh --fast     # skip the sanitizer builds (lint + default-build tests)
#
# Builds out-of-tree under build/ (default config), build-asan/ (ASan+UBSan), and
# build-tsan/ (TSan, threading-sensitive tests only), so a developer's existing build
# directory is reused, not clobbered.

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== constant-time lint (self-test corpus + real tree) =="
python3 tools/ct_lint.py --repo-root . --self-test

echo "== oblivious region structure (BEGIN/END pairing + manifest coverage) =="
python3 tools/check_oblivious_structure.py --repo-root .

echo "== binary taint dataflow (planted corpus, then real kernels at -O2/-O3) =="
# The source lint cannot see what the optimizer emits; ct_dataflow audits the
# compiled objects. Self-test first (every planted B01-B04/M01 must fire), then
# the real audit unit at both opt levels, for every SIMD backend and again with
# dispatch pinned to the generic backend -- a finding or a manifest symbol
# missing from the object (M01) fails the stage.
python3 tools/ct_dataflow.py --repo-root . --self-test
python3 tools/ct_dataflow.py --repo-root . --opt=-O2
python3 tools/ct_dataflow.py --repo-root . --opt=-O3
SNOOPY_FORCE_GENERIC_KERNELS=1 python3 tools/ct_dataflow.py --repo-root . --opt=-O2
SNOOPY_FORCE_GENERIC_KERNELS=1 python3 tools/ct_dataflow.py --repo-root . --opt=-O3

echo "== bucket-sort audit coverage (decomposed roots present at both opt levels) =="
# The bucket strategy's boundary symbols (TryBucketSortSlab etc.) are allowlisted,
# so their secret-handling kernels are only audited through the decomposed
# ctdf_bucket_* roots -- if those roots silently fell out of the fixture, the
# -O2/-O3 stages above would still pass while auditing nothing of the bucket sort.
for root in ctdf_bucket_route ctdf_bucket_cleanup ctdf_bitonic_tile_sort; do
  grep -q "ctdf-symbol: ${root} " tests/ct_dataflow_fixture.cc || {
    echo "ci.sh: bucket-sort audit root ${root} missing from tests/ct_dataflow_fixture.cc"
    exit 1
  }
done
echo "bucket-sort audit roots present: ctdf_bucket_route ctdf_bucket_cleanup ctdf_bitonic_tile_sort"

echo "== default build + full test suite =="
cmake -S . -B build >/dev/null
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure

echo "== forced-bucket sort strategy (full suite) =="
# SNOOPY_SORT_STRATEGY=bucket overrides every deployment's configured strategy at
# the ResolveSortStrategy gate, so the whole suite reruns with the bucket sort on
# every eligible hot path (ineligible sites -- too small, bins not simulatable --
# still fall back to bitonic, which is itself pinned by the override tests).
# Responses and traces must be byte-identical to the default run's expectations:
# any strategy-dependent behavior is a bug this stage exists to catch.
SNOOPY_SORT_STRATEGY=bucket ctest --test-dir build --output-on-failure

echo "== forced-generic kernel backend (dispatch-sensitive suites) =="
# The SIMD kernel layer (src/obl/kernels.h) picks a backend at runtime; rerun the
# suites whose hot paths route through it with dispatch pinned to the portable
# scalar backend, so a kernel bug cannot hide behind whichever backend CI's CPU
# happens to select.
SNOOPY_FORCE_GENERIC_KERNELS=1 ctest --test-dir build --output-on-failure \
  -R '(Primitives|Kernel|BitonicSort|Compaction|BinPlacement|HashTable|SubOram|Crypto)'

echo "== lint target (clang-tidy when installed) =="
cmake --build build --target lint

echo "== metrics smoke (one epoch; JSON export must parse with required series) =="
build/examples/metrics_smoke > build/metrics_smoke.json
python3 - build/metrics_smoke.json <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
names = {m["name"] for m in doc["metrics"]}
required = {
    "snoopy_epochs_total", "snoopy_requests_total", "snoopy_epoch_seconds",
    "snoopy_epoch_phase_seconds", "snoopy_batch_size",
    "snoopy_net_messages", "snoopy_net_bytes_sent", "snoopy_net_pair_messages",
}
missing = sorted(required - names)
if missing:
    sys.exit(f"metrics smoke: missing required series: {missing}")
phases = {m["labels"].get("phase") for m in doc["metrics"]
          if m["name"] == "snoopy_epoch_phase_seconds"}
expected_phases = {"lb_prepare", "suboram_execute", "response_match"}
if not expected_phases <= phases:
    sys.exit(f"metrics smoke: missing phase spans: {sorted(expected_phases - phases)}")
epochs = next(m for m in doc["metrics"] if m["name"] == "snoopy_epochs_total")
if epochs["value"] != 1:
    sys.exit(f"metrics smoke: expected 1 epoch, got {epochs['value']}")
print(f"metrics smoke ok: {len(doc['metrics'])} series, all required present")
PYEOF

echo "== tracing stage: Perfetto export, overhead gate, critical-path report =="
# trace_report's analysis pipeline first proves itself on the golden fixture, then
# a traced headline-bench run must (a) export Chrome-trace JSON that parses, (b)
# stay under the 1% tracing-overhead budget measured by the bench itself, and (c)
# yield a critical-path report with per-phase efficiency and a serial fraction.
python3 tools/trace_report.py --self-check
TRACE_DIR="build/tracing-ci"
mkdir -p "${TRACE_DIR}"
(cd "${TRACE_DIR}" && SNOOPY_TRACE=1 SNOOPY_TRACE_OUT=trace.json \
  ../../build/bench/headline_comparison --metrics-out=metrics.json > headline.log)
python3 - "${TRACE_DIR}" <<'PYEOF'
import json, pathlib, sys
d = pathlib.Path(sys.argv[1])
trace = json.load(open(d / "trace.json"))  # must parse (Perfetto/chrome://tracing)
events = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
if not events:
    sys.exit("tracing stage: trace.json has no complete events")
cats = {e.get("cat") for e in events}
for want in ("epoch", "phase", "task", "pool"):
    if want not in cats:
        sys.exit(f"tracing stage: trace.json lacks '{want}' spans (got {sorted(cats)})")
json.load(open(d / "metrics.json"))  # --metrics-out snapshot must parse too
bench = json.load(open(d / "BENCH_headline_comparison.json"))
overhead = [p for p in bench["points"] if p["series"] == "tracing_overhead"]
if not overhead:
    sys.exit("tracing stage: no tracing_overhead point in bench JSON")
frac = overhead[0]["overhead_fraction"]
if frac >= 0.01:
    sys.exit(f"tracing stage: tracing overhead {frac:.4f} breaches the <1% gate")
print(f"tracing stage ok: {len(events)} spans, overhead {frac*100:.2f}%")
PYEOF
python3 tools/trace_report.py "${TRACE_DIR}/trace.json" \
  --json "${TRACE_DIR}/trace_report.json"
python3 - "${TRACE_DIR}/trace_report.json" <<'PYEOF'
import json, sys
rep = json.load(open(sys.argv[1]))
if rep["epochs"] < 1 or not rep["phases"]:
    sys.exit("tracing stage: trace_report found no epochs/phases")
if not (0.0 <= rep["serial_fraction"] <= 1.0):
    sys.exit(f"tracing stage: serial_fraction {rep['serial_fraction']} out of range")
if not any(p["parallel_efficiency"] is not None for p in rep["phases"].values()):
    sys.exit("tracing stage: no phase has a parallel-efficiency estimate")
print(f"trace_report ok: {rep['epochs']} epochs, "
      f"serial fraction {rep['serial_fraction']:.3f}")
PYEOF

echo "== bench JSON schema (emitter contract + required series) =="
python3 tools/check_bench_schema.py "${TRACE_DIR}" .

echo "== perf smoke: epoch-parallelism floor (enforced on multi-core hosts) =="
# Reuses the headline-bench JSON the tracing stage just produced. The 1.5x floor
# is deliberately conservative (the tentpole target is ~3x at 4 threads on 4
# cores) so shared, noisy CI hardware does not flake the gate; on hosts with
# fewer than 4 hardware threads the 4-thread run can only measure coordination
# overhead, so the floor is reported but not enforced there.
python3 - "${TRACE_DIR}/BENCH_headline_comparison.json" <<'PYEOF'
import json, sys
bench = json.load(open(sys.argv[1]))
pts = [p for p in bench["points"] if p["series"] == "epoch_parallelism"]
for p in pts:
    print(f"perf smoke: epoch_parallelism epoch_threads={p.get('epoch_threads')} "
          f"suboram_execute_s={p.get('suboram_execute_s'):.4f}")
par = next((p for p in pts if p.get("epoch_threads") == 4), None)
if par is None:
    sys.exit("perf smoke: no 4-thread epoch_parallelism point in bench JSON")
speedup = par.get("speedup_vs_1_thread")
if not isinstance(speedup, (int, float)):
    sys.exit("perf smoke: 4-thread point lacks speedup_vs_1_thread")
hw = int(par.get("hardware_threads", 1))
print(f"perf smoke: 4-thread suboram_execute speedup {speedup:.2f}x "
      f"on {hw} hardware thread(s)")
if hw >= 4:
    if speedup < 1.5:
        sys.exit(f"perf smoke: speedup {speedup:.2f}x is below the 1.5x floor "
                 f"on a {hw}-thread host")
    print("perf smoke ok: floor enforced and met")
else:
    print("perf smoke: <4 hardware threads; floor reported, not enforced "
          "(traces and responses are thread-count-invariant regardless)")
PYEOF

if [[ "${FAST}" == "1" ]]; then
  echo "== --fast: skipping sanitizer builds =="
  exit 0
fi

echo "== ASan/UBSan build + full test suite =="
cmake -S . -B build-asan -DSNOOPY_SANITIZE=ON >/dev/null
cmake --build build-asan -j"${JOBS}"
ctest --test-dir build-asan --output-on-failure

echo "== TSan build + threading-sensitive tests =="
# The race-prone surfaces: parallel bitonic sort (the fig13a trace-race fix),
# the bucket sort's fork-joined routing/cleanup, parallel subORAM scan, and the
# parallel epoch executor.
cmake -S . -B build-tsan -DSNOOPY_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"${JOBS}" --target \
  bitonic_sort_test bucket_sort_test suboram_test epoch_parallel_test tracing_test \
  scaling_regression_test
ctest --test-dir build-tsan --output-on-failure \
  -R '(BitonicSort|AdaptiveSortThreads|BucketSort|SubOram|EpochParallel|Tracing|ProfilingSampler|TracerThreadBuffer|WorkPool|ScalingRegression)'

echo "== TSan chaos stage: fault recovery, permanent loss, repair, reshard =="
# Crash/loss recovery exercises the cross-thread paths deliberately (phase-2 workers
# marking losses, concurrent subORAM recoveries, the health mutex); run the whole
# fault-recovery and repair/reshard suites under TSan so a recovery-path race cannot
# hide behind the happy path.
cmake --build build-tsan -j"${JOBS}" --target fault_recovery_test repair_reshard_test
ctest --test-dir build-tsan --output-on-failure \
  -R '(FaultInjector|FaultRecovery|NetworkFaults|RetryCap|Striping|Repair|Reshard|NodeLoss)'

echo "ci.sh: all checks passed"
