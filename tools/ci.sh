#!/usr/bin/env bash
# One-command local CI: tier-1 tests + constant-time lint + sanitizer pass.
#
#   tools/ci.sh            # everything
#   tools/ci.sh --fast     # skip the ASan/UBSan build (lint + default-build tests)
#
# Builds out-of-tree under build/ (default config) and build-asan/ (sanitizers), so a
# developer's existing build directory is reused, not clobbered.

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== constant-time lint (self-test corpus + real tree) =="
python3 tools/ct_lint.py --repo-root . --self-test

echo "== default build + full test suite =="
cmake -S . -B build >/dev/null
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure

echo "== lint target (clang-tidy when installed) =="
cmake --build build --target lint

if [[ "${FAST}" == "1" ]]; then
  echo "== --fast: skipping sanitizer build =="
  exit 0
fi

echo "== ASan/UBSan build + full test suite =="
cmake -S . -B build-asan -DSNOOPY_SANITIZE=ON >/dev/null
cmake --build build-asan -j"${JOBS}"
ctest --test-dir build-asan --output-on-failure

echo "ci.sh: all checks passed"
