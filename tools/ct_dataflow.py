#!/usr/bin/env python3
"""ct_dataflow: binary-level secret-taint dataflow verifier for the oblivious kernels.

Snoopy's security argument (paper Appendix B) requires the *compiled* oblivious code
to be branch- and index-free on secrets. The source linter (ct_lint.py) cannot see
what the optimizer does, and the no-branch smoke test (check_nobranch.py) only audits
tiny hand-unrolled wrappers. This tool closes the gap: it compiles the audit TU
(tests/ct_dataflow_fixture.cc, which #includes the real implementation TUs so the
audited machine code is the optimizer's output for the actual tree), disassembles the
object with objdump, reconstructs a per-symbol CFG, and runs a forward taint dataflow
from the annotated secret arguments of each `// ctdf-symbol:` root.

Taint model
  * Registers hold abstract values: a taint bit plus, for pointers, the memory
    region they address. Secret *pointers* do not exist in the discipline -- a
    `ptr:` seed means "public pointer to secret bytes".
  * Memory is a table of regions (per secret/public argument, per allocation call
    site, per stack frame, the globals). Loads from a secret region yield tainted
    scalars; stores of tainted values taint the region. The analyzed function's own
    stack frame is tracked flow-sensitively slot-by-slot so spills/reloads keep
    their taint (and nothing else).
  * Flags carry the taint of the last flag-writing instruction. Vector registers
    (xmm/ymm/zmm) and AVX-512 k-mask registers carry taint bits; the value barriers
    (ValueBarrier / KernelVecBarrier) are empty asm and therefore invisible at this
    level -- masks stay tainted through them. Barriers and mask algebra are *taint
    algebra*, never taint kills: `cmov`/`set`/mask blends on tainted flags produce
    tainted results but are not violations, because their timing and address trace
    are data-independent.
  * Same-object calls are followed (context-keyed summaries, recursion cut at the
    in-progress set); external calls are classified by the manifest allowlists.

Rules
  B01 secret-branch    conditional branch (jcc/loop/jrcxz, or indirect jump) whose
                       flags/target derive from tainted data
  B02 secret-address   memory operand whose base or index register is tainted, a
                       gather/scatter with a tainted index, or an AVX-512 masked
                       load/store under a tainted k-mask (the touched byte set
                       would depend on a secret)
  B03 variable-latency div/idiv/sqrt family with a tainted input (x86 divide and
                       square-root latency depends on operand magnitude)
  B04 tainted-escape   tainted value (or pointer to secret bytes, for unknown
                       callees) passed to a call outside the manifest allowlists,
                       or an indirect call through a tainted pointer
  M01 manifest         a `ctdf-symbol:` marker names a symbol missing from the
                       object (the audit would silently cover nothing)

Exit status: 0 when every audited symbol is clean, 1 otherwise. `--self-test` runs
the planted-violation corpus (tools/ct_dataflow_selftest/): every planted B01-B04
must fire and the clean file must pass. `--format=json` emits machine-readable
findings for CI annotation.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field

import ct_disasm

# ------------------------------------------------------------------ registers

GPR_CANON = {}
for _canon, _forms in {
    "rax": ("rax", "eax", "ax", "al", "ah"),
    "rbx": ("rbx", "ebx", "bx", "bl", "bh"),
    "rcx": ("rcx", "ecx", "cx", "cl", "ch"),
    "rdx": ("rdx", "edx", "dx", "dl", "dh"),
    "rsi": ("rsi", "esi", "si", "sil"),
    "rdi": ("rdi", "edi", "di", "dil"),
    "rbp": ("rbp", "ebp", "bp", "bpl"),
    "rsp": ("rsp", "esp", "sp", "spl"),
    "r8": ("r8", "r8d", "r8w", "r8b"),
    "r9": ("r9", "r9d", "r9w", "r9b"),
    "r10": ("r10", "r10d", "r10w", "r10b"),
    "r11": ("r11", "r11d", "r11w", "r11b"),
    "r12": ("r12", "r12d", "r12w", "r12b"),
    "r13": ("r13", "r13d", "r13w", "r13b"),
    "r14": ("r14", "r14d", "r14w", "r14b"),
    "r15": ("r15", "r15d", "r15w", "r15b"),
    "rip": ("rip",),
}.items():
    for _f in _forms:
        GPR_CANON[_f] = _canon

VEC_RE = re.compile(r"^(?:xmm|ymm|zmm)(\d+)$")
KMASK_RE = re.compile(r"^k([0-7])$")

ARG_REGS = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")
CALLER_SAVED = ("rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11")

# ------------------------------------------------------------------ abstract values

@dataclass(frozen=True)
class Val:
    """Abstract value: taint bit + optional pointed-to region (+ const offset).
    `region` is a region name, a frozenset of names (the value may point into any
    of them -- produced by joins and pointer arithmetic), or None (no idea)."""
    taint: bool = False
    region: object = None  # str | frozenset[str] | None
    off: int | None = None

    def with_off(self, off):
        return Val(self.taint, self.region, off)


PUBLIC = Val()
SECRET = Val(taint=True)
# Pointer values statically known to be zero get the join-transparent "null"
# region: compilers build first-iteration states where a growth cursor is still
# nullptr, and paths that would dereference it crash at runtime rather than leak.
# Stores through null are dropped; loads from it are public; a join of null with
# a real region keeps the real region.
NULL_REGION = "null"
NULL_PTR = Val(False, NULL_REGION, 0)

# A pointer set larger than this degrades to None (unknown) -- keeps joins and
# weak updates bounded on pathological CFGs.
MAX_REGION_SET = 6


def region_set(r) -> frozenset:
    """The concrete regions a value may point into (empty for scalar/unknown/null)."""
    if r is None or r == NULL_REGION:
        return frozenset()
    if isinstance(r, frozenset):
        return r
    return frozenset((r,))


def make_region(rs):
    rs = frozenset(rs) - {NULL_REGION}
    if not rs:
        return None
    if len(rs) == 1:
        return next(iter(rs))
    if len(rs) > MAX_REGION_SET:
        return None
    return rs


def region_has(r, name) -> bool:
    return r == name or name in region_set(r)


def join_val(a: Val, b: Val) -> Val:
    if a == b:
        return a
    # A region survives the join when the other side has none (or is the known-null
    # region): a "null or points into R" pointer still points into R whenever it is
    # dereferenced. Two different real regions union into a set -- a vector's grow
    # loop legitimately carries cursors into different allocations, and collapsing
    # them to "unknown" would route stores into the wild blob. (B02 keys on taint,
    # not region, so this only improves value precision.)
    if a.region == b.region:
        region = a.region
    elif a.region is None or a.region == NULL_REGION:
        region = b.region
    elif b.region is None or b.region == NULL_REGION:
        region = a.region
    else:
        region = make_region(region_set(a.region) | region_set(b.region))
    off = a.off if (region is not None and a.off == b.off) else None
    return Val(a.taint or b.taint, region, off)


@dataclass
class Region:
    secret_data: bool = False  # seeded: every load from here is secret
    summary_taint: bool = False  # some store of a tainted value landed here
    fields: dict = field(default_factory=dict)  # const offset -> Val

    def load(self, off: int | None) -> Val:
        if self.secret_data:
            return SECRET
        if off is not None and off in self.fields:
            v = self.fields[off]
            return Val(v.taint or self.summary_taint, v.region, v.off)
        return Val(taint=self.summary_taint)

    def store(self, off: int | None, v: Val):
        if off is None:
            if v.taint:
                self.summary_taint = True
            return
        old = self.fields.get(off)
        if old is None:
            self.fields[off] = v
        else:
            # Monotone within a fixpoint: taint only rises, pointer info degrades.
            self.fields[off] = join_val(old, v) if old != v else old
            if v.taint or old.taint:
                self.fields[off] = Val(True, self.fields[off].region, self.fields[off].off)


@dataclass
class State:
    regs: dict = field(default_factory=dict)  # canon gpr -> Val
    vec: dict = field(default_factory=dict)  # v0..v31 -> bool
    kmask: dict = field(default_factory=dict)  # k0..k7 -> bool
    flags: bool = False
    stack: dict = field(default_factory=dict)  # frame offset -> Val
    sp_off: int | None = 0  # rsp = frame_base + sp_off (None = lost track)
    stack_unknown_taint: bool = False  # stores at untracked stack offsets
    vecz: set = field(default_factory=set)  # v<n> known all-zero (pxor idiom)

    def copy(self) -> "State":
        s = State(dict(self.regs), dict(self.vec), dict(self.kmask), self.flags,
                  dict(self.stack), self.sp_off, self.stack_unknown_taint,
                  set(self.vecz))
        return s

    def key(self):
        return (tuple(sorted(self.regs.items(), key=lambda kv: kv[0])),
                tuple(sorted(self.vec.items())), tuple(sorted(self.kmask.items())),
                self.flags, tuple(sorted(self.stack.items())), self.sp_off,
                self.stack_unknown_taint, tuple(sorted(self.vecz)))


def join_state(a: State, b: State) -> State:
    out = State()
    for r in set(a.regs) | set(b.regs):
        out.regs[r] = join_val(a.regs.get(r, PUBLIC), b.regs.get(r, PUBLIC))
    for r in set(a.vec) | set(b.vec):
        out.vec[r] = a.vec.get(r, False) or b.vec.get(r, False)
    for r in set(a.kmask) | set(b.kmask):
        out.kmask[r] = a.kmask.get(r, False) or b.kmask.get(r, False)
    out.flags = a.flags or b.flags
    for off in set(a.stack) | set(b.stack):
        out.stack[off] = join_val(a.stack.get(off, PUBLIC), b.stack.get(off, PUBLIC))
    out.sp_off = a.sp_off if a.sp_off == b.sp_off else None
    out.stack_unknown_taint = a.stack_unknown_taint or b.stack_unknown_taint
    out.vecz = a.vecz & b.vecz
    return out


def state_leq(a: State, b: State) -> bool:
    """True if a adds nothing over b (join(a, b) == b)."""
    return join_state(a, b).key() == b.key()


# ------------------------------------------------------------------ operand parsing

MEM_RE = re.compile(
    r"^(?P<seg>%[a-z]s:)?(?P<disp>-?0x[0-9a-f]+|-?\d+)?"
    r"\((?P<base>%[a-z0-9]+)?(?:,(?P<index>%[a-z0-9]+))?(?:,(?P<scale>[1248]))?\)"
    r"(?P<mask>\{%k[0-7]\})?(?:\{z\})?$")
REG_RE = re.compile(r"^(?P<reg>%[a-z0-9]+)(?P<mask>\{%k[0-7]\})?(?:\{z\})?$")
IMM_RE = re.compile(r"^\$")


@dataclass
class Mem:
    base: str | None
    index: str | None
    scale: int
    disp: int
    kmask: str | None


def parse_operand(op: str):
    """-> ('imm', None) | ('reg', name, kmask) | ('mem', Mem) | ('target', text) | ('other', op)"""
    op = op.strip()
    if not op:
        return ("other", op)
    if IMM_RE.match(op):
        try:
            return ("imm", int(op[1:], 0))
        except ValueError:
            return ("imm", None)
    if op.startswith("*"):
        inner = parse_operand(op[1:])
        return ("ind",) + inner[1:] if inner[0] in ("reg", "mem") else ("other", op)
    m = REG_RE.match(op)
    if m:
        km = m.group("mask")
        return ("reg", m.group("reg")[1:], km[2:-1] if km else None)
    m = MEM_RE.match(op)
    if m:
        disp = int(m.group("disp"), 0) if m.group("disp") else 0
        km = m.group("mask")
        return ("mem", Mem(
            m.group("base")[1:] if m.group("base") else None,
            m.group("index")[1:] if m.group("index") else None,
            int(m.group("scale") or 1), disp, km[2:-1] if km else None))
    if ct_disasm.TARGET_RE.match(op):
        return ("target", op)
    return ("other", op)


# ------------------------------------------------------------------ mnemonic classes

COND_JUMPS = ct_disasm.X86_COND_RE
# Allocation entry points: return a fresh public region (operator new, malloc...).
ALLOC_RE = re.compile(r"^(_Zn[wa]m|malloc$|calloc$|realloc$|aligned_alloc$)")
# Variable-latency families (B03). Multiplies are constant-time on every x86-64 this
# project targets; divides and square roots are not.
VARLAT_RE = re.compile(r"^(v?(?:div|sqrt|rsqrt14|rcp14)[a-z0-9]*|f?i?div[a-z]*|fsqrt)$")
GATHER_SCATTER_RE = re.compile(r"^v?p?(?:gather|scatter)")
SETCC_RE = re.compile(r"^set[a-z]+$")
CMOV_RE = re.compile(r"^cmov[a-z]+$")
# Vector moves (mem<->vec or vec<->vec). movq/movd are ambiguous with GPR moves and
# resolved by operand inspection.
VEC_MNEM_RE = re.compile(r"^(v|p(?!ush|op)|mov(a|u|dq|nt|s[sdh]|hp|lp)|"
                         r"uc?omis|andp|andnp|orp|xorp|shufp|unpck|insertp|extractp|"
                         r"cvt|blend|kmov|kand|kor|kxor|knot|ktest|broadcast|lddqu)")
# Full-width vector moves: the source value (including known-zero-ness) passes
# through unchanged and a memory operand covers the whole register, not one
# 8-byte granule. GCC zeroes pointer triples in aggregates with pxor + movups,
# so a 16-byte store must land null in BOTH granules or later pointer reloads
# see stale values.
VEC_FULL_MOVE_RE = re.compile(
    r"^v?(mov(aps|apd|ups|upd|dqa(32|64)?|dqu(8|16|32|64)?|ntdqa?|ntps|ntpd)|lddqu)$")


def vec_access_width(ops) -> int:
    for p in ops:
        if p[0] == "reg" and VEC_RE.match(p[1]):
            return {"x": 16, "y": 32, "z": 64}.get(p[1][0], 16)
    return 8
# GPR moves incl. zero/sign extension.
GPR_MOV_RE = re.compile(r"^(mov(abs)?[qlwb]?|movz[bw][lwq]|movs[bwl][lwq]|movslq)$")
# Flag-writing GPR arithmetic whose result taint = OR of operand taints.
ARITH_RE = re.compile(r"^(add|sub|adc|sbb|and|or|xor|neg|not|inc|dec|imul|mul|"
                      r"sh[lr]|sa[lr]|ro[lr]|rc[lr]|bt[srcalifc]*|bs[rf]|popcnt|"
                      r"tzcnt|lzcnt|shld|shrd|xadd|andn)[qlwbd]?$")
CMP_RE = re.compile(r"^(cmp|test)[qlwb]?$")
# Callees that never return: analysis must not fall through past a call to them.
NORETURN_RE = re.compile(
    r"^(abort|exit|_exit|__assert_fail|__stack_chk_fail|__cxa_throw|"
    r"__cxa_rethrow|__cxa_bad_cast|__cxa_bad_typeid|_Unwind_Resume|"
    r"_ZSt9terminatev|_ZSt[0-9]+__throw_.*)$")

_ARITH_BASES = frozenset({
    "add", "sub", "adc", "sbb", "and", "or", "xor", "neg", "not", "inc", "dec",
    "imul", "mul", "shl", "shr", "sal", "sar", "rol", "ror", "rcl", "rcr",
    "bt", "bts", "btr", "btc", "bsr", "bsf", "popcnt", "tzcnt", "lzcnt",
    "shld", "shrd", "xadd", "andn",
})


def arith_base(mn: str) -> str:
    """Strip at most one size-suffix letter, only when that yields a real opcode
    (plain rstrip would eat opcode letters: sub -> su, sbb -> s)."""
    if mn in _ARITH_BASES:
        return mn
    if mn[-1] in "qlwbd" and mn[:-1] in _ARITH_BASES:
        return mn[:-1]
    return mn
NOP_RE = re.compile(r"^(nop[a-z]*|endbr64|endbr32|ud2|pause|lfence|mfence|sfence|"
                    r"cld|std|leave|ret[qf]?|hlt|int3)$")
SIGN_EXTEND = {"cqo", "cqto", "cdq", "cltd", "cdqe", "cltq", "cbtw", "cwtl", "cwde", "cbw"}
STRING_OP_RE = re.compile(r"^(movs|stos|lods|scas|cmps)[bwlq]$")


# ------------------------------------------------------------------ findings

@dataclass(frozen=True)
class Finding:
    rule: str
    symbol: str  # audit root
    site: str  # symbol the instruction lives in (after call-following)
    address: int
    mnemonic: str
    detail: str

    def text(self) -> str:
        where = self.site if self.site == self.symbol else f"{self.symbol} -> {self.site}"
        return (f"{self.rule} {where}+0x{self.address:x}: {self.mnemonic}: {self.detail}")

    def record(self) -> dict:
        return {"rule": self.rule, "symbol": self.symbol, "site": self.site,
                "address": f"0x{self.address:x}", "mnemonic": self.mnemonic,
                "detail": self.detail}


# ------------------------------------------------------------------ marker parsing

MARKER_RE = re.compile(
    r"//\s*ctdf-symbol:\s*(?P<name>\w+)"
    r"(?:\s+secret=(?P<secret>[a-z0-9:,]+))?"
    r"(?:\s+backend=(?P<backend>\w+))?"
    r"(?:\s+expect=(?P<expect>[A-Z0-9,]+|clean))?")


@dataclass
class AuditSymbol:
    name: str
    seeds: list  # (kind, reg) with kind in {val, ptr}
    backend: str = "generic"
    expect: set = field(default_factory=set)  # self-test corpus only


def parse_markers(text: str) -> list:
    out = []
    for m in MARKER_RE.finditer(text):
        seeds = []
        for part in (m.group("secret") or "").split(","):
            part = part.strip()
            if not part:
                continue
            kind, _, reg = part.partition(":")
            if kind not in ("val", "ptr") or reg not in ARG_REGS:
                raise SystemExit(f"bad ctdf-symbol seed '{part}' for {m.group('name')}")
            seeds.append((kind, reg))
        expect = set()
        if m.group("expect") and m.group("expect") != "clean":
            expect = set(m.group("expect").split(","))
        out.append(AuditSymbol(m.group("name"), seeds,
                               m.group("backend") or "generic", expect))
    return out


# ------------------------------------------------------------------ the analyzer

MAX_CALL_DEPTH = 24


class Analyzer:
    def __init__(self, dis: ct_disasm.Disassembly, manifest: dict, verbose=False):
        self.dis = dis
        self.verbose = verbose
        self.regions: dict[str, Region] = {"globals": Region(), "wild": Region()}
        self.findings: list[Finding] = []
        self._finding_keys = set()
        self.summaries = {}  # (symbol, sig) -> ret taint (bool)
        self.in_progress = set()
        self.allow_secret = set(manifest.get("call_allow_secret", ()))
        self.allow_public = set(manifest.get("call_allow_public", ()))
        self.allow_public_pat = [re.compile(p)
                                 for p in manifest.get("call_allow_public_patterns", ())]
        self.notes = []
        self.root = ""
        self._frame_counter = 0

    # -------------------------------------------------------------- helpers

    def note(self, msg):
        if self.verbose:
            self.notes.append(msg)

    def flag(self, rule, site, insn, detail):
        key = (rule, site, insn.address)
        if key in self._finding_keys:
            return
        self._finding_keys.add(key)
        self.findings.append(Finding(rule, self.root, site, insn.address,
                                     insn.raw.split("\t")[-1].strip() or insn.mnemonic,
                                     detail))

    def region(self, name) -> Region:
        if name not in self.regions:
            self.regions[name] = Region()
        return self.regions[name]

    def is_public_allowed(self, callee: str) -> bool:
        if callee in self.allow_public:
            return True
        return any(p.search(callee) for p in self.allow_public_pat)

    # -------------------------------------------------------------- memory access

    def resolve_addr(self, mem: Mem, st: State, frame: str, insn=None):
        """-> ('stack', off|None) | ('region', name, off|None) | ('wild', None)
        plus the taint of the address computation (base/index registers)."""
        addr_taint = False
        base_v = PUBLIC
        if mem.base == "rip":
            # One region per global symbol (named by the relocation), so taint in
            # one static cannot bleed into unrelated ones.
            if insn is not None and insn.reloc:
                return ("region", f"global:{insn.reloc}", 0), False
            return ("region", "globals", None), False
        if mem.base:
            base_v = st.regs.get(GPR_CANON.get(mem.base, mem.base), PUBLIC)
            addr_taint |= base_v.taint
        if mem.index:
            iv = st.regs.get(GPR_CANON.get(mem.index, mem.index), PUBLIC)
            addr_taint |= iv.taint
        if mem.base and GPR_CANON.get(mem.base) == "rsp":
            off = (st.sp_off + mem.disp) if (st.sp_off is not None and not mem.index) else None
            return ("stack", off), addr_taint
        if base_v.region == frame:
            off = (base_v.off + mem.disp) if (base_v.off is not None and not mem.index) else None
            return ("stack", off), addr_taint
        rs = region_set(base_v.region)
        if len(rs) > 1:
            off = None
            if base_v.off is not None and not mem.index:
                off = base_v.off + mem.disp
            return ("multi", rs, off), addr_taint
        if base_v.region is not None:
            off = None
            if base_v.off is not None and not mem.index:
                off = base_v.off + mem.disp
            return ("region", base_v.region, off), addr_taint
        if mem.base is None and mem.index is None:
            return ("region", "globals", None), addr_taint
        return ("wild", None), addr_taint

    def mem_load(self, where, st: State, frame=None) -> Val:
        kind = where[0]
        if kind == "stack":
            off = where[1]
            if off is not None:
                if off in st.stack:
                    v = st.stack[off]
                    return Val(v.taint, v.region, v.off)
                # Slot the caller never wrote: a followed callee may have (frame
                # escaped through a pointer argument) -- consult the mirror region.
                if frame in self.regions:
                    return self.regions[frame].load(off)
                return PUBLIC
            return Val(taint=st.stack_unknown_taint)
        if kind == "region":
            if where[1] == NULL_REGION:
                return PUBLIC  # a genuine null deref crashes; it does not leak
            return self.region(where[1]).load(where[2])
        if kind == "multi":
            out = None
            for rn in where[1]:
                lv = self.region(rn).load(where[2])
                out = lv if out is None else join_val(out, lv)
            return out if out is not None else PUBLIC
        return Val(taint=self.region("wild").summary_taint)

    def mem_store(self, where, st: State, v: Val, frame=None):
        kind = where[0]
        if kind == "stack":
            off = where[1]
            if off is not None:
                st.stack[off] = v
                if frame in self.regions:  # escaped frame: keep the mirror fresh
                    self.regions[frame].store(off, v)
            elif v.taint:
                st.stack_unknown_taint = True
            return
        if kind == "region":
            if where[1] != NULL_REGION:
                self.region(where[1]).store(where[2], v)
            return
        if kind == "multi":
            for rn in where[1]:  # weak update: any of these may be the target
                self.region(rn).store(where[2], v)
            return
        if v.taint:
            self.region("wild").summary_taint = True

    @staticmethod
    def _where_shift(where, delta):
        if delta == 0:
            return where
        if where[0] == "stack" and where[1] is not None:
            return ("stack", where[1] + delta)
        if where[0] == "region" and where[2] is not None:
            return ("region", where[1], where[2] + delta)
        return where

    def mem_taint_wide(self, mem: Mem, st: State, frame, insn, width) -> bool:
        """Taint of the granules beyond the first of a `width`-byte access."""
        where, _ = self.resolve_addr(mem, st, frame, insn)
        t = False
        for g in range(8, width, 8):
            t |= self.mem_load(self._where_shift(where, g), st, frame).taint
        return t

    def mem_store_wide(self, mem: Mem, st: State, v: Val, frame, insn, width):
        """Store `v` into every 8-byte granule a `width`-byte access covers.
        The first granule was already written through write_operand (which also
        raised any B02); this fills in the rest."""
        where, _ = self.resolve_addr(mem, st, frame, insn)
        for g in range(8, width, 8):
            self.mem_store(self._where_shift(where, g), st, v, frame)

    # -------------------------------------------------------------- operand values

    def read_operand(self, parsed, st: State, insn, site, frame, check_addr=True) -> Val:
        kind = parsed[0]
        if kind == "imm":
            return NULL_PTR if parsed[1] == 0 else PUBLIC
        if kind == "reg":
            name = parsed[1]
            canon = GPR_CANON.get(name)
            if canon:
                if canon == "rsp":
                    return Val(False, frame, st.sp_off)
                return st.regs.get(canon, PUBLIC)
            vm = VEC_RE.match(name)
            if vm:
                vn = f"v{vm.group(1)}"
                t = st.vec.get(vn, False)
                if not t and vn in st.vecz:
                    return NULL_PTR  # zeroed vector: spills write known-zero slots
                return Val(taint=t)
            km = KMASK_RE.match(name)
            if km:
                return Val(taint=st.kmask.get(name, False))
            return PUBLIC
        if kind == "mem":
            mem = parsed[1]
            if mem.base == "rip" and insn.reloc_type and "GOTPCREL" in insn.reloc_type:
                # GOT entry load: the loaded value IS the symbol's address.
                self.region(f"global:{insn.reloc}")
                return Val(False, f"global:{insn.reloc}", 0)
            where, addr_taint = self.resolve_addr(mem, st, frame, insn)
            if check_addr and addr_taint:
                self.flag("B02", site, insn, "memory operand address derives from secret data")
            if mem.kmask and st.kmask.get(mem.kmask, False):
                self.flag("B02", site, insn,
                          f"masked memory access under tainted k-mask %{mem.kmask}")
            return self.mem_load(where, st, frame)
        return PUBLIC

    def write_operand(self, parsed, st: State, v: Val, insn, site, frame):
        kind = parsed[0]
        if kind == "reg":
            name = parsed[1]
            canon = GPR_CANON.get(name)
            if canon:
                if canon == "rsp":
                    st.sp_off = v.off if v.region == frame else None
                    return
                if canon != "rip":
                    st.regs[canon] = v
                return
            vm = VEC_RE.match(name)
            if vm:
                vn = f"v{vm.group(1)}"
                st.vec[vn] = v.taint
                if not v.taint and v.region == NULL_REGION:
                    st.vecz.add(vn)
                else:
                    st.vecz.discard(vn)
                return
            km = KMASK_RE.match(name)
            if km:
                st.kmask[name] = v.taint
            return
        if kind == "mem":
            mem = parsed[1]
            where, addr_taint = self.resolve_addr(mem, st, frame, insn)
            if addr_taint:
                self.flag("B02", site, insn, "memory operand address derives from secret data")
            if mem.kmask and st.kmask.get(mem.kmask, False):
                self.flag("B02", site, insn,
                          f"masked store under tainted k-mask %{mem.kmask} "
                          f"(written byte set depends on a secret)")
            self.mem_store(where, st, v, frame)

    # -------------------------------------------------------------- calls

    def call_signature(self, st: State):
        sig = []
        for r in ARG_REGS + ("rax",):
            v = st.regs.get(r, PUBLIC)
            sig.append((r, v.taint, v.region, v.off))
        for i in range(8):
            sig.append((f"v{i}", st.vec.get(f"v{i}", False)))
        return tuple(sig)

    def handle_call(self, callee, st: State, insn, site, depth, frame):
        """Applies the effect of a (direct) call to `callee` on st."""
        base_name = callee.split("@")[0]
        # Pointers into the caller's frame may escape through arguments: mirror the
        # flow-sensitive stack into a global region so a followed callee (or a later
        # reload of an untouched slot) sees the values.
        if any(region_has(st.regs.get(r, PUBLIC).region, frame) for r in ARG_REGS):
            mirror = self.region(frame)
            for off, v in st.stack.items():
                mirror.store(off, v)
        # Allocators return a fresh, public allocation: give each call site its own
        # region so heap traffic does not collapse into one taint blob.
        if ALLOC_RE.match(base_name):
            region = f"heap:{site}:{insn.address:x}"
            self.region(region)
            self.havoc_after_call(st, ret=Val(False, region, 0))
            return
        # memcpy-family: constant-time for a public length; propagate region taint.
        if base_name in self.allow_secret:
            dst = st.regs.get("rdi", PUBLIC)
            src = st.regs.get("rsi", PUBLIC)
            moved_taint = False
            if base_name.startswith(("memcpy", "memmove", "__memcpy", "__memmove",
                                     "mempcpy")):
                for rn in region_set(src.region):
                    r = self.region(rn)
                    moved_taint |= r.secret_data or r.summary_taint or any(
                        v.taint for v in r.fields.values())
                moved_taint |= src.taint
            elif base_name.startswith(("memset", "__memset")):
                moved_taint = st.regs.get("rsi", PUBLIC).taint
            if moved_taint:
                drs = region_set(dst.region)
                if dst.region == NULL_REGION:
                    pass  # write through known-null: crashes, does not leak
                elif drs:
                    for rn in drs:
                        self.region(rn).summary_taint = True
                        self.region(rn).store(dst.off, SECRET)
                else:
                    self.region("wild").summary_taint = True
            self.havoc_after_call(st, ret=dst)
            return
        if callee in self.dis.symbols and self.dis.symbols[callee].insns:
            # Same-object call: follow it with the caller's argument state.
            self.havoc_after_call(st, ret=self.analyze_callee(callee, st, depth))
            return
        if self.is_public_allowed(base_name):
            # Vetted public-path helper (C++ runtime, unwinder, thread runtime):
            # allowlisted means not a sink, so no argument checks -- a stale secret
            # in a high argument register must not produce noise here. The source
            # linter (ct_lint CT004) is what gates which calls appear in regions.
            # The result gets a fresh public region (e.g. a getenv string), so a
            # later dereference does not fall into the untracked-memory bucket.
            self.invalidate_escaped_frame(st, frame)
            region = f"ext:{site}:{insn.address:x}"
            self.region(region)
            self.havoc_after_call(st, ret=Val(False, region, 0))
            return
        # Unknown external callee: nothing tainted -- by value or by reference --
        # may escape to it.
        self.invalidate_escaped_frame(st, frame)
        for r in ARG_REGS:
            v = st.regs.get(r, PUBLIC)
            if v.taint:
                self.flag("B04", site, insn,
                          f"tainted value in %{r} escapes to non-allowlisted "
                          f"callee {base_name}")
            else:
                for rn in region_set(v.region):
                    reg = self.region(rn)
                    if reg.secret_data or reg.summary_taint:
                        self.flag("B04", site, insn,
                                  f"pointer to secret bytes in %{r} escapes to "
                                  f"non-allowlisted callee {base_name}")
                        break
        self.havoc_after_call(st, ret=PUBLIC)

    def invalidate_escaped_frame(self, st: State, frame: str):
        """An external call that received a pointer into our frame may rewrite any
        frame slot (e.g. _M_start_thread filling in a std::thread): forget the
        overlay so stale (possibly tainted) spills do not survive the call. The
        slots become unknown-public, shadowing the mirror region too."""
        if not any(region_has(st.regs.get(r, PUBLIC).region, frame) for r in ARG_REGS):
            return
        unknown = Val(False, None, None)
        for off in list(st.stack):
            st.stack[off] = unknown
        mirror = self.regions.get(frame)
        if mirror is not None:
            for off in mirror.fields:
                st.stack.setdefault(off, unknown)

    def havoc_after_call(self, st: State, ret: Val):
        for r in CALLER_SAVED:
            st.regs[r] = PUBLIC
        st.regs["rax"] = ret
        for i in range(16):
            st.vec[f"v{i}"] = False
        st.vecz.clear()
        for k in list(st.kmask):
            st.kmask[k] = False
        st.flags = False

    def analyze_callee(self, callee, st: State, depth) -> Val:
        sig = (callee, self.call_signature(st))
        if sig in self.summaries:
            return self.summaries[sig]
        if callee in self.in_progress or depth >= MAX_CALL_DEPTH:
            # Recursion (or too deep): the body is audited under the outer entry
            # state; assume the return value may carry taint.
            return SECRET
        entry = State()
        for r in ARG_REGS + ("rax",):
            entry.regs[r] = st.regs.get(r, PUBLIC)
        for i in range(8):
            entry.vec[f"v{i}"] = st.vec.get(f"v{i}", False)
        self.in_progress.add(callee)
        try:
            ret_val = self.analyze_cfg(callee, entry, depth + 1)
        finally:
            self.in_progress.discard(callee)
        self.summaries[sig] = ret_val
        return ret_val

    # -------------------------------------------------------------- CFG + fixpoint

    def build_cfg(self, symbol):
        """-> (insns, addr_index, block_starts, succ map). Includes `<symbol>.cold`."""
        insns = list(self.dis.symbols[symbol].insns)
        cold = f"{symbol}.cold"
        if cold in self.dis.symbols:
            insns += self.dis.symbols[cold].insns
        addrs = {i.address: n for n, i in enumerate(insns)}
        leaders = {0}
        for n, i in enumerate(insns):
            mn = i.mnemonic
            is_jump = mn == "jmp" or COND_JUMPS.match(mn)
            if is_jump:
                t = i.target()
                if t and t[0] in addrs:
                    leaders.add(addrs[t[0]])
                if n + 1 < len(insns):
                    leaders.add(n + 1)
            elif mn.startswith("ret") or mn == "call" or mn == "callq":
                if n + 1 < len(insns):
                    leaders.add(n + 1)
        return insns, addrs, sorted(leaders)

    def analyze_cfg(self, symbol, entry: State, depth) -> Val:
        insns, addrs, leaders = self.build_cfg(symbol)
        if not insns:
            return SECRET
        self._frame_counter += 1
        frame = f"frame:{symbol}:{self._frame_counter}"
        entry = entry.copy()
        entry.sp_off = 0
        leader_set = set(leaders)
        block_of = {}
        for n, _ in enumerate(insns):
            block_of[n] = max(b for b in leaders if b <= n)
        in_states = {0: entry}
        work = [0]
        ret_val = None
        visits = {}
        while work:
            b = work.pop()
            visits[b] = visits.get(b, 0) + 1
            if visits[b] > 80:
                continue  # safety valve; join monotonicity should converge long before
            st = in_states[b].copy()
            n = b
            while n < len(insns):
                i = insns[n]
                if n != b and n in leader_set:
                    # fallthrough into the next block
                    self.propagate(n, st, in_states, work)
                    break
                nxt, rt = self.step(i, st, symbol, frame, depth, addrs, in_states, work,
                                    leader_set)
                if rt is not None:
                    ret_val = rt if ret_val is None else join_val(ret_val, rt)
                if nxt == "stop":
                    break
                n += 1
        return ret_val if ret_val is not None else PUBLIC

    def propagate(self, block, st: State, in_states, work):
        if block in in_states:
            if state_leq(st, in_states[block]):
                return
            in_states[block] = join_state(in_states[block], st)
        else:
            in_states[block] = st.copy()
        if block not in work:
            work.append(block)

    # -------------------------------------------------------------- transfer

    def step(self, insn, st: State, site, frame, depth, addrs, in_states, work,
             leader_set):
        """Executes one instruction; returns ('fall'|'stop', ret_val | None)."""
        mn = insn.mnemonic
        ops = [parse_operand(o) for o in insn.operands]

        def rd(p, check_addr=True):
            return self.read_operand(p, st, insn, site, frame, check_addr)

        def wr(p, v):
            self.write_operand(p, st, v, insn, site, frame)

        # ---- no-ops / frame bookkeeping --------------------------------------
        if NOP_RE.match(mn):
            if mn == "leave":
                rbp = st.regs.get("rbp", PUBLIC)
                st.sp_off = (rbp.off + 8) if rbp.region == frame and rbp.off is not None else None
                st.regs["rbp"] = Val(rbp.taint)
                return ("fall", None)
            if mn.startswith("ret"):
                return ("stop", st.regs.get("rax", PUBLIC))
            return ("fall", None)

        if mn in ("push", "pushq"):
            v = rd(ops[0]) if ops else PUBLIC
            if st.sp_off is not None:
                st.sp_off -= 8
                st.stack[st.sp_off] = v
            elif v.taint:
                st.stack_unknown_taint = True
            return ("fall", None)
        if mn in ("pop", "popq"):
            v = Val(taint=st.stack_unknown_taint)
            if st.sp_off is not None:
                v = st.stack.get(st.sp_off, PUBLIC)
                st.sp_off += 8
            if ops:
                wr(ops[0], v)
            return ("fall", None)

        # ---- control flow ----------------------------------------------------
        if COND_JUMPS.match(mn):
            if mn in ("jrcxz", "jecxz"):
                if st.regs.get("rcx", PUBLIC).taint:
                    self.flag("B01", site, insn, "conditional branch on tainted %rcx")
            elif mn.startswith("loop"):
                if st.regs.get("rcx", PUBLIC).taint or (mn != "loop" and st.flags):
                    self.flag("B01", site, insn, "loop instruction on tainted count/flags")
            elif st.flags:
                self.flag("B01", site, insn,
                          "conditional branch on flags derived from secret data")
            t = insn.target()
            if t and t[0] in addrs:
                self.propagate(self._block_of(addrs[t[0]], leader_set), st, in_states, work)
            return ("fall", None)

        if mn == "jmp":
            t = insn.target()
            callee = insn.reloc
            if t and t[0] in addrs and callee is None:
                self.propagate(self._block_of(addrs[t[0]], leader_set), st, in_states, work)
                return ("stop", None)
            # Tail call (reloc'd or out-of-symbol target): call + return.
            name = callee or (t[1].split("+")[0] if t else None)
            if name:
                self.handle_call(name, st, insn, site, depth, frame)
                return ("stop", st.regs.get("rax", PUBLIC))
            return ("stop", None)

        if mn.startswith("jmp") or (ops and ops[0][0] == "ind" and mn[0] == "j"):
            return ("stop", None)

        if mn in ("call", "callq"):
            if ops and ops[0][0] == "ind":
                if isinstance(ops[0][1], Mem):
                    tv = self.read_operand(("mem", ops[0][1]), st, insn, site, frame)
                elif isinstance(ops[0][1], str):
                    tv = self.read_operand(("reg", ops[0][1], None), st, insn, site, frame)
                else:
                    tv = PUBLIC
                if tv.taint:
                    self.flag("B04", site, insn, "indirect call through tainted pointer")
                self.havoc_after_call(st, ret=PUBLIC)
                return ("fall", None)
            t = insn.target()
            callee = insn.reloc or (t[1].split("+")[0] if t else None)
            if callee == site:
                # Direct self-recursion: body audited under this entry; havoc.
                self.havoc_after_call(st, ret=SECRET)
                return ("fall", None)
            if callee:
                self.handle_call(callee, st, insn, site, depth, frame)
                if NORETURN_RE.match(callee.split("@")[0]):
                    # No fallthrough: the bytes after a throw/abort call belong to a
                    # different (often register-incompatible) path.
                    return ("stop", None)
            else:
                self.havoc_after_call(st, ret=PUBLIC)
            return ("fall", None)

        # ---- indirect jumps --------------------------------------------------
        if ops and ops[0][0] == "ind":
            iv = PUBLIC
            if len(ops[0]) >= 2 and isinstance(ops[0][1], str):
                iv = self.read_operand(("reg", ops[0][1], None), st, insn, site, frame)
            elif len(ops[0]) >= 2 and isinstance(ops[0][1], Mem):
                iv = self.read_operand(("mem", ops[0][1]), st, insn, site, frame)
            if iv.taint:
                self.flag("B01", site, insn, "indirect jump through tainted pointer")
            return ("stop", None)

        # ---- variable latency ------------------------------------------------
        if VARLAT_RE.match(mn):
            tainted = any(rd(p).taint for p in ops if p[0] in ("reg", "mem"))
            if mn.startswith(("div", "idiv")):
                tainted |= st.regs.get("rax", PUBLIC).taint
                tainted |= st.regs.get("rdx", PUBLIC).taint
            if tainted:
                self.flag("B03", site, insn,
                          f"variable-latency `{mn}` on tainted input")
            # Result registers
            if mn.startswith(("div", "idiv")):
                st.regs["rax"] = SECRET if tainted else PUBLIC
                st.regs["rdx"] = st.regs["rax"]
                st.flags = tainted
            elif ops:
                wr(ops[-1], Val(taint=tainted))
            return ("fall", None)

        if GATHER_SCATTER_RE.match(mn):
            # Vector gather/scatter: the index vector IS the address set.
            idx_taint = any(st.vec.get(f"v{VEC_RE.match(p[1]).group(1)}", False)
                            for p in ops if p[0] == "reg" and VEC_RE.match(p[1]))
            for p in ops:
                if p[0] == "mem" and p[1].index and VEC_RE.match(p[1].index):
                    idx_taint |= st.vec.get(f"v{VEC_RE.match(p[1].index).group(1)}", False)
            if idx_taint:
                self.flag("B02", site, insn, "gather/scatter with tainted index vector")
            if ops and ops[-1][0] == "reg":
                wr(ops[-1], Val(taint=True))
            return ("fall", None)

        # ---- string ops ------------------------------------------------------
        if STRING_OP_RE.match(mn):
            if "rep" in " ".join(insn.prefixes) and st.regs.get("rcx", PUBLIC).taint:
                self.flag("B01", site, insn, "rep-string op with tainted count")
            if st.regs.get("rdi", PUBLIC).taint or st.regs.get("rsi", PUBLIC).taint:
                self.flag("B02", site, insn, "string op with tainted address register")
            src = st.regs.get("rsi", PUBLIC)
            dst = st.regs.get("rdi", PUBLIC)
            if mn.startswith(("movs", "stos")):
                moved = SECRET if any(self.region(rn).secret_data
                                      for rn in region_set(src.region)) else PUBLIC
                for rn in region_set(dst.region):
                    self.region(rn).store(None, moved)
            return ("fall", None)

        # ---- sign extensions -------------------------------------------------
        if mn in SIGN_EXTEND:
            t = st.regs.get("rax", PUBLIC).taint
            if mn in ("cqo", "cqto", "cdq", "cltd"):
                st.regs["rdx"] = Val(taint=t)
            else:
                st.regs["rax"] = Val(taint=t)
            return ("fall", None)

        # ---- setcc / cmov ----------------------------------------------------
        if SETCC_RE.match(mn):
            wr(ops[0], Val(taint=st.flags))
            return ("fall", None)
        if CMOV_RE.match(mn):
            src = rd(ops[0])
            dst = rd(ops[1], check_addr=False) if ops[1][0] == "reg" else PUBLIC
            out = join_val(src, dst)
            wr(ops[1], Val(out.taint or st.flags, out.region, out.off))
            return ("fall", None)

        # ---- GPR moves -------------------------------------------------------
        if GPR_MOV_RE.match(mn) and not any(
                p[0] == "reg" and VEC_RE.match(p[1]) for p in ops):
            if len(ops) == 2:
                wr(ops[1], rd(ops[0]))
            return ("fall", None)

        if mn in ("xchg", "xchgq", "xchgl"):
            if len(ops) == 2:
                a, b = rd(ops[0]), rd(ops[1])
                wr(ops[0], b)
                wr(ops[1], a)
            return ("fall", None)

        if mn == "lea" or mn.startswith("lea"):
            # Address arithmetic: no memory access, keeps region/offset.
            if len(ops) == 2 and ops[0][0] == "mem":
                mem = ops[0][1]
                taint = False
                region = None
                off = None
                if mem.base:
                    canon = GPR_CANON.get(mem.base, mem.base)
                    if canon == "rsp":
                        bv = Val(False, frame, st.sp_off)
                    elif canon == "rip":
                        gr = f"global:{insn.reloc}" if insn.reloc else "globals"
                        self.region(gr)
                        bv = Val(False, gr, 0 if insn.reloc else None)
                    else:
                        bv = st.regs.get(canon, PUBLIC)
                    taint |= bv.taint
                    region = bv.region
                    off = (bv.off + mem.disp) if bv.off is not None else None
                if mem.index:
                    iv = st.regs.get(GPR_CANON.get(mem.index, mem.index), PUBLIC)
                    taint |= iv.taint
                    off = None
                    # base + scaled index: either operand may be the real pointer
                    # (stride values can carry a spurious arg region) -- keep both.
                    region = make_region(region_set(region) | region_set(iv.region))
                wr(ops[1], Val(taint, region, off))
            return ("fall", None)

        # ---- GPR arithmetic --------------------------------------------------
        if CMP_RE.match(mn):
            taints = [rd(p).taint for p in ops]
            st.flags = any(taints)
            return ("fall", None)

        if ARITH_RE.match(mn) and not any(
                p[0] == "reg" and (VEC_RE.match(p[1]) or KMASK_RE.match(p[1]))
                for p in ops):
            base = arith_base(mn)
            # Zero idioms kill taint.
            if base in ("xor", "sub", "sbb") and len(ops) == 2 and ops[0] == ops[1] \
                    and ops[0][0] == "reg" and base != "sbb":
                wr(ops[1], NULL_PTR)
                st.flags = False
                return ("fall", None)
            if base == "sbb" and len(ops) == 2 and ops[0] == ops[1] and ops[0][0] == "reg":
                # sbb r,r = -CF: the canonical flags->mask idiom; dataflow, not a branch.
                wr(ops[1], Val(taint=st.flags))
                return ("fall", None)
            srcs = [rd(p) for p in ops[:-1]] if len(ops) > 1 else []
            dst_parsed = ops[-1] if ops else None
            dst_old = rd(dst_parsed, check_addr=False) if dst_parsed else PUBLIC
            taint = any(s.taint for s in srcs) or dst_old.taint
            if base in ("adc", "sbb", "rcl", "rcr"):
                taint |= st.flags
            region, off = dst_old.region, dst_old.off
            if base in ("add", "sub") and len(ops) == 2 and ops[0][0] == "imm" \
                    and region is not None and off is not None:
                m = re.match(r"^\$(-?0x[0-9a-f]+|-?\d+)", insn.operands[0])
                if m:
                    delta = int(m.group(1), 0)
                    off = off + delta if base == "add" else off - delta
                else:
                    off = None
            elif base in ("add", "sub"):
                # Pointer arithmetic: `add base, scaled_index` must keep the
                # pointed-to region, whichever operand carried it -- and when
                # several operands carry regions (a grown vector cursor, a stride
                # that inherited an arg region), keep the union so a later store
                # through the result stays attributed instead of going wild.
                # Known-null values act like plain integers here.
                rs = frozenset()
                for v in [dst_old, *srcs]:
                    rs |= region_set(v.region)
                region = make_region(rs)
                off = None
            elif base not in ("add", "sub"):
                region, off = (None, None) if base not in ("and",) else (region, None)
            if dst_parsed is not None and dst_parsed[0] in ("reg", "mem"):
                wr(dst_parsed, Val(taint, region, off))
            st.flags = taint
            if mn.startswith(("mul", "imul")) and len(ops) == 1:
                t = taint or st.regs.get("rax", PUBLIC).taint
                st.regs["rax"] = Val(taint=t)
                st.regs["rdx"] = Val(taint=t)
                st.flags = t
            return ("fall", None)

        # ---- vector / k-mask -------------------------------------------------
        if VEC_MNEM_RE.match(mn) or any(
                p[0] == "reg" and (VEC_RE.match(p[1]) or KMASK_RE.match(p[1]))
                for p in ops):
            # Zero idioms: xor-like with identical source operands.
            if len(ops) >= 2 and ops[0] == ops[1] and \
                    re.match(r"^v?p?(xor|andn|sub|cmpgt)", mn) and \
                    (len(ops) == 2 or ops[-1] == ops[0] or len(ops) == 3):
                if re.match(r"^v?px?or|^v?pxor|^xorp|^vxorp", mn) or "xor" in mn:
                    wr(ops[-1], NULL_PTR)
                    return ("fall", None)
            width = vec_access_width(ops)
            taint = False
            for p in ops[:-1] if len(ops) > 1 else ops:
                taint |= rd(p).taint
                if p[0] == "mem" and width > 8:
                    taint |= self.mem_taint_wide(p[1], st, frame, insn, width)
            for p in ops:
                if p[0] == "reg" and p[2]:  # {%k} on a register operand
                    taint |= st.kmask.get(p[2], False)
                if p[0] == "mem" and p[1].kmask:
                    taint |= st.kmask.get(p[1].kmask, False)
            if mn.startswith(("ptest", "vptest", "ucomis", "comis", "vucomis",
                              "vcomis", "ktest", "kortest")):
                st.flags = taint or (rd(ops[-1]).taint if ops else False)
                return ("fall", None)
            if mn.startswith(("pmovmskb", "vpmovmskb", "movmsk", "vmovmsk", "kmov")):
                if ops:
                    wr(ops[-1], Val(taint=taint))
                return ("fall", None)
            if len(ops) > 1:
                val = Val(taint=taint)
                if len(ops) == 2 and VEC_FULL_MOVE_RE.match(mn) \
                        and ops[0][0] == "reg":
                    val = rd(ops[0])  # pure reg move/store: nullness survives
                wr(ops[-1], val)
                if ops[-1][0] == "mem" and width > 8:
                    self.mem_store_wide(ops[-1][1], st, val, frame, insn, width)
            return ("fall", None)

        # ---- unknown ---------------------------------------------------------
        self.note(f"{site}+0x{insn.address:x}: unmodeled mnemonic `{mn}` "
                  f"({insn.raw.strip()})")
        if len(ops) > 1:
            taint = any(rd(p).taint for p in ops[:-1])
            if ops[-1][0] in ("reg", "mem"):
                wr(ops[-1], Val(taint=taint))
            st.flags = taint
        return ("fall", None)

    @staticmethod
    def _block_of(n, leader_set):
        return max(b for b in leader_set if b <= n)

    # -------------------------------------------------------------- entry point

    def audit(self, audit_sym: AuditSymbol):
        self.root = audit_sym.name
        entry = State()
        for r in ARG_REGS:
            entry.regs[r] = Val(False, f"arg:{audit_sym.name}:{r}", 0)
            self.region(f"arg:{audit_sym.name}:{r}")
        for kind, reg in audit_sym.seeds:
            if kind == "val":
                entry.regs[reg] = SECRET
            else:
                region = f"arg:{audit_sym.name}:{reg}"
                entry.regs[reg] = Val(False, region, 0)
                self.region(region).secret_data = True
        self.analyze_cfg(audit_sym.name, entry, 0)


# ------------------------------------------------------------------ driver

def load_manifest(path: pathlib.Path) -> dict:
    with open(path) as fh:
        return json.load(fh)


def compile_unit(compiler, root, source, flags, opt, out_obj):
    cmd = [compiler, *flags, *opt.split(), "-c", str(root / source),
           "-I", str(root), "-o", str(out_obj)]
    r = subprocess.run(cmd, capture_output=True, text=True)
    if r.returncode != 0:
        raise SystemExit(f"ct_dataflow: compile failed: {' '.join(cmd)}\n{r.stderr}")


def audit_object(obj_path, markers, manifest, verbose, objdump="objdump",
                 backends=None):
    dis = ct_disasm.run_objdump(objdump, str(obj_path))
    if not dis.is_x86:
        return None, []  # dataflow model is x86-64 only; callers treat as skip
    findings = []
    audited = []
    for sym in markers:
        if backends is not None and sym.backend not in backends:
            continue
        if sym.name not in dis.symbols or not dis.symbols[sym.name].insns:
            findings.append(Finding("M01", sym.name, sym.name, 0, "-",
                                    "manifest symbol missing from object"))
            continue
        # Fresh analyzer per root: each root seeds different argument regions, so
        # region taint and call summaries must not bleed from one audit into the
        # next (a callee clean under root A's seeding may be dirty under B's).
        analyzer = Analyzer(dis, manifest, verbose=verbose)
        analyzer.audit(sym)
        findings.extend(analyzer.findings)
        audited.append(sym.name)
        if verbose:
            for n in analyzer.notes:
                print(f"  note: {n}", file=sys.stderr)
    return audited, findings


def active_backends() -> set | None:
    v = os.environ.get("SNOOPY_FORCE_GENERIC_KERNELS")
    if v and v != "0":
        # Mirror the runtime dispatch pin: only the generic backend's code would run.
        return {"generic"}
    return None


def emit(findings, fmt, opt, label):
    if fmt == "json":
        print(json.dumps({"tool": "ct_dataflow", "opt": opt, "unit": label,
                          "findings": [f.record() for f in findings]}, indent=2))
    else:
        for f in findings:
            print(f"  {f.text()}")


def run_audit(args, manifest, root) -> int:
    unit = manifest["unit"]
    source = unit["source"]
    markers = parse_markers((root / source).read_text())
    if not markers:
        print(f"ct_dataflow: no ctdf-symbol markers in {source}")
        return 1
    opts = [args.opt] if args.opt else unit.get("opt_levels", ["-O2"])
    backends = active_backends()
    rc = 0
    for opt in opts:
        with tempfile.TemporaryDirectory() as tmp:
            obj = pathlib.Path(tmp) / "audit.o"
            compile_unit(args.compiler, root, source, unit.get("flags", []), opt, obj)
            audited, findings = audit_object(obj, markers, manifest, args.verbose,
                                             args.objdump, backends)
        if audited is None:
            print(f"ct_dataflow: object is not x86-64; dataflow audit skipped")
            return 0
        if findings:
            rc = 1
            if args.format == "text":
                print(f"ct_dataflow {opt}: {len(findings)} finding(s) "
                      f"across {len(audited)} audited symbol(s):")
            emit(findings, args.format, opt, source)
        else:
            if args.format == "json":
                emit(findings, args.format, opt, source)
            else:
                which = "generic-only" if backends == {"generic"} else "all backends"
                print(f"ct_dataflow {opt}: clean -- {len(audited)} symbol(s) audited "
                      f"({which})")
    return rc


def run_self_test(args, manifest, root) -> int:
    corpus = root / "tools" / "ct_dataflow_selftest"
    failures = 0
    for src in sorted(corpus.glob("*.cc")):
        markers = parse_markers(src.read_text())
        if not markers:
            print(f"SELF-TEST FAIL {src.name}: no ctdf-symbol markers")
            failures += 1
            continue
        with tempfile.TemporaryDirectory() as tmp:
            obj = pathlib.Path(tmp) / "case.o"
            compile_unit(args.compiler, root, f"tools/ct_dataflow_selftest/{src.name}",
                         ["-std=c++20"], "-O2", obj)
            audited, findings = audit_object(obj, markers, manifest, args.verbose,
                                             args.objdump)
        if audited is None:
            print("self-test skip: object is not x86-64")
            return 0
        by_symbol = {}
        for f in findings:
            by_symbol.setdefault(f.symbol, set()).add(f.rule)
        for sym in markers:
            got = by_symbol.get(sym.name, set())
            missed = sym.expect - got
            extra = got - sym.expect
            if missed:
                print(f"SELF-TEST FAIL {src.name}:{sym.name}: planted violation(s) "
                      f"not caught: {sorted(missed)}")
                failures += 1
            if extra:
                print(f"SELF-TEST FAIL {src.name}:{sym.name}: unexpected finding(s): "
                      f"{sorted(extra)}")
                for f in findings:
                    if f.symbol == sym.name and f.rule in extra:
                        print(f"    {f.text()}")
                failures += 1
            if not missed and not extra:
                what = ",".join(sorted(sym.expect)) if sym.expect else "clean"
                print(f"self-test ok: {src.name}:{sym.name} ({what})")
    # The real audit unit must also come back clean (at the default opt levels).
    rc = run_audit(args, manifest, root)
    if rc != 0:
        print("SELF-TEST FAIL: real audit unit has findings")
        failures += 1
    if failures:
        print(f"ct_dataflow self-test: {failures} failure(s)")
        return 1
    print("ct_dataflow self-test: all planted violations caught, real tree clean")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo-root", default=".", type=pathlib.Path)
    ap.add_argument("--manifest", default=None, type=pathlib.Path)
    ap.add_argument("--compiler", default=os.environ.get("CXX", "g++"))
    ap.add_argument("--objdump", default="objdump")
    ap.add_argument("--opt", default=None,
                    help="single optimization recipe (default: manifest opt_levels)")
    ap.add_argument("--format", choices=("text", "json"), default="text")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()
    root = args.repo_root.resolve()
    manifest = load_manifest(args.manifest or root / "tools" / "ct_binary_manifest.json")
    if args.self_test:
        return run_self_test(args, manifest, root)
    return run_audit(args, manifest, root)


if __name__ == "__main__":
    sys.exit(main())
