#!/usr/bin/env python3
"""Critical-path and parallel-efficiency report over a Snoopy Chrome trace.

Input: the Perfetto/Chrome trace-event JSON written by SNOOPY_TRACE_OUT (or
Tracer::WriteChromeTrace): complete events (ph == "X") with categories

  epoch  one span per Snoopy::RunEpoch
  phase  pipeline phases inside an epoch (lb_prepare, suboram_execute,
         response_match, deliver, seal, repair)
  task   one span per RunIndexedPhase task (per-LB / per-subORAM work item)
  pool   per-worker summaries (name == phase, args tasks/steals/busy_ns/idle_ns/
         cpu_busy_ns) and one barrier span per pooled phase
  step   sub-phase steps inside a task (lb_assign, suboram_scan, merge tiles...).
         "sort" steps are the ObliviousSortSlab entry point: args carry the
         resolved strategy (0 = bitonic, 1 = bucket), the record count, and the
         geometry (block_records tile size for bitonic; buckets x capacity for
         the bucket butterfly) — the report labels each sort row with them

For every epoch the report computes:

  * per-phase wall time, worker busy/idle split, parallel efficiency
    busy / (busy + idle), task-skew (longest task / mean task), and barrier
    stall (phase end minus last task end);
  * per-phase work inflation: wall-busy seconds over per-thread CPU seconds
    (CLOCK_THREAD_CPUTIME_ID, the cpu_busy_ns pool arg). On a dedicated core
    the two agree; a ratio above 1.15x means workers were timeshared or
    preempted while "busy", so wall-busy overstates the work actually done --
    the exact failure mode behind the 3.2x epoch-parallelism regression.
    Inflated phases are flagged in the report;
  * the epoch critical path: each phase's contribution is its longest task
    (the chain the barrier actually waited on) plus the phase's serial
    prologue/epilogue, and the epoch's serial remainder (deliver, seal,
    orchestration gaps) is attributed separately;
  * an Amdahl decomposition: serial seconds = epoch wall minus pooled-phase
    wall, parallel work = summed worker busy seconds, measured serial fraction
    f = serial / wall, and projected speedup wall / (serial + work / W).

All inputs are public schedule facts by construction (the tracer's leakage
model); nothing here reads request contents.

Usage:
  tools/trace_report.py TRACE.json [--json OUT.json] [--workers N ...]
  tools/trace_report.py --self-check
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from collections import defaultdict

POOL_PHASES = ("lb_prepare", "suboram_execute", "response_match")

# The "sort" step span's strategy arg (src/obl/bucket_sort.h ObliviousSortSlab).
SORT_STRATEGY_NAMES = {0: "bitonic", 1: "bucket"}

# Wall-busy / CPU-busy ratio above which a phase's busy accounting is flagged as
# inflated (workers descheduled mid-task; wall time measuring the scheduler).
WORK_INFLATION_FLAG = 1.15


def load_events(path):
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise SystemExit(f"{path}: not a Chrome trace-event file (no traceEvents)")
    return [e for e in doc["traceEvents"] if e.get("ph") == "X"]


def spans_within(events, cat, lo, hi):
    """Complete events of `cat` whose start lies inside [lo, hi]."""
    return [e for e in events if e.get("cat") == cat and lo <= e["ts"] <= hi]


class PhaseStats:
    def __init__(self, name):
        self.name = name
        self.wall_us = 0.0
        self.busy_us = 0.0
        self.idle_us = 0.0
        self.cpu_busy_us = 0.0
        self.tasks = 0
        self.steals = 0
        self.workers = 0
        self.longest_task_us = 0.0
        self.task_durs_us = []
        self.stall_us = 0.0
        self.critical_us = 0.0

    @property
    def efficiency(self):
        denom = self.busy_us + self.idle_us
        return self.busy_us / denom if denom > 0 else 1.0

    @property
    def work_inflation(self):
        # cpu_busy_us == 0 means the trace predates the arg (or the platform has
        # no per-thread CPU clock); report 1.0 rather than flagging blindly.
        return self.busy_us / self.cpu_busy_us if self.cpu_busy_us > 0 else 1.0

    @property
    def skew(self):
        if not self.task_durs_us:
            return 1.0
        mean = sum(self.task_durs_us) / len(self.task_durs_us)
        return max(self.task_durs_us) / mean if mean > 0 else 1.0


def sort_label(args):
    """(strategy, geometry) label for one "sort" step span: the active strategy
    plus the public geometry it ran with — the blocked executor's tile size for
    bitonic, the butterfly's buckets x capacity for bucket."""
    strategy = SORT_STRATEGY_NAMES.get(args.get("strategy"), "unknown")
    if strategy == "bucket":
        geometry = f"{args.get('buckets', '?')}x{args.get('capacity', '?')}"
    else:
        geometry = f"tile {args.get('block_records', '?')}"
    return strategy, geometry


def sort_stats(events):
    """Aggregate the "sort" step spans per (strategy, geometry) label."""
    rows = defaultdict(lambda: {"count": 0, "records": 0, "wall_us": 0.0})
    for e in events:
        if e.get("cat") != "step" or e.get("name") != "sort":
            continue
        args = e.get("args", {})
        row = rows[sort_label(args)]
        row["count"] += 1
        row["records"] += args.get("records", 0)
        row["wall_us"] += e.get("dur", 0)
    return dict(rows)


def analyze(events):
    epochs = sorted((e for e in events if e.get("cat") == "epoch"),
                    key=lambda e: e["ts"])
    if not epochs:
        raise SystemExit("trace holds no epoch spans (cat == 'epoch'); "
                         "was SNOOPY_TRACE enabled?")

    phases = defaultdict(lambda: PhaseStats(""))
    total_epoch_us = 0.0
    total_serial_us = 0.0
    total_work_us = 0.0
    max_workers = 1

    for epoch in epochs:
        lo, hi = epoch["ts"], epoch["ts"] + epoch["dur"]
        total_epoch_us += epoch["dur"]
        pooled_wall_us = 0.0
        for ph in spans_within(events, "phase", lo, hi):
            st = phases[ph["name"]]
            st.name = ph["name"]
            st.wall_us += ph["dur"]
            plo, phi = ph["ts"], ph["ts"] + ph["dur"]
            workers = 0
            for pool in spans_within(events, "pool", plo, phi):
                if pool["name"] != ph["name"]:
                    continue
                args = pool.get("args", {})
                st.busy_us += args.get("busy_ns", 0) / 1e3
                st.idle_us += args.get("idle_ns", 0) / 1e3
                st.cpu_busy_us += args.get("cpu_busy_ns", 0) / 1e3
                st.tasks += args.get("tasks", 0)
                st.steals += args.get("steals", 0)
                workers += 1
            tasks = [t for t in spans_within(events, "task", plo, phi)
                     if t["name"] == ph["name"]]
            if tasks:
                longest = max(t["dur"] for t in tasks)
                st.longest_task_us = max(st.longest_task_us, longest)
                st.task_durs_us.extend(t["dur"] for t in tasks)
                last_end = max(t["ts"] + t["dur"] for t in tasks)
                st.stall_us += max(0.0, phi - last_end)
                # Critical path through the phase: the serial prologue up to the
                # first task, the longest task chain, and the post-barrier tail.
                first_start = min(t["ts"] for t in tasks)
                st.critical_us += (first_start - plo) + longest + max(0.0, phi - last_end)
            else:
                st.critical_us += ph["dur"]
            if workers:
                st.workers = max(st.workers, workers)
                max_workers = max(max_workers, workers)
            if ph["name"] in POOL_PHASES:
                pooled_wall_us += ph["dur"]
        total_serial_us += max(0.0, epoch["dur"] - pooled_wall_us)

    total_work_us = sum(p.busy_us for p in phases.values()
                        if p.name in POOL_PHASES)
    return {
        "epochs": len(epochs),
        "phases": phases,
        "sorts": sort_stats(events),
        "epoch_wall_s": total_epoch_us / 1e6,
        "serial_s": total_serial_us / 1e6,
        "parallel_work_s": total_work_us / 1e6,
        "serial_fraction": (total_serial_us / total_epoch_us
                            if total_epoch_us > 0 else 0.0),
        "max_workers": max_workers,
    }


def projected_speedup(report, workers):
    serial = report["serial_s"]
    work = report["parallel_work_s"]
    wall = report["epoch_wall_s"]
    if wall <= 0:
        return 1.0
    denom = serial + work / workers
    return wall / denom if denom > 0 else math.inf


def render(report, worker_projections):
    lines = []
    lines.append(f"epochs analyzed: {report['epochs']}   "
                 f"total epoch wall: {report['epoch_wall_s'] * 1e3:.1f} ms")
    lines.append("")
    lines.append(f"{'phase':<18} {'wall ms':>9} {'busy ms':>9} {'cpu ms':>9} "
                 f"{'idle ms':>9} {'eff':>5} {'infl':>5} {'skew':>5} "
                 f"{'stall ms':>9} {'crit ms':>9} {'tasks':>6} {'steals':>6}")
    order = sorted(report["phases"].values(), key=lambda p: -p.wall_us)
    for p in order:
        lines.append(
            f"{p.name:<18} {p.wall_us / 1e3:>9.2f} {p.busy_us / 1e3:>9.2f} "
            f"{p.cpu_busy_us / 1e3:>9.2f} {p.idle_us / 1e3:>9.2f} "
            f"{p.efficiency:>5.2f} {p.work_inflation:>5.2f} {p.skew:>5.2f} "
            f"{p.stall_us / 1e3:>9.2f} {p.critical_us / 1e3:>9.2f} "
            f"{p.tasks:>6d} {p.steals:>6d}")
    lines.append("")
    for p in order:
        if p.work_inflation > WORK_INFLATION_FLAG:
            lines.append(
                f"WARNING: phase {p.name!r} wall-busy is {p.work_inflation:.2f}x its "
                f"CPU time (> {WORK_INFLATION_FLAG:.2f}x): workers were timeshared or "
                f"preempted mid-task; wall-busy overstates the work done and the "
                f"efficiency column is not trustworthy for this phase.")
    if report["sorts"]:
        lines.append("oblivious sorts (strategy / geometry):")
        for (strategy, geometry), row in sorted(report["sorts"].items()):
            lines.append(
                f"  {strategy:<8} {geometry:<14} x{row['count']:<5d} "
                f"{row['records']:>10d} records {row['wall_us'] / 1e3:>9.2f} ms")
        lines.append("")
    crit_total = sum(p.critical_us for p in order if p.name in POOL_PHASES)
    lines.append("critical path (pooled phases): "
                 f"{crit_total / 1e3:.2f} ms of {report['epoch_wall_s'] * 1e3:.1f} ms")
    lines.append(
        f"Amdahl: serial {report['serial_s'] * 1e3:.2f} ms, parallel work "
        f"{report['parallel_work_s'] * 1e3:.2f} ms, serial fraction "
        f"f = {report['serial_fraction']:.3f}")
    for w in worker_projections:
        lines.append(f"  projected speedup at {w:>2d} workers: "
                     f"{projected_speedup(report, w):.2f}x")
    return "\n".join(lines)


def to_json(report, worker_projections):
    return {
        "epochs": report["epochs"],
        "epoch_wall_s": report["epoch_wall_s"],
        "serial_s": report["serial_s"],
        "parallel_work_s": report["parallel_work_s"],
        "serial_fraction": report["serial_fraction"],
        "projected_speedup": {str(w): projected_speedup(report, w)
                              for w in worker_projections},
        "sorts": [
            {
                "strategy": strategy,
                "geometry": geometry,
                "count": row["count"],
                "records": row["records"],
                "wall_s": row["wall_us"] / 1e6,
            }
            for (strategy, geometry), row in sorted(report["sorts"].items())
        ],
        "phases": {
            p.name: {
                "wall_s": p.wall_us / 1e6,
                "busy_s": p.busy_us / 1e6,
                "cpu_busy_s": p.cpu_busy_us / 1e6,
                "idle_s": p.idle_us / 1e6,
                "parallel_efficiency": p.efficiency,
                "work_inflation": p.work_inflation,
                "task_skew": p.skew,
                "barrier_stall_s": p.stall_us / 1e6,
                "critical_path_s": p.critical_us / 1e6,
                "tasks": p.tasks,
                "steals": p.steals,
            }
            for p in report["phases"].values()
        },
    }


# ----------------------------------------------------------------- self-check

def golden_trace():
    """One 100 ms epoch: 20 ms single-worker lb_prepare, then a 40 ms two-worker
    suboram_execute whose workers run 40 ms and 20 ms of tasks (busy 60 ms, idle
    20 ms -> efficiency 0.75, skew 4/3), then a 40 ms serial remainder (deliver +
    seal) -> serial fraction 0.4. Worker 0 of the execute phase gets only 25 ms
    of CPU for its 40 ms wall-busy span (descheduled mid-task), so the phase's
    work inflation is 60/45 = 1.333x and must trip the >1.15x flag; lb_prepare's
    CPU matches wall and must stay unflagged. The lb_prepare task carries one
    bitonic "sort" step (tile 157) and the execute task one bucket sort (16x1024
    butterfly), so the sort rows must come back labeled with strategy and
    geometry."""
    ev = []

    def x(cat, name, ts, dur, args=None):
        ev.append({"ph": "X", "pid": 0, "tid": 0, "cat": cat, "name": name,
                   "ts": ts, "dur": dur, "args": args or {}})

    x("epoch", "epoch", 0, 100_000, {"pending": 4})
    x("phase", "lb_prepare", 0, 20_000)
    x("task", "lb_prepare", 0, 10_000)
    x("step", "sort", 2_000, 6_000,
      {"strategy": 0, "records": 4096, "block_records": 157})
    x("task", "lb_prepare", 10_000, 10_000)
    x("pool", "lb_prepare", 0, 20_000,
      {"tasks": 2, "steals": 0, "busy_ns": 20_000_000, "idle_ns": 0,
       "cpu_busy_ns": 20_000_000})
    x("phase", "suboram_execute", 20_000, 40_000)
    x("task", "suboram_execute", 20_000, 40_000)  # worker 0: the barrier chain
    x("step", "sort", 25_000, 10_000,
      {"strategy": 1, "records": 8192, "buckets": 16, "capacity": 1024})
    x("task", "suboram_execute", 20_000, 20_000)  # worker 1: parks after 20 ms
    x("pool", "suboram_execute", 20_000, 40_000,
      {"tasks": 1, "steals": 0, "busy_ns": 40_000_000, "idle_ns": 0,
       "cpu_busy_ns": 25_000_000})
    x("pool", "suboram_execute", 20_000, 40_000,
      {"tasks": 1, "steals": 0, "busy_ns": 20_000_000, "idle_ns": 20_000_000,
       "cpu_busy_ns": 20_000_000})
    x("phase", "deliver", 60_000, 20_000)
    x("phase", "seal", 80_000, 20_000)
    return ev


def self_check():
    report = analyze(golden_trace())
    checks = [
        ("epochs", report["epochs"], 1),
        ("serial_s", round(report["serial_s"], 6), 0.04),
        ("serial_fraction", round(report["serial_fraction"], 6), 0.4),
        ("parallel_work_s", round(report["parallel_work_s"], 6), 0.08),
    ]
    exe = report["phases"]["suboram_execute"]
    checks.append(("execute_efficiency", round(exe.efficiency, 6), 0.75))
    checks.append(("execute_skew", round(exe.skew, 6),
                   round(40_000 / 30_000, 6)))
    # Wall-busy 60 ms against 45 ms of CPU: inflation 1.333x, above the flag
    # threshold; lb_prepare's CPU equals its wall-busy and stays clean.
    checks.append(("execute_inflation", round(exe.work_inflation, 6),
                   round(60_000 / 45_000, 6)))
    checks.append(("prepare_inflation",
                   round(report["phases"]["lb_prepare"].work_inflation, 6), 1.0))
    flagged = sorted(p.name for p in report["phases"].values()
                     if p.work_inflation > WORK_INFLATION_FLAG)
    checks.append(("flagged_phases", flagged, ["suboram_execute"]))
    # The sort steps must come back labeled with the active strategy and its
    # geometry: the bitonic one with its blocked-executor tile size, the bucket
    # one with its butterfly shape.
    checks.append(("sort_labels", sorted(report["sorts"]),
                   [("bitonic", "tile 157"), ("bucket", "16x1024")]))
    checks.append(("bitonic_sort_records",
                   report["sorts"][("bitonic", "tile 157")]["records"], 4096))
    checks.append(("bucket_sort_wall_s",
                   round(report["sorts"][("bucket", "16x1024")]["wall_us"] / 1e6, 6),
                   0.01))
    # The long task runs right up to the barrier, so there is no post-barrier
    # stall and the phase's critical path is that 40 ms task.
    checks.append(("execute_stall_s", round(exe.stall_us / 1e6, 6), 0.0))
    checks.append(("execute_critical_s", round(exe.critical_us / 1e6, 6), 0.04))
    # Amdahl projection with the measured 80 ms of work at W=4:
    # 100 / (40 + 80/4) = 1.667x.
    checks.append(("speedup_at_4", round(projected_speedup(report, 4), 6),
                   round(100.0 / 60.0, 6)))
    failures = [f"{name}: got {got!r}, want {want!r}"
                for name, got, want in checks if got != want]
    if failures:
        print("trace_report self-check FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"trace_report self-check: all {len(checks)} assertions passed")
    print()
    print(render(report, [2, 4]))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", nargs="?", help="Chrome trace JSON (SNOOPY_TRACE_OUT)")
    ap.add_argument("--json", dest="json_out", default=None,
                    help="also write the report as JSON to this path")
    ap.add_argument("--workers", type=int, nargs="*", default=[2, 4, 8, 16],
                    help="worker counts for the Amdahl speedup projection")
    ap.add_argument("--self-check", action="store_true",
                    help="run the analysis against the built-in golden trace")
    args = ap.parse_args()

    if args.self_check:
        return self_check()
    if not args.trace:
        ap.error("a trace file is required unless --self-check is given")
    report = analyze(load_events(args.trace))
    print(render(report, args.workers))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(to_json(report, args.workers), fh, indent=2, sort_keys=True)
        print(f"\nwrote {args.json_out}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # piped into head etc.; not an analysis failure
        sys.exit(0)
