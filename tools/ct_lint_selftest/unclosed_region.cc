// Structural-rule probe for tools/ct_lint.py --self-test: a region that is opened
// but never closed must be reported. Never compiled.
// EXPECT-FILE: CT008

#include <cstdint>

namespace selftest {

// SNOOPY_OBLIVIOUS_BEGIN(never_closed)
// ct-public: i n

inline uint64_t Sum(const uint64_t* xs, uint64_t n) {
  uint64_t acc = 0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += xs[i];
  }
  return acc;
}

}  // namespace selftest
