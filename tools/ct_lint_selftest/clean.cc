// Negative control for tools/ct_lint.py --self-test: real-world oblivious idioms
// that must produce zero findings. Never compiled.

#include <cstdint>

namespace selftest {

// SNOOPY_OBLIVIOUS_BEGIN(clean)
// ct-public: i j n stride asc threads flags kept

void Clean(uint8_t* base, uint8_t* flags_buf, uint64_t n, uint64_t stride) {
  SecretU64 count = 0;
  SecretU64 prev_key = ~uint64_t{0};
  for (uint64_t i = 0; i < n; ++i) {
    TraceRecord(TraceOp::kRead, i);
    const SecretU64 key = LoadSecretU64(base, i * stride);
    const SecretBool same = key == prev_key;
    count += CtSelectU64(same, 0, 1);
    prev_key = key;
    flags_buf[i] = same.ToFlagByte();
  }
  const uint64_t kept = count.Declassify("selftest.clean.count");
  if (kept == n) {
    return;
  }
  for (uint64_t j = 0; j + 1 < n; ++j) {
    const SecretBool move = SecretBool::FromWord(flags_buf[j]) & (count & 1).NonZero();
    CtCondSwapBytes(move, base + j * stride, base + (j + 1) * stride, stride);
  }
}

// SNOOPY_OBLIVIOUS_END(clean)

}  // namespace selftest
