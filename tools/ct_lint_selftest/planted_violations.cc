// Planted-violation corpus for tools/ct_lint.py --self-test.
//
// Every line tagged `// EXPECT: <codes>` must produce exactly those findings; any
// miss or extra fails the self-test. This file is never compiled -- it only needs to
// tokenize like C++.

#include <cstdint>

namespace selftest {

// SNOOPY_OBLIVIOUS_BEGIN(planted)
// ct-public: i n len table_size pub_flag

void Planted(uint64_t secret_key, uint64_t secret_len, bool secret_flag,
             uint64_t* table, uint8_t* tag_a, uint8_t* tag_b) {
  uint64_t x = 0;
  if (secret_flag) {  // EXPECT: CT001
    x = 1;
  }
  while (secret_len > 0) {  // EXPECT: CT001
    secret_len -= 1;
  }
  for (uint64_t i = 0; i < secret_len; ++i) {  // EXPECT: CT001
    x += i;
  }
  const uint64_t v = secret_flag ? 1 : 2;  // EXPECT: CT002
  const bool both = secret_flag && pub_flag;  // EXPECT: CT003
  x += table[secret_key];  // EXPECT: CT004
  if (memcmp(tag_a, tag_b, 16) == 0) {  // EXPECT: CT001 CT005
    x = 2;
  }
  leak_to_network(secret_key);  // EXPECT: CT006
  x += secret_word.SecretValueForPrimitive();  // EXPECT: CT007

  // Public control flow and oblivious idioms must NOT be flagged:
  for (uint64_t i = 0; i < n; ++i) {
    x += table[i];
  }
  if (len == 0) {
    x = 3;
  }
  const uint64_t w = pub_flag ? 4 : 5;
  CtCondCopyBytes(secret_flag_typed, tag_a, tag_b, len);
  const bool audited = secret_bool.Declassify("selftest.site");
  if (secret_bool_2.Declassify("selftest.site2")) {
    x = 4;
  }
  if (secret_flag) {  // ct-ok: suppression smoke test -- intentionally unflagged
    x = 5;
  }
  (void)x;
  (void)v;
  (void)both;
  (void)w;
  (void)audited;
}

// SNOOPY_OBLIVIOUS_END(planted)

}  // namespace selftest
