// Planted vector-mask leak for tools/ct_lint.py --self-test (CT001/CT004/CT006).
//
// The SIMD kernel layer (src/obl/kernels.h) keeps secret masks inside vector
// registers: broadcast, barrier, select/xor-swap, store. The one-instruction way to
// ruin that is _mm256_movemask_epi8 -- it extracts the per-lane mask bits into a
// scalar that inevitably ends up steering a branch or an index. This file plants
// exactly that escape; the second region shows the lawful select idiom the kernels
// actually use. Never compiled -- it only needs to tokenize like C++. The regions
// carry their own ct-calls lines because the self-test corpus is linted without the
// manifest's intrinsic allowlist.

#include <cstdint>

namespace selftest {

// SNOOPY_OBLIVIOUS_BEGIN(vector_mask_leak)
// ct-public: i n out
// ct-calls: _mm256_set1_epi64x _mm256_loadu_si256 _mm256_storeu_si256 _mm256_and_si256 _mm256_andnot_si256 _mm256_or_si256

void VectorMaskLeak(uint64_t mask, uint8_t* dst, const uint8_t* src, uint64_t n,
                    uint64_t* out) {
  const __m256i vm = KernelVecBarrier256(_mm256_set1_epi64x(mask));
  for (uint64_t i = 0; i + 32 <= n; i += 32) {
    const __m256i s = _mm256_loadu_si256(src + i);
    // The escape: materializing the mask lanes as a scalar. movemask is on no
    // allowlist, and the scalar it produces taints everything downstream.
    const uint32_t lanes = _mm256_movemask_epi8(vm);  // EXPECT: CT006
    if (lanes != 0) {  // EXPECT: CT001
      _mm256_storeu_si256(dst + i, s);
    }
    out[lanes & 7] += 1;  // EXPECT: CT004
  }
}

// SNOOPY_OBLIVIOUS_END(vector_mask_leak)

// SNOOPY_OBLIVIOUS_BEGIN(vector_mask_clean)
// ct-public: i n
// ct-calls: _mm256_set1_epi64x _mm256_loadu_si256 _mm256_storeu_si256 _mm256_and_si256 _mm256_andnot_si256 _mm256_or_si256

// The lawful form: the mask never leaves the vector domain. Every lane sees the
// same loads, ALU ops, and stores no matter what the mask says.
void VectorMaskClean(uint64_t mask, uint8_t* dst, const uint8_t* src, uint64_t n) {
  const __m256i vm = KernelVecBarrier256(_mm256_set1_epi64x(mask));
  for (uint64_t i = 0; i + 32 <= n; i += 32) {
    const __m256i d = _mm256_loadu_si256(dst + i);
    const __m256i s = _mm256_loadu_si256(src + i);
    const __m256i merged = _mm256_or_si256(_mm256_and_si256(vm, s),
                                           _mm256_andnot_si256(vm, d));
    _mm256_storeu_si256(dst + i, merged);
  }
}

// SNOOPY_OBLIVIOUS_END(vector_mask_clean)

}  // namespace selftest
