// Planted secret-into-trace violations for tools/ct_lint.py --self-test (CT010).
//
// Span-tracing calls inside an oblivious region are timing/label side channels
// unless the region's `ct-public:` line names the tracing API, vouching that the
// span's category, name, task id, and arguments derive only from public schedule
// state (batch sizes, tile indices, thread counts). This file plants both the
// violation and the audited opt-in; it is never compiled -- it only needs to
// tokenize like C++.

#include <cstdint>

namespace selftest {

// SNOOPY_OBLIVIOUS_BEGIN(trace_leak)
// ct-public: i n tracer

void TraceLeak(Tracer* tracer, uint8_t* base, uint64_t n) {
  SecretU64 matches_secret = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const SecretU64 key = LoadSecretU64(base, i * 8);
    matches_secret += CtSelectU64(key == 0, 1, 0);
  }
  // Unannotated span inside the region: even with public-looking arguments, the
  // span's start/stop timestamps bracket secret-dependent work the author never
  // audited, so the bare presence of the API is the finding.
  TraceSpan span(tracer, "tile", "scan_tile", n);  // EXPECT: CT010
  // Recording a secret-derived value as a span argument (the deleted Secret<T>
  // overload also catches this at compile time; the linter catches it first).
  span.SetArg("matches", matches_secret);  // EXPECT: CT010
  // The classic label leak: a span name chosen by a secret. The ternary condition
  // is itself a secret select (CT002) and the span API is unannotated (CT010).
  TraceSpan leaky(tracer, "tile", matches_raw ? "hit" : "miss");  // EXPECT: CT002 CT010
}

// SNOOPY_OBLIVIOUS_END(trace_leak)

// SNOOPY_OBLIVIOUS_BEGIN(trace_public_ok)
// ct-public: i n batch_size tracer TraceSpan SetArg
// ct-calls: End

// The audited opt-in: `ct-public: TraceSpan SetArg` asserts every span in this
// region is labelled and parameterized by public schedule state only (here the
// padded batch size f(R, S), public by Theorem 3). No findings.
void TracePublicOk(Tracer* tracer, uint8_t* base, uint64_t n, uint64_t batch_size) {
  TraceSpan span(tracer, "step", "scan", batch_size);
  span.SetArg("records", n);
  for (uint64_t i = 0; i < n; ++i) {
    const SecretU64 key = LoadSecretU64(base, i * 8);
    StoreSecretU64(base, i * 8, key);
  }
  span.End();
}

// SNOOPY_OBLIVIOUS_END(trace_public_ok)

}  // namespace selftest
