// Planted secret-into-metric violations for tools/ct_lint.py --self-test (CT009).
//
// Telemetry record calls inside an oblivious region are access-pattern leaks unless
// the region's `ct-public:` line names the call, vouching that every recorded value
// is public. This file plants both the violation and the audited opt-in; it is never
// compiled -- it only needs to tokenize like C++.

#include <cstdint>

namespace selftest {

// SNOOPY_OBLIVIOUS_BEGIN(metric_leak)
// ct-public: i n counter hist matches batch_size

void MetricLeak(uint8_t* base, uint64_t n, uint64_t stride) {
  SecretU64 matches_secret = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const SecretU64 key = LoadSecretU64(base, i * stride);
    const SecretBool hit = key == 0;
    matches_secret += CtSelectU64(hit, 1, 0);
    // The classic leak: bumping a counter on the secret-dependent path. Even with a
    // constant argument, *reaching* the call leaks that the branch was taken.
    counter.Increment(1);  // EXPECT: CT009
  }
  // Recording a secret-derived value (the deleted overload also catches this at
  // compile time; the linter catches it before a compiler ever runs).
  hist.Observe(matches_secret);  // EXPECT: CT009
  GetCounter("selftest_matches").Increment(matches_secret);  // EXPECT: CT009
}

// SNOOPY_OBLIVIOUS_END(metric_leak)

// SNOOPY_OBLIVIOUS_BEGIN(metric_public_ok)
// ct-public: i n batch_size hist Observe

// The audited opt-in: `ct-public: Observe` asserts every value this region records
// is public (here the padded batch size f(R, S), public by Theorem 3). No findings.
void MetricPublicOk(uint8_t* base, uint64_t n, uint64_t batch_size) {
  for (uint64_t i = 0; i < n; ++i) {
    const SecretU64 key = LoadSecretU64(base, i * 8);
    StoreSecretU64(base, i * 8, key);
  }
  hist.Observe(batch_size);
}

// SNOOPY_OBLIVIOUS_END(metric_public_ok)

}  // namespace selftest
