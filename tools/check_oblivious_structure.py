#!/usr/bin/env python3
"""check_oblivious_structure: tree-wide SNOOPY_OBLIVIOUS region audit.

The constant-time discipline hangs off comment markers:

    // SNOOPY_OBLIVIOUS_BEGIN(name)
    ...
    // SNOOPY_OBLIVIOUS_END(name)

ct_lint.py only lints regions in files the manifest classifies as `enforced`,
so a structural slip is silent: an orphaned BEGIN swallows the rest of the
file, a typo'd END leaves the region open, and a region added to a file the
manifest calls `public` (or forgets entirely) is never linted at all. This
check makes those states loud, tree-wide:

  S01  BEGIN without a matching END (or END without a BEGIN)
  S02  END name does not match the innermost open BEGIN
  S03  file opens oblivious regions but ct_manifest.json does not classify it
       as `enforced` (unclassified, or classified public/tcb/exempt)
  S04  file is classified `enforced` but contains no region (vacuous entry --
       usually a marker deleted without updating the manifest)
  S05  duplicate region name within one file (breaks region-keyed tooling)

Exit 0 iff the tree is structurally clean.
"""

import argparse
import json
import pathlib
import re
import sys

RE_BEGIN = re.compile(r"//\s*SNOOPY_OBLIVIOUS_BEGIN\((\w+)\)")
RE_END = re.compile(r"//\s*SNOOPY_OBLIVIOUS_END\((\w+)\)")

SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")
SUFFIXES = (".cc", ".h")


def scan_file(path: pathlib.Path, rel: str, findings: list) -> list:
    """-> list of region names opened (and properly closed) in this file."""
    closed = []
    stack = []  # (name, line)
    seen = set()
    for n, line in enumerate(path.read_text().splitlines(), 1):
        for m in RE_BEGIN.finditer(line):
            name = m.group(1)
            if name in seen:
                findings.append((rel, n, "S05",
                                 f"duplicate region name '{name}' in this file"))
            seen.add(name)
            stack.append((name, n))
        for m in RE_END.finditer(line):
            name = m.group(1)
            if not stack:
                findings.append((rel, n, "S01",
                                 f"SNOOPY_OBLIVIOUS_END({name}) without an open BEGIN"))
                continue
            open_name, open_line = stack.pop()
            if open_name != name:
                findings.append((rel, n, "S02",
                                 f"END({name}) closes BEGIN({open_name}) from "
                                 f"line {open_line}"))
            closed.append(open_name)
    for name, n in stack:
        findings.append((rel, n, "S01",
                         f"SNOOPY_OBLIVIOUS_BEGIN({name}) is never closed"))
    return closed


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo-root", default=".", type=pathlib.Path)
    ap.add_argument("--manifest", default=None, type=pathlib.Path)
    ap.add_argument("--format", choices=("text", "json"), default="text")
    args = ap.parse_args()
    root = args.repo_root.resolve()
    manifest_path = args.manifest or root / "tools" / "ct_manifest.json"
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    classes = {e["path"]: e["class"] for e in manifest.get("files", [])}

    findings = []
    regions_by_file = {}
    for sub in SCAN_DIRS:
        base = root / sub
        if not base.exists():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix not in SUFFIXES or "ct_lint_selftest" in p.parts \
                    or "ct_dataflow_selftest" in p.parts:
                continue
            rel = p.relative_to(root).as_posix()
            regions = scan_file(p, rel, findings)
            if regions:
                regions_by_file[rel] = regions

    for rel, regions in sorted(regions_by_file.items()):
        cls = classes.get(rel)
        if cls != "enforced":
            how = f"classified '{cls}'" if cls else "not in the manifest"
            findings.append((rel, 1, "S03",
                             f"opens region(s) {', '.join(regions)} but is {how} "
                             f"-- ct_lint will not audit them"))
    for rel, cls in sorted(classes.items()):
        if cls == "enforced" and rel not in regions_by_file:
            findings.append((rel, 1, "S04",
                             "classified 'enforced' but contains no "
                             "SNOOPY_OBLIVIOUS region"))

    if args.format == "json":
        print(json.dumps({
            "tool": "check_oblivious_structure",
            "findings": [{"path": p, "line": l, "rule": r, "detail": d}
                         for p, l, r, d in findings],
        }, indent=2))
        return 1 if findings else 0
    for p, l, r, d in findings:
        print(f"{p}:{l}: {r}: {d}")
    if findings:
        print(f"check_oblivious_structure: {len(findings)} finding(s)")
        return 1
    n = sum(len(v) for v in regions_by_file.values())
    print(f"check_oblivious_structure: clean -- {n} region(s) in "
          f"{len(regions_by_file)} file(s), all paired, named, and enforced")
    return 0


if __name__ == "__main__":
    sys.exit(main())
