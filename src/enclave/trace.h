// Memory-access / communication trace recording for the abstract enclave model.
//
// The Snoopy paper (Appendix B) models the adversary as seeing a *trace*: the sequence
// of memory addresses an enclave touches plus the communication pattern between
// enclaves. Security is proven by showing the trace is simulatable from public
// information alone. Real SGX cannot surface its own trace, but this substitute enclave
// substrate can: oblivious algorithms emit logical access events here, and the test
// suite asserts that traces are *byte-identical* across different secret inputs with
// the same public parameters (tests/obliviousness_test.cc).
//
// Recording is off by default and costs one predictable branch per event when disabled,
// so production/bench paths are unaffected.

#ifndef SNOOPY_SRC_ENCLAVE_TRACE_H_
#define SNOOPY_SRC_ENCLAVE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace snoopy {

// Logical operation kinds appearing in a trace. The numeric values are part of the
// trace encoding and must stay stable.
enum class TraceOp : uint8_t {
  kCondSwap = 1,    // oblivious compare-and-swap of slots (a, b)
  kCondSet = 2,     // oblivious compare-and-set touching slot a (source b)
  kRead = 3,        // plain read of slot a
  kWrite = 4,       // plain write of slot a
  kBucketScan = 5,  // full scan of hash-table bucket a (tier b)
  kAppend = 6,      // append of b records at position a
  kMsgSend = 7,     // message of b bytes to endpoint a
  kMsgRecv = 8,     // message of b bytes from endpoint a
  kEpoch = 9,       // epoch boundary marker
  kDeclassify = 10,  // Secret<T>::Declassify at site a (FNV-1a of the site label)
};

struct TraceEvent {
  TraceOp op;
  uint64_t a;
  uint64_t b;

  friend bool operator==(const TraceEvent& x, const TraceEvent& y) {
    return x.op == y.op && x.a == y.a && x.b == y.b;
  }
};

// Process-global trace recorder. Not thread-safe by design: obliviousness tests run
// the algorithm under test single-threaded so the event order is deterministic.
class TraceRecorder {
 public:
  // Inline so that header-only users (obl/secret.h runs in every layer, including
  // snoopy_crypto which snoopy_enclave itself links) need no enclave objects.
  static TraceRecorder& Global() {
    static TraceRecorder recorder;
    return recorder;
  }

  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void Clear() { events_.clear(); }

  void Record(TraceOp op, uint64_t a, uint64_t b) {
    if (enabled_) {
      events_.push_back(TraceEvent{op, a, b});
    }
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  // FNV-1a digest of the event stream; two traces are equal iff (with overwhelming
  // probability) their digests are equal. Used by tests for cheap comparison.
  uint64_t Digest() const;

  // Human-readable rendering of the first `limit` events, for test failure messages.
  std::string ToString(size_t limit = 64) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

inline void TraceRecord(TraceOp op, uint64_t a, uint64_t b = 0) {
  TraceRecorder::Global().Record(op, a, b);
}

// True for events describing enclave-internal memory accesses, false for the network
// communication pattern (kMsgSend/kMsgRecv). The fault-recovery tests compare the
// memory subsequence on its own: retransmissions triggered by adversarial drops change
// the message pattern (trivially simulatable -- the adversary caused them), but must
// leave every enclave's memory trace byte-identical.
inline bool IsMemoryEvent(const TraceEvent& e) {
  return e.op != TraceOp::kMsgSend && e.op != TraceOp::kMsgRecv;
}

std::vector<TraceEvent> MemoryEvents(const std::vector<TraceEvent>& events);

// FNV-1a digest over only the memory events of `events` (same encoding as
// TraceRecorder::Digest).
uint64_t MemoryTraceDigest(const std::vector<TraceEvent>& events);

// RAII capture: clears the global recorder, enables it for the scope's lifetime, and
// leaves the captured events in place for inspection after destruction.
class TraceScope {
 public:
  TraceScope() {
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().Enable();
  }
  ~TraceScope() { TraceRecorder::Global().Disable(); }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  uint64_t Digest() const { return TraceRecorder::Global().Digest(); }
  std::vector<TraceEvent> Events() const { return TraceRecorder::Global().events(); }
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_ENCLAVE_TRACE_H_
