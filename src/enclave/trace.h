// Memory-access / communication trace recording for the abstract enclave model.
//
// The Snoopy paper (Appendix B) models the adversary as seeing a *trace*: the sequence
// of memory addresses an enclave touches plus the communication pattern between
// enclaves. Security is proven by showing the trace is simulatable from public
// information alone. Real SGX cannot surface its own trace, but this substitute enclave
// substrate can: oblivious algorithms emit logical access events here, and the test
// suite asserts that traces are *byte-identical* across different secret inputs with
// the same public parameters (tests/obliviousness_test.cc).
//
// Recording is off by default and costs one predictable branch per event when disabled,
// so production/bench paths are unaffected.
//
// Threading model: the recorder's main event stream is single-owner (the orchestrating
// thread). Worker threads NEVER touch it directly; instead each worker installs a
// TraceThreadBuffer redirecting its events into a thread-local sink, and the owner
// merges the sinks back with TraceAppendCurrent in a *deterministic* order keyed by
// public ids (load-balancer id, subORAM id, chunk index, recursion position). Because
// the merge keys are public and the per-sink event order is sequential, the merged
// trace of a parallel run is byte-identical to the sequential run's trace -- which is
// exactly what the trace-identity tests pin. See DESIGN.md "Threading model".

#ifndef SNOOPY_SRC_ENCLAVE_TRACE_H_
#define SNOOPY_SRC_ENCLAVE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace snoopy {

// Logical operation kinds appearing in a trace. The numeric values are part of the
// trace encoding and must stay stable.
enum class TraceOp : uint8_t {
  kCondSwap = 1,    // oblivious compare-and-swap of slots (a, b)
  kCondSet = 2,     // oblivious compare-and-set touching slot a (source b)
  kRead = 3,        // plain read of slot a
  kWrite = 4,       // plain write of slot a
  kBucketScan = 5,  // full scan of hash-table bucket a (tier b)
  kAppend = 6,      // append of b records at position a
  kMsgSend = 7,     // message of b bytes to endpoint a
  kMsgRecv = 8,     // message of b bytes from endpoint a
  kEpoch = 9,       // epoch boundary marker
  kDeclassify = 10,  // Secret<T>::Declassify at site a (FNV-1a of the site label)
  kParallelScan = 11,  // parallel region marker: a workers over b items (public only)
};

struct TraceEvent {
  TraceOp op;
  uint64_t a;
  uint64_t b;

  friend bool operator==(const TraceEvent& x, const TraceEvent& y) {
    return x.op == y.op && x.a == y.a && x.b == y.b;
  }
};

// Process-global trace recorder. The main stream (`events_`) is owned by the
// orchestrating thread; worker threads must route events through TraceThreadBuffer
// (below). `enabled_` is atomic so workers may read it while the owner never toggles
// it mid-parallel-region (Enable/Disable happen strictly outside parallel phases).
class TraceRecorder {
 public:
  // Inline so that header-only users (obl/secret.h runs in every layer, including
  // snoopy_crypto which snoopy_enclave itself links) need no enclave objects.
  static TraceRecorder& Global() {
    static TraceRecorder recorder;
    return recorder;
  }

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Clear() { events_.clear(); }

  // Records into the calling thread's sink: its installed TraceThreadBuffer if any,
  // else the recorder's main stream (owner thread only).
  void Record(TraceOp op, uint64_t a, uint64_t b) {
    if (!enabled()) {
      return;
    }
    if (std::vector<TraceEvent>* sink = tls_sink()) {
      sink->push_back(TraceEvent{op, a, b});
    } else {
      events_.push_back(TraceEvent{op, a, b});
    }
  }

  // Appends an already-collected event batch to the calling thread's current sink.
  // This is the merge half of the per-thread-buffer protocol: after joining workers,
  // the owner appends their buffers in a deterministic public-key order.
  void AppendCurrent(const std::vector<TraceEvent>& events) {
    if (!enabled() || events.empty()) {
      return;
    }
    std::vector<TraceEvent>& out = tls_sink() != nullptr ? *tls_sink() : events_;
    out.insert(out.end(), events.begin(), events.end());
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  // FNV-1a digest of the event stream; two traces are equal iff (with overwhelming
  // probability) their digests are equal. Used by tests for cheap comparison.
  uint64_t Digest() const;

  // Human-readable rendering of the first `limit` events, for test failure messages.
  std::string ToString(size_t limit = 64) const;

 private:
  friend class TraceThreadBuffer;

  // The calling thread's redirection target (null = the recorder's main stream).
  static std::vector<TraceEvent>*& tls_sink() {
    thread_local std::vector<TraceEvent>* sink = nullptr;
    return sink;
  }

  std::atomic<bool> enabled_{false};
  std::vector<TraceEvent> events_;
};

inline void TraceRecord(TraceOp op, uint64_t a, uint64_t b = 0) {
  TraceRecorder::Global().Record(op, a, b);
}

// Appends `events` to the calling thread's current trace sink (see
// TraceRecorder::AppendCurrent). No-op when recording is disabled.
inline void TraceAppendCurrent(const std::vector<TraceEvent>& events) {
  TraceRecorder::Global().AppendCurrent(events);
}

// RAII redirection of the calling thread's trace events into `sink` (a plain vector
// owned by the caller; no locking -- each sink belongs to exactly one thread at a
// time). Nests: the previous sink is restored on destruction, so recursive parallel
// algorithms (bitonic sort halves) can stack buffers. Cheap when recording is
// disabled: Record() checks the enabled flag before consulting the sink.
class TraceThreadBuffer {
 public:
  explicit TraceThreadBuffer(std::vector<TraceEvent>* sink)
      : prev_(TraceRecorder::tls_sink()) {
    TraceRecorder::tls_sink() = sink;
  }
  ~TraceThreadBuffer() { TraceRecorder::tls_sink() = prev_; }

  TraceThreadBuffer(const TraceThreadBuffer&) = delete;
  TraceThreadBuffer& operator=(const TraceThreadBuffer&) = delete;

 private:
  std::vector<TraceEvent>* prev_;
};

// True for events describing enclave-internal memory accesses, false for the network
// communication pattern (kMsgSend/kMsgRecv). The fault-recovery tests compare the
// memory subsequence on its own: retransmissions triggered by adversarial drops change
// the message pattern (trivially simulatable -- the adversary caused them), but must
// leave every enclave's memory trace byte-identical.
inline bool IsMemoryEvent(const TraceEvent& e) {
  return e.op != TraceOp::kMsgSend && e.op != TraceOp::kMsgRecv;
}

std::vector<TraceEvent> MemoryEvents(const std::vector<TraceEvent>& events);

// FNV-1a digest over only the memory events of `events` (same encoding as
// TraceRecorder::Digest).
uint64_t MemoryTraceDigest(const std::vector<TraceEvent>& events);

// Non-vacuous byte-for-byte trace equality: two *empty* traces compare UNEQUAL. An
// empty trace means recording was off or the events were suppressed, and a
// trace-identity test passing on empty-vs-empty proves nothing -- parallel paths that
// once dropped their events made exactly that mistake. Use this (not ==) whenever the
// assertion is "these two runs leak the same thing".
inline bool NonVacuousTraceEq(const std::vector<TraceEvent>& x,
                              const std::vector<TraceEvent>& y) {
  return !x.empty() && !y.empty() && x == y;
}

// RAII capture: clears the global recorder, enables it for the scope's lifetime, and
// leaves the captured events in place for inspection after destruction.
class TraceScope {
 public:
  TraceScope() {
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().Enable();
  }
  ~TraceScope() { TraceRecorder::Global().Disable(); }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  uint64_t Digest() const { return TraceRecorder::Global().Digest(); }
  std::vector<TraceEvent> Events() const { return TraceRecorder::Global().events(); }
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_ENCLAVE_TRACE_H_
