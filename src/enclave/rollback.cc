#include "src/enclave/rollback.h"

#include <cstring>
#include <stdexcept>

namespace snoopy {

const char* UnsealStatusName(UnsealStatus status) {
  switch (status) {
    case UnsealStatus::kOk:
      return "fresh";
    case UnsealStatus::kRollback:
      return "a rolled-back replay";
    case UnsealStatus::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

uint64_t MonotonicCounterService::Create() {
  counters_.push_back(0);
  return counters_.size() - 1;
}

uint64_t MonotonicCounterService::Increment(uint64_t id) {
  if (id >= counters_.size()) {
    throw std::out_of_range("unknown monotonic counter");
  }
  return ++counters_[id];
}

uint64_t MonotonicCounterService::Read(uint64_t id) const {
  if (id >= counters_.size()) {
    throw std::out_of_range("unknown monotonic counter");
  }
  return counters_[id];
}

std::vector<uint8_t> SealedStore::Seal(uint64_t counter_id, std::span<const uint8_t> payload) {
  const uint64_t version = counters_->Increment(counter_id);
  // Blob layout: version(8) | AEAD(payload) with the version as AAD + nonce, so a blob
  // cannot be re-labelled with a different version without failing authentication.
  uint8_t version_bytes[8];
  std::memcpy(version_bytes, &version, 8);
  const std::vector<uint8_t> sealed =
      aead_.Seal(Aead::CounterNonce(version, /*channel=*/0x5ea1),
                 std::span<const uint8_t>(version_bytes, 8), payload);
  std::vector<uint8_t> blob(8 + sealed.size());
  std::memcpy(blob.data(), version_bytes, 8);
  std::memcpy(blob.data() + 8, sealed.data(), sealed.size());
  return blob;
}

UnsealStatus SealedStore::Unseal(uint64_t counter_id, std::span<const uint8_t> blob,
                                 std::vector<uint8_t>* payload_out) const {
  if (blob.size() < 8 + Aead::kTagBytes) {
    return UnsealStatus::kCorrupt;
  }
  uint64_t version = 0;
  std::memcpy(&version, blob.data(), 8);
  std::vector<uint8_t> payload;
  const bool ok = aead_.Open(Aead::CounterNonce(version, 0x5ea1),
                             std::span<const uint8_t>(blob.data(), 8),
                             std::span<const uint8_t>(blob.data() + 8, blob.size() - 8),
                             payload);
  if (!ok) {
    return UnsealStatus::kCorrupt;
  }
  if (version != counters_->Read(counter_id)) {
    // Authentic snapshot, but superseded: the host replayed old state.
    return UnsealStatus::kRollback;
  }
  if (payload_out != nullptr) {
    *payload_out = std::move(payload);
  }
  return UnsealStatus::kOk;
}

}  // namespace snoopy
