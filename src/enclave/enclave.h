// The abstract enclave harness ("F_Enc" in the paper's Appendix B).
//
// The paper models a DAG of enclaves with two operations: Load(P), which instantiates
// a program on a network of enclaves via attestation, and Execute(E, in), which runs
// the program and yields its output *plus a trace* of memory accesses and messages.
// This class realizes that interface for our substitute substrate: each Enclave owns an
// attested identity, sealed state, and contributes its events to the global trace
// recorder. Higher layers (load balancers, subORAMs, baseline ORAM servers) subclass
// or embed it.

#ifndef SNOOPY_SRC_ENCLAVE_ENCLAVE_H_
#define SNOOPY_SRC_ENCLAVE_ENCLAVE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/crypto/aead.h"
#include "src/enclave/attestation.h"
#include "src/enclave/trace.h"

namespace snoopy {

class Enclave {
 public:
  // Loads `program` (a name standing in for the enclave binary) and produces an
  // attested instance. The quote binds the instance id so peers can address it.
  Enclave(std::string_view program, uint64_t instance_id);

  const Measurement& measurement() const { return measurement_; }
  const AttestationQuote& quote() const { return quote_; }
  uint64_t instance_id() const { return instance_id_; }
  const std::string& program() const { return program_; }

  // Verifies a peer's quote and derives the shared channel key. Throws
  // std::runtime_error if the quote does not verify (a forged enclave).
  Aead::Key EstablishChannel(const AttestationQuote& peer_quote) const;

 private:
  std::string program_;
  uint64_t instance_id_;
  Measurement measurement_;
  AttestationQuote quote_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_ENCLAVE_ENCLAVE_H_
