#include "src/enclave/trace.h"

#include <sstream>

namespace snoopy {

uint64_t TraceRecorder::Digest() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const TraceEvent& e : events_) {
    mix(static_cast<uint64_t>(e.op));
    mix(e.a);
    mix(e.b);
  }
  return h;
}

std::vector<TraceEvent> MemoryEvents(const std::vector<TraceEvent>& events) {
  std::vector<TraceEvent> out;
  out.reserve(events.size());
  for (const TraceEvent& e : events) {
    if (IsMemoryEvent(e)) {
      out.push_back(e);
    }
  }
  return out;
}

uint64_t MemoryTraceDigest(const std::vector<TraceEvent>& events) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const TraceEvent& e : events) {
    if (!IsMemoryEvent(e)) {
      continue;
    }
    mix(static_cast<uint64_t>(e.op));
    mix(e.a);
    mix(e.b);
  }
  return h;
}

std::string TraceRecorder::ToString(size_t limit) const {
  static constexpr const char* kNames[] = {"?",      "cswap",  "cset", "read", "write",
                                           "bucket", "append", "send", "recv", "epoch",
                                           "declassify", "pscan"};
  std::ostringstream out;
  out << events_.size() << " events:";
  const size_t n = events_.size() < limit ? events_.size() : limit;
  for (size_t i = 0; i < n; ++i) {
    const TraceEvent& e = events_[i];
    const auto idx = static_cast<size_t>(e.op);
    out << ' ' << (idx < 12 ? kNames[idx] : "?") << '(' << e.a << ',' << e.b << ')';
  }
  if (events_.size() > limit) {
    out << " ...";
  }
  return out.str();
}

}  // namespace snoopy
