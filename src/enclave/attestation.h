// Simulated remote attestation.
//
// Snoopy establishes every communication channel "using remote attestation so that
// clients are confident that they are interacting with legitimate enclaves running
// Snoopy" (paper section 3.1). Real SGX attestation chains a CPU-held key up to the
// Intel Attestation Service; this substitute keeps the same *interface* -- measure a
// program, quote it, verify the quote, then derive a shared channel key -- backed by a
// process-global provisioning secret standing in for the hardware root of trust. The
// substitution preserves the property the rest of the system relies on: only parties
// holding a quote for an expected measurement obtain the channel key.

#ifndef SNOOPY_SRC_ENCLAVE_ATTESTATION_H_
#define SNOOPY_SRC_ENCLAVE_ATTESTATION_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "src/crypto/aead.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha256.h"

namespace snoopy {

using Measurement = Sha256::Digest;

struct AttestationQuote {
  Measurement measurement;   // hash of the enclave program (MRENCLAVE analogue)
  Mac256 report_data;        // caller-chosen binding data (e.g. a public key)
  Mac256 signature;          // MAC under the attestation root (IAS signature analogue)
};

class AttestationService {
 public:
  // Measures a named program. In a real deployment this is the enclave build hash.
  static Measurement Measure(std::string_view program);

  static AttestationQuote Quote(const Measurement& measurement, const Mac256& report_data);

  static bool Verify(const AttestationQuote& quote);

  // Derives a shared AEAD key between two attested parties. Both sides compute the
  // same key from the (sorted) pair of measurements; stands in for the DH exchange that
  // normally rides on report_data.
  static Aead::Key ChannelKey(const Measurement& a, const Measurement& b);
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_ENCLAVE_ATTESTATION_H_
