// Rollback protection (paper section 9).
//
// Enclaves seal state to untrusted storage across restarts; a malicious host can
// replay an *older* sealed blob ("rollback attack"). The paper proposes the standard
// defense: bind every sealed snapshot to a trusted monotonic counter (SGX counters or
// a ROTE-style quorum) and refuse snapshots whose embedded counter is stale. Snoopy
// only needs one counter bump per epoch, so the (slow) counter is off the hot path.
//
// MonotonicCounterService simulates the trusted counter provider; SealedStore produces
// AEAD-sealed, counter-bound snapshots and classifies restore attempts as fresh,
// rolled-back, or corrupted. SubOram integrates via SealState/RestoreState.

#ifndef SNOOPY_SRC_ENCLAVE_ROLLBACK_H_
#define SNOOPY_SRC_ENCLAVE_ROLLBACK_H_

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/crypto/aead.h"

namespace snoopy {

// Stand-in for SGX monotonic counters / a ROTE quorum: strictly increasing counters
// that the untrusted host cannot wind back.
class MonotonicCounterService {
 public:
  // Creates a counter starting at 0 and returns its id.
  uint64_t Create();
  uint64_t Increment(uint64_t id);
  uint64_t Read(uint64_t id) const;

 private:
  std::vector<uint64_t> counters_;
};

enum class UnsealStatus {
  kOk,        // authentic and fresh
  kRollback,  // authentic but bound to a stale counter value: replay attack
  kCorrupt,   // failed authentication
};

// Stable names for error messages and test output.
const char* UnsealStatusName(UnsealStatus status);

// Surfaced (never swallowed) when restore-after-crash is handed a superseded or
// tampered snapshot: the host is mounting a rollback attack, and serving requests
// from stale state would break linearizability, so the component refuses to start.
class RollbackDetectedError : public std::runtime_error {
 public:
  RollbackDetectedError(const std::string& component, UnsealStatus status)
      : std::runtime_error("refusing to restore " + component + ": snapshot is " +
                           UnsealStatusName(status)),
        status_(status) {}

  UnsealStatus status() const { return status_; }

 private:
  UnsealStatus status_;
};

class SealedStore {
 public:
  SealedStore(const Aead::Key& sealing_key, MonotonicCounterService* counters)
      : aead_(sealing_key), counters_(counters) {}

  // Seals `payload`, bumping the counter so this snapshot supersedes all others.
  std::vector<uint8_t> Seal(uint64_t counter_id, std::span<const uint8_t> payload);

  // Verifies and decrypts a snapshot; detects replays of superseded snapshots.
  UnsealStatus Unseal(uint64_t counter_id, std::span<const uint8_t> blob,
                      std::vector<uint8_t>* payload_out) const;

 private:
  Aead aead_;
  MonotonicCounterService* counters_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_ENCLAVE_ROLLBACK_H_
