#include "src/enclave/epc.h"

namespace snoopy {

double EpcModel::ScanSeconds(uint64_t working_set_bytes, uint64_t scanned_bytes,
                             bool use_host_loader) const {
  const double resident = static_cast<double>(scanned_bytes) * config_.resident_ns_per_byte;
  if (Fits(working_set_bytes)) {
    return resident * 1e-9;
  }
  // Fraction of the scan that misses the EPC. A full sequential scan of a working set
  // larger than the cache leaves the tail resident; everything else must come from
  // untrusted memory.
  const double resident_fraction = static_cast<double>(config_.usable_epc_bytes) /
                                   static_cast<double>(working_set_bytes);
  const double miss_bytes = static_cast<double>(scanned_bytes) * (1.0 - resident_fraction);
  double miss_ns;
  if (use_host_loader) {
    miss_ns = miss_bytes * config_.host_loader_ns_per_byte;
  } else {
    const double pages = miss_bytes / static_cast<double>(config_.page_bytes);
    miss_ns = pages * config_.page_fault_ns;
  }
  return (resident + miss_ns) * 1e-9;
}

}  // namespace snoopy
