#include "src/enclave/epc.h"

namespace snoopy {

double EpcModel::ScanSeconds(uint64_t working_set_bytes, uint64_t scanned_bytes,
                             bool use_host_loader, EpcScanStats* stats) const {
  const double resident = static_cast<double>(scanned_bytes) * config_.resident_ns_per_byte;
  if (Fits(working_set_bytes)) {
    if (stats != nullptr) {
      *stats = EpcScanStats{};
      stats->bytes_resident = scanned_bytes;
    }
    return resident * 1e-9;
  }
  // Fraction of the scan that misses the EPC. A full sequential scan of a working set
  // larger than the cache leaves the tail resident; everything else must come from
  // untrusted memory.
  const double resident_fraction = static_cast<double>(config_.usable_epc_bytes) /
                                   static_cast<double>(working_set_bytes);
  const double miss_bytes = static_cast<double>(scanned_bytes) * (1.0 - resident_fraction);
  double miss_ns;
  uint64_t pages_faulted = 0;
  if (use_host_loader) {
    miss_ns = miss_bytes * config_.host_loader_ns_per_byte;
  } else {
    const double pages = miss_bytes / static_cast<double>(config_.page_bytes);
    pages_faulted = static_cast<uint64_t>(pages + 0.5);
    miss_ns = pages * config_.page_fault_ns;
  }
  if (stats != nullptr) {
    *stats = EpcScanStats{};
    stats->pages_faulted = pages_faulted;
    stats->bytes_streamed = static_cast<uint64_t>(miss_bytes + 0.5);
    stats->bytes_resident = scanned_bytes - stats->bytes_streamed;
  }
  return (resident + miss_ns) * 1e-9;
}

}  // namespace snoopy
