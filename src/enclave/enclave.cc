#include "src/enclave/enclave.h"

#include <cstring>
#include <stdexcept>

namespace snoopy {

Enclave::Enclave(std::string_view program, uint64_t instance_id)
    : program_(program), instance_id_(instance_id) {
  measurement_ = AttestationService::Measure(program_);
  Mac256 report_data{};
  std::memcpy(report_data.data(), &instance_id_, sizeof(instance_id_));
  quote_ = AttestationService::Quote(measurement_, report_data);
}

Aead::Key Enclave::EstablishChannel(const AttestationQuote& peer_quote) const {
  if (!AttestationService::Verify(peer_quote)) {
    throw std::runtime_error("attestation failed: peer quote does not verify");
  }
  return AttestationService::ChannelKey(measurement_, peer_quote.measurement);
}

}  // namespace snoopy
