#include "src/enclave/attestation.h"

#include <algorithm>
#include <cstring>

#include "src/obl/kernels.h"

namespace snoopy {

namespace {

// Process-global provisioning secret: the stand-in for the hardware root of trust.
const std::array<uint8_t, 32>& RootSecret() {
  static const std::array<uint8_t, 32> kRoot = {
      0x53, 0x6e, 0x6f, 0x6f, 0x70, 0x79, 0x2d, 0x72, 0x6f, 0x6f, 0x74,
      0x2d, 0x6f, 0x66, 0x2d, 0x74, 0x72, 0x75, 0x73, 0x74, 0x00, 0x01,
      0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b};
  return kRoot;
}

Mac256 SignQuote(const Measurement& m, const Mac256& report_data) {
  std::array<uint8_t, 64> msg;
  std::memcpy(msg.data(), m.data(), 32);
  std::memcpy(msg.data() + 32, report_data.data(), 32);
  return HmacSha256(std::span<const uint8_t>(RootSecret().data(), 32),
                    std::span<const uint8_t>(msg.data(), msg.size()));
}

}  // namespace

Measurement AttestationService::Measure(std::string_view program) {
  return Sha256::Hash(program.data(), program.size());
}

AttestationQuote AttestationService::Quote(const Measurement& measurement,
                                           const Mac256& report_data) {
  return AttestationQuote{measurement, report_data, SignQuote(measurement, report_data)};
}

bool AttestationService::Verify(const AttestationQuote& quote) {
  const Mac256 expected = SignQuote(quote.measurement, quote.report_data);
  return KernelEqualBytes(expected.data(), quote.signature.data(), expected.size());
}

Aead::Key AttestationService::ChannelKey(const Measurement& a, const Measurement& b) {
  const Measurement* lo = &a;
  const Measurement* hi = &b;
  if (std::lexicographical_compare(hi->begin(), hi->end(), lo->begin(), lo->end())) {
    std::swap(lo, hi);
  }
  std::array<uint8_t, 64> msg;
  std::memcpy(msg.data(), lo->data(), 32);
  std::memcpy(msg.data() + 32, hi->data(), 32);
  const Mac256 k = HmacSha256(std::span<const uint8_t>(RootSecret().data(), 32),
                              std::span<const uint8_t>(msg.data(), msg.size()));
  Aead::Key key;
  std::memcpy(key.data(), k.data(), key.size());
  return key;
}

}  // namespace snoopy
