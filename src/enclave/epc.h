// EPC (Enclave Page Cache) paging cost model.
//
// Intel SGX v2.13 (what the paper deploys on, section 7) has a small protected-memory
// region; enclave pages beyond it are paged in on access at high cost. Snoopy's
// subORAM scans its whole partition every epoch, so paging dominates once the
// partition exceeds the EPC -- that is the jump between 2^15 and 2^20 objects in
// Figure 12. The paper mitigates (but does not eliminate) the cost with a host loader
// thread that streams encrypted objects through a shared buffer (section 7).
//
// This model computes the *simulated* time of a linear scan over a working set, in
// either mode, and is used by the cluster cost model and the figure harnesses.

#ifndef SNOOPY_SRC_ENCLAVE_EPC_H_
#define SNOOPY_SRC_ENCLAVE_EPC_H_

#include <cstdint>

namespace snoopy {

struct EpcConfig {
  // Usable EPC: 256 MB raw minus SGX metadata overhead (~93.5 MB usable is typical for
  // 128 MB parts; DCsv2 exposes 256 MB of which ~188 MB is usable).
  uint64_t usable_epc_bytes = 188ull * 1024 * 1024;
  uint64_t page_bytes = 4096;
  // Cost of an EPC page fault + eviction + crypto, per page.
  double page_fault_ns = 12000.0;
  // Cost per byte when streaming through the host-loader shared buffer: one AES-GCM
  // decryption plus a copy, no enclave exits.
  double host_loader_ns_per_byte = 0.55;
  // Baseline in-EPC processing cost per byte touched by a scan.
  double resident_ns_per_byte = 0.25;
};

// Paging telemetry for one modelled scan: how much of the traffic was served from
// resident EPC, how much was streamed (host loader) or faulted in (demand paging).
// Working-set and scan sizes are public deployment parameters (Figure 12's x-axis),
// so these stats are safe to export.
struct EpcScanStats {
  uint64_t pages_faulted = 0;   // demand-paging mode only; 0 under the host loader
  uint64_t bytes_streamed = 0;  // bytes served from outside the EPC (either mode)
  uint64_t bytes_resident = 0;  // bytes served at resident speed
};

class EpcModel {
 public:
  explicit EpcModel(const EpcConfig& config = EpcConfig{}) : config_(config) {}

  const EpcConfig& config() const { return config_; }

  bool Fits(uint64_t working_set_bytes) const {
    return working_set_bytes <= config_.usable_epc_bytes;
  }

  // Simulated seconds to scan `scanned_bytes` once, with the given resident working
  // set. If the working set fits in EPC the scan runs at resident speed; otherwise the
  // out-of-EPC portion is either page-faulted in (use_host_loader == false) or streamed
  // through the shared buffer (use_host_loader == true, the paper's optimization).
  // `stats`, when non-null, receives the paging breakdown for this scan.
  double ScanSeconds(uint64_t working_set_bytes, uint64_t scanned_bytes,
                     bool use_host_loader = true, EpcScanStats* stats = nullptr) const;

 private:
  EpcConfig config_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_ENCLAVE_EPC_H_
