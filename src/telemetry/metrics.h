// Leakage-safe telemetry: a process-wide metrics registry with counters, gauges,
// log-linear histograms (p50/p90/p99/p999, mergeable), and epoch-phase span timers.
//
// An oblivious store's telemetry must itself be non-leaking: a counter bumped on a
// secret-dependent path, or a histogram fed a secret value, is an access-pattern side
// channel exactly like a data-dependent branch (the failure mode trusted-processor
// ORAM hardening treats as fatal). This layer therefore enforces, by construction:
//
//   1. Only PUBLIC values are recordable. Every record method takes plain
//      integral/double types; overloads for Secret<T> and SecretBool are `= delete`d,
//      so `counter.Increment(secret)` is a compile error, not a silent leak.
//   2. Recording never touches the enclave trace. No telemetry method calls
//      TraceRecord; tests/telemetry_test.cc pins trace-identity with metrics on/off.
//   3. Telemetry calls inside SNOOPY_OBLIVIOUS regions are flagged by tools/ct_lint.py
//      (rule CT009) unless the call name is annotated `ct-public` for the region.
//
// What is public (and therefore recordable): epoch counts and durations, the public
// batch size f(R, S) (Theorem 3 -- its whole point is to be safe to reveal), wire
// byte/message counts the network adversary sees anyway, retry/timeout/recovery
// events (the adversary caused them), and simulator outputs. See README.md
// "Observability" for the full leakage model.
//
// The library is dependency-free (no net/, obl/, enclave/ includes); Secret types are
// forward-declared only to delete their overloads. Span timers take the time source
// as a callable so the functional deployment can run them off steady_clock and the
// fault-injection deployment off the deterministic VirtualClock.
//
// Thread safety: the parallel epoch executor records metrics from worker threads, so
// every metric object and the registry are individually thread-safe — counters and
// gauges are atomics, histograms and the registry map are mutex-guarded, and Get*
// still returns stable references (entries are never destroyed). SpanTimer instances
// remain single-owner (create/Stop on one thread); only the histogram they record
// into is shared.

#ifndef SNOOPY_SRC_TELEMETRY_METRICS_H_
#define SNOOPY_SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace snoopy {

// Forward declarations so the deleted overloads below name the real taint types
// (src/obl/secret.h) without making telemetry depend on the oblivious layer.
template <typename T>
class Secret;
class SecretBool;

// A monotonically increasing event count. Public values only. Thread-safe (atomic;
// relaxed ordering — counts are read only at quiescent points, never used to
// synchronize other memory).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  // Secrets are unrecordable by construction (compile error, see header comment).
  template <typename T>
  void Increment(Secret<T>) = delete;
  void Increment(SecretBool) = delete;

 private:
  std::atomic<uint64_t> value_{0};
};

// A point-in-time measurement (last value wins). Public values only. Thread-safe
// (atomic double; Add is a CAS loop so concurrent adders never lose updates).
class Gauge {
 public:
  void SetValue(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  template <typename T>
  void SetValue(Secret<T>) = delete;
  void SetValue(SecretBool) = delete;
  template <typename T>
  void Add(Secret<T>) = delete;
  void Add(SecretBool) = delete;

 private:
  std::atomic<double> value_{0};
};

// Log-linear histogram over positive doubles: buckets cover [2^e, 2^(e+1)) for
// exponents in [kMinExp, kMaxExp], each split into kSubBuckets linear sub-buckets
// (~6% relative quantile error). Bucket 0 catches zero/negative/underflow. Bucket
// counts are doubles so the simulator can spread a uniform mass across buckets in
// O(buckets) instead of O(requests) (ObserveUniform), keeping the epoch-pipeline
// simulation O(L + S) per epoch at any load. Histograms merge bucket-wise.
class Histogram {
 public:
  static constexpr int kSubBuckets = 16;
  static constexpr int kMinExp = -40;  // ~9.1e-13: sub-picosecond / sub-byte
  static constexpr int kMaxExp = 40;   // ~1.1e12: >30 years in seconds, ~1 TB in bytes
  static constexpr int kNumBuckets = 1 + (kMaxExp - kMinExp + 1) * kSubBuckets;

  Histogram() : counts_(kNumBuckets, 0.0) {}

  // Copyable so value-type holders (sim ClusterMetrics) keep working; the mutex is
  // per-instance and never copied.
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void Observe(double v);
  // Spreads `count` observations uniformly over [lo, hi] across the overlapped
  // buckets. O(buckets intersected), not O(count).
  void ObserveUniform(double lo, double hi, double count);
  void Merge(const Histogram& other);

  template <typename T>
  void Observe(Secret<T>) = delete;
  void Observe(SecretBool) = delete;

  double count() const { std::lock_guard<std::mutex> g(mu_); return count_; }
  double sum() const { std::lock_guard<std::mutex> g(mu_); return sum_; }
  double min() const { std::lock_guard<std::mutex> g(mu_); return count_ > 0 ? min_ : 0; }
  double max() const { std::lock_guard<std::mutex> g(mu_); return count_ > 0 ? max_ : 0; }
  double mean() const {
    std::lock_guard<std::mutex> g(mu_);
    return count_ > 0 ? sum_ / count_ : 0;
  }

  // q in [0, 1]; linear interpolation inside the landing bucket, clamped to the
  // observed [min, max]. Returns 0 on an empty histogram.
  double Quantile(double q) const;

  void Reset();

  // Bucket geometry (exposed for tests and renderers).
  static int BucketIndex(double v);
  static double BucketLowerEdge(int index);
  static double BucketUpperEdge(int index);
  std::vector<double> bucket_counts() const {
    std::lock_guard<std::mutex> g(mu_);
    return counts_;
  }

 private:
  double QuantileLocked(double q) const;  // requires mu_ held

  mutable std::mutex mu_;
  std::vector<double> counts_;
  double count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

using MetricLabels = std::map<std::string, std::string>;

// Process-wide metric registry. Get* methods create on first use and return stable
// references: Reset() zeroes values in place (it never destroys metric objects), so
// instrumentation may cache the returned references across resets. The entry map is
// mutex-guarded, so Get*/Has/Render/Reset are safe to call from concurrent workers;
// the returned metric objects are themselves thread-safe (above).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name, const MetricLabels& labels = {});
  Gauge& GetGauge(const std::string& name, const MetricLabels& labels = {});
  Histogram& GetHistogram(const std::string& name, const MetricLabels& labels = {});

  // True if a metric with this exact name+labels already exists.
  bool Has(const std::string& name, const MetricLabels& labels = {}) const;
  size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return entries_.size();
  }

  // Prometheus text exposition: counters and gauges as samples, histograms as
  // summaries (quantile series plus _sum/_count).
  std::string RenderPrometheus() const;
  // Machine-readable export: {"metrics": [{name, labels, type, ...}, ...]}.
  std::string RenderJson() const;

  // Zeroes every metric in place; references handed out by Get* stay valid.
  void Reset();

 private:
  struct Entry {
    std::string name;
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& GetEntry(const std::string& name, const MetricLabels& labels);  // requires mu_

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // keyed by name{k="v",...}
};

// RAII phase timer: measures a span of (virtual or wall) time and records the
// elapsed seconds into a histogram on Stop()/destruction. The time source is a
// callable returning seconds so the same span code runs off steady_clock in the
// functional deployment and off the deterministic VirtualClock under fault
// injection. A null histogram makes the span a no-op (the disabled path costs two
// null checks and no clock reads).
//
// Nesting is by convention: open one root span per epoch (snoopy_epoch_seconds) and
// one child span per phase (snoopy_epoch_phase_seconds{phase=...}) inside its
// lifetime; the registry's label structure carries the hierarchy.
class SpanTimer {
 public:
  using NowFn = std::function<double()>;

  SpanTimer(Histogram* histogram, NowFn now_s)
      : histogram_(histogram), now_s_(std::move(now_s)) {
    if (histogram_ != nullptr && now_s_) {
      start_s_ = now_s_();
    }
  }
  ~SpanTimer() { Stop(); }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  // Records once; further calls are no-ops. Returns the elapsed seconds (0 when
  // disabled).
  double Stop();

  // Seconds since the process-wide steady_clock epoch; the default span time source
  // outside fault injection.
  static double SteadyNowSeconds();

 private:
  Histogram* histogram_;
  NowFn now_s_;
  double start_s_ = 0;
  bool stopped_ = false;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_TELEMETRY_METRICS_H_
