// Leakage-safe hierarchical span tracing for the epoch pipeline.
//
// The tracer records *spans* — named, categorized intervals — at four levels of the
// public epoch schedule: epoch -> phase (lb_prepare / suboram_execute /
// response_match / seal / repair) -> per-LB / per-subORAM task -> sort tile. Every
// field of every span derives only from public facts (the phase structure, public
// task ids, the padded batch size f(R, S), worker/thread counts, wall-clock time);
// the same three mechanisms that keep the metrics layer non-leaking apply here:
//
//   1. Only PUBLIC values are recordable: span arguments take plain uint64_t, and
//      overloads for Secret<T> / SecretBool are `= delete`d, so attaching a secret
//      to a span is a compile error, not a silent leak.
//   2. Recording never touches the enclave trace (no TraceRecord calls anywhere in
//      this layer); tests/tracing_test.cc pins oblivious-trace identity with
//      tracing on vs. off.
//   3. Tracing calls inside SNOOPY_OBLIVIOUS regions are flagged by tools/ct_lint.py
//      (rule CT010) unless the region's `ct-public:` line names the call,
//      vouching that the span's timing and arguments are functions of public state.
//
// Determinism: worker threads never write the shared span stream directly. Inside
// the parallel epoch executor each *task* gets its own SpanRingBuffer installed as
// the thread's TLS sink (TracerThreadBuffer, mirroring src/enclave/trace.h's
// TraceThreadBuffer); the orchestrator merges the rings back in public task-id
// order after the join, so the span *sequence* is identical at any epoch_threads.
// Span timestamps come from a pluggable clock (steady_clock by default, the
// deterministic VirtualClock under fault injection).
//
// The ring buffers are single-writer lock-free: the owning worker pushes with plain
// stores and publishes with one atomic release per event; the ProfilingSampler
// reads only the published size (acquire), and the merge happens after the worker
// quiesced. A full ring drops (and counts) rather than blocks or reallocates, so
// tracing can never add a lock or an allocation to a worker's steady state.
//
// Everything callable from oblivious headers (Global(), Record, TraceSpan) is
// inline so snoopy_obl users need no extra objects beyond snoopy_telemetry, which
// stays dependency-free (Secret types are forward-declared only for the deleted
// overloads).

#ifndef SNOOPY_SRC_TELEMETRY_TRACING_H_
#define SNOOPY_SRC_TELEMETRY_TRACING_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/telemetry/metrics.h"

namespace snoopy {

// Forward declarations so the deleted overloads below name the real taint types
// (src/obl/secret.h) without making telemetry depend on the oblivious layer.
template <typename T>
class Secret;
class SecretBool;

// Public sentinel for "this span is not one of N indexed tasks".
inline constexpr uint64_t kTraceNoTaskId = ~uint64_t{0};

// One closed span. `cat` and `name` must be string literals (stored by pointer;
// the exporter assumes static lifetime). Up to four named public integer
// arguments; a null arg name means the slot is unused.
struct SpanEvent {
  static constexpr int kMaxArgs = 5;

  const char* cat = "";
  const char* name = "";
  uint64_t task_id = kTraceNoTaskId;
  uint64_t track = 0;  // exporter thread lane: 0 = orchestrator, 1 + w = worker w
  double start_s = 0;
  double end_s = 0;
  const char* arg_names[kMaxArgs] = {};
  uint64_t arg_values[kMaxArgs] = {};
};

// Fixed-capacity single-writer span buffer. The owner thread pushes; anyone may
// read `size()` concurrently (it is published with release stores); the event
// payloads themselves are read only after the writer has quiesced (the merge
// point). Full means drop-and-count, never block or grow.
class SpanRingBuffer {
 public:
  explicit SpanRingBuffer(size_t capacity = kDefaultCapacity)
      : events_(capacity) {}

  SpanRingBuffer(const SpanRingBuffer&) = delete;
  SpanRingBuffer& operator=(const SpanRingBuffer&) = delete;

  bool Push(const SpanEvent& e) {
    const size_t n = published_.load(std::memory_order_relaxed);
    if (n >= events_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    events_[n] = e;
    published_.store(n + 1, std::memory_order_release);
    return true;
  }

  size_t size() const { return published_.load(std::memory_order_acquire); }
  size_t capacity() const { return events_.size(); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Valid only after the writing thread has quiesced (post-join merge).
  const SpanEvent& at(size_t i) const { return events_[i]; }

  void Clear() {
    published_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
  }

  static constexpr size_t kDefaultCapacity = 4096;

 private:
  std::vector<SpanEvent> events_;
  std::atomic<size_t> published_{0};
  std::atomic<uint64_t> dropped_{0};
};

namespace tracing_internal {
// TLS sink pointer: when set, Record() goes to this ring instead of the shared
// stream (installed per *task* by TracerThreadBuffer so the merge order is the
// public task order, not the scheduling order).
inline thread_local SpanRingBuffer* tls_span_sink = nullptr;
}  // namespace tracing_internal

// The span collector. One process-global instance (Global(), configured by the
// SNOOPY_TRACE / SNOOPY_TRACE_OUT environment variables); tests may use private
// instances. Thread-safe: enabled/detail are atomics read on every span open, the
// shared stream is mutex-guarded, and worker-side recording goes through the
// lock-free TLS rings.
class Tracer {
 public:
  using NowFn = std::function<double()>;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Process-global tracer. First use reads the environment:
  //   SNOOPY_TRACE=1|2      enable at detail 1 (tasks) or 2 (adds sort tiles)
  //   SNOOPY_TRACE_OUT=path write a Chrome trace-event / Perfetto JSON file at
  //                         process exit (implies detail 1 when SNOOPY_TRACE unset)
  static Tracer& Global();

  void Enable(int detail = 1) {
    detail_.store(detail < 1 ? 1 : detail, std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_release);
  }
  void Disable() { enabled_.store(false, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }
  int detail() const { return detail_.load(std::memory_order_relaxed); }

  // Replace the time source (default: SpanTimer::SteadyNowSeconds; fault-injection
  // deployments pass the VirtualClock). Must be called while no spans are open —
  // the clock is read unlocked on the span hot path.
  void set_clock(NowFn now_s) { now_s_ = std::move(now_s); }
  double NowSeconds() const {
    return now_s_ ? now_s_() : SpanTimer::SteadyNowSeconds();
  }

  // Records a closed span: into the installed TLS ring if any, else the shared
  // stream (bounded; overflow drops and counts).
  void Record(const SpanEvent& e) {
    recorded_.fetch_add(1, std::memory_order_relaxed);
    if (SpanRingBuffer* sink = tracing_internal::tls_span_sink) {
      if (!sink->Push(e)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    std::lock_guard<std::mutex> g(mu_);
    if (events_.size() >= max_events_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events_.push_back(e);
  }

  // Appends a quiesced ring's events to the shared stream, preserving their order.
  // Callers append rings in public task-id order; that is what makes the merged
  // sequence independent of the worker schedule.
  void Append(const SpanRingBuffer& ring) {
    const size_t n = ring.size();
    dropped_.fetch_add(ring.dropped(), std::memory_order_relaxed);
    std::lock_guard<std::mutex> g(mu_);
    for (size_t i = 0; i < n; ++i) {
      if (events_.size() >= max_events_) {
        dropped_.fetch_add(n - i, std::memory_order_relaxed);
        return;
      }
      events_.push_back(ring.at(i));
    }
  }

  // Appends a quiesced ring into this thread's *current* sink — the installed TLS
  // ring if any, else the shared stream — preserving order. This is how nested
  // fork-join code (the blocked sort) merges child rings without bypassing an
  // enclosing per-task ring.
  void AppendCurrent(const SpanRingBuffer& ring) {
    if (SpanRingBuffer* sink = tracing_internal::tls_span_sink) {
      const size_t n = ring.size();
      dropped_.fetch_add(ring.dropped(), std::memory_order_relaxed);
      for (size_t i = 0; i < n; ++i) {
        if (!sink->Push(ring.at(i))) {
          dropped_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return;
    }
    Append(ring);
  }

  std::vector<SpanEvent> snapshot() const {
    std::lock_guard<std::mutex> g(mu_);
    return events_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return events_.size();
  }
  uint64_t spans_recorded() const { return recorded_.load(std::memory_order_relaxed); }
  uint64_t spans_dropped() const { return dropped_.load(std::memory_order_relaxed); }

  void Clear() {
    std::lock_guard<std::mutex> g(mu_);
    events_.clear();
    recorded_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
  }

  void set_max_events(size_t n) {
    std::lock_guard<std::mutex> g(mu_);
    max_events_ = n;
  }

  // Chrome trace-event / Perfetto JSON exporter (tracing.cc). Timestamps are
  // microseconds relative to the earliest span, one complete-event ("ph":"X") per
  // span, tracks mapped to tids. Loadable by chrome://tracing and ui.perfetto.dev.
  std::string RenderChromeTrace() const;
  bool WriteChromeTrace(const std::string& path) const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<int> detail_{1};
  NowFn now_s_;  // null = steady clock
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  size_t max_events_ = 1u << 18;
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
};

// tracing.cc: registered via atexit from Global() when SNOOPY_TRACE_OUT is set.
void TracerAtExitExport();

inline Tracer& Tracer::Global() {
  static Tracer* instance = [] {
    auto* t = new Tracer();
    const char* level = std::getenv("SNOOPY_TRACE");
    const char* out = std::getenv("SNOOPY_TRACE_OUT");
    if (level != nullptr && level[0] != '\0' && !(level[0] == '0' && level[1] == '\0')) {
      t->Enable(level[0] == '2' ? 2 : 1);
    } else if (out != nullptr && out[0] != '\0') {
      t->Enable(1);
    }
    if (out != nullptr && out[0] != '\0') {
      std::atexit(TracerAtExitExport);
    }
    return t;
  }();
  return *instance;
}

// RAII: routes this thread's span recording into `ring` (saving and restoring any
// enclosing sink, so nesting behaves). Install one per public task so the
// orchestrator can merge rings in task-id order. A null ring keeps the current
// sink — callers may pass null to make buffering conditional on tracing.
class TracerThreadBuffer {
 public:
  explicit TracerThreadBuffer(SpanRingBuffer* ring)
      : prev_(tracing_internal::tls_span_sink) {
    if (ring != nullptr) {
      tracing_internal::tls_span_sink = ring;
    }
  }
  ~TracerThreadBuffer() { tracing_internal::tls_span_sink = prev_; }

  TracerThreadBuffer(const TracerThreadBuffer&) = delete;
  TracerThreadBuffer& operator=(const TracerThreadBuffer&) = delete;

 private:
  SpanRingBuffer* prev_;
};

// RAII span: opens on construction, records one closed SpanEvent on End() or
// destruction. A null/disabled tracer makes the whole span a no-op (one branch,
// no clock reads). Arguments are public integers only; the Secret overloads are
// deleted so a secret-typed argument is a compile error (the lint rule CT010
// catches the *placement* of tracing calls in oblivious regions; the type system
// catches the *values*).
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* cat, const char* name,
            uint64_t task_id = kTraceNoTaskId, uint64_t track = 0)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr) {
    if (tracer_ != nullptr) {
      event_.cat = cat;
      event_.name = name;
      event_.task_id = task_id;
      event_.track = track;
      event_.start_s = tracer_->NowSeconds();
    }
  }
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Secret task ids are unrecordable by construction.
  template <typename T>
  TraceSpan(Tracer*, const char*, const char*, Secret<T>, uint64_t = 0) = delete;
  TraceSpan(Tracer*, const char*, const char*, SecretBool, uint64_t = 0) = delete;

  void SetArg(const char* arg_name, uint64_t value) {
    if (tracer_ == nullptr) {
      return;
    }
    for (int i = 0; i < SpanEvent::kMaxArgs; ++i) {
      if (event_.arg_names[i] == nullptr) {
        event_.arg_names[i] = arg_name;
        event_.arg_values[i] = value;
        return;
      }
    }
  }
  template <typename T>
  void SetArg(const char*, Secret<T>) = delete;
  void SetArg(const char*, SecretBool) = delete;

  // Closes and records the span once; later calls are no-ops.
  void End() {
    if (tracer_ == nullptr) {
      return;
    }
    event_.end_s = tracer_->NowSeconds();
    tracer_->Record(event_);
    tracer_ = nullptr;
  }

  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_;
  SpanEvent event_{};
};

// Merges a quiesced ring into the global tracer's current sink (see
// Tracer::AppendCurrent). Named with the Trace prefix like the enclave trace
// helpers so region allowlists treat the family uniformly.
inline void TraceSpanAppendCurrent(const SpanRingBuffer& ring) {
  Tracer::Global().AppendCurrent(ring);
}

// True when the global tracer wants sort-tile granularity (detail >= 2). Branching
// on this inside an oblivious region is public control flow (global configuration,
// independent of any secret), which the region must vouch for with `ct-public:`.
inline bool TraceTilesEnabled() {
  const Tracer& t = Tracer::Global();
  return t.enabled() && t.detail() >= 2;
}

// Per-worker counters for one run of the parallel phase executor. All fields are
// public: scheduling facts (task counts, steal counts, queue depths) and clock
// readings, never request contents.
struct WorkerPhaseStats {
  uint64_t tasks = 0;
  uint64_t steals = 0;
  uint64_t busy_ns = 0;      // sum of task *wall* run times on this worker
  // Sum of task *CPU* times (CLOCK_THREAD_CPUTIME_ID). On an oversubscribed host
  // wall-busy inflates with the timesharing factor while CPU-busy stays equal to
  // the real work -- the divergence is the work-inflation signal; 0 when the
  // platform lacks a per-thread CPU clock (consumers fall back to wall-busy).
  uint64_t cpu_busy_ns = 0;
  uint64_t idle_ns = 0;      // barrier stall: pool end minus this worker's finish
  uint64_t max_queue_depth = 0;
  double start_s = 0;
  double finish_s = 0;
};

// Pre-resolved handles for the pool metrics RecordWorkerPhase writes per phase.
// Name-keyed registry lookups build a labels map and walk the registry index on
// every call; at three phases per epoch that cost shows up in the <1% telemetry
// overhead gate. Callers that run many epochs resolve once (per registry, per
// phase) and pass the handle instead. Registry references stay stable for the
// registry's lifetime (see DESIGN.md), so caching these pointers is safe.
struct PoolPhaseMetrics {
  Counter* phases_total = nullptr;
  Counter* tasks_total = nullptr;
  Counter* steals_total = nullptr;
  Gauge* busy_seconds_total = nullptr;
  Gauge* cpu_busy_seconds_total = nullptr;
  Gauge* idle_seconds_total = nullptr;
  Gauge* workers = nullptr;
  Histogram* worker_busy_seconds = nullptr;
  Histogram* worker_idle_seconds = nullptr;
  Histogram* queue_depth = nullptr;

  // Resolves every handle against `metrics` for the given phase label. Returns an
  // all-null struct when `metrics` is null.
  static PoolPhaseMetrics Resolve(MetricsRegistry* metrics, const char* phase);
};

// Exports one phase-pool run: always-on counters/histograms into `metrics` (null
// ok) and per-worker "pool" spans into `tracer` (null/disabled ok), emitted in
// worker-id order so traces stay schedule-independent in *sequence* (the recorded
// durations are wall-clock facts and naturally vary). Defined in tracing.cc.
void RecordWorkerPhase(Tracer* tracer, MetricsRegistry* metrics, const char* phase,
                       size_t workers, double phase_start_s, double phase_end_s,
                       const std::vector<WorkerPhaseStats>& stats);

// Hot-path variant taking pre-resolved metric handles (null `metrics` skips the
// metrics writes entirely). The name-keyed overload above delegates here.
void RecordWorkerPhase(Tracer* tracer, const PoolPhaseMetrics* metrics,
                       const char* phase, size_t workers, double phase_start_s,
                       double phase_end_s,
                       const std::vector<WorkerPhaseStats>& stats);

// Background sampler: a thread that periodically snapshots tracer and registry
// health into time-series gauges (snoopy_sampler_*), the ScaleStore
// ProfilingThread idiom. Sampling reads only atomics and registry internals —
// never application state — so it is safe to run concurrently with epochs.
class ProfilingSampler {
 public:
  ProfilingSampler(MetricsRegistry* registry, Tracer* tracer,
                   double interval_s = 0.01);
  ~ProfilingSampler();

  ProfilingSampler(const ProfilingSampler&) = delete;
  ProfilingSampler& operator=(const ProfilingSampler&) = delete;

  void Start();
  void Stop();  // idempotent; joins the thread
  uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }

 private:
  void Loop();
  void SampleOnce();

  MetricsRegistry* registry_;
  Tracer* tracer_;
  double interval_s_;
  std::atomic<uint64_t> samples_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_TELEMETRY_TRACING_H_
