// Machine-readable bench output: a shared JSON emitter for the figure/table
// harnesses. Each harness appends one point per configuration it measures and
// writes BENCH_<name>.json next to the working directory, seeding the perf
// trajectory this repo tracks (throughput, p50/p99 latency, batch sizes per run).
//
// Format (stable, parse with any JSON library):
//   {
//     "bench": "<name>",
//     "schema": 1,
//     "points": [
//       {"series": "<series>", "<field>": <number>, ..., "<field>": "<string>"},
//       ...
//     ]
//   }
//
// Only public measurement outputs belong here (same leakage rules as
// src/telemetry/metrics.h); Secret values do not convert to the field types.

#ifndef SNOOPY_SRC_TELEMETRY_BENCH_JSON_H_
#define SNOOPY_SRC_TELEMETRY_BENCH_JSON_H_

#include <map>
#include <string>
#include <vector>

namespace snoopy {

class BenchJsonEmitter {
 public:
  explicit BenchJsonEmitter(std::string bench_name) : name_(std::move(bench_name)) {}

  // One measured configuration. Returned reference is valid until the next AddPoint.
  class Point {
   public:
    Point& Set(const std::string& field, double value) {
      numbers_[field] = value;
      return *this;
    }
    Point& Set(const std::string& field, const std::string& value) {
      strings_[field] = value;
      return *this;
    }

   private:
    friend class BenchJsonEmitter;
    std::string series_;
    std::map<std::string, double> numbers_;
    std::map<std::string, std::string> strings_;
  };

  Point& AddPoint(const std::string& series);

  std::string Render() const;

  // Writes BENCH_<name>.json under `dir` (default: current directory). Returns the
  // path written, or an empty string on I/O failure.
  std::string WriteFile(const std::string& dir = ".") const;

  const std::string& name() const { return name_; }
  size_t num_points() const { return points_.size(); }

 private:
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_TELEMETRY_BENCH_JSON_H_
