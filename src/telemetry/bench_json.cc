#include "src/telemetry/bench_json.h"

#include <cmath>
#include <cstdio>

namespace snoopy {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

std::string Num(double v) {
  if (!std::isfinite(v)) {
    return "null";  // JSON has no inf/nan
  }
  if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

BenchJsonEmitter::Point& BenchJsonEmitter::AddPoint(const std::string& series) {
  points_.emplace_back();
  points_.back().series_ = series;
  return points_.back();
}

std::string BenchJsonEmitter::Render() const {
  std::string out = "{\"bench\":\"" + Escape(name_) + "\",\"schema\":1,\"points\":[";
  bool first_point = true;
  for (const Point& p : points_) {
    if (!first_point) {
      out += ",";
    }
    first_point = false;
    out += "{\"series\":\"" + Escape(p.series_) + "\"";
    for (const auto& [k, v] : p.numbers_) {
      out += ",\"" + Escape(k) + "\":" + Num(v);
    }
    for (const auto& [k, v] : p.strings_) {
      out += ",\"" + Escape(k) + "\":\"" + Escape(v) + "\"";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string BenchJsonEmitter::WriteFile(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return "";
  }
  const std::string body = Render();
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = written == body.size() && std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok ? path : "";
}

}  // namespace snoopy
