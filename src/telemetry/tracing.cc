#include "src/telemetry/tracing.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>

namespace snoopy {

namespace {

void AppendJsonEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void AppendNumber(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

}  // namespace

std::string Tracer::RenderChromeTrace() const {
  const std::vector<SpanEvent> events = snapshot();
  double t0 = 0;
  bool have_t0 = false;
  for (const SpanEvent& e : events) {
    if (!have_t0 || e.start_s < t0) {
      t0 = e.start_s;
      have_t0 = true;
    }
  }

  std::string out;
  out.reserve(events.size() * 160 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"snoopy\"}}";
  for (const SpanEvent& e : events) {
    out += ",\n{\"ph\":\"X\",\"pid\":0,\"tid\":";
    out += std::to_string(e.track);
    out += ",\"cat\":\"";
    AppendJsonEscaped(out, e.cat);
    out += "\",\"name\":\"";
    AppendJsonEscaped(out, e.name);
    out += "\",\"ts\":";
    AppendNumber(out, (e.start_s - t0) * 1e6);
    out += ",\"dur\":";
    AppendNumber(out, (e.end_s - e.start_s) * 1e6);
    out += ",\"args\":{";
    bool first = true;
    if (e.task_id != kTraceNoTaskId) {
      out += "\"task\":";
      out += std::to_string(e.task_id);
      first = false;
    }
    for (int i = 0; i < SpanEvent::kMaxArgs; ++i) {
      if (e.arg_names[i] == nullptr) {
        continue;
      }
      if (!first) {
        out += ",";
      }
      first = false;
      out += "\"";
      AppendJsonEscaped(out, e.arg_names[i]);
      out += "\":";
      out += std::to_string(e.arg_values[i]);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string body = RenderChromeTrace();
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return written == body.size();
}

void TracerAtExitExport() {
  const char* out = std::getenv("SNOOPY_TRACE_OUT");
  if (out == nullptr || out[0] == '\0') {
    return;
  }
  Tracer::Global().WriteChromeTrace(out);
}

PoolPhaseMetrics PoolPhaseMetrics::Resolve(MetricsRegistry* metrics,
                                           const char* phase) {
  PoolPhaseMetrics m;
  if (metrics == nullptr) {
    return m;
  }
  const MetricLabels labels{{"phase", phase}};
  m.phases_total = &metrics->GetCounter("snoopy_pool_phases_total", labels);
  m.tasks_total = &metrics->GetCounter("snoopy_pool_tasks_total", labels);
  m.steals_total = &metrics->GetCounter("snoopy_pool_steals_total", labels);
  m.busy_seconds_total = &metrics->GetGauge("snoopy_pool_busy_seconds_total", labels);
  m.cpu_busy_seconds_total =
      &metrics->GetGauge("snoopy_pool_cpu_busy_seconds_total", labels);
  m.idle_seconds_total = &metrics->GetGauge("snoopy_pool_idle_seconds_total", labels);
  m.workers = &metrics->GetGauge("snoopy_pool_workers", labels);
  m.worker_busy_seconds =
      &metrics->GetHistogram("snoopy_pool_worker_busy_seconds", labels);
  m.worker_idle_seconds =
      &metrics->GetHistogram("snoopy_pool_worker_idle_seconds", labels);
  m.queue_depth = &metrics->GetHistogram("snoopy_pool_queue_depth", labels);
  return m;
}

void RecordWorkerPhase(Tracer* tracer, MetricsRegistry* metrics, const char* phase,
                       size_t workers, double phase_start_s, double phase_end_s,
                       const std::vector<WorkerPhaseStats>& stats) {
  const PoolPhaseMetrics resolved = PoolPhaseMetrics::Resolve(metrics, phase);
  RecordWorkerPhase(tracer, metrics != nullptr ? &resolved : nullptr, phase,
                    workers, phase_start_s, phase_end_s, stats);
}

void RecordWorkerPhase(Tracer* tracer, const PoolPhaseMetrics* metrics,
                       const char* phase, size_t workers, double phase_start_s,
                       double phase_end_s,
                       const std::vector<WorkerPhaseStats>& stats) {
  uint64_t tasks = 0;
  uint64_t steals = 0;
  double busy_s = 0;
  double cpu_busy_s = 0;
  double idle_s = 0;
  for (const WorkerPhaseStats& w : stats) {
    tasks += w.tasks;
    steals += w.steals;
    busy_s += static_cast<double>(w.busy_ns) * 1e-9;
    cpu_busy_s += static_cast<double>(w.cpu_busy_ns) * 1e-9;
    idle_s += static_cast<double>(w.idle_ns) * 1e-9;
  }

  if (metrics != nullptr && metrics->phases_total != nullptr) {
    metrics->phases_total->Increment();
    metrics->tasks_total->Increment(tasks);
    metrics->steals_total->Increment(steals);
    metrics->busy_seconds_total->Add(busy_s);
    metrics->cpu_busy_seconds_total->Add(cpu_busy_s);
    metrics->idle_seconds_total->Add(idle_s);
    metrics->workers->SetValue(static_cast<double>(workers));
    for (const WorkerPhaseStats& w : stats) {
      metrics->worker_busy_seconds->Observe(static_cast<double>(w.busy_ns) * 1e-9);
      metrics->worker_idle_seconds->Observe(static_cast<double>(w.idle_ns) * 1e-9);
      metrics->queue_depth->Observe(static_cast<double>(w.max_queue_depth));
    }
  }

  if (tracer != nullptr && tracer->enabled()) {
    // One summary span per worker, emitted by the orchestrator in worker-id order
    // (the workers themselves never touch the shared stream here).
    for (size_t w = 0; w < stats.size(); ++w) {
      SpanEvent e;
      e.cat = "pool";
      e.name = phase;
      e.task_id = w;
      e.track = 1 + w;
      e.start_s = stats[w].start_s;
      e.end_s = stats[w].finish_s;
      e.arg_names[0] = "tasks";
      e.arg_values[0] = stats[w].tasks;
      e.arg_names[1] = "steals";
      e.arg_values[1] = stats[w].steals;
      e.arg_names[2] = "busy_ns";
      e.arg_values[2] = stats[w].busy_ns;
      e.arg_names[3] = "idle_ns";
      e.arg_values[3] = stats[w].idle_ns;
      e.arg_names[4] = "cpu_busy_ns";
      e.arg_values[4] = stats[w].cpu_busy_ns;
      tracer->Record(e);
    }
    // A synthetic barrier span covering the whole pool run, so the exporter shows
    // the join point the per-worker idle_ns values are measured against.
    SpanEvent barrier;
    barrier.cat = "pool";
    barrier.name = "barrier";
    barrier.track = 0;
    barrier.start_s = phase_start_s;
    barrier.end_s = phase_end_s;
    barrier.arg_names[0] = "workers";
    barrier.arg_values[0] = workers;
    barrier.arg_names[1] = "tasks";
    barrier.arg_values[1] = tasks;
    tracer->Record(barrier);
  }
}

ProfilingSampler::ProfilingSampler(MetricsRegistry* registry, Tracer* tracer,
                                   double interval_s)
    : registry_(registry), tracer_(tracer),
      interval_s_(interval_s > 0 ? interval_s : 0.01) {}

ProfilingSampler::~ProfilingSampler() { Stop(); }

void ProfilingSampler::Start() {
  std::lock_guard<std::mutex> g(mu_);
  if (running_) {
    return;
  }
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void ProfilingSampler::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!running_) {
      return;
    }
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> g(mu_);
    running_ = false;
  }
  SampleOnce();  // final sample so short runs still export a data point
}

void ProfilingSampler::Loop() {
  const auto interval = std::chrono::duration<double>(interval_s_);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    lock.unlock();
    SampleOnce();
    lock.lock();
    cv_.wait_for(lock, interval, [this] { return stop_requested_; });
  }
}

void ProfilingSampler::SampleOnce() {
  samples_.fetch_add(1, std::memory_order_relaxed);
  if (registry_ == nullptr) {
    return;
  }
  registry_->GetCounter("snoopy_sampler_samples_total").Increment();
  if (tracer_ != nullptr) {
    registry_->GetGauge("snoopy_sampler_tracer_spans")
        .SetValue(static_cast<double>(tracer_->spans_recorded()));
    registry_->GetGauge("snoopy_sampler_tracer_dropped")
        .SetValue(static_cast<double>(tracer_->spans_dropped()));
    registry_->GetGauge("snoopy_sampler_tracer_buffered")
        .SetValue(static_cast<double>(tracer_->size()));
    registry_->GetHistogram("snoopy_sampler_tracer_buffered_series")
        .Observe(static_cast<double>(tracer_->size()));
  }
  registry_->GetGauge("snoopy_sampler_registry_series")
      .SetValue(static_cast<double>(registry_->size()));
}

}  // namespace snoopy
