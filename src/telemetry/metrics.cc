#include "src/telemetry/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace snoopy {

namespace {

// Fixed-format double rendering: enough digits to round-trip, no locale surprises.
std::string Num(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string LabelsKey(const std::string& name, const MetricLabels& labels) {
  if (labels.empty()) {
    return name;
  }
  std::string key = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) {
      key += ",";
    }
    first = false;
    key += k + "=\"" + v + "\"";
  }
  key += "}";
  return key;
}

// Prometheus label block with optional extra (quantile) label appended.
std::string PromLabels(const MetricLabels& labels, const std::string& extra_key = "",
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += k + "=\"" + v + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) {
      out += ",";
    }
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

// ------------------------------------------------------------------------ Histogram

int Histogram::BucketIndex(double v) {
  if (!(v > 0)) {  // zero, negative, NaN
    return 0;
  }
  int e = 0;
  const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  const int exp = e - 1;               // v in [2^exp, 2^(exp+1))
  if (exp < kMinExp) {
    return 0;  // underflow
  }
  if (exp > kMaxExp) {
    return kNumBuckets - 1;  // overflow clamps into the top bucket
  }
  int sub = static_cast<int>((m - 0.5) * 2 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return 1 + (exp - kMinExp) * kSubBuckets + sub;
}

double Histogram::BucketLowerEdge(int index) {
  if (index <= 0) {
    return 0;
  }
  const int exp = kMinExp + (index - 1) / kSubBuckets;
  const int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, exp);
}

double Histogram::BucketUpperEdge(int index) {
  if (index <= 0) {
    return 0;
  }
  const int exp = kMinExp + (index - 1) / kSubBuckets;
  const int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, exp);
}

Histogram::Histogram(const Histogram& other) : counts_(kNumBuckets, 0.0) {
  std::lock_guard<std::mutex> g(other.mu_);
  counts_ = other.counts_;
  count_ = other.count_;
  sum_ = other.sum_;
  min_ = other.min_;
  max_ = other.max_;
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) {
    return *this;
  }
  // Snapshot the source first so the two locks are never held together (no ordering
  // to get wrong, no self-deadlock).
  std::vector<double> counts;
  double count, sum, min, max;
  {
    std::lock_guard<std::mutex> g(other.mu_);
    counts = other.counts_;
    count = other.count_;
    sum = other.sum_;
    min = other.min_;
    max = other.max_;
  }
  std::lock_guard<std::mutex> g(mu_);
  counts_ = std::move(counts);
  count_ = count;
  sum_ = sum;
  min_ = min;
  max_ = max;
  return *this;
}

void Histogram::Observe(double v) {
  std::lock_guard<std::mutex> g(mu_);
  counts_[BucketIndex(v)] += 1;
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += 1;
  sum_ += v;
}

void Histogram::ObserveUniform(double lo, double hi, double count) {
  if (count <= 0) {
    return;
  }
  std::lock_guard<std::mutex> g(mu_);
  if (hi < lo) {
    std::swap(lo, hi);
  }
  if (count_ == 0) {
    min_ = lo;
    max_ = hi;
  } else {
    min_ = std::min(min_, lo);
    max_ = std::max(max_, hi);
  }
  count_ += count;
  sum_ += count * 0.5 * (lo + hi);

  const double width = hi - lo;
  if (width <= 0) {
    counts_[BucketIndex(lo)] += count;
    return;
  }
  const int first = BucketIndex(std::max(lo, 0.0));
  const int last = BucketIndex(hi);
  // Mass below the first positive bucket (lo <= 0) lands in the underflow bucket.
  if (lo < 0) {
    counts_[0] += count * (0.0 - lo) / width;
  }
  for (int i = std::max(first, 1); i <= last; ++i) {
    const double blo = std::max(BucketLowerEdge(i), lo);
    const double bhi = std::min(BucketUpperEdge(i), hi);
    if (bhi > blo) {
      counts_[i] += count * (bhi - blo) / width;
    }
  }
  if (first == 0 && lo >= 0) {
    // The sliver of [lo, hi] below the smallest representable bucket edge.
    const double tiny_hi = std::min(BucketLowerEdge(1), hi);
    if (tiny_hi > lo) {
      counts_[0] += count * (tiny_hi - lo) / width;
    }
  }
}

void Histogram::Merge(const Histogram& other) {
  // Snapshot under the source lock, apply under ours (same two-phase discipline as
  // operator=, which also makes self-merge harmless).
  const Histogram snap(other);
  std::lock_guard<std::mutex> g(mu_);
  for (int i = 0; i < kNumBuckets; ++i) {
    counts_[i] += snap.counts_[i];
  }
  if (snap.count_ > 0) {
    if (count_ == 0) {
      min_ = snap.min_;
      max_ = snap.max_;
    } else {
      min_ = std::min(min_, snap.min_);
      max_ = std::max(max_, snap.max_);
    }
    count_ += snap.count_;
    sum_ += snap.sum_;
  }
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> g(mu_);
  return QuantileLocked(q);
}

double Histogram::QuantileLocked(double q) const {
  if (count_ <= 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * count_;
  double cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (counts_[i] <= 0) {
      continue;
    }
    if (cum + counts_[i] >= target) {
      const double lo = i == 0 ? min_ : BucketLowerEdge(i);
      const double hi = i == 0 ? std::min(max_, BucketUpperEdge(1)) : BucketUpperEdge(i);
      const double frac = counts_[i] > 0 ? (target - cum) / counts_[i] : 0;
      return std::clamp(lo + (hi - lo) * frac, min_, max_);
    }
    cum += counts_[i];
  }
  return max_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> g(mu_);
  std::fill(counts_.begin(), counts_.end(), 0.0);
  count_ = sum_ = min_ = max_ = 0;
}

// ------------------------------------------------------------------------- Registry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(const std::string& name,
                                                  const MetricLabels& labels) {
  const std::string key = LabelsKey(name, labels);
  auto [it, inserted] = entries_.try_emplace(key);
  if (inserted) {
    it->second.name = name;
    it->second.labels = labels;
  }
  return it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name, const MetricLabels& labels) {
  std::lock_guard<std::mutex> g(mu_);
  Entry& e = GetEntry(name, labels);
  if (e.gauge != nullptr || e.histogram != nullptr) {
    throw std::logic_error("metric '" + name + "' already registered with another type");
  }
  if (e.counter == nullptr) {
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const MetricLabels& labels) {
  std::lock_guard<std::mutex> g(mu_);
  Entry& e = GetEntry(name, labels);
  if (e.counter != nullptr || e.histogram != nullptr) {
    throw std::logic_error("metric '" + name + "' already registered with another type");
  }
  if (e.gauge == nullptr) {
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, const MetricLabels& labels) {
  std::lock_guard<std::mutex> g(mu_);
  Entry& e = GetEntry(name, labels);
  if (e.counter != nullptr || e.gauge != nullptr) {
    throw std::logic_error("metric '" + name + "' already registered with another type");
  }
  if (e.histogram == nullptr) {
    e.histogram = std::make_unique<Histogram>();
  }
  return *e.histogram;
}

bool MetricsRegistry::Has(const std::string& name, const MetricLabels& labels) const {
  std::lock_guard<std::mutex> g(mu_);
  return entries_.count(LabelsKey(name, labels)) != 0;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> g(mu_);
  std::string out;
  std::string last_family;
  for (const auto& [key, e] : entries_) {
    const char* type = e.counter ? "counter" : (e.gauge ? "gauge" : "summary");
    if (e.name != last_family) {
      out += "# TYPE " + e.name + " " + type + "\n";
      last_family = e.name;
    }
    if (e.counter != nullptr) {
      out += e.name + PromLabels(e.labels) + " " +
             Num(static_cast<double>(e.counter->value())) + "\n";
    } else if (e.gauge != nullptr) {
      out += e.name + PromLabels(e.labels) + " " + Num(e.gauge->value()) + "\n";
    } else if (e.histogram != nullptr) {
      const Histogram& h = *e.histogram;
      for (const auto& [q, label] : {std::pair<double, const char*>{0.5, "0.5"},
                                     {0.9, "0.9"},
                                     {0.99, "0.99"},
                                     {0.999, "0.999"}}) {
        out += e.name + PromLabels(e.labels, "quantile", label) + " " +
               Num(h.Quantile(q)) + "\n";
      }
      out += e.name + "_sum" + PromLabels(e.labels) + " " + Num(h.sum()) + "\n";
      out += e.name + "_count" + PromLabels(e.labels) + " " + Num(h.count()) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> g(mu_);
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& [key, e] : entries_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"name\":\"" + EscapeJson(e.name) + "\",\"labels\":{";
    bool lf = true;
    for (const auto& [k, v] : e.labels) {
      if (!lf) {
        out += ",";
      }
      lf = false;
      out += "\"" + EscapeJson(k) + "\":\"" + EscapeJson(v) + "\"";
    }
    out += "},";
    if (e.counter != nullptr) {
      out += "\"type\":\"counter\",\"value\":" + Num(static_cast<double>(e.counter->value()));
    } else if (e.gauge != nullptr) {
      out += "\"type\":\"gauge\",\"value\":" + Num(e.gauge->value());
    } else if (e.histogram != nullptr) {
      const Histogram& h = *e.histogram;
      out += "\"type\":\"histogram\",\"count\":" + Num(h.count()) +
             ",\"sum\":" + Num(h.sum()) + ",\"min\":" + Num(h.min()) +
             ",\"max\":" + Num(h.max()) + ",\"mean\":" + Num(h.mean()) +
             ",\"p50\":" + Num(h.Quantile(0.5)) + ",\"p90\":" + Num(h.Quantile(0.9)) +
             ",\"p99\":" + Num(h.Quantile(0.99)) + ",\"p999\":" + Num(h.Quantile(0.999));
    } else {
      out += "\"type\":\"empty\"";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [key, e] : entries_) {
    if (e.counter != nullptr) {
      e.counter->Reset();
    }
    if (e.gauge != nullptr) {
      e.gauge->Reset();
    }
    if (e.histogram != nullptr) {
      e.histogram->Reset();
    }
  }
}

// ------------------------------------------------------------------------ SpanTimer

double SpanTimer::Stop() {
  if (stopped_ || histogram_ == nullptr || !now_s_) {
    stopped_ = true;
    return 0;
  }
  stopped_ = true;
  const double elapsed = now_s_() - start_s_;
  histogram_->Observe(elapsed < 0 ? 0 : elapsed);
  return elapsed;
}

double SpanTimer::SteadyNowSeconds() {
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace snoopy
