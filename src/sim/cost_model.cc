#include "src/sim/cost_model.h"

#include <algorithm>
#include <cmath>

#include "src/analysis/batch_bound.h"
#include "src/obl/bucket_sort.h"
#include "src/obl/hash_table.h"

namespace snoopy {

double CostModel::ThreadScale(int threads) const {
  if (threads <= 1) {
    return 1.0;
  }
  return 1.0 / (1.0 + (threads - 1) * config_.parallel_efficiency);
}

double CostModel::BitonicSortSeconds(uint64_t n, size_t record_bytes, int threads) const {
  if (n <= 1) {
    return 0.0;
  }
  const double lg = std::log2(static_cast<double>(n));
  const double bytes = static_cast<double>(n) * static_cast<double>(record_bytes);
  // Of the L(L+1)/2 compare-exchange passes (L = log2 n), the lowest log2(B) merge
  // stages of every sort/merge phase touch only B-record tiles that fit in L1; the
  // blocked executor runs those tile-resident and they cost sort_blocked_discount
  // relative to a streaming pass. Tile-local pass count: LB(LB+1)/2 for the phases
  // at or below the tile plus (L - LB) * LB for the tails of the larger phases.
  const double lb =
      std::min(lg, std::log2(static_cast<double>(SortBlockRecordsFor(record_bytes))));
  const double total_passes = lg * (lg + 1.0) / 2.0;
  const double tile_passes = lb * (lb + 1.0) / 2.0 + (lg - lb) * lb;
  const double tile_fraction = total_passes > 0.0 ? tile_passes / total_passes : 0.0;
  const double blocked_factor =
      (1.0 - tile_fraction) + tile_fraction * config_.sort_blocked_discount;
  return config_.sort_ns_per_byte * bytes * lg * lg * blocked_factor * 1e-9 *
         ThreadScale(threads);
}

double CostModel::BucketSortSeconds(uint64_t n, size_t record_bytes, uint64_t num_bins,
                                    int threads) const {
  if (n <= 1) {
    return 0.0;
  }
  const BucketSortParams params = ChooseBucketParams(n, num_bins, config_.lambda);
  if (!params.ok) {
    return BitonicSortSeconds(n, record_bytes, threads);
  }
  // BucketSortPassesPerElement counts streaming-equivalent compare-exchange passes
  // (routing levels at their merge-split factor, fixed label/emission passes, and
  // tile-resident cleanup at its locality discount). Calibrate the per-pass unit
  // cost against the bitonic anchor: BitonicSortSeconds charges sort_ns_per_byte
  // per byte per lg^2, i.e. lg^2 / (L(L+1)/2) ~= 2 units per streaming pass.
  const double bytes = static_cast<double>(n) * static_cast<double>(record_bytes);
  const double passes = BucketSortPassesPerElement(n, record_bytes, params);
  return 2.0 * config_.sort_ns_per_byte * bytes * passes * 1e-9 * ThreadScale(threads);
}

double CostModel::CompactSeconds(uint64_t n, size_t record_bytes, int threads) const {
  if (n <= 1) {
    return 0.0;
  }
  const double lg = std::log2(static_cast<double>(n));
  const double bytes = static_cast<double>(n) * static_cast<double>(record_bytes);
  return config_.compact_ns_per_byte * bytes * lg * 1e-9 * ThreadScale(threads);
}

uint64_t CostModel::QuantizeBatch(uint64_t batch) const {
  if (batch <= 256) {
    return batch;
  }
  // Round to a 1/16-octave log grid: smooth enough for the model, few enough distinct
  // values that the geometry search amortizes away.
  const double lg = std::log2(static_cast<double>(batch));
  const double snapped = std::round(lg * 16.0) / 16.0;
  return static_cast<uint64_t>(std::llround(std::exp2(snapped)));
}

const OhtParamsCacheEntry& CostModel::CachedOhtParams(uint64_t batch) const {
  const uint64_t q = QuantizeBatch(batch);
  const auto it = oht_cache_.find(q);
  if (it != oht_cache_.end()) {
    return it->second;
  }
  const OhtParams params = ChooseOhtParams(q, config_.lambda);
  OhtParamsCacheEntry entry;
  entry.lookup_slots = params.LookupCost();
  entry.tier1_records = q + params.bins1 * params.z1;
  entry.tier2_records = params.overflow_cap + params.bins2 * params.z2;
  return oht_cache_.emplace(q, entry).first->second;
}

uint64_t CostModel::OhtLookupSlots(uint64_t batch) const {
  if (batch == 0) {
    return 0;
  }
  return CachedOhtParams(batch).lookup_slots;
}

double CostModel::OhtBuildSeconds(uint64_t batch, int threads) const {
  if (batch == 0) {
    return 0.0;
  }
  // Construction is dominated by the tier-1 sort over batch + bins1*z1 records plus
  // the tier-2 bin placement sort over the (smaller) overflow set.
  const OhtParamsCacheEntry& entry = CachedOhtParams(batch);
  return BitonicSortSeconds(entry.tier1_records, RecordBytes(), threads) +
         BitonicSortSeconds(entry.tier2_records, RecordBytes(), threads) +
         CompactSeconds(entry.tier1_records + entry.tier2_records, RecordBytes(), threads);
}

double CostModel::SubOramBatchSeconds(uint64_t batch, uint64_t n_objects, int threads) const {
  if (batch == 0) {
    return 0.0;
  }
  const uint64_t object_bytes = 8 + config_.value_size;
  const uint64_t working_set = n_objects * object_bytes;

  // Figure 7 step 1: build the per-batch hash table.
  const double build = OhtBuildSeconds(batch, threads);

  // Figure 7 step 2: stream every object once (host loader path when over EPC) and
  // scan its two buckets: z1 + z2 oblivious compare-and-sets per object, each moving
  // the slot header plus the value payload through AVX-512 masked operations.
  const double stream = epc_.ScanSeconds(working_set, working_set) +
                        config_.scan_ns_per_byte * 1e-9 * static_cast<double>(working_set);
  const uint64_t slots = OhtLookupSlots(batch);
  const double per_slot_ns =
      config_.cmp_ns_per_slot + config_.cmp_ns_per_value_byte * config_.value_size;
  const double compare =
      static_cast<double>(n_objects) * static_cast<double>(slots) * per_slot_ns * 1e-9;

  // Figure 7 step 3: extract responses.
  const double extract = CompactSeconds(batch * 2, RecordBytes(), threads);

  return config_.suboram_fixed_s + (stream + compare) * ThreadScale(threads) + build + extract;
}

double CostModel::LbPrepareSeconds(uint64_t r, uint64_t s, int threads) const {
  if (r == 0) {
    return 0.0;
  }
  const uint64_t batch = BatchSize(r, s, config_.lambda);
  const uint64_t total = r + batch * s;
  return BitonicSortSeconds(total, RecordBytes(), threads) +
         CompactSeconds(total, RecordBytes(), threads);
}

double CostModel::LbMatchSeconds(uint64_t r, uint64_t s, int threads) const {
  if (r == 0) {
    return 0.0;
  }
  const uint64_t batch = BatchSize(r, s, config_.lambda);
  const uint64_t total = r + batch * s;
  return BitonicSortSeconds(total, RecordBytes(), threads) +
         CompactSeconds(total, RecordBytes(), threads);
}

double CostModel::NetworkBatchSeconds(uint64_t batch) const {
  const double bytes = static_cast<double>(batch) * static_cast<double>(RecordBytes());
  return config_.net_rtt_s / 2.0 + bytes / config_.net_bytes_per_s;
}

uint32_t CostModel::OblixRecursionLevels(uint64_t n_objects) const {
  uint32_t levels = 1;
  uint64_t m = n_objects;
  while (m > config_.oblix_flat_threshold) {
    m /= config_.oblix_posmap_fanout;
    ++levels;
  }
  return levels;
}

double CostModel::OblixAccessSeconds(uint64_t n_objects) const {
  // Each recursion level costs one doubly-oblivious path access; path length grows
  // with log2 of that level's size.
  double total_ns = 0.0;
  uint64_t m = n_objects;
  for (uint32_t level = 0; level < OblixRecursionLevels(n_objects); ++level) {
    const double lg = std::max(1.0, std::log2(static_cast<double>(std::max<uint64_t>(2, m))));
    total_ns += config_.oblix_path_ns_per_level * lg / std::log2(2e6);
    m /= config_.oblix_posmap_fanout;
  }
  return total_ns * 1e-9 * std::log2(2e6);
}

}  // namespace snoopy
