// Epoch-pipeline cluster simulator.
//
// Simulates a Snoopy deployment (L load balancers, S subORAMs) serving a Poisson
// request stream, using the calibrated cost model for per-stage service times and the
// real batch-size mathematics for batch shapes. The pipeline follows the paper's
// section 6 structure: requests wait for the next epoch boundary, the load balancer
// prepares batches, every subORAM executes one batch per load balancer, and responses
// are matched and returned. Stages are pipelined: a load balancer may prepare epoch
// k+1 while the subORAMs execute epoch k.
//
// MaxThroughput inverts the simulation: the largest offered load whose simulated mean
// latency stays within a bound -- this is what Figures 9a/9b/10 plot against machine
// count.

#ifndef SNOOPY_SRC_SIM_CLUSTER_H_
#define SNOOPY_SRC_SIM_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/telemetry/metrics.h"

namespace snoopy {

// Epoch-boundary elastic reshard event: from `at_s` on, the deployment runs
// `suborams` partitions. Applied at the first epoch boundary past `at_s` with no
// partition under repair (the functional deployment's precondition); the migration
// stalls the whole pipeline for the modeled gather + oblivious-redistribute time.
struct ReshardEvent {
  double at_s = 0;
  uint32_t suborams = 0;
};

// Piecewise-constant load multiplier from `start_s` on (diurnal profiles).
struct LoadPhase {
  double start_s = 0;
  double multiplier = 1.0;
};

struct ClusterConfig {
  uint32_t load_balancers = 1;
  uint32_t suborams = 1;
  uint64_t num_objects = 0;
  double epoch_seconds = 0.1;
  // Requests per client-visible operation (key transparency issues log2(n)+1 ORAM
  // accesses per lookup, paper section 8.2).
  double accesses_per_op = 1.0;
  // Machine failure process (0 disables, the default). Each machine fails with
  // exponential inter-failure times (mean = MTTF) and is unavailable for an
  // exponential repair time (mean = MTTR): a crashed load balancer is rebuilt
  // statelessly, a crashed subORAM restores its sealed snapshot (sections 4.3 and 9),
  // and during repair its stage of the pipeline stalls. Failure randomness comes from
  // a separate stream, so zero-rate runs are bit-identical to pre-failure-model runs.
  double lb_mttf_s = 0;
  double lb_mttr_s = 0;
  double suboram_mttf_s = 0;
  double suboram_mttr_s = 0;
  // Permanent machine loss + striped repair (DESIGN.md, "Failure model and repair").
  // SubORAMs are permanently lost with exponential inter-loss times (mean = MTPL,
  // 0 disables). A lost partition serves nothing for `repair_epochs` epochs -- the
  // public, load-independent repair schedule -- while its 1/S share of each epoch's
  // requests is deferred to the completion epoch; surviving peers pay a fixed
  // per-epoch repair-traffic cost for streaming stripe slices.
  double suboram_mtpl_s = 0;
  uint32_t repair_epochs = 4;
  // Elastic reshard events, ascending by at_s. Empty = fixed-width deployment.
  std::vector<ReshardEvent> reshard_schedule;
  // Diurnal load multipliers, ascending by start_s. Empty = constant offered load.
  std::vector<LoadPhase> load_profile;
  // Collect the per-request latency distribution (histogram-backed percentiles in
  // ClusterMetrics). Costs O(histogram buckets) per (epoch, load balancer) -- the
  // per-epoch work stays O(L + S) -- but can be switched off for overhead studies.
  bool latency_histogram = true;
};

struct ClusterMetrics {
  double offered_load = 0;       // operations per second offered
  double completed_ops = 0;      // operations answered within the simulated window
  double throughput = 0;         // completed / duration
  double mean_latency_s = 0;
  double max_latency_s = 0;
  // Histogram-backed percentiles (0 when config.latency_histogram is off or no
  // request completed). Arrivals are uniform within an epoch given their count, so
  // each (epoch, lb) cohort contributes a uniform latency mass -- exact under the
  // model, not a sampling approximation.
  double latency_p50_s = 0;
  double latency_p90_s = 0;
  double latency_p99_s = 0;
  Histogram latency_histogram;  // full distribution, mergeable across runs
  double mean_batch_size = 0;    // per-subORAM batch size f(R, S) averaged over epochs
  bool saturated = false;        // backlog kept growing: offered load is unsustainable
  uint64_t failures = 0;         // machine failures, transient + permanent
  double downtime_s = 0;         // summed per-machine repair time
  uint64_t transient_failures = 0;  // crash/recover failures (MTTR restores the machine)
  uint64_t permanent_losses = 0;    // losses only the striped-repair protocol restores
  uint64_t repairs_completed = 0;   // repairs that finished within the window
  uint64_t reshards = 0;            // elastic reshard events applied
  uint64_t degraded_epochs = 0;     // epochs with >= 1 partition under repair
  double deferred_ops = 0;          // request mass deferred past its arrival epoch
};

class ClusterSimulator {
 public:
  ClusterSimulator(const ClusterConfig& config, const CostModel& model)
      : config_(config), model_(model) {}

  // Simulates `duration` seconds of Poisson arrivals at `ops_per_second`.
  ClusterMetrics Run(double ops_per_second, double duration, uint64_t seed) const;

  // Largest sustainable throughput with mean latency <= latency_bound, searching over
  // epoch lengths up to 2/5 * latency_bound (paper Equation 2).
  static ClusterMetrics MaxThroughput(uint32_t load_balancers, uint32_t suborams,
                                      uint64_t num_objects, double latency_bound,
                                      const CostModel& model, double accesses_per_op = 1.0);

  // Best machine split for a total machine budget (what Figure 9a's boxed points
  // encode: sometimes the next machine is a load balancer, sometimes a subORAM).
  struct SplitResult {
    uint32_t load_balancers = 0;
    uint32_t suborams = 0;
    ClusterMetrics metrics;
  };
  static SplitResult BestSplit(uint32_t total_machines, uint64_t num_objects,
                               double latency_bound, const CostModel& model,
                               double accesses_per_op = 1.0);

 private:
  ClusterConfig config_;
  CostModel model_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_SIM_CLUSTER_H_
