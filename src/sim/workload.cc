#include "src/sim/workload.h"

#include <algorithm>
#include <cmath>

namespace snoopy {

bool WorkloadGenerator::NextIsWrite() {
  return static_cast<double>(rng_.Uniform(1u << 20)) / static_cast<double>(1u << 20) <
         write_fraction_;
}

std::vector<WorkloadRequest> WorkloadGenerator::Uniform(size_t n) {
  std::vector<WorkloadRequest> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back({rng_.Uniform(key_space_), NextIsWrite()});
  }
  return out;
}

std::vector<WorkloadRequest> WorkloadGenerator::Zipfian(size_t n, double theta) {
  if (cached_theta_ != theta) {
    zipf_cdf_.resize(key_space_);
    double total = 0.0;
    for (uint64_t k = 0; k < key_space_; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), theta);
      zipf_cdf_[k] = total;
    }
    for (double& v : zipf_cdf_) {
      v /= total;
    }
    cached_theta_ = theta;
  }
  std::vector<WorkloadRequest> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double u =
        static_cast<double>(rng_.Uniform(uint64_t{1} << 53)) / static_cast<double>(uint64_t{1} << 53);
    const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    const auto rank = static_cast<uint64_t>(it - zipf_cdf_.begin());
    // Scatter ranks over the key space so the hot keys are not clustered.
    const uint64_t key = (rank * 0x9e3779b97f4a7c15ULL) % key_space_;
    out.push_back({key, NextIsWrite()});
  }
  return out;
}

std::vector<WorkloadRequest> WorkloadGenerator::Hotspot(size_t n, double hot_fraction) {
  std::vector<WorkloadRequest> out;
  out.reserve(n);
  const uint64_t hot_key = rng_.Uniform(key_space_);
  for (size_t i = 0; i < n; ++i) {
    const bool hot = static_cast<double>(rng_.Uniform(1u << 20)) /
                         static_cast<double>(1u << 20) <
                     hot_fraction;
    out.push_back({hot ? hot_key : rng_.Uniform(key_space_), NextIsWrite()});
  }
  return out;
}

}  // namespace snoopy
