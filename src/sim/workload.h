// Workload generators for benchmarks and property tests: uniform, Zipfian, hotspot,
// and read/write mixes. Snoopy's security guarantee implies its *performance* is
// independent of the request distribution (paper section 8: "the oblivious security
// guarantees ... ensure that the request distribution does not impact their
// performance") -- the skew ablation uses these generators to check exactly that.

#ifndef SNOOPY_SRC_SIM_WORKLOAD_H_
#define SNOOPY_SRC_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/crypto/rng.h"

namespace snoopy {

struct WorkloadRequest {
  uint64_t key = 0;
  bool is_write = false;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(uint64_t key_space, double write_fraction, uint64_t seed)
      : key_space_(key_space), write_fraction_(write_fraction), rng_(seed) {}

  // Uniform over the key space.
  std::vector<WorkloadRequest> Uniform(size_t n);

  // Zipfian with exponent `theta` (typical YCSB-style skew: 0.99).
  std::vector<WorkloadRequest> Zipfian(size_t n, double theta);

  // `hot_fraction` of requests hit a single key; the rest are uniform.
  std::vector<WorkloadRequest> Hotspot(size_t n, double hot_fraction);

 private:
  bool NextIsWrite();

  uint64_t key_space_;
  double write_fraction_;
  Rng rng_;
  // Zipf sampling state (Gray et al. rejection-inversion is overkill at our sizes; we
  // precompute the CDF for the configured key space once per theta).
  double cached_theta_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_SIM_WORKLOAD_H_
