#include "src/sim/cluster.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/analysis/batch_bound.h"
#include "src/crypto/rng.h"

namespace snoopy {

ClusterMetrics ClusterSimulator::Run(double ops_per_second, double duration,
                                     uint64_t seed) const {
  const uint32_t l = config_.load_balancers;
  uint32_t s = config_.suborams;  // resharding changes the width mid-run
  const double t_epoch = config_.epoch_seconds;
  Rng rng(seed);

  // Poisson arrivals, drawn as per-(epoch, load balancer) counts: the epoch pipeline
  // only needs counts and the within-epoch mean arrival time (uniform given the
  // count), which keeps the simulation O(L + S) per epoch at any load.
  const double rate = ops_per_second * config_.accesses_per_op;
  auto draw_poisson = [&rng](double mean) -> uint64_t {
    if (mean <= 0) {
      return 0;
    }
    auto uniform01 = [&rng] {
      return (static_cast<double>(rng.Next64() >> 11) + 0.5) / 9007199254740992.0;
    };
    if (mean < 32.0) {
      // Knuth's method.
      const double limit = std::exp(-mean);
      double p = 1.0;
      uint64_t k = 0;
      do {
        ++k;
        p *= uniform01();
      } while (p > limit);
      return k - 1;
    }
    // Normal approximation with continuity correction.
    const double u1 = uniform01();
    const double u2 = uniform01();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double v = mean + std::sqrt(mean) * z + 0.5;
    return v < 0 ? 0 : static_cast<uint64_t>(v);
  };

  // Pipeline state: when each stage becomes free.
  std::vector<double> lb_free(l, 0.0);
  std::vector<double> so_free(s, 0.0);

  ClusterMetrics metrics;

  // Machine failure process. Failure randomness lives in its own stream so disabling
  // it (the default) leaves the arrival draws -- and hence every metric -- untouched.
  const bool lb_fails = config_.lb_mttf_s > 0 && config_.lb_mttr_s > 0;
  const bool so_fails = config_.suboram_mttf_s > 0 && config_.suboram_mttr_s > 0;
  Rng failure_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  auto draw_exp = [&failure_rng](double mean) {
    const double u =
        (static_cast<double>(failure_rng.Next64() >> 11) + 0.5) / 9007199254740992.0;
    return -mean * std::log(u);
  };
  std::vector<double> lb_next_fail(l, 0.0);
  std::vector<double> so_next_fail(s, 0.0);
  if (lb_fails) {
    for (uint32_t i = 0; i < l; ++i) {
      lb_next_fail[i] = draw_exp(config_.lb_mttf_s);
    }
  }
  if (so_fails) {
    for (uint32_t j = 0; j < s; ++j) {
      so_next_fail[j] = draw_exp(config_.suboram_mttf_s);
    }
  }
  // Permanent-loss process: a lost subORAM serves nothing for `repair_epochs` epochs
  // (the public repair schedule) while its share of requests is deferred, then the
  // reincarnated node rejoins. Its draws share the failure stream but are gated on
  // the rate, so enabling crashes alone reproduces pre-loss-model runs bit for bit.
  const bool so_loses = config_.suboram_mtpl_s > 0 && config_.repair_epochs > 0;
  std::vector<double> so_next_loss(s, 0.0);
  if (so_loses) {
    for (uint32_t j = 0; j < s; ++j) {
      so_next_loss[j] = draw_exp(config_.suboram_mtpl_s);
    }
  }
  std::vector<char> so_lost(s, 0);
  std::vector<uint64_t> so_alive_epoch(s, 0);  // first epoch the repaired node serves
  // Requests addressed to a lost partition, waiting for its repair to complete.
  // Tracked as aggregate mass (count, summed arrival times, earliest arrival) so the
  // per-epoch work stays O(L + S).
  struct DeferredPool {
    double count = 0;
    double arrival_mass = 0;
    double earliest = 1e300;
  };
  std::vector<DeferredPool> so_deferred(s);
  size_t next_reshard = 0;
  // Applied at epoch boundaries (crashes are recovered at epoch granularity, matching
  // the functional deployment): a machine whose failure time has passed goes down for
  // an exponential repair, its pipeline stage stalls until the repair completes, and
  // its next failure is scheduled after the repair.
  auto apply_failures = [&](double boundary) {
    if (lb_fails) {
      for (uint32_t i = 0; i < l; ++i) {
        while (lb_next_fail[i] <= boundary) {
          const double repair = draw_exp(config_.lb_mttr_s);
          lb_free[i] = std::max(lb_free[i], lb_next_fail[i] + repair);
          ++metrics.failures;
          ++metrics.transient_failures;
          metrics.downtime_s += repair;
          lb_next_fail[i] = lb_next_fail[i] + repair + draw_exp(config_.lb_mttf_s);
        }
      }
    }
    if (so_fails) {
      for (uint32_t j = 0; j < s; ++j) {
        if (so_lost[j]) {
          // No machine to crash while the partition is under repair; the replacement
          // node's crash clock is pushed past its reincarnation without a draw.
          so_next_fail[j] = std::max(
              so_next_fail[j], static_cast<double>(so_alive_epoch[j]) * t_epoch);
          continue;
        }
        while (so_next_fail[j] <= boundary) {
          const double repair = draw_exp(config_.suboram_mttr_s);
          so_free[j] = std::max(so_free[j], so_next_fail[j] + repair);
          ++metrics.failures;
          ++metrics.transient_failures;
          metrics.downtime_s += repair;
          so_next_fail[j] = so_next_fail[j] + repair + draw_exp(config_.suboram_mttf_s);
        }
      }
    }
  };
  metrics.offered_load = ops_per_second;
  double latency_sum = 0;
  double batch_sum = 0;
  uint64_t epochs = 0;
  double completed = 0;
  double last_done = 0;

  const auto n_epochs = static_cast<uint64_t>(std::ceil(duration / t_epoch));
  std::vector<uint64_t> lb_requests(l, 0);
  for (uint64_t e = 0; e < n_epochs; ++e) {
    const double boundary = static_cast<double>(e + 1) * t_epoch;
    const double epoch_start = boundary - t_epoch;
    const double epoch_mean_arrival = boundary - t_epoch / 2.0;

    // Elastic resharding: apply due events at the epoch boundary once every
    // partition is healthy (the functional Reshard's precondition); an event that
    // comes due mid-repair waits for the repair to finish.
    while (next_reshard < config_.reshard_schedule.size() &&
           config_.reshard_schedule[next_reshard].at_s <= epoch_start) {
      bool any_lost = false;
      for (uint32_t j = 0; j < s; ++j) {
        any_lost = any_lost || so_lost[j] != 0;
      }
      if (any_lost) {
        break;
      }
      const uint32_t new_s = config_.reshard_schedule[next_reshard].suborams;
      ++next_reshard;
      if (new_s == 0 || new_s == s) {
        continue;
      }
      // Build-then-swap migration: drain in-flight epochs, gather every object,
      // obliviously redistribute across the new width, reload. The whole pipeline
      // stalls for the migration.
      double stall_until = epoch_start;
      for (uint32_t i = 0; i < l; ++i) {
        stall_until = std::max(stall_until, lb_free[i]);
      }
      for (uint32_t j = 0; j < s; ++j) {
        stall_until = std::max(stall_until, so_free[j]);
      }
      stall_until += model_.NetworkBatchSeconds(config_.num_objects) +
                     model_.LbPrepareSeconds(config_.num_objects, new_s,
                                             model_.config().cores);
      for (uint32_t i = 0; i < l; ++i) {
        lb_free[i] = stall_until;
      }
      const uint32_t old_s = s;
      s = new_s;
      so_free.assign(s, stall_until);
      so_lost.assign(s, 0);
      so_alive_epoch.assign(s, 0);
      so_deferred.assign(s, DeferredPool{});
      so_next_fail.resize(s, 0.0);
      so_next_loss.resize(s, 0.0);
      if (so_fails) {
        for (uint32_t j = old_s; j < s; ++j) {
          so_next_fail[j] = stall_until + draw_exp(config_.suboram_mttf_s);
        }
      }
      if (so_loses) {
        for (uint32_t j = old_s; j < s; ++j) {
          so_next_loss[j] = stall_until + draw_exp(config_.suboram_mtpl_s);
        }
      }
      ++metrics.reshards;
    }
    const uint64_t per_suboram_objects =
        config_.num_objects / s + (config_.num_objects % s != 0);

    // Repairs scheduled to finish by now complete: the reincarnated partition serves
    // this epoch, and its deferred pool rides this epoch's batches (settled below,
    // once the epoch's completion time is known).
    std::vector<uint32_t> completing;
    for (uint32_t j = 0; j < s; ++j) {
      if (so_lost[j] && e >= so_alive_epoch[j]) {
        so_lost[j] = 0;
        so_free[j] = std::max(so_free[j], epoch_start);
        ++metrics.repairs_completed;
        completing.push_back(j);
      }
    }

    apply_failures(boundary);
    if (so_loses) {
      for (uint32_t j = 0; j < s; ++j) {
        if (!so_lost[j] && so_next_loss[j] <= boundary) {
          so_lost[j] = 1;
          so_alive_epoch[j] = e + config_.repair_epochs;
          ++metrics.failures;
          ++metrics.permanent_losses;
          metrics.downtime_s += static_cast<double>(config_.repair_epochs) * t_epoch;
          // The replacement node's loss clock starts after its reincarnation.
          so_next_loss[j] = boundary +
                            static_cast<double>(config_.repair_epochs) * t_epoch +
                            draw_exp(config_.suboram_mtpl_s);
        }
      }
    }
    uint32_t lost_count = 0;
    for (uint32_t j = 0; j < s; ++j) {
      lost_count += so_lost[j] != 0;
    }
    if (lost_count > 0) {
      ++metrics.degraded_epochs;
    }

    double load_mult = 1.0;
    for (const LoadPhase& phase : config_.load_profile) {
      if (phase.start_s <= epoch_start) {
        load_mult = phase.multiplier;
      }
    }
    for (uint32_t i = 0; i < l; ++i) {
      lb_requests[i] = draw_poisson(load_mult * rate * t_epoch / static_cast<double>(l));
    }

    // Stage 1: each load balancer prepares its batches (parallel machines).
    std::vector<double> prep_done(l, boundary);
    std::vector<uint64_t> batch(l, 0);
    for (uint32_t i = 0; i < l; ++i) {
      const uint64_t r = lb_requests[i];
      if (r == 0) {
        continue;
      }
      batch[i] = BatchSize(r, s, model_.config().lambda);
      const double start = std::max(boundary, lb_free[i]);
      const double svc = model_.config().lb_fixed_s +
                         model_.LbPrepareSeconds(r, s, model_.config().cores);
      prep_done[i] = start + svc;
      lb_free[i] = prep_done[i];
      batch_sum += static_cast<double>(batch[i]);
      ++epochs;
    }

    // Stage 2: every healthy subORAM executes one batch per load balancer, in LB
    // order. While a partition is under repair, each surviving peer streams a fixed
    // stripe slice per epoch (public, load-independent), modeled as added network
    // service time.
    const double repair_overhead_s =
        lost_count == 0
            ? 0.0
            : static_cast<double>(lost_count) *
                  model_.NetworkBatchSeconds(
                      per_suboram_objects / config_.repair_epochs + 1);
    double epoch_so_done = boundary;
    for (uint32_t j = 0; j < s; ++j) {
      if (so_lost[j]) {
        continue;
      }
      double ready = so_free[j] + repair_overhead_s;
      for (uint32_t i = 0; i < l; ++i) {
        if (batch[i] == 0) {
          continue;
        }
        const double arrive = prep_done[i] + model_.NetworkBatchSeconds(batch[i]);
        ready = std::max(ready, arrive) +
                model_.SubOramBatchSeconds(batch[i], per_suboram_objects);
      }
      so_free[j] = ready;
      epoch_so_done = std::max(epoch_so_done, ready);
    }

    // Stage 3: responses return and each load balancer matches them. Requests
    // addressed to a lost partition (a lost_count/s share, by the uniform partition
    // function) receive placeholder responses and defer to the repair epoch.
    const double defer_frac =
        lost_count == 0 ? 0.0
                        : static_cast<double>(lost_count) / static_cast<double>(s);
    double epoch_done = epoch_so_done;
    for (uint32_t i = 0; i < l; ++i) {
      const uint64_t r = lb_requests[i];
      if (r == 0) {
        continue;
      }
      const double r_live = static_cast<double>(r) * (1.0 - defer_frac);
      const double resp_arrive = epoch_so_done + model_.NetworkBatchSeconds(batch[i] * s);
      const double done =
          resp_arrive + model_.LbMatchSeconds(r, s, model_.config().cores);
      lb_free[i] = std::max(lb_free[i], done);
      // Arrivals are uniform within the epoch given their count, so the aggregate
      // latency contribution is r * (done - mean arrival time), and the cohort's
      // latency distribution is uniform over [done - boundary, done - boundary +
      // t_epoch] (latest arrival waits least). ObserveUniform spreads that mass in
      // O(buckets), preserving the O(L + S)-per-epoch design.
      latency_sum += r_live * (done - epoch_mean_arrival);
      if (config_.latency_histogram && r_live > 0) {
        metrics.latency_histogram.ObserveUniform(done - boundary,
                                                 done - boundary + t_epoch, r_live);
      }
      metrics.max_latency_s = std::max(metrics.max_latency_s, done - epoch_start);
      completed += r_live;
      last_done = std::max(last_done, done);
      epoch_done = std::max(epoch_done, done);
    }

    // Park this epoch's deferred request mass with the partitions under repair.
    if (lost_count > 0) {
      double arrivals = 0;
      for (uint32_t i = 0; i < l; ++i) {
        arrivals += static_cast<double>(lb_requests[i]);
      }
      const double deferred = arrivals * defer_frac;
      if (deferred > 0) {
        metrics.deferred_ops += deferred / config_.accesses_per_op;
        const double share = deferred / static_cast<double>(lost_count);
        for (uint32_t j = 0; j < s; ++j) {
          if (!so_lost[j]) {
            continue;
          }
          so_deferred[j].count += share;
          so_deferred[j].arrival_mass += share * epoch_mean_arrival;
          so_deferred[j].earliest = std::min(so_deferred[j].earliest, epoch_start);
        }
      }
    }

    // Settle deferred pools of partitions whose repair completed this epoch: their
    // requests ride this epoch's batches and finish with it.
    for (uint32_t j : completing) {
      DeferredPool& pool = so_deferred[j];
      if (pool.count > 0) {
        latency_sum += pool.count * epoch_done - pool.arrival_mass;
        completed += pool.count;
        const double mean_lat = epoch_done - pool.arrival_mass / pool.count;
        if (config_.latency_histogram) {
          metrics.latency_histogram.ObserveUniform(
              std::max(0.0, mean_lat - t_epoch / 2), mean_lat + t_epoch / 2,
              pool.count);
        }
        metrics.max_latency_s =
            std::max(metrics.max_latency_s, epoch_done - pool.earliest);
        last_done = std::max(last_done, epoch_done);
      }
      pool = DeferredPool{};
    }
  }

  metrics.completed_ops = completed / config_.accesses_per_op;
  metrics.throughput = metrics.completed_ops / duration;
  metrics.mean_latency_s = completed <= 0 ? 0.0 : latency_sum / completed;
  metrics.mean_batch_size = epochs == 0 ? 0.0 : batch_sum / static_cast<double>(epochs);
  if (config_.latency_histogram && metrics.latency_histogram.count() > 0) {
    metrics.latency_p50_s = metrics.latency_histogram.Quantile(0.50);
    metrics.latency_p90_s = metrics.latency_histogram.Quantile(0.90);
    metrics.latency_p99_s = metrics.latency_histogram.Quantile(0.99);
  }
  // Saturation heuristic: the pipeline finished far behind the arrival window.
  metrics.saturated = last_done > duration + 4 * config_.epoch_seconds;
  return metrics;
}

ClusterMetrics ClusterSimulator::MaxThroughput(uint32_t load_balancers, uint32_t suborams,
                                               uint64_t num_objects, double latency_bound,
                                               const CostModel& model,
                                               double accesses_per_op) {
  ClusterMetrics best;
  // Sweep epoch lengths; for each, binary-search the largest load meeting the bound.
  for (double t_epoch : {0.2 * latency_bound, 0.3 * latency_bound, 0.4 * latency_bound}) {
    ClusterConfig cfg;
    cfg.load_balancers = load_balancers;
    cfg.suborams = suborams;
    cfg.num_objects = num_objects;
    cfg.epoch_seconds = t_epoch;
    cfg.accesses_per_op = accesses_per_op;
    const ClusterSimulator sim(cfg, model);
    const double duration = std::max(20 * t_epoch, 4.0);

    double lo = 0;
    double hi = 4e6 / accesses_per_op;
    ClusterMetrics at_lo;
    for (int iter = 0; iter < 24; ++iter) {
      const double mid = 0.5 * (lo + hi);
      const ClusterMetrics m = sim.Run(mid, duration, /*seed=*/42);
      const bool ok = !m.saturated && m.mean_latency_s <= latency_bound &&
                      m.throughput >= 0.85 * mid;
      if (ok) {
        lo = mid;
        at_lo = m;
      } else {
        hi = mid;
      }
    }
    if (at_lo.throughput > best.throughput) {
      best = at_lo;
    }
  }
  return best;
}

ClusterSimulator::SplitResult ClusterSimulator::BestSplit(uint32_t total_machines,
                                                          uint64_t num_objects,
                                                          double latency_bound,
                                                          const CostModel& model,
                                                          double accesses_per_op) {
  SplitResult best;
  for (uint32_t l = 1; l < total_machines; ++l) {
    const uint32_t s = total_machines - l;
    const ClusterMetrics m =
        MaxThroughput(l, s, num_objects, latency_bound, model, accesses_per_op);
    if (m.throughput > best.metrics.throughput) {
      best.load_balancers = l;
      best.suborams = s;
      best.metrics = m;
    }
  }
  return best;
}

}  // namespace snoopy
