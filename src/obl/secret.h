// Secret<T> / SecretBool: compile-time taint types for oblivious code.
//
// The Snoopy security proofs (Theorems 1-2, Appendix B) assume every building block is
// branchless and free of secret-dependent memory indexing. primitives.h provides the
// operators; this header makes *misusing a secret* a compile error instead of a silent
// obliviousness break:
//
//  - Comparisons between Secret values return SecretBool (an all-ones/all-zeros mask),
//    never `bool`.
//  - Neither Secret<T> nor SecretBool converts to bool or to an integer, so
//    `if (secret)`, `while (secret)`, `secret ? a : b`, `secret && x`, and
//    `array[secret]` all fail to compile.
//  - Secrets leave the system only through Declassify(site), which records a
//    TraceOp::kDeclassify event (so declassification sites and counts are part of the
//    adversary-visible trace checked by tests/obliviousness_test.cc) and un-poisons
//    the value under the SNOOPY_CT_CHECK dynamic harness (obl/poison.h).
//
// The wrappers are zero-cost: trivially copyable, same size as the underlying word,
// and every operation lowers to the same mask arithmetic the kernels used before
// (bench/micro_primitives.cc measures Secret vs raw at equal throughput).
//
// Trusted-computing-base note: SecretValueForPrimitive / UnsafeRaw expose the raw word
// WITHOUT an audit event. They exist so new oblivious primitives can be built on top
// of existing ones; tools/ct_lint.py flags any use outside the files listed as "tcb"
// in tools/ct_manifest.json.

#ifndef SNOOPY_SRC_OBL_SECRET_H_
#define SNOOPY_SRC_OBL_SECRET_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "src/enclave/trace.h"
#include "src/obl/poison.h"
#include "src/obl/primitives.h"

namespace snoopy {

// FNV-1a over a declassification-site label; the hash (not the value) goes into the
// trace, so traces stay byte-identical across secret inputs while every
// declassification remains visible and attributable.
inline uint64_t DeclassifySiteHash(const char* site) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = site; *p != '\0'; ++p) {
    h ^= static_cast<uint8_t>(*p);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// A boolean derived from secret data, represented as an all-ones (true) or all-zeros
// (false) 64-bit mask. Supports branchless logic (& | ^ !) but cannot be branched on.
class SecretBool {
 public:
  constexpr SecretBool() : mask_(0) {}

  // Taint a branchlessly-computed bool (e.g. a CtLt64 result).
  static SecretBool FromBool(bool b) { return SecretBool(CtMask64(b)); }
  // Taint a 0/1 (or any zero/nonzero) flag word loaded from record memory.
  static SecretBool FromWord(uint64_t w) { return SecretBool(~CtMask64(CtIsZero64(w))); }
  // Build from an existing all-ones/all-zeros mask (TCB use).
  static constexpr SecretBool FromMask(uint64_t mask) { return SecretBool(mask); }
  static constexpr SecretBool False() { return SecretBool(0); }
  static constexpr SecretBool True() { return SecretBool(~uint64_t{0}); }

  SecretBool operator&(SecretBool o) const { return SecretBool(mask_ & o.mask_); }
  SecretBool operator|(SecretBool o) const { return SecretBool(mask_ | o.mask_); }
  SecretBool operator^(SecretBool o) const { return SecretBool(mask_ ^ o.mask_); }
  SecretBool operator!() const { return SecretBool(~mask_); }
  SecretBool& operator&=(SecretBool o) { mask_ &= o.mask_; return *this; }
  SecretBool& operator|=(SecretBool o) { mask_ |= o.mask_; return *this; }

  // Branching on a secret is a compile error; Declassify is the audited way out.
  explicit operator bool() const = delete;

  // The all-ones/all-zeros mask (TCB use: feeds the *Mask primitives directly).
  uint64_t mask() const { return mask_; }

  // A 0/1 byte for storing into record flag fields. The byte is still secret data --
  // store it, move it obliviously, reload with FromWord; never branch on it.
  uint8_t ToFlagByte() const { return static_cast<uint8_t>(mask_ & 1); }

  // Audited escape hatch: emits kDeclassify(site) into the trace, un-poisons under
  // SNOOPY_CT_CHECK, and returns the plain bool.
  bool Declassify(const char* site) const {
    TraceRecord(TraceOp::kDeclassify, DeclassifySiteHash(site));
    UnpoisonSecret(&mask_, sizeof(mask_));
    return static_cast<bool>(mask_ & 1);
  }

 private:
  constexpr explicit SecretBool(uint64_t mask) : mask_(mask) {}
  uint64_t mask_;
};

static_assert(std::is_trivially_copyable_v<SecretBool> && sizeof(SecretBool) == 8,
              "SecretBool must move through CtCondSwapBytes like a plain word");

// A secret unsigned integer. Arithmetic and bitwise operations stay in the taint
// domain; comparisons return SecretBool; conversion to bool/integer is deleted, so a
// Secret can never become a branch condition or an array index.
template <typename T>
class Secret {
  static_assert(std::is_integral_v<T> && std::is_unsigned_v<T>,
                "Secret<T> supports unsigned integral types");

 public:
  constexpr Secret() : v_(0) {}
  constexpr Secret(T v) : v_(v) {}  // NOLINT: implicit so public constants mix freely

  Secret operator+(Secret o) const { return Secret(static_cast<T>(v_ + o.v_)); }
  Secret operator-(Secret o) const { return Secret(static_cast<T>(v_ - o.v_)); }
  Secret operator&(Secret o) const { return Secret(static_cast<T>(v_ & o.v_)); }
  Secret operator|(Secret o) const { return Secret(static_cast<T>(v_ | o.v_)); }
  Secret operator^(Secret o) const { return Secret(static_cast<T>(v_ ^ o.v_)); }
  Secret operator~() const { return Secret(static_cast<T>(~v_)); }
  Secret operator<<(int s) const { return Secret(static_cast<T>(v_ << s)); }
  Secret operator>>(int s) const { return Secret(static_cast<T>(v_ >> s)); }
  Secret& operator+=(Secret o) { v_ = static_cast<T>(v_ + o.v_); return *this; }
  Secret& operator-=(Secret o) { v_ = static_cast<T>(v_ - o.v_); return *this; }
  Secret& operator|=(Secret o) { v_ = static_cast<T>(v_ | o.v_); return *this; }
  Secret& operator&=(Secret o) { v_ = static_cast<T>(v_ & o.v_); return *this; }

  SecretBool operator==(Secret o) const { return SecretBool::FromBool(CtEq64(v_, o.v_)); }
  SecretBool operator!=(Secret o) const { return !(*this == o); }
  SecretBool operator<(Secret o) const { return SecretBool::FromBool(CtLt64(v_, o.v_)); }
  SecretBool operator<=(Secret o) const { return SecretBool::FromBool(CtLe64(v_, o.v_)); }
  SecretBool operator>(Secret o) const { return SecretBool::FromBool(CtGt64(v_, o.v_)); }
  SecretBool operator>=(Secret o) const { return SecretBool::FromBool(CtGe64(v_, o.v_)); }

  // A Secret is not a bool and not an index.
  explicit operator bool() const = delete;

  // True iff the low bit / any bit is set, staying in the taint domain.
  SecretBool LowBit() const { return SecretBool::FromMask(CtMask64(v_ & 1)); }
  SecretBool NonZero() const { return SecretBool::FromWord(v_); }

  // Audited escape hatch; see SecretBool::Declassify.
  T Declassify(const char* site) const {
    TraceRecord(TraceOp::kDeclassify, DeclassifySiteHash(site));
    UnpoisonSecret(&v_, sizeof(v_));
    return v_;
  }

  // TCB escape without an audit event, for implementing new oblivious primitives on
  // top of existing ones (e.g. the SipHash adapter). Flagged by ct_lint outside the
  // manifest's "tcb" file list.
  T SecretValueForPrimitive() const { return v_; }

 private:
  T v_;
};

static_assert(std::is_trivially_copyable_v<Secret<uint64_t>> &&
                  sizeof(Secret<uint64_t>) == 8,
              "Secret<T> must move through CtCondSwapBytes like the raw T");

using SecretU8 = Secret<uint8_t>;
using SecretU32 = Secret<uint32_t>;
using SecretU64 = Secret<uint64_t>;

// ---- Interop with the primitives (SecretBool-conditioned oblivious operators) ----

// Select between secrets under a secret condition.
template <typename T>
Secret<T> CtSelect(SecretBool c, Secret<T> a, Secret<T> b) {
  return Secret<T>(static_cast<T>(CtSelect64Mask(
      c.mask(), a.SecretValueForPrimitive(), b.SecretValueForPrimitive())));
}

inline SecretBool CtSelect(SecretBool c, SecretBool a, SecretBool b) {
  return SecretBool::FromMask(CtSelect64Mask(c.mask(), a.mask(), b.mask()));
}

// Non-template spelling so public constants convert implicitly:
// `count += CtSelectU64(keep, 1, 0)`.
inline SecretU64 CtSelectU64(SecretBool c, SecretU64 a, SecretU64 b) {
  return CtSelect(c, a, b);
}

// dst <- (c ? src : dst) over raw bytes / trivially-copyable values, mask-driven.
inline void CtCondCopyBytes(SecretBool c, void* dst, const void* src, size_t n) {
  CtCondCopyBytesMask(c.mask(), dst, src, n);
}

inline void CtCondSwapBytes(SecretBool c, void* a, void* b, size_t n) {
  CtCondSwapBytesMask(c.mask(), a, b, n);
}

template <typename T>
void OCmpSet(SecretBool c, T& dst, const T& src) {
  static_assert(std::is_trivially_copyable_v<T>, "OCmpSet requires trivially copyable T");
  CtCondCopyBytesMask(c.mask(), &dst, &src, sizeof(T));
}

template <typename T>
void OCmpSwap(SecretBool c, T& a, T& b) {
  static_assert(std::is_trivially_copyable_v<T>, "OCmpSwap requires trivially copyable T");
  CtCondSwapBytesMask(c.mask(), &a, &b, sizeof(T));
}

// Constant-time equality over secret buffers, staying in the taint domain (the
// Secret-typed sibling of CtEqualBytes; used for MAC/tag comparison).
inline SecretBool SecretEqualBytes(const void* a, const void* b, size_t n) {
  const auto* pa = static_cast<const uint8_t*>(a);
  const auto* pb = static_cast<const uint8_t*>(b);
  uint64_t acc = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t wa;
    uint64_t wb;
    std::memcpy(&wa, pa + i, 8);
    std::memcpy(&wb, pb + i, 8);
    acc |= wa ^ wb;
  }
  for (; i < n; ++i) {
    acc |= static_cast<uint64_t>(pa[i] ^ pb[i]);
  }
  return !SecretBool::FromWord(acc);
}

// ---- Secret field loads/stores on raw record memory ----
//
// Records move as opaque byte blocks; these helpers are the typed ports where secret
// fields enter and leave the taint domain. Stores write the raw word -- record bytes
// are secret data wherever they sit, which the poisoning harness tracks dynamically.

inline SecretU64 LoadSecretU64(const uint8_t* rec, size_t off) {
  uint64_t v;
  std::memcpy(&v, rec + off, sizeof(v));
  return SecretU64(v);
}

inline SecretU32 LoadSecretU32(const uint8_t* rec, size_t off) {
  uint32_t v;
  std::memcpy(&v, rec + off, sizeof(v));
  return SecretU32(v);
}

inline SecretU8 LoadSecretU8(const uint8_t* rec, size_t off) { return SecretU8(rec[off]); }

inline void StoreSecretU64(uint8_t* rec, size_t off, SecretU64 v) {
  const uint64_t raw = v.SecretValueForPrimitive();
  std::memcpy(rec + off, &raw, sizeof(raw));
}

inline void StoreSecretU32(uint8_t* rec, size_t off, SecretU32 v) {
  const uint32_t raw = v.SecretValueForPrimitive();
  std::memcpy(rec + off, &raw, sizeof(raw));
}

// Stores into a typed struct field (e.g. RequestHeader members) instead of a raw
// record offset. Same taint boundary as the offset-based stores above.
inline void StoreSecret(uint64_t& dst, SecretU64 v) { dst = v.SecretValueForPrimitive(); }
inline void StoreSecret(uint32_t& dst, SecretU32 v) { dst = v.SecretValueForPrimitive(); }
inline void StoreSecret(uint8_t& dst, SecretU8 v) { dst = v.SecretValueForPrimitive(); }

// Widening conversions within the taint domain (always safe).
inline SecretU64 Widen(SecretU32 v) { return SecretU64(v.SecretValueForPrimitive()); }
inline SecretU64 Widen(SecretU8 v) { return SecretU64(v.SecretValueForPrimitive()); }

// Explicit (named, auditable) narrowing for values the caller guarantees fit, e.g. a
// bin index < 2^32 being stored into a uint32 record field.
inline SecretU32 NarrowToU32(SecretU64 v) {
  return SecretU32(static_cast<uint32_t>(v.SecretValueForPrimitive()));
}

// v mod m for a public modulus m (bucket counts are public geometry). Caveat shared
// with the seed implementation: integer division latency is operand-dependent on some
// microarchitectures; like the paper we treat source-level access patterns as the
// boundary (see README "Security model and caveats").
inline SecretU64 ModPublic(SecretU64 v, uint64_t m) {
  return SecretU64(v.SecretValueForPrimitive() % m);
}

}  // namespace snoopy

#endif  // SNOOPY_SRC_OBL_SECRET_H_
