// Two-tier oblivious hash table (Chan et al., ASIACRYPT'17), as used by the Snoopy
// subORAM (paper section 5).
//
// The table is built once per batch over B distinct-key records. Construction is
// oblivious (oblivious sorts + linear scans + compaction via ObliviousBinPlacement);
// afterwards, looking a key up touches exactly one full bucket in each tier, so as long
// as each key is queried at most once the access pattern is a fresh PRF of the key and
// reveals nothing (the paper's usage scans *all stored object keys*, a public
// sequence).
//
// Why two tiers: one-tier tables need buckets sized for a negligible overflow
// probability, which is large; letting tier-1 buckets overflow into a second, smaller
// table keeps both bucket sizes small (paper reports ~10x smaller buckets at B = 4096).
// Tier sizes are public functions of (B, lambda) computed in ChooseOhtParams from the
// exact binomial numerics in analysis/binomial.h; tier-1 overflow beyond the public cap
// is a negligible-probability abort.

#ifndef SNOOPY_SRC_OBL_HASH_TABLE_H_
#define SNOOPY_SRC_OBL_HASH_TABLE_H_

#include <cstdint>
#include <span>

#include "src/crypto/rng.h"
#include "src/crypto/siphash.h"
#include "src/obl/bucket_sort.h"
#include "src/obl/slab.h"

namespace snoopy {

// Byte offsets of the fields the hash table reads/writes inside each record.
struct OhtSchema {
  size_t key_offset;    // uint64: record key (distinct across the batch)
  size_t bin_offset;    // uint32: scratch field used during construction
  size_t dummy_offset;  // uint8: set on padding dummies the table inserts
  size_t order_offset;  // uint64: scratch field used during construction
  size_t dedup_offset;  // uint64: scratch field used during construction
};

struct OhtParams {
  uint64_t n = 0;             // batch size the table was sized for
  uint64_t bins1 = 1;         // tier-1 bucket count
  uint64_t z1 = 1;            // tier-1 bucket capacity
  uint64_t overflow_cap = 0;  // public bound on total tier-1 overflow
  uint64_t bins2 = 0;         // tier-2 bucket count (0: no second tier)
  uint64_t z2 = 0;            // tier-2 bucket capacity

  uint64_t LookupCost() const { return z1 + z2; }
  uint64_t TotalSlots() const { return bins1 * z1 + bins2 * z2; }
};

// Picks tier geometry minimizing the per-lookup scan cost z1 + z2 subject to
// Pr[construction aborts] <= 2^-(lambda-1).
OhtParams ChooseOhtParams(uint64_t n, uint32_t lambda);

// Single-tier geometry with the same failure bound, for comparison (bench + tests).
OhtParams ChooseSingleTierParams(uint64_t n, uint32_t lambda);

class TwoTierOht {
 public:
  TwoTierOht(const OhtSchema& schema, uint32_t lambda) : schema_(schema), lambda_(lambda) {}

  // Builds the table over `batch` (consumed). Keys must be distinct. Returns false on
  // the negligible-probability overflow abort. Fresh bucket-assignment keys are drawn
  // from `rng` for every build (paper section 5: "for every batch we sample a new
  // key"). `sort_threads` parallelizes the construction sorts; `sort_strategy`
  // selects their implementation (both construction sorts are bucket-eligible: bins
  // are fresh keyed hashes of distinct keys, padding is deterministic-per-bin or
  // uniform random, so the bin multiset is simulatable from public parameters).
  bool Build(ByteSlab&& batch, Rng& rng, int sort_threads = 1,
             SortStrategy sort_strategy = SortStrategy::kBitonic);

  const OhtParams& params() const { return params_; }

  // The two buckets that may contain `key`. A caller performing an oblivious lookup
  // must scan both spans in full. Spans are invalidated by Build/ExtractAll.
  std::span<uint8_t> Tier1Bucket(uint64_t key);
  std::span<uint8_t> Tier2Bucket(uint64_t key);  // empty span if the table has one tier
  // Bucket indices (for callers that serialize bucket access across scan threads).
  uint64_t Tier1BucketIndex(uint64_t key) const;
  uint64_t Tier2BucketIndex(uint64_t key) const;  // 0 if the table has one tier

  size_t record_bytes() const { return tier1_.record_bytes(); }

  // Obliviously extracts the n real records (dropping the table's padding dummies),
  // in unspecified order. The table becomes empty.
  ByteSlab ExtractAll();

 private:
  OhtSchema schema_;
  uint32_t lambda_;
  OhtParams params_;
  SipKey key1_{};
  SipKey key2_{};
  ByteSlab tier1_;
  ByteSlab tier2_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_OBL_HASH_TABLE_H_
