#include "src/obl/kernels.h"

namespace snoopy {

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kGeneric:
      return "generic";
    case KernelBackend::kSSE2:
      return "sse2";
    case KernelBackend::kAVX2:
      return "avx2";
    case KernelBackend::kAVX512:
      return "avx512";
  }
  return "unknown";
}

std::vector<KernelBackend> SupportedKernelBackends() {
  std::vector<KernelBackend> backends{KernelBackend::kGeneric};
  for (const KernelBackend b :
       {KernelBackend::kSSE2, KernelBackend::kAVX2, KernelBackend::kAVX512}) {
    if (KernelBackendSupported(b)) {
      backends.push_back(b);
    }
  }
  return backends;
}

}  // namespace snoopy
