#include "src/obl/bucket_sort.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

#include "src/analysis/binomial.h"
#include "src/enclave/trace.h"
#include "src/obl/parallel.h"

namespace snoopy {

namespace {

// Crossover constants for the kAuto pass-count model. These mirror the sim's
// calibrated CostModelConfig ([A4] anchors): kSortBlockedDiscount is
// CostModelConfig::sort_blocked_discount (the relative cost of an L1-tile-resident
// compare-exchange pass), kRouteTagBytes is the per-level per-record routing
// traffic — the butterfly moves only the 8-byte (label, index) tag, gather plus
// split — so a routing level costs kRouteTagBytes / record_bytes of a streaming
// record pass, and kCleanupLocalityDiscount reflects that cleanup sorts run over
// single buckets that stay cache-resident. CostModel::BucketSortSeconds
// (src/sim/cost_model.cc) prices epochs with the same algebra.
constexpr double kSortBlockedDiscount = 0.55;
constexpr double kRouteTagBytes = 16.0;
// Whole-record passes outside the butterfly: label extraction + tag scatter,
// the materialization gather, and the sorted emission.
constexpr double kBucketFixedPasses = 2.5;
constexpr double kCleanupLocalityDiscount = 0.7;
constexpr double kAutoSafetyMargin = 1.15;

// Below this the arena setup and per-pair scratch dominate any comparator savings
// (same knee as AdaptiveSortThreads' parallel threshold).
constexpr uint64_t kMinBucketRecords = 4096;

// Smallest acceptable mean bucket load. The overflow tail must clear 2^-lambda
// with capacity Z = 2 * ceil(n / B); loads this size give the binomial tail a
// comfortable exponent (~0.55 bits per record of mean load at Z = 2 * mean) while
// keeping cleanup sorts cache-resident. The geometry search below still verifies
// the exact bound and shrinks B further when needed.
constexpr uint64_t kMinMeanLoad = 256;

uint32_t FloorLog2(uint64_t v) {
  uint32_t l = 0;
  while (v > 1) {
    v >>= 1;
    ++l;
  }
  return l;
}

// P[some bucket overflows at some butterfly level], by union bound. After level l
// (1-based), a bucket's candidate population is the q * 2^l records of the 2^l
// source buckets that can reach it, each landing there iff its label's top l bits
// match: probability at most 2^-l + 1/num_bins (a level-l label range covers
// B / 2^l consecutive labels, i.e. at most num_bins / 2^l + 1 bins under the
// monotone collapse). The bound is over iid uniform bins — the bins_simulatable
// precondition; deterministically even per-bin padding (the OHT's z1 dummies per
// bin) concentrates strictly less than the binomial model assumes (DESIGN.md).
double RouteOverflowProbability(uint64_t n, uint64_t num_bins, uint64_t buckets,
                                uint64_t q, uint64_t capacity, uint32_t levels) {
  double fail = 0.0;
  for (uint32_t l = 1; l <= levels; ++l) {
    const uint64_t candidates = std::min<uint64_t>(n, q << l);
    if (candidates <= capacity) {
      continue;  // population can't exceed capacity
    }
    const double p =
        std::min(1.0, std::ldexp(1.0, -static_cast<int>(l)) +
                          1.0 / static_cast<double>(num_bins));
    fail += static_cast<double>(buckets) * BinomialTailAbove(candidates, p, capacity);
    if (fail >= 1.0) {
      return 1.0;
    }
  }
  return fail;
}

struct ParamsKey {
  uint64_t n;
  uint64_t num_bins;
  uint32_t lambda;
  bool operator<(const ParamsKey& o) const {
    return std::tie(n, num_bins, lambda) < std::tie(o.n, o.num_bins, o.lambda);
  }
};

}  // namespace

const char* SortStrategyName(SortStrategy s) {
  switch (s) {
    case SortStrategy::kBitonic:
      return "bitonic";
    case SortStrategy::kBucket:
      return "bucket";
    case SortStrategy::kAuto:
      return "auto";
  }
  return "unknown";
}

BucketSortParams ChooseBucketParams(uint64_t n, uint64_t num_bins, uint32_t lambda) {
  BucketSortParams out;
  if (n < kMinBucketRecords || num_bins < 2) {
    return out;
  }

  static std::mutex cache_mutex;
  static std::map<ParamsKey, BucketSortParams> cache;
  const ParamsKey key{n, num_bins, lambda};
  {
    std::lock_guard<std::mutex> lock(cache_mutex);
    const auto it = cache.find(key);
    if (it != cache.end()) {
      return it->second;
    }
  }

  // Largest power-of-two bucket count that keeps the mean load >= kMinMeanLoad and
  // aggregates whole bins (B <= num_bins keeps the collapse monotone AND useful);
  // halve until the exact union bound clears 2^-lambda.
  const uint64_t cap = std::min<uint64_t>(num_bins, n / kMinMeanLoad);
  const double budget = std::ldexp(1.0, -static_cast<int>(lambda));
  for (uint64_t b = cap >= 2 ? uint64_t{1} << FloorLog2(cap) : 0; b >= 2; b /= 2) {
    const uint64_t q = (n + b - 1) / b;
    const uint64_t z = 2 * q;
    const uint32_t levels = FloorLog2(b);
    if (RouteOverflowProbability(n, num_bins, b, q, z, levels) <= budget) {
      out.buckets = b;
      out.capacity = z;
      out.levels = levels;
      out.ok = true;
      break;
    }
  }

  std::lock_guard<std::mutex> lock(cache_mutex);
  cache.emplace(key, out);
  return out;
}

double BitonicSortPassesPerElement(uint64_t n, size_t record_bytes) {
  if (n < 2) {
    return 0.0;
  }
  // The blocked-execution algebra from CostModel::BitonicSortSeconds: of the
  // L(L+1)/2 compare-exchange passes, the tile-resident ones cost
  // kSortBlockedDiscount relative to a streaming pass.
  const double lg = std::log2(static_cast<double>(n));
  const double lb = std::min(
      lg, std::log2(static_cast<double>(SortBlockRecords(record_bytes))));
  const double total_passes = lg * (lg + 1.0) / 2.0;
  const double tile_passes = lb * (lb + 1.0) / 2.0 + (lg - lb) * lb;
  const double tile_fraction = total_passes > 0.0 ? tile_passes / total_passes : 0.0;
  const double blocked_factor =
      (1.0 - tile_fraction) + tile_fraction * kSortBlockedDiscount;
  return blocked_factor * total_passes;
}

double BucketSortPassesPerElement(uint64_t n, size_t record_bytes,
                                  const BucketSortParams& params) {
  (void)n;
  if (!params.ok) {
    return 1e30;  // never selected
  }
  const double mean_load =
      std::max(2.0, static_cast<double>(params.capacity) / 2.0);
  const double lz = std::log2(mean_load);
  const double cleanup_passes = lz * (lz + 1.0) / 2.0;
  const double route_passes = static_cast<double>(params.levels) * kRouteTagBytes /
                              std::max(1.0, static_cast<double>(record_bytes));
  return route_passes + kBucketFixedPasses +
         kCleanupLocalityDiscount * cleanup_passes;
}

SortStrategy ResolveSortStrategy(SortStrategy configured, uint64_t n, size_t record_bytes,
                                 const SortBinSpec* spec, BucketSortParams* params) {
  SortStrategy s = configured;
  if (const char* env = std::getenv("SNOOPY_SORT_STRATEGY")) {
    if (std::strcmp(env, "bitonic") == 0) {
      s = SortStrategy::kBitonic;
    } else if (std::strcmp(env, "bucket") == 0) {
      s = SortStrategy::kBucket;
    } else if (std::strcmp(env, "auto") == 0) {
      s = SortStrategy::kAuto;
    }
  }
  if (s == SortStrategy::kBitonic || spec == nullptr || !spec->bins_simulatable ||
      spec->num_bins < 2 || n < kMinBucketRecords || n > UINT32_MAX) {
    return SortStrategy::kBitonic;
  }
  BucketSortParams chosen = ChooseBucketParams(n, spec->num_bins, spec->lambda);
  if (!chosen.ok) {
    return SortStrategy::kBitonic;
  }
  if (s == SortStrategy::kAuto &&
      BucketSortPassesPerElement(n, record_bytes, chosen) * kAutoSafetyMargin >=
          BitonicSortPassesPerElement(n, record_bytes)) {
    return SortStrategy::kBitonic;
  }
  if (params != nullptr) {
    *params = chosen;
  }
  return SortStrategy::kBucket;
}

__attribute__((noinline)) uint64_t ResolveSortStrategyPacked(
    uint8_t configured, uint64_t n, uint64_t record_bytes, uint64_t num_bins,
    uint32_t bins_simulatable, uint32_t lambda) {
  SortBinSpec spec;
  spec.num_bins = num_bins;
  spec.bins_simulatable = bins_simulatable != 0;
  spec.lambda = lambda;
  BucketSortParams params;
  if (ResolveSortStrategy(static_cast<SortStrategy>(configured), n, record_bytes, &spec,
                          &params) != SortStrategy::kBucket) {
    return 0;
  }
  return uint64_t{1} | (uint64_t{params.levels} << 1) | (params.capacity << 8);
}

namespace {

// Fork-join wrapper over RouteLevelRange: recursively halve the pair range while
// there is thread budget, exactly like the bitonic recursion — the range split is
// public and the per-half trace buffers merge first-then-second, so the
// kBucketScan stream is in ascending pair order at any thread count.
void RouteLevelParallel(const bucket_internal::BucketArena& arena, uint32_t m,
                        uint32_t level, uint64_t pair_lo, uint64_t pair_hi, int threads,
                        std::atomic<bool>* ok) {
  if (threads <= 1 || pair_hi - pair_lo <= 1) {
    if (!bucket_internal::RouteLevelRange(arena, m, level, pair_lo, pair_hi)) {
      ok->store(false, std::memory_order_relaxed);
    }
    return;
  }
  const uint64_t mid = pair_lo + (pair_hi - pair_lo) / 2;
  internal::TraceForkJoinHalves(
      [&] { RouteLevelParallel(arena, m, level, pair_lo, mid, threads / 2, ok); },
      [&] {
        RouteLevelParallel(arena, m, level, mid, pair_hi, threads - threads / 2, ok);
      },
      threads);
}

// Type-erasure shim so the BucketCleanupCSwap template (audited with a concrete
// functor) runs the caller's trampoline comparator in production.
struct WithinRef {
  SortLessFn fn;
  const void* ctx;
  SecretBool operator()(const uint8_t* a, const uint8_t* b) const { return fn(ctx, a, b); }
};

// Per-bucket materialize-then-sort, fork-joined over bucket ranges. Fusing the
// materialization gather with the cleanup keeps each bucket L2-resident between
// the two steps (gather the records, immediately sort them) instead of streaming
// the whole arena twice.
void MaterializeAndCleanupParallel(const bucket_internal::BucketArena& arena,
                                   const uint8_t* data, size_t bin_offset,
                                   WithinRef within, uint64_t bucket_lo,
                                   uint64_t bucket_hi, int threads) {
  if (threads <= 1 || bucket_hi - bucket_lo <= 1) {
    for (uint64_t b = bucket_lo; b < bucket_hi; ++b) {
      bucket_internal::MaterializeBucketRange(arena, data, b, b + 1);
      const uint32_t cnt = arena.counts[b];
      if (cnt < 2) {
        continue;
      }
      const BucketCleanupCSwap<WithinRef> cswap{
          arena.records + b * arena.capacity * arena.stride, arena.stride,
          bin_offset, b * arena.capacity, within};
      internal::BitonicTileSort(0, cnt, /*asc=*/true, cswap);
    }
    return;
  }
  const uint64_t mid = bucket_lo + (bucket_hi - bucket_lo) / 2;
  internal::TraceForkJoinHalves(
      [&] {
        MaterializeAndCleanupParallel(arena, data, bin_offset, within, bucket_lo, mid,
                                      threads / 2);
      },
      [&] {
        MaterializeAndCleanupParallel(arena, data, bin_offset, within, mid, bucket_hi,
                                      threads - threads / 2);
      },
      threads);
}

}  // namespace

// noinline: this is the binary-audit boundary. The label declassification and the
// routing that branches on the declassified labels are public *by the simulatable-
// bins contract*, which the binary taint verifier cannot model — so, exactly like
// PartitionSlabByBin's boundary split, they must not inline into audited roots
// (tools/ct_binary_manifest.json allowlists this symbol; the secret-handling
// kernels inside it are audited separately via ctdf_bucket_route/ctdf_bucket_cleanup).
__attribute__((noinline)) bool TryBucketSortSlab(uint8_t* data, uint64_t n, size_t stride,
                                                 size_t bin_offset, uint64_t num_bins,
                                                 uint32_t lambda, SortLessFn less_within_bin,
                                                 const void* less_ctx, int threads) {
  const BucketSortParams params = ChooseBucketParams(n, num_bins, lambda);
  // n must fit the u32 input-index tags the butterfly routes (ResolveSortStrategy
  // applies the same gate, so this bound is never the surprising path).
  if (!params.ok || n < 2 || n > UINT32_MAX) {
    return false;
  }
  if (threads < 1) {
    threads = 1;
  }
  const uint64_t b = params.buckets;
  const uint64_t z = params.capacity;
  const uint64_t q = (n + b - 1) / b;

  // Phase 1: extract and declassify the labels. One fixed-order kDeclassify event
  // per record; the label is the caller's keyed-hash bin collapsed monotonically
  // onto the B buckets (floor(bin * B / num_bins)), so global bucket order implies
  // global bin order.
  std::vector<uint32_t> input_labels(n);
  // SNOOPY_OBLIVIOUS_BEGIN(bucket_labels)
  // ct-public: i n data stride input_labels b label num_bins bin_offset
  // ct-calls: LoadSecretU32 Widen Declassify min
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t bin =
        Widen(LoadSecretU32(data + i * stride, bin_offset)).Declassify("bucket_sort.bin");
    const uint64_t label = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(bin) * b) / num_bins);
    input_labels[i] = static_cast<uint32_t>(std::min<uint64_t>(label, b - 1));
  }
  // SNOOPY_OBLIVIOUS_END(bucket_labels)

  // Phase 2: scatter the (label, index) tags into the arena, q per bucket in input
  // order (<= Z/2 each). Record bytes stay in the input slab until the post-routing
  // materialization; arena slots beyond a bucket's count are never read.
  std::vector<uint8_t> arena_records(b * z * stride);
  std::vector<uint32_t> arena_labels(b * z);
  std::vector<uint32_t> arena_indices(b * z);
  std::vector<uint32_t> arena_counts(b, 0);
  bucket_internal::BucketArena arena{arena_records.data(), arena_labels.data(),
                                     arena_indices.data(), arena_counts.data(),
                                     b,                    z,
                                     stride};
  for (uint64_t bucket = 0; bucket < b; ++bucket) {
    const uint64_t lo = bucket * q;
    const uint64_t hi = std::min<uint64_t>(n, lo + q);
    if (lo >= hi) {
      break;
    }
    std::memcpy(arena_labels.data() + bucket * z, input_labels.data() + lo,
                (hi - lo) * sizeof(uint32_t));
    for (uint64_t i = lo; i < hi; ++i) {
      arena_indices[bucket * z + (i - lo)] = static_cast<uint32_t>(i);
    }
    arena_counts[bucket] = static_cast<uint32_t>(hi - lo);
  }
  TraceRecord(TraceOp::kAppend, n, b * z);

  // Phase 3: the butterfly. MSB-first: level l pairs buckets differing in bit
  // (levels - 1 - l); after it, labels agree with their bucket on the top l + 1
  // bits. Per-level fork-join over the B/2 independent pairs on the WorkPool.
  std::atomic<bool> route_ok{true};
  for (uint32_t level = 0; level < params.levels; ++level) {
    const uint32_t m = uint32_t{1} << (params.levels - 1 - level);
    RouteLevelParallel(arena, m, level, 0, b / 2, threads, &route_ok);
    if (!route_ok.load(std::memory_order_relaxed)) {
      // A bucket overflowed: a public event bounded at 2^-lambda given the
      // bins_simulatable precondition. Debug-fatal (the caller's attestation was
      // wrong or the bound was misconfigured); in release the caller falls back
      // to the bitonic network on the untouched input slab.
      assert(!"bucket sort route overflow beyond the 2^-lambda bound");
      return false;
    }
  }

  // Phase 4: materialize each bucket's records from the input slab (the tags
  // carried their public source indices through the butterfly) and clean it up
  // under (bin, within-bin), with global arena slot indices in the trace.
  MaterializeAndCleanupParallel(arena, data, bin_offset,
                                WithinRef{less_within_bin, less_ctx}, 0, b, threads);

  // Phase 5: emit the real prefixes in bucket order. Counts are public; their sum
  // is exactly n (routing preserves every record once overflow is excluded).
  uint64_t total = 0;
  for (uint64_t bucket = 0; bucket < b; ++bucket) {
    total += arena_counts[bucket];
  }
  if (total != n) {
    assert(!"bucket sort lost records during routing");
    return false;
  }
  uint64_t cursor = 0;
  for (uint64_t bucket = 0; bucket < b; ++bucket) {
    const uint32_t cnt = arena_counts[bucket];
    std::memcpy(data + cursor * stride,
                arena_records.data() + bucket * z * stride,
                static_cast<size_t>(cnt) * stride);
    TraceRecord(TraceOp::kAppend, cursor, cnt);
    cursor += cnt;
  }
  return true;
}

// noinline: audit boundary for composite ct_dataflow roots (see the header
// comment). Runs the exact template entry point with a type-erased comparator.
__attribute__((noinline)) void ObliviousSortSlabErased(
    ByteSlab& slab, size_t bin_offset, uint64_t num_bins, uint32_t bins_simulatable,
    uint32_t lambda, SortLessFn less_within_bin, const void* less_ctx,
    SortStrategy strategy, int threads, size_t block_records) {
  SortBinSpec spec;
  spec.bin_offset = bin_offset;
  spec.num_bins = num_bins;
  spec.bins_simulatable = bins_simulatable != 0;
  spec.lambda = lambda;
  ObliviousSortSlab(slab, spec, WithinRef{less_within_bin, less_ctx}, strategy, threads,
                    block_records);
}

}  // namespace snoopy
