// Oblivious bin placement.
//
// Given n records each tagged with a secret bin index in [0, m), produce a slab of
// exactly m * z records where bin b occupies slots [b*z, (b+1)*z): the bin's real
// records first (in sort-key order), padded to z with dummies. Nothing is revealed
// beyond the public (n, m, z): the procedure is append + oblivious sort + oblivious
// linear scan + oblivious compaction, the exact pipeline of the Snoopy load balancer
// (paper Figure 5) and of oblivious hash-table construction (section 5).
//
// Records are raw fixed-stride byte strings; the caller describes where the secret
// fields live via BinSchema. All field reads/writes inside the routine are branchless.

#ifndef SNOOPY_SRC_OBL_BIN_PLACEMENT_H_
#define SNOOPY_SRC_OBL_BIN_PLACEMENT_H_

#include <cstdint>
#include <functional>

#include "src/obl/bucket_sort.h"
#include "src/obl/slab.h"

namespace snoopy {

// Byte offsets of the fields bin placement manipulates. All fields are little-endian.
struct BinSchema {
  size_t bin_offset;    // uint32: secret bin index
  size_t dummy_offset;  // uint8: 1 if the record is a padding dummy
  size_t order_offset;  // uint64: secondary sort key (ties broken by it); for
                        // deduplication this must order duplicates survivor-first
  size_t dedup_offset;  // uint64: records in the same bin with equal dedup keys are
                        // duplicates; only used when dedup is enabled
};

struct BinPlacementOptions {
  uint32_t num_bins = 1;
  uint32_t bin_capacity = 1;  // z
  bool dedup = false;         // drop all but the first record of each duplicate group
  int sort_threads = 1;
  // Strategy for the placement sort (ObliviousSortSlab). The bucket strategy is
  // only eligible when the caller attests that the record bin tags are simulatable
  // from public parameters (keyed hash of distinct keys / uniform draws) — see
  // SortBinSpec::bins_simulatable. The load balancer's pre-dedup batches carry
  // duplicate keys and must leave this false.
  SortStrategy sort_strategy = SortStrategy::kBitonic;
  bool bins_simulatable = false;
  uint32_t lambda = 40;  // overflow-failure exponent for the bucket route
};

struct BinPlacementResult {
  // False iff some bin had more eligible records than its capacity, i.e. real records
  // were dropped. With capacities from analysis/batch_bound this happens with
  // probability <= 2^-lambda; callers treat it as an abort.
  bool ok = false;
  // Number of real (non-dummy, non-duplicate) records placed.
  uint64_t placed = 0;
};

// Rearranges `slab` in place into m * z slots as described above. `make_dummy` must
// initialize a padding record in the provided buffer; bin placement then assigns its
// bin/dummy fields itself. On return slab.size() == num_bins * bin_capacity.
BinPlacementResult ObliviousBinPlacement(
    ByteSlab& slab, const BinSchema& schema, const BinPlacementOptions& options,
    const std::function<void(uint8_t*)>& make_dummy);

}  // namespace snoopy

#endif  // SNOOPY_SRC_OBL_BIN_PLACEMENT_H_
