// Vectorized oblivious kernels with one-time runtime dispatch.
//
// primitives.h defines the oblivious compare-and-set contract with scalar 8-byte mask
// arithmetic; this header provides SSE2/AVX2/AVX-512 implementations of the three hot
// byte-level operators (conditional copy, conditional swap, equality) behind a single
// public dispatch decision. The Snoopy paper (section 8.1) instantiates its oblivious
// operators with AVX-512 masked moves inside SGX; the AVX-512 backend here is that
// construction literally (`vpblendmb` under an all-ones/all-zeros k-mask), while the
// AVX2/SSE2 backends use the and/andnot/or select and masked xor-swap forms.
//
// Obliviousness argument, per backend:
//  - The secret mask enters a vector register through a broadcast and a value barrier
//    (KernelVecBarrier / ValueBarrier), so the compiler cannot specialize on it and no
//    instruction's *control flow* depends on it.
//  - Every load and store is full-width and unconditional: a kernel touches exactly the
//    same addresses whether the mask is all-ones or all-zeros. Masked *stores* are
//    deliberately not used for suppression -- the AVX-512 copy blends in registers and
//    then stores the full cache line, so the written byte set is mask-independent.
//  - Loop trip counts depend only on the public length n.
// The kernels therefore sit *below* trace granularity: the adversary-visible trace
// (enclave/trace.h) records logical events like kCondSwap(i, j), and every backend
// executes the identical logical sequence (tests/kernels_test.cc pins byte-identical
// traces across backends).
//
// Dispatch is public state: the backend is chosen once from CPUID (overridable with
// SNOOPY_FORCE_GENERIC_KERNELS=1 or SNOOPY_KERNEL_BACKEND=generic|sse2|avx2|avx512,
// or pinned programmatically via SetKernelBackend for tests), cached in an atomic, and
// never depends on data. Branching on it leaks nothing.

#ifndef SNOOPY_SRC_OBL_KERNELS_H_
#define SNOOPY_SRC_OBL_KERNELS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "src/obl/primitives.h"
#include "src/obl/secret.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SNOOPY_KERNELS_X86 1
#include <immintrin.h>
#else
#define SNOOPY_KERNELS_X86 0
#endif

namespace snoopy {

// Widest-first preference order; numeric order is the preference order.
enum class KernelBackend : int { kGeneric = 0, kSSE2 = 1, kAVX2 = 2, kAVX512 = 3 };

// kernels.cc: human-readable name ("generic", "sse2", ...) and the list of backends
// this CPU can run (always includes kGeneric), for benches and test parameterization.
const char* KernelBackendName(KernelBackend backend);
std::vector<KernelBackend> SupportedKernelBackends();

inline bool KernelBackendSupported(KernelBackend backend) {
  if (backend == KernelBackend::kGeneric) {
    return true;
  }
#if SNOOPY_KERNELS_X86
  if (backend == KernelBackend::kSSE2) {
    return __builtin_cpu_supports("sse2") != 0;
  }
  if (backend == KernelBackend::kAVX2) {
    return __builtin_cpu_supports("avx2") != 0;
  }
  if (backend == KernelBackend::kAVX512) {
    return __builtin_cpu_supports("avx512f") != 0 && __builtin_cpu_supports("avx512bw") != 0;
  }
#endif
  return false;
}

namespace kernel_internal {

// -1 = not yet resolved. A racing first call resolves twice to the same value, which
// is benign; SetKernelBackend is for tests/benches and is not meant to race kernels.
inline std::atomic<int>& BackendState() {
  static std::atomic<int> state{-1};
  return state;
}

inline bool EnvFlagSet(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

inline KernelBackend ResolveKernelBackend() {
  if (EnvFlagSet("SNOOPY_FORCE_GENERIC_KERNELS")) {
    return KernelBackend::kGeneric;
  }
  if (const char* named = std::getenv("SNOOPY_KERNEL_BACKEND")) {
    const KernelBackend requested =
        std::strcmp(named, "sse2") == 0     ? KernelBackend::kSSE2
        : std::strcmp(named, "avx2") == 0   ? KernelBackend::kAVX2
        : std::strcmp(named, "avx512") == 0 ? KernelBackend::kAVX512
                                            : KernelBackend::kGeneric;
    if (KernelBackendSupported(requested)) {
      return requested;  // an unsupported or unknown name falls through to CPUID
    }
  }
  KernelBackend best = KernelBackend::kGeneric;
  if (KernelBackendSupported(KernelBackend::kSSE2)) {
    best = KernelBackend::kSSE2;
  }
  if (KernelBackendSupported(KernelBackend::kAVX2)) {
    best = KernelBackend::kAVX2;
  }
  if (KernelBackendSupported(KernelBackend::kAVX512)) {
    best = KernelBackend::kAVX512;
  }
  return best;
}

}  // namespace kernel_internal

// The active backend: resolved once (env override, then widest CPUID-supported) and
// cached. Public state -- dispatching on it is not a secret-dependent branch.
inline KernelBackend ActiveKernelBackend() {
  std::atomic<int>& state = kernel_internal::BackendState();
  int v = state.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(kernel_internal::ResolveKernelBackend());
    state.store(v, std::memory_order_relaxed);
  }
  return static_cast<KernelBackend>(v);
}

// Pins the backend (tests, benches). Pinning an unsupported backend would execute
// illegal instructions; callers gate on KernelBackendSupported.
inline void SetKernelBackend(KernelBackend backend) {
  kernel_internal::BackendState().store(static_cast<int>(backend), std::memory_order_relaxed);
}

// Drops the cached decision; the next ActiveKernelBackend() re-reads env + CPUID.
inline void ResetKernelBackend() {
  kernel_internal::BackendState().store(-1, std::memory_order_relaxed);
}

// SNOOPY_OBLIVIOUS_BEGIN(kernels)
// ct-public: i n
// ct-calls: ValueBarrier __attribute__ target GenericDiffWord alignas

namespace kernel_internal {

// Generic diff accumulator (the word the equality kernels reduce to): OR of all byte
// differences. Mirrors CtEqualBytes/SecretEqualBytes so both can share the backends.
inline uint64_t GenericDiffWord(const uint8_t* a, const uint8_t* b, size_t n) {
  uint64_t acc = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t wa;
    uint64_t wb;
    std::memcpy(&wa, a + i, 8);
    std::memcpy(&wb, b + i, 8);
    acc |= wa ^ wb;
  }
  for (; i < n; ++i) {
    acc |= static_cast<uint64_t>(a[i] ^ b[i]);
  }
  return acc;
}

#if SNOOPY_KERNELS_X86

// Vector value barriers: like ValueBarrier but for xmm/ymm/zmm registers, so the
// compiler cannot prove the broadcast mask constant and lift it into a branch.
__attribute__((target("sse2"))) inline __m128i KernelVecBarrier(__m128i v) {
  __asm__ volatile("" : "+x"(v));
  return v;
}

__attribute__((target("avx2"))) inline __m256i KernelVecBarrier256(__m256i v) {
  __asm__ volatile("" : "+x"(v));
  return v;
}

__attribute__((target("avx512f"))) inline __m512i KernelVecBarrier512(__m512i v) {
  __asm__ volatile("" : "+v"(v));
  return v;
}

// ---- SSE2: 16-byte lanes, and/andnot/or select, masked xor-swap ----

__attribute__((target("sse2"))) inline void KernelSse2CondCopy(uint64_t mask, uint8_t* d,
                                                               const uint8_t* s, size_t n) {
  const __m128i vm = KernelVecBarrier(_mm_set1_epi64x(static_cast<long long>(mask)));
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i dv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + i));
    const __m128i sv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i),
                     _mm_or_si128(_mm_and_si128(sv, vm), _mm_andnot_si128(vm, dv)));
  }
  CtCondCopyBytesMask(mask, d + i, s + i, n - i);
}

__attribute__((target("sse2"))) inline void KernelSse2CondSwap(uint64_t mask, uint8_t* a,
                                                               uint8_t* b, size_t n) {
  const __m128i vm = KernelVecBarrier(_mm_set1_epi64x(static_cast<long long>(mask)));
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i av = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i bv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i diff = _mm_and_si128(_mm_xor_si128(av, bv), vm);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + i), _mm_xor_si128(av, diff));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(b + i), _mm_xor_si128(bv, diff));
  }
  CtCondSwapBytesMask(mask, a + i, b + i, n - i);
}

__attribute__((target("sse2"))) inline uint64_t KernelSse2DiffWord(const uint8_t* a,
                                                                   const uint8_t* b, size_t n) {
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i av = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i bv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    acc = _mm_or_si128(acc, _mm_xor_si128(av, bv));
  }
  uint64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
  return lanes[0] | lanes[1] | GenericDiffWord(a + i, b + i, n - i);
}

// ---- AVX2: 32-byte lanes ----

__attribute__((target("avx2"))) inline void KernelAvx2CondCopy(uint64_t mask, uint8_t* d,
                                                               const uint8_t* s, size_t n) {
  const __m256i vm = KernelVecBarrier256(_mm256_set1_epi64x(static_cast<long long>(mask)));
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i dv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
    const __m256i sv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i),
                        _mm256_or_si256(_mm256_and_si256(sv, vm), _mm256_andnot_si256(vm, dv)));
  }
  if (i + 16 <= n) {
    const __m128i vm128 = _mm256_castsi256_si128(vm);
    const __m128i dv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + i));
    const __m128i sv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i),
                     _mm_or_si128(_mm_and_si128(sv, vm128), _mm_andnot_si128(vm128, dv)));
    i += 16;
  }
  CtCondCopyBytesMask(mask, d + i, s + i, n - i);
}

__attribute__((target("avx2"))) inline void KernelAvx2CondSwap(uint64_t mask, uint8_t* a,
                                                               uint8_t* b, size_t n) {
  const __m256i vm = KernelVecBarrier256(_mm256_set1_epi64x(static_cast<long long>(mask)));
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i av = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i diff = _mm256_and_si256(_mm256_xor_si256(av, bv), vm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i), _mm256_xor_si256(av, diff));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(b + i), _mm256_xor_si256(bv, diff));
  }
  if (i + 16 <= n) {
    const __m128i vm128 = _mm256_castsi256_si128(vm);
    const __m128i av = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i bv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i diff = _mm_and_si128(_mm_xor_si128(av, bv), vm128);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + i), _mm_xor_si128(av, diff));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(b + i), _mm_xor_si128(bv, diff));
    i += 16;
  }
  CtCondSwapBytesMask(mask, a + i, b + i, n - i);
}

__attribute__((target("avx2"))) inline uint64_t KernelAvx2DiffWord(const uint8_t* a,
                                                                   const uint8_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i av = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_or_si256(acc, _mm256_xor_si256(av, bv));
  }
  __m128i acc128 =
      _mm_or_si128(_mm256_castsi256_si128(acc), _mm256_extracti128_si256(acc, 1));
  if (i + 16 <= n) {
    const __m128i av = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i bv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    acc128 = _mm_or_si128(acc128, _mm_xor_si128(av, bv));
    i += 16;
  }
  uint64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc128);
  return lanes[0] | lanes[1] | GenericDiffWord(a + i, b + i, n - i);
}

// ---- AVX-512: 64-byte lanes; the copy is the paper's masked-move construction ----

__attribute__((target("avx512f,avx512bw"))) inline void KernelAvx512CondCopy(
    uint64_t mask, uint8_t* d, const uint8_t* s, size_t n) {
  // An all-ones/all-zeros k-mask selects src or dst per byte *in registers*; the store
  // is always full-width, so the written byte set stays mask-independent.
  const __mmask64 km = _cvtu64_mask64(ValueBarrier(mask));
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i dv = _mm512_loadu_si512(d + i);
    const __m512i sv = _mm512_loadu_si512(s + i);
    _mm512_storeu_si512(d + i, _mm512_mask_blend_epi8(km, dv, sv));
  }
  // Sub-64-byte tails use the AVX2-width select (avx512f implies avx2); the ymm
  // k-mask blend would need avx512vl, which we do not require.
  if (i + 16 <= n) {
    const __m256i vm = KernelVecBarrier256(_mm256_set1_epi64x(static_cast<long long>(mask)));
    if (i + 32 <= n) {
      const __m256i dv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
      const __m256i sv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(d + i),
          _mm256_or_si256(_mm256_and_si256(sv, vm), _mm256_andnot_si256(vm, dv)));
      i += 32;
    }
    if (i + 16 <= n) {
      const __m128i vm128 = _mm256_castsi256_si128(vm);
      const __m128i dv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + i));
      const __m128i sv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i),
                       _mm_or_si128(_mm_and_si128(sv, vm128), _mm_andnot_si128(vm128, dv)));
      i += 16;
    }
  }
  CtCondCopyBytesMask(mask, d + i, s + i, n - i);
}

__attribute__((target("avx512f,avx512bw"))) inline void KernelAvx512CondSwap(
    uint64_t mask, uint8_t* a, uint8_t* b, size_t n) {
  const __m512i vm = KernelVecBarrier512(_mm512_set1_epi64(static_cast<long long>(mask)));
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i av = _mm512_loadu_si512(a + i);
    const __m512i bv = _mm512_loadu_si512(b + i);
    const __m512i diff = _mm512_and_si512(_mm512_xor_si512(av, bv), vm);
    _mm512_storeu_si512(a + i, _mm512_xor_si512(av, diff));
    _mm512_storeu_si512(b + i, _mm512_xor_si512(bv, diff));
  }
  // Tails re-broadcast the mask at ymm/xmm width rather than narrowing vm: GCC 12's
  // maskless _mm512_castsi512_si* wrappers trip -Wmaybe-uninitialized on their
  // self-initialized merge operands when inlined into non-avx512 TUs.
  if (i + 32 <= n) {
    const __m256i vm256 = KernelVecBarrier256(_mm256_set1_epi64x(static_cast<long long>(mask)));
    const __m256i av = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i diff = _mm256_and_si256(_mm256_xor_si256(av, bv), vm256);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i), _mm256_xor_si256(av, diff));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(b + i), _mm256_xor_si256(bv, diff));
    i += 32;
  }
  if (i + 16 <= n) {
    const __m128i vm128 = KernelVecBarrier(_mm_set1_epi64x(static_cast<long long>(mask)));
    const __m128i av = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i bv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i diff = _mm_and_si128(_mm_xor_si128(av, bv), vm128);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + i), _mm_xor_si128(av, diff));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(b + i), _mm_xor_si128(bv, diff));
    i += 16;
  }
  CtCondSwapBytesMask(mask, a + i, b + i, n - i);
}

__attribute__((target("avx512f,avx512bw"))) inline uint64_t KernelAvx512DiffWord(
    const uint8_t* a, const uint8_t* b, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i av = _mm512_loadu_si512(a + i);
    const __m512i bv = _mm512_loadu_si512(b + i);
    acc = _mm512_or_si512(acc, _mm512_xor_si512(av, bv));
  }
  // Reduce the 512-bit accumulator through memory: GCC 12's maskless
  // _mm512_extracti64x4_epi64 wrapper self-initializes its merge operand and trips
  // -Wuninitialized when inlined into a TU not compiled with -mavx512f. One spill
  // on a once-per-call reduction costs nothing.
  alignas(64) uint64_t wide[8];
  _mm512_store_si512(reinterpret_cast<__m512i*>(wide), acc);
  const uint64_t wide_or = wide[0] | wide[1] | wide[2] | wide[3] | wide[4] | wide[5] |
                           wide[6] | wide[7];
  __m128i acc128 = _mm_setzero_si128();
  if (i + 32 <= n) {
    const __m256i av = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i d = _mm256_xor_si256(av, bv);
    acc128 = _mm_or_si128(acc128,
                          _mm_or_si128(_mm256_castsi256_si128(d), _mm256_extracti128_si256(d, 1)));
    i += 32;
  }
  if (i + 16 <= n) {
    const __m128i av = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i bv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    acc128 = _mm_or_si128(acc128, _mm_xor_si128(av, bv));
    i += 16;
  }
  uint64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc128);
  return wide_or | lanes[0] | lanes[1] | GenericDiffWord(a + i, b + i, n - i);
}

#endif  // SNOOPY_KERNELS_X86

}  // namespace kernel_internal

// SNOOPY_OBLIVIOUS_END(kernels)

// ---- Dispatching entry points ----
//
// The branch below is on ActiveKernelBackend() -- public, CPUID-derived state -- so it
// is not a secret-dependent branch. Each backend handles any n (the vector loop may
// run zero iterations; the scalar code finishes the tail), so small operands are
// correct everywhere and pay only the dispatch load.

inline void KernelCondCopyBytesMask(uint64_t mask, void* dst, const void* src, size_t n) {
#if SNOOPY_KERNELS_X86
  auto* d = static_cast<uint8_t*>(dst);
  const auto* s = static_cast<const uint8_t*>(src);
  const KernelBackend backend = ActiveKernelBackend();
  if (backend == KernelBackend::kAVX512) {
    kernel_internal::KernelAvx512CondCopy(mask, d, s, n);
    return;
  }
  if (backend == KernelBackend::kAVX2) {
    kernel_internal::KernelAvx2CondCopy(mask, d, s, n);
    return;
  }
  if (backend == KernelBackend::kSSE2) {
    kernel_internal::KernelSse2CondCopy(mask, d, s, n);
    return;
  }
#endif
  CtCondCopyBytesMask(mask, dst, src, n);
}

inline void KernelCondSwapBytesMask(uint64_t mask, void* a, void* b, size_t n) {
#if SNOOPY_KERNELS_X86
  auto* pa = static_cast<uint8_t*>(a);
  auto* pb = static_cast<uint8_t*>(b);
  const KernelBackend backend = ActiveKernelBackend();
  if (backend == KernelBackend::kAVX512) {
    kernel_internal::KernelAvx512CondSwap(mask, pa, pb, n);
    return;
  }
  if (backend == KernelBackend::kAVX2) {
    kernel_internal::KernelAvx2CondSwap(mask, pa, pb, n);
    return;
  }
  if (backend == KernelBackend::kSSE2) {
    kernel_internal::KernelSse2CondSwap(mask, pa, pb, n);
    return;
  }
#endif
  CtCondSwapBytesMask(mask, a, b, n);
}

// OR of all byte differences between a and b (zero iff equal); the shared core of the
// bool- and Secret-typed equality entry points.
inline uint64_t KernelDiffBytesWord(const void* a, const void* b, size_t n) {
  const auto* pa = static_cast<const uint8_t*>(a);
  const auto* pb = static_cast<const uint8_t*>(b);
#if SNOOPY_KERNELS_X86
  const KernelBackend backend = ActiveKernelBackend();
  if (backend == KernelBackend::kAVX512) {
    return kernel_internal::KernelAvx512DiffWord(pa, pb, n);
  }
  if (backend == KernelBackend::kAVX2) {
    return kernel_internal::KernelAvx2DiffWord(pa, pb, n);
  }
  if (backend == KernelBackend::kSSE2) {
    return kernel_internal::KernelSse2DiffWord(pa, pb, n);
  }
#endif
  return kernel_internal::GenericDiffWord(pa, pb, n);
}

inline bool KernelEqualBytes(const void* a, const void* b, size_t n) {
  return CtIsZero64(KernelDiffBytesWord(a, b, n));
}

inline SecretBool KernelSecretEqualBytes(const void* a, const void* b, size_t n) {
  return !SecretBool::FromWord(KernelDiffBytesWord(a, b, n));
}

// SecretBool-conditioned forms: the mask is extracted exactly once per secret
// condition and fed straight to the mask kernels (no bool round-trip).
inline void KernelCondCopyBytes(SecretBool c, void* dst, const void* src, size_t n) {
  KernelCondCopyBytesMask(c.mask(), dst, src, n);
}

inline void KernelCondSwapBytes(SecretBool c, void* a, void* b, size_t n) {
  KernelCondSwapBytesMask(c.mask(), a, b, n);
}

// ---- Cache-tile geometry for the blocked bitonic sort (public) ----

// L1 data-cache budget per sort tile. 32 KiB is the common x86 L1d size; the sim's
// CostModelConfig carries the same default so the model and the real sort agree.
inline constexpr size_t kL1TileBytes = 32 * 1024;

// Records per L1-resident sort block, as a power of two (>= 4). A compare-swap
// touches two records, so each side gets half the tile; rounding down to a power of
// two keeps tile boundaries aligned with the bitonic network's merge strides. For the
// paper's 208-byte records and a 32 KiB tile: 32768 / (2*208) = 78 -> 64 records.
inline size_t SortBlockRecords(size_t record_bytes, size_t l1_tile_bytes = kL1TileBytes) {
  const size_t rb = record_bytes == 0 ? 1 : record_bytes;
  const size_t budget = l1_tile_bytes / (2 * rb);
  size_t block = 4;
  while (block * 2 <= budget) {
    block *= 2;
  }
  return block;
}

// Worst-case sort threads timesharing one core when a sort runs `threads` wide:
// with more runnable threads than cores, the threads of one sort co-occupy a
// core's L1 through context switching, so L1-sized tiles thrash (each switch
// refills a full 32 KiB working set). All inputs are public (a thread count and
// the core count), so tile geometry derived from this leaks nothing.
inline size_t SortTileSharers(int threads) {
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t cores = hw == 0 ? 1 : static_cast<size_t>(hw);
  const size_t t = threads < 1 ? 1 : static_cast<size_t>(threads);
  return (t + cores - 1) / cores;
}

// Timesharing-aware tile budget: divides the L1 tile among `sharers` co-scheduled
// sort threads (SortTileSharers). With sharers == 1 (threads <= cores, each thread
// owning its core's L1) this is exactly SortBlockRecords(record_bytes).
inline size_t SortBlockRecordsShared(size_t record_bytes, size_t sharers) {
  const size_t s = sharers == 0 ? 1 : sharers;
  return SortBlockRecords(record_bytes, kL1TileBytes / s);
}

}  // namespace snoopy

#endif  // SNOOPY_SRC_OBL_KERNELS_H_
