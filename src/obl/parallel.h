// Process-wide work pool shared by every parallel surface in the tree: the epoch
// pipeline (src/core/snoopy.cc), the fork-join bitonic sort halves
// (src/obl/bitonic_sort.h), and any future stage that needs worker threads.
//
// Why one pool. Before this layer each parallel phase spawned fresh std::threads and
// the sort recursion spawned more threads *underneath* those workers, so a 4-thread
// epoch with 4-thread sorts could momentarily run 16+ runnable threads on a machine
// with far fewer cores. The oversubscription shows up as work inflation: every
// wall-clock "busy" measurement stretches by the timesharing factor while the real
// CPU work is unchanged (the bug ROADMAP open item 1 tracked). The pool fixes the
// structure: workers are persistent (started once, parked on a condition variable --
// the ScaleStore worker/ProfilingThread idiom), phases borrow them instead of
// spawning, and nested parallelism becomes *submission* to the same pool (stealable
// ForkJoin tasks) instead of new threads. A thread-budget TLS scope tells nested code
// (AdaptiveSortThreads) how many workers its context actually owns; exceeding it is
// the old nested-spawn bug and is a hard error in debug builds.
//
// Leakage model: everything the pool schedules is a *public* work item (a load
// balancer id, a subORAM id, a public sort-recursion position). Scheduling decisions
// therefore leak nothing new, and all trace events produced inside a task are
// buffered per task and merged in public task order by the caller, exactly as
// before -- thread count and scheduling stay invisible in the merged trace.
//
// Accounting: the pool measures both wall time and per-thread CPU time
// (CLOCK_THREAD_CPUTIME_ID). On an oversubscribed host the two diverge -- wall-busy
// inflates with the timesharing factor while CPU-busy stays equal to the real work --
// which is precisely the signal the work-inflation metrics and tools/trace_report.py
// use to flag the regression this layer fixed.

#ifndef SNOOPY_SRC_OBL_PARALLEL_H_
#define SNOOPY_SRC_OBL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace snoopy {

// Seconds of CPU time consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID).
// Monotonic per thread; differences measure real work independent of timesharing.
double ThreadCpuNowSeconds();

// --- Thread budget -------------------------------------------------------------
//
// How many OS threads the *current call tree* has been granted by its scheduler
// context. 0 means "no scope active": the caller is top-level code that may size
// itself off the hardware. A pool task runs under the budget its phase granted it
// (a public function of the worker count and task count); nested parallel code must
// consult the budget instead of assuming it owns the machine -- that assumption is
// the nested-spawn bug AdaptiveSortThreads used to have.
int CurrentThreadBudget();

// Clamps a configured thread count to the caller's context: inside a pool task the
// result never exceeds the task's thread budget (min 1); outside the pool the
// configured value passes through unchanged. Clamp-only by design -- budgets never
// *raise* a width, because widths feed public trace metadata (e.g. the parallel-scan
// marker records its width) and raising them per-context would make traces vary with
// the thread layout.
int PoolClampedThreads(int configured);

// RAII budget scope for the calling thread; nests (the previous budget is restored).
class ScopedThreadBudget {
 public:
  explicit ScopedThreadBudget(int budget);
  ~ScopedThreadBudget();
  ScopedThreadBudget(const ScopedThreadBudget&) = delete;
  ScopedThreadBudget& operator=(const ScopedThreadBudget&) = delete;

 private:
  int prev_;
};

// --- The pool ------------------------------------------------------------------
class WorkPool {
 public:
  // The lazily-started process-wide instance. Workers are created on first use and
  // park on a condition variable between runs; they live for the process (detached
  // teardown at exit, like ScaleStore's always-running worker threads).
  static WorkPool& Instance();

  // True when the calling thread is executing inside a pool-run body or a stolen
  // ForkJoin task -- i.e. parallel code that must not spawn threads of its own.
  static bool OnWorkerThread();

  // Runs body(0), body(1), ..., body(workers - 1) concurrently and returns when all
  // have finished. The calling thread executes body(0); persistent workers execute
  // the rest. `workers <= 1` runs body(0) inline with no synchronization at all.
  //
  // Exceptions must not escape `body` (phase executors capture per-task exceptions
  // themselves); an escaping exception terminates.
  //
  // Calling Run from inside a pool worker is the nested-spawn bug: it asserts in
  // debug builds and degrades to inline execution (body(0..workers-1) sequentially)
  // in release builds. Concurrent Run calls from *distinct external* threads
  // serialize on the pool.
  void Run(size_t workers, const std::function<void(size_t)>& body);

  // Fork-join for recursive divide-and-conquer (the bitonic sort halves): offers
  // `first` to the pool as a stealable task, runs `second` on the calling thread,
  // then either reclaims `first` (nobody took it -- runs inline, the common fast
  // path) or waits for the thief to finish. Safe at any nesting depth and from any
  // thread, including pool workers: the caller never blocks on an *unstarted* task,
  // so there is no scheduling cycle to deadlock on.
  //
  // The caller must hold a thread budget of >= 2 (or be top-level with no budget
  // scope): forking with budget <= 1 from a worker is the nested-oversubscription
  // bug -- hard error in debug builds, sequential execution in release builds.
  void ForkJoin(const std::function<void()>& first,
                const std::function<void()>& second);

  // Upper bound on useful workers for top-level callers: hardware concurrency
  // (>= 1). Explicit thread requests above this still run (tests exercise thread
  // counts beyond the core count) but cannot run concurrently.
  static size_t MaxWorkers();

  // Grows the pool to at least `workers` persistent threads (no-op when already
  // that large). ForkJoin callers that want real concurrency reserve their width
  // up front; Run reserves automatically.
  void Reserve(size_t workers);

 private:
  WorkPool();
  ~WorkPool();  // joins the persistent workers (static destruction)
  struct Impl;
  Impl* impl_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_OBL_PARALLEL_H_
