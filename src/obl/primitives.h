// Constant-time ("oblivious") primitives.
//
// Every algorithm in this repository that handles secret data is built on top of the
// operators in this header. They are branchless and perform no secret-dependent memory
// indexing: the sequence of instructions and the addresses touched depend only on the
// (public) sizes involved, never on the (secret) values. This is the "oblivious
// compare-and-set operator" that the Snoopy paper (SOSP '21, Theorems 1 and 2) assumes
// as a building block; on SGX the authors instantiate it with AVX-512 masked moves, here
// we use mask arithmetic with compiler value barriers, which gives the same contract.
//
// Caveat (shared with the paper, section 2): we guarantee the *source-level* access
// pattern is data-independent. A sufficiently adversarial compiler could in principle
// reintroduce branches; the ValueBarrier below blocks the transformations GCC and Clang
// actually perform.

#ifndef SNOOPY_SRC_OBL_PRIMITIVES_H_
#define SNOOPY_SRC_OBL_PRIMITIVES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace snoopy {

// Prevents the compiler from reasoning about the value of `v` (and thus from turning
// the mask arithmetic below back into branches).
inline uint64_t ValueBarrier(uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  __asm__ volatile("" : "+r"(v) : : );
  return v;
#else
  volatile uint64_t w = v;
  return w;
#endif
}

// Returns all-ones (0xFF..FF) if `c` is true, all-zeros otherwise, without branching.
inline uint64_t CtMask64(bool c) {
  // (0 - c) is 0xFF..FF for c == 1 and 0 for c == 0.
  return ValueBarrier(0) - static_cast<uint64_t>(c);
}

// Mask-based select: `mask` must be all-ones or all-zeros (a CtMask64 result or a
// SecretBool mask). The mask variants are the shared core of the bool entry points
// below and of the Secret<T> overloads in obl/secret.h, which avoids round-tripping a
// secret condition through `bool` on every operation.
inline uint64_t CtSelect64Mask(uint64_t mask, uint64_t a, uint64_t b) {
  return (a & mask) | (b & ~mask);
}

// Branchless select: returns `a` if c is true, else `b`.
inline uint64_t CtSelect64(bool c, uint64_t a, uint64_t b) {
  return CtSelect64Mask(CtMask64(c), a, b);
}

inline uint32_t CtSelect32(bool c, uint32_t a, uint32_t b) {
  return static_cast<uint32_t>(CtSelect64(c, a, b));
}

// Branchless comparisons over unsigned 64-bit values. The results are ordinary bools,
// but they are computed without data-dependent branches.
inline bool CtIsZero64(uint64_t x) {
  // For x != 0, (x | -x) has its top bit set.
  const uint64_t t = x | (ValueBarrier(0) - x);
  return static_cast<bool>(1 ^ (t >> 63));
}

inline bool CtEq64(uint64_t a, uint64_t b) { return CtIsZero64(a ^ b); }

inline bool CtLt64(uint64_t a, uint64_t b) {
  // Top bit of ((a ^ ((a ^ b) | ((a - b) ^ b))) is set iff a < b (Hacker's Delight).
  const uint64_t t = (a ^ ((a ^ b) | ((a - b) ^ b)));
  return static_cast<bool>(t >> 63);
}

inline bool CtLe64(uint64_t a, uint64_t b) { return !CtLt64(b, a); }
inline bool CtGt64(uint64_t a, uint64_t b) { return CtLt64(b, a); }
inline bool CtGe64(uint64_t a, uint64_t b) { return !CtLt64(a, b); }

// Constant-time equality over n bytes. Word-at-a-time (8-byte memcpy chunks, like
// CtCondCopyBytes) with a byte-wise tail; the XOR-accumulator never branches on data.
inline bool CtEqualBytes(const void* a, const void* b, size_t n) {
  const auto* pa = static_cast<const uint8_t*>(a);
  const auto* pb = static_cast<const uint8_t*>(b);
  uint64_t acc = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t wa;
    uint64_t wb;
    std::memcpy(&wa, pa + i, 8);
    std::memcpy(&wb, pb + i, 8);
    acc |= wa ^ wb;
  }
  for (; i < n; ++i) {
    acc |= static_cast<uint64_t>(pa[i] ^ pb[i]);
  }
  return CtIsZero64(acc);
}

// Mask-based conditional copy: dst <- (mask ? src : dst); mask all-ones or all-zeros.
inline void CtCondCopyBytesMask(uint64_t mask, void* dst, const void* src, size_t n) {
  auto* d = static_cast<uint8_t*>(dst);
  const auto* s = static_cast<const uint8_t*>(src);
  size_t i = 0;
  // Re-barrier the mask every word: this pins the loop to the audited scalar form.
  // Without it the autovectorizer rewrites the TCB loop into compiler-chosen vector
  // code that none of the constant-time tooling (ct_lint regions, check_nobranch)
  // ever sees; wide execution belongs to the explicit kernels in src/obl/kernels.h.
  for (; i + 8 <= n; i += 8) {
    const uint64_t m = ValueBarrier(mask);
    uint64_t dw;
    uint64_t sw;
    std::memcpy(&dw, d + i, 8);
    std::memcpy(&sw, s + i, 8);
    dw = (sw & m) | (dw & ~m);
    std::memcpy(d + i, &dw, 8);
  }
  const auto m8 = static_cast<uint8_t>(mask);
  for (; i < n; ++i) {
    d[i] = static_cast<uint8_t>((s[i] & m8) | (d[i] & static_cast<uint8_t>(~m8)));
  }
}

// dst <- (c ? src : dst), without branching.
inline void CtCondCopyBytes(bool c, void* dst, const void* src, size_t n) {
  CtCondCopyBytesMask(CtMask64(c), dst, src, n);
}

// Mask-based conditional swap; mask all-ones or all-zeros.
inline void CtCondSwapBytesMask(uint64_t mask, void* a, void* b, size_t n) {
  auto* pa = static_cast<uint8_t*>(a);
  auto* pb = static_cast<uint8_t*>(b);
  size_t i = 0;
  // Per-word mask barrier for the same reason as CtCondCopyBytesMask above: keep the
  // TCB loop in its audited scalar form, out of the autovectorizer's hands.
  for (; i + 8 <= n; i += 8) {
    const uint64_t m = ValueBarrier(mask);
    uint64_t wa;
    uint64_t wb;
    std::memcpy(&wa, pa + i, 8);
    std::memcpy(&wb, pb + i, 8);
    const uint64_t diff = (wa ^ wb) & m;
    wa ^= diff;
    wb ^= diff;
    std::memcpy(pa + i, &wa, 8);
    std::memcpy(pb + i, &wb, 8);
  }
  const auto m8 = static_cast<uint8_t>(mask);
  for (; i < n; ++i) {
    const auto diff = static_cast<uint8_t>((pa[i] ^ pb[i]) & m8);
    pa[i] = static_cast<uint8_t>(pa[i] ^ diff);
    pb[i] = static_cast<uint8_t>(pb[i] ^ diff);
  }
}

// Conditionally swaps two n-byte buffers iff `c` is true, without branching.
inline void CtCondSwapBytes(bool c, void* a, void* b, size_t n) {
  CtCondSwapBytesMask(CtMask64(c), a, b, n);
}

// Oblivious compare-and-set over a trivially-copyable value: dst <- (c ? src : dst).
template <typename T>
void OCmpSet(bool c, T& dst, const T& src) {
  static_assert(std::is_trivially_copyable_v<T>, "OCmpSet requires trivially copyable T");
  CtCondCopyBytes(c, &dst, &src, sizeof(T));
}

// Oblivious compare-and-swap over trivially-copyable values: swaps a and b iff c.
template <typename T>
void OCmpSwap(bool c, T& a, T& b) {
  static_assert(std::is_trivially_copyable_v<T>, "OCmpSwap requires trivially copyable T");
  CtCondSwapBytes(c, &a, &b, sizeof(T));
}

// Oblivious accumulate: returns (c ? x : acc) -- convenience for oblivious scans.
inline uint64_t CtAccumulate(bool c, uint64_t acc, uint64_t x) { return CtSelect64(c, x, acc); }

}  // namespace snoopy

#endif  // SNOOPY_SRC_OBL_PRIMITIVES_H_
