#include "src/obl/hash_table.h"

#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "src/analysis/batch_bound.h"
#include "src/analysis/binomial.h"
#include "src/enclave/trace.h"
#include "src/obl/bin_placement.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/compaction.h"
#include "src/obl/primitives.h"
#include "src/obl/secret.h"

namespace snoopy {

namespace {

inline void StoreU64(uint8_t* rec, size_t off, uint64_t v) { std::memcpy(rec + off, &v, sizeof(v)); }
inline void StoreU32(uint8_t* rec, size_t off, uint32_t v) { std::memcpy(rec + off, &v, sizeof(v)); }

constexpr uint64_t kMeanLoads[] = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32};

}  // namespace

OhtParams ChooseSingleTierParams(uint64_t n, uint32_t lambda) {
  OhtParams best;
  best.n = n;
  best.bins1 = 1;
  best.z1 = n;
  if (n <= 4) {
    return best;
  }
  for (const uint64_t mu : kMeanLoads) {
    const uint64_t bins = (n + mu - 1) / mu;
    if (bins <= 1) {
      continue;
    }
    const uint64_t z = BatchSize(n, bins, lambda);
    if (z < best.z1 && bins * z <= 8 * n) {
      best.bins1 = bins;
      best.z1 = z;
    }
  }
  return best;
}

OhtParams ChooseOhtParams(uint64_t n, uint32_t lambda) {
  OhtParams best = ChooseSingleTierParams(n, lambda);
  if (n <= 16) {
    return best;  // Tiny batches: a single scanned bucket is already optimal.
  }
  for (const uint64_t mu1 : kMeanLoads) {
    const uint64_t bins1 = (n + mu1 - 1) / mu1;
    if (bins1 <= 1) {
      continue;
    }
    // Tier-1 capacity only slightly above the mean; the tail goes to tier 2.
    for (uint64_t z1 = mu1; z1 <= mu1 + 12; ++z1) {
      const uint64_t cap = OverflowBound(n, bins1, z1, lambda);
      if (cap == 0) {
        if (z1 < best.z1 + best.z2 && bins1 * z1 <= 8 * n) {
          best = OhtParams{n, bins1, z1, 0, 0, 0};
        }
        continue;
      }
      if (cap >= n) {
        continue;  // Bound vacuous; not a useful configuration.
      }
      for (const uint64_t mu2 : kMeanLoads) {
        const uint64_t bins2 = (cap + mu2 - 1) / mu2;
        if (bins2 == 0) {
          continue;
        }
        const uint64_t z2 = bins2 == 1 ? cap : BatchSize(cap, bins2, lambda);
        const uint64_t cost = z1 + z2;
        const uint64_t slots = bins1 * z1 + bins2 * z2;
        if (slots > 8 * n) {
          continue;
        }
        if (cost < best.z1 + best.z2 ||
            (cost == best.z1 + best.z2 && slots < best.TotalSlots())) {
          best = OhtParams{n, bins1, z1, cap, bins2, z2};
        }
      }
    }
  }
  return best;
}

// SNOOPY_OBLIVIOUS_BEGIN(oht_build)
// ct-public: n i b j total pad1 sort_threads sort_strategy sort_spec batch overflow
// ct-public: params_ bins1 z1 bins2 overflow_cap schema_ dummy_offset
// ct-public: tier1_ok r2 ok

bool TwoTierOht::Build(ByteSlab&& batch, Rng& rng, int sort_threads,
                       SortStrategy sort_strategy) {
  const uint64_t n = batch.size();
  params_ = ChooseOhtParams(n, lambda_);
  key1_ = rng.NextSipKey();
  key2_ = rng.NextSipKey();
  tier1_ = ByteSlab(0, batch.record_bytes());
  tier2_ = ByteSlab(0, batch.record_bytes());
  if (n == 0) {
    return true;
  }

  ByteSlab slab = std::move(batch);

  // Assign tier-1 bins and construction scratch fields with one linear scan. Keys are
  // secret, so the bucket assignment (a keyed hash of the key) is secret too and is
  // written back through the taint-typed store.
  for (size_t i = 0; i < n; ++i) {
    uint8_t* rec = slab.Record(i);
    const SecretU64 key = LoadSecretU64(rec, schema_.key_offset);
    StoreSecretU32(rec, schema_.bin_offset,
                   NarrowToU32(ModPublic(SipHash24(key1_, key), params_.bins1)));
    rec[schema_.dummy_offset] = 0;
    StoreU64(rec, schema_.order_offset, i);
    StoreSecretU64(rec, schema_.dedup_offset, key);
  }

  // Append tier-1 padding dummies (z1 per bin), then sort by (bin, dummy, order).
  const uint64_t pad1 = params_.bins1 * params_.z1;
  for (uint64_t b = 0; b < params_.bins1; ++b) {
    for (uint64_t j = 0; j < params_.z1; ++j) {
      uint8_t* rec = slab.AppendZero();
      StoreU64(rec, schema_.key_offset, ~uint64_t{0});
      StoreU32(rec, schema_.bin_offset, static_cast<uint32_t>(b));
      rec[schema_.dummy_offset] = 1;
      StoreU64(rec, schema_.order_offset, ~uint64_t{0});
      StoreU64(rec, schema_.dedup_offset, ~uint64_t{0});
    }
  }
  TraceRecord(TraceOp::kAppend, n, pad1);

  // Sort by (bin, dummy, order) via the common strategy entry point. The composed
  // (bin, within-bin) order is lexicographically identical to the old
  // ((bin << 1) | dummy, order) comparator. Tier-1 bins are a fresh keyed hash of
  // distinct keys plus exactly z1 deterministic dummies per bin, so the bin multiset
  // is simulatable from (n, bins1, z1): the bucket strategy may reveal it.
  SortBinSpec sort_spec;
  sort_spec.bin_offset = schema_.bin_offset;
  sort_spec.num_bins = params_.bins1;
  sort_spec.bins_simulatable = true;
  sort_spec.lambda = lambda_;
  ObliviousSortSlab(
      slab, sort_spec,
      [this](const uint8_t* a, const uint8_t* b) {
        const SecretU64 a1 = Widen(LoadSecretU8(a, schema_.dummy_offset)) & 1;
        const SecretU64 b1 = Widen(LoadSecretU8(b, schema_.dummy_offset)) & 1;
        const SecretU64 a2 = LoadSecretU64(a, schema_.order_offset);
        const SecretU64 b2 = LoadSecretU64(b, schema_.order_offset);
        return (a1 < b1) | ((a1 == b1) & (a2 < b2));
      },
      sort_strategy, sort_threads);

  // Mark tier-1 residents (first z1 per bin) and the overflow set; pad the overflow
  // set to the public cap with surplus padding dummies so the compacted size reveals
  // nothing about the true overflow count.
  const size_t total = slab.size();
  std::vector<uint8_t> keep1(total, 0);
  std::vector<uint8_t> to_tier2(total, 0);
  SecretU64 prev_bin = ~uint64_t{0};
  SecretU64 count = 0;
  SecretU64 overflow_count = 0;
  for (size_t i = 0; i < total; ++i) {
    TraceRecord(TraceOp::kRead, i);
    const uint8_t* rec = slab.Record(i);
    const SecretU64 bin = Widen(LoadSecretU32(rec, schema_.bin_offset));
    const SecretBool is_dummy = LoadSecretU8(rec, schema_.dummy_offset).NonZero();
    const SecretBool same_bin = bin == prev_bin;
    count = CtSelectU64(same_bin, count, 0);
    const SecretBool keep = count < SecretU64(params_.z1);
    count += CtSelectU64(keep, 1, 0);
    keep1[i] = keep.ToFlagByte();
    const SecretBool overflow_real = (!keep) & (!is_dummy);
    to_tier2[i] = overflow_real.ToFlagByte();
    overflow_count += CtSelectU64(overflow_real, 1, 0);
    prev_bin = bin;
  }
  // Whether tier 1 fit its public cap is itself public (negligible-probability abort).
  const bool tier1_ok =
      (overflow_count <= SecretU64(params_.overflow_cap)).Declassify("oht.tier1_ok");

  // Second scan: recruit dropped padding dummies as tier-2 filler until the overflow
  // set reaches the cap.
  const SecretU64 fill_needed = CtSelectU64(
      SecretBool::FromBool(tier1_ok), SecretU64(params_.overflow_cap) - overflow_count, 0);
  SecretU64 filled = 0;
  for (size_t i = 0; i < total; ++i) {
    TraceRecord(TraceOp::kRead, i);
    const uint8_t* rec = slab.Record(i);
    const SecretBool is_dummy = LoadSecretU8(rec, schema_.dummy_offset).NonZero();
    const SecretBool avail = is_dummy & !SecretBool::FromWord(keep1[i]);
    const SecretBool take = avail & (filled < fill_needed);
    filled += CtSelectU64(take, 1, 0);
    to_tier2[i] = static_cast<uint8_t>(to_tier2[i] | take.ToFlagByte());
  }

  // Split: tier-1 residents into tier1_, overflow set into tier2 input.
  ByteSlab overflow = slab;  // copy; each record goes to exactly one side
  (void)GoodrichCompact(slab, std::span<uint8_t>(keep1.data(), keep1.size()));
  slab.Truncate(pad1);
  tier1_ = std::move(slab);

  (void)GoodrichCompact(overflow, std::span<uint8_t>(to_tier2.data(), to_tier2.size()));
  overflow.Truncate(params_.overflow_cap);

  if (params_.overflow_cap == 0 || params_.bins2 == 0) {
    return tier1_ok;
  }

  // Tier 2: rehash reals under the fresh key2; filler dummies get uniformly random
  // bins so bin loads keep the balls-into-bins distribution that z2 was sized for.
  for (size_t i = 0; i < overflow.size(); ++i) {
    uint8_t* rec = overflow.Record(i);
    const SecretU64 key = LoadSecretU64(rec, schema_.key_offset);
    const SecretBool is_dummy = LoadSecretU8(rec, schema_.dummy_offset).NonZero();
    const SecretU64 h = ModPublic(SipHash24(key2_, key), params_.bins2);
    const SecretU64 r = rng.Uniform(params_.bins2);  // drawn for every record
    StoreSecretU32(rec, schema_.bin_offset, NarrowToU32(CtSelectU64(is_dummy, r, h)));
    StoreU64(rec, schema_.order_offset, i);
    StoreU64(rec, schema_.dedup_offset, ~uint64_t{0} - i);
  }
  BinSchema bin_schema{schema_.bin_offset, schema_.dummy_offset, schema_.order_offset,
                       schema_.dedup_offset};
  BinPlacementOptions options;
  options.num_bins = static_cast<uint32_t>(params_.bins2);
  options.bin_capacity = static_cast<uint32_t>(params_.z2);
  options.dedup = false;
  options.sort_threads = sort_threads;
  options.sort_strategy = sort_strategy;
  // Tier-2 bins: fresh keyed hash of distinct overflow keys, uniform random draws
  // for the filler dummies — the bin multiset is simulatable from public parameters.
  options.bins_simulatable = true;
  options.lambda = lambda_;
  const size_t key_off = schema_.key_offset;
  const BinPlacementResult r2 = ObliviousBinPlacement(
      overflow, bin_schema, options,
      [key_off](uint8_t* rec) { StoreU64(rec, key_off, ~uint64_t{0}); });
  tier2_ = std::move(overflow);
  return tier1_ok && r2.ok;
}

// SNOOPY_OBLIVIOUS_END(oht_build)

uint64_t TwoTierOht::Tier1BucketIndex(uint64_t key) const {
  return SipHash24(key1_, key) % params_.bins1;
}

uint64_t TwoTierOht::Tier2BucketIndex(uint64_t key) const {
  return params_.bins2 == 0 ? 0 : SipHash24(key2_, key) % params_.bins2;
}

std::span<uint8_t> TwoTierOht::Tier1Bucket(uint64_t key) {
  const uint64_t b = Tier1BucketIndex(key);
  TraceRecord(TraceOp::kBucketScan, b, 1);
  const size_t stride = tier1_.record_bytes();
  return {tier1_.data() + b * params_.z1 * stride, params_.z1 * stride};
}

std::span<uint8_t> TwoTierOht::Tier2Bucket(uint64_t key) {
  if (params_.bins2 == 0) {
    return {};
  }
  const uint64_t b = Tier2BucketIndex(key);
  TraceRecord(TraceOp::kBucketScan, b, 2);
  const size_t stride = tier2_.record_bytes();
  return {tier2_.data() + b * params_.z2 * stride, params_.z2 * stride};
}

// SNOOPY_OBLIVIOUS_BEGIN(oht_extract)
// ct-public: i tier1_ tier2_ all schema_ dummy_offset

ByteSlab TwoTierOht::ExtractAll() {
  ByteSlab all(0, tier1_.record_bytes());
  for (size_t i = 0; i < tier1_.size(); ++i) {
    all.Append(tier1_.Record(i));
  }
  for (size_t i = 0; i < tier2_.size(); ++i) {
    all.Append(tier2_.Record(i));
  }
  std::vector<uint8_t> flags(all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    TraceRecord(TraceOp::kRead, i);
    flags[i] = (!LoadSecretU8(all.Record(i), schema_.dummy_offset).NonZero()).ToFlagByte();
  }
  (void)GoodrichCompact(all, std::span<uint8_t>(flags.data(), flags.size()));
  all.Truncate(params_.n);
  tier1_ = ByteSlab(0, all.record_bytes());
  tier2_ = ByteSlab(0, all.record_bytes());
  return all;
}

// SNOOPY_OBLIVIOUS_END(oht_extract)

}  // namespace snoopy
