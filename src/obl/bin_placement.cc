#include "src/obl/bin_placement.h"

#include <cstring>
#include <vector>

#include "src/enclave/trace.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/compaction.h"
#include "src/obl/primitives.h"

namespace snoopy {

namespace {

inline uint32_t LoadU32(const uint8_t* rec, size_t off) {
  uint32_t v;
  std::memcpy(&v, rec + off, sizeof(v));
  return v;
}

inline uint64_t LoadU64(const uint8_t* rec, size_t off) {
  uint64_t v;
  std::memcpy(&v, rec + off, sizeof(v));
  return v;
}

inline void StoreU32(uint8_t* rec, size_t off, uint32_t v) { std::memcpy(rec + off, &v, sizeof(v)); }
inline void StoreU64(uint8_t* rec, size_t off, uint64_t v) { std::memcpy(rec + off, &v, sizeof(v)); }

// Bitwise boolean helpers; && / || would short-circuit (branch) on secret data.
inline bool BAnd(bool a, bool b) {
  return static_cast<bool>(static_cast<unsigned>(a) & static_cast<unsigned>(b));
}
inline bool BOr(bool a, bool b) {
  return static_cast<bool>(static_cast<unsigned>(a) | static_cast<unsigned>(b));
}
inline bool BNot(bool a) { return static_cast<bool>(static_cast<unsigned>(a) ^ 1u); }

}  // namespace

BinPlacementResult ObliviousBinPlacement(ByteSlab& slab, const BinSchema& schema,
                                         const BinPlacementOptions& options,
                                         const std::function<void(uint8_t*)>& make_dummy) {
  const uint64_t m = options.num_bins;
  const uint64_t z = options.bin_capacity;
  const size_t n_real = slab.size();

  // Step 1 (Fig. 5 step 2): append z padding dummies per bin. Dummy records sort after
  // real records within a bin (order = max) and carry unique dedup keys so they can
  // never be mistaken for duplicates.
  uint64_t dummy_counter = 0;
  for (uint64_t b = 0; b < m; ++b) {
    for (uint64_t j = 0; j < z; ++j) {
      uint8_t* rec = slab.AppendZero();
      make_dummy(rec);
      StoreU32(rec, schema.bin_offset, static_cast<uint32_t>(b));
      rec[schema.dummy_offset] = 1;
      StoreU64(rec, schema.order_offset, ~uint64_t{0});
      StoreU64(rec, schema.dedup_offset, ~uint64_t{0} - dummy_counter);
      ++dummy_counter;
    }
  }
  TraceRecord(TraceOp::kAppend, n_real, m * z);

  // Step 2 (Fig. 5 step 3): oblivious sort by (bin, dummy, dedup, order).
  const auto key_of = [&schema](const uint8_t* rec) {
    const uint64_t bin = LoadU32(rec, schema.bin_offset);
    const uint64_t dummy = rec[schema.dummy_offset] & 1;
    return (bin << 1) | dummy;
  };
  BitonicSortSlab(
      slab,
      [&](const uint8_t* a, const uint8_t* b) {
        const uint64_t a1 = key_of(a);
        const uint64_t b1 = key_of(b);
        const uint64_t a2 = LoadU64(a, schema.dedup_offset);
        const uint64_t b2 = LoadU64(b, schema.dedup_offset);
        const uint64_t a3 = LoadU64(a, schema.order_offset);
        const uint64_t b3 = LoadU64(b, schema.order_offset);
        const bool lt3 = CtLt64(a3, b3);
        const bool lt2 = BOr(CtLt64(a2, b2), BAnd(CtEq64(a2, b2), lt3));
        return BOr(CtLt64(a1, b1), BAnd(CtEq64(a1, b1), lt2));
      },
      options.sort_threads);

  // Step 3 (Fig. 5 step 4): one oblivious linear scan marks, per bin, the first z
  // non-duplicate records (reals first, then padding).
  const size_t total = slab.size();
  std::vector<uint8_t> keep(total, 0);
  uint64_t prev_bin = ~uint64_t{0};
  uint64_t prev_dedup = ~uint64_t{0};
  uint64_t count = 0;
  uint64_t dropped_real = 0;
  uint64_t placed_real = 0;
  for (size_t i = 0; i < total; ++i) {
    TraceRecord(TraceOp::kRead, i);
    const uint8_t* rec = slab.Record(i);
    const uint64_t bin = LoadU32(rec, schema.bin_offset);
    const bool is_dummy = rec[schema.dummy_offset] != 0;
    const uint64_t dedup = LoadU64(rec, schema.dedup_offset);

    const bool same_bin = CtEq64(bin, prev_bin);
    count = CtSelect64(same_bin, count, 0);
    const bool is_dup = options.dedup ? BAnd(same_bin, CtEq64(dedup, prev_dedup)) : false;
    const bool keep_i = BAnd(BNot(is_dup), CtLt64(count, z));
    count += CtSelect64(keep_i, 1, 0);
    keep[i] = static_cast<uint8_t>(keep_i);

    // A dropped real, non-duplicate record means a bin overflowed: abort condition.
    dropped_real += CtSelect64(BAnd(BAnd(BNot(keep_i), BNot(is_dummy)), BNot(is_dup)), 1, 0);
    placed_real += CtSelect64(BAnd(keep_i, BNot(is_dummy)), 1, 0);
    prev_bin = bin;
    prev_dedup = dedup;
  }

  // Step 4 (Fig. 5 step 4, second half): compact the kept records to the front. The
  // kept count is exactly m * z by construction, which is public.
  const size_t kept = GoodrichCompact(slab, std::span<uint8_t>(keep.data(), keep.size()));
  slab.Truncate(kept < m * z ? kept : m * z);

  BinPlacementResult result;
  result.ok = (dropped_real == 0) && (kept == m * z);
  result.placed = placed_real;
  return result;
}

}  // namespace snoopy
