#include "src/obl/bin_placement.h"

#include <cstring>
#include <vector>

#include "src/enclave/trace.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/compaction.h"
#include "src/obl/primitives.h"
#include "src/obl/secret.h"

namespace snoopy {

namespace {

inline void StoreU32(uint8_t* rec, size_t off, uint32_t v) { std::memcpy(rec + off, &v, sizeof(v)); }
inline void StoreU64(uint8_t* rec, size_t off, uint64_t v) { std::memcpy(rec + off, &v, sizeof(v)); }

}  // namespace

// SNOOPY_OBLIVIOUS_BEGIN(bin_placement)
// ct-public: m z b j i n_real total dummy_counter dedup_enabled kept
// ct-public: schema bin_offset dummy_offset order_offset dedup_offset key_offset

BinPlacementResult ObliviousBinPlacement(ByteSlab& slab, const BinSchema& schema,
                                         const BinPlacementOptions& options,
                                         const std::function<void(uint8_t*)>& make_dummy) {
  const uint64_t m = options.num_bins;
  const uint64_t z = options.bin_capacity;
  const size_t n_real = slab.size();
  const bool dedup_enabled = options.dedup;

  // Step 1 (Fig. 5 step 2): append z padding dummies per bin. Dummy records sort after
  // real records within a bin (order = max) and carry unique dedup keys so they can
  // never be mistaken for duplicates. Dummy metadata is public at append time (the
  // records have not yet been obliviously mixed with real ones), hence the raw stores.
  uint64_t dummy_counter = 0;
  for (uint64_t b = 0; b < m; ++b) {
    for (uint64_t j = 0; j < z; ++j) {
      uint8_t* rec = slab.AppendZero();
      make_dummy(rec);
      StoreU32(rec, schema.bin_offset, static_cast<uint32_t>(b));
      rec[schema.dummy_offset] = 1;
      StoreU64(rec, schema.order_offset, ~uint64_t{0});
      StoreU64(rec, schema.dedup_offset, ~uint64_t{0} - dummy_counter);
      ++dummy_counter;
    }
  }
  TraceRecord(TraceOp::kAppend, n_real, m * z);

  // Step 2 (Fig. 5 step 3): oblivious sort by (bin, dummy, dedup, order). From here on
  // every record field is secret: loads go through the Secret<T> ports and the
  // comparator stays in the taint domain until the oblivious swap consumes it. The
  // sort routes through the common strategy entry point: the composed
  // (bin, within-bin) order is lexicographically identical to the old
  // ((bin << 1) | dummy, dedup, order) comparator, and the bucket strategy is only
  // selectable when options.bins_simulatable attests the bin tags leak nothing.
  SortBinSpec sort_spec;
  sort_spec.bin_offset = schema.bin_offset;
  sort_spec.num_bins = m;
  sort_spec.bins_simulatable = options.bins_simulatable;
  sort_spec.lambda = options.lambda;
  ObliviousSortSlab(
      slab, sort_spec,
      [&](const uint8_t* a, const uint8_t* b) {
        const SecretU64 a1 = Widen(LoadSecretU8(a, schema.dummy_offset)) & 1;
        const SecretU64 b1 = Widen(LoadSecretU8(b, schema.dummy_offset)) & 1;
        const SecretU64 a2 = LoadSecretU64(a, schema.dedup_offset);
        const SecretU64 b2 = LoadSecretU64(b, schema.dedup_offset);
        const SecretU64 a3 = LoadSecretU64(a, schema.order_offset);
        const SecretU64 b3 = LoadSecretU64(b, schema.order_offset);
        const SecretBool lt3 = a3 < b3;
        const SecretBool lt2 = (a2 < b2) | ((a2 == b2) & lt3);
        return (a1 < b1) | ((a1 == b1) & lt2);
      },
      options.sort_strategy, options.sort_threads);

  // Step 3 (Fig. 5 step 4): one oblivious linear scan marks, per bin, the first z
  // non-duplicate records (reals first, then padding).
  const size_t total = slab.size();
  std::vector<uint8_t> keep(total, 0);
  SecretU64 prev_bin = ~uint64_t{0};
  SecretU64 prev_dedup_key = ~uint64_t{0};
  SecretU64 count = 0;
  SecretU64 dropped_real = 0;
  SecretU64 placed_real = 0;
  for (size_t i = 0; i < total; ++i) {
    TraceRecord(TraceOp::kRead, i);
    const uint8_t* rec = slab.Record(i);
    const SecretU64 bin = Widen(LoadSecretU32(rec, schema.bin_offset));
    const SecretBool is_dummy = LoadSecretU8(rec, schema.dummy_offset).NonZero();
    const SecretU64 dedup_key = LoadSecretU64(rec, schema.dedup_offset);

    const SecretBool same_bin = bin == prev_bin;
    count = CtSelectU64(same_bin, count, 0);
    const SecretBool is_dup =
        dedup_enabled ? same_bin & (dedup_key == prev_dedup_key) : SecretBool::False();
    const SecretBool keep_i = (!is_dup) & (count < SecretU64(z));
    count += CtSelectU64(keep_i, 1, 0);
    keep[i] = keep_i.ToFlagByte();

    // A dropped real, non-duplicate record means a bin overflowed: abort condition.
    dropped_real += CtSelectU64((!keep_i) & (!is_dummy) & (!is_dup), 1, 0);
    placed_real += CtSelectU64(keep_i & (!is_dummy), 1, 0);
    prev_bin = bin;
    prev_dedup_key = dedup_key;
  }

  // Step 4 (Fig. 5 step 4, second half): compact the kept records to the front. The
  // kept count is exactly m * z by construction, which is public.
  const size_t kept = GoodrichCompact(slab, std::span<uint8_t>(keep.data(), keep.size()));
  slab.Truncate(kept < m * z ? kept : m * z);

  BinPlacementResult result;
  // Whether the batch fit is public (Theorem 3: overflow is a negligible-probability
  // abort the caller surfaces); the count of placed reals is public for the same
  // reason the compaction count is.
  result.ok =
      (dropped_real == SecretU64(0)).Declassify("bin_placement.ok") && (kept == m * z);
  result.placed = placed_real.Declassify("bin_placement.placed");
  return result;
}

// SNOOPY_OBLIVIOUS_END(bin_placement)

}  // namespace snoopy
