#include "src/obl/parallel.h"

#include <time.h>

#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <list>
#include <mutex>
#include <thread>
#include <vector>

namespace snoopy {

double ThreadCpuNowSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;  // no per-thread CPU clock: callers degrade to wall-clock accounting
}

namespace {

thread_local int tls_thread_budget = 0;       // 0 = no scope active
thread_local bool tls_on_worker_thread = false;

// The nested-spawn path is a bug (oversubscription: the work-inflation regression),
// so it must be loud in debug builds and merely degraded -- sequential, correct --
// in release builds.
[[noreturn]] void NestedSpawnFatal(const char* what) {
  std::fprintf(stderr,
               "snoopy WorkPool: %s from inside a pool worker without thread "
               "budget -- nested parallelism must consult CurrentThreadBudget() "
               "(see src/obl/parallel.h)\n",
               what);
  std::abort();
}

}  // namespace

int CurrentThreadBudget() { return tls_thread_budget; }

int PoolClampedThreads(int configured) {
  const int base = configured < 1 ? 1 : configured;
  if (!tls_on_worker_thread) {
    return base;
  }
  const int budget = tls_thread_budget < 1 ? 1 : tls_thread_budget;
  return base < budget ? base : budget;
}

ScopedThreadBudget::ScopedThreadBudget(int budget) : prev_(tls_thread_budget) {
  tls_thread_budget = budget < 0 ? 0 : budget;
}

ScopedThreadBudget::~ScopedThreadBudget() { tls_thread_budget = prev_; }

// A stealable fork-join task. All fields are guarded by the pool mutex: an entry
// sits in the submission list exactly while `claimed` is false, so whoever flips
// `claimed` under the lock (a worker popping it, or the submitter reclaiming it)
// owns the closure and no dangling pointer can outlive ForkJoin's stack frame.
struct ForkEntry {
  const std::function<void()>* fn = nullptr;
  bool claimed = false;
  bool done = false;
  std::list<ForkEntry*>::iterator where;
};

struct WorkPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;  // workers park here between jobs
  std::condition_variable done_cv;  // Run/ForkJoin callers wait here

  // Flat run job (one at a time; Run serializes external callers on run_mu).
  const std::function<void(size_t)>* run_body = nullptr;
  size_t run_next = 0;   // next body index to hand out
  size_t run_total = 0;  // body count for the active run
  size_t run_done = 0;   // bodies completed
  int run_child_budget = 1;

  // Stealable fork-join submissions (any nesting depth).
  std::list<ForkEntry*> forks;

  std::vector<std::thread> threads;
  bool stopping = false;

  std::mutex run_mu;  // serializes concurrent Run calls from distinct threads

  void WorkerLoop() {
    tls_on_worker_thread = true;
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      if (stopping) {
        return;
      }
      if (!forks.empty()) {
        ForkEntry* fork = forks.front();
        forks.pop_front();
        fork->claimed = true;
        lock.unlock();
        (*fork->fn)();
        lock.lock();
        fork->done = true;
        done_cv.notify_all();
        continue;
      }
      if (run_body != nullptr && run_next < run_total) {
        const size_t id = run_next++;
        const std::function<void(size_t)>* body = run_body;
        const int budget = run_child_budget;
        lock.unlock();
        {
          ScopedThreadBudget scope(budget);
          (*body)(id);
        }
        lock.lock();
        ++run_done;
        done_cv.notify_all();
        continue;
      }
      work_cv.wait(lock);
    }
  }

  // Grows the pool to at least `count` persistent workers. Callers may request
  // more workers than cores (tests exercise thread counts beyond the machine);
  // the pool honors the request -- concurrency is then bounded by the scheduler,
  // exactly as with raw std::thread, but threads are created once, not per phase.
  void Reserve(size_t count) {
    std::lock_guard<std::mutex> g(mu);
    while (threads.size() < count) {
      threads.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> g(mu);
      stopping = true;
    }
    work_cv.notify_all();
    for (std::thread& t : threads) {
      t.join();
    }
  }
};

WorkPool::WorkPool() : impl_(new Impl) {}

WorkPool::~WorkPool() { delete impl_; }

WorkPool& WorkPool::Instance() {
  // Meyers singleton with a real destructor: workers are joined at static
  // destruction so sanitizer runs see neither leaked memory nor leaked threads.
  static WorkPool pool;
  return pool;
}

bool WorkPool::OnWorkerThread() { return tls_on_worker_thread; }

size_t WorkPool::MaxWorkers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void WorkPool::Run(size_t workers, const std::function<void(size_t)>& body) {
  if (workers <= 1) {
    ScopedThreadBudget scope(tls_thread_budget == 0 ? 0 : 1);
    body(0);
    return;
  }
  if (tls_on_worker_thread) {
    // Nested flat run: the caller is itself a borrowed worker. Spawning (or even
    // queueing a second flat run) here is the oversubscription bug.
    assert(!"WorkPool::Run called from inside a pool worker");
    ScopedThreadBudget scope(1);
    for (size_t w = 0; w < workers; ++w) {
      body(w);
    }
    return;
  }

  std::lock_guard<std::mutex> serial(impl_->run_mu);
  impl_->Reserve(workers - 1);

  // Each body is granted an equal share of the requested workers as its nested
  // thread budget -- a public function of (workers, workers), i.e. 1 here, since
  // one body runs per worker. Bodies that want nested parallelism must be given
  // headroom by their phase instead (see RunIndexedPhase's task budget).
  {
    std::lock_guard<std::mutex> g(impl_->mu);
    impl_->run_body = &body;
    impl_->run_total = workers;
    impl_->run_next = 1;  // the calling thread takes body 0 itself
    impl_->run_done = 0;
    impl_->run_child_budget = 1;
  }
  impl_->work_cv.notify_all();

  {
    // The caller participates as worker 0 and then helps drain remaining bodies,
    // so a pool smaller than `workers - 1` can never strand a body.
    tls_on_worker_thread = true;
    ScopedThreadBudget scope(1);
    body(0);
    for (;;) {
      std::unique_lock<std::mutex> lock(impl_->mu);
      if (impl_->run_next >= impl_->run_total) {
        break;
      }
      const size_t id = impl_->run_next++;
      lock.unlock();
      body(id);
      lock.lock();
      ++impl_->run_done;
      impl_->done_cv.notify_all();
    }
    tls_on_worker_thread = false;
  }

  std::unique_lock<std::mutex> lock(impl_->mu);
  ++impl_->run_done;  // the caller's own body(0)
  impl_->done_cv.wait(lock, [this] { return impl_->run_done >= impl_->run_total; });
  impl_->run_body = nullptr;
  impl_->run_total = 0;
  impl_->run_next = 0;
  impl_->run_done = 0;
}

void WorkPool::ForkJoin(const std::function<void()>& first,
                        const std::function<void()>& second) {
  if (tls_on_worker_thread && tls_thread_budget <= 1) {
#ifndef NDEBUG
    NestedSpawnFatal("ForkJoin");
#endif
    first();
    second();
    return;
  }

  ForkEntry entry;
  entry.fn = &first;
  {
    std::lock_guard<std::mutex> g(impl_->mu);
    impl_->forks.push_front(&entry);
    entry.where = impl_->forks.begin();
  }
  impl_->work_cv.notify_one();

  second();

  std::unique_lock<std::mutex> lock(impl_->mu);
  if (!entry.claimed) {
    // Nobody stole it: reclaim under the lock (removing it from the list, so no
    // worker can ever see a dangling entry) and run it on this thread.
    entry.claimed = true;
    impl_->forks.erase(entry.where);
    lock.unlock();
    first();
    return;
  }
  impl_->done_cv.wait(lock, [&entry] { return entry.done; });
}

void WorkPool::Reserve(size_t workers) { impl_->Reserve(workers); }

}  // namespace snoopy
