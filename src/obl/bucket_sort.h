// Bucket oblivious sort (Goodrich–Mitzenmacher style) as a selectable strategy on
// the subORAM critical path, plus the common ObliviousSortSlab entry point that all
// hot sort call sites route through.
//
// The O(n log^2 n) bitonic network (bitonic_sort.h) compares every pair the network
// names regardless of the data; once the blocked executor has squeezed the constant
// factors, the comparator count itself is the binding term. The bucket sort gets to
// O(n log n) by exploiting that every hot Snoopy sort is a sort *by a keyed-hash bin
// tag*: 8-byte (label, input-index) tags are routed to B fixed-capacity buckets
// through a two-way butterfly (log2 B levels of pairwise merge-splits), full records
// are materialized into their buckets with one public gather pass, each bucket is
// cleaned up with a small bitonic sort, and the per-bucket real prefixes are
// concatenated. Total work: O(n log B) tag-sized routing moves + O(n) record moves +
// O(n log^2 (n/B)) cleanup compare-swaps, with n/B a constant-ish mean load —
// O(n log n) overall, and the record-byte traffic (the dominant term at 200+ bytes
// per record) is O(n) regardless of B.
//
// Why the routing may branch on the bin labels (DESIGN.md "Oblivious sorting" has
// the full argument): the label of a record is its keyed-hash bin — SipHash under a
// key the adversary never sees, over keys that are distinct at every eligible call
// site. The multiset of labels is therefore simulatable from public parameters alone
// (sample n iid uniform bins), so declassifying the labels — through the audited
// Secret<T>::Declassify port, which records one kDeclassify trace event per record —
// reveals nothing the simulator could not produce itself. This is the same argument
// Snoopy already relies on when the load balancer sends keyed-hash-partitioned batch
// *sizes* in the clear. Call sites where the labels are NOT simulatable (duplicate
// client keys before deduplication would leak popular-key multiplicity) say so via
// SortBinSpec::bins_simulatable = false and always take the bitonic path.
//
// Both strategies produce byte-identical sorted output (the same total preorder,
// made total by the caller's tiebreak fields), so response streams are strategy
// independent; tests/bucket_sort_test.cc pins this differentially.

#ifndef SNOOPY_SRC_OBL_BUCKET_SORT_H_
#define SNOOPY_SRC_OBL_BUCKET_SORT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "src/enclave/trace.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/kernels.h"
#include "src/obl/secret.h"
#include "src/obl/slab.h"
#include "src/telemetry/tracing.h"

namespace snoopy {

// Which oblivious sort implementation a deployment runs on the hot paths.
// kAuto picks per call site from the pass-count crossover (below) using the same
// constants the sim's cost model is calibrated with; SNOOPY_SORT_STRATEGY
// ({bitonic, bucket, auto}) overrides the configured value at runtime.
enum class SortStrategy : uint8_t {
  kBitonic = 0,
  kBucket = 1,
  kAuto = 2,
};

const char* SortStrategyName(SortStrategy s);

// Describes the bin tag that makes a slab sort bucket-eligible. The sort orders
// records by (bin, caller's within-bin order); `bin` is a uint32 field at
// `bin_offset` in every record, in [0, num_bins). `bins_simulatable` is the caller's
// attestation that the multiset of bin values is simulatable from public parameters
// (keyed hash of distinct keys, or uniform random draws) — the precondition for
// declassifying the labels. Without it the bucket strategy is never selected.
struct SortBinSpec {
  size_t bin_offset = 0;
  uint64_t num_bins = 0;
  bool bins_simulatable = false;
  uint32_t lambda = 40;  // overflow-failure bound: P[route overflow] <= 2^-lambda
};

// Public butterfly geometry for a bucket sort of n records tagged with num_bins
// bins. `ok` is false when no geometry meets the overflow bound (or n/num_bins are
// too small for the routing to pay off) — callers then fall back to bitonic.
struct BucketSortParams {
  uint64_t buckets = 0;   // B: power of two
  uint64_t capacity = 0;  // Z: slots per bucket, 2 * ceil(n / B)
  uint32_t levels = 0;    // log2 B
  bool ok = false;
};

// Chooses (B, Z) such that the union bound over all butterfly levels of the
// per-bucket binomial overflow tails stays under 2^-lambda (src/analysis/binomial).
// Results are memoized per (n, num_bins, lambda); geometry search is pure public
// arithmetic.
BucketSortParams ChooseBucketParams(uint64_t n, uint64_t num_bins, uint32_t lambda);

// Resolves a configured strategy to a concrete one (never kAuto) for a sort of n
// records of `record_bytes` each. `spec` may be null (no bin tag: plain comparator
// sorts are always bitonic). Applies the SNOOPY_SORT_STRATEGY environment override,
// the eligibility gates (bins_simulatable, viable geometry), and — for kAuto — the
// compare-pass crossover mirrored from the cost model's measured constants. When
// kBucket is returned, *params holds the chosen geometry.
SortStrategy ResolveSortStrategy(SortStrategy configured, uint64_t n, size_t record_bytes,
                                 const SortBinSpec* spec, BucketSortParams* params);

// Scalars-only ABI over ResolveSortStrategy for the ObliviousSortSlab template.
// The binary dataflow verifier must drop precise tracking of any stack frame a
// pointer to which reaches an out-of-line callee, so the entry-point template may
// never pass &spec / &params across this boundary — it passes the spec fields by
// value and gets the geometry back packed in the return register instead:
//   bit 0        1 iff the bucket strategy was selected
//   bits [1, 7)  levels (buckets = 1 << levels)
//   bits [8, 64) capacity Z
// Returns 0 whenever the resolution is bitonic.
uint64_t ResolveSortStrategyPacked(uint8_t configured, uint64_t n, uint64_t record_bytes,
                                   uint64_t num_bins, uint32_t bins_simulatable,
                                   uint32_t lambda);

// Type-erased within-bin comparator for the out-of-line bucket sort: a captureless
// trampoline plus a context pointer. The context must NOT point into the caller's
// stack frame (same verifier constraint as above) — ObliviousSortSlab passes a heap
// copy of the caller's functor.
using SortLessFn = SecretBool (*)(const void* ctx, const uint8_t* a, const uint8_t* b);

// Compare-pass-per-element estimates behind the kAuto crossover. Exposed for the
// cost model (src/sim/cost_model.cc cross-references these) and tests.
double BitonicSortPassesPerElement(uint64_t n, size_t record_bytes);
double BucketSortPassesPerElement(uint64_t n, size_t record_bytes,
                                  const BucketSortParams& params);

// Runs the bucket sort over the n records at `data` (stride bytes each) in place:
// label declassification, the butterfly routing network (per-level fork-join over
// bucket pairs on the WorkPool, budget clamped), per-bucket bitonic cleanup under
// (bin, less_within_bin), and public emission of the real prefixes. Geometry is
// (re)derived via the memoized ChooseBucketParams(n, num_bins, lambda). Returns
// false — with the input untouched — iff no geometry is viable or a bucket
// overflowed during routing (probability <= 2^-lambda by construction; a public,
// simulatable event like bin_placement.ok). Debug builds treat overflow as fatal
// (assert); release builds surface the fallback. Raw-pointer ABI for the same
// frame-escape reason as ResolveSortStrategyPacked: no pointer into the caller's
// frame may cross this boundary, so the slab is passed as (data, n, stride) and
// the comparator as (fn, heap ctx).
bool TryBucketSortSlab(uint8_t* data, uint64_t n, size_t stride, size_t bin_offset,
                       uint64_t num_bins, uint32_t lambda, SortLessFn less_within_bin,
                       const void* less_ctx, int threads);

// Out-of-line, type-erased equivalent of the ObliviousSortSlab template below, for
// call sites that are themselves audited end-to-end by the binary dataflow verifier
// (reshard's TagAndSortByBin). The blocked bitonic executor's tile machinery is too
// much inlined state for the analyzer to track through a composite root, so — like
// TryBucketSortSlab — this symbol is the audit boundary (noinline + allowlisted in
// tools/ct_binary_manifest.json) and the secret-handling kernels inside it are
// audited decomposed (ctdf_bitonic_tile_sort, ctdf_bucket_route,
// ctdf_bucket_cleanup, ctdf_*_cond_swap). The indirect comparator call this costs
// is fine off the epoch critical path; the epoch-hot sites (OHT build, load
// balancer) use the inlining template. `less_ctx` may be null for captureless
// trampolines; it must not point into the caller's frame.
void ObliviousSortSlabErased(ByteSlab& slab, size_t bin_offset, uint64_t num_bins,
                             uint32_t bins_simulatable, uint32_t lambda,
                             SortLessFn less_within_bin, const void* less_ctx,
                             SortStrategy strategy, int threads, size_t block_records = 0);

namespace bucket_internal {

// One contiguous butterfly arena: B buckets of Z record slots (stride bytes each)
// with the per-slot public (label, input-index) tags and per-bucket public fill
// counts held in separate arrays. The butterfly routes ONLY the 8-byte tags — the
// O(n log B) routing traffic is tag-sized, not record-sized — and record bytes
// enter the arena exactly once, in the post-routing materialization gather
// (MaterializeBucketRange below). Routing branches therefore only ever touch
// label/index/count memory; record bytes move exclusively by memcpy at public
// offsets. This split is what makes the route + materialize pipeline auditable by
// the binary dataflow verifier with the record regions tainted: see
// tests/ct_dataflow_fixture.cc ctdf_bucket_route.
struct BucketArena {
  uint8_t* records = nullptr;   // B * Z * stride bytes (live only after materialize)
  uint32_t* labels = nullptr;   // B * Z label slots (prefix per bucket is live)
  uint32_t* indices = nullptr;  // B * Z input-slab record indices, parallel to labels
  uint32_t* counts = nullptr;   // B per-bucket live-prefix lengths
  uint64_t buckets = 0;
  uint64_t capacity = 0;
  size_t stride = 0;
};

// Sequentially merge-splits the bucket pairs [pair_lo, pair_hi) of one butterfly
// level. Pair p joins buckets (i, i | m) where i is the p-th index with (i & m) == 0
// and m is the level's partner bit; tags route to the side matching bit m of their
// label. Emits one kBucketScan(pair, level) trace event per pair. Returns false
// (and stops copying) if either side would exceed Z — the public overflow event
// TryBucketSortSlab surfaces.
//
// Every branch condition here reads only the label / count arrays (public by
// declassification) and public geometry; only (label, index) tags move. Header-
// inline so the binary dataflow verifier can audit the routing + materialization
// pipeline standalone, without pulling the declassification boundary into the
// audit unit (tests/ct_dataflow_fixture.cc ctdf_bucket_route).
inline bool RouteLevelRange(const BucketArena& arena, uint32_t m, uint32_t level,
                            uint64_t pair_lo, uint64_t pair_hi) {
  const uint64_t z = arena.capacity;
  std::vector<uint32_t> label_scratch(2 * z);
  std::vector<uint32_t> index_scratch(2 * z);
  const uint64_t low_mask = static_cast<uint64_t>(m) - 1;
  for (uint64_t p = pair_lo; p < pair_hi; ++p) {
    // p-th bucket index with bit m clear: insert a zero bit at m's position.
    const uint64_t i = ((p & ~low_mask) << 1) | (p & low_mask);
    const uint64_t j = i | m;
    uint32_t* labels_i = arena.labels + i * z;
    uint32_t* labels_j = arena.labels + j * z;
    uint32_t* indices_i = arena.indices + i * z;
    uint32_t* indices_j = arena.indices + j * z;
    const uint32_t count_i = arena.counts[i];
    const uint32_t count_j = arena.counts[j];

    // Gather both live tag prefixes, then split back by bit m of the label.
    std::memcpy(label_scratch.data(), labels_i, count_i * sizeof(uint32_t));
    std::memcpy(label_scratch.data() + count_i, labels_j, count_j * sizeof(uint32_t));
    std::memcpy(index_scratch.data(), indices_i, count_i * sizeof(uint32_t));
    std::memcpy(index_scratch.data() + count_i, indices_j, count_j * sizeof(uint32_t));

    uint32_t n0 = 0;
    uint32_t n1 = 0;
    const uint32_t total = count_i + count_j;
    bool ok = true;
    for (uint32_t s = 0; s < total; ++s) {
      const uint32_t label = label_scratch[s];
      if ((label & m) == 0) {
        if (n0 >= z) {
          ok = false;
          break;
        }
        labels_i[n0] = label;
        indices_i[n0] = index_scratch[s];
        ++n0;
      } else {
        if (n1 >= z) {
          ok = false;
          break;
        }
        labels_j[n1] = label;
        indices_j[n1] = index_scratch[s];
        ++n1;
      }
    }
    arena.counts[i] = n0;
    arena.counts[j] = n1;
    TraceRecord(TraceOp::kBucketScan, p, level);
    if (!ok) {
      return false;
    }
  }
  return true;
}

// Copies each routed bucket's live records from the input slab into the arena: one
// stride-byte memcpy per record from the public index the tag carried through the
// butterfly. This is the single point where record bytes move between the label
// declassification and the per-bucket cleanup — the gather order is a function of
// the declassified labels and the input order alone, so the access pattern is as
// simulatable as the routing itself. Header-inline for the same standalone-audit
// reason as RouteLevelRange.
inline void MaterializeBucketRange(const BucketArena& arena, const uint8_t* data,
                                   uint64_t bucket_lo, uint64_t bucket_hi) {
  const size_t stride = arena.stride;
  const uint64_t z = arena.capacity;
  for (uint64_t b = bucket_lo; b < bucket_hi; ++b) {
    uint8_t* out = arena.records + b * z * stride;
    const uint32_t* idx = arena.indices + b * z;
    const uint32_t cnt = arena.counts[b];
    for (uint32_t s = 0; s < cnt; ++s) {
      std::memcpy(out + static_cast<size_t>(s) * stride,
                  data + static_cast<size_t>(idx[s]) * stride, stride);
    }
  }
}

}  // namespace bucket_internal

// SNOOPY_OBLIVIOUS_BEGIN(bucket_cleanup)
// ct-public: base stride bin_offset trace_base i j asc a b
// ct-calls: LoadSecretU32 LoadSecretU64 Widen KernelCondSwapBytes TraceRecord within Less

// The per-bucket cleanup compare-swap: the full (bin, within-bin) comparator over
// secret record fields feeding the dispatching swap kernel, with trace slot indices
// offset by the bucket's public arena position so the merged event stream is global.
// Templated on the within-bin comparator so the audit fixture can instantiate it
// with a concrete branchless functor (the real sort passes a type-erased wrapper);
// the composed compare + swap machinery audited is exactly what runs in production.
template <typename Within>
struct BucketCleanupCSwap {
  uint8_t* base;        // first live slot of this bucket
  size_t stride;        // record bytes
  size_t bin_offset;    // SortBinSpec::bin_offset
  uint64_t trace_base;  // global slot index of base
  Within within;        // less over records with equal bins (SecretBool)

  void operator()(size_t i, size_t j, bool asc) const {
    TraceRecord(TraceOp::kCondSwap, trace_base + i, trace_base + j);
    uint8_t* a = base + i * stride;
    uint8_t* b = base + j * stride;
    const SecretBool out_of_order = asc ? Less(b, a) : Less(a, b);
    KernelCondSwapBytes(out_of_order, a, b, stride);
  }

  SecretBool Less(const uint8_t* a, const uint8_t* b) const {
    const SecretU64 abin = Widen(LoadSecretU32(a, bin_offset));
    const SecretU64 bbin = Widen(LoadSecretU32(b, bin_offset));
    return (abin < bbin) | ((abin == bbin) & within(a, b));
  }
};

// SNOOPY_OBLIVIOUS_END(bucket_cleanup)

// SNOOPY_OBLIVIOUS_BEGIN(oblivious_sort_entry)
// ct-public: slab spec strategy threads block_records stride n packed
// ct-public: TraceSpan SetArg span bucket_span a b ctx buckets capacity
// ct-public: heap_less sorted Less bins_simulatable
// ct-calls: ResolveSortStrategyPacked TryBucketSortSlab BitonicSortSlabBlocked
// ct-calls: LoadSecretU32 LoadSecretU64 Widen less_within_bin less
// ct-calls: Global size record_bytes data
// ct-calls: SortBlockRecordsShared SortTileSharers

// Common entry point for every hot slab sort. Orders records by (bin at
// spec.bin_offset, less_within_bin); the caller's within-bin comparator must make
// the order total (distinct tiebreak fields) so both strategies produce identical
// bytes. The resolved strategy, record count, and geometry are emitted as a public
// "sort" span (strategy 0 = bitonic, 1 = bucket) that tools/trace_report.py labels.
//
// Frame-escape discipline (load-bearing for the binary dataflow audit): every
// out-of-line call in this template receives only by-value scalars and pointers to
// heap storage. Passing a pointer into this frame (&spec, &params, a frame-resident
// std::function) would force tools/ct_dataflow.py to invalidate its tracking of the
// whole frame at the call, and the bitonic path below would then be audited with
// the slab and comparator state lost. The TraceSpan objects are fine: their methods
// inline, and the only calls they make take the global tracer, never the span.
//
// The bitonic fallback composes (bin, within) into one comparator — for the call
// sites this replaces, the composition is lexicographically identical to the
// comparators they ran before, so the fallback path's output and trace are
// unchanged.
template <typename Less>
void ObliviousSortSlab(ByteSlab& slab, const SortBinSpec& spec, const Less& less_within_bin,
                       SortStrategy strategy, int threads, size_t block_records = 0) {
  const uint64_t n = slab.size();
  const size_t stride = slab.record_bytes();
  const uint64_t packed = ResolveSortStrategyPacked(
      static_cast<uint8_t>(strategy), n, stride, spec.num_bins,
      spec.bins_simulatable ? 1u : 0u, spec.lambda);
  if ((packed & 1u) != 0) {
    TraceSpan bucket_span(&Tracer::Global(), "step", "sort");
    bucket_span.SetArg("strategy", 1);
    bucket_span.SetArg("records", n);
    bucket_span.SetArg("buckets", uint64_t{1} << ((packed >> 1) & 0x3f));
    bucket_span.SetArg("capacity", packed >> 8);
    using LessValue = std::decay_t<Less>;  // plain functions decay to pointers
    LessValue* heap_less = new LessValue(less_within_bin);
    const bool sorted = TryBucketSortSlab(
        slab.data(), n, stride, spec.bin_offset, spec.num_bins, spec.lambda,
        [](const void* ctx, const uint8_t* a, const uint8_t* b) {
          return (*static_cast<const LessValue*>(ctx))(a, b);
        },
        heap_less, threads);
    delete heap_less;
    if (sorted) {
      return;
    }
    // Route overflow (public, probability <= 2^-lambda): slab untouched; fall
    // through to the bitonic network.
  }
  TraceSpan span(&Tracer::Global(), "step", "sort");
  span.SetArg("strategy", 0);
  span.SetArg("records", n);
  span.SetArg("block_records", block_records > 0 ? block_records
                                                 : SortBlockRecordsShared(
                                                       stride, SortTileSharers(threads)));
  BitonicSortSlabBlocked(
      slab,
      [&](const uint8_t* a, const uint8_t* b) {
        const SecretU64 abin = Widen(LoadSecretU32(a, spec.bin_offset));
        const SecretU64 bbin = Widen(LoadSecretU32(b, spec.bin_offset));
        return (abin < bbin) | ((abin == bbin) & less_within_bin(a, b));
      },
      threads, block_records);
}

// Plain-comparator overload for sorts with no (simulatable) bin tag — e.g. the load
// balancer's response-match sort, whose duplicate client keys make any keyed-hash
// label leak multiplicities. Always resolves to the bitonic network (the configured
// strategy and the environment override are deliberately ignored: there is no safe
// bucket assignment to route by), but still emits the labeled "sort" span.
template <typename Less>
void ObliviousSortSlab(ByteSlab& slab, const Less& less, SortStrategy /*strategy*/,
                       int threads, size_t block_records = 0) {
  TraceSpan span(&Tracer::Global(), "step", "sort");
  span.SetArg("strategy", 0);
  span.SetArg("records", slab.size());
  span.SetArg("block_records",
              block_records > 0
                  ? block_records
                  : SortBlockRecordsShared(slab.record_bytes(), SortTileSharers(threads)));
  BitonicSortSlabBlocked(slab, less, threads, block_records);
}

// SNOOPY_OBLIVIOUS_END(oblivious_sort_entry)

}  // namespace snoopy

#endif  // SNOOPY_SRC_OBL_BUCKET_SORT_H_
