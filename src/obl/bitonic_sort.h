// Batcher's bitonic sorting network for arbitrary n, with optional thread parallelism.
//
// Bitonic sort performs compare-and-swaps in a fixed, data-independent order, so it is
// oblivious: the network shape depends only on n (public). This is the oblivious sort
// the Snoopy load balancer uses to build batches (paper section 4.2.1); the paper also
// parallelizes it across enclave threads (Figure 13a), which RunBitonicNetwork supports
// by fanning the independent recursive halves out to a bounded thread pool.
//
// Comparators operate on secret record fields and therefore must return SecretBool
// (obl/secret.h), keeping the compare result in the taint domain until it reaches the
// oblivious swap. Branching on it is a compile error.
//
// Complexity: O(n log^2 n) compare-swaps; depth O(log^2 n).

#ifndef SNOOPY_SRC_OBL_BITONIC_SORT_H_
#define SNOOPY_SRC_OBL_BITONIC_SORT_H_

#include <cassert>
#include <cstddef>
#include <functional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include <memory>

#include "src/enclave/trace.h"
#include "src/obl/kernels.h"
#include "src/obl/parallel.h"
#include "src/obl/primitives.h"
#include "src/obl/secret.h"
#include "src/obl/slab.h"
#include "src/telemetry/tracing.h"

namespace snoopy {

// SNOOPY_OBLIVIOUS_BEGIN(bitonic_sort)
// ct-public: n lo m asc threads i j k stride max_threads hw cap block block_records
// ct-public: parallel_threshold kTilesPerParallelSort
// ct-public: TraceSpan SetArg TraceTilesEnabled first_spans
// ct-public: pool first_budget second_budget budget allowed first_fn second_fn
// ct-public: WorkPool OnWorkerThread CurrentThreadBudget
// ct-calls: GreatestPowerOfTwoBelow BitonicMerge BitonicSortRec AdaptiveSortThreads
// ct-calls: first second SortBlockRecords SortBlockRecordsShared SortTileSharers make_unique
// ct-calls: WorkPool Instance Reserve ForkJoin OnWorkerThread CurrentThreadBudget
// ct-calls: assert

namespace internal {

// Largest power of two strictly less than n (n >= 2).
inline size_t GreatestPowerOfTwoBelow(size_t n) {
  size_t k = 1;
  while (k * 2 < n) {
    k *= 2;
  }
  return k;
}

// Runs the two independent halves of a bitonic recursion step, parallel when
// threads > 1. Trace safety: the shared recorder is not thread-safe, so each half
// buffers its cswap events thread-locally (TraceThreadBuffer) and the parent appends
// them after the join in the *sequential* recursion order (first half, then second).
// The split point is public (a function of n alone), so the merged trace is
// byte-identical to a single-threaded run — the trace-identity tests pin this.
//
// Execution goes through the process-wide WorkPool (obl/parallel.h): the first half
// is offered as a *stealable* task that an idle pool worker picks up (or the caller
// reclaims after finishing the second half) — never a freshly spawned thread. Each
// half carries its share of the caller's thread budget, so deeper recursion levels
// stay inside the grant. Forking from inside a pool task whose budget is exhausted
// is the nested-spawn oversubscription bug this layer replaced: hard error in debug
// builds, sequential execution (always correct) in release builds.
template <typename First, typename Second>
void TraceForkJoinHalves(const First& first, const Second& second, int threads) {
  if (threads > 1 && WorkPool::OnWorkerThread() && CurrentThreadBudget() <= 1) {
    assert(!"parallel sort inside a pool task without thread budget; size the "
            "request with AdaptiveSortThreads (src/obl/parallel.h)");
    threads = 1;
  }
  if (threads > 1) {
    std::vector<TraceEvent> first_events;
    std::vector<TraceEvent> second_events;
    // Tile *spans* (tracing.h) get the same treatment as cswap trace events: each
    // half buffers into its own ring and the parent replays first-then-second, so
    // the span sequence matches a single-threaded run. Rings exist only while the
    // tile tracer is on; the normal path allocates nothing.
    std::unique_ptr<SpanRingBuffer> first_spans;
    std::unique_ptr<SpanRingBuffer> second_spans;
    if (TraceTilesEnabled()) {
      first_spans = std::make_unique<SpanRingBuffer>();
      second_spans = std::make_unique<SpanRingBuffer>();
    }
    const int first_budget = threads / 2;
    const int second_budget = threads - threads / 2;
    WorkPool& pool = WorkPool::Instance();
    pool.Reserve(static_cast<size_t>(threads) - 1);
    const std::function<void()> first_fn = [&] {
      ScopedThreadBudget budget{first_budget < 1 ? 1 : first_budget};
      TraceThreadBuffer buffer{&first_events};
      TracerThreadBuffer span_buffer{first_spans.get()};
      first();
    };
    const std::function<void()> second_fn = [&] {
      ScopedThreadBudget budget{second_budget};
      TraceThreadBuffer buffer{&second_events};
      TracerThreadBuffer span_buffer{second_spans.get()};
      second();
    };
    pool.ForkJoin(first_fn, second_fn);
    TraceAppendCurrent(first_events);
    TraceAppendCurrent(second_events);
    if (first_spans != nullptr) {
      TraceSpanAppendCurrent(*first_spans);
      TraceSpanAppendCurrent(*second_spans);
    }
  } else {
    first();
    second();
  }
}

template <typename CSwap>
void BitonicMerge(size_t lo, size_t n, bool asc, const CSwap& cswap, int threads) {
  if (n <= 1) {
    return;
  }
  const size_t m = GreatestPowerOfTwoBelow(n);
  for (size_t i = lo; i < lo + n - m; ++i) {
    cswap(i, i + m, asc);
  }
  TraceForkJoinHalves([&] { BitonicMerge(lo, m, asc, cswap, threads / 2); },
                      [&] { BitonicMerge(lo + m, n - m, asc, cswap, threads - threads / 2); },
                      threads);
}

template <typename CSwap>
void BitonicSortRec(size_t lo, size_t n, bool asc, const CSwap& cswap, int threads) {
  if (n <= 1) {
    return;
  }
  const size_t m = n / 2;
  TraceForkJoinHalves([&] { BitonicSortRec(lo, m, !asc, cswap, threads / 2); },
                      [&] { BitonicSortRec(lo + m, n - m, asc, cswap, threads - threads / 2); },
                      threads);
  BitonicMerge(lo, n, asc, cswap, threads);
}

// ---- Cache-blocked execution (tile executor) ----
//
// Depth-first bitonic recursion is inherently tile-local for segments that fit in
// cache: once a sort/merge segment is <= B records, every subsequent compare-swap it
// spawns stays inside those B records. The blocked variant makes that boundary an
// explicit, public parameter: segments of at most `block` records are executed by a
// lean tile path (no fork-join dispatch, no thread bookkeeping), and the block size is
// the same L1 geometry the sim's cost model uses (kernels.h SortBlockRecords). The
// tile executor replays the *exact* recursion order of BitonicSortRec/BitonicMerge
// with threads = 1, so the cswap sequence -- and therefore the adversary-visible trace
// -- is byte-identical for every block size (tests/kernels_test.cc pins this).

template <typename CSwap>
void BitonicTileMerge(size_t lo, size_t n, bool asc, const CSwap& cswap) {
  if (n <= 1) {
    return;
  }
  const size_t m = GreatestPowerOfTwoBelow(n);
  for (size_t i = lo; i < lo + n - m; ++i) {
    cswap(i, i + m, asc);
  }
  BitonicTileMerge(lo, m, asc, cswap);
  BitonicTileMerge(lo + m, n - m, asc, cswap);
}

template <typename CSwap>
void BitonicTileSort(size_t lo, size_t n, bool asc, const CSwap& cswap) {
  if (n <= 1) {
    return;
  }
  const size_t m = n / 2;
  BitonicTileSort(lo, m, !asc, cswap);
  BitonicTileSort(lo + m, n - m, asc, cswap);
  BitonicTileMerge(lo, n, asc, cswap);
}

template <typename CSwap>
void BitonicBlockedMerge(size_t lo, size_t n, bool asc, const CSwap& cswap, size_t block,
                         int threads) {
  if (n <= block) {
    // Tile-granularity span (tracer detail >= 2 only). `lo` and `n` are public
    // network geometry — functions of the input size alone — so the span leaks
    // nothing; the gate itself is public global configuration (ct-public above).
    TraceSpan tile(TraceTilesEnabled() ? &Tracer::Global() : nullptr, "tile",
                   "merge_tile", lo);
    tile.SetArg("records", n);
    BitonicTileMerge(lo, n, asc, cswap);
    return;
  }
  const size_t m = GreatestPowerOfTwoBelow(n);
  for (size_t i = lo; i < lo + n - m; ++i) {
    cswap(i, i + m, asc);
  }
  TraceForkJoinHalves([&] { BitonicBlockedMerge(lo, m, asc, cswap, block, threads / 2); },
                      [&] {
                        BitonicBlockedMerge(lo + m, n - m, asc, cswap, block,
                                            threads - threads / 2);
                      },
                      threads);
}

template <typename CSwap>
void BitonicBlockedSortRec(size_t lo, size_t n, bool asc, const CSwap& cswap, size_t block,
                           int threads) {
  if (n <= block) {
    TraceSpan tile(TraceTilesEnabled() ? &Tracer::Global() : nullptr, "tile",
                   "sort_tile", lo);
    tile.SetArg("records", n);
    BitonicTileSort(lo, n, asc, cswap);
    return;
  }
  const size_t m = n / 2;
  TraceForkJoinHalves([&] { BitonicBlockedSortRec(lo, m, !asc, cswap, block, threads / 2); },
                      [&] {
                        BitonicBlockedSortRec(lo + m, n - m, asc, cswap, block,
                                              threads - threads / 2);
                      },
                      threads);
  BitonicBlockedMerge(lo, n, asc, cswap, block, threads);
}

}  // namespace internal

// Runs the bitonic network over n elements. `cswap(i, j, asc)` must compare the
// elements at positions i < j and swap them (obliviously) so that they end up in
// ascending order if asc, descending otherwise. `threads` bounds the number of
// concurrently running workers (1 = fully sequential).
template <typename CSwap>
void RunBitonicNetwork(size_t n, const CSwap& cswap, int threads = 1) {
  internal::BitonicSortRec(0, n, /*asc=*/true, cswap, threads < 1 ? 1 : threads);
}

// Cache-blocked variant: identical compare-swap sequence (see the tile-executor note
// above), with segments of at most `block_records` executed by the non-forking tile
// path. `block_records` is public geometry; 0 means "no blocking" (tiles of 1, i.e.
// plain recursion all the way down).
template <typename CSwap>
void RunBitonicNetworkBlocked(size_t n, size_t block_records, const CSwap& cswap,
                              int threads = 1) {
  const size_t block = block_records < 1 ? 1 : block_records;
  internal::BitonicBlockedSortRec(0, n, /*asc=*/true, cswap, block,
                                  threads < 1 ? 1 : threads);
}

// Sorts a span of trivially-copyable records in place. `less(a, b)` must be a
// branchless strict weak ordering returning SecretBool (see obl/secret.h).
template <typename T, typename Less>
void BitonicSort(std::span<T> data, const Less& less, int threads = 1) {
  RunBitonicNetwork(
      data.size(),
      [&](size_t i, size_t j, bool asc) {
        TraceRecord(TraceOp::kCondSwap, i, j);
        const SecretBool out_of_order = asc ? less(data[j], data[i]) : less(data[i], data[j]);
        OCmpSwap(out_of_order, data[i], data[j]);
      },
      threads);
}

// Sorts a ByteSlab of records in place; `less(a, b)` receives raw record pointers and
// must be branchless, returning SecretBool. Record moves go through the dispatching
// SIMD kernels (obl/kernels.h); the mask is derived once per compare.
template <typename Less>
void BitonicSortSlab(ByteSlab& slab, const Less& less, int threads = 1) {
  const size_t stride = slab.record_bytes();
  uint8_t* base = slab.data();
  RunBitonicNetwork(
      slab.size(),
      [&](size_t i, size_t j, bool asc) {
        TraceRecord(TraceOp::kCondSwap, i, j);
        uint8_t* a = base + i * stride;
        uint8_t* b = base + j * stride;
        const SecretBool out_of_order = asc ? less(b, a) : less(a, b);
        KernelCondSwapBytes(out_of_order, a, b, stride);
      },
      threads);
}

// Cache-blocked slab sort: same trace, same result, L1-tiled execution. The default
// block comes from the record stride and the shared L1 tile budget (kernels.h),
// divided among the sort threads that timeshare a core when `threads` exceeds the
// core count (SortTileSharers) -- blind L1-sized tiles under oversubscription thrash
// on every context switch. Block geometry is a pure function of public values
// (stride, threads, core count), so for a fixed configuration it is identical across
// runs and epoch thread counts. Callers may pass an explicit block_records to
// override (benches sweep it).
template <typename Less>
void BitonicSortSlabBlocked(ByteSlab& slab, const Less& less, int threads = 1,
                            size_t block_records = 0) {
  const size_t stride = slab.record_bytes();
  const size_t block = block_records > 0
                           ? block_records
                           : SortBlockRecordsShared(stride, SortTileSharers(threads));
  uint8_t* base = slab.data();
  RunBitonicNetworkBlocked(
      slab.size(), block,
      [&](size_t i, size_t j, bool asc) {
        TraceRecord(TraceOp::kCondSwap, i, j);
        uint8_t* a = base + i * stride;
        uint8_t* b = base + j * stride;
        const SecretBool out_of_order = asc ? less(b, a) : less(a, b);
        KernelCondSwapBytes(out_of_order, a, b, stride);
      },
      threads);
}

// The adaptive policy from the paper (Figure 13a): below a size threshold the thread
// coordination overhead dominates, so fall back to a single thread. The threshold is
// derived from the blocked tile geometry -- forking pays off once the sort spans many
// L1 tiles -- rather than a bare constant; for the paper's 208-byte records this
// yields 128 tiles * 64 records = 8192, the empirical knee in Figure 13a.
inline int AdaptiveSortThreads(size_t n, int max_threads, size_t record_bytes = 208) {
  constexpr size_t kTilesPerParallelSort = 128;
  const size_t parallel_threshold = kTilesPerParallelSort * SortBlockRecords(record_bytes);
  if (n < parallel_threshold || max_threads < 2) {
    return 1;
  }
  // Inside a pool task the phase's thread grant — not the machine — is the
  // ceiling. Unconditionally assuming ownership of max_threads here was the
  // nested-spawn oversubscription bug (each subORAM task spawning its own sort
  // threads on top of the epoch pool); now the pool context is consulted and a
  // task with no spare budget sorts sequentially. Standalone callers (no pool
  // context) keep the hardware cap.
  if (WorkPool::OnWorkerThread()) {
    const int budget = CurrentThreadBudget();
    const int allowed = budget < 1 ? 1 : budget;
    return max_threads < allowed ? max_threads : allowed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const int cap = hw == 0 ? 1 : static_cast<int>(hw);
  return max_threads < cap ? max_threads : cap;
}

// SNOOPY_OBLIVIOUS_END(bitonic_sort)

}  // namespace snoopy

#endif  // SNOOPY_SRC_OBL_BITONIC_SORT_H_
