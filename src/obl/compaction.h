// Oblivious order-preserving compaction.
//
// Given n records each tagged with a secret keep-bit, compaction moves the kept records
// to the front of the array, preserving their relative order, while revealing nothing
// but the total number kept (which Snoopy treats as public; paper section 4.2.1).
//
// Two implementations are provided:
//  - GoodrichCompact: Goodrich's O(n log n) routing network [Goodrich, SPAA'11].
//    Each kept record must travel left by d_i = (number of dropped records before it);
//    the d_i are non-decreasing, so routing them through log n passes that shift by
//    2^k (k = 0, 1, ...) conditioned on bit k of the remaining distance never collides.
//    This is the variant Snoopy's implementation uses (paper section 7).
//  - SortCompact: an O(n log^2 n) reference built on bitonic sort over the key
//    (1 - keep, original index). Trivially correct and oblivious; used by property
//    tests to cross-check GoodrichCompact and available as a fallback.
//
// Both operate on a ByteSlab plus a parallel secret flag array which is permuted
// alongside the records.

#ifndef SNOOPY_SRC_OBL_COMPACTION_H_
#define SNOOPY_SRC_OBL_COMPACTION_H_

#include <cstdint>
#include <span>

#include "src/obl/slab.h"

namespace snoopy {

// Compacts records with flags[i] == 1 to the front, order-preserving, in O(n log n)
// oblivious operations. Returns the number of kept records. flags must have
// slab.size() entries each in {0, 1}; on return the first `kept` flags are 1.
size_t GoodrichCompact(ByteSlab& slab, std::span<uint8_t> flags);

// Reference implementation via bitonic sort; identical contract to GoodrichCompact.
size_t SortCompact(ByteSlab& slab, std::span<uint8_t> flags);

}  // namespace snoopy

#endif  // SNOOPY_SRC_OBL_COMPACTION_H_
