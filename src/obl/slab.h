// ByteSlab: a contiguous array of fixed-stride byte records.
//
// Snoopy operates over records whose payload size is a runtime configuration value
// (160-byte objects in the paper's main evaluation, 32-byte objects for key
// transparency). Oblivious algorithms cannot use pointer-chasing containers, so all
// record collections are stored as one flat allocation with a fixed stride; the
// oblivious primitives move whole records with constant-time byte operations.

#ifndef SNOOPY_SRC_OBL_SLAB_H_
#define SNOOPY_SRC_OBL_SLAB_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

namespace snoopy {

template <typename T>
class Secret;  // obl/secret.h

class ByteSlab {
 public:
  ByteSlab() : record_bytes_(1) {}
  ByteSlab(size_t count, size_t record_bytes)
      : record_bytes_(record_bytes), data_(count * record_bytes) {}

  size_t size() const { return record_bytes_ == 0 ? 0 : data_.size() / record_bytes_; }
  size_t record_bytes() const { return record_bytes_; }
  bool empty() const { return data_.empty(); }

  uint8_t* Record(size_t i) {
    assert(i < size());
    return data_.data() + i * record_bytes_;
  }
  const uint8_t* Record(size_t i) const {
    assert(i < size());
    return data_.data() + i * record_bytes_;
  }

  // Record indices are addresses the adversary observes; a secret-typed index is a
  // type error. Obliviously select a record with CtCondCopyBytes over a full scan.
  template <typename T>
  uint8_t* Record(Secret<T>) = delete;
  template <typename T>
  const uint8_t* Record(Secret<T>) const = delete;
  template <typename T>
  void Truncate(Secret<T>) = delete;

  // Appends a copy of the record pointed to by `rec` (record_bytes() bytes).
  void Append(const uint8_t* rec) {
    const size_t old = data_.size();
    data_.resize(old + record_bytes_);
    std::memcpy(data_.data() + old, rec, record_bytes_);
  }

  // Appends a zero-initialized record and returns a pointer to it.
  uint8_t* AppendZero() {
    const size_t old = data_.size();
    data_.resize(old + record_bytes_);
    return data_.data() + old;
  }

  // Drops all records at index >= n. The count n must be public.
  void Truncate(size_t n) {
    assert(n <= size());
    data_.resize(n * record_bytes_);
  }

  void Clear() { data_.clear(); }

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }

 private:
  size_t record_bytes_;
  std::vector<uint8_t> data_;
};

}  // namespace snoopy

#endif  // SNOOPY_SRC_OBL_SLAB_H_
