#include "src/obl/compaction.h"

#include <cassert>
#include <vector>

#include "src/enclave/trace.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/kernels.h"
#include "src/obl/primitives.h"
#include "src/obl/secret.h"

namespace snoopy {

// SNOOPY_OBLIVIOUS_BEGIN(compaction)
// ct-public: n i j stride shift asc block
// ct-calls: SortBlockRecords

size_t GoodrichCompact(ByteSlab& slab, std::span<uint8_t> flags) {
  const size_t n = slab.size();
  assert(flags.size() == n);
  if (n == 0) {
    return 0;
  }
  const size_t stride = slab.record_bytes();
  uint8_t* base = slab.data();

  // Distance each kept record must travel left: the count of dropped records before
  // it. Computed with a single oblivious linear scan. Dropped records are given
  // distance 0 so they never move left (they are displaced rightwards by swaps).
  std::vector<SecretU64> dist(n);
  SecretU64 dropped = 0;
  SecretU64 kept = 0;
  for (size_t i = 0; i < n; ++i) {
    TraceRecord(TraceOp::kRead, i);
    const SecretBool keep = SecretBool::FromWord(flags[i]);
    dist[i] = CtSelectU64(keep, dropped, 0);
    dropped += CtSelectU64(keep, 0, 1);
    kept += CtSelectU64(keep, 1, 0);
  }

  // Route through log n passes. In pass k, the record at position i + 2^k moves to
  // position i iff bit k of its remaining distance is set. Distances of kept records
  // are non-decreasing and, entering pass k, multiples of 2^k; a short induction shows
  // a moving record's target slot never holds a kept record that stays put, so the
  // conditional swap only ever displaces dropped records.
  for (uint64_t shift = 1; shift < n; shift <<= 1) {
    for (size_t i = 0; i + shift < n; ++i) {
      TraceRecord(TraceOp::kCondSwap, i, i + shift);
      const size_t j = i + shift;
      // SecretBool &, never &&: short-circuiting would branch on secret data.
      const SecretBool move = SecretBool::FromWord(flags[j]) & (dist[j] & shift).NonZero();
      dist[j] = CtSelect(move, dist[j] - SecretU64(shift), dist[j]);
      // The record body moves through the SIMD kernel; the 1- and 8-byte scratch
      // fields stay scalar (below vector width, dispatch would only add overhead).
      KernelCondSwapBytes(move, base + i * stride, base + j * stride, stride);
      CtCondSwapBytes(move, &flags[i], &flags[j], 1);
      CtCondSwapBytes(move, &dist[i], &dist[j], sizeof(SecretU64));
    }
  }
  // The kept count is public by the paper's contract (section 4.2.1).
  return static_cast<size_t>(kept.Declassify("compaction.goodrich.kept"));
}

size_t SortCompact(ByteSlab& slab, std::span<uint8_t> flags) {
  const size_t n = slab.size();
  assert(flags.size() == n);
  if (n == 0) {
    return 0;
  }
  const size_t stride = slab.record_bytes();
  uint8_t* base = slab.data();

  SecretU64 kept = 0;
  std::vector<SecretU64> rank(n);
  for (size_t i = 0; i < n; ++i) {
    TraceRecord(TraceOp::kRead, i);
    const SecretBool keep = SecretBool::FromWord(flags[i]);
    kept += CtSelectU64(keep, 1, 0);
    // Sort key: kept records first (in original order), dropped after (in original
    // order). The key embeds the keep bit in the top bit so comparisons stay simple.
    rank[i] = CtSelectU64(keep, 0, uint64_t{1} << 63) | SecretU64(i);
  }

  const size_t block = SortBlockRecords(stride);
  RunBitonicNetworkBlocked(n, block, [&](size_t i, size_t j, bool asc) {
    TraceRecord(TraceOp::kCondSwap, i, j);
    const SecretBool out_of_order = asc ? rank[j] < rank[i] : rank[i] < rank[j];
    CtCondSwapBytes(out_of_order, &rank[i], &rank[j], sizeof(SecretU64));
    CtCondSwapBytes(out_of_order, &flags[i], &flags[j], 1);
    KernelCondSwapBytes(out_of_order, base + i * stride, base + j * stride, stride);
  });
  return static_cast<size_t>(kept.Declassify("compaction.sort.kept"));
}

// SNOOPY_OBLIVIOUS_END(compaction)

}  // namespace snoopy
