#include "src/obl/compaction.h"

#include <cassert>
#include <vector>

#include "src/enclave/trace.h"
#include "src/obl/bitonic_sort.h"
#include "src/obl/primitives.h"

namespace snoopy {

size_t GoodrichCompact(ByteSlab& slab, std::span<uint8_t> flags) {
  const size_t n = slab.size();
  assert(flags.size() == n);
  if (n == 0) {
    return 0;
  }
  const size_t stride = slab.record_bytes();
  uint8_t* base = slab.data();

  // Distance each kept record must travel left: the count of dropped records before
  // it. Computed with a single oblivious linear scan. Dropped records are given
  // distance 0 so they never move left (they are displaced rightwards by swaps).
  std::vector<uint64_t> dist(n);
  uint64_t dropped = 0;
  uint64_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    TraceRecord(TraceOp::kRead, i);
    const bool keep = flags[i] != 0;
    dist[i] = CtSelect64(keep, dropped, 0);
    dropped += CtSelect64(keep, 0, 1);
    kept += CtSelect64(keep, 1, 0);
  }

  // Route through log n passes. In pass k, the record at position i + 2^k moves to
  // position i iff bit k of its remaining distance is set. Distances of kept records
  // are non-decreasing and, entering pass k, multiples of 2^k; a short induction shows
  // a moving record's target slot never holds a kept record that stays put, so the
  // conditional swap only ever displaces dropped records.
  for (uint64_t shift = 1; shift < n; shift <<= 1) {
    for (size_t i = 0; i + shift < n; ++i) {
      TraceRecord(TraceOp::kCondSwap, i, i + shift);
      const size_t j = i + shift;
      // Bitwise & (not &&): short-circuiting would branch on secret data.
      const bool move = static_cast<bool>(static_cast<unsigned>(flags[j] != 0) &
                                          static_cast<unsigned>((dist[j] & shift) != 0));
      dist[j] = CtSelect64(move, dist[j] - shift, dist[j]);
      CtCondSwapBytes(move, base + i * stride, base + j * stride, stride);
      CtCondSwapBytes(move, &flags[i], &flags[j], 1);
      CtCondSwapBytes(move, &dist[i], &dist[j], sizeof(uint64_t));
    }
  }
  return static_cast<size_t>(kept);
}

size_t SortCompact(ByteSlab& slab, std::span<uint8_t> flags) {
  const size_t n = slab.size();
  assert(flags.size() == n);
  if (n == 0) {
    return 0;
  }
  const size_t stride = slab.record_bytes();
  uint8_t* base = slab.data();

  uint64_t kept = 0;
  std::vector<uint64_t> rank(n);
  for (size_t i = 0; i < n; ++i) {
    TraceRecord(TraceOp::kRead, i);
    const bool keep = flags[i] != 0;
    kept += CtSelect64(keep, 1, 0);
    // Sort key: kept records first (in original order), dropped after (in original
    // order). The key embeds the keep bit in the top bit so comparisons stay simple.
    rank[i] = CtSelect64(keep, 0, uint64_t{1} << 63) | static_cast<uint64_t>(i);
  }

  RunBitonicNetwork(n, [&](size_t i, size_t j, bool asc) {
    TraceRecord(TraceOp::kCondSwap, i, j);
    const bool out_of_order = asc ? CtLt64(rank[j], rank[i]) : CtLt64(rank[i], rank[j]);
    CtCondSwapBytes(out_of_order, &rank[i], &rank[j], sizeof(uint64_t));
    CtCondSwapBytes(out_of_order, &flags[i], &flags[j], 1);
    CtCondSwapBytes(out_of_order, base + i * stride, base + j * stride, stride);
  });
  return static_cast<size_t>(kept);
}

}  // namespace snoopy
