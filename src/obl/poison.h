// Secret-poisoning harness (ctgrind-style dynamic constant-time checking).
//
// The static lint (tools/ct_lint.py) and the Secret<T> taint types catch
// secret-dependent control flow at the *source* level. This header adds the runtime
// complement: secret buffers are "poisoned" -- marked as uninitialized memory -- so a
// memory-error detector reports the exact instruction of any branch or memory index
// that depends on them. The technique is Langley's ctgrind: under Valgrind/Memcheck
// (or MemorySanitizer) uninitialized-ness propagates through arithmetic exactly like
// taint, and only *using* the value to decide a branch or an address is an error.
// Declassification (Secret<T>::Declassify) un-poisons, so the audited escape hatches
// are exactly the points where taint legally leaves the system.
//
// Backends, chosen at compile time (all no-ops unless SNOOPY_CT_CHECK is defined):
//  - MemorySanitizer (clang -fsanitize=memory): __msan_allocated_memory / unpoison.
//  - Valgrind/Memcheck client requests, when <valgrind/memcheck.h> is available.
//    These compile to magic no-op instruction sequences, so a SNOOPY_CT_CHECK build
//    runs normally and only performs real checking under `valgrind ./test`.
//  - Fallback accounting backend (this container has neither MSan nor Valgrind):
//    poison/unpoison maintain byte counters so tests can assert the declassification
//    discipline (every secret that becomes public went through Declassify), and
//    PoisonFill deterministically randomizes secret buffers from a global seed so the
//    trace-differential tests in tests/ct_poison_test.cc can vary secrets without
//    touching public parameters.

#ifndef SNOOPY_SRC_OBL_POISON_H_
#define SNOOPY_SRC_OBL_POISON_H_

#include <cstddef>
#include <cstdint>

#if defined(SNOOPY_CT_CHECK)
#if defined(__has_feature)
#if __has_feature(memory_sanitizer)
#define SNOOPY_POISON_MSAN 1
#include <sanitizer/msan_interface.h>
#endif
#endif
#if !defined(SNOOPY_POISON_MSAN) && defined(__has_include)
#if __has_include(<valgrind/memcheck.h>)
#define SNOOPY_POISON_VALGRIND 1
#include <valgrind/memcheck.h>
#endif
#endif
#endif  // SNOOPY_CT_CHECK

namespace snoopy {

// Fallback-backend accounting state. Defined inline so the harness stays header-only.
namespace poison_internal {
inline uint64_t poisoned_bytes = 0;
inline uint64_t poison_calls = 0;
inline uint64_t unpoison_calls = 0;
inline uint64_t fill_seed = 0;
}  // namespace poison_internal

// Name of the active backend: "msan", "valgrind", "accounting", or "off".
inline const char* PoisonBackend() {
#if defined(SNOOPY_POISON_MSAN)
  return "msan";
#elif defined(SNOOPY_POISON_VALGRIND)
  return "valgrind";
#elif defined(SNOOPY_CT_CHECK)
  return "accounting";
#else
  return "off";
#endif
}

// Marks [p, p+n) as secret. Under MSan/Valgrind the bytes become "uninitialized":
// copying and arithmetic are fine, branching or indexing on them is reported.
// Values are preserved by every backend.
inline void PoisonSecret(const void* p, size_t n) {
#if defined(SNOOPY_POISON_MSAN)
  __msan_allocated_memory(p, n);
#elif defined(SNOOPY_POISON_VALGRIND)
  VALGRIND_MAKE_MEM_UNDEFINED(p, n);
#elif defined(SNOOPY_CT_CHECK)
  (void)p;
  poison_internal::poisoned_bytes += n;
  poison_internal::poison_calls += 1;
#else
  (void)p;
  (void)n;
#endif
}

// Declassifies [p, p+n): the bytes become ordinary public data again. Called by
// Secret<T>::Declassify; callable directly for bulk declassification (e.g. a sealed
// ciphertext leaving the enclave).
inline void UnpoisonSecret(const void* p, size_t n) {
#if defined(SNOOPY_POISON_MSAN)
  __msan_unpoison(const_cast<void*>(static_cast<const void*>(p)), n);
#elif defined(SNOOPY_POISON_VALGRIND)
  VALGRIND_MAKE_MEM_DEFINED(p, n);
#elif defined(SNOOPY_CT_CHECK)
  (void)p;
  poison_internal::poisoned_bytes =
      poison_internal::poisoned_bytes >= n ? poison_internal::poisoned_bytes - n : 0;
  poison_internal::unpoison_calls += 1;
#else
  (void)p;
  (void)n;
#endif
}

// Accounting-backend introspection (zero under the other backends).
inline uint64_t PoisonCallCount() { return poison_internal::poison_calls; }
inline uint64_t UnpoisonCallCount() { return poison_internal::unpoison_calls; }
inline void ResetPoisonCounters() {
  poison_internal::poisoned_bytes = 0;
  poison_internal::poison_calls = 0;
  poison_internal::unpoison_calls = 0;
}

// Seeds PoisonFill. Trace-differential tests run the same kernel under two seeds and
// assert byte-identical traces; any divergence is a secret-dependent access.
inline void SetPoisonFillSeed(uint64_t seed) { poison_internal::fill_seed = seed; }

// Overwrites [p, p+n) with bytes from a splitmix64 stream over (fill seed, tag) and
// poisons the result. Unlike PoisonSecret this destroys the contents -- it fabricates
// a fresh secret, it does not protect an existing one.
inline void PoisonFill(void* p, size_t n, uint64_t tag = 0) {
  auto* bytes = static_cast<uint8_t*>(p);
  uint64_t state = poison_internal::fill_seed ^ (tag * 0x9e3779b97f4a7c15ULL);
  uint64_t word = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i % 8 == 0) {
      state += 0x9e3779b97f4a7c15ULL;
      word = state;
      word = (word ^ (word >> 30)) * 0xbf58476d1ce4e5b9ULL;
      word = (word ^ (word >> 27)) * 0x94d049bb133111ebULL;
      word ^= word >> 31;
    }
    bytes[i] = static_cast<uint8_t>(word >> (8 * (i % 8)));
  }
  PoisonSecret(p, n);
}

}  // namespace snoopy

#endif  // SNOOPY_SRC_OBL_POISON_H_
