#include "src/pir/xor_pir.h"

#include <stdexcept>

namespace snoopy {

void BitVector::Randomize(Rng& rng) {
  for (uint64_t& w : words_) {
    w = rng.Next64();
  }
  // Clear slack bits beyond size() so equality/combine semantics stay clean.
  const size_t slack = words_.size() * 64 - bits_;
  if (slack > 0 && !words_.empty()) {
    words_.back() &= (~uint64_t{0}) >> slack;
  }
}

std::vector<std::vector<uint8_t>> XorPirServer::Answer(
    const std::vector<BitVector>& queries) const {
  for (const BitVector& q : queries) {
    if (q.size() != db_.size()) {
      throw std::invalid_argument("PIR query length does not match database size");
    }
  }
  ++scans_;
  const size_t stride = db_.record_bytes();
  std::vector<std::vector<uint8_t>> acc(queries.size(), std::vector<uint8_t>(stride, 0));
  // One pass over the database; every record folds into every selecting accumulator.
  for (size_t j = 0; j < db_.size(); ++j) {
    const uint8_t* rec = db_.Record(j);
    for (size_t q = 0; q < queries.size(); ++q) {
      if (queries[q].Get(j)) {
        uint8_t* a = acc[q].data();
        for (size_t b = 0; b < stride; ++b) {
          a[b] ^= rec[b];
        }
      }
    }
  }
  return acc;
}

PirQueryPair MakePirQuery(size_t db_size, size_t index, Rng& rng) {
  if (index >= db_size) {
    throw std::out_of_range("PIR index out of range");
  }
  PirQueryPair pair{BitVector(db_size), BitVector(db_size)};
  pair.for_a.Randomize(rng);
  pair.for_b = pair.for_a;
  pair.for_b.Flip(index);
  return pair;
}

std::vector<uint8_t> CombinePirAnswers(const std::vector<uint8_t>& from_a,
                                       const std::vector<uint8_t>& from_b) {
  if (from_a.size() != from_b.size()) {
    throw std::invalid_argument("PIR answers have mismatched sizes");
  }
  std::vector<uint8_t> out(from_a.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>(from_a[i] ^ from_b[i]);
  }
  return out;
}

}  // namespace snoopy
