// Two-server XOR PIR (Chor-Goldreich-Kushilevitz-Sudan) with batched answering.
//
// Paper section 9 ("Private Information Retrieval"): Snoopy's load balancer can route
// oblivious batches to PIR server pairs instead of enclave subORAMs. The fundamental
// PIR limitation is that a server must scan the whole store per request; *batch*
// answering amortizes that scan over every query in a batch -- each object is read
// once and XOR-folded into all accumulators that want it -- which is exactly the shape
// of Snoopy's subORAM scan.
//
// Protocol: to fetch record i from two non-colluding servers holding identical
// databases, the client samples a random bit vector r, sends r to server A and
// r XOR e_i to server B, and XORs the two replies. Each server's view is a uniformly
// random vector, independent of i (information-theoretic privacy).

#ifndef SNOOPY_SRC_PIR_XOR_PIR_H_
#define SNOOPY_SRC_PIR_XOR_PIR_H_

#include <cstdint>
#include <vector>

#include "src/crypto/rng.h"
#include "src/obl/slab.h"

namespace snoopy {

// Dense bit vector over database positions.
class BitVector {
 public:
  explicit BitVector(size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

  size_t size() const { return bits_; }
  bool Get(size_t i) const { return (words_[i / 64] >> (i % 64)) & 1; }
  void Flip(size_t i) { words_[i / 64] ^= uint64_t{1} << (i % 64); }
  void Randomize(Rng& rng);

  const std::vector<uint64_t>& words() const { return words_; }

 private:
  size_t bits_;
  std::vector<uint64_t> words_;
};

class XorPirServer {
 public:
  // The database: fixed-stride records, addressed by position.
  explicit XorPirServer(ByteSlab&& records) : db_(std::move(records)) {}

  size_t num_records() const { return db_.size(); }
  size_t record_bytes() const { return db_.record_bytes(); }

  // Answers a batch of queries with ONE scan over the database: record j is read once
  // and folded into accumulator q iff queries[q].Get(j). Returns one record-sized XOR
  // accumulation per query.
  std::vector<std::vector<uint8_t>> Answer(const std::vector<BitVector>& queries) const;

  uint64_t scans_performed() const { return scans_; }

 private:
  ByteSlab db_;
  mutable uint64_t scans_ = 0;
};

// Client-side query pair for one retrieval.
struct PirQueryPair {
  BitVector for_a;
  BitVector for_b;
};

// Builds the (r, r XOR e_index) pair.
PirQueryPair MakePirQuery(size_t db_size, size_t index, Rng& rng);

// Combines the two servers' answers into the requested record.
std::vector<uint8_t> CombinePirAnswers(const std::vector<uint8_t>& from_a,
                                       const std::vector<uint8_t>& from_b);

}  // namespace snoopy

#endif  // SNOOPY_SRC_PIR_XOR_PIR_H_
